"""Bench output routing: smoke runs must never clobber tracked BENCH JSONs.

The tracked ``BENCH_lu.json`` / ``BENCH_serve.json`` at the repo root hold
full-mode numbers; CI's smoke runs (``REPRO_BENCH_SMOKE=1``) write to the
untracked ``benchmarks/out/`` scratch directory instead.  These tests pin the
routing by re-importing each bench module under both settings and checking
where ``OUT_PATH`` points — the same import-time computation the benches use
when run standalone or through pytest.
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCHES = ["bench_perf_regression.py", "bench_serve.py", "bench_gp.py"]
TRACKED = {"bench_perf_regression.py": "BENCH_lu.json",
           "bench_serve.py": "BENCH_serve.json",
           "bench_gp.py": "BENCH_gp.json"}


def _load_out_path(bench: str, smoke: str) -> Path:
    """Import a fresh copy of the bench module with REPRO_BENCH_SMOKE=smoke
    and return its OUT_PATH (module-level, computed at import time)."""
    old = os.environ.get("REPRO_BENCH_SMOKE")
    os.environ["REPRO_BENCH_SMOKE"] = smoke
    try:
        name = f"_bench_paths_{bench.removesuffix('.py')}_{smoke}"
        spec = importlib.util.spec_from_file_location(
            name, REPO_ROOT / "benchmarks" / bench)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return Path(mod.OUT_PATH)
    finally:
        sys.modules.pop(name, None)
        if old is None:
            os.environ.pop("REPRO_BENCH_SMOKE", None)
        else:
            os.environ["REPRO_BENCH_SMOKE"] = old


@pytest.mark.parametrize("bench", BENCHES)
def test_smoke_writes_to_untracked_scratch(bench):
    out = _load_out_path(bench, "1")
    assert out == REPO_ROOT / "benchmarks" / "out" / TRACKED[bench]
    assert out != REPO_ROOT / TRACKED[bench]


@pytest.mark.parametrize("bench", BENCHES)
def test_full_mode_writes_to_tracked_root(bench):
    out = _load_out_path(bench, "0")
    assert out == REPO_ROOT / TRACKED[bench]


@pytest.mark.parametrize("bench", BENCHES)
def test_smoke_out_path_is_gitignored(bench):
    """benchmarks/out/BENCH_*.json must be ignored, so even a `git add -A`
    after a smoke run cannot stage scratch results over tracked numbers."""
    rel = f"benchmarks/out/{TRACKED[bench]}"
    proc = subprocess.run(
        ["git", "check-ignore", "-q", rel], cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    if proc.returncode == 128:  # not a git checkout (e.g. sdist) - skip
        pytest.skip("not a git repository")
    assert proc.returncode == 0, f"{rel} is not gitignored"
