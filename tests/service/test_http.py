"""HTTP boundary: JSON protocol, typed errors over the wire, lifecycle."""

import threading
import time

import numpy as np
import pytest

from repro.service import (
    BadRequestError,
    FactorizationStore,
    QueueFullError,
    SolveClient,
    SolveService,
    decode_vector,
    encode_vector,
    make_server,
)


@pytest.fixture()
def served(solver):
    svc = SolveService(
        FactorizationStore(), workers=1, max_batch=4, max_delay=0.002,
        solver_provider=lambda k, s: solver,
    )
    server = make_server(svc)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = SolveClient(f"http://{host}:{port}")
    yield svc, server, client
    server.shutdown()
    server.server_close()
    svc.close()


class TestCodec:
    def test_real_roundtrip(self):
        x = np.array([1.5, -2.0, 0.0])
        assert np.array_equal(decode_vector(encode_vector(x)), x)

    def test_complex_roundtrip(self):
        x = np.array([1 + 2j, -3.5j, 4.0 + 0j])
        assert np.array_equal(decode_vector(encode_vector(x)), x)

    def test_malformed_rejected(self):
        with pytest.raises(BadRequestError):
            decode_vector([])
        with pytest.raises(BadRequestError):
            decode_vector("nope")
        with pytest.raises(BadRequestError):
            decode_vector([[1.0]])  # complex entry missing imag part


class TestEndpoint:
    def test_solve_bit_identical(self, served, solver, spec, rhs):
        _, _, client = served
        x = client.solve(spec.canonical() | {"nb": spec.nb}, rhs)
        assert np.array_equal(x, solver.solve(rhs))

    def test_healthz(self, served):
        _, _, client = served
        assert client.healthz()["status"] == "ok"

    def test_stats_over_wire(self, served, spec, rhs):
        _, _, client = served
        client.solve(spec.canonical() | {"nb": spec.nb}, rhs)
        st = client.stats()
        assert st["requests"]["completed"] >= 1

    def test_keys_over_wire(self, served, solver, key):
        svc, _, client = served
        svc.store.put(key, solver, persist=False)
        assert key in client.keys()

    def test_bad_request_typed(self, served, rhs):
        _, _, client = served
        with pytest.raises(BadRequestError):
            client.solve({"kernel": "nope", "n": 300}, rhs)

    def test_wrong_rhs_length_typed(self, served, spec):
        _, _, client = served
        with pytest.raises(BadRequestError):
            client.solve({"kernel": spec.kernel, "n": spec.n, "nb": spec.nb}, [1.0, 2.0])

    def test_queue_full_travels_as_429(self, solver, spec, rhs):
        gate = threading.Event()

        def blocked(k, s):
            gate.wait(30)
            return solver

        svc = SolveService(
            FactorizationStore(), workers=1, max_queue=1, max_batch=1,
            max_delay=0.0, solver_provider=blocked,
        )
        server = make_server(svc)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        client = SolveClient(f"http://{host}:{port}")
        body = {"kernel": spec.kernel, "n": spec.n, "nb": spec.nb}
        try:
            slow = threading.Thread(
                target=lambda: client.solve(body, rhs), daemon=True
            )
            slow.start()
            deadline = time.monotonic() + 10
            while svc.queue_depth() < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises(QueueFullError):
                client.solve(body, rhs)
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            svc.close()

    def test_unknown_route_404(self, served):
        import urllib.request
        import urllib.error

        _, server, _ = served
        host, port = server.server_address[:2]
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"http://{host}:{port}/nope")
        assert exc.value.code == 404

    def test_shutdown_drains(self, served):
        svc, _, client = served
        assert client.shutdown()["status"] == "draining"
        deadline = time.monotonic() + 10
        while not svc.closed and time.monotonic() < deadline:
            time.sleep(0.02)
        assert svc.closed


class TestObservabilityEndpoints:
    @pytest.fixture()
    def observed(self, solver):
        from repro.obs import Instrumentation

        with Instrumentation(trace_capacity=8) as probe:
            svc = SolveService(
                FactorizationStore(), workers=1, max_batch=4, max_delay=0.002,
                solver_provider=lambda k, s: solver,
            )
            server = make_server(svc)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            host, port = server.server_address[:2]
            client = SolveClient(f"http://{host}:{port}")
            yield probe, svc, client
            server.shutdown()
            server.server_close()
            svc.close()

    def test_metrics_exposition_parses(self, observed, spec, rhs):
        from repro.obs import parse_prometheus

        _, _, client = observed
        client.solve(spec.canonical() | {"nb": spec.nb}, rhs)
        text = client.metrics()
        parsed = parse_prometheus(text)  # raises on any malformed line
        assert parsed["repro_traces_completed"][0][1] >= 1.0
        assert parsed["repro_service_requests_completed"][0][1] >= 1.0
        lanes = {
            labels["lane"] for labels, _ in parsed["repro_lane_latency_seconds"]
        }
        assert lanes == {"default"}

    def test_tracez_lists_and_looks_up(self, observed, spec, rhs):
        _, _, client = observed
        client.solve(spec.canonical() | {"nb": spec.nb}, rhs)
        payload = client.tracez()
        assert payload["enabled"] and payload["completed"] >= 1
        trace = payload["traces"][-1]
        assert any(s["name"] == "solve" for s in trace["spans"])
        one = client.tracez(trace_id=trace["trace_id"])
        assert one["found"] and one["trace"]["trace_id"] == trace["trace_id"]
        missing = client.tracez(trace_id="not-a-trace")
        assert missing["found"] is False

    def test_tracez_disabled_without_probe(self, served, spec, rhs):
        _, _, client = served
        client.solve(spec.canonical() | {"nb": spec.nb}, rhs)
        payload = client.tracez()
        assert payload == {"enabled": False, "traces": []}

    def test_tracez_bad_limit_is_400(self, observed):
        import urllib.error
        import urllib.request

        _, _, client = observed
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(client.base_url + "/tracez?limit=banana")
        assert exc.value.code == 400
