"""ServeFleet: routing determinism/balance/stability, SLO admission, crash
re-routing, and the fleet-vs-single bit-identity guarantee.

The fleet's contract has four legs, each pinned here:

* the consistent-hash router is deterministic and balanced, and a resize
  moves only the removed node's keys;
* admission lanes have private budgets (a saturated batch lane cannot starve
  interactive traffic) and shed unmeetable deadlines with the typed
  :class:`DeadlineUnmeetableError` *at submit time*;
* a crashed worker's queued requests re-route to the survivors without
  losing a single admitted request, and late results from the corpse are
  discarded;
* a fleet solve is bit-identical to a single-service solve against the same
  store — routing and replication never change bits.
"""

import threading
import time
from collections import Counter

import numpy as np
import pytest

from repro.service import (
    BadRequestError,
    DeadlineExceededError,
    DeadlineUnmeetableError,
    FactorizationStore,
    LaneConfig,
    QueueFullError,
    ServeFleet,
    ServiceClosedError,
    SolveService,
    spec_fingerprint,
)
from repro.service.fleet import ConsistentHashRouter


# -- router -------------------------------------------------------------------


def test_router_deterministic_and_balanced():
    """1k fingerprint-like keys over 4 nodes: same answer on every call and
    every ring instance, with max/min keys per node <= 2 (the acceptance
    criterion for routing balance)."""
    nodes = [f"w{i}" for i in range(4)]
    r1 = ConsistentHashRouter(nodes)
    r2 = ConsistentHashRouter(nodes)
    keys = [spec_fingerprint.__module__ + f":key-{i:04d}" for i in range(1000)]
    owners = [r1.route(k) for k in keys]
    assert owners == [r2.route(k) for k in keys]
    assert owners == [r1.route(k) for k in keys]
    counts = Counter(owners)
    assert set(counts) == set(nodes)
    assert max(counts.values()) / min(counts.values()) <= 2.0, counts


def test_router_resize_moves_only_removed_nodes_keys():
    """Removing one node re-homes exactly that node's keys (~K/N); adding a
    node steals ~K/(N+1) and never reshuffles unrelated keys."""
    nodes = [f"w{i}" for i in range(4)]
    r = ConsistentHashRouter(nodes)
    keys = [f"key-{i}" for i in range(1000)]
    before = {k: r.route(k) for k in keys}
    owned_w2 = [k for k in keys if before[k] == "w2"]

    r.remove("w2")
    after = {k: r.route(k) for k in keys}
    moved = [k for k in keys if before[k] != after[k]]
    assert sorted(moved) == sorted(owned_w2)  # only w2's keys moved
    assert all(after[k] != "w2" for k in keys)

    r.add("w2")
    assert {k: r.route(k) for k in keys} == before  # add is the exact inverse

    r5 = ConsistentHashRouter(nodes + ["w4"])
    stolen = [k for k in keys if r5.route(k) != before[k]]
    assert all(r5.route(k) == "w4" for k in stolen)  # new node only steals
    assert len(stolen) < len(keys) / 2  # ~K/5 in expectation


def test_router_preference_distinct_and_primary_first():
    r = ConsistentHashRouter([f"w{i}" for i in range(4)])
    pref = r.preference("some-key", 3)
    assert len(pref) == len(set(pref)) == 3
    assert pref[0] == r.route("some-key")


def test_router_rejects_bad_ops():
    r = ConsistentHashRouter(["a"])
    with pytest.raises(ValueError):
        r.add("a")
    with pytest.raises(ValueError):
        r.remove("b")
    with pytest.raises(ValueError):
        ConsistentHashRouter(vnodes=0)
    empty = ConsistentHashRouter()
    with pytest.raises(ValueError):
        empty.route("k")


# -- admission lanes ----------------------------------------------------------


def _gated_provider(solver):
    """A provider that blocks until released (requests stay in flight)."""
    gate = threading.Event()

    def provider(key, spec):
        assert gate.wait(10.0), "test gate never released"
        return solver

    return provider, gate


def test_batch_lane_cannot_starve_interactive(spec, solver, rhs):
    """Saturating the batch lane to its budget raises QueueFullError *for
    batch only* — the interactive lane still admits and completes."""
    provider, gate = _gated_provider(solver)
    fleet = ServeFleet(
        2,
        lanes=(LaneConfig("interactive", max_inflight=4),
               LaneConfig("batch", max_inflight=2)),
        solver_provider=provider,
        max_delay=0.0,
        replicate_hot_after=None,
    )
    try:
        batch = [fleet.submit(spec, rhs, lane="batch") for _ in range(2)]
        with pytest.raises(QueueFullError):
            fleet.submit(spec, rhs, lane="batch")
        interactive = fleet.submit(spec, rhs, lane="interactive")
        gate.set()
        for t in batch + [interactive]:
            assert t.result(timeout=30.0) is not None
        stats = fleet.stats()
        assert stats["lanes"]["batch"]["rejected"] == 1
        assert stats["lanes"]["interactive"]["rejected"] == 0
        assert stats["lanes"]["interactive"]["completed"] == 1
    finally:
        gate.set()
        fleet.close()


def test_unknown_lane_is_bad_request(spec, solver, rhs):
    fleet = ServeFleet(1, solver_provider=lambda k, s: solver,
                       replicate_hot_after=None)
    try:
        with pytest.raises(BadRequestError):
            fleet.submit(spec, rhs, lane="bulk")
    finally:
        fleet.close()


def test_deadline_shedding_is_typed_and_synchronous(spec, solver, rhs):
    """Once the lane has an observed service time, a request whose deadline
    is closer than the estimate is rejected at submit() with
    DeadlineUnmeetableError — a DeadlineExceededError subclass with its own
    wire code, mapped to 429 (retryable) rather than 504 (expired)."""
    fleet = ServeFleet(1, solver_provider=lambda k, s: solver, max_delay=0.0,
                       replicate_hot_after=None)
    try:
        for _ in range(3):  # establish the lane's EWMA service time
            fleet.solve(spec, rhs, lane="interactive")
        assert fleet.stats()["lanes"]["interactive"]["est_service_seconds"] > 0
        with pytest.raises(DeadlineUnmeetableError) as ei:
            fleet.submit(spec, rhs, lane="interactive", timeout=1e-9)
        assert isinstance(ei.value, DeadlineExceededError)
        assert ei.value.code == "deadline_unmeetable"
        assert ei.value.http_status == 429
        stats = fleet.stats()["lanes"]["interactive"]
        assert stats["shed"] == 1
        assert stats["inflight"] == 0  # shed request released its slot
    finally:
        fleet.close()


def test_closed_fleet_rejects(spec, solver, rhs):
    fleet = ServeFleet(1, solver_provider=lambda k, s: solver,
                       replicate_hot_after=None)
    fleet.close()
    with pytest.raises(ServiceClosedError):
        fleet.submit(spec, rhs)


# -- crash re-routing ---------------------------------------------------------


def test_crashed_worker_requests_reroute_without_loss(spec, solver, rhs):
    """Kill the worker that owns the fingerprint while its requests are in
    flight: every admitted ticket still resolves, bit-identical to a healthy
    solve, and new requests for the key route to a survivor."""
    key = spec_fingerprint(spec)
    fleet = ServeFleet(2, solver_provider=lambda k, s: solver, max_delay=0.0,
                       replicate_hot_after=None)
    try:
        victim = fleet.worker_for(key)
        gate = threading.Event()

        def blocking_provider(k, s):
            assert gate.wait(10.0)
            return solver

        # Only the victim blocks; the survivor serves normally.
        fleet._workers[victim].service._provider = blocking_provider

        tickets = [fleet.submit(spec, rhs) for _ in range(4)]
        deadline = time.monotonic() + 5.0
        while fleet._workers[victim].service.queue_depth() < 4:
            assert time.monotonic() < deadline, "requests never reached victim"
            time.sleep(0.005)

        fleet.fail_worker(victim)
        reference = solver.solve(rhs)
        results = [t.result(timeout=30.0) for t in tickets]
        gate.set()  # release the corpse *after* the survivors answered
        for x in results:
            np.testing.assert_array_equal(x, reference)

        stats = fleet.stats()
        assert stats["healthy_workers"] == 1
        assert stats["failed_workers"] == 1
        assert stats["requeues"] >= 4
        lanes = stats["lanes"]["interactive"]
        assert lanes["completed"] == 4 and lanes["failed"] == 0

        assert fleet.worker_for(key) != victim
        np.testing.assert_array_equal(fleet.solve(spec, rhs), reference)
        assert fleet.fail_worker(victim) is None  # idempotent
    finally:
        gate.set()
        fleet.close()


def test_stale_resolution_from_corpse_is_discarded(spec, solver, rhs):
    """Release the dead worker's gate while the re-homed copies are still
    blocked: the corpse resolves first, but its answers must be discarded
    and the tickets must wait for the authoritative re-dispatch."""
    key = spec_fingerprint(spec)
    fleet = ServeFleet(2, solver_provider=lambda k, s: solver, max_delay=0.0,
                       replicate_hot_after=None)
    try:
        victim = fleet.worker_for(key)
        survivor = 1 - victim
        victim_gate = threading.Event()
        survivor_gate = threading.Event()

        def make_provider(gate):
            def provider(k, s):
                assert gate.wait(10.0)
                return solver
            return provider

        fleet._workers[victim].service._provider = make_provider(victim_gate)
        fleet._workers[survivor].service._provider = make_provider(survivor_gate)

        ticket = fleet.submit(spec, rhs)
        deadline = time.monotonic() + 5.0
        while fleet._workers[victim].service.queue_depth() < 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        fleet.fail_worker(victim)
        victim_gate.set()  # corpse finishes first...
        time.sleep(0.05)
        assert not ticket.done()  # ...but its resolution must not count
        survivor_gate.set()
        np.testing.assert_array_equal(ticket.result(timeout=30.0), solver.solve(rhs))
    finally:
        victim_gate.set()
        survivor_gate.set()
        fleet.close()


# -- bit-identity and shared store -------------------------------------------


def test_fleet_solve_bit_identical_to_single_service(spec, rhs, tmp_path):
    """Fleet and single service over the same on-disk store answer with the
    same bits — whichever side pays the cold build."""
    fleet = ServeFleet(3, store_root=tmp_path, max_delay=0.0,
                       replicate_hot_after=None)
    try:
        x_fleet = fleet.solve(spec, rhs)  # cold: fleet builds + persists
        single = SolveService(FactorizationStore(tmp_path, mmap=True),
                              max_delay=0.0)
        try:
            x_single = single.solve(spec, rhs)
        finally:
            single.close()
        np.testing.assert_array_equal(x_fleet, x_single)
        np.testing.assert_array_equal(fleet.solve(spec, rhs), x_fleet)
    finally:
        fleet.close()
    assert spec_fingerprint(spec) in fleet.keys()


def test_hot_key_replication_keeps_bits(spec, rhs, tmp_path):
    """Once a fingerprint goes hot it is served by several workers; every
    replica answers bit-identically to the primary."""
    fleet = ServeFleet(2, store_root=tmp_path, max_delay=0.0,
                       replicate_hot_after=3, replicas=2)
    try:
        reference = fleet.solve(spec, rhs)
        for _ in range(2):
            fleet.solve(spec, rhs)  # crosses the hot threshold
        deadline = time.monotonic() + 10.0
        while fleet.stats()["replication"]["hot_keys"] < 1:
            assert time.monotonic() < deadline, "replication never happened"
            time.sleep(0.01)
        for _ in range(8):  # these spread over the replicas
            np.testing.assert_array_equal(fleet.solve(spec, rhs), reference)
        assert fleet.stats()["replication"]["replicated_loads"] >= 2
    finally:
        fleet.close()


def test_fleet_stats_fit_report_schema(spec, solver, rhs):
    """fleet.stats() must drop into build_run_report(fleet=...) unchanged."""
    from repro.obs import build_run_report, validate_report

    fleet = ServeFleet(2, solver_provider=lambda k, s: solver,
                       replicate_hot_after=None)
    try:
        fleet.solve(spec, rhs, lane="interactive")
        fleet.solve(spec, rhs, lane="batch")
        report = build_run_report(meta={"mode": "test"}, fleet=fleet.stats())
        assert validate_report(report) == []
        assert report["fleet"]["lanes"]["interactive"]["completed"] == 1
    finally:
        fleet.close()
