"""FactorizationStore: two-tier caching, budget eviction, build deduplication."""

import threading

import numpy as np
import pytest

from repro.obs import Instrumentation
from repro.service import FactorizationStore


class TestTiers:
    def test_memory_roundtrip(self, solver, key):
        store = FactorizationStore()
        store.put(key, solver)
        assert key in store
        assert store.get(key) is solver
        assert store.stats()["hits"] == 1

    def test_miss_recorded(self, key):
        store = FactorizationStore()
        assert store.get(key) is None
        assert store.stats()["misses"] == 1

    def test_disk_survives_memory_eviction(self, solver, key, rhs, tmp_path):
        store = FactorizationStore(tmp_path)
        store.put(key, solver)
        ref = solver.solve(rhs)
        store.clear_memory()
        assert store.stats()["entries"] == 0
        assert key in store  # still on disk
        reloaded = store.get(key)
        assert reloaded is not None and reloaded is not solver
        assert np.array_equal(reloaded.solve(rhs), ref)

    def test_fresh_store_reads_disk(self, solver, key, rhs, tmp_path):
        FactorizationStore(tmp_path).put(key, solver)
        store2 = FactorizationStore(tmp_path)
        got = store2.get(key)
        assert got is not None
        assert np.array_equal(got.solve(rhs), solver.solve(rhs))
        assert store2.stats()["hits"] == 1 and store2.stats()["misses"] == 0

    def test_keys_unions_tiers(self, solver, key, tmp_path):
        store = FactorizationStore(tmp_path)
        store.put(key, solver)
        store.put("other", solver, persist=False)
        store.evict(key)  # memory only; disk copy remains
        assert sorted(store.keys()) == sorted([key, "other"])

    def test_no_disk_tier(self, key):
        store = FactorizationStore()
        with pytest.raises(ValueError):
            store.path_for(key)


class TestBudget:
    def test_lru_eviction(self, solver, key):
        nbytes = solver.storage_bytes()
        store = FactorizationStore(budget_bytes=int(1.5 * nbytes))
        store.put("a", solver, persist=False)
        store.put("b", solver, persist=False)
        st = store.stats()
        assert st["entries"] == 1 and st["evictions"] == 1
        assert store.get("a") is None  # the cold one went
        assert store.get("b") is solver

    def test_lru_order_respects_access(self, solver):
        nbytes = solver.storage_bytes()
        store = FactorizationStore(budget_bytes=int(2.5 * nbytes))
        store.put("a", solver, persist=False)
        store.put("b", solver, persist=False)
        store.get("a")  # refresh a; b is now coldest
        store.put("c", solver, persist=False)
        assert store.get("b") is None
        assert store.get("a") is solver and store.get("c") is solver

    def test_single_oversized_entry_stays(self, solver):
        store = FactorizationStore(budget_bytes=1)  # smaller than any factorization
        store.put("big", solver, persist=False)
        assert store.get("big") is solver  # never evict the only entry

    def test_resident_bytes_accounting(self, solver):
        store = FactorizationStore()
        store.put("a", solver, persist=False)
        assert store.resident_bytes == solver.storage_bytes()
        store.evict("a")
        assert store.resident_bytes == 0


class TestGetOrBuild:
    def test_builds_once_across_threads(self, solver, key):
        store = FactorizationStore()
        calls = []
        gate = threading.Event()

        def builder():
            calls.append(1)
            gate.wait(5)
            return solver

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(store.get_or_build(key, builder)))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(10)
        assert len(calls) == 1
        assert all(r is solver for r in results)

    def test_rejects_unfactorized(self, spec, key):
        from repro.service import ProblemSpec
        from repro.core import TileHConfig, TileHMatrix
        from repro.geometry import cylinder_cloud, laplace_kernel

        pts = cylinder_cloud(spec.n)
        raw = TileHMatrix.build(
            laplace_kernel(pts), pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32)
        )
        store = FactorizationStore()
        with pytest.raises(ValueError, match="factorized"):
            store.get_or_build(key, lambda: raw)


class TestObsIntegration:
    def test_lookup_counters(self, solver, key):
        with Instrumentation() as probe:
            store = FactorizationStore()
            store.get(key)
            store.put(key, solver, persist=False)
            store.get(key)
        assert probe.registry.counter("service.store.misses") == 1
        assert probe.registry.counter("service.store.hits") == 1

    def test_bytes_and_eviction_counters(self, solver):
        nbytes = solver.storage_bytes()
        with Instrumentation() as probe:
            store = FactorizationStore(budget_bytes=int(1.5 * nbytes))
            store.put("a", solver, persist=False)
            store.put("b", solver, persist=False)
        assert probe.registry.counter("service.store.evictions") == 1
        assert probe.registry.gauge("service.store.bytes") == nbytes
        assert probe.registry.gauge("service.store.peak_bytes") >= nbytes
