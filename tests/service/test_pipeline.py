"""SolveService: batching correctness, backpressure, deadlines, retries, drain."""

import threading
import time

import numpy as np
import pytest

from repro.obs import Instrumentation
from repro.obs.report import build_run_report, validate_report
from repro.service import (
    BadRequestError,
    DeadlineExceededError,
    FactorizationStore,
    QueueFullError,
    ServiceClosedError,
    SolveService,
    TransientSolveError,
)


@pytest.fixture()
def warm_service(solver, key):
    """A service whose provider returns the prebuilt solver instantly."""
    svc = SolveService(
        FactorizationStore(), workers=2, max_batch=8, max_delay=0.005,
        solver_provider=lambda k, s: solver,
    )
    yield svc
    svc.close()


class TestBatchedCorrectness:
    def test_concurrent_requests_bit_identical(self, warm_service, solver, spec):
        rng = np.random.default_rng(1)
        rhs = [rng.standard_normal(spec.n) for _ in range(10)]
        refs = [solver.solve(b) for b in rhs]
        tickets = [warm_service.submit(spec, b) for b in rhs]
        for t, r in zip(tickets, refs):
            assert np.array_equal(t.result(timeout=30), r)
        st = warm_service.stats()
        assert st["requests"]["completed"] == 10
        assert st["batch_size"]["count"] >= 1

    def test_sync_solve(self, warm_service, solver, spec, rhs):
        assert np.array_equal(warm_service.solve(spec, rhs), solver.solve(rhs))

    def test_bad_rhs_rejected_synchronously(self, warm_service, spec):
        with pytest.raises(BadRequestError):
            warm_service.submit(spec, np.ones(spec.n + 1))
        with pytest.raises(BadRequestError):
            warm_service.submit(spec, np.ones((spec.n, 2)))
        with pytest.raises(BadRequestError):
            warm_service.submit(spec, np.full(spec.n, np.nan))
        assert warm_service.stats()["requests"]["admitted"] == 0

    def test_bad_spec_rejected(self, warm_service, rhs):
        with pytest.raises(BadRequestError):
            warm_service.submit({"kernel": "nope", "n": 300}, rhs)


class TestBackpressure:
    def test_queue_full_rejects_not_blocks(self, solver, spec, rhs):
        gate = threading.Event()

        def blocked_provider(k, s):
            gate.wait(30)
            return solver

        svc = SolveService(
            FactorizationStore(), workers=1, max_queue=2, max_batch=1,
            max_delay=0.0, solver_provider=blocked_provider,
        )
        try:
            t1 = svc.submit(spec, rhs)
            t2 = svc.submit(spec, rhs)
            t0 = time.monotonic()
            with pytest.raises(QueueFullError):
                svc.submit(spec, rhs)
            # the rejection is immediate backpressure, not a timeout
            assert time.monotonic() - t0 < 0.5
            st = svc.stats()
            assert st["requests"]["rejected"] == 1
            gate.set()
            assert t1.result(timeout=30) is not None
            assert t2.result(timeout=30) is not None
        finally:
            gate.set()
            svc.close()
        # admitted work was never dropped
        final = svc.stats()
        assert final["requests"]["completed"] == 2
        assert final["queue"]["capacity"] == 2

    def test_capacity_frees_after_completion(self, warm_service, spec, rhs):
        small = SolveService(
            FactorizationStore(), workers=1, max_queue=1, max_batch=1,
            max_delay=0.0, solver_provider=warm_service._provider,
        )
        try:
            small.submit(spec, rhs).result(timeout=30)
            small.submit(spec, rhs).result(timeout=30)  # slot was released
        finally:
            small.close()


class TestDeadlines:
    def test_expired_request_gets_typed_error(self, solver, spec, rhs):
        gate = threading.Event()
        first_taken = threading.Event()

        def slow_provider(k, s):
            first_taken.set()
            gate.wait(30)
            return solver

        svc = SolveService(
            FactorizationStore(), workers=1, max_batch=1, max_delay=0.0,
            solver_provider=slow_provider,
        )
        try:
            t1 = svc.submit(spec, rhs)  # occupies the only worker
            assert first_taken.wait(10)
            t2 = svc.submit(spec, rhs, timeout=0.01)  # will expire in the queue
            time.sleep(0.1)
            gate.set()
            assert t1.result(timeout=30) is not None
            with pytest.raises(DeadlineExceededError):
                t2.result(timeout=30)
            st = svc.stats()
            assert st["requests"]["expired"] == 1
            assert st["requests"]["failed"] == 1
        finally:
            gate.set()
            svc.close()


class TestRetries:
    def test_transient_failures_retried(self, solver, spec, rhs):
        attempts = []

        def flaky(k, s):
            attempts.append(1)
            if len(attempts) <= 2:
                raise TransientSolveError("simulated store race")
            return solver

        svc = SolveService(
            FactorizationStore(), workers=1, max_retries=2, max_batch=1,
            max_delay=0.0, solver_provider=flaky,
        )
        try:
            x = svc.submit(spec, rhs).result(timeout=30)
            assert np.array_equal(x, solver.solve(rhs))
            st = svc.stats()
            assert st["requests"]["retries"] == 2
            assert st["requests"]["completed"] == 1
            assert st["requests"]["failed"] == 0
        finally:
            svc.close()

    def test_retries_exhausted_fails_typed(self, spec, rhs):
        def always_transient(k, s):
            raise TransientSolveError("never recovers")

        svc = SolveService(
            FactorizationStore(), workers=1, max_retries=1, max_batch=1,
            max_delay=0.0, solver_provider=always_transient,
        )
        try:
            with pytest.raises(TransientSolveError):
                svc.submit(spec, rhs).result(timeout=30)
            st = svc.stats()
            assert st["requests"]["retries"] == 1
            assert st["requests"]["failed"] == 1
        finally:
            svc.close()

    def test_nontransient_fails_without_retry(self, spec, rhs):
        calls = []

        def broken(k, s):
            calls.append(1)
            raise RuntimeError("permanent")

        svc = SolveService(
            FactorizationStore(), workers=1, max_retries=3, max_batch=1,
            max_delay=0.0, solver_provider=broken,
        )
        try:
            with pytest.raises(RuntimeError):
                svc.submit(spec, rhs).result(timeout=30)
            assert len(calls) == 1
            assert svc.stats()["requests"]["retries"] == 0
        finally:
            svc.close()


class TestDrain:
    def test_close_completes_all_admitted(self, solver, spec):
        svc = SolveService(
            FactorizationStore(), workers=2, max_batch=4, max_delay=0.05,
            solver_provider=lambda k, s: solver,
        )
        rng = np.random.default_rng(2)
        tickets = [svc.submit(spec, rng.standard_normal(spec.n)) for _ in range(9)]
        svc.close()  # graceful drain: every admitted request resolves
        assert all(t.done() for t in tickets)
        assert all(t.result() is not None for t in tickets)
        assert svc.stats()["requests"]["completed"] == 9

    def test_closed_service_rejects(self, warm_service, spec, rhs):
        warm_service.close()
        with pytest.raises(ServiceClosedError):
            warm_service.submit(spec, rhs)

    def test_close_idempotent(self, warm_service):
        warm_service.close()
        warm_service.close()

    def test_context_manager(self, solver, spec, rhs):
        with SolveService(
            FactorizationStore(), workers=1, solver_provider=lambda k, s: solver
        ) as svc:
            t = svc.submit(spec, rhs)
        assert t.done()


class TestWarmStoreSkipsFactorization:
    def test_store_hit_skips_build(self, solver, spec, key, rhs, tmp_path):
        # Prime the disk store, then serve from a cold process-equivalent:
        # the request must be a store *hit* with zero misses -> the expensive
        # factorization never ran.
        FactorizationStore(tmp_path).put(key, solver)
        with Instrumentation() as probe:
            svc = SolveService(FactorizationStore(tmp_path), workers=1)
            x = svc.solve(spec, rhs)
            svc.close()
        assert np.array_equal(x, solver.solve(rhs))
        assert probe.registry.counter("service.store.hits") == 1
        assert probe.registry.counter("service.store.misses") == 0

    def test_cold_start_is_a_miss(self, spec, rhs, tmp_path):
        with Instrumentation() as probe:
            svc = SolveService(FactorizationStore(tmp_path), workers=1)
            svc.solve(spec, rhs)
            svc.close()
        assert probe.registry.counter("service.store.misses") == 1


class TestStatsAndReport:
    def test_stats_shape(self, warm_service, spec, rhs):
        warm_service.solve(spec, rhs)
        st = warm_service.stats()
        assert st["workers"] == 2
        assert st["latency_seconds"]["count"] == 1
        assert "p50" in st["latency_seconds"] and "p95" in st["latency_seconds"]
        assert st["queue"]["depth_peak"] >= 1

    def test_report_integration(self, solver, spec, rhs):
        with Instrumentation() as probe:
            svc = SolveService(
                FactorizationStore(), workers=1, solver_provider=lambda k, s: solver
            )
            svc.solve(spec, rhs)
            svc.close()
        report = build_run_report(probe=probe, meta={"t": "svc"}, service=svc.stats())
        assert validate_report(report) == []
        assert report["service"]["requests"]["completed"] == 1

    def test_report_autoderives_from_probe(self, solver, spec, rhs):
        with Instrumentation() as probe:
            svc = SolveService(
                FactorizationStore(), workers=1, solver_provider=lambda k, s: solver
            )
            svc.solve(spec, rhs)
            svc.close()
        report = build_run_report(probe=probe, meta={})
        assert validate_report(report) == []
        assert report["service"]["requests"]["admitted"] == 1
