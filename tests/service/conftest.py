"""Shared fixtures: one small factorized problem reused across service tests."""

import numpy as np
import pytest

from repro.service import ProblemSpec, build_solver, spec_fingerprint

SPEC = ProblemSpec(kernel="laplace", n=300, nb=100, eps=1e-7, leaf_size=32)


@pytest.fixture(scope="session")
def spec():
    return SPEC


@pytest.fixture(scope="session")
def key(spec):
    return spec_fingerprint(spec)


@pytest.fixture(scope="session")
def solver(spec):
    return build_solver(spec)


@pytest.fixture()
def rhs():
    return np.random.default_rng(0).standard_normal(SPEC.n)
