"""MicroBatcher: size/age dispatch rules, keyed coalescing, drain semantics."""

import threading

import pytest

from repro.service import MicroBatcher


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture()
def clock():
    return FakeClock()


class TestDispatchRules:
    def test_full_bucket_dispatches_immediately(self, clock):
        b = MicroBatcher(max_batch=3, max_delay=10.0, clock=clock)
        for i in range(3):
            b.add("k", i)
        assert b.take(timeout=0) == ("k", [0, 1, 2])
        assert len(b) == 0

    def test_underfull_bucket_held_until_max_delay(self, clock):
        b = MicroBatcher(max_batch=8, max_delay=1.0, clock=clock)
        b.add("k", "x")
        assert b.take(timeout=0) is None  # immature
        clock.t = 1.0
        assert b.take(timeout=0) == ("k", ["x"])

    def test_zero_delay_means_singleton_batches(self, clock):
        b = MicroBatcher(max_batch=8, max_delay=0.0, clock=clock)
        b.add("k", 1)
        b.add("k", 2)
        assert b.take(timeout=0) == ("k", [1, 2])

    def test_oversized_bucket_splits(self, clock):
        b = MicroBatcher(max_batch=2, max_delay=0.0, clock=clock)
        for i in range(5):
            b.add("k", i)
        sizes = []
        while True:
            got = b.take(timeout=0)
            if got is None:
                break
            sizes.append(len(got[1]))
        assert sizes == [2, 2, 1]

    def test_keys_do_not_mix(self, clock):
        b = MicroBatcher(max_batch=4, max_delay=0.0, clock=clock)
        b.add("a", 1)
        b.add("b", 2)
        b.add("a", 3)
        batches = {b.take(timeout=0)[0]: None for _ in range(2)}
        assert set(batches) == {"a", "b"}

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_delay=-1)


class TestBlockingTake:
    def test_take_wakes_on_full_batch(self):
        b = MicroBatcher(max_batch=2, max_delay=30.0)
        out = []
        t = threading.Thread(target=lambda: out.append(b.take(timeout=5)))
        t.start()
        b.add("k", 1)
        b.add("k", 2)
        t.join(5)
        assert out == [("k", [1, 2])]

    def test_take_times_out_empty(self):
        b = MicroBatcher(max_batch=2, max_delay=30.0)
        assert b.take(timeout=0.05) is None


class TestDrain:
    def test_drain_flushes_underfull_buckets(self, clock):
        b = MicroBatcher(max_batch=8, max_delay=100.0, clock=clock)
        b.add("k", 1)
        assert b.take(timeout=0) is None
        b.drain()
        assert b.take(timeout=0) == ("k", [1])
        assert b.take(timeout=0) is None  # drained + empty -> immediate None

    def test_drain_unblocks_waiting_consumer(self):
        b = MicroBatcher(max_batch=8, max_delay=100.0)
        out = []
        t = threading.Thread(target=lambda: out.append(b.take(timeout=10)))
        t.start()
        b.drain()
        t.join(5)
        assert out == [None]
