"""MicroBatcher: size/age dispatch rules, keyed coalescing, drain semantics."""

import threading

import pytest

from repro.service import MicroBatcher


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture()
def clock():
    return FakeClock()


class TestDispatchRules:
    def test_full_bucket_dispatches_immediately(self, clock):
        b = MicroBatcher(max_batch=3, max_delay=10.0, clock=clock)
        for i in range(3):
            b.add("k", i)
        assert b.take(timeout=0) == ("k", [0, 1, 2])
        assert len(b) == 0

    def test_underfull_bucket_held_until_max_delay(self, clock):
        b = MicroBatcher(max_batch=8, max_delay=1.0, clock=clock)
        b.add("k", "x")
        assert b.take(timeout=0) is None  # immature
        clock.t = 1.0
        assert b.take(timeout=0) == ("k", ["x"])

    def test_zero_delay_means_singleton_batches(self, clock):
        b = MicroBatcher(max_batch=8, max_delay=0.0, clock=clock)
        b.add("k", 1)
        b.add("k", 2)
        assert b.take(timeout=0) == ("k", [1, 2])

    def test_oversized_bucket_splits(self, clock):
        b = MicroBatcher(max_batch=2, max_delay=0.0, clock=clock)
        for i in range(5):
            b.add("k", i)
        sizes = []
        while True:
            got = b.take(timeout=0)
            if got is None:
                break
            sizes.append(len(got[1]))
        assert sizes == [2, 2, 1]

    def test_keys_do_not_mix(self, clock):
        b = MicroBatcher(max_batch=4, max_delay=0.0, clock=clock)
        b.add("a", 1)
        b.add("b", 2)
        b.add("a", 3)
        batches = {b.take(timeout=0)[0]: None for _ in range(2)}
        assert set(batches) == {"a", "b"}

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_delay=-1)


class TestSheddingAtFormation:
    """Expired items are dropped while the batch is cut, not after."""

    @staticmethod
    def _expired_before(cutoff):
        return lambda item, now: item < cutoff

    def test_shed_requires_on_shed(self):
        with pytest.raises(ValueError):
            MicroBatcher(shed=lambda item, now: False)

    def test_expired_items_never_reach_a_batch(self, clock):
        shed = []
        b = MicroBatcher(max_batch=8, max_delay=0.0, clock=clock,
                         shed=self._expired_before(10),
                         on_shed=lambda key, item: shed.append((key, item)))
        for item in (1, 20, 2, 30):
            b.add("k", item)
        assert b.take(timeout=0) == ("k", [20, 30])
        assert shed == [("k", 1), ("k", 2)]
        assert len(b) == 0

    def test_dead_items_do_not_occupy_panel_slots(self, clock):
        # With max_batch=2 and a dead item at the head, both live items must
        # still ride the same sweep - the dead one must not push a straggler
        # into the next batch.
        b = MicroBatcher(max_batch=2, max_delay=0.0, clock=clock,
                         shed=self._expired_before(10),
                         on_shed=lambda key, item: None)
        for item in (1, 20, 30):
            b.add("k", item)
        assert b.take(timeout=0) == ("k", [20, 30])
        assert b.take(timeout=0) is None

    def test_all_dead_bucket_is_discarded_and_scan_continues(self, clock):
        shed = []
        b = MicroBatcher(max_batch=8, max_delay=0.0, clock=clock,
                         shed=self._expired_before(10),
                         on_shed=lambda key, item: shed.append(item))
        b.add("dead", 1)
        b.add("dead", 2)
        b.add("live", 40)
        assert b.take(timeout=0) == ("live", [40])
        assert shed == [1, 2]
        assert b.take(timeout=0) is None
        assert len(b) == 0

    def test_shed_uses_formation_time_not_add_time(self, clock):
        # Items healthy at add() but past deadline by formation time are shed:
        # the predicate sees the clock at batch-cut, which is the whole point.
        shed = []
        b = MicroBatcher(max_batch=8, max_delay=5.0, clock=clock,
                         shed=lambda item, now: item < now,
                         on_shed=lambda key, item: shed.append(item))
        b.add("k", 3.0)   # deadline t=3
        b.add("k", 100.0)  # deadline t=100
        assert b.take(timeout=0) is None  # immature, nothing shed yet
        assert shed == []
        clock.t = 5.0  # bucket matures past its deadline for item 3.0
        assert b.take(timeout=0) == ("k", [100.0])
        assert shed == [3.0]


class TestBlockingTake:
    def test_take_wakes_on_full_batch(self):
        b = MicroBatcher(max_batch=2, max_delay=30.0)
        out = []
        t = threading.Thread(target=lambda: out.append(b.take(timeout=5)))
        t.start()
        b.add("k", 1)
        b.add("k", 2)
        t.join(5)
        assert out == [("k", [1, 2])]

    def test_take_times_out_empty(self):
        b = MicroBatcher(max_batch=2, max_delay=30.0)
        assert b.take(timeout=0.05) is None


class TestDrain:
    def test_drain_flushes_underfull_buckets(self, clock):
        b = MicroBatcher(max_batch=8, max_delay=100.0, clock=clock)
        b.add("k", 1)
        assert b.take(timeout=0) is None
        b.drain()
        assert b.take(timeout=0) == ("k", [1])
        assert b.take(timeout=0) is None  # drained + empty -> immediate None

    def test_drain_unblocks_waiting_consumer(self):
        b = MicroBatcher(max_batch=8, max_delay=100.0)
        out = []
        t = threading.Thread(target=lambda: out.append(b.take(timeout=10)))
        t.start()
        b.drain()
        t.join(5)
        assert out == [None]
