"""ProblemSpec: validation, canonicalization, fingerprint stability."""

import pytest

from repro.service import BadRequestError, ProblemSpec, rhs_dtype, spec_fingerprint


class TestValidation:
    def test_unknown_kernel(self):
        with pytest.raises(BadRequestError):
            ProblemSpec(kernel="nope", n=100)

    def test_unknown_geometry(self):
        with pytest.raises(BadRequestError):
            ProblemSpec(kernel="laplace", n=100, geometry="torus")

    def test_unknown_method(self):
        with pytest.raises(BadRequestError):
            ProblemSpec(kernel="laplace", n=100, method="qr")

    def test_bad_scalars(self):
        with pytest.raises(BadRequestError):
            ProblemSpec(kernel="laplace", n=1)
        with pytest.raises(BadRequestError):
            ProblemSpec(kernel="laplace", n=100, eps=0.0)
        with pytest.raises(BadRequestError):
            ProblemSpec(kernel="laplace", n=100, nb=0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(BadRequestError):
            ProblemSpec.from_dict({"kernel": "laplace", "n": 100, "color": "red"})

    def test_from_dict_requires_kernel_and_n(self):
        with pytest.raises(BadRequestError):
            ProblemSpec.from_dict({"kernel": "laplace"})

    def test_from_dict_not_a_dict(self):
        with pytest.raises(BadRequestError):
            ProblemSpec.from_dict([1, 2])


class TestFingerprint:
    def test_stable(self):
        a = ProblemSpec(kernel="laplace", n=500)
        b = ProblemSpec(kernel="laplace", n=500)
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_default_nb_explicit_nb_agree(self):
        # nb=None canonicalizes to the effective default, so both forms key
        # to the same stored factorization.
        a = ProblemSpec(kernel="laplace", n=2000)
        b = ProblemSpec(kernel="laplace", n=2000, nb=125)
        assert a.effective_nb == 125
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_differs_across_parameters(self):
        base = ProblemSpec(kernel="laplace", n=500)
        variants = [
            ProblemSpec(kernel="helmholtz", n=500),
            ProblemSpec(kernel="laplace", n=501),
            ProblemSpec(kernel="laplace", n=500, eps=1e-8),
            ProblemSpec(kernel="laplace", n=500, method="cholesky"),
            ProblemSpec(kernel="laplace", n=500, geometry="sphere"),
        ]
        fps = {spec_fingerprint(v) for v in variants}
        assert spec_fingerprint(base) not in fps
        assert len(fps) == len(variants)


class TestDtype:
    def test_helmholtz_complex(self):
        import numpy as np

        assert rhs_dtype(ProblemSpec(kernel="helmholtz", n=100)) == np.complex128
        assert rhs_dtype(ProblemSpec(kernel="laplace", n=100)) == np.float64
