"""Executor knobs on the solve service: process cold builds + mmap stores.

The service's ``exec_mode``/``exec_workers`` apply only to cold-start
factorizations; warm panel solves always run eagerly, and the solver cached
or persisted after a process build carries an eager config (archives must
not embed build-machine detail).  ``FactorizationStore(mmap=True)`` writes
uncompressed archives and reloads them as memmap-backed solvers.
"""

import numpy as np
import pytest

from repro.runtime import orphaned_segments
from repro.service import (
    FactorizationStore,
    ProblemSpec,
    SolveService,
    build_solver,
    spec_fingerprint,
)
from repro.service.problems import rhs_dtype

SPEC = ProblemSpec(kernel="laplace", n=192, nb=64, eps=1e-6, leaf_size=48)


def _rhs(spec=SPEC):
    rng = np.random.default_rng(1)
    return rng.standard_normal(spec.n).astype(rhs_dtype(spec))


class TestBuildSolverExecMode:
    def test_process_build_matches_eager(self):
        """Process and eager cold builds agree to accumulator rounding (the
        rounding accumulator is eager-only, so strict bit-identity would
        need accumulate=False on both sides)."""
        before = set(orphaned_segments())
        eager = build_solver(SPEC)
        proc = build_solver(SPEC, exec_mode="process", nworkers=2)
        b = _rhs()
        np.testing.assert_allclose(proc.solve(b), eager.solve(b),
                                   rtol=1e-6, atol=1e-8)
        assert sorted(set(orphaned_segments()) - before) == []

    def test_process_built_solver_config_is_eager(self):
        proc = build_solver(SPEC, exec_mode="process", nworkers=2)
        assert proc.factorized
        assert proc.config.exec_mode == "eager"
        assert proc.config.nworkers == 1


class TestServiceKnobs:
    def test_stats_report_executor(self):
        with SolveService(workers=1, exec_mode="process", exec_workers=2) as svc:
            stats = svc.stats()
        assert stats["executor"] == {"mode": "process", "nworkers": 2}

    def test_default_eager_executor(self):
        with SolveService(workers=1) as svc:
            stats = svc.stats()
        assert stats["executor"] == {"mode": "eager", "nworkers": 1}

    def test_bad_exec_mode_rejected(self):
        with pytest.raises(ValueError, match="exec_mode"):
            SolveService(exec_mode="gpu")

    def test_bad_exec_workers_rejected(self):
        with pytest.raises(ValueError, match="exec_workers"):
            SolveService(exec_mode="process", exec_workers=0)

    def test_cold_solve_through_process_executor(self):
        before = set(orphaned_segments())
        with SolveService(workers=1, exec_mode="process", exec_workers=2) as svc:
            x = svc.solve(SPEC, _rhs())
        eager = build_solver(SPEC)
        np.testing.assert_allclose(x, eager.solve(_rhs()), rtol=1e-6, atol=1e-8)
        assert sorted(set(orphaned_segments()) - before) == []


class TestStoreMmap:
    def test_mmap_store_round_trip(self, tmp_path):
        store = FactorizationStore(tmp_path, mmap=True)
        assert store.compress is False
        key = spec_fingerprint(SPEC)
        solver = build_solver(SPEC)
        b = _rhs()
        xe = solver.solve(b)
        store.put(key, solver)
        store.clear_memory()  # force the disk tier
        loaded = store.get(key)
        assert loaded is not None and loaded is not solver
        np.testing.assert_allclose(loaded.solve(b), xe, rtol=1e-12, atol=1e-12)

    def test_default_store_stays_compressed(self, tmp_path):
        store = FactorizationStore(tmp_path)
        assert store.mmap is False and store.compress is True
