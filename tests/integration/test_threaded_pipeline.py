"""End-to-end threaded pipeline: fused assembly+factorisation and baselines.

The acceptance bar for the threaded path: a fused threaded solve at
nworkers=4 produces a forward error identical to the eager path (same DAG,
same arithmetic — ``accumulate=False`` on both sides since the rounding
accumulator is eager-only), and the threaded trace is a linear extension of
the submitted graph.
"""

import numpy as np
import pytest

from repro.baselines import HMatSolver
from repro.core import TileHConfig, TileHMatrix, assemble_priority, build_tile_h
from repro.geometry import cylinder_cloud, make_kernel, streamed_matvec
from repro.runtime import StfEngine, ThreadedExecutor, validate_trace

N, NB = 480, 120


@pytest.fixture(scope="module")
def problem():
    pts = cylinder_cloud(N)
    kern = make_kernel("laplace", pts)
    rng = np.random.default_rng(1)
    x = rng.standard_normal(N)
    b = streamed_matvec(kern, pts, x)
    return pts, kern, x, b


def _cfg(**kw):
    kw.setdefault("nb", NB)
    kw.setdefault("eps", 1e-4)
    kw.setdefault("leaf_size", 48)
    kw.setdefault("accumulate", False)
    return TileHConfig(**kw)


class TestFusedBuildFactorize:
    def test_threaded_matches_eager_bitwise(self, problem):
        pts, kern, x, b = problem
        a_e, info_e = TileHMatrix.build_factorize(kern, pts, _cfg())
        a_t, info_t = TileHMatrix.build_factorize(
            kern, pts, _cfg(exec_mode="threaded", nworkers=4, scheduler="lws")
        )
        err_e = np.linalg.norm(a_e.solve(b) - x) / np.linalg.norm(x)
        err_t = np.linalg.norm(a_t.solve(b) - x) / np.linalg.norm(x)
        # Same DAG, same per-tile arithmetic: identical to the last bit
        # (each kernel sees bit-identical inputs; the DAG serialises every
        # writer of a tile).
        assert err_t == pytest.approx(err_e, rel=1e-9)
        assert err_e < 1e-2

    def test_fused_graph_contains_assembly_and_factorization(self, problem):
        pts, kern, _, _ = problem
        _, info = TileHMatrix.build_factorize(
            kern, pts, _cfg(exec_mode="threaded", nworkers=2)
        )
        kinds = {t.kind for t in info.graph.tasks}
        assert {"assemble", "getrf", "trsm", "gemm"} <= kinds
        # Fusion means factorisation tasks depend on assemble tasks directly.
        assemble_ids = {t.id for t in info.graph.tasks if t.kind == "assemble"}
        getrf_deps = set().union(
            *(t.deps for t in info.graph.tasks if t.kind == "getrf")
        )
        assert assemble_ids & getrf_deps

    def test_threaded_trace_validates(self, problem):
        pts, kern, _, _ = problem
        _, info = TileHMatrix.build_factorize(
            kern, pts, _cfg(exec_mode="threaded", nworkers=4, scheduler="ws")
        )
        assert info.trace is not None
        assert info.wall_seconds is not None and info.wall_seconds > 0
        assert validate_trace(info.graph, info.trace) == []

    @pytest.mark.parametrize("scheduler", ["ws", "lws", "prio", "eager", "dm"])
    def test_every_policy_solves(self, problem, scheduler):
        pts, kern, x, b = problem
        a, info = TileHMatrix.build_factorize(
            kern, pts, _cfg(exec_mode="threaded", nworkers=2, scheduler=scheduler)
        )
        err = np.linalg.norm(a.solve(b) - x) / np.linalg.norm(x)
        assert err < 1e-2
        assert validate_trace(info.graph, info.trace) == []

    def test_bottom_level_priorities(self, problem):
        pts, kern, x, b = problem
        a, info = TileHMatrix.build_factorize(
            kern, pts,
            _cfg(exec_mode="threaded", nworkers=3, priority_mode="bottom-level"),
        )
        err = np.linalg.norm(a.solve(b) - x) / np.linalg.norm(x)
        assert err < 1e-2
        # Bottom-level ranks: a task's priority strictly exceeds each
        # successor's whenever its own cost is positive.
        for t in info.graph.tasks:
            for s in t.successors:
                assert t.priority >= info.graph.tasks[s].priority

    def test_cholesky_fused(self):
        from repro.geometry import assemble_dense, exponential_kernel, plate_cloud

        pts = plate_cloud(320)
        kern = exponential_kernel(pts, length=0.6)
        rng = np.random.default_rng(2)
        x = rng.standard_normal(320)
        b = assemble_dense(kern, pts) @ x
        a, info = TileHMatrix.build_factorize(
            kern, pts,
            _cfg(nb=80, eps=1e-8, leaf_size=40, exec_mode="threaded", nworkers=2),
            method="cholesky",
        )
        assert {"assemble", "potrf"} <= {t.kind for t in info.graph.tasks}
        err = np.linalg.norm(a.solve(b) - x) / np.linalg.norm(x)
        assert err < 1e-4


class TestConfigValidation:
    def test_racecheck_threaded_rejected(self):
        with pytest.raises(ValueError, match="racecheck"):
            TileHConfig(nb=64, racecheck=True, exec_mode="threaded")

    def test_bad_exec_mode(self):
        with pytest.raises(ValueError, match="exec_mode"):
            TileHConfig(nb=64, exec_mode="gpu")

    def test_bad_scheduler(self):
        with pytest.raises(ValueError, match="scheduler"):
            TileHConfig(nb=64, scheduler="fifo")

    def test_bad_priority_mode(self):
        with pytest.raises(ValueError, match="priority_mode"):
            TileHConfig(nb=64, priority_mode="random")

    def test_bad_nworkers(self):
        with pytest.raises(ValueError, match="nworkers"):
            TileHConfig(nb=64, nworkers=0)


class TestThreadedBuildOnly:
    def test_threaded_build_matches_eager(self, problem):
        pts, kern, _, _ = problem
        a = TileHMatrix.build(kern, pts, _cfg())
        b_ = TileHMatrix.build(kern, pts, _cfg(exec_mode="threaded", nworkers=3))
        assert np.array_equal(a.to_dense(), b_.to_dense())

    def test_deferred_build_without_executor_stays_pending(self, problem):
        pts, kern, _, _ = problem
        eng = StfEngine(mode="deferred")
        desc = build_tile_h(kern, pts, NB, leaf_size=48, engine=eng)
        assert desc.format_counts().get("pending", 0) == desc.super.nt ** 2
        ThreadedExecutor(2).run(eng.wait_all())
        assert "pending" not in desc.format_counts()

    def test_assemble_priority_slots_between_trsm_and_getrf(self):
        nt = 4
        for i in range(nt):
            for j in range(nt):
                k = min(i, j)
                base = (nt - k) * 10
                assert base + 12 < assemble_priority(nt, i, j) < base + 15


class TestHMatThreadedAssembly:
    def test_identical_to_eager(self, problem):
        pts, kern, _, _ = problem
        a = HMatSolver(kern, pts, leaf_size=48)
        b_ = HMatSolver(kern, pts, leaf_size=48, exec_mode="threaded",
                        nworkers=3, scheduler="ws")
        assert np.array_equal(a.matrix.to_dense(), b_.matrix.to_dense())
        assert b_.assembly_trace is not None
        assert validate_trace(b_.assembly_graph, b_.assembly_trace) == []

    def test_threaded_solve_end_to_end(self, problem):
        pts, kern, x, b = problem
        s = HMatSolver(kern, pts, leaf_size=48, exec_mode="threaded", nworkers=2)
        s.factorize()
        err = np.linalg.norm(s.solve(b) - x) / np.linalg.norm(x)
        assert err < 1e-2

    def test_racecheck_threaded_rejected(self, problem):
        pts, kern, _, _ = problem
        with pytest.raises(ValueError, match="racecheck"):
            HMatSolver(kern, pts, exec_mode="threaded", racecheck=True)

    def test_bad_exec_mode(self, problem):
        pts, kern, _, _ = problem
        with pytest.raises(ValueError, match="exec_mode"):
            HMatSolver(kern, pts, exec_mode="simd")
