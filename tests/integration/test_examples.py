"""Smoke tests: every example script runs end-to-end at a small size.

Examples are user-facing documentation; this keeps them from rotting.
Each runs in a subprocess (exactly as a user would run it) with a reduced
problem size.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, n: int) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), str(n)],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize(
    "script,n,needle",
    [
        ("quickstart.py", 700, "forward error"),
        ("bem_acoustics.py", 600, "manufactured-solution forward error"),
        ("electrostatics_capacitance.py", 700, "capacitance"),
        ("kriging_gp.py", 700, "kriging interpolation succeeded"),
        ("scheduler_tradeoffs.py", 700, "gantt charts"),
        ("distributed_outlook.py", 700, "Distributed Tile-H LU"),
    ],
)
def test_example_runs(script, n, needle):
    proc = _run(script, n)
    assert proc.returncode == 0, f"{script} failed:\n{proc.stdout}\n{proc.stderr}"
    assert needle in proc.stdout


def test_cli_module_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--n", "400", "--nb", "100", "--threads", "1", "4"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "forward error" in proc.stdout


def test_preconditioned_krylov_example():
    proc = _run("preconditioned_krylov.py", 700)
    assert proc.returncode == 0, proc.stderr
    assert "Direct vs preconditioned solves" in proc.stdout
