"""Integration tests: whole-pipeline flows across subsystem boundaries.

These mirror the paper's experiment pipeline end-to-end at miniature sizes:
geometry -> clustering -> assembly -> task-parallel LU -> solve -> simulate,
for both precisions and all solver variants, cross-validated against the
dense reference and each other.
"""

import numpy as np
import pytest

from repro.analysis import forward_error
from repro.baselines import BLRMatrix, DenseTiledLU, HMatSolver
from repro.core import TileHConfig, TileHMatrix
from repro.geometry import (
    assemble_dense,
    cylinder_cloud,
    helmholtz_kernel,
    laplace_kernel,
    sphere_cloud,
    streamed_matvec,
)
from repro.runtime import RuntimeOverheadModel, ThreadedExecutor, StfEngine

N = 600
EPS = 1e-6


@pytest.fixture(scope="module", params=["d", "z"])
def problem(request):
    pts = cylinder_cloud(N)
    kern = laplace_kernel(pts) if request.param == "d" else helmholtz_kernel(pts)
    dense = assemble_dense(kern, pts)
    rng = np.random.default_rng(42)
    x0 = rng.standard_normal(N)
    if request.param == "z":
        x0 = x0 + 1j * rng.standard_normal(N)
    return request.param, pts, kern, dense, x0


class TestSolverAgreement:
    """All four solvers agree with the dense reference and each other."""

    def test_all_solvers_converge(self, problem):
        precision, pts, kern, dense, x0 = problem
        b = dense @ x0

        th = TileHMatrix.build(kern, pts, TileHConfig(nb=150, eps=EPS, leaf_size=40))
        x_th = th.gesv(b)
        assert forward_error(x_th, x0) < 1e-4

        blr = BLRMatrix.build(kern, pts, TileHConfig(nb=150, eps=EPS))
        x_blr = blr.gesv(b)
        assert forward_error(x_blr, x0) < 1e-4

        hm = HMatSolver(kern, pts, eps=EPS, leaf_size=40)
        x_hm = hm.gesv(b)
        assert forward_error(x_hm, x0) < 1e-4

        dt = DenseTiledLU(dense, nb=150)
        dt.factorize()
        x_dt = dt.solve(b)
        assert forward_error(x_dt, x0) < 1e-10

        # Cross-agreement between compressed solvers.
        assert forward_error(x_th, x_hm) < 1e-3
        assert forward_error(x_th, x_blr) < 1e-3

    def test_matvec_agreement(self, problem):
        precision, pts, kern, dense, x0 = problem
        th = TileHMatrix.build(kern, pts, TileHConfig(nb=150, eps=EPS, leaf_size=40))
        hm = HMatSolver(kern, pts, eps=EPS, leaf_size=40)
        ref = dense @ x0
        assert np.linalg.norm(th.matvec(x0) - ref) < 1e-4 * np.linalg.norm(ref)
        assert np.linalg.norm(hm.matvec(x0) - ref) < 1e-4 * np.linalg.norm(ref)
        # Streamed matrix-free operator is exact.
        assert np.allclose(streamed_matvec(kern, pts, x0), ref)


class TestSimulationConsistency:
    def test_serial_simulation_matches_measured_work(self, problem):
        _, pts, kern, _, _ = problem
        th = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=EPS, leaf_size=40))
        info = th.factorize()
        r = info.simulate(1, "eager", overheads=RuntimeOverheadModel.zero())
        assert r.makespan == pytest.approx(info.sequential_seconds(), rel=1e-9)

    def test_speedup_monotone_in_workers(self, problem):
        _, pts, kern, _, _ = problem
        th = TileHMatrix.build(kern, pts, TileHConfig(nb=75, eps=EPS, leaf_size=40))
        info = th.factorize()
        times = [
            info.simulate(p, "prio", overheads=RuntimeOverheadModel.zero()).makespan
            for p in (1, 2, 4, 8)
        ]
        for a, b in zip(times, times[1:]):
            assert b <= a + 1e-12

    def test_fine_grain_dag_has_more_parallelism_headroom(self, problem):
        """The pure-H DAG has a *shorter* relative critical path (more
        parallelism) but pays more per-dependency overhead: both directions
        of the paper's trade-off, from one problem."""
        _, pts, kern, _, _ = problem
        th = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=EPS, leaf_size=40))
        ti = th.factorize()
        hm = HMatSolver(kern, pts, eps=EPS, leaf_size=40)
        hi = hm.factorize()
        assert hi.n_dependencies > ti.n_dependencies


class TestThreadedExecution:
    def test_threaded_tiled_lu_matches_eager(self, problem):
        """Deferred submission + real thread pool produces the same factors
        (up to truncation nondeterminism) and solves correctly."""
        precision, pts, kern, dense, x0 = problem
        th = TileHMatrix.build(kern, pts, TileHConfig(nb=150, eps=EPS, leaf_size=40))
        eng = StfEngine(mode="deferred")
        from repro.core.algorithms import tiled_getrf_tasks, tiled_solve

        graph = tiled_getrf_tasks(th.desc, eng)
        ThreadedExecutor(3).run(graph)
        x = tiled_solve(th.desc, dense @ x0)
        assert forward_error(x, x0) < 1e-4


class TestDifferentGeometries:
    def test_sphere_pipeline(self):
        pts = sphere_cloud(500)
        kern = laplace_kernel(pts)
        dense = assemble_dense(kern, pts)
        x0 = np.random.default_rng(0).standard_normal(500)
        th = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=EPS, leaf_size=40))
        x = th.gesv(dense @ x0)
        assert forward_error(x, x0) < 1e-4


class TestAccuracySweep:
    @pytest.mark.parametrize("eps", [1e-2, 1e-4, 1e-8])
    def test_error_scales_with_eps(self, eps):
        """Fig. 5's underlying relationship: forward error tracks eps."""
        pts = cylinder_cloud(N)
        kern = laplace_kernel(pts)
        dense = assemble_dense(kern, pts)
        x0 = np.random.default_rng(1).standard_normal(N)
        th = TileHMatrix.build(kern, pts, TileHConfig(nb=150, eps=eps, leaf_size=40))
        err = forward_error(th.gesv(dense @ x0), x0)
        assert err < 100 * eps + 1e-12
