"""`repro gp train/predict` run in-process, reports validated end to end."""

import json

import pytest

from repro.__main__ import main
from repro.obs import load_report, validate_report

ARGS = ["--kernel", "sqexp", "--n", "300", "--nb", "100", "--leaf-size", "40",
        "--eps", "1e-6", "--length", "0.4", "--noise", "0.05"]


class TestTrain:
    def test_cold_then_warm_train(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        rc = main(["gp", "train", *ARGS, "--store", store, "--exec", "threaded"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(cold)" in out
        assert "factorised with threaded" in out
        assert "relative residual" in out

        rc = main(["gp", "train", *ARGS, "--store", store])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(warm)" in out
        assert "store hit" in out

    def test_train_profile_report_validates(self, tmp_path, capsys):
        path = tmp_path / "train.json"
        rc = main(["gp", "train", *ARGS, "--profile", str(path)])
        assert rc == 0
        report = load_report(path)
        assert validate_report(report) == []
        gp = report["gp"]
        assert gp["kernel"] == "sqexp"
        assert gp["n_train"] == 300 and gp["n_test"] == 0
        assert gp["train_seconds"] > 0


class TestPredictService:
    def test_served_predict_batches_and_validates(self, tmp_path, capsys):
        path = tmp_path / "predict.json"
        rc = main([
            "gp", "predict", *ARGS, "--store", str(tmp_path / "store"),
            "--n-test", "24", "--batch", "4", "--profile", str(path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "batching" in out
        assert "posterior" in out
        report = load_report(path)
        assert validate_report(report) == []
        gp = report["gp"]
        assert gp["n_test"] == 24
        assert gp["predict_throughput_rps"] > 0
        assert gp["batch_width_mean"] > 1.0  # panels actually coalesced
        assert gp["mean_rmse"] < 3 * 0.05
        assert 0.0 <= gp["var_min"] <= gp["var_max"]
        assert report["service"]["requests"]["completed"] == 24

    def test_predict_reuses_trained_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["gp", "train", *ARGS, "--store", store]) == 0
        capsys.readouterr()
        rc = main(["gp", "predict", *ARGS, "--store", store, "--n-test", "8",
                   "--batch", "4"])
        assert rc == 0
        assert "posterior" in capsys.readouterr().out


class TestPredictDirect:
    def test_direct_pcg_profile_has_krylov(self, tmp_path, capsys):
        path = tmp_path / "pcg.json"
        rc = main([
            "gp", "predict", *ARGS, "--direct", "--pcg", "--pcg-rtol", "1e-10",
            "--n-test", "16", "--profile", str(path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "graph" in out and "gp-assemble" in out
        assert "pcg" in out and "converged" in out
        report = load_report(path)
        assert validate_report(report) == []
        krylov = report["gp"]["krylov"]
        assert krylov["converged"] is True
        assert krylov["iterations"] > 0
        # Instrumentation captured the ambient krylov counters too.
        counters = report["counters"]["counters"]
        assert counters["krylov.solves"] == 1
        assert counters["krylov.solves.pcg"] == 1

    def test_pcg_without_direct_rejected(self, capsys):
        rc = main(["gp", "predict", *ARGS, "--pcg"])
        assert rc == 2
        assert "--direct" in capsys.readouterr().err


class TestParser:
    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main(["gp"])

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["gp", "train", "--kernel", "laplace"])

    def test_report_is_json_on_disk(self, tmp_path):
        path = tmp_path / "r.json"
        assert main(["gp", "train", *ARGS, "--profile", str(path)]) == 0
        assert isinstance(json.loads(path.read_text()), dict)
