"""``kind="gp"`` specs through the solve service.

A GP prediction is an ordinary solve request whose right-hand side is the
test point's cross-covariance column, so the whole serving stack — admission,
micro-batching, the factorization store, warm mmap loads — works unchanged.
These tests also pin fingerprint stability: adding the GP fields must not
move any existing ``kind="solve"`` fingerprint (stores in the wild stay
valid).
"""

import numpy as np
import pytest

from repro.core import TileHConfig
from repro.gp import GPModel, synthetic_gp_data
from repro.service import (
    FactorizationStore,
    ProblemSpec,
    SolveService,
    build_solver,
    spec_fingerprint,
)
from repro.service.errors import BadRequestError
from repro.service.problems import check_rhs, rhs_dtype

N, M, NB = 300, 24, 100

HYPERS = dict(length=0.4, signal=1.0, noise=0.05)


def _gp_spec(**overrides):
    base = dict(kernel="sqexp", n=N, kind="gp", nb=NB, eps=1e-8, leaf_size=40, **HYPERS)
    base.update(overrides)
    return ProblemSpec.from_dict(base)


class TestFingerprintStability:
    # Captured before the GP fields existed: kind="solve" canonical forms —
    # and therefore store keys — must never move.
    def test_solve_fingerprints_unchanged(self):
        assert spec_fingerprint(ProblemSpec(kernel="laplace", n=256)) == (
            "0f5fcfc35655c704cc809467ca54b1e2d38059df2e6ecd1dbe1f2088cd147ea8"
        )
        assert spec_fingerprint(
            ProblemSpec(kernel="helmholtz", n=512, geometry="sphere",
                        nb=128, eps=1e-4, method="lu")
        ) == "1fc43b0f27fcd2bf10a67fd72f21fd460496f5bd6b1cf570be7262f2ba868da4"

    def test_solve_canonical_has_no_gp_keys(self):
        spec = ProblemSpec(kernel="laplace", n=256)
        assert set(spec.canonical()) == {
            "geometry", "kernel", "n", "nb", "eps", "leaf_size", "method"
        }

    def test_gp_defaults_spelled_out_do_not_move_fingerprint(self):
        implicit = ProblemSpec(kernel="sqexp", n=256, kind="gp")
        explicit = ProblemSpec(kernel="sqexp", n=256, kind="gp",
                               length=0.25, signal=1.0, noise=0.1, method="lu")
        assert spec_fingerprint(implicit) == spec_fingerprint(explicit)

    def test_hyperparameters_key_the_store(self):
        a = _gp_spec()
        b = _gp_spec(length=0.5)
        assert spec_fingerprint(a) != spec_fingerprint(b)


class TestValidation:
    def test_gp_requires_gp_kernel(self):
        with pytest.raises(BadRequestError):
            ProblemSpec(kernel="laplace", n=64, kind="gp")

    def test_gp_kernel_needs_gp_kind(self):
        with pytest.raises(BadRequestError):
            ProblemSpec(kernel="sqexp", n=64)

    def test_gp_fields_rejected_on_solve_specs(self):
        with pytest.raises(BadRequestError):
            ProblemSpec(kernel="laplace", n=64, length=0.3)

    def test_bad_hyperparameters_rejected(self):
        for field in ("length", "signal", "noise"):
            with pytest.raises(BadRequestError):
                _gp_spec(**{field: -1.0})

    def test_unknown_kind_rejected(self):
        with pytest.raises(BadRequestError):
            ProblemSpec(kernel="laplace", n=64, kind="nope")

    def test_method_coerced_to_cholesky(self):
        spec = _gp_spec(method="lu")
        assert spec.method == "cholesky"
        assert spec.canonical()["method"] == "cholesky"

    def test_round_trips_from_dict(self):
        spec = _gp_spec()
        clone = ProblemSpec.from_dict(spec.canonical())
        assert spec_fingerprint(clone) == spec_fingerprint(spec)

    def test_rhs_is_real(self):
        spec = _gp_spec()
        assert rhs_dtype(spec) == np.float64
        assert check_rhs(spec, np.ones(N)).dtype == np.float64


class TestServedPredictions:
    @pytest.fixture(scope="class")
    def problem(self):
        return synthetic_gp_data(N, M, geometry="cylinder", noise=HYPERS["noise"], seed=7)

    def _posterior_via_service(self, service, spec, kern, x, y, x_test, timeout=120.0):
        ks = kern(x, x_test)
        tickets = [service.submit(spec, ks[:, j]) for j in range(x_test.shape[0])]
        v = np.column_stack([t.result(timeout=timeout) for t in tickets])
        mean = v.T @ y
        var = np.clip(kern.diag(x_test) - np.einsum("ij,ij->j", ks, v), 0.0, None)
        return mean, var

    def test_batched_predictions_match_direct_model(self, problem):
        x, y, x_test, _ = problem
        spec = _gp_spec()
        cfg = TileHConfig(nb=NB, eps=1e-8, leaf_size=40)
        model = GPModel("sqexp", **HYPERS, config=cfg).fit(x, y)
        direct = model.predict(x_test)

        service = SolveService(FactorizationStore(), workers=2, max_queue=M + 8,
                               max_batch=8, max_delay=0.05)
        try:
            kern = model.kernel_function(x)
            mean, var = self._posterior_via_service(service, spec, kern, x, y, x_test)
        finally:
            service.close()
        np.testing.assert_allclose(mean, direct.mean, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(var, direct.var, rtol=1e-8, atol=1e-12)
        batch = service.stats()["batch_size"]
        assert batch["count"] < M, "predictions never coalesced into panels"
        assert batch["mean"] > 1.0

    def test_store_round_trip_warm_mmap_predictions(self, problem, tmp_path):
        x, y, x_test, _ = problem
        spec = _gp_spec()
        key = spec_fingerprint(spec)

        # Cold train into an mmap-configured store (writes uncompressed).
        cold_store = FactorizationStore(tmp_path, mmap=True)
        cold_store.get_or_build(key, lambda: build_solver(spec))
        assert key in cold_store.keys()

        kern = GPModel("sqexp", **HYPERS).kernel_function(x)
        cold = SolveService(cold_store, workers=1, max_queue=M + 8, max_batch=8,
                            max_delay=0.05)
        try:
            mean_c, var_c = self._posterior_via_service(cold, spec, kern, x, y, x_test)
        finally:
            cold.close()

        # Fresh process-equivalent: new store over the same directory, memory
        # empty, so the first request mmap-loads the persisted factors.
        warm_store = FactorizationStore(tmp_path, mmap=True)
        warm = SolveService(warm_store, workers=1, max_queue=M + 8, max_batch=8,
                            max_delay=0.05)
        try:
            mean_w, var_w = self._posterior_via_service(warm, spec, kern, x, y, x_test)
        finally:
            warm.close()
        stats = warm_store.stats()
        assert stats["misses"] == 0, "warm service should never rebuild"
        assert stats["hits"] >= 1
        np.testing.assert_allclose(mean_w, mean_c, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(var_w, var_c, rtol=1e-10, atol=1e-12)
