"""GPModel exactness against the dense NumPy reference + executor equivalence.

The H-compressed posterior must track the ACA tolerance (mean relative
error <= 10x eps), executors must agree bit for bit at ``accumulate=False``
(the RW chain on the reduction accumulator serialises the per-tile partial
sums in submission order), and factor archives must round-trip.
"""

from collections import Counter

import numpy as np
import pytest

from repro.core import TileHConfig
from repro.geometry.assembly import assemble_dense
from repro.gp import GPModel, synthetic_gp_data

N, M, NB = 400, 32, 100

HYPERS = dict(length=0.4, signal=1.1, noise=0.05)


@pytest.fixture(scope="module")
def data():
    return synthetic_gp_data(N, M, geometry="cylinder", noise=HYPERS["noise"], seed=3)


def _fit(data, *, eps=1e-10, kernel="sqexp", **cfg_kw):
    x, y, _, _ = data
    cfg = TileHConfig(nb=NB, eps=eps, leaf_size=40, **cfg_kw)
    return GPModel(kernel, **HYPERS, config=cfg).fit(x, y)


def _dense_reference(model, x, y, x_test):
    kern = model.kernel_function(x)
    k = assemble_dense(kern, x)
    ks = kern(x, x_test)
    mean = ks.T @ np.linalg.solve(k, y)
    var = kern.diag(x_test) - np.einsum("ij,ij->j", ks, np.linalg.solve(k, ks))
    return mean, var


class TestExactness:
    @pytest.mark.parametrize("eps", [1e-4, 1e-8])
    def test_posterior_mean_error_tracks_aca_tolerance(self, data, eps):
        x, y, x_test, _ = data
        model = _fit(data, eps=eps)
        mean, var = model.predict(x_test)
        ref_mean, ref_var = _dense_reference(model, x, y, x_test)
        rel = np.linalg.norm(mean - ref_mean) / np.linalg.norm(ref_mean)
        assert rel <= 10 * eps, f"mean rel err {rel:.2e} vs eps {eps:g}"
        assert np.max(np.abs(var - ref_var)) <= 10 * eps * np.max(np.abs(ref_var))

    @pytest.mark.parametrize("kernel", ["matern12", "matern32", "matern52"])
    def test_matern_family_matches_dense(self, data, kernel):
        x, y, x_test, _ = data
        model = _fit(data, kernel=kernel)
        mean, _ = model.predict(x_test)
        ref_mean, _ = _dense_reference(model, x, y, x_test)
        assert np.linalg.norm(mean - ref_mean) <= 1e-8 * np.linalg.norm(ref_mean)

    def test_variance_bounds(self, data):
        _, _, x_test, _ = data
        model = _fit(data)
        _, var = model.predict(x_test)
        prior = HYPERS["signal"] ** 2 + HYPERS["noise"] ** 2
        assert np.all(var >= 0.0)
        assert np.all(var <= prior + 1e-12)  # conditioning cannot add variance

    def test_mean_recovers_latent_function(self, data):
        _, _, x_test, f_test = data
        mean, _ = _fit(data).predict(x_test)
        rmse = float(np.sqrt(np.mean((mean - f_test) ** 2)))
        assert rmse < 3 * HYPERS["noise"]


class TestExecutorEquivalence:
    def test_threaded_bit_identical_to_eager(self, data):
        _, _, x_test, _ = data
        r_e = _fit(data, accumulate=False).predict(x_test)
        r_t = _fit(
            data, accumulate=False, exec_mode="threaded", nworkers=2, scheduler="lws"
        ).predict(x_test)
        assert np.array_equal(r_e.mean, r_t.mean)
        assert np.array_equal(r_e.var, r_t.var)
        assert r_t.seconds is not None  # ran on the executor

    def test_process_trained_model_bit_identical_to_eager(self, data):
        _, _, x_test, _ = data
        r_e = _fit(data, accumulate=False).predict(x_test)
        r_p = _fit(data, accumulate=False, exec_mode="process", nworkers=2).predict(x_test)
        assert np.array_equal(r_e.mean, r_p.mean)
        assert np.array_equal(r_e.var, r_p.var)

    def test_racecheck_clean(self, data):
        _, _, x_test, _ = data
        r = _fit(data, racecheck=True).predict(x_test)  # raises on a violation
        assert np.all(np.isfinite(r.mean))

    def test_predict_graph_shape(self, data):
        _, _, x_test, _ = data
        model = _fit(data)
        result = model.predict(x_test)
        nt = model.solver_.desc.nt
        counts = Counter(t.kind for t in result.graph.tasks)
        assert counts["gp-assemble"] == nt
        assert counts["gp-predict"] == nt
        assert counts["trsm"] == 2 * nt  # forward + backward sweep
        assert counts["gemm"] == nt * (nt - 1)


class TestRoundTrip:
    def test_compressed_archive_round_trips_bitwise(self, data, tmp_path):
        x, y, x_test, _ = data
        model = _fit(data)
        ref = model.predict(x_test)
        path = tmp_path / "gp.npz"
        model.save(path)
        loaded = GPModel.load(path, x, y, kernel="sqexp", **HYPERS)
        out = loaded.predict(x_test)
        assert np.array_equal(out.mean, ref.mean)
        assert np.array_equal(out.var, ref.var)

    def test_mmap_archive_round_trips_to_ulps(self, data, tmp_path):
        x, y, x_test, _ = data
        model = _fit(data)
        ref = model.predict(x_test)
        path = tmp_path / "gp_raw.npz"
        model.save(path, compress=False)
        loaded = GPModel.load(path, x, y, kernel="sqexp", **HYPERS, mmap=True)
        out = loaded.predict(x_test)
        # Same factor bytes; only alignment-dependent BLAS rounding may differ.
        np.testing.assert_allclose(out.mean, ref.mean, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(out.var, ref.var, rtol=1e-12, atol=1e-12)


class TestPcg:
    def test_loose_factors_precondition_to_tight_mean(self, data):
        x, y, x_test, _ = data
        model = _fit(data, eps=1e-2)  # cheap, loose factorisation
        ref_mean, _ = _dense_reference(model, x, y, x_test)
        mean, result = model.predict_pcg(x_test, rtol=1e-12)
        assert result.converged
        assert 0 < result.iterations < 30  # the preconditioner must bite
        rel = np.linalg.norm(mean - ref_mean) / np.linalg.norm(ref_mean)
        assert rel < 1e-8, f"pcg-refined mean rel err {rel:.2e}"

    def test_pcg_beats_direct_at_loose_tolerance(self, data):
        x, y, x_test, _ = data
        model = _fit(data, eps=1e-2)
        ref_mean, _ = _dense_reference(model, x, y, x_test)
        direct, _ = model.predict(x_test)
        refined, _ = model.predict_pcg(x_test, rtol=1e-12)
        err_direct = np.linalg.norm(direct - ref_mean)
        err_refined = np.linalg.norm(refined - ref_mean)
        assert err_refined < err_direct


class TestValidation:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            GPModel("laplace")

    def test_zero_noise_rejected(self):
        with pytest.raises(ValueError):
            GPModel("sqexp", noise=0.0)

    def test_predict_before_fit_rejected(self, data):
        _, _, x_test, _ = data
        with pytest.raises(RuntimeError):
            GPModel("sqexp").predict(x_test)

    def test_shape_mismatches_rejected(self, data):
        x, y, x_test, _ = data
        with pytest.raises(ValueError):
            GPModel("sqexp").fit(x, y[:-1])
        model = _fit(data)
        with pytest.raises(ValueError):
            model.predict(x_test[:, :2])
