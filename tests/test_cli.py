"""Unit tests for the command-line driver (python -m repro)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.n == 2000 and args.precision == "d" and args.format == "tile-h"

    def test_all_flags(self):
        args = build_parser().parse_args(
            [
                "--n", "500", "--precision", "z", "--format", "blr",
                "--nb", "100", "--eps", "1e-5", "--scheduler", "ws",
                "--threads", "1", "4", "--seed", "3",
            ]
        )
        assert args.n == 500 and args.nb == 100 and args.threads == [1, 4]

    def test_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--format", "dense"])


class TestMain:
    def test_tile_h_run(self, capsys):
        rc = main(["--n", "400", "--nb", "100", "--threads", "1", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "forward error" in out
        assert "compression" in out
        assert "virtual-machine replay" in out

    def test_hmat_run(self, capsys):
        rc = main(["--n", "300", "--format", "hmat", "--threads", "1"])
        assert rc == 0
        assert "forward error" in capsys.readouterr().out

    def test_blr_run(self, capsys):
        rc = main(["--n", "300", "--format", "blr", "--nb", "100", "--threads", "1"])
        assert rc == 0

    def test_complex_run(self, capsys):
        rc = main(["--n", "300", "--precision", "z", "--nb", "100", "--threads", "1"])
        assert rc == 0

    def test_invalid_n(self, capsys):
        assert main(["--n", "1"]) == 2

    def test_cholesky_rejected_for_hmat(self, capsys):
        rc = main(["--n", "300", "--format", "hmat", "--method", "cholesky"])
        assert rc == 2

    def test_racecheck_run(self, capsys):
        rc = main(["--n", "300", "--nb", "100", "--threads", "1", "--racecheck"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "racecheck" in out
        assert "0 errors" in out
        assert "validated as linear extensions" in out

    def test_racecheck_hmat_run(self, capsys):
        rc = main(["--n", "250", "--format", "hmat", "--threads", "1", "--racecheck"])
        assert rc == 0
        assert "racecheck" in capsys.readouterr().out

    def test_racecheck_flag_parsed(self):
        args = build_parser().parse_args(["--racecheck"])
        assert args.racecheck is True
        assert build_parser().parse_args([]).racecheck is False


class TestServeCLI:
    def test_serve_and_request_end_to_end(self, tmp_path, capsys):
        """Boot a real server in-thread, drive it with `repro request`."""
        import threading
        import time

        from repro.service import FactorizationStore, SolveService, make_server
        from repro.service.cli import request_main

        svc = SolveService(FactorizationStore(tmp_path / "store"), workers=1)
        server = make_server(svc)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            rc = request_main([
                "--url", url, "--kernel", "laplace", "--n", "300",
                "--nb", "100", "--count", "2", "--check",
            ])
            assert rc == 0
            out = capsys.readouterr().out
            assert "forward error" in out
            rc = request_main(["--url", url, "--stats", "--count", "0"])
            assert rc == 0
            assert '"completed": 2' in capsys.readouterr().out
        finally:
            server.shutdown()
            server.server_close()
            svc.close()

    def test_request_unreachable_server(self, capsys):
        from repro.service.cli import request_main

        rc = request_main(["--url", "http://127.0.0.1:9", "--n", "300"])
        assert rc == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_request_rejects_bad_args(self):
        from repro.service.cli import request_main

        with pytest.raises(SystemExit):
            request_main(["--kernel", "nope"])
