"""Unit tests for the metric primitives and the instrumentation probe."""

import threading

import pytest

from repro.obs import Histogram, Instrumentation, MetricsRegistry, SchedulerStats, current


class TestHistogram:
    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "buckets": {}, "fine": {}, "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_fine_buckets_subdivide_decades(self):
        h = Histogram()
        for v in (1.1e-4, 2.5e-4, 4.9e-4, 6e-4, 1.5e-3):
            h.observe(v)
        # Decade view is unchanged (backward compat)...
        assert h.buckets == {"1e-4": 4, "1e-3": 1}
        # ...while the fine view splits each decade at the 1/2/5 mantissas.
        assert h.fine == {"1e-4": 1, "2e-4": 2, "5e-4": 1, "1e-3": 1}

    def test_quantiles_resolve_sub_ms(self):
        h = Histogram()
        for _ in range(90):
            h.observe(3e-4)
        for _ in range(10):
            h.observe(8e-3)
        snap = h.snapshot()
        # Under decade-only buckets both values would land in one of two huge
        # bins; the fine buckets must place p50 in the sub-ms range.
        assert 2e-4 <= snap["p50"] < 1e-3
        assert snap["p99"] >= 5e-3
        assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]

    def test_observe_stats(self):
        h = Histogram()
        for v in (1.0, 3.0, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9.0
        assert h.min == 1.0 and h.max == 5.0
        assert h.mean == pytest.approx(3.0)

    def test_decade_buckets(self):
        h = Histogram()
        h.observe(2e-6)   # 1e-6 decade
        h.observe(5e-3)   # 1e-3 decade
        h.observe(5e-3)
        h.observe(0.0)    # <=0 bucket
        snap = h.snapshot()
        assert snap["buckets"]["1e-6"] == 1
        assert snap["buckets"]["1e-3"] == 2
        assert snap["buckets"]["<=0"] == 1

    def test_extreme_decades_clamped(self):
        h = Histogram()
        h.observe(1e-30)
        h.observe(1e30)
        assert h.buckets == {"1e-9": 1, "1e9": 1}


class TestMetricsRegistry:
    def test_counter_semantics(self):
        reg = MetricsRegistry()
        assert reg.counter("x") == 0.0
        reg.inc("x")
        reg.inc("x", 2.5)
        assert reg.counter("x") == 3.5

    def test_gauge_semantics(self):
        reg = MetricsRegistry()
        assert reg.gauge("g") == 0.0
        reg.set_gauge("g", 4.0)
        assert reg.add_gauge("g", -1.0) == 3.0
        reg.max_gauge("peak", 3.0)
        reg.max_gauge("peak", 1.0)  # lower value must not win
        assert reg.gauge("peak") == 3.0

    def test_histogram_access(self):
        reg = MetricsRegistry()
        assert reg.histogram("h")["count"] == 0
        reg.observe("h", 2.0)
        reg.observe("h", 4.0)
        snap = reg.histogram("h")
        assert snap["count"] == 2 and snap["mean"] == pytest.approx(3.0)

    def test_as_dict_is_json_shaped(self):
        import json

        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 0.5)
        d = reg.as_dict()
        assert set(d) == {"counters", "gauges", "histograms"}
        json.dumps(d)  # must be serialisable as-is

    def test_thread_safety(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.inc("n")
                reg.add_gauge("g", 1.0)
                reg.observe("h", 1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 4000
        assert reg.gauge("g") == 4000
        assert reg.histogram("h")["count"] == 4000


class TestSchedulerStats:
    def test_depth_sampling(self):
        st = SchedulerStats()
        for d in (1, 5, 3):
            st.sample_depth(d)
        snap = st.snapshot()
        assert snap["queue_depth_samples"] == 3
        assert snap["queue_depth_max"] == 5
        assert snap["queue_depth_mean"] == pytest.approx(3.0)

    def test_empty_snapshot(self):
        snap = SchedulerStats().snapshot()
        assert snap["pushes"] == 0 and snap["queue_depth_mean"] == 0.0


class TestInstrumentation:
    def test_inactive_by_default(self):
        assert current() is None

    def test_activation_scope(self):
        with Instrumentation() as probe:
            assert current() is probe
        assert current() is None

    def test_double_activation_rejected(self):
        with Instrumentation():
            with pytest.raises(RuntimeError, match="already active"):
                Instrumentation().__enter__()
        assert current() is None

    def test_task_span_aggregates(self):
        probe = Instrumentation()
        probe.task_span("gemm", 0, 0.0, 1.0)
        probe.task_span("gemm", 1, 1.0, 1.5)
        probe.task_span("trsm", 0, 1.0, 2.0)
        assert probe.kinds["gemm"]["count"] == 2
        assert probe.kinds["gemm"]["seconds"] == pytest.approx(1.5)
        assert probe.workers[0]["busy_seconds"] == pytest.approx(2.0)
        assert probe.workers[1]["tasks"] == 1

    def test_h_bytes_peak_and_series(self):
        probe = Instrumentation()
        probe.h_bytes_delta(100.0, t=0.0)
        probe.h_bytes_delta(50.0, t=1.0)
        probe.h_bytes_delta(-80.0, t=2.0)
        assert probe.registry.gauge("h.bytes") == 70.0
        assert probe.registry.gauge("h.peak_bytes") == 150.0
        assert [v for _, v in probe.series["h_bytes"]] == [100.0, 150.0, 70.0]

    def test_block_compressed_byte_accounting(self):
        probe = Instrumentation()
        probe.block_compressed(100, 50, 4, 8)
        assert probe.registry.counter("h.compressed_bytes") == (100 + 50) * 4 * 8
        assert probe.registry.counter("h.dense_bytes") == 100 * 50 * 8


class TestWorkerLabelledQueueDepth:
    def test_unlabelled_path_unchanged(self):
        probe = Instrumentation()
        probe.service_queue_depth(3)
        probe.service_queue_depth(1)
        reg = probe.registry
        assert reg.gauge("service.queue_depth") == 1
        assert reg.gauge("service.queue_depth_peak") == 3
        assert "service_queue_depth" in probe.series

    def test_worker_label_gets_own_series_and_aggregate_peak(self):
        probe = Instrumentation()
        probe.service_queue_depth(5, worker="w0")
        probe.service_queue_depth(2, worker="w1")
        reg = probe.registry
        assert reg.gauge('service.queue_depth{worker="w0"}') == 5
        assert reg.gauge('service.queue_depth{worker="w1"}') == 2
        assert reg.gauge('service.queue_depth_peak{worker="w0"}') == 5
        # The aggregate peak (what the report's service section reads) still
        # tracks the fleet-wide maximum.
        assert reg.gauge("service.queue_depth_peak") == 5
        assert "service_queue_depth[w0]" in probe.series
        assert "service_queue_depth[w1]" in probe.series

    def test_fleet_slo_gauges(self):
        probe = Instrumentation()
        probe.fleet_lane_slo("interactive", 0.95, 0.05)
        reg = probe.registry
        assert reg.gauge('fleet.slo_attainment{lane="interactive"}') == 0.95
        assert reg.gauge('fleet.slo_burn_rate{lane="interactive"}') == 0.05
