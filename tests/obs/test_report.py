"""Run-report tests: schema, accounting invariants, determinism, overhead."""

import json
import time

import numpy as np
import pytest

from repro.baselines import DenseTiledLU
from repro.core import TileHConfig, TileHMatrix
from repro.dense import flops_gemm, flops_getrf, flops_trsm
from repro.geometry import cylinder_cloud, make_kernel
from repro.obs import (
    Instrumentation,
    build_run_report,
    load_report,
    nontiming_view,
    render_report,
    validate_report,
    write_report,
)
from repro.runtime import AccessMode, StfEngine, ThreadedExecutor


def _profiled_threaded_lu(n=400, nb=100, scheduler="ws", nworkers=2):
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)
    cfg = TileHConfig(
        nb=nb, eps=1e-4, leaf_size=48, accumulate=False,
        exec_mode="threaded", nworkers=nworkers, scheduler=scheduler,
    )
    with Instrumentation() as probe:
        _a, info = TileHMatrix.build_factorize(kern, pts, cfg)
    return build_run_report(
        probe=probe, trace=info.trace, graph=info.graph,
        meta={"n": n, "nb": nb, "scheduler": scheduler},
    ), info


class TestThreadedRunReport:
    @pytest.fixture(scope="class")
    def report_info(self):
        return _profiled_threaded_lu()

    def test_schema_valid(self, report_info):
        report, _ = report_info
        assert validate_report(report) == []

    def test_kind_times_sum_to_busy(self, report_info):
        # The per-kind table is integrated from the same trace as the busy
        # total, so the sums must agree to well within the 1% acceptance bar.
        report, _ = report_info
        busy = report["totals"]["busy_seconds"]
        kind_sum = sum(e["seconds"] for e in report["kinds"].values())
        assert kind_sum == pytest.approx(busy, rel=0.01)
        share_sum = sum(e["share_of_busy"] for e in report["kinds"].values())
        assert share_sum == pytest.approx(1.0, rel=1e-6)

    def test_worker_accounting(self, report_info):
        report, info = report_info
        assert len(report["workers"]) == 2
        worker_busy = sum(w["busy_seconds"] for w in report["workers"])
        assert worker_busy == pytest.approx(report["totals"]["busy_seconds"], rel=1e-9)
        for w in report["workers"]:
            assert w["busy_seconds"] + w["idle_seconds"] == pytest.approx(
                report["totals"]["makespan"], rel=1e-9
            )
        assert report["totals"]["n_tasks"] == info.n_tasks

    def test_steal_and_idle_counters_nonzero_under_ws(self, report_info):
        # ISSUE acceptance: ws with >= 2 workers must show stealing activity
        # and nonzero idle time.
        report, _ = report_info
        sched = report["scheduler"]
        assert sched["pushes"] > 0
        assert sched["steal_attempts"] > 0
        assert report["totals"]["idle_seconds"] > 0.0
        assert sched["queue_depth_samples"] >= sched["pushes"]

    def test_hmatrix_section_populated(self, report_info):
        report, _ = report_info
        h = report["hmatrix"]
        assert h["blocks_compressed"] > 0
        assert h["recompressions"] > 0
        assert 0 < h["compressed_bytes"] < h["dense_bytes"]
        assert h["peak_bytes"] > 0

    def test_render_and_roundtrip(self, report_info, tmp_path):
        report, _ = report_info
        text = render_report(report)
        assert "per-kind breakdown" in text
        assert "per-worker utilization" in text
        assert "steal_attempts" in text
        p = write_report(report, tmp_path / "run.json")
        assert load_report(p) == json.loads(json.dumps(report))


class TestDenseTiledFlops:
    def test_flop_totals_match_analytic_model(self):
        # ISSUE acceptance: the report's flop totals for the dense-tiled
        # baseline must equal the dense/flops.py estimates exactly (same
        # formulas, summed per kind over the LU loop nest).
        n, nb = 192, 48
        nt = n // nb
        rng = np.random.default_rng(0)
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        with Instrumentation() as probe:
            lu = DenseTiledLU(a.copy(), nb)
            info = lu.factorize()
        report = build_run_report(probe=probe, graph=info.graph)
        assert validate_report(report) == []
        exp_getrf = nt * flops_getrf(nb)
        n_trsm = nt * (nt - 1)  # (nt-1-k) left + right panels per step k
        exp_trsm = n_trsm * flops_trsm(nb, nb)
        n_gemm = sum((nt - 1 - k) ** 2 for k in range(nt))
        exp_gemm = n_gemm * flops_gemm(nb, nb, nb)
        kinds = report["kinds"]
        assert kinds["getrf"]["flops"] == pytest.approx(exp_getrf, rel=1e-12)
        assert kinds["trsm"]["flops"] == pytest.approx(exp_trsm, rel=1e-12)
        assert kinds["gemm"]["flops"] == pytest.approx(exp_gemm, rel=1e-12)
        assert report["totals"]["total_flops"] == pytest.approx(
            exp_getrf + exp_trsm + exp_gemm, rel=1e-12
        )

    def test_operand_bytes_tagged(self):
        n, nb = 128, 64
        a = np.eye(n) * n
        with Instrumentation() as probe:
            DenseTiledLU(a, nb).factorize()
        # Every dense-tiled task touches nb x nb float64 tiles.
        for kind, agg in probe.kinds.items():
            assert agg["operand_bytes"] > 0, kind
        assert probe.registry.counter("tasks.submitted") > 0


class TestDeterminism:
    def test_eager_profiled_runs_agree_on_nontiming_view(self):
        # Two eager runs of the same computation: wall-clock differs, every
        # counter/flop/structure metric must match exactly.
        views = []
        pts = cylinder_cloud(300)
        kern = make_kernel("laplace", pts)
        cfg = TileHConfig(nb=75, eps=1e-4, leaf_size=48)
        for _ in range(2):
            with Instrumentation() as probe:
                mat = TileHMatrix.build(kern, pts, cfg)
                info = mat.factorize()
            report = build_run_report(probe=probe, graph=info.graph)
            assert validate_report(report) == []
            views.append(nontiming_view(report))
        assert views[0] == views[1]


class TestSchemaValidation:
    def test_rejects_missing_sections(self):
        errors = validate_report({"schema": "repro-run-report/v1"})
        assert any("totals" in e for e in errors)
        assert any("hmatrix" in e for e in errors)

    def test_rejects_wrong_schema_id(self):
        report = build_run_report()
        report["schema"] = "bogus/v0"
        assert any("bogus" in e for e in validate_report(report))

    def test_rejects_negative_and_wrong_types(self):
        report = build_run_report()
        report["totals"]["busy_seconds"] = -1.0
        report["totals"]["n_tasks"] = "three"
        errors = validate_report(report)
        assert any("below minimum" in e for e in errors)
        assert any("n_tasks" in e for e in errors)

    def test_write_report_refuses_invalid(self, tmp_path):
        report = build_run_report()
        del report["scheduler"]
        with pytest.raises(ValueError, match="invalid run report"):
            write_report(report, tmp_path / "bad.json")

    def test_empty_report_is_valid(self):
        report = build_run_report()
        assert validate_report(report) == []
        assert report["totals"]["n_tasks"] == 0


def _spin_chain_graph(ntasks: int, spin_seconds: float):
    eng = StfEngine(mode="deferred")
    h = eng.handle(object())

    def spin():
        t_end = time.perf_counter() + spin_seconds
        while time.perf_counter() < t_end:
            pass

    for _ in range(ntasks):
        eng.insert_task("k", spin, [(h, AccessMode.RW)])
    return eng.wait_all()


class TestOverhead:
    NTASKS = 20
    SPIN = 0.004

    def _best_run(self, instrumented: bool) -> float:
        ideal = self.NTASKS * self.SPIN
        best = float("inf")
        for _ in range(3):
            graph = _spin_chain_graph(self.NTASKS, self.SPIN)
            if instrumented:
                with Instrumentation() as probe:
                    ex = ThreadedExecutor(1, scheduler="ws", instrument=probe)
                    best = min(best, ex.run(graph))
            else:
                best = min(best, ThreadedExecutor(1, scheduler="ws").run(graph))
        return best / ideal

    def test_disabled_instrumentation_overhead_under_5_percent(self):
        # ISSUE acceptance: with no probe active the hook sites cost one None
        # test each — the executor must stay within 5% of pure spin time.
        assert self._best_run(instrumented=False) <= 1.05

    def test_profiled_run_overhead_bounded(self):
        # The profiled path does real work per task (span + counters) but
        # must stay within a small constant factor of the spin time.
        assert self._best_run(instrumented=True) <= 1.25


class TestTracingSection:
    @pytest.fixture(scope="class")
    def traced_report(self):
        from repro.service.pipeline import SolveService
        from repro.service.store import FactorizationStore

        with Instrumentation(trace_capacity=8) as probe:
            svc = SolveService(FactorizationStore(), workers=1, max_batch=2)
            spec = {"kernel": "laplace", "n": 120, "nb": 60, "eps": 1e-6,
                    "leaf_size": 32}
            svc.submit(spec, np.ones(120)).result(timeout=60)
            svc.close()
        return build_run_report(probe=probe, meta={"mode": "serve"},
                                service=svc.stats())

    def test_tracing_folded_in_and_schema_valid(self, traced_report):
        assert validate_report(traced_report) == []
        tracing = traced_report["tracing"]
        assert tracing["completed"] == 1
        (trace,) = tracing["recent"]
        names = [s["name"] for s in trace["spans"]]
        assert "queue-wait" in names and "solve" in names
        assert "solve" in tracing["phases"]

    def test_render_includes_tracing(self, traced_report):
        text = render_report(traced_report)
        assert "tracing" in text and "solve" in text

    def test_no_traces_no_section(self):
        with Instrumentation(trace_capacity=8) as probe:
            pass
        report = build_run_report(probe=probe, meta={})
        assert "tracing" not in report
        assert validate_report(report) == []


class TestDiffReports:
    def _minimal(self, makespan, getrf, busy=None):
        busy = makespan if busy is None else busy
        return {
            "meta": {"n": 400},
            "totals": {"makespan": makespan, "busy_seconds": busy,
                       "idle_seconds": makespan - busy * 0.5,
                       "utilization": busy / makespan, "total_flops": 1e9},
            "kinds": {
                "getrf": {"count": 4, "seconds": getrf},
                "gemm": {"count": 12, "seconds": makespan - getrf},
            },
            "workers": [{"worker": 0, "busy_seconds": busy,
                         "idle_seconds": 0.0, "utilization": 1.0}],
        }

    def test_no_regression_within_threshold(self):
        from repro.obs import diff_reports

        a = self._minimal(1.00, 0.40)
        b = self._minimal(1.05, 0.42)
        text, regressions = diff_reports(a, b, threshold=0.10)
        assert regressions == []
        assert "no regressions beyond 10%" in text

    def test_regressions_flagged_beyond_threshold(self):
        from repro.obs import diff_reports

        a = self._minimal(1.00, 0.40)
        b = self._minimal(1.50, 0.70)
        text, regressions = diff_reports(a, b, threshold=0.10)
        assert any(r.startswith("totals.makespan") for r in regressions)
        assert any("kinds.getrf.seconds" in r for r in regressions)
        assert "!" in text and "regressions (> 10%):" in text

    def test_improvements_not_flagged(self):
        from repro.obs import diff_reports

        a = self._minimal(1.50, 0.70)
        b = self._minimal(1.00, 0.40)
        _, regressions = diff_reports(a, b, threshold=0.10)
        assert regressions == []

    def test_kind_only_in_one_report(self):
        from repro.obs import diff_reports

        a = self._minimal(1.0, 0.4)
        b = self._minimal(1.0, 0.4)
        b["kinds"]["trsm"] = {"count": 2, "seconds": 0.1}
        text, regressions = diff_reports(a, b)
        assert "trsm" in text  # union of kinds is shown
        assert regressions == []  # zero baseline -> n/a, never flagged

    def test_cli_diff_exit_codes(self, tmp_path):
        from repro.__main__ import main

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(self._minimal(1.00, 0.40)))
        b.write_text(json.dumps(self._minimal(1.50, 0.70)))
        assert main(["report", "--diff", str(a), str(b)]) == 1
        assert main(["report", "--diff", str(a), str(a)]) == 0
