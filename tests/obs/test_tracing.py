"""Request-tracing tests: span collection, ring buffer, ambient propagation,
chrome-trace export, and the cross-shard fleet x process acceptance path."""

import json
import time

import numpy as np
import pytest

from repro.obs import (
    Instrumentation,
    RequestTracer,
    TraceContext,
    current_trace,
    export_request_chrome_trace,
)
from repro.service.fleet import LaneConfig, ServeFleet
from repro.service.pipeline import SolveService
from repro.service.problems import ProblemSpec, spec_fingerprint
from repro.service.store import FactorizationStore


class TestTraceContext:
    def test_spans_record_relative_to_start(self):
        ctx = TraceContext("key1", "interactive")
        t0 = time.perf_counter()
        ctx.add_span("solve", t0, t0 + 0.25, worker="w0", batch=3)
        d = ctx.to_dict()
        assert d["key"] == "key1" and d["lane"] == "interactive"
        assert d["outcome"] == "pending"
        (s,) = d["spans"]
        assert s["name"] == "solve" and s["worker"] == "w0"
        assert s["t1"] - s["t0"] == pytest.approx(0.25)
        assert s["meta"] == {"batch": 3}

    def test_span_cap_counts_drops(self):
        ctx = TraceContext(max_spans=4)
        for i in range(10):
            ctx.add_span(f"s{i}", 0.0, 1.0)
        assert len(ctx.spans) == 4
        assert ctx.dropped_spans == 6
        assert ctx.to_dict()["dropped_spans"] == 6

    def test_activate_restores_previous(self):
        outer, inner = TraceContext(), TraceContext()
        assert current_trace() is None
        with outer.activate():
            assert current_trace() is outer
            with inner.activate():
                assert current_trace() is inner
            assert current_trace() is outer
        assert current_trace() is None

    def test_finish_is_idempotent(self):
        tracer = RequestTracer(capacity=4)
        ctx = tracer.start("k")
        ctx.finish("ok")
        ctx.finish("late")  # second finish must not double-complete
        assert tracer.completed == 1
        assert tracer.traces()[0]["outcome"] == "ok"


class TestRequestTracer:
    def test_disabled_returns_none(self):
        tracer = RequestTracer(capacity=0)
        assert not tracer.enabled
        assert tracer.start("k") is None

    def test_ring_evicts_oldest(self):
        tracer = RequestTracer(capacity=2)
        ids = []
        for i in range(3):
            ctx = tracer.start(f"k{i}")
            ids.append(ctx.trace_id)
            ctx.finish()
        assert tracer.completed == 3 and tracer.evicted == 1
        kept = [t["trace_id"] for t in tracer.traces()]
        assert kept == ids[1:]
        assert tracer.get(ids[0]) is None
        assert tracer.get(ids[2])["trace_id"] == ids[2]

    def test_phase_totals_and_slowest(self):
        tracer = RequestTracer(capacity=8)
        fast = tracer.start("fast", lane="interactive")
        fast.add_span("solve", fast.start, fast.start + 0.01)
        fast.finish()
        slow = tracer.start("slow", lane="interactive")
        slow.add_span("solve", slow.start, slow.start + 0.02)
        slow.add_span("build", slow.start, slow.start + 0.5)
        time.sleep(0.002)
        slow.finish()
        phases = tracer.phase_totals()
        assert phases["solve"]["count"] == 2
        assert phases["solve"]["seconds"] == pytest.approx(0.03, rel=0.05)
        assert tracer.slowest_per_lane()["interactive"]["key"] == "slow"
        rep = tracer.report()
        assert rep["capacity"] == 8 and rep["completed"] == 2
        assert len(rep["recent"]) == 2


class TestChromeExport:
    def test_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            export_request_chrome_trace([], tmp_path / "t.json")

    def test_lanes_and_counters(self, tmp_path):
        tracer = RequestTracer(capacity=4)
        ctx = tracer.start("k", lane="batch")
        ctx.add_span("queue-wait", ctx.start, ctx.start + 0.001)
        ctx.add_span("solve", ctx.start + 0.001, ctx.start + 0.01, worker="w0")
        ctx.finish()
        path = export_request_chrome_trace(
            tracer.traces(),
            tmp_path / "t.json",
            counters={"service_queue_depth[w0]": [(0.0, 1.0), (0.01, 0.0)]},
            counters_origin=ctx.start,
            metadata={"scenario": "unit"},
        )
        doc = json.loads(path.read_text())
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"request", "w0"}  # no-worker spans get their own lane
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"queue-wait", "solve"}
        assert all(e["args"]["trace_id"] == ctx.trace_id for e in xs)
        cs = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(cs) == 2 and cs[0]["ts"] == pytest.approx(0.0, abs=1e-3)
        assert doc["metadata"]["n_traces"] == 1
        assert doc["metadata"]["scenario"] == "unit"


class TestServiceTracing:
    def test_single_service_trace_lifecycle(self):
        with Instrumentation(trace_capacity=8) as probe:
            svc = SolveService(FactorizationStore(), workers=1, max_batch=2)
            spec = {"kernel": "laplace", "n": 120, "nb": 60, "eps": 1e-6,
                    "leaf_size": 32}
            svc.submit(spec, np.ones(120)).result(timeout=60)
            svc.close()
        (trace,) = probe.tracer.traces()
        names = [s["name"] for s in trace["spans"]]
        assert trace["outcome"] == "ok"
        assert "queue-wait" in names and "solve" in names
        # Cold start: miss -> build (wrapping the factorize phase).
        assert "store-miss" in names and "build" in names and "factorize" in names
        # Span times are relative to the trace and inside its duration.
        for s in trace["spans"]:
            assert s["t0"] >= -1e-6
            assert s["t1"] <= trace["duration_seconds"] + 1e-6

    def test_disabled_tracer_records_nothing(self):
        with Instrumentation(trace_capacity=0) as probe:
            svc = SolveService(FactorizationStore(), workers=1)
            spec = {"kernel": "laplace", "n": 100, "eps": 1e-6, "leaf_size": 32}
            svc.submit(spec, np.ones(100)).result(timeout=60)
            svc.close()
        assert probe.tracer.completed == 0
        assert probe.tracer.traces() == []


def _specs_on_distinct_shards(fleet, n0=120, tries=40):
    """Two small specs whose fingerprints route to different fleet shards."""
    base = ProblemSpec(kernel="laplace", n=n0, nb=60, eps=1e-6, leaf_size=32)
    first_shard = fleet.worker_for(spec_fingerprint(base))
    for n in range(n0 + 2, n0 + 2 * tries, 2):
        cand = ProblemSpec(kernel="laplace", n=n, nb=n // 2, eps=1e-6,
                           leaf_size=32)
        if fleet.worker_for(spec_fingerprint(cand)) != first_shard:
            return base, cand
    pytest.skip("no spec pair landed on distinct shards")


class TestFleetProcessAcceptance:
    """ISSUE acceptance: a fleet solve's trace reconstructs the full request
    lifecycle across >= 2 shards, with process-executor worker spans attached
    to the correct trace id, exported as one valid chrome trace."""

    @pytest.fixture(scope="class")
    def fleet_run(self):
        with Instrumentation(trace_capacity=16) as probe:
            fleet = ServeFleet(
                2,
                lanes=(LaneConfig("interactive", max_inflight=8,
                                  slo_seconds=30.0),
                       LaneConfig("batch", max_inflight=8)),
                service_threads=1,
                max_batch=2,
                max_delay=0.001,
                exec_mode="process",
                exec_workers=1,
            )
            try:
                spec_a, spec_b = _specs_on_distinct_shards(fleet)
                shard_a = fleet.worker_for(spec_fingerprint(spec_a))
                shard_b = fleet.worker_for(spec_fingerprint(spec_b))
                ta = fleet.submit(spec_a, np.ones(spec_a.n), lane="interactive")
                tb = fleet.submit(spec_b, np.ones(spec_b.n), lane="batch")
                ta.result(timeout=300)
                tb.result(timeout=300)
            finally:
                fleet.close()
        traces = {t["key"]: t for t in probe.tracer.traces()}
        return probe, traces, (spec_a, shard_a), (spec_b, shard_b)

    def test_both_traces_complete_across_shards(self, fleet_run):
        probe, traces, (spec_a, shard_a), (spec_b, shard_b) = fleet_run
        assert shard_a != shard_b
        assert len(traces) == 2
        for spec, shard in ((spec_a, shard_a), (spec_b, shard_b)):
            trace = traces[spec_fingerprint(spec)]
            assert trace["outcome"] == "ok"
            names = [s["name"] for s in trace["spans"]]
            assert "route" in names
            assert "queue-wait" in names
            assert "solve" in names
            # Cold start went through the store and the factorize build.
            assert "store-miss" in names and "factorize" in names
            route = next(s for s in trace["spans"] if s["name"] == "route")
            assert route["meta"]["shard"] == f"w{shard}"
            # Pipeline-side spans carry the owning shard's worker label.
            solve = next(s for s in trace["spans"] if s["name"] == "solve")
            assert solve["worker"] == f"w{shard}"

    def test_process_kernel_spans_attach_to_owning_trace(self, fleet_run):
        _, traces, (spec_a, _), (spec_b, _) = fleet_run
        for spec in (spec_a, spec_b):
            trace = traces[spec_fingerprint(spec)]
            kernels = [s for s in trace["spans"]
                       if s["name"].startswith("kernel:")]
            assert kernels, "cold build must contribute worker kernel spans"
            assert all(s["worker"].startswith("proc") for s in kernels)
            # Kernel spans nest inside the request's factorize phase.
            fact = next(s for s in trace["spans"] if s["name"] == "factorize")
            for s in kernels:
                assert s["t0"] >= fact["t0"] - 1e-6
                assert s["t1"] <= fact["t1"] + 1e-6

    def test_lanes_and_slo_recorded(self, fleet_run):
        probe, traces, (spec_a, _), (spec_b, _) = fleet_run
        assert traces[spec_fingerprint(spec_a)]["lane"] == "interactive"
        assert traces[spec_fingerprint(spec_b)]["lane"] == "batch"
        reg = probe.registry.as_dict()
        assert reg["gauges"].get('fleet.slo_attainment{lane="interactive"}') == 1.0

    def test_single_chrome_trace_round_trips(self, fleet_run, tmp_path):
        probe, traces, _, _ = fleet_run
        path = export_request_chrome_trace(
            list(traces.values()),
            tmp_path / "fleet.trace.json",
            counters=probe.series,
            counters_origin=probe.origin,
            metadata={"scenario": "fleet-process"},
        )
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert doc["metadata"]["n_traces"] == 2
        assert sorted(doc["metadata"]["trace_ids"]) == sorted(
            t["trace_id"] for t in traces.values()
        )
        # Thread-name metadata is present and covers every span lane.
        named = {e["args"]["name"]: e["tid"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        span_lanes = {s.get("worker") or "request"
                      for t in traces.values() for s in t["spans"]}
        assert span_lanes <= set(named)
        assert any(w.startswith("proc") for w in named)
        # Every span became a well-formed X event on its lane's tid.
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == sum(len(t["spans"]) for t in traces.values())
        for e in xs:
            assert e["dur"] >= 0.0 and e["ts"] >= 0.0
            assert e["tid"] in named.values()
            assert e["args"]["trace_id"] in doc["metadata"]["trace_ids"]
        # Counter tracks (per-worker queue depth samples) came along.
        cs = [e for e in events if e["ph"] == "C"]
        assert any("service_queue_depth" in e["name"] for e in cs)
