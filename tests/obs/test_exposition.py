"""Exposition tests: sliding windows, Prometheus rendering/parsing, the
/metrics document and the /tracez payload."""

import numpy as np
import pytest

from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    RequestTracer,
    SlidingWindow,
    metrics_text,
    parse_prometheus,
    prometheus_text,
    tracez_payload,
)
from repro.service.pipeline import SolveService
from repro.service.store import FactorizationStore


class _FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestSlidingWindow:
    def test_empty_snapshot_is_zeros(self):
        snap = SlidingWindow(60.0).snapshot()
        assert snap["count"] == 0 and snap["p99"] == 0.0
        assert snap["window_seconds"] == 60.0

    def test_observations_age_out(self):
        clock = _FakeClock()
        w = SlidingWindow(10.0, clock=clock)
        w.observe(1.0)
        clock.t = 5.0
        w.observe(2.0)
        snap = w.snapshot()
        assert snap["count"] == 2 and snap["max"] == 2.0
        assert snap["mean"] == pytest.approx(1.5)
        clock.t = 12.0  # first observation is now older than the window
        snap = w.snapshot()
        assert snap["count"] == 1 and snap["sum"] == 2.0

    def test_quantiles_ordered(self):
        clock = _FakeClock()
        w = SlidingWindow(100.0, clock=clock)
        for i in range(100):
            w.observe(i / 100.0)
        snap = w.snapshot()
        assert snap["p50"] == pytest.approx(0.50, abs=0.02)
        assert snap["p95"] == pytest.approx(0.95, abs=0.02)
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]

    def test_maxlen_bounds_memory(self):
        w = SlidingWindow(1e9, maxlen=8)
        for i in range(100):
            w.observe(float(i), t=0.0)
        assert w.snapshot(now=0.0)["count"] == 8


class TestPrometheusText:
    def test_counters_gauges_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("service.requests.completed", 5)
        reg.set_gauge('service.queue_depth{worker="w0"}', 3)
        reg.set_gauge('fleet.slo_attainment{lane="interactive"}', 0.875)
        text = prometheus_text(reg.as_dict())
        parsed = parse_prometheus(text)
        assert parsed["repro_service_requests_completed"] == [({}, 5.0)]
        assert parsed["repro_service_queue_depth"] == [({"worker": "w0"}, 3.0)]
        assert parsed["repro_fleet_slo_attainment"] == [
            ({"lane": "interactive"}, 0.875)
        ]
        # Dots become underscores; TYPE lines are emitted once per family.
        assert text.count("# TYPE repro_service_queue_depth gauge") == 1

    def test_histograms_render_as_summaries(self):
        reg = MetricsRegistry()
        for v in (0.001, 0.002, 0.004, 0.2):
            reg.observe("service.latency", v)
        parsed = parse_prometheus(prometheus_text(reg.as_dict()))
        by_q = {
            labels["quantile"]: v
            for labels, v in parsed["repro_service_latency"]
        }
        assert set(by_q) == {"0.5", "0.95", "0.99"}
        assert by_q["0.5"] <= by_q["0.95"] <= by_q["0.99"]
        assert parsed["repro_service_latency_count"] == [({}, 4.0)]
        assert parsed["repro_service_latency_sum"][0][1] == pytest.approx(0.207)

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_prometheus("repro_ok 1\nthis is { not exposition\n")


class TestMetricsText:
    def test_service_document_parses_and_has_lane_windows(self):
        with Instrumentation(trace_capacity=4) as probe:
            svc = SolveService(FactorizationStore(), workers=1, max_batch=2)
            spec = {"kernel": "laplace", "n": 100, "eps": 1e-6, "leaf_size": 32}
            svc.submit(spec, np.ones(100)).result(timeout=60)
            text = metrics_text(service=svc, probe=probe)
            svc.close()
        parsed = parse_prometheus(text)
        assert parsed["repro_traces_completed"] == [({}, 1.0)]
        # The stats() tree is flattened under the service_ prefix...
        assert parsed["repro_service_requests_completed"][0][1] == 1.0
        # ...and the single service exposes its window as the default lane.
        lanes = {
            labels["lane"] for labels, _ in parsed["repro_lane_latency_seconds"]
        }
        assert lanes == {"default"}
        assert parsed["repro_lane_latency_seconds_count"][0][1] == 1.0

    def test_no_probe_no_service_is_empty(self):
        assert metrics_text(service=None, probe=None) == ""


class TestTracezPayload:
    def test_disabled(self):
        assert tracez_payload(None) == {"enabled": False, "traces": []}

        class _NoTrace:
            tracer = RequestTracer(capacity=0)

        assert tracez_payload(_NoTrace())["enabled"] is False

    def test_listing_and_lookup(self):
        tracer = RequestTracer(capacity=8)
        ctx = tracer.start("k1", lane="interactive")
        ctx.add_span("solve", ctx.start, ctx.start + 0.01)
        ctx.finish()

        class _Probe:
            pass

        probe = _Probe()
        probe.tracer = tracer
        payload = tracez_payload(probe)
        assert payload["enabled"] and payload["completed"] == 1
        assert payload["traces"][0]["trace_id"] == ctx.trace_id
        assert payload["slowest_per_lane"]["interactive"]["key"] == "k1"
        found = tracez_payload(probe, trace_id=ctx.trace_id)
        assert found["found"] and found["trace"]["key"] == "k1"
        missing = tracez_payload(probe, trace_id="deadbeef")
        assert missing["found"] is False and missing["trace"] is None


class TestFineHistogramExposition:
    def test_sub_ms_quantiles_survive_exposition(self):
        # End-to-end satellite check: a latency mix that decade buckets
        # collapse must still expose a sub-millisecond p50.
        reg = MetricsRegistry()
        for _ in range(95):
            reg.observe("service.latency", 3e-4)
        for _ in range(5):
            reg.observe("service.latency", 2e-2)
        parsed = parse_prometheus(prometheus_text(reg.as_dict()))
        by_q = {
            labels["quantile"]: v
            for labels, v in parsed["repro_service_latency"]
        }
        assert 1e-4 < by_q["0.5"] < 1e-3
