"""Multi-RHS panel solves: column-stability is a bit-level contract.

The solve service batches concurrent requests into one panel sweep, which is
only sound if column ``c`` of a panel solution is *bit-identical* to solving
that column alone — for every width, dtype, factorization and executor.
"""

import numpy as np
import pytest

from repro.core import (
    TileHConfig,
    TileHMatrix,
    tiled_chol_solve,
    tiled_getrf_tasks,
    tiled_potrf_tasks,
    tiled_solve,
    tiled_solve_tasks,
)
from repro.geometry import cylinder_cloud, exponential_kernel, laplace_kernel, make_kernel

N = 400


def _factorized_desc(kernel_name):
    pts = cylinder_cloud(N)
    kern = make_kernel(kernel_name, pts)
    a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32))
    tiled_getrf_tasks(a.desc)
    return a.desc


@pytest.fixture(scope="module")
def lu_d():
    return _factorized_desc("laplace")


@pytest.fixture(scope="module")
def lu_z():
    return _factorized_desc("helmholtz")


def _panel(n, width, seed, complex_=False):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((n, width))
    if complex_:
        b = b + 1j * rng.standard_normal((n, width))
    return b


class TestPanelBitIdentity:
    @pytest.mark.parametrize("width", [1, 2, 5, 8, 16])
    def test_lu_panel_matches_columns_d(self, lu_d, width):
        b = _panel(N, width, seed=width)
        xp = tiled_solve(lu_d, b)
        assert xp.shape == (N, width)
        for c in range(width):
            assert np.array_equal(xp[:, c], tiled_solve(lu_d, b[:, c]))

    @pytest.mark.parametrize("width", [1, 3, 8])
    def test_lu_panel_matches_columns_z(self, lu_z, width):
        b = _panel(N, width, seed=width, complex_=True)
        xp = tiled_solve(lu_z, b)
        for c in range(width):
            assert np.array_equal(xp[:, c], tiled_solve(lu_z, b[:, c]))

    def test_panel_subset_invariance(self, lu_d):
        # A request's bits cannot depend on which batch it landed in.
        b = _panel(N, 8, seed=42)
        x8 = tiled_solve(lu_d, b)
        x3 = tiled_solve(lu_d, b[:, [0, 4, 7]])
        assert np.array_equal(x8[:, [0, 4, 7]], x3)

    def test_cholesky_panel_matches_columns(self):
        pts = cylinder_cloud(N)
        kern = exponential_kernel(pts)
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-8, leaf_size=32))
        tiled_potrf_tasks(a.desc)
        b = _panel(N, 6, seed=7)
        xp = tiled_chol_solve(a.desc, b)
        for c in range(6):
            assert np.array_equal(xp[:, c], tiled_chol_solve(a.desc, b[:, c]))

    def test_tasked_solve_panel_matches_columns(self, lu_d):
        b = _panel(N, 4, seed=3)
        xp, _ = tiled_solve_tasks(lu_d, b)
        for c in range(4):
            xc, _ = tiled_solve_tasks(lu_d, b[:, c])
            assert np.array_equal(xp[:, c], xc)

    def test_tasked_matches_direct(self, lu_d):
        b = _panel(N, 4, seed=9)
        xp, _ = tiled_solve_tasks(lu_d, b)
        assert np.array_equal(xp, tiled_solve(lu_d, b))


class TestPanelValidation:
    def test_vector_shape_preserved(self, lu_d):
        x = tiled_solve(lu_d, np.ones(N))
        assert x.shape == (N,)

    def test_panel_shape_preserved(self, lu_d):
        x = tiled_solve(lu_d, np.ones((N, 2)))
        assert x.shape == (N, 2)

    def test_wrong_length_rejected(self, lu_d):
        with pytest.raises(ValueError):
            tiled_solve(lu_d, np.ones(N + 1))

    def test_wrong_panel_rows_rejected(self, lu_d):
        with pytest.raises(ValueError):
            tiled_solve(lu_d, np.ones((N - 1, 3)))

    def test_3d_rejected(self, lu_d):
        with pytest.raises(ValueError):
            tiled_solve(lu_d, np.ones((N, 2, 2)))


class TestSolverFacadePanel:
    def test_solver_solve_panel(self):
        pts = cylinder_cloud(N)
        kern = laplace_kernel(pts)
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32))
        a.factorize()
        b = _panel(N, 5, seed=1)
        xp = a.solve(b)
        assert xp.shape == (N, 5)
        for c in range(5):
            assert np.array_equal(xp[:, c], a.solve(b[:, c]))

    def test_threaded_solver_panel_column_stable(self):
        # The threaded factorization's *bits* differ from eager (accumulation
        # order), but column-stability must hold within each executor.
        pts = cylinder_cloud(N)
        kern = laplace_kernel(pts)
        threaded = TileHMatrix.build(
            kern, pts,
            TileHConfig(nb=100, eps=1e-7, leaf_size=32, exec_mode="threaded", nworkers=2),
        )
        threaded.factorize()
        b = _panel(N, 4, seed=5)
        xt = threaded.solve(b)
        assert xt.shape == (N, 4)
        for c in range(4):
            assert np.array_equal(xt[:, c], threaded.solve(b[:, c]))
