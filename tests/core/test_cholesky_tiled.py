"""Unit tests for the tiled Cholesky path of the core library."""

import numpy as np
import pytest

from repro.core import TileHConfig, TileHMatrix, tiled_chol_solve, tiled_potrf_tasks
from repro.core.build import build_tile_h
from repro.geometry import assemble_dense, exponential_kernel, plate_cloud
from repro.runtime import RuntimeOverheadModel

N = 600
NB = 150
EPS = 1e-8


@pytest.fixture()
def spd_problem():
    pts = plate_cloud(N)
    kern = exponential_kernel(pts, length=0.6)
    desc = build_tile_h(kern, pts, NB, eps=EPS, leaf_size=40)
    dense = assemble_dense(kern, pts)
    return pts, kern, desc, dense


class TestTiledPotrf:
    def test_task_counts(self, spd_problem):
        *_, desc, _ = spd_problem
        graph = tiled_potrf_tasks(desc)
        nt = desc.nt
        counts = graph.kind_counts()
        assert counts["potrf"] == nt
        assert counts["trsm"] == nt * (nt - 1) // 2
        # SYRK + GEMM updates of the lower triangle.
        assert counts["gemm"] == sum(
            (nt - k - 1) * (nt - k) // 2 for k in range(nt)
        )

    def test_half_the_tasks_of_lu(self, spd_problem):
        pts, kern, desc, _ = spd_problem
        chol_graph = tiled_potrf_tasks(desc)
        lu_desc = build_tile_h(kern, pts, NB, eps=EPS, leaf_size=40)
        from repro.core import tiled_getrf_tasks

        lu_graph = tiled_getrf_tasks(lu_desc)
        assert len(chol_graph) < 0.75 * len(lu_graph)
        assert chol_graph.total_work("flops") < 0.75 * lu_graph.total_work("flops")

    def test_solve_vector(self, spd_problem):
        _, _, desc, dense = spd_problem
        tiled_potrf_tasks(desc)
        x0 = np.random.default_rng(0).standard_normal(N)
        x = tiled_chol_solve(desc, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-5 * np.linalg.norm(x0)

    def test_solve_panel(self, spd_problem):
        _, _, desc, dense = spd_problem
        tiled_potrf_tasks(desc)
        x0 = np.random.default_rng(1).standard_normal((N, 2))
        x = tiled_chol_solve(desc, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-5 * np.linalg.norm(x0)

    def test_dim_check(self, spd_problem):
        *_, desc, _ = spd_problem
        tiled_potrf_tasks(desc)
        with pytest.raises(ValueError):
            tiled_chol_solve(desc, np.zeros(N + 1))

    def test_dag_simulatable(self, spd_problem):
        *_, desc, _ = spd_problem
        graph = tiled_potrf_tasks(desc)
        from repro.runtime import simulate

        r = simulate(graph, 8, "prio", overheads=RuntimeOverheadModel.zero())
        assert 0 < r.makespan <= graph.total_work()


class TestSolverApiCholesky:
    def test_factorize_method(self, spd_problem):
        pts, kern, *_ = spd_problem
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=NB, eps=EPS, leaf_size=40))
        dense = spd_problem[3]
        info = a.factorize(method="cholesky")
        assert "potrf" in info.graph.kind_counts()
        x0 = np.random.default_rng(2).standard_normal(N)
        x = a.solve(dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-5 * np.linalg.norm(x0)

    def test_unknown_method(self, spd_problem):
        pts, kern, *_ = spd_problem
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=NB, eps=EPS, leaf_size=40))
        with pytest.raises(ValueError):
            a.factorize(method="qr")
