"""Unit tests for Tile / TileDesc / TileHDesc."""

import numpy as np
import pytest

from repro.core import Tile, TileDesc, TileHMatrix, TileHConfig, build_tile_h
from repro.geometry import assemble_dense, cylinder_cloud, laplace_kernel
from repro.hmatrix import (
    AssemblyConfig,
    StrongAdmissibility,
    assemble_hmatrix,
    build_block_cluster_tree,
    build_cluster_tree,
)

N = 300
NB = 100


@pytest.fixture(scope="module")
def geom():
    pts = cylinder_cloud(N)
    return pts, laplace_kernel(pts)


@pytest.fixture(scope="module")
def desc(geom):
    pts, kern = geom
    return build_tile_h(kern, pts, NB, eps=1e-6, leaf_size=25)


class TestTile:
    def _h(self, geom, leaf_size=64):
        pts, kern = geom
        ct = build_cluster_tree(pts[:60], leaf_size=leaf_size)
        bt = build_block_cluster_tree(ct, ct, StrongAdmissibility())
        return assemble_hmatrix(kern, pts[:60], bt, AssemblyConfig(eps=1e-8))

    def test_of_full(self, geom):
        h = self._h(geom, leaf_size=64)  # 60 <= 64: single dense leaf
        t = Tile.of(h)
        assert t.format == "full"
        assert t.shape == (60, 60)

    def test_of_hmat(self, geom):
        h = self._h(geom, leaf_size=8)
        t = Tile.of(h)
        assert t.format == "hmat"

    def test_matvec_matches_dense(self, geom):
        h = self._h(geom, leaf_size=8)
        t = Tile.of(h)
        x = np.random.default_rng(0).standard_normal(60)
        assert np.allclose(t.matvec(x), t.to_dense() @ x, atol=1e-6)

    def test_storage(self, geom):
        # Rk factors of tiny blocks may exceed the dense count, so only a
        # loose upper bound holds at this size.
        t = Tile.of(self._h(geom, leaf_size=8))
        assert 0 < t.storage() <= 3 * 60 * 60

    def test_copy_independent(self, geom):
        t = Tile.of(self._h(geom, leaf_size=8))
        cp = t.copy()
        for leaf in cp.mat.leaves():
            if leaf.full is not None:
                leaf.full[:] = 0
        assert not np.allclose(t.to_dense(), cp.to_dense())

    def test_format_validation(self, geom):
        h = self._h(geom)
        with pytest.raises(ValueError):
            Tile("sparse", 60, 60, h)
        with pytest.raises(ValueError):
            Tile("full", 61, 60, h)


class TestTileDesc:
    def test_grid_access(self, desc):
        grid = desc.super
        assert grid.nt == 3
        t = grid.get_blktile(1, 2)
        assert t.shape == (NB, NB)

    def test_out_of_range(self, desc):
        with pytest.raises(IndexError):
            desc.super.get_blktile(3, 0)
        with pytest.raises(IndexError):
            desc.super.get_blktile(0, -1)

    def test_set_blktile(self, desc):
        grid = desc.super
        t = grid.get_blktile(0, 0)
        grid.set_blktile(0, 0, t)
        assert grid.get_blktile(0, 0) is t

    def test_tile_rows(self, desc):
        assert desc.super.tile_rows(0) == NB
        assert desc.super.tile_rows(2) == N - 2 * NB

    def test_storage_positive(self, desc):
        assert 0 < desc.super.storage() <= N * N

    def test_validation(self):
        with pytest.raises(ValueError):
            TileDesc(n=0, nb=1, nt=1)
        with pytest.raises(ValueError):
            TileDesc(n=10, nb=5, nt=2, tiles=[None])


class TestTileHDesc:
    def test_tile_slices_partition(self, desc):
        covered = np.zeros(N, dtype=bool)
        for i in range(desc.nt):
            s = desc.tile_slice(i)
            assert not covered[s].any()
            covered[s] = True
        assert covered.all()

    def test_to_dense_matches_kernel(self, desc, geom):
        pts, kern = geom
        dense = assemble_dense(kern, pts)
        ref = dense[np.ix_(desc.perm, desc.perm)]
        assert np.linalg.norm(desc.to_dense() - ref) <= 1e-4 * np.linalg.norm(ref)

    def test_matvec_original_order(self, desc, geom):
        pts, kern = geom
        dense = assemble_dense(kern, pts)
        x = np.random.default_rng(1).standard_normal(N)
        assert np.linalg.norm(desc.matvec(x) - dense @ x) <= 1e-4 * np.linalg.norm(dense @ x)

    def test_matvec_dim_check(self, desc):
        with pytest.raises(ValueError):
            desc.matvec(np.zeros(N + 1))

    def test_compression_ratio(self, desc):
        assert 0 < desc.compression_ratio() <= 1.0

    def test_max_rank(self, desc):
        assert desc.max_rank() > 0

    def test_format_counts_total(self, desc):
        counts = desc.format_counts()
        assert sum(counts.values()) == desc.nt**2
