"""Edge-case tests for the core Tile-H layer."""

import numpy as np
import pytest

from repro.core import (
    Tile,
    TileDesc,
    TileHConfig,
    TileHMatrix,
    build_tile_h,
    build_tile_h_clustering,
)
from repro.geometry import cylinder_cloud, laplace_kernel


@pytest.fixture(scope="module")
def geom():
    pts = cylinder_cloud(300)
    return pts, laplace_kernel(pts)


class TestTileEdges:
    def test_rk_format_tile(self, geom):
        pts, kern = geom
        desc = build_tile_h(kern, pts, 100, eps=1e-5, leaf_size=40)
        rk_tiles = [t for t in desc.super.tiles if t.format == "rk"]
        assert rk_tiles, "expected at least one whole-tile Rk block"
        t = rk_tiles[0]
        x = np.random.default_rng(0).standard_normal(t.n)
        assert np.allclose(t.matvec(x), t.to_dense() @ x, atol=1e-6)
        assert t.dtype == np.float64

    def test_tile_of_roundtrip_formats(self, geom):
        pts, kern = geom
        desc = build_tile_h(kern, pts, 100, eps=1e-5, leaf_size=40)
        for t in desc.super.tiles:
            assert Tile.of(t.mat).format == t.format


class TestTileDescEdges:
    def test_dtype_property(self, geom):
        pts, kern = geom
        desc = build_tile_h(kern, pts, 100, eps=1e-5, leaf_size=40)
        assert desc.super.dtype == np.float64

    def test_single_tile_grid(self, geom):
        pts, kern = geom
        desc = build_tile_h(kern, pts, 1000, eps=1e-5, leaf_size=40)
        assert desc.nt == 1
        assert desc.super.tile_rows(0) == 300

    def test_empty_tiles_list_allowed_then_filled(self):
        d = TileDesc(n=10, nb=5, nt=2)
        assert d.tiles == []


class TestBuildEdges:
    def test_nb_one(self):
        # Degenerate NB = 1: every tile is a 1x1 dense block.
        pts = cylinder_cloud(12)
        kern = laplace_kernel(pts)
        desc = build_tile_h(kern, pts, 1, eps=1e-6, leaf_size=4)
        assert desc.nt == 12
        assert all(t.shape == (1, 1) for t in desc.super.tiles)
        from repro.core import tiled_getrf_tasks, tiled_solve
        from repro.geometry import assemble_dense

        dense = assemble_dense(kern, pts)
        tiled_getrf_tasks(desc)
        x0 = np.arange(1.0, 13.0)
        x = tiled_solve(desc, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-8 * np.linalg.norm(x0)

    def test_clustering_reuse_wrong_nb_is_callers_problem(self, geom):
        # Reusing a clustering built for a different nb: the descriptor
        # inherits the clustering's nt, which is the documented semantics.
        pts, kern = geom
        cl = build_tile_h_clustering(pts, 75, leaf_size=30)
        desc = build_tile_h(kern, pts, 75, eps=1e-5, clustering=cl)
        assert desc.nt == cl.nt


class TestSolverEdges:
    def test_method_recorded(self, geom):
        pts, kern = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-5, leaf_size=40))
        a.factorize(method="lu")
        assert a._method == "lu"

    def test_solve_panel_after_gesv(self, geom):
        pts, kern = geom
        from repro.geometry import assemble_dense

        dense = assemble_dense(kern, pts)
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-7, leaf_size=40))
        x0 = np.random.default_rng(1).standard_normal((300, 2))
        x = a.gesv(dense @ x0)
        # gesv factorises once; subsequent solves reuse the factors.
        x2 = a.solve(dense @ x0)
        assert np.allclose(x, x2)

    def test_shape_property(self, geom):
        pts, kern = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-4, leaf_size=40))
        assert a.shape == (300, 300)


class TestFactorizationInfoEdges:
    def test_info_fields(self, geom):
        pts, kern = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-5, leaf_size=40))
        info = a.factorize()
        assert info.nb == 100
        assert info.nt == a.nt
        assert info.n_tasks == len(info.graph.tasks)
