"""Unit tests for the preconditioned Krylov solvers."""

import numpy as np
import pytest

from repro.core import TileHConfig, TileHMatrix, gmres, pcg
from repro.geometry import (
    DenseOperator,
    cylinder_cloud,
    exponential_kernel,
    helmholtz_kernel,
    laplace_kernel,
    plate_cloud,
)

N = 600


@pytest.fixture(scope="module")
def real_problem():
    pts = cylinder_cloud(N)
    kern = laplace_kernel(pts)
    op = DenseOperator(kern, pts)
    pre = TileHMatrix.build(kern, pts, TileHConfig(nb=150, eps=1e-2, leaf_size=40))
    pre.factorize()
    rng = np.random.default_rng(0)
    x0 = rng.standard_normal(N)
    return op, pre, x0


class TestGmres:
    def test_converges_with_h_preconditioner(self, real_problem):
        op, pre, x0 = real_problem
        b = op.matvec(x0)
        res = gmres(op.matvec, b, precond=pre.solve, rtol=1e-12)
        assert res.converged
        assert np.linalg.norm(res.x - x0) <= 1e-9 * np.linalg.norm(x0)

    def test_preconditioner_cuts_iterations(self, real_problem):
        op, pre, x0 = real_problem
        b = op.matvec(x0)
        plain = gmres(op.matvec, b, rtol=1e-10, max_iter=300)
        pc = gmres(op.matvec, b, precond=pre.solve, rtol=1e-10)
        assert pc.converged
        assert pc.iterations < plain.iterations / 3

    def test_residual_history_monotone_within_cycle(self, real_problem):
        op, pre, x0 = real_problem
        b = op.matvec(x0)
        res = gmres(op.matvec, b, precond=pre.solve, rtol=1e-12)
        # GMRES residuals are non-increasing.
        for r0, r1 in zip(res.residuals, res.residuals[1:]):
            assert r1 <= r0 * (1 + 1e-8)

    def test_complex_operator(self):
        pts = cylinder_cloud(400)
        kern = helmholtz_kernel(pts)
        op = DenseOperator(kern, pts)
        pre = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-2, leaf_size=40))
        pre.factorize()
        rng = np.random.default_rng(1)
        x0 = rng.standard_normal(400) + 1j * rng.standard_normal(400)
        res = gmres(op.matvec, op.matvec(x0), precond=pre.solve, rtol=1e-11)
        assert res.converged
        assert np.linalg.norm(res.x - x0) <= 1e-8 * np.linalg.norm(x0)

    def test_restart_path(self, real_problem):
        op, pre, x0 = real_problem
        b = op.matvec(x0)
        # A tiny restart forces multiple outer cycles.
        res = gmres(op.matvec, b, precond=pre.solve, rtol=1e-10, restart=3)
        assert res.converged

    def test_zero_rhs(self, real_problem):
        op, *_ = real_problem
        res = gmres(op.matvec, np.zeros(N))
        assert res.converged and np.array_equal(res.x, np.zeros(N))

    def test_max_iter_exhaustion(self, real_problem):
        op, _, x0 = real_problem
        b = op.matvec(x0)
        res = gmres(op.matvec, b, rtol=1e-14, max_iter=3)
        assert not res.converged
        assert res.iterations == 3

    def test_unpacking(self, real_problem):
        op, pre, x0 = real_problem
        x, residuals = gmres(op.matvec, op.matvec(x0), precond=pre.solve)
        assert isinstance(residuals, list)

    def test_validation(self, real_problem):
        op, *_ = real_problem
        with pytest.raises(ValueError):
            gmres(op.matvec, np.ones(N), restart=0)
        with pytest.raises(ValueError):
            gmres(op.matvec, np.ones(N), max_iter=0)


class TestPcg:
    @pytest.fixture(scope="class")
    def spd_problem(self):
        pts = plate_cloud(500)
        kern = exponential_kernel(pts, length=0.6)
        op = DenseOperator(kern, pts)
        pre = TileHMatrix.build(kern, pts, TileHConfig(nb=125, eps=1e-2, leaf_size=40))
        pre.factorize(method="cholesky")
        x0 = np.random.default_rng(2).standard_normal(500)
        return op, pre, x0

    def test_converges_with_h_cholesky_preconditioner(self, spd_problem):
        op, pre, x0 = spd_problem
        b = op.matvec(x0)
        res = pcg(op.matvec, b, precond=pre.solve, rtol=1e-11)
        assert res.converged
        assert np.linalg.norm(res.x - x0) <= 1e-7 * np.linalg.norm(x0)

    def test_preconditioner_cuts_iterations(self, spd_problem):
        op, pre, x0 = spd_problem
        b = op.matvec(x0)
        plain = pcg(op.matvec, b, rtol=1e-9, max_iter=500)
        pc = pcg(op.matvec, b, precond=pre.solve, rtol=1e-9)
        assert pc.converged
        assert pc.iterations < plain.iterations

    def test_indefinite_detected(self):
        a = np.diag([1.0, -1.0])
        with pytest.raises(np.linalg.LinAlgError):
            pcg(lambda v: a @ v, np.array([1.0, 1.0]))

    def test_zero_rhs(self, spd_problem):
        op, *_ = spd_problem
        res = pcg(op.matvec, np.zeros(500))
        assert res.converged

    def test_validation(self, spd_problem):
        op, *_ = spd_problem
        with pytest.raises(ValueError):
            pcg(op.matvec, np.ones(500), max_iter=0)
