"""Unit tests for the tiled LU task submission and tile-wise solves."""

import numpy as np
import pytest

from repro.core import build_tile_h, lu_priorities, tiled_getrf_tasks, tiled_solve
from repro.geometry import assemble_dense, cylinder_cloud, helmholtz_kernel, laplace_kernel
from repro.runtime import StfEngine, simulate, RuntimeOverheadModel

N = 400
NB = 100
EPS = 1e-7


@pytest.fixture()
def fresh_desc():
    pts = cylinder_cloud(N)
    kern = laplace_kernel(pts)
    desc = build_tile_h(kern, pts, NB, eps=EPS, leaf_size=32)
    dense = assemble_dense(kern, pts)
    return pts, kern, desc, dense


class TestLuPriorities:
    def test_ordering_within_iteration(self):
        nt = 8
        assert lu_priorities(nt, 0, "getrf") > lu_priorities(nt, 0, "trsm")
        assert lu_priorities(nt, 0, "trsm") > lu_priorities(nt, 0, "gemm", 3, 3)

    def test_earlier_panels_dominate(self):
        nt = 8
        assert lu_priorities(nt, 0, "gemm", 7, 7) > lu_priorities(nt, 2, "gemm", 7, 7)
        assert lu_priorities(nt, 1, "getrf") > lu_priorities(nt, 0, "gemm", 5, 5)

    def test_next_panel_gemm_urgent(self):
        nt = 8
        assert lu_priorities(nt, 2, "gemm", 3, 5) > lu_priorities(nt, 2, "gemm", 4, 5)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            lu_priorities(4, 0, "potrf")


class TestTiledGetrf:
    def test_task_counts(self, fresh_desc):
        *_, desc, _ = fresh_desc
        graph = tiled_getrf_tasks(desc)
        nt = desc.nt
        counts = graph.kind_counts()
        assert counts["getrf"] == nt
        assert counts["trsm"] == nt * (nt - 1)
        assert counts["gemm"] == nt * (nt - 1) * (2 * nt - 1) // 6

    def test_factorisation_correct(self, fresh_desc):
        _, _, desc, dense = fresh_desc
        tiled_getrf_tasks(desc)
        packed = desc.to_dense()
        n = desc.n
        l = np.tril(packed, -1) + np.eye(n)
        u = np.triu(packed)
        ref = dense[np.ix_(desc.perm, desc.perm)]
        assert np.linalg.norm(l @ u - ref) <= 1e-4 * np.linalg.norm(ref)

    def test_costs_measured(self, fresh_desc):
        *_, desc, _ = fresh_desc
        graph = tiled_getrf_tasks(desc)
        assert all(t.seconds > 0 for t in graph.tasks)
        assert all(t.flops > 0 for t in graph.tasks)

    def test_dag_simulatable(self, fresh_desc):
        *_, desc, _ = fresh_desc
        graph = tiled_getrf_tasks(desc)
        r = simulate(graph, 4, "prio", overheads=RuntimeOverheadModel.zero())
        assert r.makespan <= graph.total_work() + 1e-12
        assert r.makespan >= graph.critical_path() - 1e-12

    def test_custom_engine(self, fresh_desc):
        *_, desc, _ = fresh_desc
        eng = StfEngine(mode="eager")
        graph = tiled_getrf_tasks(desc, eng)
        assert graph is eng.graph


class TestTiledSolve:
    def test_solve_vector(self, fresh_desc):
        _, _, desc, dense = fresh_desc
        x0 = np.random.default_rng(0).standard_normal(N)
        b = dense @ x0
        tiled_getrf_tasks(desc)
        x = tiled_solve(desc, b)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_solve_panel(self, fresh_desc):
        _, _, desc, dense = fresh_desc
        x0 = np.random.default_rng(1).standard_normal((N, 3))
        tiled_getrf_tasks(desc)
        x = tiled_solve(desc, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_solve_complex(self):
        pts = cylinder_cloud(N)
        kern = helmholtz_kernel(pts)
        desc = build_tile_h(kern, pts, NB, eps=EPS, leaf_size=32)
        dense = assemble_dense(kern, pts)
        rng = np.random.default_rng(2)
        x0 = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        tiled_getrf_tasks(desc)
        x = tiled_solve(desc, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_dim_check(self, fresh_desc):
        *_, desc, _ = fresh_desc
        tiled_getrf_tasks(desc)
        with pytest.raises(ValueError):
            tiled_solve(desc, np.zeros(N + 1))

    def test_single_tile_problem(self):
        pts = cylinder_cloud(80)
        kern = laplace_kernel(pts)
        desc = build_tile_h(kern, pts, 128, eps=1e-8, leaf_size=32)
        assert desc.nt == 1
        dense = assemble_dense(kern, pts)
        x0 = np.random.default_rng(3).standard_normal(80)
        graph = tiled_getrf_tasks(desc)
        assert len(graph) == 1
        x = tiled_solve(desc, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-5 * np.linalg.norm(x0)


class TestTiledSolveTasks:
    def test_matches_direct_solve(self, fresh_desc):
        from repro.core import tiled_solve_tasks

        _, _, desc, dense = fresh_desc
        tiled_getrf_tasks(desc)
        x0 = np.random.default_rng(7).standard_normal(N)
        b = dense @ x0
        x_tasks, graph = tiled_solve_tasks(desc, b)
        assert np.linalg.norm(x_tasks - x0) <= 1e-4 * np.linalg.norm(x0)
        nt = desc.nt
        counts = graph.kind_counts()
        assert counts["trsm"] == 2 * nt
        assert counts["gemm"] == nt * (nt - 1)

    def test_panel_rhs(self, fresh_desc):
        from repro.core import tiled_solve_tasks

        _, _, desc, dense = fresh_desc
        tiled_getrf_tasks(desc)
        x0 = np.random.default_rng(8).standard_normal((N, 2))
        x, _ = tiled_solve_tasks(desc, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_solve_dag_simulatable(self, fresh_desc):
        from repro.core import tiled_solve_tasks

        _, _, desc, dense = fresh_desc
        tiled_getrf_tasks(desc)
        _, graph = tiled_solve_tasks(desc, np.ones(N))
        r = simulate(graph, 4, "prio", overheads=RuntimeOverheadModel.zero())
        assert r.makespan >= graph.critical_path() - 1e-12

    def test_dim_check(self, fresh_desc):
        from repro.core import tiled_solve_tasks

        *_, desc, _ = fresh_desc
        tiled_getrf_tasks(desc)
        with pytest.raises(ValueError):
            tiled_solve_tasks(desc, np.zeros(N + 1))
