"""Nested task expansion: bit-identity, determinism, racecheck, priorities.

The tentpole contract: expanding an H-structured tile kernel into a subtask
DAG must change *scheduling freedom only*.  With ``accumulate=False`` the
expansion recursion is a prefix of the eager recursion tree (subtasks are
submitted in exactly the order the opaque kernel would have visited their
blocks, and per-datum RW chains serialize them), so eager, threaded and
process nested runs must reproduce the opaque results bit for bit — while
the expanded graph's flop-costed critical path drops, which is the whole
point.
"""

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TileHConfig, TileHMatrix
from repro.core.algorithms import apply_bottom_level_priorities, tiled_getrf_tasks
from repro.geometry import cylinder_cloud, make_kernel, streamed_matvec
from repro.obs import Instrumentation, build_run_report, validate_report
from repro.runtime import (
    SCHEDULER_NAMES,
    AccessMode,
    NestedPolicy,
    RaceCheckError,
    RuntimeOverheadModel,
    StfEngine,
    simulate,
    validate_trace,
)
from repro.runtime.dag import TaskGraph
from repro.runtime.racecheck import iter_buffers

N, NB, LEAF = 256, 64, 32
EPS = 1e-4
ZERO = RuntimeOverheadModel.zero()

CASES = [
    ("laplace", "lu"),            # real double
    ("helmholtz", "lu"),          # complex double
    ("exponential", "cholesky"),  # SPD kernel
]


@lru_cache(maxsize=None)
def _problem(kernel_name):
    pts = cylinder_cloud(N)
    kern = make_kernel(kernel_name, pts)
    rng = np.random.default_rng(0)
    x0 = rng.standard_normal(N)
    if kernel_name == "helmholtz":
        x0 = x0 + 1j * rng.standard_normal(N)
    b = streamed_matvec(kern, pts, x0)
    return pts, kern, b


def _cfg(**kw):
    return TileHConfig(nb=NB, eps=EPS, leaf_size=LEAF, accumulate=False, **kw)


def _nested_cfg(**kw):
    return _cfg(nested=True, nested_min_leaf=LEAF, **kw)


@lru_cache(maxsize=None)
def _reference(kernel_name, method):
    """Opaque eager factorization + solution (the bit-identity baseline)."""
    pts, kern, b = _problem(kernel_name)
    a = TileHMatrix.build(kern, pts, _cfg())
    a.factorize(method=method)
    return a.solve(b)


@lru_cache(maxsize=None)
def _deferred_nested_graph(min_leaf=LEAF):
    """Expanded LU graph (never executed) + its expansion stats."""
    pts, kern, _b = _problem("laplace")
    a = TileHMatrix.build(kern, pts, _cfg())
    eng = StfEngine(mode="deferred", nested=NestedPolicy(min_leaf=min_leaf))
    graph = tiled_getrf_tasks(a.desc, eng, accumulate=False)
    return graph, eng.nested_stats


# -- bit-identity across executors -------------------------------------------


@pytest.mark.parametrize("kernel_name,method", CASES)
def test_eager_nested_bit_identical(kernel_name, method):
    pts, kern, b = _problem(kernel_name)
    a = TileHMatrix.build(kern, pts, _nested_cfg())
    info = a.factorize(method=method)
    assert info.nested is not None
    assert info.nested["expanded_tasks"] > 0
    assert info.nested["subtasks"] == len(info.graph)
    assert np.array_equal(a.solve(b), _reference(kernel_name, method))


@pytest.mark.parametrize("nworkers", [1, 2])
def test_threaded_nested_bit_identical(nworkers):
    pts, kern, b = _problem("laplace")
    cfg = _nested_cfg(exec_mode="threaded", nworkers=nworkers, scheduler="lws")
    a, info = TileHMatrix.build_factorize(kern, pts, cfg)
    assert np.array_equal(a.solve(b), _reference("laplace", "lu"))
    assert validate_trace(info.graph, info.trace) == []
    assert info.nested["expanded_tasks"] > 0
    assert not info.nested["coarse"]


@pytest.mark.parametrize("nworkers", [1, 2])
def test_process_nested_bit_identical(nworkers):
    """Process-mode nesting ships coarse tile-level accesses (per-handle
    blob shipping cannot express parent/child overlap) — subtasks serialize
    per tile but results stay bit-identical."""
    pts, kern, b = _problem("laplace")
    cfg = _nested_cfg(exec_mode="process", nworkers=nworkers, scheduler="lws")
    a, info = TileHMatrix.build_factorize(kern, pts, cfg)
    assert np.array_equal(a.solve(b), _reference("laplace", "lu"))
    assert validate_trace(info.graph, info.trace) == []
    assert info.nested["coarse"]


def test_process_nested_cholesky_bit_identical():
    pts, kern, b = _problem("exponential")
    cfg = _nested_cfg(exec_mode="process", nworkers=2, scheduler="lws")
    a, info = TileHMatrix.build_factorize(kern, pts, cfg, method="cholesky")
    assert np.array_equal(a.solve(b), _reference("exponential", "cholesky"))


def test_single_worker_threaded_nested_matches_simulator_order():
    """1-worker nested runs reproduce the virtual-time simulator's pull
    order over the *expanded* graph (costs don't matter at p=1: the order
    is fixed by the scheduler's push/pop sequence alone)."""
    pts, kern, _b = _problem("laplace")
    cfg = _nested_cfg(exec_mode="threaded", nworkers=1, scheduler="lws")
    _a, info = TileHMatrix.build_factorize(kern, pts, cfg)
    run_order = [
        e.task_id for e in sorted(info.trace.events, key=lambda e: e.start)
    ]
    r = simulate(info.graph, 1, "lws", overheads=ZERO)
    sim_order = [e.task_id for e in r.trace.events]
    assert run_order == sim_order


# -- the perf claim, deterministically ----------------------------------------


def test_nested_reduces_critical_path_and_simulated_makespan():
    """The tentpole's deterministic proxy: against the *contracted* graph
    (same flop model, expansions collapsed back to opaque tasks), expansion
    must shorten both the critical path and the p=8 simulated makespan."""
    graph, stats = _deferred_nested_graph()
    contracted = stats.contract(graph)
    cp_before = contracted.critical_path("flops")
    cp_after = graph.critical_path("flops")
    assert cp_after < cp_before
    m_before = simulate(
        contracted, 8, "lws", overheads=ZERO, cost_attr="flops", keep_trace=False
    ).makespan
    m_after = simulate(
        graph, 8, "lws", overheads=ZERO, cost_attr="flops", keep_trace=False
    ).makespan
    assert m_after < m_before
    # Contraction preserves total work: expansion relabels flops, never
    # invents or drops any.
    assert contracted.total_work("flops") == pytest.approx(
        graph.total_work("flops")
    )


def test_below_cutoff_expansion_is_opaque():
    """min_leaf at the tile size ⇒ nothing is expandable: every kernel
    falls back to one opaque subtask (graph isomorphic to non-nested)."""
    graph, stats = _deferred_nested_graph(min_leaf=NB)
    assert stats.subtasks == len(graph)
    assert stats.expanded_tasks == len(graph)  # every record is 1 subtask
    assert all(rec.n_subtasks == 1 for rec in stats.records)


# -- racecheck ----------------------------------------------------------------


def test_racecheck_clean_on_nested_factorize():
    pts, kern, _b = _problem("laplace")
    a = TileHMatrix.build(kern, pts, _nested_cfg(racecheck=True))
    info = a.factorize()
    assert info.racecheck is not None
    assert info.racecheck.n_errors == 0
    assert info.racecheck.n_warnings == 0
    assert info.racecheck.n_checked_tasks == len(info.graph)


def test_racecheck_catches_subblock_mode_misdeclaration():
    """A subtask that writes a sub-block while declaring R on it must be
    flagged — the fingerprints cover the hierarchical handles too."""
    pts, kern, _b = _problem("laplace")
    a = TileHMatrix.build(kern, pts, _cfg())
    tile = a.desc.super.get_blktile(0, 0)
    eng = StfEngine(
        mode="eager", racecheck=True, nested=NestedPolicy(min_leaf=1)
    )
    h = eng.handle(tile, "t00")

    def bad_expander(e):
        node = tile.mat.child(0, 0)
        sub = e.subhandle(h, node, "t00/0,0")

        def kernel():
            buf = next(iter_buffers(node))
            buf += 1.0  # mutation under a declared pure-R access

        e.insert_task("gemm", kernel, [(sub, AccessMode.R)], label="seeded")

    with pytest.raises(RaceCheckError, match="undeclared-write"):
        eng.insert_task(
            "getrf", lambda: None, [(h, AccessMode.RW)], expander=bad_expander
        )


def test_racecheck_exempts_related_handles_but_not_unrelated_aliases():
    eng = StfEngine(mode="eager", racecheck=True)
    a = np.zeros(8)
    parent = eng.handle(a, "parent")
    # Hierarchical sub-handle over the same buffer: exempt by construction.
    child = eng.subhandle(parent, a[:4], "parent/0")
    assert child.parent is parent
    # An unrelated second handle over overlapping memory is still an error.
    with pytest.raises(RaceCheckError, match="aliased-handles"):
        eng.handle(a[2:6], "alias")


# -- hypothesis: schedules over expanded graphs -------------------------------


@settings(max_examples=12, deadline=None)
@given(
    policy=st.sampled_from(SCHEDULER_NAMES),
    nworkers=st.integers(min_value=1, max_value=8),
    min_leaf=st.sampled_from([LEAF, 2 * LEAF]),
)
def test_simulated_schedules_of_expanded_graphs_are_linear_extensions(
    policy, nworkers, min_leaf
):
    graph, _stats = _deferred_nested_graph(min_leaf=min_leaf)
    r = simulate(graph, nworkers, policy, overheads=ZERO, cost_attr="flops")
    assert validate_trace(graph, r.trace) == []


# -- incremental bottom-level priorities --------------------------------------


def _grown_graph(rng, n_before, n_after):
    """Append-only random DAG in two phases (edges always point backward,
    mirroring how the STF engine only ever adds deps into the newest task)."""
    g = TaskGraph()
    tasks = []

    def grow(count):
        for _ in range(count):
            t = g.new_task("k", seconds=float(rng.uniform(0.1, 1.0)))
            k = int(rng.integers(0, min(3, len(tasks)) + 1))
            for d in rng.choice(len(tasks), size=k, replace=False) if tasks else []:
                g.add_dependency(tasks[int(d)], t)
            tasks.append(t)

    grow(n_before)
    prev = g.bottom_levels("seconds")
    grow(n_after)
    return g, prev


def test_incremental_bottom_levels_match_full_recompute():
    rng = np.random.default_rng(42)
    g, prev = _grown_graph(rng, 20, 15)
    incremental = g.bottom_levels("seconds", prev=prev)
    full = g.bottom_levels("seconds")
    assert incremental.keys() == full.keys()
    for tid in full:
        assert incremental[tid] == pytest.approx(full[tid])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), split=st.integers(1, 30))
def test_incremental_bottom_levels_property(seed, split):
    rng = np.random.default_rng(seed)
    g, prev = _grown_graph(rng, split, 31 - split)
    incremental = g.bottom_levels("seconds", prev=prev)
    full = g.bottom_levels("seconds")
    for tid in full:
        assert incremental[tid] == pytest.approx(full[tid])


def test_priorities_rerank_tasks_submitted_after_partial_expansion():
    """Tasks appended after a first bottom-level pass must not keep stale
    rank-0 priorities: a second (incremental) pass re-ranks *everything*
    exactly as a from-scratch pass on the final graph would."""
    rng = np.random.default_rng(7)
    g, prev = _grown_graph(rng, 12, 18)
    apply_bottom_level_priorities(g, "seconds", prev=prev)
    # From-scratch baseline on an identical graph.
    rng2 = np.random.default_rng(7)
    g2, _ = _grown_graph(rng2, 12, 18)
    apply_bottom_level_priorities(g2, "seconds")
    assert [t.priority for t in g.tasks] == [t.priority for t in g2.tasks]


# -- observability ------------------------------------------------------------


def test_run_report_nested_section_validates():
    pts, kern, _b = _problem("laplace")
    with Instrumentation() as probe:
        a = TileHMatrix.build(kern, pts, _nested_cfg())
        info = a.factorize()
    report = build_run_report(
        probe=probe, graph=info.graph, nested=info.nested,
        meta={"case": "test_nested"},
    )
    assert validate_report(report) == []
    nested = report["nested"]
    assert nested["expanded_tasks"] > 0
    assert nested["subtasks"] == len(info.graph)
    assert nested["critical_path_after"] < nested["critical_path_before"]


# -- config validation --------------------------------------------------------


class TestConfigValidation:
    def test_nested_config_accepted(self):
        cfg = TileHConfig(nb=64, nested=True, nested_min_leaf=16)
        assert cfg.nested and cfg.nested_min_leaf == 16

    def test_bad_min_leaf_rejected(self):
        with pytest.raises(ValueError):
            TileHConfig(nb=64, nested=True, nested_min_leaf=0)

    def test_bad_policy_min_leaf_rejected(self):
        with pytest.raises(ValueError):
            NestedPolicy(min_leaf=0)
