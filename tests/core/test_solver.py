"""Unit tests for the public TileHMatrix API."""

import numpy as np
import pytest

from repro.core import TileHConfig, TileHMatrix
from repro.geometry import assemble_dense, cylinder_cloud, laplace_kernel, make_kernel
from repro.runtime import RuntimeOverheadModel

N = 350


@pytest.fixture(scope="module")
def geom():
    pts = cylinder_cloud(N)
    kern = laplace_kernel(pts)
    dense = assemble_dense(kern, pts)
    return pts, kern, dense


class TestConfig:
    def test_defaults(self):
        cfg = TileHConfig()
        assert cfg.nb > 0 and cfg.eps > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TileHConfig(nb=0)
        with pytest.raises(ValueError):
            TileHConfig(eps=-1)
        with pytest.raises(ValueError):
            TileHConfig(leaf_size=0)


class TestBuild:
    def test_shape_and_compression(self, geom):
        pts, kern, _ = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-5, leaf_size=32))
        assert a.shape == (N, N)
        assert 0 < a.compression_ratio() <= 1.0
        assert a.storage_bytes() > 0
        assert a.nt == 4

    def test_to_dense_original_order(self, geom):
        pts, kern, dense = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32))
        assert np.linalg.norm(a.to_dense() - dense) <= 1e-5 * np.linalg.norm(dense)

    def test_matvec_original_order(self, geom):
        pts, kern, dense = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32))
        x = np.random.default_rng(0).standard_normal(N)
        assert np.linalg.norm(a.matvec(x) - dense @ x) <= 1e-5 * np.linalg.norm(dense @ x)


class TestFactorizeSolve:
    def test_full_cycle(self, geom):
        pts, kern, dense = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32))
        x0 = np.random.default_rng(1).standard_normal(N)
        b = dense @ x0
        info = a.factorize()
        assert a.factorized
        assert info.n_tasks == len(info.graph)
        assert info.n_dependencies > 0
        assert info.sequential_seconds() > 0
        x = a.solve(b)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_factorize_twice_rejected(self, geom):
        pts, kern, _ = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-5, leaf_size=32))
        a.factorize()
        with pytest.raises(RuntimeError):
            a.factorize()

    def test_solve_before_factorize_rejected(self, geom):
        pts, kern, _ = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-5, leaf_size=32))
        with pytest.raises(RuntimeError):
            a.solve(np.zeros(N))

    def test_matvec_after_factorize_rejected(self, geom):
        pts, kern, _ = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-5, leaf_size=32))
        a.factorize()
        with pytest.raises(RuntimeError):
            a.matvec(np.zeros(N))

    def test_gesv(self, geom):
        pts, kern, dense = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32))
        x0 = np.random.default_rng(2).standard_normal(N)
        x = a.gesv(dense @ x0)
        assert a.factorized
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_complex_gesv(self):
        pts = cylinder_cloud(N)
        kern = make_kernel("helmholtz", pts)
        dense = assemble_dense(kern, pts)
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32))
        rng = np.random.default_rng(3)
        x0 = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        x = a.gesv(dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)


class TestSimulation:
    def test_simulate_from_info(self, geom):
        pts, kern, _ = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=50, eps=1e-5, leaf_size=25))
        info = a.factorize()
        r1 = info.simulate(1, "prio", overheads=RuntimeOverheadModel.zero())
        r35 = info.simulate(35, "prio", overheads=RuntimeOverheadModel.zero())
        assert r1.makespan == pytest.approx(info.sequential_seconds(), rel=1e-9)
        assert r35.makespan < r1.makespan
        assert r35.makespan >= r1.makespan / 35 - 1e-12

    def test_simulate_flops_model_deterministic(self, geom):
        pts, kern, _ = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=50, eps=1e-5, leaf_size=25))
        info = a.factorize()
        r_a = info.simulate(4, "ws", cost_attr="flops", cost_scale=1e-9)
        r_b = info.simulate(4, "ws", cost_attr="flops", cost_scale=1e-9)
        assert r_a.makespan == r_b.makespan


class TestSaveLoad:
    def test_roundtrip_and_solve(self, geom, tmp_path):
        pts, kern, dense = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32))
        p = a.save(tmp_path / "a.npz")
        b = TileHMatrix.load(p)
        assert b.nt == a.nt
        assert b.compression_ratio() == a.compression_ratio()
        x0 = np.random.default_rng(5).standard_normal(N)
        x = b.gesv(dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_factorized_roundtrip_solves_bitexact(self, geom, tmp_path):
        # Factorized matrices are saveable since the v2 archive format
        # records factor payloads; the reload solves bit-identically.
        pts, kern, _ = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-5, leaf_size=32))
        a.factorize()
        p = a.save(tmp_path / "a.npz")
        b = TileHMatrix.load(p)
        assert b.factorized
        rhs = np.random.default_rng(6).standard_normal(N)
        assert np.array_equal(b.solve(rhs), a.solve(rhs))

    def test_load_with_explicit_config(self, geom, tmp_path):
        pts, kern, _ = geom
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-5, leaf_size=32))
        p = a.save(tmp_path / "a.npz")
        b = TileHMatrix.load(p, TileHConfig(nb=100, eps=1e-5))
        assert b.config.eps == 1e-5
