"""Unit tests for Tile-H clustering and assembly."""

import math

import numpy as np
import pytest

from repro.core import build_tile_h, build_tile_h_clustering
from repro.geometry import assemble_dense, cylinder_cloud, helmholtz_kernel, laplace_kernel
from repro.hmatrix import StrongAdmissibility, WeakAdmissibility


@pytest.fixture(scope="module")
def pts():
    return cylinder_cloud(500)


class TestBuildTileHClustering:
    def test_tile_count_and_grid(self, pts):
        cl = build_tile_h_clustering(pts, nb=128)
        assert cl.nt == math.ceil(500 / 128)
        assert len(cl.block_trees) == cl.nt**2

    def test_block_tree_shapes(self, pts):
        cl = build_tile_h_clustering(pts, nb=128)
        for i in range(cl.nt):
            for j in range(cl.nt):
                bt = cl.block_tree(i, j)
                assert bt.rows is cl.tiles[i]
                assert bt.cols is cl.tiles[j]

    def test_diagonal_blocks_not_admissible(self, pts):
        cl = build_tile_h_clustering(pts, nb=128)
        for i in range(cl.nt):
            assert not cl.block_tree(i, i).admissible

    def test_far_offdiagonal_admissible_at_top(self, pts):
        cl = build_tile_h_clustering(pts, nb=100)
        # Corner tiles cover geometrically distant slices.
        assert cl.block_tree(0, cl.nt - 1).admissible

    def test_custom_admissibility(self, pts):
        cl = build_tile_h_clustering(pts, nb=128, admissibility=WeakAdmissibility())
        # Weak condition: every off-diagonal tile is a single Rk leaf.
        for i in range(cl.nt):
            for j in range(cl.nt):
                if i != j:
                    assert cl.block_tree(i, j).admissible

    def test_index_range(self, pts):
        cl = build_tile_h_clustering(pts, nb=128)
        with pytest.raises(IndexError):
            cl.block_tree(cl.nt, 0)

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            build_tile_h_clustering(np.zeros((0, 3)), nb=16)


class TestBuildTileH:
    def test_assembly_accuracy(self, pts):
        kern = laplace_kernel(pts)
        desc = build_tile_h(kern, pts, 128, eps=1e-6, leaf_size=32)
        dense = assemble_dense(kern, pts)[np.ix_(desc.perm, desc.perm)]
        assert np.linalg.norm(desc.to_dense() - dense) <= 1e-4 * np.linalg.norm(dense)

    def test_complex_assembly(self, pts):
        kern = helmholtz_kernel(pts)
        desc = build_tile_h(kern, pts, 128, eps=1e-5, leaf_size=32)
        dense = assemble_dense(kern, pts)[np.ix_(desc.perm, desc.perm)]
        assert np.linalg.norm(desc.to_dense() - dense) <= 1e-3 * np.linalg.norm(dense)
        assert desc.super.dtype == np.complex128

    def test_small_nb_gives_dense_diagonal(self, pts):
        kern = laplace_kernel(pts)
        desc = build_tile_h(kern, pts, 50, eps=1e-6, leaf_size=64)
        # nb < leaf_size: diagonal tiles are single dense leaves.
        for i in range(desc.nt):
            ii = desc.super.get_blktile(i, i)
            assert ii.format == "full"

    def test_far_tiles_are_rk(self, pts):
        kern = laplace_kernel(pts)
        desc = build_tile_h(kern, pts, 100, eps=1e-6, leaf_size=32)
        assert desc.super.get_blktile(0, desc.nt - 1).format == "rk"

    def test_reuse_clustering(self, pts):
        cl = build_tile_h_clustering(pts, nb=128, leaf_size=32)
        kd = laplace_kernel(pts)
        kz = helmholtz_kernel(pts)
        d1 = build_tile_h(kd, pts, 128, eps=1e-5, clustering=cl)
        d2 = build_tile_h(kz, pts, 128, eps=1e-5, clustering=cl)
        assert np.array_equal(d1.perm, d2.perm)

    def test_compression_better_with_eps(self, pts):
        kern = laplace_kernel(pts)
        tight = build_tile_h(kern, pts, 128, eps=1e-10, leaf_size=32)
        loose = build_tile_h(kern, pts, 128, eps=1e-2, leaf_size=32)
        assert loose.compression_ratio() < tight.compression_ratio()

    def test_eps_recorded(self, pts):
        kern = laplace_kernel(pts)
        desc = build_tile_h(kern, pts, 128, eps=3e-5)
        assert desc.eps == 3e-5
