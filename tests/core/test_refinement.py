"""Unit tests for iterative refinement on top of the H-LU."""

import numpy as np
import pytest

from repro.core import TileHConfig, TileHMatrix, iterative_refinement
from repro.geometry import DenseOperator, assemble_dense, cylinder_cloud, laplace_kernel

N = 500


@pytest.fixture(scope="module")
def setup():
    pts = cylinder_cloud(N)
    kern = laplace_kernel(pts)
    op = DenseOperator(kern, pts)
    a = TileHMatrix.build(kern, pts, TileHConfig(nb=125, eps=1e-3, leaf_size=40))
    a.factorize()
    return pts, kern, op, a


class TestIterativeRefinement:
    def test_reaches_machine_precision(self, setup):
        _, _, op, a = setup
        x0 = np.random.default_rng(0).standard_normal(N)
        b = op.matvec(x0)
        x, hist = a.solve_refined(b, op.matvec)
        assert np.linalg.norm(x - x0) <= 1e-10 * np.linalg.norm(x0)
        assert hist[-1] <= 1e-12

    def test_history_contracts_geometrically(self, setup):
        _, _, op, a = setup
        x0 = np.random.default_rng(1).standard_normal(N)
        b = op.matvec(x0)
        _, hist = a.solve_refined(b, op.matvec, rtol=0.0, max_iter=4)
        # Each sweep multiplies the residual by ~eps (here 1e-3): require at
        # least a 10x contraction per recorded step until roundoff.
        for r0, r1 in zip(hist, hist[1:]):
            if r0 < 1e-13:
                break
            assert r1 < 0.1 * r0

    def test_improves_on_plain_solve(self, setup):
        _, _, op, a = setup
        x0 = np.random.default_rng(2).standard_normal(N)
        b = op.matvec(x0)
        plain = np.linalg.norm(a.solve(b) - x0)
        refined = np.linalg.norm(a.solve_refined(b, op.matvec)[0] - x0)
        assert refined < 1e-6 * plain

    def test_max_iter_respected(self, setup):
        _, _, op, a = setup
        b = op.matvec(np.ones(N))
        _, hist = a.solve_refined(b, op.matvec, max_iter=2, rtol=0.0)
        assert len(hist) == 2

    def test_zero_rhs(self, setup):
        _, _, op, a = setup
        x, hist = a.solve_refined(np.zeros(N), op.matvec)
        assert np.array_equal(x, np.zeros(N))
        assert hist == [0.0]

    def test_requires_factorization(self, setup):
        pts, kern, op, _ = setup
        fresh = TileHMatrix.build(kern, pts, TileHConfig(nb=125, eps=1e-3, leaf_size=40))
        with pytest.raises(RuntimeError):
            fresh.solve_refined(np.ones(N), op.matvec)

    def test_standalone_helper_validation(self):
        with pytest.raises(ValueError):
            iterative_refinement(lambda b: b, lambda x: x, np.ones(3), max_iter=0)

    def test_standalone_with_dense_lu(self):
        """The helper works with any solve/matvec pair."""
        rng = np.random.default_rng(3)
        a = rng.standard_normal((50, 50)) + 50 * np.eye(50)
        a_trunc = np.round(a, 2)  # a deliberately sloppy factorisation basis
        import scipy.linalg as sla

        lu = sla.lu_factor(a_trunc)
        x0 = rng.standard_normal(50)
        b = a @ x0
        x, hist = iterative_refinement(
            lambda r: sla.lu_solve(lu, r), lambda v: a @ v, b
        )
        assert np.linalg.norm(x - x0) <= 1e-10 * np.linalg.norm(x0)
