"""Krylov solves report to the ambient Instrumentation probe.

Every `pcg`/`gmres` return path runs through `_record`, so an active probe
sees `krylov.solves`, per-method counters, the iteration tally, and the
converged/unconverged split — and the run report renders them.
"""

import numpy as np
import pytest

from repro.core.krylov import gmres, pcg
from repro.obs import Instrumentation, build_run_report, render_report

N = 60


@pytest.fixture(scope="module")
def spd_system():
    rng = np.random.default_rng(11)
    q, _ = np.linalg.qr(rng.standard_normal((N, N)))
    a = q @ np.diag(np.linspace(1.0, 50.0, N)) @ q.T
    a = (a + a.T) / 2
    b = rng.standard_normal(N)
    return a, b


class TestCounters:
    def test_pcg_records_solve_and_iterations(self, spd_system):
        a, b = spd_system
        with Instrumentation() as probe:
            result = pcg(lambda v: a @ v, b, rtol=1e-10, max_iter=200)
        assert result.converged
        counters = probe.registry.as_dict()["counters"]
        assert counters["krylov.solves"] == 1
        assert counters["krylov.solves.pcg"] == 1
        assert counters["krylov.iters"] == result.iterations
        assert counters["krylov.converged"] == 1
        assert "krylov.unconverged" not in counters

    def test_gmres_records_under_its_own_method(self, spd_system):
        a, b = spd_system
        with Instrumentation() as probe:
            result = gmres(lambda v: a @ v, b, rtol=1e-10)
        assert result.converged
        counters = probe.registry.as_dict()["counters"]
        assert counters["krylov.solves.gmres"] == 1
        assert "krylov.solves.pcg" not in counters

    def test_unconverged_counted_separately(self, spd_system):
        a, b = spd_system
        with Instrumentation() as probe:
            result = pcg(lambda v: a @ v, b, rtol=1e-14, max_iter=2)
        assert not result.converged
        counters = probe.registry.as_dict()["counters"]
        assert counters["krylov.unconverged"] == 1
        assert "krylov.converged" not in counters

    def test_histograms_capture_iterations_and_residual(self, spd_system):
        a, b = spd_system
        with Instrumentation() as probe:
            r1 = pcg(lambda v: a @ v, b, rtol=1e-10, max_iter=200)
            r2 = gmres(lambda v: a @ v, b, rtol=1e-10)
        hist = probe.registry.as_dict()["histograms"]["krylov.iterations"]
        assert hist["count"] == 2
        assert hist["max"] == max(r1.iterations, r2.iterations)
        assert probe.registry.as_dict()["histograms"]["krylov.final_residual"]["max"] <= 1e-10

    def test_solves_accumulate(self, spd_system):
        a, b = spd_system
        with Instrumentation() as probe:
            for _ in range(3):
                pcg(lambda v: a @ v, b, rtol=1e-8, max_iter=200)
        assert probe.registry.as_dict()["counters"]["krylov.solves"] == 3


class TestWithoutProbe:
    def test_solvers_run_unprobed(self, spd_system):
        a, b = spd_system
        result = pcg(lambda v: a @ v, b, rtol=1e-10, max_iter=200)
        assert result.converged
        x, residuals = result  # (x, residuals) unpack protocol intact
        assert x.shape == b.shape and residuals == result.residuals

    def test_residual_history_is_monotone_at_the_end(self, spd_system):
        a, b = spd_system
        result = pcg(lambda v: a @ v, b, rtol=1e-10, max_iter=200)
        assert result.residuals[-1] <= 1e-10
        assert result.residuals[0] > result.residuals[-1]


class TestReportRendering:
    def test_rendered_report_shows_krylov_counters(self, spd_system):
        a, b = spd_system
        with Instrumentation() as probe:
            pcg(lambda v: a @ v, b, rtol=1e-10, max_iter=200)
        report = build_run_report(probe=probe, meta={"mode": "test"})
        text = render_report(report)
        assert "krylov" in text
        assert "1 solve" in text or "solves" in text
