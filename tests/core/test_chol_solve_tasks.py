"""Task-parallel Cholesky substitution (`tiled_chol_solve_tasks`).

The solve phase must be bit-identical to the sequential sweeps on every
executor: successive updates of one RHS segment are RW on the same handle,
so STF serialises them in submission order regardless of scheduler.
"""

import numpy as np
import pytest

from repro.core import (
    TileHConfig,
    TileHMatrix,
    tiled_chol_solve,
    tiled_chol_solve_tasks,
    tiled_potrf_tasks,
)
from repro.core.build import build_tile_h
from repro.geometry import assemble_dense, exponential_kernel, plate_cloud
from repro.runtime import StfEngine, ThreadedExecutor

N = 600
NB = 150
EPS = 1e-8


@pytest.fixture(scope="module")
def factored():
    pts = plate_cloud(N)
    kern = exponential_kernel(pts, length=0.6)
    desc = build_tile_h(kern, pts, NB, eps=EPS, leaf_size=40)
    dense = assemble_dense(kern, pts)
    tiled_potrf_tasks(desc)
    return desc, dense


@pytest.fixture(scope="module")
def rhs():
    return np.random.default_rng(5).standard_normal(N)


class TestBitIdentity:
    def test_eager_matches_sequential(self, factored, rhs):
        desc, _ = factored
        ref = tiled_chol_solve(desc, rhs)
        x, graph = tiled_chol_solve_tasks(desc, rhs)
        assert np.array_equal(x, ref)
        assert len(graph) > 0

    def test_threaded_matches_sequential(self, factored, rhs):
        desc, _ = factored
        ref = tiled_chol_solve(desc, rhs)
        x, _ = tiled_chol_solve_tasks(
            desc, rhs, StfEngine(mode="deferred"),
            executor=ThreadedExecutor(nworkers=2, scheduler="lws"),
        )
        assert np.array_equal(x, ref)

    def test_racecheck_clean_and_identical(self, factored, rhs):
        desc, _ = factored
        ref = tiled_chol_solve(desc, rhs)
        x, _ = tiled_chol_solve_tasks(desc, rhs, racecheck=True)
        assert np.array_equal(x, ref)

    def test_multi_rhs_columns_match_standalone(self, factored):
        desc, _ = factored
        panel = np.random.default_rng(6).standard_normal((N, 4))
        x, _ = tiled_chol_solve_tasks(desc, panel)
        for j in range(panel.shape[1]):
            col, _ = tiled_chol_solve_tasks(desc, panel[:, j])
            assert np.array_equal(x[:, j], col)


class TestGraphShape:
    def test_kind_counts(self, factored, rhs):
        desc, _ = factored
        nt = desc.nt
        _, graph = tiled_chol_solve_tasks(desc, rhs)
        counts = graph.kind_counts()
        assert counts["trsm"] == 2 * nt  # one TRSV per tile per sweep
        assert counts["gemm"] == nt * (nt - 1)  # forward + backward updates

    def test_deferred_engine_requires_executor(self, factored, rhs):
        desc, _ = factored
        with pytest.raises(ValueError, match="executor"):
            tiled_chol_solve_tasks(desc, rhs, StfEngine(mode="deferred"))

    def test_solution_accuracy(self, factored):
        desc, dense = factored
        x0 = np.random.default_rng(7).standard_normal(N)
        x, _ = tiled_chol_solve_tasks(desc, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-5 * np.linalg.norm(x0)


class TestSolverRouting:
    def _build(self, **cfg_kw):
        pts = plate_cloud(N)
        kern = exponential_kernel(pts, length=0.6)
        cfg = TileHConfig(nb=NB, eps=EPS, leaf_size=40, accumulate=False, **cfg_kw)
        solver, _ = TileHMatrix.build_factorize(kern, pts, cfg, method="cholesky")
        return solver

    def test_threaded_solve_bit_identical_to_eager(self, rhs):
        x_e = self._build().solve(rhs)
        x_t = self._build(exec_mode="threaded", nworkers=2).solve(rhs)
        assert np.array_equal(x_e, x_t)

    def test_racecheck_solve_routes_through_tasks(self, rhs):
        x_e = self._build().solve(rhs)
        x_r = self._build(racecheck=True).solve(rhs)  # raises on a race
        assert np.array_equal(x_e, x_r)
