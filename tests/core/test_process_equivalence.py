"""Eager vs process-executor numerical equivalence.

With ``accumulate=False`` every update of a tile is an RW task on that
tile's handle, so the STF writer-after-writer dependencies serialize them in
submission order no matter which worker runs them — the process executor
must therefore reproduce the eager results *bit for bit* at any worker
count, for real and complex LU and for Cholesky, on both the fused
build+factorize path and the phase-separated one.
"""

import numpy as np
import pytest

from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel, streamed_matvec
from repro.runtime import orphaned_segments, validate_trace

N, NB = 256, 64

CASES = [
    ("laplace", "lu"),       # real double
    ("helmholtz", "lu"),     # complex double
    ("exponential", "cholesky"),  # SPD kernel
]


@pytest.fixture(autouse=True)
def _no_shm_leaks():
    before = set(orphaned_segments())
    yield
    leaked = sorted(set(orphaned_segments()) - before)
    assert leaked == [], f"leaked shared-memory segments: {leaked}"


def _problem(kernel_name):
    pts = cylinder_cloud(N)
    kern = make_kernel(kernel_name, pts)
    rng = np.random.default_rng(0)
    x0 = rng.standard_normal(N)
    if kernel_name == "helmholtz":
        x0 = x0 + 1j * rng.standard_normal(N)
    b = streamed_matvec(kern, pts, x0)
    return pts, kern, b


def _cfg(**kw):
    return TileHConfig(nb=NB, eps=1e-6, leaf_size=48, accumulate=False, **kw)


@pytest.mark.parametrize("kernel_name,method", CASES)
def test_fused_build_factorize_bit_identical_to_eager(kernel_name, method):
    pts, kern, b = _problem(kernel_name)
    a_e, _ = TileHMatrix.build_factorize(kern, pts, _cfg(), method=method)
    xe = a_e.solve(b)

    cfg = _cfg(exec_mode="process", nworkers=2, scheduler="lws")
    a_p, info = TileHMatrix.build_factorize(kern, pts, cfg, method=method)
    xp = a_p.solve(b)

    assert np.array_equal(xp, xe), (
        f"max|dx| = {np.max(np.abs(xp - xe))}"
    )
    assert validate_trace(info.graph, info.trace) == []


def test_separate_phases_bit_identical_to_eager():
    """Assembly, factorization and solve as three separate process runs."""
    pts, kern, b = _problem("laplace")
    a_e = TileHMatrix.build(kern, pts, _cfg())
    a_e.factorize(method="lu")
    xe = a_e.solve(b)

    cfg = _cfg(exec_mode="process", nworkers=2, scheduler="lws")
    a_p = TileHMatrix.build(kern, pts, cfg)
    a_p.factorize(method="lu")
    xp = a_p.solve(b)
    assert np.array_equal(xp, xe)


def test_process_built_solver_saves_and_round_trips(tmp_path):
    """Tiles harvested from workers arrive with unpickled cluster-node
    copies; the solver must re-anchor them on the canonical tree so the
    identity-keyed archive serialization still works (regression: KeyError
    in save_tile_h after a process build)."""
    pts, kern, b = _problem("laplace")
    cfg = _cfg(exec_mode="process", nworkers=2, scheduler="lws")
    a_p, _ = TileHMatrix.build_factorize(kern, pts, cfg, method="lu")
    xp = a_p.solve(b)
    path = tmp_path / "factor.npz"
    a_p.save(path)
    loaded = TileHMatrix.load(path)
    assert np.array_equal(loaded.solve(b), xp)


def test_process_factorize_after_eager_build_saves(tmp_path):
    """Same invariant on the phase-separated path: factorize tasks ship the
    whole tile back, so the harvested mats need re-linking too."""
    pts, kern, b = _problem("laplace")
    a = TileHMatrix.build(kern, pts, _cfg(exec_mode="process", nworkers=2))
    a.factorize(method="lu")
    x = a.solve(b)
    path = tmp_path / "factor.npz"
    a.save(path)
    assert np.array_equal(TileHMatrix.load(path).solve(b), x)


class TestConfigValidation:
    def test_process_mode_accepted(self):
        cfg = TileHConfig(nb=64, exec_mode="process", nworkers=2)
        assert cfg.exec_mode == "process"

    def test_racecheck_process_rejected(self):
        with pytest.raises(ValueError):
            TileHConfig(nb=64, exec_mode="process", racecheck=True)

    def test_unknown_exec_mode_still_rejected(self):
        with pytest.raises(ValueError):
            TileHConfig(nb=64, exec_mode="gpu")
