"""Package-surface tests: every advertised symbol imports and is real."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.geometry",
    "repro.dense",
    "repro.hmatrix",
    "repro.runtime",
    "repro.core",
    "repro.baselines",
    "repro.analysis",
]


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_imports(name):
    mod = importlib.import_module(name)
    assert mod.__doc__, f"{name} has no module docstring"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_symbols_exist(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__") and mod.__all__
    for sym in mod.__all__:
        assert hasattr(mod, sym), f"{name}.__all__ lists missing symbol {sym!r}"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_public_symbols_documented(name):
    """Every public class/function carries a docstring (deliverable e)."""
    mod = importlib.import_module(name)
    undocumented = []
    for sym in mod.__all__:
        obj = getattr(mod, sym)
        if callable(obj) and not getattr(obj, "__doc__", None):
            undocumented.append(sym)
    assert not undocumented, f"{name}: undocumented public symbols {undocumented}"


def test_cli_module_importable():
    from repro.__main__ import build_parser, main  # noqa: F401
