"""ProcessExecutor: scheduler fidelity, shared-memory hygiene, crash safety.

The process executor must be indistinguishable from the threaded executor at
the scheduling level (same policies, same single-worker pull order as the
virtual-time simulator, traces that are linear extensions of the DAG) while
moving payloads through shared-memory segments instead of a shared heap.
These tests pin both halves down, plus the cleanup contract: **no run ever
leaves a segment in /dev/shm**, not even when a worker raises or dies.
"""

import numpy as np
import pytest

from repro.runtime import (
    SCHEDULER_NAMES,
    AccessMode,
    ProcessExecutor,
    RuntimeOverheadModel,
    StfEngine,
    TaskSpec,
    orphaned_segments,
    simulate,
    validate_trace,
)
from repro.runtime.dag import TaskGraph

R, W, RW = AccessMode.R, AccessMode.W, AccessMode.RW
ZERO = RuntimeOverheadModel.zero()

INCR = TaskSpec("repro.runtime.process:_incr_for_tests")
NOOP = TaskSpec("repro.runtime.process:_noop_for_tests")


def _pretraced_graph(seed, n=24):
    """Random DAG of ``func=None`` tasks with explicit costs (simulator fuel)."""
    rng = np.random.default_rng(seed)
    g = TaskGraph()
    ts = [
        g.new_task("k", seconds=float(rng.uniform(0.01, 1.0)),
                   priority=int(rng.integers(0, 5)))
        for _ in range(n)
    ]
    for i in range(1, n):
        k = int(rng.integers(0, min(3, i) + 1))
        for d in rng.choice(i, size=k, replace=False):
            g.add_dependency(ts[int(d)], ts[i])
    return g


def _incr_graph(n_arrays=4, chain=5):
    """Deferred graph of RW increment chains over shared ndarray payloads."""
    eng = StfEngine(mode="deferred")
    arrays = [np.zeros(8) for _ in range(n_arrays)]
    for step in range(chain):
        for i, a in enumerate(arrays):
            eng.insert_task(
                "incr",
                lambda a=a: None,  # placeholder closure; spec is what runs
                [(eng.handle(a, f"a{i}"), RW)],
                spec=TaskSpec("repro.runtime.process:_incr_for_tests",
                              kwargs={"delta": float(step + 1)}),
            )
    return eng.wait_all(), arrays


@pytest.fixture(autouse=True)
def _no_shm_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(orphaned_segments())
    yield
    leaked = sorted(set(orphaned_segments()) - before)
    assert leaked == [], f"leaked shared-memory segments: {leaked}"


@pytest.mark.parametrize("policy", SCHEDULER_NAMES)
def test_single_worker_process_matches_simulator_order(policy):
    """At nworkers=1 the process executor pulls tasks in exactly the order
    the virtual-time simulator schedules them, for every policy."""
    g_sim = _pretraced_graph(seed=7)
    r = simulate(g_sim, 1, policy, overheads=ZERO)
    sim_order = [e.task_id for e in r.trace.events]

    g_proc = _pretraced_graph(seed=7)
    ex = ProcessExecutor(1, scheduler=policy)
    ex.run(g_proc)
    proc_order = [e.task_id for e in sorted(ex.trace.events, key=lambda e: e.start)]
    assert proc_order == sim_order


@pytest.mark.parametrize("policy", SCHEDULER_NAMES)
def test_multi_worker_process_trace_is_linear_extension(policy):
    g, arrays = _incr_graph()
    ex = ProcessExecutor(2, scheduler=policy)
    ex.run(g)
    assert validate_trace(g, ex.trace) == []
    # 5 serialized RW increments of 1..5 on every array.
    for a in arrays:
        np.testing.assert_array_equal(a, np.full(8, 15.0))


def test_payload_mutations_round_trip_into_parent_arrays():
    """Worker-side in-place writes land back in the parent's original arrays
    (the executor installs harvested results in place, preserving aliases)."""
    g, arrays = _incr_graph(n_arrays=2, chain=3)
    originals = list(arrays)
    ex = ProcessExecutor(2)
    ex.run(g)
    for orig, a in zip(originals, arrays):
        assert orig is a
        np.testing.assert_array_equal(orig, np.full(8, 6.0))
    assert ex.ipc_bytes > 0
    assert ex.shm_bytes > 0


def test_closure_without_spec_is_rejected():
    eng = StfEngine(mode="deferred")
    a = np.zeros(4)
    eng.insert_task("k", lambda: None, [(eng.handle(a, "a"), RW)])
    g = eng.wait_all()
    with pytest.raises(ValueError, match="TaskSpec"):
        ProcessExecutor(1).run(g)


def test_worker_exception_propagates_and_cleans_up():
    eng = StfEngine(mode="deferred")
    a = np.zeros(4)
    h = eng.handle(a, "a")
    eng.insert_task("k", lambda: None, [(h, RW)], spec=INCR)
    eng.insert_task(
        "k", lambda: None, [(h, RW)],
        spec=TaskSpec("repro.runtime.process:_raise_for_tests",
                      kwargs={"message": "kaboom"}),
    )
    g = eng.wait_all()
    with pytest.raises(ValueError, match="kaboom"):
        ProcessExecutor(2).run(g)
    # Segment cleanup is asserted by the autouse fixture.


def test_worker_crash_raises_and_cleans_up():
    """A worker that dies mid-task (os._exit) must surface a RuntimeError in
    the parent and still unlink every shared segment."""
    eng = StfEngine(mode="deferred")
    a = np.zeros(4)
    h = eng.handle(a, "a")
    eng.insert_task("k", lambda: None, [(h, RW)], spec=INCR)
    eng.insert_task("k", lambda: None, [(h, RW)],
                    spec=TaskSpec("repro.runtime.process:_crash_for_tests"))
    g = eng.wait_all()
    with pytest.raises(RuntimeError, match="died"):
        ProcessExecutor(1).run(g)


def test_crash_error_names_worker_task_and_exit_code():
    """The 'worker died' error must say which worker, which task, and the
    exit code — not just raise a bare BrokenPipeError."""
    eng = StfEngine(mode="deferred")
    a = np.zeros(4)
    h = eng.handle(a, "a")
    eng.insert_task("k", lambda: None, [(h, RW)],
                    spec=TaskSpec("repro.runtime.process:_crash_for_tests"))
    g = eng.wait_all()
    with pytest.raises(RuntimeError, match=r"worker 0 died \(exit code 3\).*task #0"):
        ProcessExecutor(1).run(g)


def test_startup_death_carries_child_traceback():
    """A worker that dies during startup (here: a context blob that raises on
    unpickle) must surface the child's traceback in the parent error, and the
    run must still unlink every segment."""
    from repro.runtime.process import _ExplodingContext

    eng = StfEngine(mode="deferred")
    a = np.zeros(4)
    eng.insert_task("k", lambda: None, [(eng.handle(a, "a"), RW)], spec=INCR)
    g = eng.wait_all()
    ex = ProcessExecutor(1, context=_ExplodingContext())
    with pytest.raises(RuntimeError, match="exploding context \\(test helper\\)"):
        ex.run(g)


class TestSpawnableCheck:
    """_check_spawnable: fail fast when spawn cannot re-import __main__."""

    @staticmethod
    def _fake_main(**attrs):
        import types

        mod = types.ModuleType("__main__")
        mod.__spec__ = None
        for k, v in attrs.items():
            setattr(mod, k, v)
        return mod

    def test_stdin_main_is_rejected_before_spawn(self, monkeypatch):
        import sys

        from repro.runtime.process import _check_spawnable

        monkeypatch.setitem(sys.modules, "__main__",
                            self._fake_main(__file__="<stdin>"))
        with pytest.raises(RuntimeError, match="stdin"):
            _check_spawnable()

    def test_real_file_main_is_accepted(self, monkeypatch):
        import sys

        from repro.runtime.process import _check_spawnable

        monkeypatch.setitem(sys.modules, "__main__",
                            self._fake_main(__file__=__file__))
        _check_spawnable()  # must not raise

    def test_module_main_is_accepted_even_without_file(self, monkeypatch):
        # `python -m pkg` sets __spec__; children re-import by module name,
        # so a missing/virtual __file__ is fine.
        import sys

        from repro.runtime.process import _check_spawnable

        mod = self._fake_main(__file__="<frozen>")
        mod.__spec__ = object()
        monkeypatch.setitem(sys.modules, "__main__", mod)
        _check_spawnable()  # must not raise

    def test_interactive_main_is_accepted(self, monkeypatch):
        import sys

        from repro.runtime.process import _check_spawnable

        monkeypatch.setitem(sys.modules, "__main__", self._fake_main())
        _check_spawnable()  # must not raise


def test_empty_graph_returns_zero():
    assert ProcessExecutor(2).run(TaskGraph()) == 0.0


def test_bad_nworkers_rejected():
    with pytest.raises(ValueError, match="nworkers"):
        ProcessExecutor(0)


@pytest.mark.parametrize("policy", SCHEDULER_NAMES)
def test_batched_single_worker_still_matches_simulator_order(policy):
    """Batched dispatch must not change the 1-worker pull order: optimistic
    completion replays the exact pop -> release -> pop sequence the
    simulator uses, just without waiting for per-task round trips."""
    g_sim = _pretraced_graph(seed=11)
    sim_order = [
        e.task_id for e in simulate(g_sim, 1, policy, overheads=ZERO).trace.events
    ]
    g_proc = _pretraced_graph(seed=11)
    ex = ProcessExecutor(1, scheduler=policy, dispatch_batch=4)
    ex.run(g_proc)
    proc_order = [
        e.task_id for e in sorted(ex.trace.events, key=lambda e: e.start)
    ]
    assert proc_order == sim_order


@pytest.mark.parametrize("nworkers", [1, 2])
def test_batched_dispatch_results_and_trace(nworkers):
    g, arrays = _incr_graph()
    ex = ProcessExecutor(nworkers, scheduler="lws", dispatch_batch=4)
    ex.run(g)
    assert validate_trace(g, ex.trace) == []
    for a in arrays:
        np.testing.assert_array_equal(a, np.full(8, 15.0))


def test_dispatch_batches_counter_shows_coalescing():
    from repro.obs import Instrumentation

    g, _arrays = _incr_graph(n_arrays=2, chain=4)
    with Instrumentation() as probe:
        ProcessExecutor(1, dispatch_batch=8, instrument=probe).run(g)
    reg = probe.registry
    n_tasks = reg.counter("process.dispatches")
    n_batches = reg.counter("process.dispatch_batches")
    assert n_tasks == len(g)
    # Optimistic completion walks the RW chains, so the 8 tasks leave in
    # strictly fewer pipe writes than tasks.
    assert 0 < n_batches < n_tasks


def test_bad_dispatch_batch_rejected():
    with pytest.raises(ValueError, match="dispatch_batch"):
        ProcessExecutor(1, dispatch_batch=0)
