"""Unit tests for tasks, handles and access modes."""

import pytest

from repro.runtime import AccessMode, DataHandle, Task


class TestAccessMode:
    def test_read_flags(self):
        assert AccessMode.R.reads and not AccessMode.R.writes

    def test_write_flags(self):
        assert AccessMode.W.writes and not AccessMode.W.reads

    def test_rw_flags(self):
        assert AccessMode.RW.reads and AccessMode.RW.writes


class TestDataHandle:
    def test_unique_ids(self):
        a, b = DataHandle(), DataHandle()
        assert a.id != b.id

    def test_named(self):
        h = DataHandle(name="A00")
        assert h.name == "A00"

    def test_default_name(self):
        h = DataHandle()
        assert h.name == f"data{h.id}"

    def test_reset(self):
        h = DataHandle()
        h.last_writer = Task(id=0, kind="x")
        h.readers = [Task(id=1, kind="y")]
        h.reset()
        assert h.last_writer is None and h.readers == []


class TestTask:
    def test_cost_models(self):
        t = Task(id=0, kind="gemm", seconds=1.5, flops=100.0)
        assert t.cost("seconds") == 1.5
        assert t.cost("flops") == 100.0
        with pytest.raises(ValueError):
            t.cost("joules")

    def test_identity_semantics(self):
        a = Task(id=3, kind="x")
        b = Task(id=3, kind="y")
        c = Task(id=4, kind="x")
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a task"

    def test_n_deps(self):
        t = Task(id=0, kind="x")
        t.deps.update({1, 2, 3})
        assert t.n_deps == 3
