"""Threaded execution under every scheduler policy.

The threaded executor drives the *same* scheduler objects as the
virtual-time simulator, with the same push-to-releasing-worker and steal
semantics.  These tests pin that equivalence down:

* property: on random DAGs every policy runs every task exactly once and
  produces a trace that is a linear extension of the DAG, at 1-3 workers;
* with one worker (no timing jitter) the threaded pull order reproduces the
  simulator's schedule event for event, for all five policies;
* virtual-time policies are deterministic on tied priorities;
* the ``ws`` steal path picks a victim other than the idle caller.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    SCHEDULER_NAMES,
    AccessMode,
    RuntimeOverheadModel,
    StfEngine,
    TaskGraph,
    ThreadedExecutor,
    make_scheduler,
    simulate,
    validate_trace,
)

R, W, RW = AccessMode.R, AccessMode.W, AccessMode.RW

ZERO = RuntimeOverheadModel.zero()


def _random_deferred_graph(seed, n, log):
    """Random DAG of deferred tasks that append their id to ``log``."""
    rng = np.random.default_rng(seed)
    g = TaskGraph()
    ts = []
    for i in range(n):
        t = g.new_task("k", seconds=float(rng.uniform(0.01, 1.0)),
                       priority=int(rng.integers(0, 5)))
        t.func = lambda i=i: log.append(i)
        ts.append(t)
    for i in range(1, n):
        k = int(rng.integers(0, min(4, i) + 1))
        for d in rng.choice(i, size=k, replace=False):
            g.add_dependency(ts[int(d)], ts[i])
    return g


def _pretraced_graph(seed, n=24):
    """Random DAG of ``func=None`` tasks with explicit costs.

    The threaded executor keeps explicit costs for pre-traced tasks, so the
    cost-aware ``dm`` policy makes identical decisions threaded or simulated.
    """
    rng = np.random.default_rng(seed)
    g = TaskGraph()
    ts = [
        g.new_task("k", seconds=float(rng.uniform(0.01, 1.0)),
                   priority=int(rng.integers(0, 5)))
        for _ in range(n)
    ]
    for i in range(1, n):
        k = int(rng.integers(0, min(3, i) + 1))
        for d in rng.choice(i, size=k, replace=False):
            g.add_dependency(ts[int(d)], ts[i])
    return g


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=1, max_value=30),
    nworkers=st.integers(min_value=1, max_value=3),
    policy=st.sampled_from(SCHEDULER_NAMES),
)
def test_property_every_policy_runs_every_task_exactly_once(
    seed, n, nworkers, policy
):
    log = []
    g = _random_deferred_graph(seed, n, log)
    ex = ThreadedExecutor(nworkers, scheduler=policy)
    ex.run(g)
    assert sorted(log) == list(range(n))
    # validate_trace checks exactly-once *and* linear extension; strict mode
    # raises on the first violation.
    assert validate_trace(g, ex.trace) == []


@pytest.mark.parametrize("policy", SCHEDULER_NAMES)
def test_single_worker_threaded_matches_simulator_order(policy):
    """At nworkers=1 there is no timing jitter: the threaded executor must
    pull tasks in exactly the order the virtual-time simulator does."""
    g_sim = _pretraced_graph(seed=7)
    r = simulate(g_sim, 1, policy, overheads=ZERO)
    sim_order = [e.task_id for e in r.trace.events]

    g_thr = _pretraced_graph(seed=7)  # fresh graph, same structure
    ex = ThreadedExecutor(1, scheduler=policy)
    ex.run(g_thr)
    thr_order = [e.task_id for e in sorted(ex.trace.events, key=lambda e: e.start)]
    assert thr_order == sim_order


@pytest.mark.parametrize("policy", SCHEDULER_NAMES)
@pytest.mark.parametrize("nworkers", [2, 3])
def test_multi_worker_threaded_trace_is_linear_extension(policy, nworkers):
    log = []
    g = _random_deferred_graph(11, 40, log)
    ex = ThreadedExecutor(nworkers, scheduler=policy)
    ex.run(g)
    assert sorted(log) == list(range(40))
    assert validate_trace(g, ex.trace) == []


@pytest.mark.parametrize("policy", SCHEDULER_NAMES)
def test_virtual_time_determinism_on_tied_priorities(policy):
    """All tasks share one priority: ties must break on submission order,
    identically across repeated simulations."""
    def graph():
        g = _pretraced_graph(seed=3, n=30)
        for t in g.tasks:
            t.priority = 7
        return g

    runs = [
        [(e.task_id, e.worker, e.start) for e in
         simulate(graph(), 3, policy, overheads=ZERO).trace.events]
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


class TestWorkStealingPop:
    def test_idle_caller_steals_despite_empty_own_queue(self):
        """The idle caller's own empty queue must never mask a victim: with
        one task queued on worker 1, pop(0) steals it."""
        g = TaskGraph()
        t = g.new_task("k", seconds=1.0)
        sched = make_scheduler("ws")
        sched.setup(2)
        sched.push(t, 1)
        assert sched.pop(0) is t
        assert sched.pending() == 0

    def test_steals_from_most_loaded_other_worker(self):
        g = TaskGraph()
        ts = [g.new_task("k", seconds=1.0) for _ in range(5)]
        sched = make_scheduler("ws")
        sched.setup(3)
        sched.push(ts[0], 1)
        for t in ts[1:4]:
            sched.push(t, 2)
        # Worker 0 is idle: steals from worker 2 (load 3 > 1), from the tail.
        assert sched.pop(0) is ts[3]

    def test_all_empty_returns_none(self):
        sched = make_scheduler("ws")
        sched.setup(3)
        assert sched.pop(1) is None

    def test_tie_breaks_on_lowest_index(self):
        g = TaskGraph()
        a, b = g.new_task("k"), g.new_task("k")
        sched = make_scheduler("ws")
        sched.setup(4)
        sched.push(a, 1)
        sched.push(b, 3)
        assert sched.pop(0) is a  # workers 1 and 3 tie at load 1


class TestBottomLevels:
    def test_hand_checked_dag(self):
        # chain a(2) -> b(3) -> d(1); a -> c(5) -> d
        g = TaskGraph()
        a = g.new_task("k", seconds=2.0)
        b = g.new_task("k", seconds=3.0)
        c = g.new_task("k", seconds=5.0)
        d = g.new_task("k", seconds=1.0)
        g.add_dependency(a, b)
        g.add_dependency(a, c)
        g.add_dependency(b, d)
        g.add_dependency(c, d)
        levels = g.bottom_levels()
        assert levels[d.id] == 1.0
        assert levels[b.id] == 4.0
        assert levels[c.id] == 6.0
        assert levels[a.id] == 8.0

    def test_max_bottom_level_is_critical_path(self):
        g = _pretraced_graph(seed=5, n=40)
        levels = g.bottom_levels()
        assert max(levels.values()) == pytest.approx(g.critical_path())

    def test_flops_cost_attr(self):
        g = TaskGraph()
        a = g.new_task("k", flops=10.0)
        b = g.new_task("k", flops=4.0)
        g.add_dependency(a, b)
        assert g.bottom_levels("flops") == {a.id: 14.0, b.id: 4.0}


class TestNewKindRendering:
    def test_to_dot_colors_new_kinds(self):
        eng = StfEngine(mode="eager")
        tile = object()
        h = eng.handle(tile, "t")
        eng.insert_task("assemble", lambda: None, [(h, W)])
        eng.insert_task("potrf", lambda: None, [(h, RW)])
        eng.insert_task("trsm-solve", lambda: None, [(h, RW)])
        dot = eng.wait_all().to_dot()
        assert "forestgreen" in dot     # assemble
        assert "indianred" in dot       # potrf
        assert "darkgoldenrod" in dot   # trsm-solve
        assert "assemble" in dot and "potrf" in dot

    def test_gantt_assemble_letter(self):
        from repro.runtime import ExecutionTrace, TraceEvent, render_gantt

        tr = ExecutionTrace(nworkers=1)
        tr.add(TraceEvent(0, "assemble", 0, 0.0, 1.0))
        assert "A" in render_gantt(tr, width=10)
