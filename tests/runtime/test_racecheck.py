"""Tests for the runtime access-mode race detector (runtime/racecheck.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    AccessMode,
    RaceCheckError,
    RaceChecker,
    StfEngine,
    TaskGraph,
    payload_fingerprint,
    simulate,
    validate_trace,
)
from repro.runtime.racecheck import iter_buffers
from repro.runtime.trace import ExecutionTrace, TraceEvent

R, W, RW = AccessMode.R, AccessMode.W, AccessMode.RW


class TestFingerprint:
    def test_detects_array_change(self):
        a = np.arange(10.0)
        fp0 = payload_fingerprint(a)
        a[3] = 99.0
        assert payload_fingerprint(a) != fp0

    def test_stable_when_unchanged(self):
        a = np.arange(10.0)
        assert payload_fingerprint(a) == payload_fingerprint(a)

    def test_sampling_mode_detects_bulk_change(self):
        a = np.zeros(1 << 18)
        fp0 = payload_fingerprint(a, sample_threshold=1 << 10)
        a[:] = 1.0
        assert payload_fingerprint(a, sample_threshold=1 << 10) != fp0

    def test_sampling_mode_sees_shape(self):
        a = np.zeros((512, 512))
        b = np.zeros((1024, 256))
        thr = 1 << 10
        assert payload_fingerprint(a, sample_threshold=thr) != payload_fingerprint(
            b, sample_threshold=thr
        )

    def test_walks_nested_payloads(self):
        from repro.hmatrix.rk import RkMatrix

        rk = RkMatrix(np.ones((4, 2)), np.ones((5, 2)))
        arrays = list(iter_buffers([rk, np.zeros(3)]))
        assert len(arrays) == 3
        fp0 = payload_fingerprint([rk, np.zeros(3)])
        rk.u[0, 0] = -1.0
        assert payload_fingerprint([rk, np.zeros(3)]) != fp0

    def test_walks_hmatrix_leaves(self):
        from repro.geometry import cylinder_cloud, laplace_kernel
        from repro.hmatrix import (
            AssemblyConfig,
            StrongAdmissibility,
            assemble_hmatrix,
            build_block_cluster_tree,
            build_cluster_tree,
        )

        pts = cylinder_cloud(120)
        ct = build_cluster_tree(pts, leaf_size=16)
        bt = build_block_cluster_tree(ct, ct, StrongAdmissibility())
        h = assemble_hmatrix(laplace_kernel(pts), pts, bt, AssemblyConfig(eps=1e-6))
        fp0 = payload_fingerprint(h)
        assert payload_fingerprint(h) == fp0
        for leaf in h.leaves():
            if leaf.full is not None:
                leaf.full[0, 0] += 1.0
                break
        assert payload_fingerprint(h) != fp0


class TestMisdeclaredAccess:
    def test_undeclared_write_caught(self):
        eng = StfEngine(racecheck=True)
        a = np.zeros(8)
        ha = eng.handle(a, "a")
        with pytest.raises(RaceCheckError, match="undeclared-write"):
            eng.insert_task("bad", lambda: a.__setitem__(slice(None), 7.0), [(ha, R)])

    def test_undeclared_write_recorded_when_not_strict(self):
        checker = RaceChecker(strict=False)
        eng = StfEngine(racecheck=checker)
        a = np.zeros(8)
        ha = eng.handle(a, "a")
        eng.insert_task("bad", lambda: a.__setitem__(0, 1.0), [(ha, R)])
        assert checker.n_errors == 1
        assert checker.violations[0].kind == "undeclared-write"
        assert checker.violations[0].handle == "a"

    def test_silent_write_warns(self):
        checker = RaceChecker(strict=False)
        eng = StfEngine(racecheck=checker)
        a = np.zeros(8)
        ha = eng.handle(a, "a")
        eng.insert_task("noop", lambda: None, [(ha, W)])
        assert checker.n_errors == 0
        assert checker.n_warnings == 1
        assert checker.violations[0].kind == "silent-write"

    def test_rw_unchanged_is_fine(self):
        # A zero-contribution GEMM legitimately leaves its RW tile unchanged.
        checker = RaceChecker(strict=False)
        eng = StfEngine(racecheck=checker)
        a = np.zeros(8)
        ha = eng.handle(a, "a")
        eng.insert_task("gemm", lambda: None, [(ha, RW)])
        assert checker.violations == []

    def test_correct_declarations_pass(self):
        eng = StfEngine(racecheck=True)
        a, b = np.zeros(8), np.ones(8)
        ha, hb = eng.handle(a, "a"), eng.handle(b, "b")
        eng.insert_task("axpy", lambda: a.__iadd__(b), [(hb, R), (ha, RW)])
        eng.insert_task("read", lambda: float(b.sum()), [(hb, R)])
        assert eng.racecheck.n_errors == 0
        assert eng.racecheck.n_checked_tasks == 2


class TestAliasing:
    def test_overlapping_views_flagged(self):
        eng = StfEngine(racecheck=True)
        buf = np.zeros(16)
        eng.handle(buf[0:10], "v1")
        with pytest.raises(RaceCheckError, match="aliased-handles"):
            eng.handle(buf[5:15], "v2")

    def test_disjoint_views_pass(self):
        eng = StfEngine(racecheck=True)
        buf = np.zeros(16)
        eng.handle(buf[0:8], "lo")
        eng.handle(buf[8:16], "hi")
        assert eng.racecheck.violations == []

    def test_same_payload_same_handle_passes(self):
        eng = StfEngine(racecheck=True)
        a = np.zeros(4)
        h1 = eng.handle(a)
        h2 = eng.handle(a)
        assert h1 is h2
        assert eng.racecheck.violations == []


class TestStaleAccumulatorRead:
    def _rk_leaf_hmatrix(self):
        from repro.hmatrix import build_cluster_tree
        from repro.hmatrix.hmatrix import HMatrix
        from repro.hmatrix.rk import RkMatrix

        pts = np.random.default_rng(0).standard_normal((8, 3))
        ct = build_cluster_tree(pts, leaf_size=8)
        return HMatrix(ct, ct, rk=RkMatrix.zeros(8, 8))

    def test_pending_read_caught(self):
        from repro.hmatrix import UpdateAccumulator
        from repro.hmatrix.rk import RkMatrix

        h = self._rk_leaf_hmatrix()
        acc = UpdateAccumulator(1e-8)
        acc.defer_rk(h, RkMatrix(np.ones((8, 1)), np.ones((8, 1))))
        checker = RaceChecker(strict=False)
        checker.watch_accumulator(acc)
        eng = StfEngine(racecheck=checker)
        hh = eng.handle(h, "leaf")
        eng.insert_task("read", lambda: None, [(hh, R)])
        assert any(v.kind == "stale-read" for v in checker.violations)

    def test_flushed_read_passes(self):
        from repro.hmatrix import UpdateAccumulator
        from repro.hmatrix.rk import RkMatrix

        h = self._rk_leaf_hmatrix()
        acc = UpdateAccumulator(1e-8)
        acc.defer_rk(h, RkMatrix(np.ones((8, 1)), np.ones((8, 1))))
        acc.flush()
        checker = RaceChecker(strict=False)
        checker.watch_accumulator(acc)
        eng = StfEngine(racecheck=checker)
        hh = eng.handle(h, "leaf")
        eng.insert_task("read", lambda: None, [(hh, R)])
        assert checker.violations == []

    def test_has_pending_subtree(self):
        from repro.hmatrix import UpdateAccumulator
        from repro.hmatrix.rk import RkMatrix

        h = self._rk_leaf_hmatrix()
        acc = UpdateAccumulator(1e-8)
        assert not acc.has_pending(h)
        acc.defer_rk(h, RkMatrix(np.ones((8, 1)), np.ones((8, 1))))
        assert acc.has_pending(h)


@pytest.mark.parametrize("precision", ["d", "z"])
@pytest.mark.parametrize("accumulate", [True, False])
class TestTiledLuClean:
    """The full tiled LU must run clean under the detector (d and z)."""

    def test_lu_racecheck_clean(self, precision, accumulate):
        from repro.core import TileHConfig, TileHMatrix
        from repro.geometry import cylinder_cloud, make_kernel, streamed_matvec

        n, nb = 240, 60
        pts = cylinder_cloud(n)
        kern = make_kernel("laplace" if precision == "d" else "helmholtz", pts)
        cfg = TileHConfig(nb=nb, eps=1e-5, leaf_size=24, accumulate=accumulate,
                          racecheck=True)
        a = TileHMatrix.build(kern, pts, cfg)
        info = a.factorize()
        assert info.racecheck is not None
        assert info.racecheck.n_errors == 0
        assert info.racecheck.n_checked_tasks == len(info.graph)
        # Solve runs through the task layer under racecheck and stays sound.
        rng = np.random.default_rng(0)
        x0 = rng.standard_normal(n)
        if precision == "z":
            x0 = x0 + 1j * rng.standard_normal(n)
        b = streamed_matvec(kern, pts, x0)
        x = a.solve(b)
        assert np.linalg.norm(x - x0) <= 1e-3 * np.linalg.norm(x0)


class TestTiledPotrfClean:
    def test_potrf_racecheck_clean(self):
        from repro.core import tiled_potrf_tasks
        from repro.core.build import build_tile_h
        from repro.geometry import exponential_kernel, plate_cloud

        pts = plate_cloud(300)
        kern = exponential_kernel(pts, length=0.6)
        desc = build_tile_h(kern, pts, 75, eps=1e-8, leaf_size=40)
        eng = StfEngine(racecheck=True)
        graph = tiled_potrf_tasks(desc, eng)
        assert eng.racecheck.n_errors == 0
        assert eng.racecheck.n_checked_tasks == len(graph)

    def test_potrf_racecheck_kwarg(self):
        from repro.core import tiled_potrf_tasks
        from repro.core.build import build_tile_h
        from repro.geometry import exponential_kernel, plate_cloud

        pts = plate_cloud(200)
        kern = exponential_kernel(pts, length=0.6)
        desc = build_tile_h(kern, pts, 50, eps=1e-8, leaf_size=32)
        tiled_potrf_tasks(desc, racecheck=True)  # strict: raises on violation


class TestTiledSolveClean:
    def test_solve_tasks_racecheck_clean(self):
        from repro.core import tiled_getrf_tasks, tiled_solve_tasks
        from repro.core.build import build_tile_h
        from repro.geometry import cylinder_cloud, laplace_kernel

        pts = cylinder_cloud(240)
        kern = laplace_kernel(pts)
        desc = build_tile_h(kern, pts, 60, eps=1e-7, leaf_size=24)
        tiled_getrf_tasks(desc)
        eng = StfEngine(racecheck=True)
        x, graph = tiled_solve_tasks(desc, np.ones(240), eng)
        assert eng.racecheck.n_errors == 0
        assert eng.racecheck.n_checked_tasks == len(graph)


class TestHmatBaselineRacecheck:
    def test_hmat_solver_clean(self):
        from repro.baselines import HMatSolver
        from repro.geometry import cylinder_cloud, laplace_kernel

        pts = cylinder_cloud(200)
        solver = HMatSolver(laplace_kernel(pts), pts, eps=1e-5, leaf_size=32,
                            racecheck=True)
        info = solver.factorize()
        assert info.racecheck is not None
        assert info.racecheck.n_errors == 0


def _chain_graph(costs):
    g = TaskGraph()
    prev = None
    for c in costs:
        t = g.new_task("k", seconds=float(c))
        if prev is not None:
            g.add_dependency(prev, t)
        prev = t
    return g


def _random_dag(seed, n):
    rng = np.random.default_rng(seed)
    g = TaskGraph()
    ts = [g.new_task("k", seconds=float(rng.uniform(0.01, 1.0))) for _ in range(n)]
    for i in range(1, n):
        k = int(rng.integers(0, min(4, i) + 1))
        for d in rng.choice(i, size=k, replace=False):
            g.add_dependency(ts[int(d)], ts[i])
    return g


class TestValidateTrace:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=40),
        nworkers=st.integers(min_value=1, max_value=8),
        scheduler=st.sampled_from(["prio", "ws", "lws", "eager"]),
    )
    def test_property_simulated_schedule_accepted(self, seed, n, nworkers, scheduler):
        g = _random_dag(seed, n)
        r = simulate(g, nworkers, scheduler)
        assert validate_trace(g, r.trace) == []

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=30),
        nworkers=st.integers(min_value=1, max_value=4),
    )
    def test_property_reversed_chain_rejected(self, n, nworkers):
        g = _chain_graph([1.0] * n)
        r = simulate(g, nworkers, "prio")
        span = r.trace.makespan
        shuffled = ExecutionTrace(nworkers=r.trace.nworkers)
        for e in r.trace.events:
            shuffled.add(TraceEvent(e.task_id, e.kind, e.worker,
                                    span - e.end, span - e.start))
        with pytest.raises(RaceCheckError, match="linear extension"):
            validate_trace(g, shuffled)
        bad = validate_trace(g, shuffled, strict=False)
        assert bad and all(v.kind == "trace-order" for v in bad)

    def test_missing_task_rejected(self):
        g = _chain_graph([1.0, 1.0])
        tr = ExecutionTrace(nworkers=1)
        tr.add(TraceEvent(0, "k", 0, 0.0, 1.0))
        with pytest.raises(RaceCheckError, match="expected once"):
            validate_trace(g, tr)

    def test_duplicate_event_rejected(self):
        g = _chain_graph([1.0])
        tr = ExecutionTrace(nworkers=1)
        tr.add(TraceEvent(0, "k", 0, 0.0, 1.0))
        tr.add(TraceEvent(0, "k", 0, 1.0, 2.0))
        assert validate_trace(g, tr, strict=False)

    def test_unknown_task_rejected(self):
        g = _chain_graph([1.0])
        tr = ExecutionTrace(nworkers=1)
        tr.add(TraceEvent(0, "k", 0, 0.0, 1.0))
        tr.add(TraceEvent(7, "k", 0, 1.0, 2.0))
        assert any(
            "not in the graph" in v.message
            for v in validate_trace(g, tr, strict=False)
        )

    def test_threaded_trace_accepted(self):
        from repro.runtime import ThreadedExecutor

        eng = StfEngine(mode="deferred")
        out = []
        h = eng.handle(out)
        for i in range(6):
            eng.insert_task("k", (lambda i=i: out.append(i)), [(h, RW)])
        g = eng.wait_all()
        ex = ThreadedExecutor(3)
        ex.run(g)
        assert validate_trace(g, ex.trace) == []


class TestZeroCostWhenDisabled:
    def test_engine_default_has_no_checker(self):
        eng = StfEngine()
        assert eng.racecheck is None

    def test_factorization_info_no_checker(self):
        from repro.core import TileHConfig, TileHMatrix
        from repro.geometry import cylinder_cloud, laplace_kernel

        pts = cylinder_cloud(200)
        a = TileHMatrix.build(laplace_kernel(pts), pts,
                              TileHConfig(nb=50, eps=1e-5, leaf_size=24))
        assert a.factorize().racecheck is None
