"""Unit tests for execution traces, gantt rendering, and the threaded executor."""

import threading

import numpy as np
import pytest

from repro.runtime import (
    AccessMode,
    ExecutionTrace,
    StfEngine,
    ThreadedExecutor,
    TraceEvent,
    render_gantt,
)

R, W, RW = AccessMode.R, AccessMode.W, AccessMode.RW


class TestExecutionTrace:
    def test_makespan(self):
        tr = ExecutionTrace(nworkers=2)
        tr.add(TraceEvent(0, "gemm", 0, 0.0, 1.0))
        tr.add(TraceEvent(1, "trsm", 1, 0.5, 2.5))
        assert tr.makespan == 2.5

    def test_busy_time(self):
        tr = ExecutionTrace(nworkers=2)
        tr.add(TraceEvent(0, "gemm", 0, 0.0, 1.0))
        tr.add(TraceEvent(1, "gemm", 0, 1.0, 3.0))
        assert tr.busy_time(0) == 3.0
        assert tr.busy_time(1) == 0.0

    def test_utilization(self):
        tr = ExecutionTrace(nworkers=2)
        tr.add(TraceEvent(0, "gemm", 0, 0.0, 2.0))
        tr.add(TraceEvent(1, "gemm", 1, 0.0, 1.0))
        assert tr.utilization() == pytest.approx(0.75)

    def test_empty_utilization(self):
        assert ExecutionTrace(nworkers=3).utilization() == 0.0

    def test_validation(self):
        tr = ExecutionTrace(nworkers=1)
        with pytest.raises(ValueError):
            tr.add(TraceEvent(0, "k", 5, 0.0, 1.0))
        with pytest.raises(ValueError):
            tr.add(TraceEvent(0, "k", 0, 2.0, 1.0))

    def test_timelines_sorted(self):
        tr = ExecutionTrace(nworkers=1)
        tr.add(TraceEvent(1, "k", 0, 2.0, 3.0))
        tr.add(TraceEvent(0, "k", 0, 0.0, 1.0))
        lane = tr.worker_timelines()[0]
        assert [e.task_id for e in lane] == [0, 1]


class TestRenderGantt:
    def test_empty(self):
        assert render_gantt(ExecutionTrace(nworkers=2)) == "(empty trace)"

    def test_kind_letters(self):
        tr = ExecutionTrace(nworkers=2)
        tr.add(TraceEvent(0, "getrf", 0, 0.0, 1.0))
        tr.add(TraceEvent(1, "gemm", 1, 0.5, 1.0))
        art = render_gantt(tr, width=20)
        assert "G" in art and "M" in art and "." in art
        assert art.count("\n") == 1  # two worker rows

    def test_registered_kind_from_shared_registry(self):
        # "compress" and "trsm-solve" used to render "?" because the gantt
        # kept its own kind table; both now come from the shared registry.
        tr = ExecutionTrace(nworkers=2)
        tr.add(TraceEvent(0, "compress", 0, 0.0, 1.0))
        tr.add(TraceEvent(1, "trsm-solve", 1, 0.0, 1.0))
        art = render_gantt(tr, width=10)
        assert "C" in art and "S" in art and "?" not in art

    def test_unknown_kind(self):
        tr = ExecutionTrace(nworkers=1)
        tr.add(TraceEvent(0, "no-such-kernel", 0, 0.0, 1.0))
        assert "?" in render_gantt(tr, width=10)


class TestThreadedExecutor:
    def _graph(self, nchains=4, length=5):
        eng = StfEngine(mode="deferred")
        results = [[] for _ in range(nchains)]
        for c in range(nchains):
            h = eng.handle(results[c], f"chain{c}")
            for i in range(length):
                eng.insert_task(
                    "k", (lambda c=c, i=i: results[c].append(i)), [(h, RW)]
                )
        return eng.wait_all(), results

    def test_runs_all_tasks_in_order(self):
        g, results = self._graph()
        ThreadedExecutor(4).run(g)
        for chain in results:
            assert chain == list(range(5))

    def test_single_worker(self):
        g, results = self._graph(nchains=2, length=3)
        ThreadedExecutor(1).run(g)
        assert all(chain == [0, 1, 2] for chain in results)

    def test_trace_collected(self):
        g, _ = self._graph(nchains=2, length=2)
        ex = ThreadedExecutor(2)
        ex.run(g)
        assert len(ex.trace.events) == 4

    def test_caller_supplied_trace_reused(self):
        g, _ = self._graph(nchains=2, length=2)
        tr = ExecutionTrace(nworkers=2)
        ex = ThreadedExecutor(2, trace=tr)
        ex.run(g)
        assert ex.trace is tr
        assert len(tr.events) == 4

    def test_caller_trace_too_small_rejected(self):
        g, _ = self._graph(nchains=1, length=1)
        ex = ThreadedExecutor(2, trace=ExecutionTrace(nworkers=1))
        with pytest.raises(ValueError, match="covers 1 workers"):
            ex.run(g)

    def test_measured_seconds_written_back(self):
        import time

        eng = StfEngine(mode="deferred")
        h = eng.handle(object())
        eng.insert_task("k", (lambda: time.sleep(0.01)), [(h, RW)])
        g = eng.wait_all()
        assert g.tasks[0].seconds == 0.0  # deferred: no cost yet
        ThreadedExecutor(1).run(g)
        assert g.tasks[0].seconds >= 0.01
        # A deferred graph replayed in the simulator now has real costs.
        from repro.runtime import simulate

        assert simulate(g, 1, "prio").makespan >= 0.01

    def test_pretraced_seconds_kept(self):
        eng = StfEngine(mode="deferred")
        h = eng.handle(object())
        eng.insert_task("k", None, [(h, RW)], seconds=3.5)
        g = eng.wait_all()
        ThreadedExecutor(1).run(g)
        assert g.tasks[0].seconds == 3.5

    def test_empty_graph(self):
        from repro.runtime import TaskGraph

        assert ThreadedExecutor(2).run(TaskGraph()) == 0.0

    def test_exception_propagates(self):
        eng = StfEngine(mode="deferred")
        h = eng.handle(object())

        def boom():
            raise RuntimeError("kernel failed")

        eng.insert_task("k", boom, [(h, RW)])
        eng.insert_task("k", lambda: None, [(h, RW)])
        with pytest.raises(RuntimeError, match="kernel failed"):
            ThreadedExecutor(2).run(eng.wait_all())

    def test_parallel_execution_uses_threads(self):
        # Two independent tasks that each wait on a barrier: completes only
        # if they genuinely overlap on two worker threads.
        eng = StfEngine(mode="deferred")
        barrier = threading.Barrier(2, timeout=10)
        for i in range(2):
            h = eng.handle(object())
            eng.insert_task("k", barrier.wait, [(h, RW)])
        ThreadedExecutor(2).run(eng.wait_all())  # would raise BrokenBarrier if serial

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(0)


class TestChromeTraceExport:
    def test_export_roundtrip(self, tmp_path):
        import json

        from repro.runtime import export_chrome_trace

        tr = ExecutionTrace(nworkers=2)
        tr.add(TraceEvent(0, "gemm", 0, 0.0, 1.5))
        tr.add(TraceEvent(1, "trsm", 1, 0.5, 1.0))
        p = export_chrome_trace(tr, tmp_path / "sub" / "trace.json")
        data = json.loads(p.read_text())
        assert data["metadata"]["nworkers"] == 2
        xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 2
        ev = xs[0]
        assert ev["tid"] == 0
        assert ev["dur"] == pytest.approx(1.5e6)
        # Thread-name metadata events precede the duration events.
        names = [e for e in data["traceEvents"] if e["ph"] == "M" and e["name"] == "thread_name"]
        assert [e["args"]["name"] for e in names] == ["worker 0", "worker 1"]

    def test_export_empty(self, tmp_path):
        import json

        from repro.runtime import export_chrome_trace

        p = export_chrome_trace(ExecutionTrace(nworkers=1), tmp_path / "t.json")
        data = json.loads(p.read_text())
        # Only the per-worker metadata events remain for an empty trace.
        assert all(e["ph"] == "M" for e in data["traceEvents"])
        assert data["metadata"]["makespan"] == 0.0
