"""Unit tests for the bulk-synchronous execution model."""

import numpy as np
import pytest

from repro.runtime import (
    RuntimeOverheadModel,
    TaskGraph,
    depth_stages,
    simulate,
    simulate_bulk_synchronous,
)

ZERO = RuntimeOverheadModel.zero()


def _diamond():
    g = TaskGraph()
    a = g.new_task("a", seconds=1.0)
    b = g.new_task("b", seconds=2.0)
    c = g.new_task("c", seconds=1.0)
    d = g.new_task("d", seconds=1.0)
    g.add_dependency(a, b)
    g.add_dependency(a, c)
    g.add_dependency(b, d)
    g.add_dependency(c, d)
    return g


class TestDepthStages:
    def test_diamond_depths(self):
        g = _diamond()
        assert depth_stages(g) == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_independent_all_stage_zero(self):
        g = TaskGraph()
        for _ in range(4):
            g.new_task("k", seconds=1.0)
        assert set(depth_stages(g).values()) == {0}


class TestSimulateBulkSynchronous:
    def test_empty(self):
        r = simulate_bulk_synchronous(TaskGraph(), 2)
        assert r.makespan == 0.0

    def test_diamond_stage_sums(self):
        g = _diamond()
        r = simulate_bulk_synchronous(g, 4, overheads=ZERO)
        # Stages: {a}=1, {b,c}=max(2,1)=2, {d}=1 -> 4.
        assert r.makespan == pytest.approx(4.0)
        assert r.scheduler == "bulk-sync"

    def test_stf_beats_bulk_sync_on_lu_dag(self):
        """On the structured tiled-LU DAG the barrier model loses clearly.

        (On arbitrary random DAGs either model can win individual instances
        — greedy list scheduling is subject to Graham anomalies — so the
        comparison is asserted on the workload the paper actually runs.)
        """
        from repro.core import TileHConfig, TileHMatrix
        from repro.geometry import cylinder_cloud, laplace_kernel

        pts = cylinder_cloud(800)
        a = TileHMatrix.build(
            laplace_kernel(pts), pts, TileHConfig(nb=64, eps=1e-4, leaf_size=40)
        )
        info = a.factorize()
        for p in (9, 18):
            stf = simulate(info.graph, p, "prio", overheads=ZERO).makespan
            bs = simulate_bulk_synchronous(info.graph, p, overheads=ZERO).makespan
            assert bs > stf

    def test_respects_lower_bounds(self):
        g = _diamond()
        r = simulate_bulk_synchronous(g, 2, overheads=ZERO)
        assert r.makespan >= r.critical_path - 1e-12
        assert r.makespan >= r.total_work / 2 - 1e-12

    def test_barrier_cost_added(self):
        g = _diamond()
        base = simulate_bulk_synchronous(g, 4, overheads=ZERO).makespan
        with_barriers = simulate_bulk_synchronous(
            g, 4, overheads=ZERO, barrier_cost=0.5
        ).makespan
        # Two inter-stage barriers.
        assert with_barriers == pytest.approx(base + 2 * 0.5)

    def test_trace_complete_and_nonoverlapping(self):
        g = _diamond()
        r = simulate_bulk_synchronous(g, 2, overheads=ZERO)
        assert len(r.trace.events) == 4
        for lane in r.trace.worker_timelines():
            for e1, e2 in zip(lane, lane[1:]):
                assert e1.end <= e2.start + 1e-12

    def test_custom_stage_function(self):
        g = _diamond()
        # Put each task in its own stage: fully serial.
        r = simulate_bulk_synchronous(
            g, 8, stage_of=lambda t: t.id, overheads=ZERO
        )
        assert r.makespan == pytest.approx(g.total_work())

    def test_invalid_stage_assignment_rejected(self):
        g = _diamond()
        with pytest.raises(ValueError, match="violates dependency"):
            simulate_bulk_synchronous(g, 2, stage_of=lambda t: 0, overheads=ZERO)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_bulk_synchronous(TaskGraph(), 0)
        with pytest.raises(ValueError):
            simulate_bulk_synchronous(TaskGraph(), 1, barrier_cost=-1.0)
