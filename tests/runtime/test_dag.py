"""Unit tests for the task graph container."""

import pytest

from repro.runtime import TaskGraph


def _chain(costs):
    g = TaskGraph()
    prev = None
    for c in costs:
        t = g.new_task("k", seconds=c)
        if prev is not None:
            g.add_dependency(prev, t)
        prev = t
    return g


def _diamond():
    g = TaskGraph()
    a = g.new_task("a", seconds=1.0)
    b = g.new_task("b", seconds=2.0)
    c = g.new_task("c", seconds=3.0)
    d = g.new_task("d", seconds=1.0)
    g.add_dependency(a, b)
    g.add_dependency(a, c)
    g.add_dependency(b, d)
    g.add_dependency(c, d)
    return g


class TestTaskGraph:
    def test_empty(self):
        g = TaskGraph()
        assert len(g) == 0
        assert g.critical_path() == 0.0
        assert g.total_work() == 0.0
        assert g.roots() == []

    def test_chain_critical_path(self):
        g = _chain([1.0, 2.0, 3.0])
        assert g.critical_path() == 6.0
        assert g.total_work() == 6.0

    def test_diamond_critical_path(self):
        g = _diamond()
        assert g.critical_path() == 5.0  # a -> c -> d
        assert g.total_work() == 7.0

    def test_self_dependency_rejected(self):
        g = TaskGraph()
        t = g.new_task("k")
        with pytest.raises(ValueError):
            g.add_dependency(t, t)

    def test_duplicate_edges_deduplicated(self):
        g = TaskGraph()
        a, b = g.new_task("a"), g.new_task("b")
        g.add_dependency(a, b)
        g.add_dependency(a, b)
        assert g.n_edges() == 1

    def test_topological_order(self):
        g = _diamond()
        order = [t.id for t in g.topological_order()]
        pos = {tid: i for i, tid in enumerate(order)}
        for t in g.tasks:
            for d in t.deps:
                assert pos[d] < pos[t.id]

    def test_cycle_detection(self):
        g = TaskGraph()
        a, b = g.new_task("a"), g.new_task("b")
        g.add_dependency(a, b)
        # Force a cycle by hand (add_dependency would allow it: it only
        # checks self-loops).
        a.deps.add(b.id)
        b.successors.add(a.id)
        with pytest.raises(ValueError):
            g.topological_order()

    def test_validate_asymmetric_edge(self):
        g = TaskGraph()
        a, b = g.new_task("a"), g.new_task("b")
        b.deps.add(a.id)  # forgot the successor side
        with pytest.raises(ValueError, match="asymmetric"):
            g.validate()

    def test_kind_counts(self):
        g = TaskGraph()
        g.new_task("gemm")
        g.new_task("gemm")
        g.new_task("trsm")
        assert g.kind_counts() == {"gemm": 2, "trsm": 1}

    def test_roots(self):
        g = _diamond()
        assert [t.kind for t in g.roots()] == ["a"]

    def test_flops_cost_attr(self):
        g = TaskGraph()
        t1 = g.new_task("a", flops=10.0)
        t2 = g.new_task("b", flops=20.0)
        g.add_dependency(t1, t2)
        assert g.critical_path("flops") == 30.0
        assert g.total_work("flops") == 30.0

    def test_to_networkx(self):
        g = _diamond()
        nx_g = g.to_networkx()
        assert nx_g.number_of_nodes() == 4
        assert nx_g.number_of_edges() == 4

    def test_to_dot(self):
        g = _diamond()
        dot = g.to_dot()
        assert dot.startswith("digraph") and "t0 -> t1" in dot

    def test_to_dot_size_guard(self):
        g = _chain([1.0] * 10)
        with pytest.raises(ValueError):
            g.to_dot(max_tasks=5)

    def test_to_dot_escapes_quotes_and_backslashes(self):
        g = TaskGraph()
        g.new_task("k", label='solve "L\\U" panel')
        dot = g.to_dot()
        assert 'label="solve \\"L\\\\U\\" panel"' in dot
        # Every label attribute's quotes stay balanced line by line.
        for line in dot.splitlines():
            if "label=" in line:
                body = line.split("label=", 1)[1]
                assert body.count('"') - body.count('\\"') == 2
