"""Unit + property tests for the discrete-event multicore simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    SCHEDULER_NAMES,
    RuntimeOverheadModel,
    TaskGraph,
    simulate,
)

ZERO = RuntimeOverheadModel.zero()


def _independent(costs):
    g = TaskGraph()
    for c in costs:
        g.new_task("k", seconds=c)
    return g


def _chain(costs):
    g = TaskGraph()
    prev = None
    for c in costs:
        t = g.new_task("k", seconds=c)
        if prev is not None:
            g.add_dependency(prev, t)
        prev = t
    return g


class TestOverheadModel:
    def test_defaults_positive(self):
        m = RuntimeOverheadModel()
        assert m.per_task > 0 and m.per_dependency > 0

    def test_task_overhead(self):
        m = RuntimeOverheadModel(per_task=1.0, per_dependency=0.5)
        assert m.task_overhead(4) == 3.0

    def test_zero(self):
        assert RuntimeOverheadModel.zero().task_overhead(100) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeOverheadModel(per_task=-1.0)


class TestSimulateBasics:
    def test_empty_graph(self):
        r = simulate(TaskGraph(), 4, "prio")
        assert r.makespan == 0.0

    def test_single_task(self):
        g = _independent([2.0])
        r = simulate(g, 3, "prio", overheads=ZERO)
        assert r.makespan == 2.0

    def test_serial_equals_total_work(self):
        g = _independent([1.0, 2.0, 3.0])
        r = simulate(g, 1, "eager", overheads=ZERO)
        assert r.makespan == pytest.approx(6.0)

    def test_perfect_parallelism(self):
        g = _independent([1.0] * 8)
        r = simulate(g, 8, "eager", overheads=ZERO)
        assert r.makespan == pytest.approx(1.0)
        assert r.efficiency == pytest.approx(1.0)

    def test_chain_is_serial_regardless_of_workers(self):
        g = _chain([1.0, 1.0, 1.0])
        r = simulate(g, 16, "ws", overheads=ZERO)
        assert r.makespan == pytest.approx(3.0)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            simulate(TaskGraph(), 0, "prio")

    def test_overheads_extend_makespan(self):
        g = _chain([1.0, 1.0])
        base = simulate(g, 1, "prio", overheads=ZERO).makespan
        ovh = simulate(
            g, 1, "prio", overheads=RuntimeOverheadModel(per_task=0.5, per_dependency=0.25)
        ).makespan
        # Two tasks (0.5 each) + one dependency (0.25).
        assert ovh == pytest.approx(base + 2 * 0.5 + 0.25)

    def test_submission_throttles_start(self):
        g = _independent([1.0, 1.0])
        m = RuntimeOverheadModel(per_task=0.0, per_dependency=0.0, submission=5.0)
        r = simulate(g, 2, "eager", overheads=m)
        # Task 1 cannot start before t=5.
        assert r.makespan == pytest.approx(6.0)

    def test_flops_cost_model(self):
        g = TaskGraph()
        g.new_task("k", flops=100.0)
        r = simulate(g, 1, "prio", overheads=ZERO, cost_attr="flops", cost_scale=0.01)
        assert r.makespan == pytest.approx(1.0)

    def test_trace_recorded(self):
        g = _independent([1.0, 1.0, 1.0])
        r = simulate(g, 2, "eager", overheads=ZERO)
        assert len(r.trace.events) == 3
        assert r.trace.makespan == r.makespan

    def test_keep_trace_false(self):
        g = _independent([1.0])
        r = simulate(g, 1, "eager", overheads=ZERO, keep_trace=False)
        assert r.trace is None

    def test_result_metrics(self):
        g = _independent([1.0] * 4)
        r = simulate(g, 2, "eager", overheads=ZERO)
        assert r.speedup_vs_serial == pytest.approx(2.0)
        assert r.efficiency == pytest.approx(1.0)
        assert r.total_work == pytest.approx(4.0)
        assert r.critical_path == pytest.approx(1.0)


class TestSchedulerBehaviour:
    def test_prio_runs_critical_task_first(self):
        # One long chain task (high prio) + filler; prio must start the chain
        # immediately; ignoring priority delays it.
        g = TaskGraph()
        chain_head = g.new_task("k", seconds=1.0, priority=100)
        chain_tail = g.new_task("k", seconds=10.0, priority=100)
        g.add_dependency(chain_head, chain_tail)
        for _ in range(4):
            g.new_task("k", seconds=1.0, priority=0)
        r_prio = simulate(g, 1, "prio", overheads=ZERO)
        assert r_prio.makespan == pytest.approx(15.0)
        # With 2 workers, prio finishes at the critical path.
        r2 = simulate(g, 2, "prio", overheads=ZERO)
        assert r2.makespan == pytest.approx(11.0)

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_all_schedulers_complete_all_tasks(self, name):
        g = TaskGraph()
        rng = np.random.default_rng(0)
        tasks = [g.new_task("k", seconds=float(rng.uniform(0.1, 1.0))) for _ in range(30)]
        for i in range(1, 30):
            for d in rng.choice(i, size=min(3, i), replace=False):
                g.add_dependency(tasks[int(d)], tasks[i])
        r = simulate(g, 4, name, overheads=ZERO)
        assert len(r.trace.events) == 30
        assert {e.task_id for e in r.trace.events} == set(range(30))

    def test_ws_locality_push_to_releasing_worker(self):
        # a releases b: with ws, b should run on the same worker as a.
        g = TaskGraph()
        a = g.new_task("k", seconds=1.0)
        b = g.new_task("k", seconds=1.0)
        g.add_dependency(a, b)
        r = simulate(g, 4, "ws", overheads=ZERO)
        by_id = {e.task_id: e for e in r.trace.events}
        assert by_id[0].worker == by_id[1].worker


class TestSimulatorInvariants:
    def _random_graph(self, seed, n=40):
        rng = np.random.default_rng(seed)
        g = TaskGraph()
        tasks = [
            g.new_task("k", seconds=float(rng.uniform(0.01, 1.0)), priority=int(rng.integers(0, 10)))
            for _ in range(n)
        ]
        for i in range(1, n):
            for d in rng.choice(i, size=int(rng.integers(0, min(4, i) + 1)), replace=False):
                g.add_dependency(tasks[int(d)], tasks[i])
        return g

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    @pytest.mark.parametrize("p", [1, 2, 7])
    def test_lower_bounds(self, name, p):
        g = self._random_graph(42)
        r = simulate(g, p, name, overheads=ZERO)
        assert r.makespan >= r.critical_path - 1e-12
        assert r.makespan >= r.total_work / p - 1e-12
        # Greedy list scheduling satisfies Graham's 2-approximation bound.
        assert r.makespan <= r.total_work / p + r.critical_path + 1e-9

    def test_execution_respects_dependencies(self):
        g = self._random_graph(7)
        r = simulate(g, 3, "lws", overheads=ZERO)
        start = {e.task_id: e.start for e in r.trace.events}
        end = {e.task_id: e.end for e in r.trace.events}
        for t in g.tasks:
            for d in t.deps:
                assert end[d] <= start[t.id] + 1e-12

    def test_no_worker_overlap(self):
        g = self._random_graph(9)
        r = simulate(g, 3, "ws", overheads=ZERO)
        for lane in r.trace.worker_timelines():
            for e1, e2 in zip(lane, lane[1:]):
                assert e1.end <= e2.start + 1e-12


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    p=st.integers(min_value=1, max_value=8),
    name=st.sampled_from(SCHEDULER_NAMES),
)
def test_property_simulated_order_is_linear_extension(seed, p, name):
    """Any simulated execution is a valid linear extension of the DAG and
    makespan respects both classical lower bounds."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 25))
    g = TaskGraph()
    tasks = [g.new_task("k", seconds=float(rng.uniform(0.01, 1.0))) for _ in range(n)]
    for i in range(1, n):
        k = int(rng.integers(0, min(3, i) + 1))
        for d in rng.choice(i, size=k, replace=False):
            g.add_dependency(tasks[int(d)], tasks[i])
    r = simulate(g, p, name, overheads=ZERO)
    assert len(r.trace.events) == n
    start = {e.task_id: e.start for e in r.trace.events}
    end = {e.task_id: e.end for e in r.trace.events}
    for t in g.tasks:
        for d in t.deps:
            assert end[d] <= start[t.id] + 1e-12
    assert r.makespan >= g.critical_path() - 1e-12
    assert r.makespan >= g.total_work() / p - 1e-12


class TestHeterogeneousWorkers:
    def test_fast_worker_halves_serial_time(self):
        g = _independent([2.0])
        r = simulate(g, 1, "eager", overheads=ZERO, worker_speeds=[2.0])
        assert r.makespan == pytest.approx(1.0)

    def test_mixed_speeds(self):
        # Two equal tasks, one fast and one slow worker: makespan set by the
        # slow one.
        g = _independent([1.0, 1.0])
        r = simulate(g, 2, "eager", overheads=ZERO, worker_speeds=[1.0, 4.0])
        assert r.makespan == pytest.approx(1.0)
        busy = [r.trace.busy_time(0), r.trace.busy_time(1)]
        assert sorted(busy) == [pytest.approx(0.25), pytest.approx(1.0)]

    def test_homogeneous_default_unchanged(self):
        g = _independent([1.0, 2.0, 3.0])
        a = simulate(g, 2, "prio", overheads=ZERO).makespan
        b = simulate(g, 2, "prio", overheads=ZERO, worker_speeds=[1.0, 1.0]).makespan
        assert a == pytest.approx(b)

    def test_validation(self):
        g = _independent([1.0])
        with pytest.raises(ValueError):
            simulate(g, 2, "eager", worker_speeds=[1.0])
        with pytest.raises(ValueError):
            simulate(g, 1, "eager", worker_speeds=[0.0])
