"""Unit tests for the distributed-memory simulation substrate."""

import numpy as np
import pytest

from repro.runtime import (
    AccessMode,
    DistributedMachine,
    StfEngine,
    TaskGraph,
    block_cyclic_1d,
    block_cyclic_2d,
    greedy_balanced,
    simulate_distributed,
    tile_h_distribution,
)

R, RW = AccessMode.R, AccessMode.RW


class TestMachine:
    def test_comm_seconds(self):
        m = DistributedMachine(nodes=2, latency=1e-6, bandwidth=1e9)
        assert m.comm_seconds(0) == 1e-6
        assert m.comm_seconds(1e9) == pytest.approx(1.0 + 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedMachine(nodes=0)
        with pytest.raises(ValueError):
            DistributedMachine(nodes=1, workers_per_node=0)
        with pytest.raises(ValueError):
            DistributedMachine(nodes=1, bandwidth=0)
        with pytest.raises(ValueError):
            DistributedMachine(nodes=1, latency=-1)


class TestMappings:
    def test_block_cyclic_1d(self):
        m = block_cyclic_1d(4, 2)
        assert m[(0, 3)] == 0 and m[(1, 0)] == 1 and m[(2, 2)] == 0

    def test_block_cyclic_2d(self):
        m = block_cyclic_2d(4, 2, 2)
        assert m[(0, 0)] == 0 and m[(0, 1)] == 1
        assert m[(1, 0)] == 2 and m[(1, 1)] == 3
        assert m[(2, 2)] == 0

    def test_mapping_covers_grid(self):
        m = block_cyclic_2d(5, 2, 3)
        assert len(m) == 25
        assert set(m.values()) <= set(range(6))

    def test_greedy_balanced(self):
        tile_bytes = {(0, 0): 100.0, (0, 1): 1.0, (1, 0): 1.0, (1, 1): 1.0}
        m = greedy_balanced(tile_bytes, 2)
        # The heavy tile is alone on its node.
        heavy_node = m[(0, 0)]
        others = [m[k] for k in tile_bytes if k != (0, 0)]
        assert all(o != heavy_node for o in others)

    def test_greedy_load_spread(self):
        rng = np.random.default_rng(0)
        tile_bytes = {(i, j): float(rng.uniform(1, 10)) for i in range(6) for j in range(6)}
        m = greedy_balanced(tile_bytes, 4)
        loads = [0.0] * 4
        for k, node in m.items():
            loads[node] += tile_bytes[k]
        assert max(loads) / min(loads) < 1.3

    def test_validation(self):
        with pytest.raises(ValueError):
            block_cyclic_1d(0, 2)
        with pytest.raises(ValueError):
            block_cyclic_2d(2, 0, 2)
        with pytest.raises(ValueError):
            greedy_balanced({}, 0)


def _two_node_chain(comm_bytes=1e6):
    """Producer on node 0, consumer on node 1, 1 second of work each."""
    eng = StfEngine()
    a = eng.handle(object(), "A[0,0]")
    b = eng.handle(object(), "A[1,0]")
    t1 = eng.insert_task("w", None, [(a, RW)], seconds=1.0)
    t2 = eng.insert_task("r", None, [(a, R), (b, RW)], seconds=1.0)
    g = eng.wait_all()
    handle_node = {a.id: 0, b.id: 1}
    handle_bytes = {a.id: comm_bytes, b.id: comm_bytes}
    return g, handle_node, handle_bytes


class TestSimulateDistributed:
    def test_empty_graph(self):
        m = DistributedMachine(nodes=2)
        r = simulate_distributed(TaskGraph(), {}, m)
        assert r.makespan == 0.0

    def test_cross_node_edge_pays_comm(self):
        g, hn, hb = _two_node_chain(comm_bytes=1e9)
        m = DistributedMachine(nodes=2, latency=0.5, bandwidth=1e9)
        r = simulate_distributed(g, hn, m, handle_bytes=hb)
        # 1s work + (0.5 latency + 1s transfer) + 1s work.
        assert r.makespan == pytest.approx(3.5)
        assert r.total_comm_bytes == 1e9
        assert r.n_messages == 1

    def test_same_node_edge_free(self):
        g, hn, hb = _two_node_chain()
        hn = {h: 0 for h in hn}
        m = DistributedMachine(nodes=2, latency=0.5)
        r = simulate_distributed(g, hn, m, handle_bytes=hb)
        assert r.makespan == pytest.approx(2.0)
        assert r.n_messages == 0

    def test_missing_bytes_latency_only(self):
        g, hn, _ = _two_node_chain()
        m = DistributedMachine(nodes=2, latency=0.25)
        r = simulate_distributed(g, hn, m)
        assert r.makespan == pytest.approx(2.25)

    def test_parallel_nodes(self):
        eng = StfEngine()
        handles = [eng.handle(object(), f"A[{i},{i}]") for i in range(4)]
        for h in handles:
            eng.insert_task("w", None, [(h, RW)], seconds=1.0)
        g = eng.wait_all()
        hn = {h.id: i % 2 for i, h in enumerate(handles)}
        m = DistributedMachine(nodes=2, workers_per_node=2)
        r = simulate_distributed(g, hn, m)
        assert r.makespan == pytest.approx(1.0)

    def test_worker_limit_per_node(self):
        eng = StfEngine()
        handles = [eng.handle(object(), f"A[{i},0]") for i in range(4)]
        for h in handles:
            eng.insert_task("w", None, [(h, RW)], seconds=1.0)
        g = eng.wait_all()
        hn = {h.id: 0 for h in handles}
        m = DistributedMachine(nodes=1, workers_per_node=2)
        r = simulate_distributed(g, hn, m)
        assert r.makespan == pytest.approx(2.0)

    def test_busy_accounting_and_imbalance(self):
        g, hn, hb = _two_node_chain()
        m = DistributedMachine(nodes=2)
        r = simulate_distributed(g, hn, m, handle_bytes=hb)
        assert r.node_busy == [1.0, 1.0]
        assert r.load_imbalance == pytest.approx(1.0)

    def test_out_of_range_node(self):
        g, hn, _ = _two_node_chain()
        m = DistributedMachine(nodes=1)
        with pytest.raises(ValueError):
            simulate_distributed(g, hn, m)


class TestTileHDistribution:
    def test_end_to_end(self):
        from repro.core import TileHConfig, TileHMatrix
        from repro.geometry import cylinder_cloud, laplace_kernel

        pts = cylinder_cloud(400)
        kern = laplace_kernel(pts)
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-4, leaf_size=40))
        info = a.factorize()
        mapping = block_cyclic_2d(a.nt, 2, 2)
        hn, hb = tile_h_distribution(info.graph, mapping)
        assert len(hn) == a.nt**2
        assert all(b > 0 for b in hb.values())
        m = DistributedMachine(nodes=4, workers_per_node=4, bandwidth=1e9)
        r = simulate_distributed(info.graph, hn, m, handle_bytes=hb)
        assert r.makespan > 0
        assert r.n_messages > 0
        # More nodes with comm is never faster than one fat node of the same
        # total core count... in this homogeneous, comm-charged setting.
        one = DistributedMachine(nodes=1, workers_per_node=16)
        hn0 = {h: 0 for h in hn}
        r_one = simulate_distributed(info.graph, hn0, one, handle_bytes=hb)
        assert r_one.makespan <= r.makespan + 1e-9

    def test_rejects_foreign_handles(self):
        eng = StfEngine()
        h = eng.handle(object(), "weird")
        eng.insert_task("w", None, [(h, RW)], seconds=1.0)
        g = eng.wait_all()
        with pytest.raises(ValueError):
            tile_h_distribution(g, {})
