"""Edge-case and error-path tests for the runtime substrate."""

import numpy as np
import pytest

from repro.runtime import (
    AccessMode,
    RuntimeOverheadModel,
    StfEngine,
    TaskGraph,
    simulate,
)

R, W, RW = AccessMode.R, AccessMode.W, AccessMode.RW
ZERO = RuntimeOverheadModel.zero()


class TestSimulatorDeadlock:
    def test_cycle_raises_runtime_error(self):
        g = TaskGraph()
        a, b = g.new_task("a", seconds=1.0), g.new_task("b", seconds=1.0)
        # Hand-craft a cycle (add_dependency only rejects self-loops).
        a.deps.add(b.id)
        b.successors.add(a.id)
        b.deps.add(a.id)
        a.successors.add(b.id)
        with pytest.raises(RuntimeError, match="deadlock"):
            simulate(g, 2, "eager", overheads=ZERO)


class TestSchedulerObjectReuse:
    def test_scheduler_instance_accepted(self):
        from repro.runtime import PrioScheduler

        g = TaskGraph()
        g.new_task("k", seconds=1.0)
        sched = PrioScheduler()
        r1 = simulate(g, 2, sched, overheads=ZERO)
        r2 = simulate(g, 2, sched, overheads=ZERO)  # setup() resets state
        assert r1.makespan == r2.makespan == pytest.approx(1.0)

    def test_name_and_object_agree(self):
        g = TaskGraph()
        rng = np.random.default_rng(0)
        ts = [g.new_task("k", seconds=float(rng.uniform(0.1, 1))) for _ in range(20)]
        for i in range(1, 20):
            g.add_dependency(ts[i - 1], ts[i]) if i % 3 == 0 else None
        from repro.runtime import make_scheduler

        a = simulate(g, 3, "lws", overheads=ZERO).makespan
        b = simulate(g, 3, make_scheduler("lws"), overheads=ZERO).makespan
        assert a == pytest.approx(b)


class TestStfWriteOnlyMode:
    def test_pure_write_does_not_read(self):
        """W (unlike RW) still orders against previous writers/readers but
        the task is not recorded as a reader afterwards."""
        eng = StfEngine()
        h = eng.handle(object())
        w1 = eng.insert_task("w", None, [(h, W)])
        r1 = eng.insert_task("r", None, [(h, R)])
        w2 = eng.insert_task("w", None, [(h, W)])
        r2 = eng.insert_task("r", None, [(h, R)])
        assert w1.id in r1.deps
        assert r1.id in w2.deps
        assert w2.id in r2.deps
        assert r1.id not in r2.deps

    def test_task_reading_two_handles(self):
        eng = StfEngine()
        a, b = eng.handle(object(), "a"), eng.handle(object(), "b")
        w_a = eng.insert_task("wa", None, [(a, W)])
        w_b = eng.insert_task("wb", None, [(b, W)])
        r = eng.insert_task("r", None, [(a, R), (b, R)])
        assert {w_a.id, w_b.id} <= r.deps

    def test_rw_single_self_dependency_avoided(self):
        eng = StfEngine()
        h = eng.handle(object())
        t = eng.insert_task("k", None, [(h, R), (h, RW)])
        assert t.id not in t.deps


class TestHandleNames:
    def test_named_handle_shows_in_repr(self):
        eng = StfEngine()
        h = eng.handle(object(), "A[3,4]")
        assert "A[3,4]" in repr(h)


class TestTraceEdge:
    def test_utilization_single_event(self):
        from repro.runtime import ExecutionTrace, TraceEvent

        tr = ExecutionTrace(nworkers=4)
        tr.add(TraceEvent(0, "gemm", 2, 0.0, 2.0))
        assert tr.utilization() == pytest.approx(0.25)
        assert tr.busy_time(2) == 2.0


class TestSubmissionWithDependencies:
    def test_submission_and_deps_compose(self):
        g = TaskGraph()
        a = g.new_task("a", seconds=1.0)
        b = g.new_task("b", seconds=1.0)
        g.add_dependency(a, b)
        m = RuntimeOverheadModel(per_task=0.0, per_dependency=0.0, submission=3.0)
        r = simulate(g, 2, "eager", overheads=m)
        # a starts at 0, ends 1; b released by submission at 3, runs 3..4.
        assert r.makespan == pytest.approx(4.0)

    def test_serialized_plus_submission(self):
        g = TaskGraph()
        for _ in range(2):
            g.new_task("k", seconds=0.0)
        m = RuntimeOverheadModel(per_task=1.0, per_dependency=0.0, submission=0.5, serialized=True)
        r = simulate(g, 2, "eager", overheads=m)
        # Runtime core processes releases at 1.0 and 2.0.
        assert r.makespan == pytest.approx(2.0)
