"""Unit tests for the scheduling policies."""

import pytest

from repro.runtime import (
    SCHEDULER_NAMES,
    EagerScheduler,
    LocalityWorkStealingScheduler,
    PrioScheduler,
    WorkStealingScheduler,
    make_scheduler,
)
from repro.runtime.task import Task


def _task(tid, prio=0):
    return Task(id=tid, kind="k", priority=prio)


class TestMakeScheduler:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_registry(self, name):
        assert make_scheduler(name).name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_scheduler("dmda")


class TestEager:
    def test_fifo_order(self):
        s = EagerScheduler()
        s.setup(2)
        s.push(_task(0), None)
        s.push(_task(1), None)
        assert s.pop(0).id == 0
        assert s.pop(1).id == 1
        assert s.pop(0) is None

    def test_pending(self):
        s = EagerScheduler()
        s.setup(1)
        assert s.pending() == 0
        s.push(_task(0), None)
        assert s.pending() == 1


class TestPrio:
    def test_priority_order(self):
        s = PrioScheduler()
        s.setup(2)
        s.push(_task(0, prio=1), None)
        s.push(_task(1, prio=9), None)
        s.push(_task(2, prio=5), None)
        assert [s.pop(0).id for _ in range(3)] == [1, 2, 0]

    def test_fifo_among_equal_priorities(self):
        s = PrioScheduler()
        s.setup(1)
        for i in range(4):
            s.push(_task(i, prio=7), None)
        assert [s.pop(0).id for _ in range(4)] == [0, 1, 2, 3]

    def test_central_queue_shared(self):
        s = PrioScheduler()
        s.setup(4)
        s.push(_task(0), 3)  # worker hint is ignored
        assert s.pop(1).id == 0


class TestWorkStealing:
    def test_local_first(self):
        s = WorkStealingScheduler()
        s.setup(2)
        s.push(_task(0), 0)
        s.push(_task(1), 1)
        assert s.pop(1).id == 1  # own queue before stealing

    def test_steals_from_most_loaded(self):
        s = WorkStealingScheduler()
        s.setup(3)
        for i in range(3):
            s.push(_task(i), 0)
        s.push(_task(3), 1)
        # Worker 2 is empty; worker 0 has 3 tasks -> steal from 0.
        stolen = s.pop(2)
        assert stolen.id in (0, 1, 2)

    def test_steal_takes_opposite_end(self):
        s = WorkStealingScheduler()
        s.setup(2)
        for i in range(3):
            s.push(_task(i), 0)
        # Victim would pop 0 next; the thief takes the tail (2).
        assert s.pop(1).id == 2
        assert s.pop(0).id == 0

    def test_source_tasks_round_robin(self):
        s = WorkStealingScheduler()
        s.setup(2)
        s.push(_task(0), None)
        s.push(_task(1), None)
        # Each worker received one source task.
        assert s.pop(0) is not None
        assert s.pop(1) is not None

    def test_empty_pop(self):
        s = WorkStealingScheduler()
        s.setup(2)
        assert s.pop(0) is None

    def test_setup_validation(self):
        with pytest.raises(ValueError):
            WorkStealingScheduler().setup(0)


class TestLocalityWorkStealing:
    def test_local_priority_order(self):
        s = LocalityWorkStealingScheduler()
        s.setup(2)
        s.push(_task(0, prio=1), 0)
        s.push(_task(1, prio=9), 0)
        assert s.pop(0).id == 1

    def test_neighbour_steal_order(self):
        s = LocalityWorkStealingScheduler()
        s.setup(4)
        s.push(_task(0), 2)  # distance 1 from worker 1
        s.push(_task(1), 3)  # distance 2 from worker 1
        assert s.pop(1).id == 0  # nearest neighbour first

    def test_steal_respects_priority(self):
        s = LocalityWorkStealingScheduler()
        s.setup(2)
        s.push(_task(0, prio=1), 1)
        s.push(_task(1, prio=9), 1)
        assert s.pop(0).id == 1

    def test_pending(self):
        s = LocalityWorkStealingScheduler()
        s.setup(3)
        s.push(_task(0), 0)
        s.push(_task(1), 2)
        assert s.pending() == 2

    def test_setup_validation(self):
        with pytest.raises(ValueError):
            LocalityWorkStealingScheduler().setup(0)


class TestDequeModel:
    def test_longest_task_first(self):
        from repro.runtime import DequeModelScheduler

        s = DequeModelScheduler()
        s.setup(2)
        s.push(Task(id=0, kind="k", seconds=1.0), None)
        s.push(Task(id=1, kind="k", seconds=5.0), None)
        s.push(Task(id=2, kind="k", seconds=3.0), None)
        assert [s.pop(0).id for _ in range(3)] == [1, 2, 0]

    def test_priority_breaks_cost_ties(self):
        from repro.runtime import DequeModelScheduler

        s = DequeModelScheduler()
        s.setup(1)
        s.push(Task(id=0, kind="k", seconds=1.0, priority=1), None)
        s.push(Task(id=1, kind="k", seconds=1.0, priority=9), None)
        assert s.pop(0).id == 1

    def test_lpt_improves_on_fifo(self):
        """Classic LPT example: one long + many short tasks on 2 workers."""
        from repro.runtime import RuntimeOverheadModel, TaskGraph, simulate

        g = TaskGraph()
        for c in (1.0, 1.0, 1.0, 1.0, 4.0):
            g.new_task("k", seconds=c)
        zero = RuntimeOverheadModel.zero()
        t_dm = simulate(g, 2, "dm", overheads=zero).makespan
        t_fifo = simulate(g, 2, "eager", overheads=zero).makespan
        assert t_dm == pytest.approx(4.0)
        assert t_dm <= t_fifo

    def test_empty_pop(self):
        from repro.runtime import DequeModelScheduler

        s = DequeModelScheduler()
        s.setup(1)
        assert s.pop(0) is None
