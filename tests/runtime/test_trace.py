"""Edge-case tests for ExecutionTrace accounting, the shared kind registry,
and the Chrome-trace counter/metadata extensions."""

import json

import pytest

from repro.runtime import (
    KIND_STYLES,
    ExecutionTrace,
    TraceEvent,
    export_chrome_trace,
    kind_color,
    kind_letter,
    register_kind,
    render_gantt,
)


class TestTraceEdgeCases:
    def test_empty_trace(self):
        tr = ExecutionTrace(nworkers=3)
        assert tr.makespan == 0.0
        assert tr.utilization() == 0.0
        assert tr.busy_time(0) == 0.0
        assert tr.worker_timelines() == [[], [], []]

    def test_zero_duration_events(self):
        tr = ExecutionTrace(nworkers=1)
        tr.add(TraceEvent(0, "k", 0, 1.0, 1.0))
        assert tr.events[0].duration == 0.0
        assert tr.makespan == 1.0
        assert tr.busy_time(0) == 0.0
        assert tr.utilization() == 0.0

    def test_multi_lane_utilization(self):
        tr = ExecutionTrace(nworkers=3)
        tr.add(TraceEvent(0, "k", 0, 0.0, 2.0))
        tr.add(TraceEvent(1, "k", 1, 0.0, 1.0))
        # worker 2 fully idle: busy 3 over 3 lanes x makespan 2.
        assert tr.utilization() == pytest.approx(0.5)
        assert tr.busy_time(2) == 0.0

    def test_gantt_zero_duration_event_still_marks_a_cell(self):
        tr = ExecutionTrace(nworkers=1)
        tr.add(TraceEvent(0, "gemm", 0, 0.0, 2.0))
        tr.add(TraceEvent(1, "getrf", 0, 1.0, 1.0))
        art = render_gantt(tr, width=10)
        assert "G" in art  # c1 = max(c0 + 1, ...) guarantees one cell


class TestKindRegistry:
    def test_known_kinds(self):
        assert kind_letter("getrf") == "G"
        assert kind_color("getrf") == "firebrick"
        assert kind_letter("trsm-solve") == "S"  # the kind the gantt used to drop

    def test_unknown_kind_fallback(self):
        assert kind_letter("frobnicate") == "?"
        assert kind_color("frobnicate") == "gray"

    def test_every_style_is_complete(self):
        for kind, style in KIND_STYLES.items():
            assert len(style.letter) == 1, kind
            assert style.color, kind

    def test_register_kind(self):
        register_kind("mytask", "X", "black")
        try:
            assert kind_letter("mytask") == "X"
            assert kind_color("mytask") == "black"
        finally:
            del KIND_STYLES["mytask"]

    def test_register_kind_rejects_long_letter(self):
        with pytest.raises(ValueError, match="one character"):
            register_kind("bad", "XY", "black")

    def test_dot_export_uses_registry(self):
        from repro.runtime import TaskGraph

        g = TaskGraph()
        g.new_task("getrf")
        g.new_task("never-registered")
        dot = g.to_dot()
        assert "color=firebrick" in dot
        assert "color=gray" in dot


class TestChromeTraceCounters:
    def _trace(self):
        tr = ExecutionTrace(nworkers=2)
        tr.add(TraceEvent(0, "gemm", 0, 0.0, 1.0))
        tr.add(TraceEvent(1, "trsm", 1, 0.5, 2.0))
        return tr

    def test_counter_tracks(self, tmp_path):
        p = export_chrome_trace(
            self._trace(),
            tmp_path / "t.json",
            counters={"queue_depth": [(0.0, 3), (1.0, 1)], "h_bytes": [(0.5, 1024.0)]},
        )
        data = json.loads(p.read_text())
        cs = [e for e in data["traceEvents"] if e["ph"] == "C"]
        assert len(cs) == 3
        qd = [e for e in cs if e["name"] == "queue_depth"]
        assert [e["args"]["queue_depth"] for e in qd] == [3, 1]
        assert qd[0]["ts"] == 0.0 and qd[1]["ts"] == pytest.approx(1e6)

    def test_metadata_block(self, tmp_path):
        p = export_chrome_trace(
            self._trace(), tmp_path / "t.json", metadata={"scheduler": "ws"}
        )
        data = json.loads(p.read_text())
        meta = data["metadata"]
        assert meta["nworkers"] == 2
        assert meta["makespan"] == pytest.approx(2.0)
        assert meta["utilization"] == pytest.approx(2.5 / 4.0)
        assert meta["scheduler"] == "ws"

    def test_thread_sort_indices(self, tmp_path):
        p = export_chrome_trace(self._trace(), tmp_path / "t.json")
        data = json.loads(p.read_text())
        sorts = [e for e in data["traceEvents"] if e["name"] == "thread_sort_index"]
        assert [e["args"]["sort_index"] for e in sorts] == [0, 1]
