"""Unit + property tests for sequential-task-flow dependency inference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import AccessMode, StfEngine

R, W, RW = AccessMode.R, AccessMode.W, AccessMode.RW


class TestHandleRegistry:
    def test_same_payload_same_handle(self):
        eng = StfEngine()
        obj = object()
        assert eng.handle(obj) is eng.handle(obj)

    def test_distinct_payloads(self):
        eng = StfEngine()
        assert eng.handle(object()) is not eng.handle(object())
        assert eng.n_handles == 2


class TestDependencyInference:
    def test_read_after_write(self):
        eng = StfEngine()
        h = eng.handle(object())
        t1 = eng.insert_task("w", None, [(h, W)])
        t2 = eng.insert_task("r", None, [(h, R)])
        assert t1.id in t2.deps

    def test_write_after_read(self):
        eng = StfEngine()
        h = eng.handle(object())
        t1 = eng.insert_task("w", None, [(h, W)])
        r1 = eng.insert_task("r", None, [(h, R)])
        r2 = eng.insert_task("r", None, [(h, R)])
        t2 = eng.insert_task("w", None, [(h, RW)])
        assert r1.id in t2.deps and r2.id in t2.deps

    def test_concurrent_reads_independent(self):
        eng = StfEngine()
        h = eng.handle(object())
        eng.insert_task("w", None, [(h, W)])
        r1 = eng.insert_task("r", None, [(h, R)])
        r2 = eng.insert_task("r", None, [(h, R)])
        assert r1.id not in r2.deps and r2.id not in r1.deps

    def test_write_after_write(self):
        eng = StfEngine()
        h = eng.handle(object())
        t1 = eng.insert_task("w", None, [(h, W)])
        t2 = eng.insert_task("w", None, [(h, W)])
        assert t1.id in t2.deps

    def test_disjoint_handles_no_deps(self):
        eng = StfEngine()
        a, b = eng.handle(object()), eng.handle(object())
        t1 = eng.insert_task("w", None, [(a, RW)])
        t2 = eng.insert_task("w", None, [(b, RW)])
        assert not t2.deps and t1.id not in t2.deps

    def test_tiled_lu_dag_shape(self):
        """The 3x3 tiled LU must produce exactly the paper's Figure 1 DAG."""
        eng = StfEngine()
        tiles = {(i, j): eng.handle(object(), f"A{i}{j}") for i in range(3) for j in range(3)}
        nt = 3
        for k in range(nt):
            eng.insert_task("getrf", None, [(tiles[k, k], RW)])
            for j in range(k + 1, nt):
                eng.insert_task("trsm", None, [(tiles[k, k], R), (tiles[k, j], RW)])
            for i in range(k + 1, nt):
                eng.insert_task("trsm", None, [(tiles[k, k], R), (tiles[i, k], RW)])
            for i in range(k + 1, nt):
                for j in range(k + 1, nt):
                    eng.insert_task(
                        "gemm",
                        None,
                        [(tiles[i, k], R), (tiles[k, j], R), (tiles[i, j], RW)],
                    )
        g = eng.wait_all()
        counts = g.kind_counts()
        assert counts["getrf"] == 3 and counts["trsm"] == 6 and counts["gemm"] == 5
        assert len(g) == 14

    def test_eager_executes_immediately(self):
        eng = StfEngine()
        h = eng.handle(object())
        hits = []
        eng.insert_task("k", lambda: hits.append(1), [(h, RW)])
        assert hits == [1]

    def test_eager_measures_cost(self):
        eng = StfEngine()
        h = eng.handle(object())
        t = eng.insert_task("k", lambda: sum(range(10000)), [(h, RW)])
        assert t.seconds > 0

    def test_explicit_seconds_override(self):
        eng = StfEngine()
        h = eng.handle(object())
        t = eng.insert_task("k", lambda: None, [(h, RW)], seconds=4.5, flops=7.0)
        assert t.seconds == 4.5 and t.flops == 7.0

    def test_deferred_stores_func(self):
        eng = StfEngine(mode="deferred")
        h = eng.handle(object())
        hits = []
        t = eng.insert_task("k", lambda: hits.append(1), [(h, RW)])
        assert hits == [] and t.func is not None

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            StfEngine(mode="turbo")

    def test_wait_all_validates(self):
        eng = StfEngine()
        h = eng.handle(object())
        eng.insert_task("a", None, [(h, W)])
        eng.insert_task("b", None, [(h, RW)])
        g = eng.wait_all()
        assert len(g) == 2


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=4), st.sampled_from(["R", "W", "RW"])),
        min_size=1,
        max_size=40,
    )
)
def test_property_stf_sequential_consistency(ops):
    """Replaying the DAG in ANY topological order gives the same final data
    state as sequential execution — the core STF soundness property.

    Model: each handle holds a list; W/RW appends the task id.  We compare the
    sequential result against a replay using reversed-ready-order scheduling.
    """
    # Sequential reference.
    seq_state: dict[int, list[int]] = {k: [] for k in range(5)}
    for tid, (hid, mode) in enumerate(ops):
        if mode in ("W", "RW"):
            seq_state[hid].append(tid)

    eng = StfEngine(mode="deferred")
    payloads = {k: [] for k in range(5)}
    handles = {k: eng.handle(payloads[k], f"h{k}") for k in range(5)}
    for tid, (hid, mode) in enumerate(ops):
        m = AccessMode[mode]
        if m.writes:
            eng.insert_task("w", (lambda h=hid, t=tid: payloads[h].append(t)), [(handles[hid], m)])
        else:
            eng.insert_task("r", None, [(handles[hid], m)])
    g = eng.wait_all()

    # Replay greedily with a LIFO ready stack (a valid topological order that
    # differs maximally from submission order).
    indeg = {t.id: len(t.deps) for t in g.tasks}
    stack = [t for t in g.tasks if indeg[t.id] == 0]
    done = 0
    while stack:
        t = stack.pop()
        if t.func is not None:
            t.func()
        done += 1
        for s in sorted(t.successors):
            indeg[s] -= 1
            if indeg[s] == 0:
                stack.append(g.tasks[s])
    assert done == len(g)
    for k in range(5):
        assert payloads[k] == seq_state[k], f"handle {k} diverged"
