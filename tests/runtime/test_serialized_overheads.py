"""Unit tests for the serialized runtime-core overhead mode."""

import pytest

from repro.runtime import RuntimeOverheadModel, TaskGraph, simulate


def _independent(costs):
    g = TaskGraph()
    for c in costs:
        g.new_task("k", seconds=c)
    return g


class TestSerializedOverheads:
    def test_flag_default_off(self):
        assert RuntimeOverheadModel().serialized is False

    def test_runtime_core_serializes_releases(self):
        # 10 zero-cost independent tasks on 10 workers: with a serialized
        # 1-second per-task overhead the runtime core is the bottleneck and
        # the makespan is ~10 s, however many workers exist.
        g = _independent([0.0] * 10)
        ovh = RuntimeOverheadModel(per_task=1.0, per_dependency=0.0, serialized=True)
        r = simulate(g, 10, "eager", overheads=ovh)
        assert r.makespan == pytest.approx(10.0)

    def test_non_serialized_overheads_parallelise(self):
        # Same setup without serialization: each worker pays its own 1 s.
        g = _independent([0.0] * 10)
        ovh = RuntimeOverheadModel(per_task=1.0, per_dependency=0.0, serialized=False)
        r = simulate(g, 10, "eager", overheads=ovh)
        assert r.makespan == pytest.approx(1.0)

    def test_per_dependency_serialized(self):
        # A task with many dependencies pays them all on the runtime core.
        g = TaskGraph()
        srcs = [g.new_task("k", seconds=1.0) for _ in range(4)]
        sink = g.new_task("k", seconds=0.0)
        for s in srcs:
            g.add_dependency(s, sink)
        ovh = RuntimeOverheadModel(per_task=0.0, per_dependency=0.5, serialized=True)
        r = simulate(g, 4, "eager", overheads=ovh)
        # Sources run in parallel (1 s), sink release costs 4 * 0.5 = 2 s.
        assert r.makespan == pytest.approx(3.0)

    def test_fine_grain_dag_penalised_more(self):
        # Two graphs with the same total work: 100 small vs 10 big tasks.
        fine = _independent([0.01] * 100)
        coarse = _independent([0.1] * 10)
        ovh = RuntimeOverheadModel(per_task=0.05, per_dependency=0.0, serialized=True)
        t_fine = simulate(fine, 10, "eager", overheads=ovh).makespan
        t_coarse = simulate(coarse, 10, "eager", overheads=ovh).makespan
        assert t_fine > 3 * t_coarse

    def test_serialized_zero_overhead_matches_plain(self):
        g = _independent([1.0, 2.0, 3.0])
        a = simulate(
            g, 2, "prio", overheads=RuntimeOverheadModel(0.0, 0.0, serialized=True)
        ).makespan
        b = simulate(g, 2, "prio", overheads=RuntimeOverheadModel.zero()).makespan
        assert a == pytest.approx(b)

    def test_makespan_still_bounded_below_by_critical_path(self):
        g = TaskGraph()
        a = g.new_task("k", seconds=1.0)
        b = g.new_task("k", seconds=1.0)
        g.add_dependency(a, b)
        ovh = RuntimeOverheadModel(per_task=0.1, per_dependency=0.1, serialized=True)
        r = simulate(g, 4, "prio", overheads=ovh)
        assert r.makespan >= 2.0
