"""Property-based tests for TaskGraph invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import TaskGraph


def _random_dag(seed, n):
    rng = np.random.default_rng(seed)
    g = TaskGraph()
    ts = [
        g.new_task("k", seconds=float(rng.uniform(0.01, 1.0)))
        for _ in range(n)
    ]
    for i in range(1, n):
        k = int(rng.integers(0, min(4, i) + 1))
        for d in rng.choice(i, size=k, replace=False):
            g.add_dependency(ts[int(d)], ts[i])
    return g


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=1, max_value=60),
)
def test_property_topological_order_is_valid(seed, n):
    g = _random_dag(seed, n)
    order = g.topological_order()
    assert len(order) == n
    pos = {t.id: i for i, t in enumerate(order)}
    for t in g.tasks:
        for d in t.deps:
            assert pos[d] < pos[t.id]


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=1, max_value=60),
)
def test_property_critical_path_bounds(seed, n):
    """critical path <= total work; both positive; critical path >= max task."""
    g = _random_dag(seed, n)
    crit = g.critical_path()
    total = g.total_work()
    assert 0 < crit <= total + 1e-12
    assert crit >= max(t.seconds for t in g.tasks) - 1e-12


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=2, max_value=60),
)
def test_property_validate_passes_on_engine_built_graphs(seed, n):
    g = _random_dag(seed, n)
    g.validate()  # must not raise
    assert g.n_edges() == sum(len(t.successors) for t in g.tasks)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_bulk_sync_stages_respect_deps(seed):
    from repro.runtime import depth_stages

    g = _random_dag(seed, 40)
    stage = depth_stages(g)
    for t in g.tasks:
        for d in t.deps:
            assert stage[d] < stage[t.id]
