"""Accumulator-based rounded arithmetic (``RkMatrix.add_many`` and
:class:`~repro.hmatrix.UpdateAccumulator`).

The accumulator's contract has two halves: the single stacked rounding must
meet the same relative-Frobenius bound as a chain of eager pairwise rounded
additions (accuracy), and threading it through H-GEMM/H-LU must reproduce
the eager results within the eps accuracy class while flushing every
pending update by the time the factorisation returns (soundness).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import cylinder_cloud, make_kernel
from repro.hmatrix import (
    AssemblyConfig,
    HMatrix,
    RkMatrix,
    StrongAdmissibility,
    UpdateAccumulator,
    assemble_hmatrix,
    build_block_cluster_tree,
    build_cluster_tree,
    hgetrf,
    hlu_solve,
)

EPS = 1e-6


def _random_rk(rng, m, n, k, complex_=False):
    u = rng.standard_normal((m, k))
    v = rng.standard_normal((n, k))
    if complex_:
        u = u + 1j * rng.standard_normal((m, k))
        v = v + 1j * rng.standard_normal((n, k))
    return RkMatrix(u, v)


# ---------------------------------------------------------------------------
# RkMatrix.add_many
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    m=st.integers(4, 40),
    n=st.integers(4, 40),
    nterms=st.integers(1, 6),
    eps=st.sampled_from([1e-2, 1e-4, 1e-8]),
    complex_=st.booleans(),
)
def test_add_many_frobenius_bound(seed, m, n, nterms, eps, complex_):
    """One stacked rounding meets the relative eps bound against the dense sum."""
    rng = np.random.default_rng(seed)
    terms = [
        _random_rk(rng, m, n, int(rng.integers(0, min(m, n) + 1)), complex_)
        for _ in range(nterms)
    ]
    out = RkMatrix.add_many(terms, eps)
    dense_sum = sum(t.to_dense() for t in terms)
    scale = np.linalg.norm(dense_sum)
    err = np.linalg.norm(out.to_dense() - dense_sum)
    # truncate_svd drops tail singular values below eps * sigma_max; the
    # Frobenius error of that tail is <= eps * sqrt(rank) * ||sum||.
    bound = eps * np.sqrt(max(out.shape)) * scale + 1e-12
    assert err <= bound, f"err={err:.3e} bound={bound:.3e}"
    assert out.rank <= min(m, n)


def test_add_many_matches_pairwise_chain():
    rng = np.random.default_rng(7)
    terms = [_random_rk(rng, 30, 25, 4) for _ in range(5)]
    stacked = RkMatrix.add_many(terms, EPS)
    chained = terms[0]
    for t in terms[1:]:
        chained = chained.add(t, EPS)
    ref = sum(t.to_dense() for t in terms)
    scale = np.linalg.norm(ref)
    assert np.linalg.norm(stacked.to_dense() - ref) <= 10 * EPS * scale
    assert np.linalg.norm(chained.to_dense() - ref) <= 10 * EPS * scale
    # The stacked rounding must not be lazier about rank than the chain.
    assert stacked.rank <= chained.rank + 1


def test_add_many_single_term_is_exact_copy():
    """One live operand short-circuits untruncated (mirrors RkMatrix.add)."""
    rng = np.random.default_rng(3)
    t = _random_rk(rng, 12, 9, 5)
    out = RkMatrix.add_many([RkMatrix.zeros(12, 9, dtype=np.float64), t], 1e-1)
    assert out.rank == 5
    np.testing.assert_allclose(out.to_dense(), t.to_dense(), atol=1e-14)


def test_add_many_rejects_bad_input():
    with pytest.raises(ValueError):
        RkMatrix.add_many([], EPS)
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        RkMatrix.add_many([_random_rk(rng, 4, 4, 1), _random_rk(rng, 5, 4, 1)], EPS)


# ---------------------------------------------------------------------------
# UpdateAccumulator
# ---------------------------------------------------------------------------

def _rk_leaf(m=32, n=24, k=3, seed=0):
    pts_r = np.zeros((m, 3))
    pts_r[:, 0] = np.arange(m)
    pts_c = np.zeros((n, 3))
    pts_c[:, 0] = np.arange(n)
    rows = build_cluster_tree(pts_r, leaf_size=m)
    cols = build_cluster_tree(pts_c, leaf_size=n)
    rng = np.random.default_rng(seed)
    return HMatrix(rows, cols, rk=_random_rk(rng, m, n, k))


def test_deferred_flush_matches_eager():
    rng = np.random.default_rng(11)
    updates = [_random_rk(rng, 32, 24, 3) for _ in range(6)]

    eager = _rk_leaf(seed=1)
    for upd in updates:
        eager.axpy_rk(upd, EPS)

    deferred = _rk_leaf(seed=1)
    with UpdateAccumulator(EPS) as acc:
        for upd in updates:
            deferred.axpy_rk(upd, EPS, acc)
        assert acc.pending_blocks == 1
        assert acc.n_deferred == len(updates)
    assert acc.pending_blocks == 0  # context exit flushed

    ref = eager.to_dense()
    scale = np.linalg.norm(ref)
    assert np.linalg.norm(deferred.to_dense() - ref) <= 10 * EPS * scale


def test_dense_contributions_summed_exactly_before_compression():
    leaf = _rk_leaf(seed=2)
    rng = np.random.default_rng(5)
    blocks = [rng.standard_normal(leaf.shape) for _ in range(3)]
    base = leaf.to_dense()
    with UpdateAccumulator(EPS) as acc:
        for blk in blocks:
            leaf.axpy_dense(blk, EPS, acc)
        # All three dense updates share one buffer entry (plain +=).
        assert acc.pending_blocks == 1
    ref = base + sum(blocks)
    scale = np.linalg.norm(ref)
    assert np.linalg.norm(leaf.to_dense() - ref) <= 10 * EPS * scale


def test_memory_cap_triggers_early_flush():
    leaf = _rk_leaf(seed=3)
    rng = np.random.default_rng(6)
    # Each rank-3 update buffers (32 + 24) * 3 = 168 scalars; cap at 300
    # forces an early flush on the second deferral.
    acc = UpdateAccumulator(EPS, max_pending_scalars=300)
    updates = [_random_rk(rng, 32, 24, 3) for _ in range(4)]
    before = leaf.to_dense() + sum(u.to_dense() for u in updates)
    for u in updates:
        leaf.axpy_rk(u, EPS, acc)
        assert acc.pending_scalars <= 300
    acc.flush()
    assert acc.n_early_flushes >= 1
    scale = np.linalg.norm(before)
    assert np.linalg.norm(leaf.to_dense() - before) <= 10 * EPS * scale


def test_accumulator_rejects_bad_parameters():
    with pytest.raises(ValueError):
        UpdateAccumulator(-1e-4)
    with pytest.raises(ValueError):
        UpdateAccumulator(1e-4, max_pending_scalars=0)


# ---------------------------------------------------------------------------
# End-to-end: accumulated H-LU vs eager H-LU
# ---------------------------------------------------------------------------

def _assembled(n=256, eps=1e-6, seed_independent=True):
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)
    tree = build_cluster_tree(pts, leaf_size=32)
    block = build_block_cluster_tree(tree, tree, StrongAdmissibility(eta=2.0))
    h = assemble_hmatrix(kern, pts, block, AssemblyConfig(eps=eps, method="aca"))
    return h, tree


def test_hgetrf_accumulated_matches_eager():
    eps = 1e-6
    h_eager, tree = _assembled(eps=eps)
    h_acc = h_eager.copy()

    hgetrf(h_eager, eps)
    with UpdateAccumulator(eps) as acc:
        hgetrf(h_acc, eps, acc)
    # hgetrf leaves the factor clean: the closing flush must be a no-op.
    assert acc.pending_blocks == 0
    assert acc.n_deferred > 0  # the accumulator actually engaged

    rng = np.random.default_rng(0)
    b = rng.standard_normal(h_eager.shape[0])
    x_eager = hlu_solve(h_eager, b)
    x_acc = hlu_solve(h_acc, b)
    denom = np.linalg.norm(x_eager)
    assert np.linalg.norm(x_acc - x_eager) <= 1e-3 * denom


def test_hgetrf_packs_small_diagonal_factors():
    """Factorised diagonal nodes carry the dense packed cache and any
    later mutation of the node invalidates it."""
    eps = 1e-6
    h, _ = _assembled(n=128, eps=eps)
    assert h.packed_lu is None
    hgetrf(h, eps)
    assert h.packed_lu is not None
    packed = h.packed_lu
    np.testing.assert_allclose(packed, h.to_dense(), atol=1e-12)
    # Mutation clears the cache.
    h.axpy_dense(np.zeros(h.shape), eps)
    assert h.packed_lu is None
