"""Property-based tests of the H-arithmetic against the dense reference.

Each property draws random geometry and structure parameters (leaf size,
admissibility, accuracy) with hypothesis and verifies the error contract of
the corresponding kernel: H-operations must stay within a modest multiple of
the requested accuracy of the exact dense computation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import assemble_dense, laplace_kernel
from repro.hmatrix import (
    AssemblyConfig,
    StrongAdmissibility,
    assemble_hmatrix,
    build_block_cluster_tree,
    build_cluster_tree,
    hgemm,
    hgetrf,
    hlu_solve,
)


def _random_points(rng, n):
    """Jittered-grid cloud: random but with a guaranteed minimum separation.

    Fully uniform clouds can place two points within the kernel's clamping
    distance, which makes their matrix rows *identical* — a genuinely
    singular system that no unpivoted LU can factor (the paper's structured
    meshes cannot produce this).
    """
    side = int(np.ceil(n ** (1 / 3)))
    grid = np.stack(
        np.meshgrid(*[np.arange(side)] * 3, indexing="ij"), axis=-1
    ).reshape(-1, 3).astype(np.float64)
    pick = rng.permutation(len(grid))[:n]
    pts = grid[pick] + rng.uniform(-0.3, 0.3, size=(n, 3))  # separation >= 0.4
    return pts


def _random_problem(seed, n, leaf_size, eta, eps):
    rng = np.random.default_rng(seed)
    pts = _random_points(rng, n)
    kern = laplace_kernel(pts)
    ct = build_cluster_tree(pts, leaf_size=leaf_size)
    bt = build_block_cluster_tree(ct, ct, StrongAdmissibility(eta=eta))
    h = assemble_hmatrix(kern, pts, bt, AssemblyConfig(eps=eps))
    dense = assemble_dense(kern, pts)[np.ix_(ct.perm, ct.perm)]
    return h, dense


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=40, max_value=220),
    leaf_size=st.integers(min_value=8, max_value=48),
    eta=st.sampled_from([1.0, 2.0, 4.0]),
)
def test_property_assembly_error_bounded(seed, n, leaf_size, eta):
    """||A_H - A||_F <= C * eps * ||A||_F for random clouds/structures."""
    eps = 1e-6
    h, dense = _random_problem(seed, n, leaf_size, eta, eps)
    err = np.linalg.norm(h.to_dense() - dense) / np.linalg.norm(dense)
    assert err <= 100 * eps


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=40, max_value=160),
    leaf_size=st.integers(min_value=8, max_value=32),
)
def test_property_matvec_consistency(seed, n, leaf_size):
    """H matvec equals dense matvec to assembly accuracy."""
    eps = 1e-7
    h, dense = _random_problem(seed, n, leaf_size, 2.0, eps)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(n)
    ref = dense @ x
    err = np.linalg.norm(h.matvec(x) - ref) / max(np.linalg.norm(ref), 1e-300)
    assert err <= 1e-4


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=40, max_value=140),
    leaf_size=st.integers(min_value=8, max_value=32),
)
def test_property_hgemm_error_bounded(seed, n, leaf_size):
    """C <- C - A@A stays within accuracy of the dense Schur update."""
    eps = 1e-8
    h, dense = _random_problem(seed, n, leaf_size, 2.0, eps)
    c = h.copy()
    hgemm(c, h, h, eps=eps, alpha=-1.0)
    ref = dense - dense @ dense
    err = np.linalg.norm(c.to_dense() - ref) / max(np.linalg.norm(ref), 1e-300)
    assert err <= 1e-4


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=50, max_value=140),
    leaf_size=st.integers(min_value=10, max_value=32),
)
def test_property_hlu_solve_error_bounded(seed, n, leaf_size):
    """H-LU + solve recovers a manufactured solution to ~eps accuracy."""
    eps = 1e-8
    h, dense = _random_problem(seed, n, leaf_size, 2.0, eps)
    rng = np.random.default_rng(seed + 2)
    x0 = rng.standard_normal(n)
    hgetrf(h, eps=eps)
    x = hlu_solve(h, dense @ x0)
    assert np.linalg.norm(x - x0) <= 1e-3 * np.linalg.norm(x0)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=40, max_value=160),
    leaf_size=st.integers(min_value=8, max_value=32),
)
def test_property_storage_counts_consistent(seed, n, leaf_size):
    """Leaf storage identities: rank map covers the matrix exactly and the
    accounted storage matches a direct leaf walk."""
    h, _ = _random_problem(seed, n, leaf_size, 2.0, 1e-4)
    area = sum(m_ * n_ for _, _, m_, n_, _, _ in h.rank_map())
    assert area == n * n
    direct = 0
    for leaf in h.leaves():
        direct += leaf.full.size if leaf.full is not None else leaf.rk.storage
    assert direct == h.storage()


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=40, max_value=160),
)
def test_property_transpose_involution(seed, n):
    """transpose() is an involution and matches the dense transpose."""
    h, dense = _random_problem(seed, n, 16, 2.0, 1e-7)
    t = h.transpose()
    assert np.allclose(t.to_dense(), h.to_dense().T)
    assert np.allclose(t.transpose().to_dense(), h.to_dense())
