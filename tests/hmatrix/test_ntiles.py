"""Unit + property tests for the NTilesRecursive clustering (Algorithm 2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import cylinder_cloud
from repro.hmatrix import ntiles_recursive, tile_roots


class TestNTilesRecursive:
    def test_tile_count(self):
        _, tiles = ntiles_recursive(cylinder_cloud(1000), nb=128)
        assert len(tiles) == math.ceil(1000 / 128)

    def test_all_tiles_full_size_except_last(self):
        # The paper: CHAMELEON works on regular tiles with at most one
        # padding tile.
        _, tiles = ntiles_recursive(cylinder_cloud(1000), nb=128)
        sizes = [t.size for t in tiles]
        assert all(s == 128 for s in sizes[:-1])
        assert sizes[-1] == 1000 - 128 * (len(sizes) - 1)

    def test_exact_multiple(self):
        _, tiles = ntiles_recursive(cylinder_cloud(512), nb=128)
        assert [t.size for t in tiles] == [128] * 4

    def test_nb_larger_than_n(self):
        root, tiles = ntiles_recursive(cylinder_cloud(100), nb=512)
        assert len(tiles) == 1 and tiles[0] is root

    def test_tiles_contiguous_in_perm(self):
        _, tiles = ntiles_recursive(cylinder_cloud(777), nb=100)
        pos = 0
        for t in tiles:
            assert t.start == pos
            pos = t.stop
        assert pos == 777

    def test_perm_is_permutation(self):
        root, _ = ntiles_recursive(cylinder_cloud(900), nb=100)
        assert np.array_equal(np.sort(root.perm), np.arange(900))

    def test_tiles_refined_by_median_bisection(self):
        _, tiles = ntiles_recursive(cylinder_cloud(1000), nb=250, leaf_size=32)
        for t in tiles:
            assert all(leaf.size <= 32 for leaf in t.leaves())

    def test_tile_roots_recovery(self):
        root, tiles = ntiles_recursive(cylinder_cloud(1000), nb=128)
        rec = tile_roots(root, 128)
        assert [(t.start, t.stop) for t in rec] == [(t.start, t.stop) for t in tiles]

    def test_tile_roots_rejects_foreign_tree(self):
        from repro.hmatrix import build_cluster_tree

        ct = build_cluster_tree(cylinder_cloud(100), leaf_size=30)
        # A median tree has leaves of ~25; asking for nb=10 must fail.
        with pytest.raises(ValueError):
            tile_roots(ct, 10)

    def test_geometric_locality(self):
        # Tiles should be geometrically compact: a tile's bbox diameter must
        # be well below the full geometry's.
        pts = cylinder_cloud(2000)
        root, tiles = ntiles_recursive(pts, nb=250)
        for t in tiles:
            assert t.bbox.diameter < root.bbox.diameter

    def test_validation(self):
        with pytest.raises(ValueError):
            ntiles_recursive(np.zeros((0, 3)), nb=10)
        with pytest.raises(ValueError):
            ntiles_recursive(cylinder_cloud(10), nb=0)
        with pytest.raises(ValueError):
            ntiles_recursive(cylinder_cloud(10), nb=4, leaf_size=0)
        with pytest.raises(ValueError):
            ntiles_recursive(np.zeros(7), nb=2)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=600),
    nb=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_tile_regularity(n, nb, seed):
    """Algorithm 2 invariant: nt = ceil(n/NB) tiles, all of size NB except
    possibly the last, tiling the permutation contiguously."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(-1, 1, size=(n, 3))
    root, tiles = ntiles_recursive(pts, nb=nb)
    nt = math.ceil(n / nb)
    assert len(tiles) == nt
    sizes = [t.size for t in tiles]
    assert all(s == nb for s in sizes[:-1])
    assert sum(sizes) == n
    assert np.array_equal(np.sort(root.perm), np.arange(n))


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=50, max_value=500),
    nb=st.integers(min_value=10, max_value=120),
)
def test_property_left_sons_get_ceil_half_tiles(n, nb):
    """The pseudo-bisection gives the left son exactly NB*ceil(nt/2) unknowns."""
    pts = cylinder_cloud(n)
    root, _ = ntiles_recursive(pts, nb=nb)
    node = root
    while not node.is_leaf and node.size > nb:
        nt = math.ceil(node.size / nb)
        if nt == 1:
            break
        left = node.children[0]
        assert left.size == nb * math.ceil(nt / 2) or left.stop == node.stop
        node = node.children[1]  # walk the (possibly padded) right spine
