"""Unit tests for H-inversion (hinv) and the zeroing helpers."""

import numpy as np
import pytest

from repro.geometry import assemble_dense, cylinder_cloud, helmholtz_kernel, laplace_kernel
from repro.hmatrix import (
    AssemblyConfig,
    StrongAdmissibility,
    assemble_hmatrix,
    build_block_cluster_tree,
    build_cluster_tree,
    hinv,
)

N = 320


@pytest.fixture(scope="module")
def problem():
    pts = cylinder_cloud(N)
    kern = laplace_kernel(pts)
    ct = build_cluster_tree(pts, leaf_size=24)
    bt = build_block_cluster_tree(ct, ct, StrongAdmissibility())
    h = assemble_hmatrix(kern, pts, bt, AssemblyConfig(eps=1e-9))
    dense = assemble_dense(kern, pts)[np.ix_(ct.perm, ct.perm)]
    return h, dense


class TestZeroHelpers:
    def test_zero_in_place(self, problem):
        h, _ = problem
        z = h.copy()
        z.zero_()
        assert z.norm_fro() == 0.0
        assert np.array_equal(z.to_dense(), np.zeros((N, N)))

    def test_zeros_like_keeps_structure(self, problem):
        h, _ = problem
        z = h.zeros_like()
        assert len(list(z.leaves())) == len(list(h.leaves()))
        assert z.norm_fro() == 0.0
        assert h.norm_fro() > 0  # original untouched


class TestHinv:
    def test_inverse_matches_dense(self, problem):
        h, dense = problem
        inv = h.copy()
        hinv(inv, eps=1e-10)
        ref = np.linalg.inv(dense)
        assert np.linalg.norm(inv.to_dense() - ref) <= 1e-6 * np.linalg.norm(ref)

    def test_identity_action(self, problem):
        h, dense = problem
        inv = h.copy()
        hinv(inv, eps=1e-10)
        x = np.random.default_rng(0).standard_normal(N)
        assert np.linalg.norm(dense @ inv.matvec(x) - x) <= 1e-6 * np.linalg.norm(x)

    def test_eps_controls_accuracy(self, problem):
        h, dense = problem
        x = np.random.default_rng(1).standard_normal(N)
        errs = []
        for eps in (1e-3, 1e-10):
            inv = h.copy()
            hinv(inv, eps=eps)
            errs.append(np.linalg.norm(dense @ inv.matvec(x) - x))
        assert errs[1] < errs[0]

    def test_complex(self):
        pts = cylinder_cloud(200)
        kern = helmholtz_kernel(pts)
        ct = build_cluster_tree(pts, leaf_size=20)
        bt = build_block_cluster_tree(ct, ct, StrongAdmissibility())
        h = assemble_hmatrix(kern, pts, bt, AssemblyConfig(eps=1e-9))
        dense = assemble_dense(kern, pts)[np.ix_(ct.perm, ct.perm)]
        hinv(h, eps=1e-10)
        x = np.random.default_rng(2).standard_normal(200) + 0j
        assert np.linalg.norm(dense @ h.matvec(x) - x) <= 1e-6 * np.linalg.norm(x)

    def test_non_square_rejected(self, problem):
        h, _ = problem
        with pytest.raises(ValueError):
            hinv(h.child(0, 1), eps=1e-8)

    def test_inverse_solves_agree_with_lu(self, problem):
        """x = A^{-1} b agrees with the H-LU solve."""
        from repro.hmatrix import hgetrf, hlu_solve

        h, dense = problem
        inv = h.copy()
        hinv(inv, eps=1e-10)
        lu = h.copy()
        hgetrf(lu, eps=1e-10)
        b = np.random.default_rng(3).standard_normal(N)
        x_inv = inv.matvec(b)
        x_lu = hlu_solve(lu, b)
        assert np.linalg.norm(x_inv - x_lu) <= 1e-6 * np.linalg.norm(x_lu)
