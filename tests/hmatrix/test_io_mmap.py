"""Zero-copy mmap loading of Tile-H archives.

``save_tile_h(..., compress=False)`` writes a *stored* zip whose ``.npy``
members ``load_tile_h(..., mmap=True)`` maps as read-only ``np.memmap``
views — the loaded payload bytes must equal the in-memory load exactly.
Solves on mapped factors agree to the last few ulps (BLAS picks
alignment-dependent SIMD paths on mapped pages, so strict bit-identity is
not guaranteed — byte-identical *payloads* are).
"""

import numpy as np
import pytest

from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel, streamed_matvec

N, NB = 256, 64


def _leaves(h):
    if h.children:
        for c in h.children:
            yield from _leaves(c)
    else:
        yield h


def _leaf_arrays(solver):
    nt = solver.desc.nt
    for i in range(nt):
        for j in range(nt):
            for leaf in _leaves(solver.desc.super.get_blktile(i, j).mat):
                if leaf.full is not None:
                    yield leaf.full
                elif leaf.rk is not None:
                    yield leaf.rk.u
                    yield leaf.rk.v


@pytest.fixture(scope="module")
def factorized(tmp_path_factory):
    pts = cylinder_cloud(N)
    kern = make_kernel("laplace", pts)
    solver, _ = TileHMatrix.build_factorize(
        kern, pts, TileHConfig(nb=NB, eps=1e-6, leaf_size=48), method="lu"
    )
    rng = np.random.default_rng(0)
    x0 = rng.standard_normal(N)
    b = streamed_matvec(kern, pts, x0)
    d = tmp_path_factory.mktemp("tileh")
    raw = d / "factor_raw.npz"
    comp = d / "factor_comp.npz"
    solver.save(raw, compress=False)
    solver.save(comp)  # compressed default
    return solver, b, raw, comp


def test_uncompressed_archive_is_smaller_to_load_not_store(factorized):
    _, _, raw, comp = factorized
    assert raw.stat().st_size >= comp.stat().st_size


def test_mmap_load_payloads_bit_identical(factorized):
    _, _, raw, _ = factorized
    mem = TileHMatrix.load(raw)
    mapped = TileHMatrix.load(raw, mmap=True)
    mem_arrays = list(_leaf_arrays(mem))
    map_arrays = list(_leaf_arrays(mapped))
    assert len(mem_arrays) == len(map_arrays) > 0
    for a, m in zip(mem_arrays, map_arrays):
        assert np.array_equal(a, np.asarray(m))
        # Stored order must be preserved so BLAS dispatch matches.
        assert a.flags.f_contiguous == m.flags.f_contiguous
        assert a.flags.c_contiguous == m.flags.c_contiguous


def test_mmap_load_payloads_are_memmaps(factorized):
    _, _, raw, _ = factorized
    mapped = TileHMatrix.load(raw, mmap=True)
    kinds = {type(a) for a in _leaf_arrays(mapped)}
    assert np.memmap in kinds


def test_mmap_solve_matches_in_memory_solve(factorized):
    solver, b, raw, _ = factorized
    xe = solver.solve(b)
    xm = TileHMatrix.load(raw, mmap=True).solve(b)
    # Same factor bytes; only alignment-dependent BLAS rounding may differ.
    np.testing.assert_allclose(xm, xe, rtol=1e-12, atol=1e-12)


def test_mmap_on_compressed_archive_falls_back(factorized):
    solver, b, _, comp = factorized
    loaded = TileHMatrix.load(comp, mmap=True)
    assert np.memmap not in {type(a) for a in _leaf_arrays(loaded)}
    # The fallback read is a plain in-memory load: bit-identical solve.
    assert np.array_equal(loaded.solve(b), TileHMatrix.load(comp).solve(b))


def test_compress_round_trip_identical(factorized):
    _, b, raw, comp = factorized
    x_raw = TileHMatrix.load(raw).solve(b)
    x_comp = TileHMatrix.load(comp).solve(b)
    assert np.array_equal(x_raw, x_comp)
