"""Unit tests for block cluster trees and admissibility conditions."""

import numpy as np
import pytest

from repro.geometry import cylinder_cloud
from repro.hmatrix import (
    StrongAdmissibility,
    WeakAdmissibility,
    build_block_cluster_tree,
    build_cluster_tree,
)


@pytest.fixture(scope="module")
def ct():
    return build_cluster_tree(cylinder_cloud(600), leaf_size=32)


class TestStrongAdmissibility:
    def test_diagonal_never_admissible(self, ct):
        adm = StrongAdmissibility(eta=2.0)
        assert not adm.is_admissible(ct, ct)
        for node in ct.nodes():
            assert not adm.is_admissible(node, node)

    def test_far_blocks_admissible(self, ct):
        adm = StrongAdmissibility(eta=2.0)
        leaves = list(ct.leaves())
        first, last = leaves[0], leaves[-1]
        # The cylinder's extremes are far apart relative to leaf diameters.
        assert adm.is_admissible(first, last)

    def test_eta_monotonicity(self, ct):
        # Larger eta admits at least as many pairs.
        loose = StrongAdmissibility(eta=10.0)
        tight = StrongAdmissibility(eta=0.1)
        nodes = list(ct.nodes())[:40]
        for a in nodes:
            for b in nodes:
                if tight.is_admissible(a, b):
                    assert loose.is_admissible(a, b)

    def test_eta_validation(self):
        with pytest.raises(ValueError):
            StrongAdmissibility(eta=0.0)
        with pytest.raises(ValueError):
            StrongAdmissibility(eta=-1.0)


class TestWeakAdmissibility:
    def test_disjoint_ranges_admissible(self, ct):
        adm = WeakAdmissibility()
        l, r = ct.children
        assert adm.is_admissible(l, r)
        assert adm.is_admissible(r, l)

    def test_overlapping_not_admissible(self, ct):
        adm = WeakAdmissibility()
        assert not adm.is_admissible(ct, ct)
        assert not adm.is_admissible(ct, ct.children[0])


class TestBlockClusterTree:
    def test_root_pair(self, ct):
        bt = build_block_cluster_tree(ct, ct)
        assert bt.rows is ct and bt.cols is ct
        assert bt.shape == (600, 600)

    def test_leaves_partition_matrix(self, ct):
        bt = build_block_cluster_tree(ct, ct)
        covered = np.zeros((600, 600), dtype=bool)
        for leaf in bt.leaves():
            r = slice(leaf.rows.start, leaf.rows.stop)
            c = slice(leaf.cols.start, leaf.cols.stop)
            assert not covered[r, c].any()
            covered[r, c] = True
        assert covered.all()

    def test_admissible_leaves_are_leaves(self, ct):
        bt = build_block_cluster_tree(ct, ct)
        for node in bt.nodes():
            if node.admissible:
                assert node.is_leaf

    def test_inadmissible_leaves_have_leaf_cluster(self, ct):
        bt = build_block_cluster_tree(ct, ct)
        for leaf in bt.leaves():
            if not leaf.admissible:
                assert leaf.rows.is_leaf or leaf.cols.is_leaf

    def test_child_grid_indexing(self, ct):
        bt = build_block_cluster_tree(ct, ct)
        assert not bt.is_leaf
        assert bt.nrow_children == 2 and bt.ncol_children == 2
        assert bt.child(0, 1).rows is ct.children[0]
        assert bt.child(0, 1).cols is ct.children[1]
        with pytest.raises(IndexError):
            next(iter(bt.leaves())).child(0, 0)

    def test_weak_admissibility_structure(self, ct):
        bt = build_block_cluster_tree(ct, ct, WeakAdmissibility())
        # All off-diagonal blocks at the first level are leaves.
        assert bt.child(0, 1).is_leaf and bt.child(0, 1).admissible
        assert bt.child(1, 0).is_leaf and bt.child(1, 0).admissible

    def test_weak_has_fewer_leaves_than_strong(self, ct):
        weak = build_block_cluster_tree(ct, ct, WeakAdmissibility())
        strong = build_block_cluster_tree(ct, ct, StrongAdmissibility())
        assert len(list(weak.leaves())) < len(list(strong.leaves()))

    def test_min_block_stops_subdivision(self, ct):
        bt = build_block_cluster_tree(ct, ct, min_block=600)
        assert bt.is_leaf

    def test_depth_bounded_by_cluster_depth(self, ct):
        bt = build_block_cluster_tree(ct, ct)
        assert bt.depth() <= ct.depth()

    def test_rectangular_pair(self):
        pts = cylinder_cloud(300)
        ct_full = build_cluster_tree(pts, leaf_size=16)
        l, r = ct_full.children
        bt = build_block_cluster_tree(l, r)
        assert bt.shape == (l.size, r.size)
        total = sum(lf.rows.size * lf.cols.size for lf in bt.leaves())
        assert total == l.size * r.size
