"""Unit tests for recursive H-arithmetic (H-GEMM, H-TRSM, H-GETRF)."""

import numpy as np
import pytest
from scipy.linalg import solve_triangular

from repro.geometry import assemble_dense, cylinder_cloud, helmholtz_kernel, laplace_kernel
from repro.hmatrix import (
    AssemblyConfig,
    KernelTracer,
    StrongAdmissibility,
    assemble_hmatrix,
    build_block_cluster_tree,
    build_cluster_tree,
    hgemm,
    hgetrf,
    hlu_solve,
    htrsm,
    set_tracer,
)
from repro.hmatrix.arithmetic import (
    h_rmatvec,
    solve_lower_panel,
    solve_upper_panel,
    solve_upper_transpose_panel,
)

N = 360
EPS = 1e-7


@pytest.fixture(scope="module")
def ctx():
    """Three H-matrices over the same cluster tree (A, B, C operands)."""
    pts = cylinder_cloud(N)
    ct = build_cluster_tree(pts, leaf_size=24)
    bt = build_block_cluster_tree(ct, ct, StrongAdmissibility(eta=2.0))
    kern = laplace_kernel(pts)
    h = assemble_hmatrix(kern, pts, bt, AssemblyConfig(eps=EPS))
    dense = assemble_dense(kern, pts)[np.ix_(ct.perm, ct.perm)]
    return pts, ct, bt, kern, h, dense


def _rel(a, b):
    return np.linalg.norm(a - b) / max(np.linalg.norm(b), 1e-300)


class TestHRmatvec:
    def test_matches_transpose(self, ctx):
        *_, h, dense = ctx
        x = np.random.default_rng(0).standard_normal((N, 2))
        assert _rel(h_rmatvec(h, x), dense.T @ x) <= 1e-5


class TestHgemm:
    def test_all_h_operands(self, ctx):
        *_, h, dense = ctx
        c = h.copy()
        hgemm(c, h, h, eps=1e-9, alpha=-1.0)
        ref = dense - dense @ dense
        assert _rel(c.to_dense(), ref) <= 1e-4

    def test_alpha_plus_one(self, ctx):
        *_, h, dense = ctx
        c = h.copy()
        hgemm(c, h, h, eps=1e-9, alpha=1.0)
        assert _rel(c.to_dense(), dense + dense @ dense) <= 1e-4

    def test_rk_times_h(self, ctx):
        # C += alpha * A @ B where A is a low-rank leaf: take off-diagonal
        # children of the root.
        *_, h, dense = ctx
        a01 = h.child(0, 1)
        b10 = h.child(1, 0)
        c00 = h.child(0, 0).copy()
        m = c00.shape[0]
        ref = dense[:m, :m] - dense[:m, m:] @ dense[m:, :m]
        hgemm(c00, a01, b10, eps=1e-9, alpha=-1.0)
        assert _rel(c00.to_dense(), ref) <= 1e-4

    def test_shape_validation(self, ctx):
        *_, h, _ = ctx
        # C (half-sized) cannot absorb the product of two full-sized operands.
        with pytest.raises(ValueError):
            hgemm(h.child(0, 0), h, h, eps=1e-6)

    def test_gemm_into_rk_leaf(self, ctx):
        # C is a low-rank leaf while A, B are subdivided: the collect path.
        *_, h, dense = ctx
        c = h.child(0, 1).copy()
        a = h.child(0, 0)
        b = h.child(0, 1)
        m, n = c.shape
        ref = dense[:m, m:] - dense[:m, :m] @ dense[:m, m:]
        hgemm(c, a, b, eps=1e-9, alpha=-1.0)
        assert _rel(c.to_dense(), ref) <= 1e-4

    def test_complex(self):
        pts = cylinder_cloud(200)
        ct = build_cluster_tree(pts, leaf_size=16)
        bt = build_block_cluster_tree(ct, ct, StrongAdmissibility())
        kz = helmholtz_kernel(pts)
        h = assemble_hmatrix(kz, pts, bt, AssemblyConfig(eps=1e-8))
        dense = assemble_dense(kz, pts)[np.ix_(ct.perm, ct.perm)]
        c = h.copy()
        hgemm(c, h, h, eps=1e-10, alpha=-1.0)
        assert _rel(c.to_dense(), dense - dense @ dense) <= 1e-5


class TestPanelSolves:
    @pytest.fixture(scope="class")
    def lu(self, ctx):
        *_, h, dense = ctx
        hl = h.copy()
        hgetrf(hl, eps=1e-9)
        return hl, dense

    def test_solve_lower_panel(self, lu, ctx):
        hl, _ = lu
        rng = np.random.default_rng(1)
        b = rng.standard_normal((N, 3))
        dense_lu = hl.to_dense()
        l = np.tril(dense_lu, -1) + np.eye(N)
        y = solve_lower_panel(hl, b, unit_diagonal=True)
        assert _rel(l @ y, b) <= 1e-6

    def test_solve_upper_panel(self, lu):
        hl, _ = lu
        rng = np.random.default_rng(2)
        b = rng.standard_normal((N, 2))
        u = np.triu(hl.to_dense())
        y = solve_upper_panel(hl, b)
        assert _rel(u @ y, b) <= 1e-6

    def test_solve_upper_transpose_panel(self, lu):
        hl, _ = lu
        rng = np.random.default_rng(3)
        b = rng.standard_normal((N, 2))
        u = np.triu(hl.to_dense())
        y = solve_upper_transpose_panel(hl, b)
        assert _rel(u.T @ y, b) <= 1e-6


class TestHtrsm:
    @pytest.fixture(scope="class")
    def factored_root_block(self, ctx):
        *_, h, dense = ctx
        hl = h.child(0, 0).copy()
        hgetrf(hl, eps=1e-10)
        m = hl.shape[0]
        return hl, dense[:m, :m], m

    def test_left_lower_on_h_rhs(self, ctx, factored_root_block):
        *_, h, dense = ctx
        hl, dkk, m = factored_root_block
        b = h.child(0, 1).copy()
        ref_rhs = dense[:m, m:].copy()
        htrsm("left", "lower", hl, b, eps=1e-9, unit_diagonal=True)
        l = np.tril(hl.to_dense(), -1) + np.eye(m)
        assert _rel(l @ b.to_dense(), ref_rhs) <= 1e-5

    def test_right_upper_on_h_rhs(self, ctx, factored_root_block):
        *_, h, dense = ctx
        hl, dkk, m = factored_root_block
        b = h.child(1, 0).copy()
        ref_rhs = dense[m:, :m].copy()
        htrsm("right", "upper", hl, b, eps=1e-9)
        u = np.triu(hl.to_dense())
        assert _rel(b.to_dense() @ u, ref_rhs) <= 1e-5

    def test_unsupported_variant(self, ctx, factored_root_block):
        hl, _, _ = factored_root_block
        b = hl.copy()
        with pytest.raises(ValueError):
            htrsm("left", "upper", hl, b, eps=1e-6)
        with pytest.raises(ValueError):
            htrsm("right", "upper", hl, b, eps=1e-6, unit_diagonal=True)

    def test_dim_validation(self, ctx, factored_root_block):
        *_, h, _ = ctx
        hl, _, m = factored_root_block
        with pytest.raises(ValueError):
            htrsm("left", "lower", hl, h, eps=1e-6, unit_diagonal=True)


class TestHgetrf:
    def test_lu_reconstruction(self, ctx):
        *_, h, dense = ctx
        hl = h.copy()
        hgetrf(hl, eps=1e-9)
        packed = hl.to_dense()
        l = np.tril(packed, -1) + np.eye(N)
        u = np.triu(packed)
        assert _rel(l @ u, dense) <= 1e-5

    def test_solve_accuracy(self, ctx):
        *_, h, dense = ctx
        hl = h.copy()
        hgetrf(hl, eps=1e-9)
        x0 = np.random.default_rng(4).standard_normal(N)
        x = hlu_solve(hl, dense @ x0)
        assert _rel(x, x0) <= 1e-5

    def test_solve_panel(self, ctx):
        *_, h, dense = ctx
        hl = h.copy()
        hgetrf(hl, eps=1e-9)
        x0 = np.random.default_rng(5).standard_normal((N, 4))
        x = hlu_solve(hl, dense @ x0)
        assert _rel(x, x0) <= 1e-5

    def test_eps_controls_accuracy(self, ctx):
        *_, h, dense = ctx
        x0 = np.random.default_rng(6).standard_normal(N)
        errs = []
        for eps in (1e-2, 1e-8):
            hl = h.copy()
            hgetrf(hl, eps=eps)
            x = hlu_solve(hl, dense @ x0)
            errs.append(_rel(x, x0))
        assert errs[1] < errs[0]

    def test_complex_lu(self):
        pts = cylinder_cloud(220)
        ct = build_cluster_tree(pts, leaf_size=20)
        bt = build_block_cluster_tree(ct, ct, StrongAdmissibility())
        kz = helmholtz_kernel(pts)
        h = assemble_hmatrix(kz, pts, bt, AssemblyConfig(eps=1e-8))
        dense = assemble_dense(kz, pts)[np.ix_(ct.perm, ct.perm)]
        hgetrf(h, eps=1e-9)
        rng = np.random.default_rng(7)
        x0 = rng.standard_normal(220) + 1j * rng.standard_normal(220)
        x = hlu_solve(h, dense @ x0)
        assert _rel(x, x0) <= 1e-5

    def test_non_square_rejected(self, ctx):
        *_, h, _ = ctx
        with pytest.raises(ValueError):
            hgetrf(h.child(0, 1), eps=1e-6)

    def test_rhs_dim_validation(self, ctx):
        *_, h, _ = ctx
        hl = h.copy()
        hgetrf(hl, eps=1e-9)
        with pytest.raises(ValueError):
            hlu_solve(hl, np.zeros(N + 1))


class TestTracer:
    def test_tracer_records_kernels(self, ctx):
        *_, h, _ = ctx
        tracer = KernelTracer()
        prev = set_tracer(tracer)
        try:
            hl = h.copy()
            hgetrf(hl, eps=1e-9)
        finally:
            set_tracer(prev)
        kinds = {r.kind for r in tracer.records}
        assert kinds == {"getrf", "trsm", "gemm"}
        assert tracer.total_seconds() > 0
        assert tracer.total_flops() > 0
        # Every record has coherent read/write sets.
        for r in tracer.records:
            assert r.writes
            if r.kind != "getrf":
                assert r.reads

    def test_tracer_disabled_by_default(self, ctx):
        *_, h, _ = ctx
        tracer = KernelTracer()
        prev = set_tracer(tracer)
        set_tracer(prev)  # restore immediately
        hl = h.copy()
        hgetrf(hl, eps=1e-9)
        assert tracer.records == []

    def test_tracer_clear(self):
        tracer = KernelTracer()
        tracer.record("getrf", (), ("x",), 0.1, 10.0)
        tracer.clear()
        assert tracer.records == [] and tracer.total_seconds() == 0.0


class TestHgeaddToRk:
    def test_to_rk_matches_dense(self, ctx):
        from repro.hmatrix import to_rk

        *_, h, dense = ctx
        rk = to_rk(h, eps=1e-8)
        err = np.linalg.norm(rk.to_dense() - dense) / np.linalg.norm(dense)
        assert err < 1e-5
        # The full matrix is not numerically low rank (dominant diagonal),
        # but an off-diagonal subdivided block is.
        off = h.child(0, 1)
        rk_off = to_rk(off, eps=1e-6)
        assert rk_off.rank < min(off.shape)
        ref = dense[: off.shape[0], off.shape[0] :]
        assert np.linalg.norm(rk_off.to_dense() - ref) < 1e-4 * np.linalg.norm(ref)

    def test_hgeadd_same_structure(self, ctx):
        from repro.hmatrix import hgeadd

        *_, h, dense = ctx
        b = h.copy()
        hgeadd(b, h, eps=1e-9, alpha=-0.5)
        assert _rel(b.to_dense(), 0.5 * dense) < 1e-5

    def test_hgeadd_rk_into_h(self, ctx):
        from repro.hmatrix import hgeadd

        *_, h, dense = ctx
        b = h.child(0, 0).copy()
        a = h.child(0, 1)  # need same shape: only valid if square halves
        if a.shape != b.shape:
            pytest.skip("halves not square")
        m = b.shape[0]
        hgeadd(b, a, eps=1e-9, alpha=2.0)
        ref = dense[:m, :m] + 2.0 * dense[:m, m:]
        assert _rel(b.to_dense(), ref) < 1e-5

    def test_hgeadd_h_into_leaf(self, ctx):
        from repro.hmatrix import HMatrix, hgeadd
        from repro.hmatrix.rk import compress_dense

        *_, h, dense = ctx
        a = h.child(0, 0)  # subdivided
        m = a.shape[0]
        leaf = HMatrix(a.rows, a.cols, rk=compress_dense(dense[:m, :m], 1e-9))
        hgeadd(leaf, a, eps=1e-9, alpha=1.0)
        assert _rel(leaf.to_dense(), 2.0 * dense[:m, :m]) < 1e-4

    def test_hgeadd_shape_mismatch(self, ctx):
        from repro.hmatrix import hgeadd

        *_, h, _ = ctx
        with pytest.raises(ValueError):
            hgeadd(h.child(0, 0), h, eps=1e-6)

    def test_hgeadd_cancellation(self, ctx):
        from repro.hmatrix import hgeadd

        *_, h, dense = ctx
        b = h.copy()
        hgeadd(b, h, eps=1e-10, alpha=-1.0)
        assert b.norm_fro() <= 1e-5 * np.linalg.norm(dense)
