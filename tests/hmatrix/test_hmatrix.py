"""Unit tests for the HMatrix container (assembly, matvec, accounting)."""

import numpy as np
import pytest

from repro.geometry import assemble_dense, cylinder_cloud, helmholtz_kernel, laplace_kernel
from repro.hmatrix import (
    AssemblyConfig,
    HMatrix,
    RkMatrix,
    StrongAdmissibility,
    WeakAdmissibility,
    assemble_hmatrix,
    build_block_cluster_tree,
    build_cluster_tree,
)

N = 400
EPS = 1e-6


@pytest.fixture(scope="module")
def setup():
    pts = cylinder_cloud(N)
    ct = build_cluster_tree(pts, leaf_size=32)
    bt = build_block_cluster_tree(ct, ct, StrongAdmissibility(eta=2.0))
    kern = laplace_kernel(pts)
    h = assemble_hmatrix(kern, pts, bt, AssemblyConfig(eps=EPS))
    dense = assemble_dense(kern, pts)[np.ix_(ct.perm, ct.perm)]
    return pts, ct, bt, kern, h, dense


class TestAssembly:
    def test_assembly_accuracy(self, setup):
        *_, h, dense = setup
        err = np.linalg.norm(h.to_dense() - dense) / np.linalg.norm(dense)
        assert err <= 10 * EPS

    def test_structure_mirrors_block_tree(self, setup):
        _, _, bt, _, h, _ = setup
        bt_leaves = [(b.rows.start, b.cols.start, b.admissible) for b in bt.leaves()]
        h_leaves = [
            (leaf.rows.start, leaf.cols.start, leaf.kind == "rk") for leaf in h.leaves()
        ]
        assert bt_leaves == h_leaves

    def test_svd_method(self, setup):
        pts, ct, bt, kern, _, dense = setup
        h = assemble_hmatrix(kern, pts, bt, AssemblyConfig(eps=EPS, method="svd"))
        assert np.linalg.norm(h.to_dense() - dense) <= 10 * EPS * np.linalg.norm(dense)

    def test_complex_assembly(self, setup):
        pts, ct, bt, *_ = setup
        kz = helmholtz_kernel(pts)
        h = assemble_hmatrix(kz, pts, bt, AssemblyConfig(eps=EPS))
        dense = assemble_dense(kz, pts)[np.ix_(ct.perm, ct.perm)]
        assert h.dtype == np.complex128
        assert np.linalg.norm(h.to_dense() - dense) <= 10 * EPS * np.linalg.norm(dense)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AssemblyConfig(eps=-1.0)


class TestHMatrixOps:
    def test_matvec_vector_and_panel(self, setup):
        *_, h, dense = setup
        rng = np.random.default_rng(0)
        x = rng.standard_normal(N)
        assert np.allclose(h.matvec(x), dense @ x, atol=1e-4)
        xp = rng.standard_normal((N, 3))
        assert np.allclose(h.matvec(xp), dense @ xp, atol=1e-4)

    def test_matvec_shape_check(self, setup):
        *_, h, _ = setup
        with pytest.raises(ValueError):
            h.matvec(np.zeros(N + 1))

    def test_norm_fro(self, setup):
        *_, h, dense = setup
        assert np.isclose(h.norm_fro(), np.linalg.norm(dense), rtol=1e-4)

    def test_storage_less_than_dense(self, setup):
        *_, h, _ = setup
        assert h.storage() < N * N
        assert h.compression_ratio() < 1.0
        assert h.storage_bytes() == h.storage() * 8

    def test_leaf_count(self, setup):
        *_, h, _ = setup
        counts = h.leaf_count()
        assert counts["full"] > 0 and counts["rk"] > 0
        assert counts["full"] + counts["rk"] == len(list(h.leaves()))

    def test_max_rank_positive(self, setup):
        *_, h, _ = setup
        assert 0 < h.max_rank() < N

    def test_copy_deep(self, setup):
        *_, h, dense = setup
        cp = h.copy()
        for leaf in cp.leaves():
            if leaf.full is not None:
                leaf.full[:] = 0.0
            else:
                leaf.rk = RkMatrix.zeros(*leaf.shape, dtype=leaf.rk.dtype)
        assert np.isclose(np.linalg.norm(h.to_dense() - dense), 0, atol=1e-4 * N)

    def test_scale(self, setup):
        *_, h, dense = setup
        cp = h.copy()
        cp.scale(-3.0)
        assert np.allclose(cp.to_dense(), -3.0 * h.to_dense())

    def test_depth_and_nodes(self, setup):
        *_, h, _ = setup
        assert h.depth() >= 1
        assert len(list(h.nodes())) > len(list(h.leaves()))


class TestFromDense:
    def test_roundtrip(self, setup):
        _, _, bt, _, _, dense = setup
        h = HMatrix.from_dense(dense, bt, eps=1e-10)
        assert np.linalg.norm(h.to_dense() - dense) <= 1e-8 * np.linalg.norm(dense)

    def test_shape_mismatch(self, setup):
        _, _, bt, *_ = setup
        with pytest.raises(ValueError):
            HMatrix.from_dense(np.zeros((3, 3)), bt, eps=1e-6)

    def test_weak_admissibility_from_dense(self, setup):
        pts, ct, *_ = setup
        bt = build_block_cluster_tree(ct, ct, WeakAdmissibility())
        dense = np.diag(np.arange(1.0, N + 1))
        h = HMatrix.from_dense(dense, bt, eps=1e-10)
        assert np.allclose(h.to_dense(), dense)


class TestAxpy:
    def test_axpy_rk(self, setup):
        *_, h, dense = setup
        cp = h.copy()
        rng = np.random.default_rng(5)
        rk = RkMatrix(rng.standard_normal((N, 2)), rng.standard_normal((N, 2)))
        cp.axpy_rk(rk, eps=1e-10)
        ref = dense + rk.to_dense()
        assert np.linalg.norm(cp.to_dense() - ref) <= 1e-4 * np.linalg.norm(ref)

    def test_axpy_rk_zero_is_noop(self, setup):
        *_, h, _ = setup
        cp = h.copy()
        before = cp.to_dense()
        cp.axpy_rk(RkMatrix.zeros(N, N), eps=1e-10)
        assert np.array_equal(cp.to_dense(), before)

    def test_axpy_dense(self, setup):
        *_, h, dense = setup
        cp = h.copy()
        rng = np.random.default_rng(6)
        block = rng.standard_normal((N, N)) * 1e-3
        cp.axpy_dense(block, eps=1e-10)
        ref = dense + block
        # Rk leaves compress the dense update, so allow the eps-level error.
        assert np.linalg.norm(cp.to_dense() - ref) <= 1e-3 * np.linalg.norm(ref)

    def test_axpy_shape_checks(self, setup):
        *_, h, _ = setup
        with pytest.raises(ValueError):
            h.axpy_rk(RkMatrix.zeros(3, 3), 1e-6)
        with pytest.raises(ValueError):
            h.axpy_dense(np.zeros((3, 3)), 1e-6)


class TestStructureRendering:
    def test_rank_map_covers_matrix(self, setup):
        *_, h, _ = setup
        area = sum(m * n for _, _, m, n, _, _ in h.rank_map())
        assert area == N * N

    def test_render_structure(self, setup):
        *_, h, _ = setup
        art = h.render_structure(width=32)
        lines = art.splitlines()
        assert all(len(line) == 32 for line in lines)
        assert "#" in art  # dense diagonal blocks
        assert any(c.isdigit() or c == "+" for c in art)  # low-rank blocks

    def test_constructor_validation(self, setup):
        _, ct, *_ = setup
        with pytest.raises(ValueError):
            HMatrix(ct, ct)  # no payload
        with pytest.raises(ValueError):
            HMatrix(ct, ct, full=np.zeros((2, 2)))  # wrong shape


class TestStructureJson:
    def test_json_consistency(self, setup):
        *_, h, _ = setup
        data = h.structure_json()
        assert data["shape"] == [N, N]
        assert data["storage"] == h.storage()
        assert data["n_dense_leaves"] + data["n_rk_leaves"] == len(data["leaves"])
        area = sum(l["m"] * l["n"] for l in data["leaves"])
        assert area == N * N

    def test_json_serialisable(self, setup):
        import json

        *_, h, _ = setup
        text = json.dumps(h.structure_json())
        assert "compression_ratio" in text

    def test_ranks_match_rank_map(self, setup):
        *_, h, _ = setup
        json_ranks = sorted(l["rank"] for l in h.structure_json()["leaves"])
        map_ranks = sorted(r for *_, r in h.rank_map())
        assert json_ranks == map_ranks
