"""Unit + property tests for cluster trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import cylinder_cloud, plate_cloud
from repro.hmatrix import BoundingBox, build_cluster_tree


class TestBoundingBox:
    def test_of_points(self):
        pts = np.array([[0.0, 1.0, 2.0], [3.0, -1.0, 2.0]])
        bb = BoundingBox.of(pts)
        assert np.array_equal(bb.lo, [0.0, -1.0, 2.0])
        assert np.array_equal(bb.hi, [3.0, 1.0, 2.0])

    def test_diameter(self):
        bb = BoundingBox(lo=np.zeros(3), hi=np.array([3.0, 4.0, 0.0]))
        assert bb.diameter == 5.0

    def test_largest_dimension(self):
        bb = BoundingBox(lo=np.zeros(3), hi=np.array([1.0, 5.0, 2.0]))
        assert bb.largest_dimension() == 1

    def test_distance_disjoint(self):
        a = BoundingBox(lo=np.zeros(3), hi=np.ones(3))
        b = BoundingBox(lo=np.array([4.0, 0.0, 0.0]), hi=np.array([5.0, 1.0, 1.0]))
        assert a.distance(b) == 3.0
        assert b.distance(a) == 3.0

    def test_distance_overlapping_zero(self):
        a = BoundingBox(lo=np.zeros(3), hi=np.ones(3))
        b = BoundingBox(lo=np.array([0.5, 0.5, 0.5]), hi=np.array([2.0, 2.0, 2.0]))
        assert a.distance(b) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.of(np.zeros((0, 3)))


class TestBuildClusterTree:
    def test_root_covers_everything(self):
        pts = cylinder_cloud(500)
        ct = build_cluster_tree(pts, leaf_size=32)
        assert ct.size == 500
        assert np.array_equal(np.sort(ct.perm), np.arange(500))

    def test_leaf_size_respected(self):
        ct = build_cluster_tree(cylinder_cloud(500), leaf_size=32)
        for leaf in ct.leaves():
            assert 1 <= leaf.size <= 32

    def test_children_partition_parent(self):
        ct = build_cluster_tree(cylinder_cloud(300), leaf_size=16)
        for node in ct.nodes():
            if not node.is_leaf:
                assert len(node.children) == 2
                l, r = node.children
                assert l.start == node.start and r.stop == node.stop
                assert l.stop == r.start
                # Median bisection: balanced within one element.
                assert abs(l.size - r.size) <= 1

    def test_leaves_cover_in_order(self):
        ct = build_cluster_tree(cylinder_cloud(257), leaf_size=10)
        pos = 0
        for leaf in ct.leaves():
            assert leaf.start == pos
            pos = leaf.stop
        assert pos == 257

    def test_levels_increase(self):
        ct = build_cluster_tree(cylinder_cloud(128), leaf_size=8)
        for node in ct.nodes():
            for c in node.children:
                assert c.level == node.level + 1

    def test_bbox_contains_points(self):
        pts = cylinder_cloud(200)
        ct = build_cluster_tree(pts, leaf_size=16)
        for node in ct.nodes():
            p = node.cluster_points
            assert np.all(p >= node.bbox.lo - 1e-12)
            assert np.all(p <= node.bbox.hi + 1e-12)

    def test_single_point(self):
        ct = build_cluster_tree(np.zeros((1, 3)), leaf_size=4)
        assert ct.is_leaf and ct.size == 1 and ct.depth() == 0

    def test_degenerate_plate(self):
        # One collapsed dimension must not break splitting.
        ct = build_cluster_tree(plate_cloud(200), leaf_size=16)
        assert all(leaf.size <= 16 for leaf in ct.leaves())

    def test_duplicate_points(self):
        pts = np.zeros((50, 3))  # all identical
        ct = build_cluster_tree(pts, leaf_size=8)
        assert sum(leaf.size for leaf in ct.leaves()) == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            build_cluster_tree(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            build_cluster_tree(cylinder_cloud(10), leaf_size=0)
        with pytest.raises(ValueError):
            build_cluster_tree(np.zeros(5))

    def test_depth_logarithmic(self):
        ct = build_cluster_tree(cylinder_cloud(1024), leaf_size=32)
        # 1024/32 = 32 leaves => depth around log2(32) = 5 (allow slack for
        # uneven splits).
        assert ct.depth() <= 8


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=400),
    leaf_size=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_cluster_tree_is_partition(n, leaf_size, seed):
    """perm is always a permutation and leaves tile [0, n) exactly."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(-1, 1, size=(n, 3))
    ct = build_cluster_tree(pts, leaf_size=leaf_size)
    assert np.array_equal(np.sort(ct.perm), np.arange(n))
    covered = np.zeros(n, dtype=bool)
    for leaf in ct.leaves():
        assert leaf.size <= leaf_size
        assert not covered[leaf.start : leaf.stop].any()
        covered[leaf.start : leaf.stop] = True
    assert covered.all()


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=300),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_sibling_boxes_separate_along_axis(n, seed):
    """After a split, left child's split-axis max <= right child's min."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(-1, 1, size=(n, 3))
    ct = build_cluster_tree(pts, leaf_size=max(1, n // 8))
    for node in ct.nodes():
        if node.is_leaf:
            continue
        axis = node.bbox.largest_dimension()
        l, r = node.children
        assert l.bbox.hi[axis] <= r.bbox.lo[axis] + 1e-12
