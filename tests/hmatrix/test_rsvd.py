"""Unit tests for the randomized-SVD compressor."""

import numpy as np
import pytest

from repro.geometry import cylinder_cloud, laplace_kernel
from repro.hmatrix import compress_dense, compress_dense_rsvd, compress_kernel_block


def _lowrank(m, n, r, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, r)) @ rng.standard_normal((r, n))
    if np.issubdtype(dtype, np.complexfloating):
        a = a + 1j * (rng.standard_normal((m, r)) @ rng.standard_normal((r, n)))
    return a.astype(dtype)


class TestCompressDenseRsvd:
    def test_exact_rank_recovery(self):
        a = _lowrank(80, 60, 6)
        rk = compress_dense_rsvd(a, 1e-10)
        assert rk.rank == 6
        assert np.linalg.norm(rk.to_dense() - a) <= 1e-8 * np.linalg.norm(a)

    @pytest.mark.parametrize("eps", [1e-3, 1e-6, 1e-9])
    def test_error_bound(self, eps):
        rng = np.random.default_rng(1)
        # Exponentially decaying spectrum: realistic compressible block.
        u, _ = np.linalg.qr(rng.standard_normal((70, 70)))
        v, _ = np.linalg.qr(rng.standard_normal((50, 50)))
        s = np.exp(-np.arange(50) / 3.0)
        a = u[:, :50] @ np.diag(s) @ v.T
        rk = compress_dense_rsvd(a, eps)
        err = np.linalg.norm(rk.to_dense() - a) / np.linalg.norm(a)
        assert err <= 10 * eps

    def test_adaptive_width_grows(self):
        # Rank ~24 exceeds the initial sketch width (8): the doubling loop
        # must engage and still meet the tolerance.
        a = _lowrank(100, 90, 24, seed=2)
        rk = compress_dense_rsvd(a, 1e-9)
        assert rk.rank >= 20
        assert np.linalg.norm(rk.to_dense() - a) <= 1e-7 * np.linalg.norm(a)

    def test_complex(self):
        a = _lowrank(50, 40, 5, dtype=np.complex128)
        rk = compress_dense_rsvd(a, 1e-10)
        assert rk.dtype == np.complex128
        assert np.linalg.norm(rk.to_dense() - a) <= 1e-8 * np.linalg.norm(a)

    def test_zero_matrix(self):
        rk = compress_dense_rsvd(np.zeros((10, 8)), 1e-6)
        assert rk.rank == 0

    def test_max_rank_cap(self):
        a = _lowrank(40, 40, 10)
        rk = compress_dense_rsvd(a, 1e-14, max_rank=4)
        assert rk.rank <= 4

    def test_deterministic_with_seed(self):
        a = _lowrank(30, 30, 4)
        r1 = compress_dense_rsvd(a, 1e-8, seed=7)
        r2 = compress_dense_rsvd(a, 1e-8, seed=7)
        assert np.array_equal(r1.u, r2.u)

    def test_rank_close_to_svd_optimum(self):
        a = _lowrank(60, 60, 8, seed=3) + 1e-9 * np.random.default_rng(4).standard_normal((60, 60))
        opt = compress_dense(a, 1e-6).rank
        rnd = compress_dense_rsvd(a, 1e-6).rank
        assert rnd <= opt + 4


class TestRsvdInAssembly:
    def test_registry_method(self):
        pts = cylinder_cloud(400)
        kern = laplace_kernel(pts)
        ref = kern(pts[:100], pts[-100:])
        rk = compress_kernel_block(kern, pts[:100], pts[-100:], 1e-6, method="rsvd")
        assert np.linalg.norm(rk.to_dense() - ref) <= 1e-5 * np.linalg.norm(ref)

    def test_full_pipeline_with_rsvd(self):
        from repro.core import TileHConfig, TileHMatrix
        from repro.geometry import assemble_dense

        pts = cylinder_cloud(400)
        kern = laplace_kernel(pts)
        dense = assemble_dense(kern, pts)
        a = TileHMatrix.build(
            kern, pts, TileHConfig(nb=100, eps=1e-6, leaf_size=32, method="rsvd")
        )
        x0 = np.random.default_rng(5).standard_normal(400)
        x = a.gesv(dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)
