"""Unit + property tests for Rk blocks and truncated arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hmatrix import RkMatrix, compress_dense, truncate_svd


def _random_lowrank(m, n, r, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((m, r))
    v = rng.standard_normal((n, r))
    if np.issubdtype(dtype, np.complexfloating):
        u = u + 1j * rng.standard_normal((m, r))
        v = v + 1j * rng.standard_normal((n, r))
    return RkMatrix(u.astype(dtype), v.astype(dtype))


class TestRkBasics:
    def test_shape_rank_storage(self):
        rk = _random_lowrank(20, 30, 4)
        assert rk.shape == (20, 30)
        assert rk.rank == 4
        assert rk.storage == 20 * 4 + 30 * 4

    def test_zeros(self):
        rk = RkMatrix.zeros(5, 7, dtype=np.complex128)
        assert rk.rank == 0
        assert rk.dtype == np.complex128
        assert np.array_equal(rk.to_dense(), np.zeros((5, 7)))
        assert rk.norm_fro() == 0.0

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RkMatrix(np.zeros((4, 2)), np.zeros((5, 3)))

    def test_to_dense(self):
        rk = _random_lowrank(6, 8, 2)
        assert np.allclose(rk.to_dense(), rk.u @ rk.v.T)

    def test_norm_fro_matches_dense(self):
        for dtype in (np.float64, np.complex128):
            rk = _random_lowrank(15, 12, 5, dtype=dtype)
            assert np.isclose(rk.norm_fro(), np.linalg.norm(rk.to_dense()))

    def test_matvec_rmatvec(self):
        rk = _random_lowrank(9, 11, 3, dtype=np.complex128)
        x = np.random.default_rng(1).standard_normal(11)
        y = np.random.default_rng(2).standard_normal(9)
        assert np.allclose(rk.matvec(x), rk.to_dense() @ x)
        assert np.allclose(rk.rmatvec(y), rk.to_dense().T @ y)

    def test_matvec_zero_rank(self):
        rk = RkMatrix.zeros(4, 6)
        assert np.array_equal(rk.matvec(np.ones(6)), np.zeros(4))
        assert np.array_equal(rk.rmatvec(np.ones(4)), np.zeros(6))

    def test_transpose(self):
        rk = _random_lowrank(7, 5, 2)
        assert np.allclose(rk.transpose().to_dense(), rk.to_dense().T)

    def test_scale(self):
        rk = _random_lowrank(5, 5, 2)
        assert np.allclose(rk.scale(-2.0).to_dense(), -2.0 * rk.to_dense())

    def test_copy_independent(self):
        rk = _random_lowrank(4, 4, 2)
        cp = rk.copy()
        cp.u[:] = 0
        assert not np.allclose(rk.u, 0)


class TestTruncation:
    def test_truncate_exact_rank_recovery(self):
        # A rank-3 block stored with redundant rank 10 must shrink to 3.
        base = _random_lowrank(30, 25, 3, seed=5)
        dense = base.to_dense()
        redundant = RkMatrix(
            np.hstack([base.u, base.u @ np.ones((3, 7))]),
            np.hstack([base.v, np.zeros((25, 7))]),
        )
        out = redundant.truncate(1e-12)
        assert out.rank == 3
        assert np.allclose(out.to_dense(), dense)

    def test_truncate_error_bound(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((40, 40))
        rk = compress_dense(a, eps=0.0)  # full accuracy
        for eps in (1e-2, 1e-4, 1e-8):
            tr = rk.truncate(eps)
            err = np.linalg.norm(tr.to_dense() - a) / np.linalg.norm(a)
            assert err <= eps * 1.001 + 1e-15

    def test_truncate_max_rank(self):
        rk = _random_lowrank(20, 20, 10)
        out = rk.truncate(0.0, max_rank=4)
        assert out.rank == 4

    def test_negative_eps_rejected(self):
        rk = _random_lowrank(5, 5, 2)
        with pytest.raises(ValueError):
            rk.truncate(-1e-3)

    def test_add_exact(self):
        a = _random_lowrank(15, 10, 3, seed=1)
        b = _random_lowrank(15, 10, 2, seed=2)
        out = a.add(b, eps=1e-13)
        assert np.allclose(out.to_dense(), a.to_dense() + b.to_dense())
        assert out.rank <= 5

    def test_add_with_zero(self):
        a = _random_lowrank(8, 9, 3)
        z = RkMatrix.zeros(8, 9)
        assert np.allclose(a.add(z, 1e-12).to_dense(), a.to_dense())
        assert np.allclose(z.add(a, 1e-12).to_dense(), a.to_dense())

    def test_add_shape_mismatch(self):
        a = _random_lowrank(8, 9, 2)
        b = _random_lowrank(9, 8, 2)
        with pytest.raises(ValueError):
            a.add(b, 1e-8)

    def test_add_cancellation(self):
        a = _random_lowrank(10, 10, 4)
        out = a.add(a.scale(-1.0), eps=1e-10)
        assert out.norm_fro() <= 1e-10 * max(a.norm_fro(), 1.0)

    def test_complex_add(self):
        a = _random_lowrank(12, 9, 3, seed=3, dtype=np.complex128)
        b = _random_lowrank(12, 9, 2, seed=4, dtype=np.complex128)
        out = a.add(b, eps=1e-12)
        assert np.allclose(out.to_dense(), a.to_dense() + b.to_dense())


class TestTruncateSvd:
    def test_rank_detection(self):
        dense = _random_lowrank(30, 20, 5, seed=9).to_dense()
        u, v = truncate_svd(dense, eps=1e-10)
        assert u.shape[1] == 5
        assert np.allclose(u @ v.T, dense)

    def test_empty(self):
        u, v = truncate_svd(np.zeros((0, 4)), 1e-4)
        assert u.shape == (0, 0) and v.shape == (4, 0)

    def test_zero_matrix(self):
        rk = compress_dense(np.zeros((6, 6)), 1e-8)
        assert rk.rank == 0

    def test_eps_zero_keeps_everything(self):
        a = np.random.default_rng(0).standard_normal((10, 10))
        u, v = truncate_svd(a, eps=0.0)
        assert u.shape[1] == 10
        assert np.allclose(u @ v.T, a)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=30),
    n=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    eps=st.sampled_from([1e-1, 1e-3, 1e-6]),
)
def test_property_truncation_error_bound(m, n, seed, eps):
    """||A - trunc_eps(A)||_F <= eps * ||A||_F always holds."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    rk = compress_dense(a, eps)
    err = np.linalg.norm(rk.to_dense() - a)
    assert err <= eps * np.linalg.norm(a) * (1 + 1e-10) + 1e-14


@settings(max_examples=25, deadline=None)
@given(
    r1=st.integers(min_value=0, max_value=6),
    r2=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_rounded_addition(r1, r2, seed):
    """Rounded addition is within eps of the exact sum, rank <= r1 + r2."""
    a = _random_lowrank(18, 14, r1, seed=seed) if r1 else RkMatrix.zeros(18, 14)
    b = _random_lowrank(18, 14, r2, seed=seed + 1) if r2 else RkMatrix.zeros(18, 14)
    eps = 1e-8
    out = a.add(b, eps)
    exact = a.to_dense() + b.to_dense()
    assert out.rank <= r1 + r2
    assert np.linalg.norm(out.to_dense() - exact) <= eps * np.linalg.norm(exact) + 1e-12
