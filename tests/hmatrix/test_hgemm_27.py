"""Exhaustive H-GEMM format-configuration tests (Section II-B).

"In the case of H-GEMM, with 3 matrices involved and 3 possible formats for
each (low rank, full rank or subdivided), 27 different configurations
exist."  This module constructs operands of every format over a shared
cluster tree and checks ``C <- C - A @ B`` against the dense reference for
all 3 x 3 x 3 combinations.
"""

import numpy as np
import pytest

from repro.hmatrix import (
    BlockClusterTree,
    HMatrix,
    UpdateAccumulator,
    build_cluster_tree,
    hgemm,
)

N = 48
EPS = 1e-10
FORMATS = ("rk", "full", "h")


@pytest.fixture(scope="module")
def ct():
    # A 1-D point line gives a deterministic two-level cluster tree.
    pts = np.zeros((N, 3))
    pts[:, 0] = np.arange(N)
    return build_cluster_tree(pts, leaf_size=N // 4)


def _block_tree(ct, fmt: str) -> BlockClusterTree:
    """Single-leaf (rk/full) or one-level-subdivided block tree."""
    if fmt == "rk":
        return BlockClusterTree(rows=ct, cols=ct, admissible=True)
    if fmt == "full":
        return BlockClusterTree(rows=ct, cols=ct, admissible=False)
    node = BlockClusterTree(rows=ct, cols=ct, admissible=False)
    node.nrow_children = len(ct.children)
    node.ncol_children = len(ct.children)
    node.children = [
        BlockClusterTree(rows=r, cols=c, admissible=False)
        for r in ct.children
        for c in ct.children
    ]
    return node


def _lowrank_dense(seed: int) -> np.ndarray:
    """A numerically rank-5 matrix, so "rk" leaves represent it exactly."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((N, 5)) @ rng.standard_normal((5, N))


def _operand(ct, fmt: str, seed: int) -> tuple[HMatrix, np.ndarray]:
    dense = _lowrank_dense(seed)
    h = HMatrix.from_dense(dense, _block_tree(ct, fmt), eps=EPS)
    return h, dense


@pytest.mark.parametrize("fa", FORMATS)
@pytest.mark.parametrize("fb", FORMATS)
@pytest.mark.parametrize("fc", FORMATS)
def test_hgemm_configuration(ct, fa, fb, fc):
    a, da = _operand(ct, fa, seed=1)
    b, db = _operand(ct, fb, seed=2)
    c, dc = _operand(ct, fc, seed=3)
    assert a.kind == fa and b.kind == fb and c.kind == fc

    hgemm(c, a, b, eps=EPS, alpha=-1.0)
    ref = dc - da @ db
    err = np.linalg.norm(c.to_dense() - ref) / np.linalg.norm(ref)
    assert err < 1e-7, f"configuration (A={fa}, B={fb}, C={fc}) failed: {err:.2e}"


@pytest.mark.parametrize("fa", FORMATS)
@pytest.mark.parametrize("fb", FORMATS)
@pytest.mark.parametrize("fc", FORMATS)
def test_hgemm_configuration_accumulated(ct, fa, fb, fc):
    """All 27 configurations again through an UpdateAccumulator.

    Deferred roundings must land within the same eps accuracy class as the
    eager per-update roundings once the accumulator flushes.
    """
    a, da = _operand(ct, fa, seed=1)
    b, db = _operand(ct, fb, seed=2)
    c_eager, dc = _operand(ct, fc, seed=3)
    c_acc, _ = _operand(ct, fc, seed=3)

    hgemm(c_eager, a, b, eps=EPS, alpha=-1.0)
    with UpdateAccumulator(EPS) as acc:
        hgemm(c_acc, a, b, eps=EPS, alpha=-1.0, acc=acc)

    ref = dc - da @ db
    scale = np.linalg.norm(ref)
    err_acc = np.linalg.norm(c_acc.to_dense() - ref)
    gap = np.linalg.norm(c_acc.to_dense() - c_eager.to_dense())
    assert err_acc < 1e-7 * scale, f"(A={fa}, B={fb}, C={fc}): {err_acc / scale:.2e}"
    assert gap < 1e-7 * scale, f"(A={fa}, B={fb}, C={fc}): paths diverge {gap / scale:.2e}"


@pytest.mark.parametrize("fa", FORMATS)
@pytest.mark.parametrize("fb", FORMATS)
def test_hgemm_alpha_plus_one(ct, fa, fb):
    """The alpha=+1 path across all A/B formats (C fixed subdivided)."""
    a, da = _operand(ct, fa, seed=4)
    b, db = _operand(ct, fb, seed=5)
    c, dc = _operand(ct, "h", seed=6)
    hgemm(c, a, b, eps=EPS, alpha=1.0)
    ref = dc + da @ db
    assert np.linalg.norm(c.to_dense() - ref) < 1e-7 * np.linalg.norm(ref)


def test_hgemm_complex_mixed(ct):
    """One mixed-format complex configuration."""
    rng = np.random.default_rng(9)
    da = (rng.standard_normal((N, 4)) + 1j * rng.standard_normal((N, 4))) @ (
        rng.standard_normal((4, N)) + 1j * rng.standard_normal((4, N))
    )
    db = da.T.copy()
    dc = da @ db * 0.5
    a = HMatrix.from_dense(da, _block_tree(ct, "rk"), eps=EPS)
    b = HMatrix.from_dense(db, _block_tree(ct, "h"), eps=EPS)
    c = HMatrix.from_dense(dc, _block_tree(ct, "full"), eps=EPS)
    hgemm(c, a, b, eps=EPS, alpha=-1.0)
    ref = dc - da @ db
    assert np.linalg.norm(c.to_dense() - ref) < 1e-7 * np.linalg.norm(dc)
