"""Unit tests for H-matrix / Tile-H persistence."""

import numpy as np
import pytest

from repro.core import TileHConfig, TileHMatrix, tiled_getrf_tasks, tiled_solve
from repro.geometry import (
    assemble_dense,
    cylinder_cloud,
    helmholtz_kernel,
    laplace_kernel,
    make_kernel,
)
from repro.hmatrix import (
    AssemblyConfig,
    StrongAdmissibility,
    assemble_hmatrix,
    build_block_cluster_tree,
    build_cluster_tree,
    hgetrf,
    hlu_solve,
    load_hmatrix,
    load_tile_h,
    save_hmatrix,
    save_tile_h,
)

N = 400


@pytest.fixture(scope="module")
def hmat():
    pts = cylinder_cloud(N)
    kern = laplace_kernel(pts)
    ct = build_cluster_tree(pts, leaf_size=32)
    bt = build_block_cluster_tree(ct, ct, StrongAdmissibility())
    h = assemble_hmatrix(kern, pts, bt, AssemblyConfig(eps=1e-7))
    return pts, kern, ct, h


class TestSaveLoadHMatrix:
    def test_bitexact_roundtrip(self, hmat, tmp_path):
        _, _, ct, h = hmat
        p = save_hmatrix(h, ct, tmp_path / "h.npz")
        h2, ct2 = load_hmatrix(p)
        assert np.array_equal(h2.to_dense(), h.to_dense())
        assert np.array_equal(ct2.perm, ct.perm)

    def test_structure_preserved(self, hmat, tmp_path):
        _, _, ct, h = hmat
        h2, _ = load_hmatrix(save_hmatrix(h, ct, tmp_path / "h.npz"))
        assert h2.leaf_count() == h.leaf_count()
        assert h2.max_rank() == h.max_rank()
        assert h2.storage() == h.storage()
        assert h2.depth() == h.depth()

    def test_loaded_matrix_factorizes(self, hmat, tmp_path):
        pts, kern, ct, h = hmat
        h2, ct2 = load_hmatrix(save_hmatrix(h, ct, tmp_path / "h.npz"))
        dense = assemble_dense(kern, pts)[np.ix_(ct2.perm, ct2.perm)]
        hgetrf(h2, 1e-7)
        x0 = np.random.default_rng(0).standard_normal(N)
        x = hlu_solve(h2, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_complex_roundtrip(self, tmp_path):
        pts = cylinder_cloud(250)
        kern = helmholtz_kernel(pts)
        ct = build_cluster_tree(pts, leaf_size=24)
        bt = build_block_cluster_tree(ct, ct, StrongAdmissibility())
        h = assemble_hmatrix(kern, pts, bt, AssemblyConfig(eps=1e-6))
        h2, _ = load_hmatrix(save_hmatrix(h, ct, tmp_path / "hz.npz"))
        assert h2.dtype == np.complex128
        assert np.array_equal(h2.to_dense(), h.to_dense())

    def test_creates_parent_dirs(self, hmat, tmp_path):
        _, _, ct, h = hmat
        p = save_hmatrix(h, ct, tmp_path / "deep" / "dir" / "h.npz")
        assert p.exists()


class TestSaveLoadTileH:
    @pytest.fixture(scope="class")
    def tile_problem(self):
        pts = cylinder_cloud(N)
        kern = laplace_kernel(pts)
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32))
        dense = assemble_dense(kern, pts)
        return pts, kern, a, dense

    def test_bitexact_roundtrip(self, tile_problem, tmp_path):
        _, _, a, _ = tile_problem
        desc2 = load_tile_h(save_tile_h(a.desc, tmp_path / "t.npz"))
        assert np.array_equal(desc2.to_dense(), a.desc.to_dense())
        assert desc2.nt == a.nt
        assert desc2.nb == a.desc.nb
        assert desc2.eps == a.desc.eps
        assert np.array_equal(desc2.perm, a.desc.perm)

    def test_tile_formats_preserved(self, tile_problem, tmp_path):
        _, _, a, _ = tile_problem
        desc2 = load_tile_h(save_tile_h(a.desc, tmp_path / "t.npz"))
        assert desc2.format_counts() == a.desc.format_counts()

    def test_loaded_descriptor_solves(self, tile_problem, tmp_path):
        _, _, a, dense = tile_problem
        desc2 = load_tile_h(save_tile_h(a.desc, tmp_path / "t.npz"))
        tiled_getrf_tasks(desc2)
        x0 = np.random.default_rng(1).standard_normal(N)
        x = tiled_solve(desc2, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_tile_slices_preserved(self, tile_problem, tmp_path):
        _, _, a, _ = tile_problem
        desc2 = load_tile_h(save_tile_h(a.desc, tmp_path / "t.npz"))
        for i in range(a.nt):
            assert desc2.tile_slice(i) == a.desc.tile_slice(i)


class TestFactorizedPersistence:
    """Factorized archives reload to a bit-identically solvable matrix."""

    def _build(self, kernel_name, method="lu", n=N):
        pts = cylinder_cloud(n)
        kern = make_kernel(kernel_name, pts)
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32))
        a.factorize(method=method)
        return a

    @pytest.mark.parametrize("kernel_name", ["laplace", "helmholtz"])
    def test_lu_roundtrip_bitexact_solve(self, kernel_name, tmp_path):
        a = self._build(kernel_name)
        a.save(tmp_path / "f.npz")
        a2 = TileHMatrix.load(tmp_path / "f.npz")
        assert a2.factorized
        rng = np.random.default_rng(0)
        b = rng.standard_normal(N)
        if kernel_name == "helmholtz":
            b = b + 1j * rng.standard_normal(N)
        assert np.array_equal(a2.solve(b), a.solve(b))

    def test_cholesky_roundtrip_bitexact_solve(self, tmp_path):
        from repro.geometry import exponential_kernel

        pts = cylinder_cloud(N)
        a = TileHMatrix.build(
            exponential_kernel(pts), pts, TileHConfig(nb=100, eps=1e-8, leaf_size=32)
        )
        a.factorize(method="cholesky")
        a.save(tmp_path / "c.npz")
        a2 = TileHMatrix.load(tmp_path / "c.npz")
        b = np.random.default_rng(1).standard_normal(N)
        assert np.array_equal(a2.solve(b), a.solve(b))

    def test_panel_solve_bitexact_after_load(self, tmp_path):
        a = self._build("laplace")
        a.save(tmp_path / "f.npz")
        a2 = TileHMatrix.load(tmp_path / "f.npz")
        b = np.random.default_rng(2).standard_normal((N, 6))
        assert np.array_equal(a2.solve(b), a.solve(b))

    def test_meta_records_factorization(self, tmp_path):
        from repro.hmatrix import load_tile_h_meta

        a = self._build("laplace")
        a.save(tmp_path / "f.npz")
        meta = load_tile_h_meta(tmp_path / "f.npz")
        assert meta["factorized"] is True
        assert meta["method"] == "lu"
        assert meta["n"] == N
        assert meta["config"]["nb"] == 100

    def test_unfactorized_meta(self, tmp_path):
        pts = cylinder_cloud(N)
        a = TileHMatrix.build(
            laplace_kernel(pts), pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32)
        )
        a.save(tmp_path / "u.npz")
        from repro.hmatrix import load_tile_h_meta

        meta = load_tile_h_meta(tmp_path / "u.npz")
        assert meta["factorized"] is False
        assert meta["method"] is None
        a2 = TileHMatrix.load(tmp_path / "u.npz")
        assert not a2.factorized
        a2.factorize()
        a.factorize()
        b = np.random.default_rng(3).standard_normal(N)
        assert np.array_equal(a2.solve(b), a.solve(b))

    def test_config_restored(self, tmp_path):
        a = self._build("laplace")
        a.save(tmp_path / "f.npz")
        a2 = TileHMatrix.load(tmp_path / "f.npz")
        assert a2.config.nb == a.config.nb
        assert a2.config.eps == a.config.eps
        assert a2.config.leaf_size == a.config.leaf_size


class TestArchiveValidation:
    """Corrupt or mismatched archives fail loudly, not with numpy tracebacks."""

    def _archive(self, tmp_path):
        pts = cylinder_cloud(N)
        a = TileHMatrix.build(
            laplace_kernel(pts), pts, TileHConfig(nb=100, eps=1e-7, leaf_size=32)
        )
        p = tmp_path / "t.npz"
        save_tile_h(a.desc, p)
        return p

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_tile_h(tmp_path / "nope.npz")

    def test_truncated_file(self, tmp_path):
        p = self._archive(tmp_path)
        data = p.read_bytes()
        p.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="cannot read Tile-H archive"):
            load_tile_h(p)

    def test_not_an_archive(self, tmp_path):
        p = tmp_path / "junk.npz"
        p.write_bytes(b"this is not a zip file")
        with pytest.raises(ValueError, match="cannot read Tile-H archive"):
            load_tile_h(p)

    def test_missing_keys(self, tmp_path):
        p = tmp_path / "partial.npz"
        np.savez(p, n=np.int64(N))
        with pytest.raises(ValueError, match="missing keys"):
            load_tile_h(p)

    def test_missing_tile_payload(self, tmp_path):
        p = self._archive(tmp_path)
        data = dict(np.load(p, allow_pickle=False))
        victim = next(k for k in data if k.startswith("t0_0_"))
        del data[victim]
        np.savez(p, **data)
        with pytest.raises(ValueError):
            load_tile_h(p)

    def test_inconsistent_sizes(self, tmp_path):
        p = self._archive(tmp_path)
        data = dict(np.load(p, allow_pickle=False))
        data["perm"] = data["perm"][: len(data["perm"]) // 2]
        np.savez(p, **data)
        with pytest.raises(ValueError):
            load_tile_h(p)

    def test_wrong_meta_file(self, tmp_path):
        from repro.hmatrix import load_tile_h_meta

        p = tmp_path / "junk.npz"
        p.write_bytes(b"x" * 40)
        with pytest.raises(ValueError):
            load_tile_h_meta(p)
