"""Unit tests for the ACA compressors."""

import numpy as np
import pytest

from repro.geometry import cylinder_cloud, helmholtz_kernel, laplace_kernel
from repro.hmatrix import aca_full, aca_partial, compress_kernel_block


def _oracles(block):
    return (lambda i: block[i], lambda j: block[:, j])


def _smooth_block(m, n, seed=0):
    """A numerically low-rank block from a smooth kernel on separated sets."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(m, 3))
    y = rng.uniform(0, 1, size=(n, 3)) + np.array([5.0, 0, 0])
    d = np.linalg.norm(x[:, None] - y[None, :], axis=2)
    return 1.0 / d


class TestAcaPartial:
    @pytest.mark.parametrize("eps", [1e-3, 1e-6, 1e-9])
    def test_accuracy(self, eps):
        block = _smooth_block(60, 50)
        rk = aca_partial(*_oracles(block), 60, 50, eps)
        err = np.linalg.norm(rk.to_dense() - block) / np.linalg.norm(block)
        assert err <= 10 * eps

    def test_exact_lowrank_recovery(self):
        rng = np.random.default_rng(3)
        block = rng.standard_normal((40, 5)) @ rng.standard_normal((5, 30))
        rk = aca_partial(*_oracles(block), 40, 30, 1e-12)
        assert rk.rank == 5
        assert np.allclose(rk.to_dense(), block, atol=1e-9)

    def test_zero_block(self):
        block = np.zeros((10, 12))
        rk = aca_partial(*_oracles(block), 10, 12, 1e-6)
        assert rk.rank == 0

    def test_complex_block(self):
        block = _smooth_block(50, 40) * np.exp(1j * _smooth_block(50, 40, seed=1))
        rk = aca_partial(*_oracles(block), 50, 40, 1e-8)
        err = np.linalg.norm(rk.to_dense() - block) / np.linalg.norm(block)
        assert err <= 1e-6
        assert rk.dtype == np.complex128

    def test_max_rank_cap(self):
        block = _smooth_block(40, 40)
        rk = aca_partial(*_oracles(block), 40, 40, 1e-14, max_rank=3)
        assert rk.rank <= 3

    def test_no_recompress_keeps_crosses(self):
        block = _smooth_block(30, 30)
        raw = aca_partial(*_oracles(block), 30, 30, 1e-6, recompress=False)
        rec = aca_partial(*_oracles(block), 30, 30, 1e-6, recompress=True)
        assert rec.rank <= raw.rank

    def test_rank_one_block(self):
        u = np.arange(1.0, 9.0)[:, None]
        v = np.arange(1.0, 6.0)[None, :]
        block = u @ v
        rk = aca_partial(*_oracles(block), 8, 5, 1e-12)
        assert rk.rank == 1
        assert np.allclose(rk.to_dense(), block)

    def test_structured_grid_no_stall(self):
        # The regression this guards: partial pivoting stalling on the
        # cylinder's structured mesh while untouched rows still carry error.
        pts = cylinder_cloud(800)
        kern = laplace_kernel(pts)
        rows, cols = pts[:200], pts[-200:]
        block = kern(rows, cols)
        rk = aca_partial(*_oracles(block), 200, 200, 1e-6)
        err = np.linalg.norm(rk.to_dense() - block) / np.linalg.norm(block)
        assert err <= 1e-5

    def test_validation(self):
        block = np.zeros((3, 3))
        with pytest.raises(ValueError):
            aca_partial(*_oracles(block), 0, 3, 1e-6)
        with pytest.raises(ValueError):
            aca_partial(*_oracles(block), 3, 3, -1.0)


class TestAcaFull:
    def test_accuracy(self):
        block = _smooth_block(45, 35)
        rk = aca_full(block, 1e-8)
        assert np.linalg.norm(rk.to_dense() - block) <= 1e-7 * np.linalg.norm(block)

    def test_zero(self):
        assert aca_full(np.zeros((5, 5)), 1e-6).rank == 0

    def test_max_rank(self):
        assert aca_full(_smooth_block(30, 30), 1e-14, max_rank=2).rank <= 2

    def test_agrees_with_partial(self):
        block = _smooth_block(50, 50, seed=7)
        rk_p = aca_partial(*_oracles(block), 50, 50, 1e-8)
        rk_f = aca_full(block, 1e-8)
        assert np.allclose(rk_p.to_dense(), rk_f.to_dense(), atol=1e-6)


class TestCompressKernelBlock:
    @pytest.fixture(scope="class")
    def geom(self):
        pts = cylinder_cloud(600)
        return pts, laplace_kernel(pts), helmholtz_kernel(pts)

    @pytest.mark.parametrize("method", ["aca", "svd", "aca_full"])
    def test_methods_agree(self, geom, method):
        pts, kd, _ = geom
        rows, cols = pts[:100], pts[-100:]
        ref = kd(rows, cols)
        rk = compress_kernel_block(kd, rows, cols, 1e-6, method=method)
        err = np.linalg.norm(rk.to_dense() - ref) / np.linalg.norm(ref)
        assert err <= 1e-5

    def test_complex_kernel(self, geom):
        pts, _, kz = geom
        rows, cols = pts[:80], pts[-120:]
        ref = kz(rows, cols)
        rk = compress_kernel_block(kz, rows, cols, 1e-5)
        assert np.linalg.norm(rk.to_dense() - ref) <= 1e-4 * np.linalg.norm(ref)

    def test_helmholtz_rank_exceeds_laplace(self, geom):
        # The paper's key workload asymmetry: oscillatory kernels carry
        # higher ranks at equal accuracy.
        pts, kd, kz = geom
        rows, cols = pts[:150], pts[-150:]
        rk_d = compress_kernel_block(kd, rows, cols, 1e-6)
        rk_z = compress_kernel_block(kz, rows, cols, 1e-6)
        assert rk_z.rank > rk_d.rank

    def test_unknown_method(self, geom):
        pts, kd, _ = geom
        with pytest.raises(ValueError):
            compress_kernel_block(kd, pts[:5], pts[:5], 1e-4, method="magic")
