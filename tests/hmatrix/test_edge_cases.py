"""Edge-case and error-path tests for the hmatrix substrate."""

import numpy as np
import pytest

from repro.geometry import cylinder_cloud, laplace_kernel
from repro.hmatrix import (
    AssemblyConfig,
    BlockClusterTree,
    HMatrix,
    RkMatrix,
    StrongAdmissibility,
    aca_partial,
    assemble_hmatrix,
    build_block_cluster_tree,
    build_cluster_tree,
    hgetrf,
    htrsm,
)
from repro.hmatrix.arithmetic import (
    h_rmatvec,
    solve_lower_panel,
    solve_upper_panel,
)


@pytest.fixture(scope="module")
def small():
    pts = cylinder_cloud(160)
    ct = build_cluster_tree(pts, leaf_size=16)
    bt = build_block_cluster_tree(ct, ct, StrongAdmissibility())
    kern = laplace_kernel(pts)
    h = assemble_hmatrix(kern, pts, bt, AssemblyConfig(eps=1e-8))
    return pts, ct, bt, h


class TestHMatrixConstructorEdges:
    def test_two_payloads_rejected(self, small):
        _, ct, *_ = small
        n = ct.size
        with pytest.raises(ValueError):
            HMatrix(ct, ct, full=np.zeros((n, n)), rk=RkMatrix.zeros(n, n))

    def test_children_grid_mismatch(self, small):
        _, ct, _, h = small
        with pytest.raises(ValueError):
            HMatrix(ct, ct, children=list(h.children), nrow_children=3, ncol_children=3)

    def test_rk_shape_mismatch(self, small):
        _, ct, *_ = small
        with pytest.raises(ValueError):
            HMatrix(ct, ct, rk=RkMatrix.zeros(3, 3))

    def test_leaf_child_access_raises(self, small):
        *_, h = small
        leaf = next(iter(h.leaves()))
        with pytest.raises(IndexError):
            leaf.child(0, 0)


class TestPanelSolveErrorPaths:
    def test_rk_diagonal_rejected(self, small):
        *_, h = small
        # Fabricate an (invalid) rk diagonal node and check the guard fires.
        off = h.child(0, 1)
        rk_node = HMatrix(off.rows, off.rows, rk=RkMatrix.zeros(off.shape[0], off.shape[0]))
        with pytest.raises(ValueError, match="low-rank"):
            solve_lower_panel(rk_node, np.zeros((off.shape[0], 1)))
        with pytest.raises(ValueError, match="low-rank"):
            solve_upper_panel(rk_node, np.zeros((off.shape[0], 1)))

    def test_h_rmatvec_dim_check(self, small):
        *_, h = small
        with pytest.raises(ValueError):
            h_rmatvec(h, np.zeros(3))


class TestHgetrfEdges:
    def test_rk_diagonal_rejected(self, small):
        *_, h = small
        off = h.child(0, 1)
        rk_node = HMatrix(off.rows, off.rows, rk=RkMatrix.zeros(off.shape[0], off.shape[0]))
        with pytest.raises(ValueError, match="low-rank"):
            hgetrf(rk_node, 1e-6)

    def test_trsm_dimension_mismatch(self, small):
        *_, h = small
        lu = h.child(0, 0).copy()
        hgetrf(lu, 1e-8)
        with pytest.raises(ValueError):
            htrsm("left", "lower", lu, h, 1e-8, unit_diagonal=True)


class TestAcaEdges:
    def test_grace_zero_can_stop_early(self):
        rng = np.random.default_rng(0)
        block = rng.standard_normal((30, 4)) @ rng.standard_normal((4, 30))
        rk = aca_partial(
            lambda i: block[i], lambda j: block[:, j], 30, 30, 1e-6, grace=1
        )
        # grace=1 with residual verification still converges on easy blocks.
        assert np.linalg.norm(rk.to_dense() - block) <= 1e-4 * np.linalg.norm(block)

    def test_rank_one_column_block(self):
        # Degenerate shapes: a single column.
        col = np.arange(1.0, 21.0)[:, None]
        rk = aca_partial(lambda i: col[i], lambda j: col[:, j], 20, 1, 1e-10)
        assert rk.rank == 1
        assert np.allclose(rk.to_dense(), col)

    def test_single_row_block(self):
        row = np.arange(1.0, 16.0)[None, :]
        rk = aca_partial(lambda i: row[i], lambda j: row[:, j], 1, 15, 1e-10)
        assert np.allclose(rk.to_dense(), row)


class TestBlockClusterEdges:
    def test_manual_leaf_node(self, small):
        _, ct, *_ = small
        node = BlockClusterTree(rows=ct, cols=ct, admissible=True)
        assert node.is_leaf
        assert node.depth() == 0
        assert list(node.leaves()) == [node]

    def test_depth_positive_for_split(self, small):
        _, _, bt, _ = small
        assert bt.depth() >= 1
        assert len(list(bt.nodes())) >= len(list(bt.leaves()))


class TestRkEdgeCases:
    def test_rank_zero_norm_and_scale(self):
        z = RkMatrix.zeros(4, 5)
        assert z.norm_fro() == 0.0
        assert z.scale(3.0).rank == 0
        assert z.transpose().shape == (5, 4)

    def test_truncate_rank_zero(self):
        z = RkMatrix.zeros(4, 5)
        assert z.truncate(1e-6).rank == 0

    def test_add_promotes_dtype(self):
        a = RkMatrix(np.ones((3, 1)), np.ones((3, 1)))
        b = RkMatrix(1j * np.ones((3, 1), dtype=complex), np.ones((3, 1), dtype=complex))
        out = a.add(b, eps=1e-12)
        assert out.dtype == np.complex128
        assert np.allclose(out.to_dense(), (1 + 1j) * np.ones((3, 3)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            RkMatrix(np.zeros(3), np.zeros(3))
