"""Unit tests for H-Cholesky (hpotrf / hchol_solve / transpose support)."""

import numpy as np
import pytest

from repro.geometry import assemble_dense, exponential_kernel, gravity_kernel, plate_cloud
from repro.hmatrix import (
    AssemblyConfig,
    StrongAdmissibility,
    assemble_hmatrix,
    build_block_cluster_tree,
    build_cluster_tree,
    hchol_solve,
    hgemm_transb,
    hpotrf,
)

N = 500
EPS = 1e-8


@pytest.fixture(scope="module")
def spd():
    pts = plate_cloud(N)
    kern = exponential_kernel(pts, length=0.7)
    ct = build_cluster_tree(pts, leaf_size=32)
    bt = build_block_cluster_tree(ct, ct, StrongAdmissibility())
    h = assemble_hmatrix(kern, pts, bt, AssemblyConfig(eps=EPS))
    dense = assemble_dense(kern, pts)[np.ix_(ct.perm, ct.perm)]
    return pts, ct, h, dense


class TestTranspose:
    def test_dense_match(self, spd):
        *_, h, dense = spd
        assert np.allclose(h.transpose().to_dense(), dense.T, atol=1e-6)

    def test_double_transpose_identity(self, spd):
        *_, h, _ = spd
        assert np.allclose(h.transpose().transpose().to_dense(), h.to_dense())

    def test_transpose_structure(self, spd):
        *_, h, _ = spd
        t = h.transpose()
        assert t.shape == (h.shape[1], h.shape[0])
        assert t.nrow_children == h.ncol_children
        assert len(list(t.leaves())) == len(list(h.leaves()))

    def test_transpose_rectangular(self, spd):
        *_, h, dense = spd
        b01 = h.child(0, 1)
        m = h.child(0, 0).shape[0]
        assert np.allclose(
            b01.transpose().to_dense(), dense[:m, m:].T, atol=1e-6
        )


class TestHgemmTransb:
    def test_matches_dense(self, spd):
        *_, h, dense = spd
        c = h.copy()
        hgemm_transb(c, h, h, eps=1e-10, alpha=-1.0)
        ref = dense - dense @ dense.T
        err = np.linalg.norm(c.to_dense() - ref) / np.linalg.norm(ref)
        assert err < 1e-5


class TestHpotrf:
    def test_reconstruction(self, spd):
        *_, h, dense = spd
        hl = h.copy()
        hpotrf(hl, eps=1e-10)
        l = np.tril(hl.to_dense())
        assert np.linalg.norm(l @ l.T - dense) <= 1e-5 * np.linalg.norm(dense)

    def test_solve(self, spd):
        *_, h, dense = spd
        hl = h.copy()
        hpotrf(hl, eps=1e-10)
        x0 = np.random.default_rng(0).standard_normal(N)
        x = hchol_solve(hl, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-5 * np.linalg.norm(x0)

    def test_solve_panel(self, spd):
        *_, h, dense = spd
        hl = h.copy()
        hpotrf(hl, eps=1e-10)
        x0 = np.random.default_rng(1).standard_normal((N, 3))
        x = hchol_solve(hl, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-5 * np.linalg.norm(x0)

    def test_gravity_kernel_spd(self):
        # A second smooth SPD kernel exercises different ranks.
        pts = plate_cloud(300)
        kern = gravity_kernel(pts)
        ct = build_cluster_tree(pts, leaf_size=24)
        bt = build_block_cluster_tree(ct, ct, StrongAdmissibility())
        h = assemble_hmatrix(kern, pts, bt, AssemblyConfig(eps=1e-9))
        dense = assemble_dense(kern, pts)[np.ix_(ct.perm, ct.perm)]
        hpotrf(h, eps=1e-10)
        x0 = np.random.default_rng(2).standard_normal(300)
        x = hchol_solve(h, dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-5 * np.linalg.norm(x0)

    def test_non_square_rejected(self, spd):
        *_, h, _ = spd
        with pytest.raises(ValueError):
            hpotrf(h.child(0, 1), eps=1e-8)

    def test_not_spd_raises(self, spd):
        pts, ct, *_ = spd
        # An indefinite matrix: assemble, then flip the sign of a diagonal
        # leaf.
        h2 = spd[2].copy()
        leaf = next(l for l in h2.leaves() if l.full is not None)
        leaf.full[:] = -leaf.full
        with pytest.raises(np.linalg.LinAlgError):
            hpotrf(h2, eps=1e-8)

    def test_rhs_dim_check(self, spd):
        *_, h, _ = spd
        hl = h.copy()
        hpotrf(hl, eps=1e-10)
        with pytest.raises(ValueError):
            hchol_solve(hl, np.zeros(N + 1))
