"""Unit tests for the tile-size advisor."""

import pytest

from repro.analysis import TileSizeAdvice, advise_tile_size
from repro.geometry import cylinder_cloud, helmholtz_kernel, laplace_kernel


@pytest.fixture(scope="module")
def geom():
    pts = cylinder_cloud(1200)
    return pts, laplace_kernel(pts)


class TestAdviseTileSize:
    def test_returns_best_and_all(self, geom):
        pts, kern = geom
        best, advices = advise_tile_size(kern, pts, nworkers=16, candidates=[100, 300, 600])
        assert isinstance(best, TileSizeAdvice)
        assert len(advices) == 3
        assert best in advices
        assert best.est_seconds == min(a.est_seconds for a in advices)

    def test_estimates_positive_and_coherent(self, geom):
        pts, kern = geom
        _, advices = advise_tile_size(kern, pts, nworkers=8, candidates=[150, 400])
        for a in advices:
            assert a.nt == -(-1200 // a.nb)
            assert 0 < a.est_compression <= 1.5
            assert a.est_total_flops > a.est_critical_flops > 0
            assert a.est_seconds > 0

    def test_many_workers_prefer_smaller_tiles(self, geom):
        # More workers shift the optimum toward smaller NB (more tasks).
        pts, kern = geom
        best_serial, _ = advise_tile_size(kern, pts, nworkers=1, candidates=[100, 600])
        best_wide, _ = advise_tile_size(kern, pts, nworkers=64, candidates=[100, 600])
        assert best_wide.nb <= best_serial.nb

    def test_default_candidates(self, geom):
        pts, kern = geom
        best, advices = advise_tile_size(kern, pts, nworkers=8)
        assert len(advices) >= 3
        assert 32 <= best.nb <= 1200

    def test_complex_kernel(self):
        pts = cylinder_cloud(800)
        kern = helmholtz_kernel(pts)
        best, _ = advise_tile_size(kern, pts, nworkers=8, candidates=[200, 400])
        assert best.est_seconds > 0

    def test_validation(self, geom):
        pts, kern = geom
        with pytest.raises(ValueError):
            advise_tile_size(kern, pts[:1], nworkers=4)
        with pytest.raises(ValueError):
            advise_tile_size(kern, pts, nworkers=0)
        with pytest.raises(ValueError):
            advise_tile_size(kern, pts, nworkers=4, candidates=[])

    def test_advice_matches_reality_ordering(self, geom):
        """The advisor's preference agrees with an actual measured run on a
        decisive A/B pair (pathologically small vs sane tiles).

        The overhead/throughput knobs are calibrated to this substrate
        (Python dispatch ~2e-4 s/task, BLAS ~2.7 GF/s); on the paper's
        testbed one would pass StarPU/MKL numbers instead.
        """
        pts, kern = geom
        from repro.core import TileHConfig, TileHMatrix
        from repro.analysis.experiments import PAPER_EQUIVALENT_OVERHEADS

        candidates = [40, 300]
        _, advices = advise_tile_size(
            kern,
            pts,
            nworkers=35,
            candidates=candidates,
            per_task_overhead=2e-4,
            flops_per_second=2.7e9,
        )
        est = {a.nb: a.est_seconds for a in advices}

        measured = {}
        for nb in candidates:
            a = TileHMatrix.build(kern, pts, TileHConfig(nb=nb, eps=1e-4, leaf_size=50))
            info = a.factorize()
            measured[nb] = info.simulate(
                35, "prio", overheads=PAPER_EQUIVALENT_OVERHEADS
            ).makespan
        est_order = sorted(candidates, key=est.get)
        measured_order = sorted(candidates, key=measured.get)
        assert est_order == measured_order
