"""Unit tests for the experiment drivers (small sizes, full code paths)."""

import pytest

from repro.analysis import (
    AccuracyRow,
    CompressionRow,
    ExperimentScale,
    ParallelRow,
    paper_nb,
    run_accuracy_experiment,
    run_compression_experiment,
    run_parallel_experiment,
    series_by,
)
from repro.runtime import RuntimeOverheadModel


class TestExperimentScale:
    def test_default_factor(self):
        s = ExperimentScale()
        assert s.n(10_000) == 1000
        assert s.nb(500) == 50

    def test_floors(self):
        s = ExperimentScale(factor=0.001)
        assert s.n(10_000) == 64
        assert s.nb(250) == 16

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert ExperimentScale.from_env().factor == 0.05

    def test_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert ExperimentScale.from_env().factor == 0.1

    def test_from_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(ValueError):
            ExperimentScale.from_env()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            ExperimentScale.from_env()


class TestPaperNb:
    def test_caption_values(self):
        assert paper_nb(10_000, "d") == 250
        assert paper_nb(10_000, "z") == 500
        assert paper_nb(200_000, "z") == 4000

    def test_unknown(self):
        with pytest.raises(ValueError):
            paper_nb(12_345, "d")


class TestCompressionExperiment:
    def test_rows_and_flat_hmat_line(self):
        rows = run_compression_experiment("d", [400], [100, 200], eps=1e-4, leaf_size=32)
        assert all(isinstance(r, CompressionRow) for r in rows)
        hm = [r.ratio for r in rows if r.version == "hmat-oss"]
        assert len(set(hm)) == 1  # constant across NB
        hc = [r for r in rows if r.version == "h-chameleon"]
        assert len(hc) == 2
        assert all(0 < r.ratio <= 1.5 for r in rows)

    def test_nb_larger_than_n_skipped(self):
        rows = run_compression_experiment("d", [300], [100, 400], eps=1e-4, leaf_size=32)
        assert {r.nb for r in rows} == {100}

    def test_complex_precision(self):
        rows = run_compression_experiment("z", [300], [100], eps=1e-3, leaf_size=32)
        assert all(r.precision == "z" for r in rows)

    def test_bad_precision(self):
        with pytest.raises(ValueError):
            run_compression_experiment("x", [300], [100])


class TestAccuracyExperiment:
    def test_error_tracks_eps(self):
        rows = run_accuracy_experiment("d", [400], [100], eps=1e-4, leaf_size=32)
        assert all(isinstance(r, AccuracyRow) for r in rows)
        for r in rows:
            assert r.fwd_error < 1e-2  # same magnitude order as eps

    def test_both_versions_present(self):
        rows = run_accuracy_experiment("d", [400], [100, 200], eps=1e-4, leaf_size=32)
        versions = {r.version for r in rows}
        assert versions == {"h-chameleon", "hmat-oss"}


class TestParallelExperiment:
    def test_rows_complete(self):
        rows = run_parallel_experiment(
            "d",
            400,
            100,
            eps=1e-4,
            leaf_size=32,
            threads=(1, 4),
            schedulers=("ws", "prio"),
            overheads=RuntimeOverheadModel.zero(),
        )
        assert all(isinstance(r, ParallelRow) for r in rows)
        versions = {r.version for r in rows}
        assert versions == {"ws", "prio", "hmat"}
        series = series_by(rows, "version", "threads", "seconds")
        for pts in series.values():
            assert [t for t, _ in pts] == [1, 4]

    def test_parallel_speedup_observed(self):
        rows = run_parallel_experiment(
            "d",
            600,
            75,
            eps=1e-4,
            leaf_size=32,
            threads=(1, 8),
            schedulers=("prio",),
            overheads=RuntimeOverheadModel.zero(),
        )
        series = series_by(rows, "version", "threads", "seconds")
        t1 = dict(series["prio"])[1]
        t8 = dict(series["prio"])[8]
        assert t8 < t1

    def test_worker_cap_at_35(self):
        rows = run_parallel_experiment(
            "d",
            300,
            100,
            eps=1e-3,
            leaf_size=32,
            threads=(36,),
            schedulers=("prio",),
            overheads=RuntimeOverheadModel.zero(),
        )
        # The row is labelled 36 threads (the x-axis point) even though only
        # 35 workers execute; this just checks the point exists.
        assert any(r.threads == 36 for r in rows)
