"""Additional property-based tests: accumulation and clustering invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hmatrix import RkMatrix, ntiles_recursive


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    terms=st.integers(min_value=2, max_value=8),
    rank=st.integers(min_value=1, max_value=4),
)
def test_property_repeated_rounded_addition_error_accumulates_linearly(seed, terms, rank):
    """Summing k Rk terms with per-add rounding stays within ~k*eps of exact.

    This is the invariant the trailing Schur updates of the H-LU rely on:
    truncation errors accumulate additively, not multiplicatively.
    """
    eps = 1e-8
    rng = np.random.default_rng(seed)
    m, n = 24, 20
    parts = [
        RkMatrix(rng.standard_normal((m, rank)), rng.standard_normal((n, rank)))
        for _ in range(terms)
    ]
    acc = RkMatrix.zeros(m, n)
    exact = np.zeros((m, n))
    for p in parts:
        acc = acc.add(p, eps)
        exact += p.to_dense()
    err = np.linalg.norm(acc.to_dense() - exact)
    scale = max(np.linalg.norm(exact), max(np.linalg.norm(p.to_dense()) for p in parts))
    assert err <= 4 * terms * eps * scale + 1e-12


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=300),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_ntiles_nb_one_gives_singletons(n, seed):
    """NB = 1 degenerates to one cluster per point, still a permutation."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(-1, 1, size=(n, 3))
    root, tiles = ntiles_recursive(pts, 1)
    assert len(tiles) == n
    assert all(t.size == 1 for t in tiles)
    assert np.array_equal(np.sort(root.perm), np.arange(n))


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=1, max_value=25),
    n=st.integers(min_value=1, max_value=25),
)
def test_property_rsvd_matches_svd_storage(seed, m, n):
    """Randomized compression never stores (much) more than the SVD optimum."""
    from repro.hmatrix import compress_dense, compress_dense_rsvd

    rng = np.random.default_rng(seed)
    r = min(m, n, 4)
    a = rng.standard_normal((m, r)) @ rng.standard_normal((r, n))
    opt = compress_dense(a, 1e-8)
    rnd = compress_dense_rsvd(a, 1e-8)
    assert rnd.rank <= opt.rank + 2
    assert np.linalg.norm(rnd.to_dense() - a) <= 1e-6 * max(np.linalg.norm(a), 1e-12)
