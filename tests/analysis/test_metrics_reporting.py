"""Unit tests for analysis metrics and reporting."""

import numpy as np
import pytest

from repro.analysis import (
    forward_error,
    format_table,
    parallel_efficiency,
    relative_residual,
    series_by,
    speedup_curve,
    write_csv,
)


class TestForwardError:
    def test_zero_for_exact(self):
        x = np.arange(5.0)
        assert forward_error(x, x) == 0.0

    def test_relative(self):
        assert forward_error(np.array([1.1]), np.array([1.0])) == pytest.approx(0.1)

    def test_zero_reference(self):
        assert forward_error(np.array([0.5]), np.zeros(1)) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            forward_error(np.zeros(3), np.zeros(4))

    def test_complex(self):
        x = np.array([1.0 + 1j])
        assert forward_error(x * 1.01, x) == pytest.approx(0.01, rel=1e-6)


class TestRelativeResidual:
    def test_exact_solution(self):
        a = np.diag([2.0, 3.0])
        x = np.array([1.0, 1.0])
        b = a @ x
        assert relative_residual(lambda v: a @ v, x, b) == 0.0

    def test_nonzero(self):
        a = np.eye(2)
        res = relative_residual(lambda v: a @ v, np.array([1.0, 0.0]), np.array([0.0, 0.0]))
        assert res == 1.0


class TestSpeedupCurves:
    def test_speedup(self):
        s = speedup_curve({1: 10.0, 2: 5.0, 4: 2.5})
        assert s == {1: 1.0, 2: 2.0, 4: 4.0}

    def test_efficiency(self):
        e = parallel_efficiency({1: 10.0, 2: 5.0, 4: 5.0})
        assert e[2] == pytest.approx(1.0)
        assert e[4] == pytest.approx(0.5)

    def test_needs_serial_reference(self):
        with pytest.raises(ValueError):
            speedup_curve({2: 5.0})


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # aligned

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_scientific_formatting(self):
        out = format_table(["v"], [[1.23e-8]])
        assert "1.230e-08" in out

    def test_row_width_check(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        p = write_csv(tmp_path / "sub" / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        text = p.read_text().strip().splitlines()
        assert text[0] == "a,b"
        assert text[1:] == ["1,2", "3,4"]


class TestSeriesBy:
    def test_grouping_and_sorting(self):
        rows = [
            {"k": "x", "t": 2, "v": 20},
            {"k": "x", "t": 1, "v": 10},
            {"k": "y", "t": 1, "v": 5},
        ]
        s = series_by(rows, lambda r: r["k"], lambda r: r["t"], lambda r: r["v"])
        assert s == {"x": [(1, 10), (2, 20)], "y": [(1, 5)]}

    def test_attribute_access(self):
        from repro.analysis import ParallelRow

        rows = [
            ParallelRow("ws", "d", 100, 10, 2, 0.5),
            ParallelRow("ws", "d", 100, 10, 1, 1.0),
        ]
        s = series_by(rows, "version", "threads", "seconds")
        assert s == {"ws": [(1, 1.0), (2, 0.5)]}
