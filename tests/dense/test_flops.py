"""Unit tests for the analytic flop formulas."""

import pytest

from repro.dense import flops_gemm, flops_getrf, flops_rk_gemm, flops_trsm, flops_truncation
from repro.dense.flops import complex_factor, flops_qr, flops_svd


class TestFlopFormulas:
    def test_getrf_leading_term(self):
        # (2/3) n^3 dominates for large n.
        n = 4096
        assert flops_getrf(n) == pytest.approx(2 / 3 * n**3, rel=1e-3)

    def test_complex_is_4x(self):
        assert flops_getrf(100, is_complex=True) == 4 * flops_getrf(100)
        assert flops_gemm(10, 20, 30, is_complex=True) == 4 * flops_gemm(10, 20, 30)

    def test_gemm(self):
        assert flops_gemm(2, 3, 4) == 48.0

    def test_trsm(self):
        assert flops_trsm(10, 5) == 500.0

    def test_qr_square(self):
        n = 100
        assert flops_qr(n, n) == pytest.approx(4 / 3 * n**3, rel=1e-9)

    def test_svd_orientation_invariant(self):
        assert flops_svd(100, 30) == flops_svd(30, 100)

    def test_rk_gemm_zero_rank(self):
        assert flops_rk_gemm(10, 10, 10, 0, 0) == 0.0

    def test_rk_gemm_monotone_in_rank(self):
        lo = flops_rk_gemm(100, 100, 100, 5, 5)
        hi = flops_rk_gemm(100, 100, 100, 10, 10)
        assert hi > lo > 0

    def test_truncation_zero_rank(self):
        assert flops_truncation(50, 50, 0) == 0.0

    def test_truncation_positive(self):
        assert flops_truncation(200, 100, 8) > 0

    def test_complex_factor(self):
        assert complex_factor(False) == 1.0
        assert complex_factor(True) == 4.0

    def test_all_nonnegative_small_sizes(self):
        for n in (1, 2, 3):
            assert flops_getrf(n) > 0
            assert flops_trsm(n, n) > 0
            assert flops_gemm(n, n, n) > 0
