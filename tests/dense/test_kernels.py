"""Unit tests for the dense unpivoted LU / TRSM / GEMM kernels."""

import numpy as np
import pytest

from repro.dense import (
    SingularTileError,
    gemm_update,
    getrf_nopiv,
    lu_solve_nopiv,
    split_lu,
    trsm,
)


def _spd_like(n, dtype=np.float64, seed=0):
    """Random diagonally dominant matrix (safe for unpivoted LU)."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)).astype(dtype)
    if np.issubdtype(dtype, np.complexfloating):
        a = a + 1j * rng.standard_normal((n, n))
    a += n * np.eye(n, dtype=dtype)
    return a


class TestGetrfNopiv:
    @pytest.mark.parametrize("n", [1, 2, 7, 63, 64, 65, 200, 257])
    def test_reconstruction_real(self, n):
        a = _spd_like(n)
        lu = getrf_nopiv(a.copy())
        l, u = split_lu(lu)
        assert np.allclose(l @ u, a, atol=1e-10 * n)

    @pytest.mark.parametrize("n", [5, 130])
    def test_reconstruction_complex(self, n):
        a = _spd_like(n, dtype=np.complex128)
        lu = getrf_nopiv(a.copy())
        l, u = split_lu(lu)
        assert np.allclose(l @ u, a, atol=1e-10 * n)

    def test_matches_scipy_on_no_pivot_case(self):
        # For a diagonally dominant ordered matrix scipy's pivoted LU picks the
        # identity permutation, so factors must coincide.
        import scipy.linalg as sla

        a = np.diag(np.arange(10, 0, -1.0)) + 0.01 * np.ones((10, 10))
        lu_ref, piv = sla.lu_factor(a)
        assert np.array_equal(piv, np.arange(10))
        lu = getrf_nopiv(a.copy())
        assert np.allclose(lu, lu_ref)

    def test_in_place(self):
        a = _spd_like(32)
        out = getrf_nopiv(a, overwrite=True)
        assert out is a  # same buffer

    def test_copy_mode(self):
        a = _spd_like(32)
        backup = a.copy()
        out = getrf_nopiv(a, overwrite=False)
        assert np.array_equal(a, backup)
        assert out is not a

    def test_zero_pivot_raises(self):
        a = np.ones((4, 4))  # singular: second pivot exactly 0
        with pytest.raises(SingularTileError):
            getrf_nopiv(a)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            getrf_nopiv(np.zeros((3, 4)))

    def test_empty(self):
        out = getrf_nopiv(np.zeros((0, 0)))
        assert out.shape == (0, 0)


class TestLuSolve:
    @pytest.mark.parametrize("dtype", [np.float64, np.complex128])
    def test_solve_vector(self, dtype):
        a = _spd_like(80, dtype=dtype)
        x0 = np.arange(1, 81).astype(dtype)
        lu = getrf_nopiv(a.copy())
        x = lu_solve_nopiv(lu, a @ x0)
        assert np.allclose(x, x0)

    def test_solve_panel(self):
        a = _spd_like(50)
        b = np.random.default_rng(3).standard_normal((50, 6))
        lu = getrf_nopiv(a.copy())
        x = lu_solve_nopiv(lu, b)
        assert np.allclose(a @ x, b)


class TestTrsm:
    @pytest.fixture()
    def lfac(self):
        a = _spd_like(40)
        l, u = split_lu(getrf_nopiv(a.copy()))
        return l, u

    def test_left_lower_unit(self, lfac):
        l, _ = lfac
        b = np.random.default_rng(0).standard_normal((40, 3))
        x = trsm("left", "lower", l, b, unit_diagonal=True)
        assert np.allclose(l @ x, b)

    def test_left_upper(self, lfac):
        _, u = lfac
        b = np.random.default_rng(1).standard_normal((40, 3))
        x = trsm("left", "upper", u, b)
        assert np.allclose(u @ x, b)

    def test_right_upper(self, lfac):
        _, u = lfac
        b = np.random.default_rng(2).standard_normal((3, 40))
        x = trsm("right", "upper", u, b)
        assert np.allclose(x @ u, b)

    def test_right_lower_unit(self, lfac):
        l, _ = lfac
        b = np.random.default_rng(3).standard_normal((3, 40))
        x = trsm("right", "lower", l, b, unit_diagonal=True)
        assert np.allclose(x @ l, b)

    def test_right_complex(self):
        a = _spd_like(30, dtype=np.complex128)
        _, u = split_lu(getrf_nopiv(a.copy()))
        rng = np.random.default_rng(4)
        b = rng.standard_normal((5, 30)) + 1j * rng.standard_normal((5, 30))
        x = trsm("right", "upper", u, b)
        assert np.allclose(x @ u, b)

    def test_vector_rhs_keeps_shape(self, lfac):
        l, _ = lfac
        b = np.random.default_rng(5).standard_normal(40)
        x = trsm("left", "lower", l, b, unit_diagonal=True)
        assert x.shape == (40,)

    def test_overwrite(self, lfac):
        l, _ = lfac
        b = np.random.default_rng(6).standard_normal((40, 2))
        ref = trsm("left", "lower", l, b, unit_diagonal=True)
        out = trsm("left", "lower", l, b, unit_diagonal=True, overwrite=True)
        assert out is b and np.allclose(b, ref)

    def test_bad_args(self, lfac):
        l, _ = lfac
        with pytest.raises(ValueError):
            trsm("top", "lower", l, np.zeros((40, 1)))
        with pytest.raises(ValueError):
            trsm("left", "diag", l, np.zeros((40, 1)))


class TestGemmUpdate:
    def test_default_subtracts(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((6, 4)), rng.standard_normal((4, 5))
        c = rng.standard_normal((6, 5))
        ref = c - a @ b
        out = gemm_update(c, a, b)
        assert out is c and np.allclose(c, ref)

    @pytest.mark.parametrize("alpha", [1.0, -1.0, 0.5])
    def test_alpha(self, alpha):
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal((3, 3)), rng.standard_normal((3, 3))
        c = rng.standard_normal((3, 3))
        ref = c + alpha * (a @ b)
        gemm_update(c, a, b, alpha=alpha)
        assert np.allclose(c, ref)
