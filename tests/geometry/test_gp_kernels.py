"""GP covariance kernels: exact diagonals, SPD-ness, closed forms.

The diag contract is load-bearing for the GP subsystem: the predictive
variance is ``k.diag(x*) - colsum(K_* . V)``, and training covariances get
their nugget *only* through exact zero distances — so for EVERY registered
kernel, ``k(x, x).diagonal()`` must equal ``k.diag(x)`` bit for bit.
"""

import pickle

import numpy as np
import pytest

from repro.geometry import GP_KERNELS, cylinder_cloud, make_kernel
from repro.geometry.kernels import _FACTORIES

PTS = cylinder_cloud(150)

GP_PARAMS = {"length": 0.3, "signal": 1.2, "nugget": 1e-4}


def _kernel(name):
    return make_kernel(name, PTS, **(GP_PARAMS if name in GP_KERNELS else {}))


class TestDiagExactness:
    @pytest.mark.parametrize("name", sorted(_FACTORIES))
    def test_diag_matches_dense_diagonal_bitwise(self, name):
        kern = _kernel(name)
        assert np.array_equal(kern(PTS, PTS).diagonal(), kern.diag(PTS))

    @pytest.mark.parametrize("name", GP_KERNELS)
    def test_gp_prior_variance_is_signal2_plus_nugget(self, name):
        kern = _kernel(name)
        expected = GP_PARAMS["signal"] ** 2 + GP_PARAMS["nugget"]
        assert np.allclose(kern.diag(PTS), expected)

    @pytest.mark.parametrize("name", GP_KERNELS)
    def test_nugget_only_at_zero_distance(self, name):
        kern = _kernel(name)
        block = kern(PTS[:50], PTS[50:100])  # disjoint point sets
        assert np.all(block < GP_PARAMS["signal"] ** 2)  # no nugget off-site


class TestSPD:
    @pytest.mark.parametrize("name", GP_KERNELS)
    def test_covariance_is_spd(self, name):
        kern = _kernel(name)
        k = kern(PTS, PTS)
        assert np.array_equal(k, k.T)
        assert np.linalg.eigvalsh(k).min() > 0


class TestClosedForms:
    # Two points exactly d = 0.3 apart; u = d / length = 1.
    X = np.array([[0.0, 0.0, 0.0], [0.3, 0.0, 0.0]])

    def _offdiag(self, name, **params):
        kern = make_kernel(name, self.X, length=0.3, signal=2.0, nugget=1e-3, **params)
        return kern(self.X, self.X)[0, 1]

    def test_sqexp(self):
        assert np.isclose(self._offdiag("sqexp"), 4.0 * np.exp(-0.5))

    def test_matern12(self):
        assert np.isclose(self._offdiag("matern12"), 4.0 * np.exp(-1.0))

    def test_matern32(self):
        s3 = np.sqrt(3.0)
        assert np.isclose(self._offdiag("matern32"), 4.0 * (1 + s3) * np.exp(-s3))

    def test_matern52(self):
        s5 = np.sqrt(5.0)
        assert np.isclose(
            self._offdiag("matern52"), 4.0 * (1 + s5 + 5.0 / 3.0) * np.exp(-s5)
        )


class TestValidation:
    def test_bad_hyperparameters_rejected(self):
        for bad in (dict(length=0.0), dict(signal=-1.0), dict(nugget=-1e-6)):
            with pytest.raises(ValueError):
                make_kernel("sqexp", PTS, **bad)

    def test_unknown_matern_smoothness_rejected(self):
        with pytest.raises(ValueError):
            from repro.geometry import matern_kernel

            matern_kernel(PTS, nu=2.0)

    def test_conflicting_nu_rejected(self):
        with pytest.raises(ValueError):
            make_kernel("matern32", PTS, nu=0.5)


class TestProcessShippability:
    @pytest.mark.parametrize("name", GP_KERNELS)
    def test_kernel_pickles(self, name):
        kern = _kernel(name)
        clone = pickle.loads(pickle.dumps(kern))
        assert np.array_equal(clone(PTS[:20], PTS[:20]), kern(PTS[:20], PTS[:20]))
