"""Unit tests for the interaction kernels."""

import math

import numpy as np
import pytest

from repro.geometry import (
    cylinder_cloud,
    exponential_kernel,
    gravity_kernel,
    helmholtz_kernel,
    laplace_kernel,
    make_kernel,
    mesh_step,
    rule_of_thumb_wavenumber,
)


@pytest.fixture(scope="module")
def pts():
    return cylinder_cloud(400)


class TestLaplaceKernel:
    def test_values_match_inverse_distance(self, pts):
        k = laplace_kernel(pts)
        sub = pts[:10]
        block = k(sub, pts[10:30])
        d = np.linalg.norm(sub[:, None, :] - pts[None, 10:30, :], axis=2)
        d = np.maximum(d, k.d_min)
        assert np.allclose(block, 1.0 / d)

    def test_dtype_real(self, pts):
        k = laplace_kernel(pts)
        assert k.dtype == np.float64
        assert not k.is_complex

    def test_diagonal_clamped(self, pts):
        k = laplace_kernel(pts)
        block = k(pts[:5], pts[:5])
        # Diagonal = K(d_min) = 1/(h/2), the dominant entry of each row.
        expected = 1.0 / k.d_min
        assert np.allclose(np.diag(block), expected)
        assert np.all(np.diag(block) >= block.max(axis=1) - 1e-12)

    def test_symmetry(self, pts):
        k = laplace_kernel(pts)
        a = k(pts[:20], pts[20:40])
        b = k(pts[20:40], pts[:20])
        assert np.allclose(a, b.T)

    def test_scale_parameter(self, pts):
        k1 = laplace_kernel(pts, scale=1.0)
        k3 = laplace_kernel(pts, scale=3.0)
        assert np.allclose(3.0 * k1(pts[:5], pts[5:10]), k3(pts[:5], pts[5:10]))


class TestHelmholtzKernel:
    def test_dtype_complex(self, pts):
        k = helmholtz_kernel(pts)
        assert k.dtype == np.complex128
        assert k.is_complex

    def test_magnitude_matches_laplace(self, pts):
        kz = helmholtz_kernel(pts)
        kd = laplace_kernel(pts)
        bz = kz(pts[:15], pts[30:60])
        bd = kd(pts[:15], pts[30:60])
        assert np.allclose(np.abs(bz), bd)

    def test_rule_of_thumb_default(self, pts):
        k = helmholtz_kernel(pts)
        h = mesh_step(pts)
        assert math.isclose(k.params["wavenumber"], 2 * math.pi / (10 * h), rel_tol=1e-9)

    def test_explicit_wavenumber(self, pts):
        k = helmholtz_kernel(pts, wavenumber=5.0)
        assert k.params["wavenumber"] == 5.0

    def test_zero_wavenumber_reduces_to_laplace(self, pts):
        kz = helmholtz_kernel(pts, wavenumber=0.0)
        kd = laplace_kernel(pts)
        assert np.allclose(kz(pts[:8], pts[8:16]).real, kd(pts[:8], pts[8:16]))
        assert np.allclose(kz(pts[:8], pts[8:16]).imag, 0.0)

    def test_negative_wavenumber_rejected(self, pts):
        with pytest.raises(ValueError):
            helmholtz_kernel(pts, wavenumber=-1.0)


class TestOtherKernels:
    def test_gravity_smooth_at_zero(self, pts):
        k = gravity_kernel(pts)
        block = k(pts[:4], pts[:4])
        assert np.all(np.isfinite(block))
        eps = k.params["softening"]
        # No clamp needed: the softened kernel is finite at d = 0.
        assert np.allclose(np.diag(block), 1.0 / eps)

    def test_exponential_spd(self, pts):
        # Smooth covariance kernels must stay symmetric positive definite:
        # the diagonal is the exact K(0) = 1 (no clamping).
        k = exponential_kernel(pts, length=0.7)
        block = k(pts[:100], pts[:100])
        assert np.allclose(np.diag(block), 1.0)
        assert np.linalg.eigvalsh(block).min() > 0

    def test_exponential_bounded_by_one(self, pts):
        k = exponential_kernel(pts, length=0.7)
        block = k(pts[:10], pts[100:150])
        assert np.all(block > 0) and np.all(block <= 1.0)

    def test_exponential_rejects_bad_length(self, pts):
        with pytest.raises(ValueError):
            exponential_kernel(pts, length=0.0)


class TestMakeKernel:
    @pytest.mark.parametrize("name", ["laplace", "helmholtz", "gravity", "exponential"])
    def test_factory_names(self, pts, name):
        k = make_kernel(name, pts)
        assert k.name == name

    def test_unknown_name(self, pts):
        with pytest.raises(ValueError, match="unknown kernel"):
            make_kernel("stokes", pts)


class TestRuleOfThumb:
    def test_positive(self, pts):
        assert rule_of_thumb_wavenumber(pts) > 0

    def test_more_points_higher_wavenumber(self):
        k1 = rule_of_thumb_wavenumber(cylinder_cloud(500))
        k2 = rule_of_thumb_wavenumber(cylinder_cloud(4000))
        assert k2 > k1

    def test_rejects_bad_ppw(self, pts):
        with pytest.raises(ValueError):
            rule_of_thumb_wavenumber(pts, points_per_wavelength=0)
