"""Unit tests for dense assembly and the streamed operator."""

import numpy as np
import pytest

from repro.geometry import (
    DenseOperator,
    assemble_block,
    assemble_dense,
    cylinder_cloud,
    helmholtz_kernel,
    laplace_kernel,
    streamed_matvec,
)


@pytest.fixture(scope="module")
def setup():
    pts = cylinder_cloud(350)
    kd = laplace_kernel(pts)
    kz = helmholtz_kernel(pts)
    return pts, kd, kz


class TestAssembleDense:
    def test_square_symmetric(self, setup):
        pts, kd, _ = setup
        a = assemble_dense(kd, pts)
        assert a.shape == (350, 350)
        assert np.allclose(a, a.T)

    def test_complex_symmetric_not_hermitian(self, setup):
        pts, _, kz = setup
        a = assemble_dense(kz, pts)
        assert np.allclose(a, a.T)  # kernel is symmetric (not conjugate-symmetric)
        assert not np.allclose(a, a.conj().T)

    def test_memory_guard(self, setup):
        _, kd, _ = setup
        big = np.zeros((40000, 3))
        big[:, 0] = np.arange(40000)
        with pytest.raises(MemoryError):
            assemble_dense(kd, big)

    def test_block_matches_dense(self, setup):
        pts, kd, _ = setup
        a = assemble_dense(kd, pts)
        blk = assemble_block(kd, pts[10:40], pts[200:300])
        assert np.allclose(blk, a[10:40, 200:300])


class TestStreamedMatvec:
    def test_matches_dense_real(self, setup):
        pts, kd, _ = setup
        a = assemble_dense(kd, pts)
        x = np.random.default_rng(0).standard_normal(350)
        for br in (7, 64, 1000):
            assert np.allclose(streamed_matvec(kd, pts, x, block_rows=br), a @ x)

    def test_matches_dense_complex(self, setup):
        pts, _, kz = setup
        a = assemble_dense(kz, pts)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(350) + 1j * rng.standard_normal(350)
        assert np.allclose(streamed_matvec(kz, pts, x), a @ x)

    def test_panel_rhs(self, setup):
        pts, kd, _ = setup
        a = assemble_dense(kd, pts)
        x = np.random.default_rng(2).standard_normal((350, 4))
        assert np.allclose(streamed_matvec(kd, pts, x), a @ x)

    def test_dtype_promotion(self, setup):
        pts, kd, _ = setup
        x = np.random.default_rng(3).standard_normal(350) * 1j
        y = streamed_matvec(kd, pts, x)
        assert y.dtype == np.complex128

    def test_shape_mismatch(self, setup):
        pts, kd, _ = setup
        with pytest.raises(ValueError):
            streamed_matvec(kd, pts, np.zeros(10))

    def test_bad_block_rows(self, setup):
        pts, kd, _ = setup
        with pytest.raises(ValueError):
            streamed_matvec(kd, pts, np.zeros(350), block_rows=0)


class TestDenseOperator:
    def test_matvec_and_rmatvec(self, setup):
        pts, _, kz = setup
        a = assemble_dense(kz, pts)
        op = DenseOperator(kz, pts, block_rows=53)
        rng = np.random.default_rng(4)
        x = rng.standard_normal(350) + 1j * rng.standard_normal(350)
        assert np.allclose(op.matvec(x), a @ x)
        assert np.allclose(op.rmatvec(x), a.conj().T @ x)

    def test_rows_cols(self, setup):
        pts, kd, _ = setup
        a = assemble_dense(kd, pts)
        op = DenseOperator(kd, pts)
        assert np.allclose(op.rows(slice(5, 9)), a[5:9])
        assert np.allclose(op.cols(np.array([0, 17, 200])), a[:, [0, 17, 200]])

    def test_shape_dtype(self, setup):
        pts, kd, _ = setup
        op = DenseOperator(kd, pts)
        assert op.shape == (350, 350)
        assert op.dtype == np.float64

    def test_norm_estimate_close(self, setup):
        pts, kd, _ = setup
        a = assemble_dense(kd, pts)
        op = DenseOperator(kd, pts)
        est = op.norm_fro_estimate(samples=350)  # full sample => exact
        assert np.isclose(est, np.linalg.norm(a), rtol=1e-10)

    def test_norm_estimate_sampled(self, setup):
        pts, kd, _ = setup
        a = assemble_dense(kd, pts)
        op = DenseOperator(kd, pts)
        est = op.norm_fro_estimate(samples=64)
        assert 0.5 * np.linalg.norm(a) < est < 2.0 * np.linalg.norm(a)
