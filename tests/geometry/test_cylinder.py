"""Unit tests for the point-cloud generators."""

import math

import numpy as np
import pytest

from repro.geometry import cylinder_cloud, mesh_step, plate_cloud, sphere_cloud


class TestCylinderCloud:
    def test_shape_and_dtype(self):
        pts = cylinder_cloud(1000)
        assert pts.shape == (1000, 3)
        assert pts.dtype == np.float64
        assert pts.flags.c_contiguous

    def test_exact_count_non_square(self):
        # n that does not factor into a full grid still yields exactly n points.
        pts = cylinder_cloud(997)
        assert pts.shape == (997, 3)

    def test_points_on_cylinder_surface(self):
        r = 2.5
        pts = cylinder_cloud(500, radius=r)
        rho = np.hypot(pts[:, 0], pts[:, 1])
        assert np.allclose(rho, r, rtol=1e-12)

    def test_height_bounds(self):
        h = 7.0
        pts = cylinder_cloud(600, radius=1.0, height=h)
        assert pts[:, 2].min() >= 0.0
        assert pts[:, 2].max() <= h

    def test_points_distinct(self):
        pts = cylinder_cloud(400)
        # No duplicated points (would break kernel clamping assumptions).
        uniq = np.unique(pts.round(12), axis=0)
        assert uniq.shape[0] == pts.shape[0]

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            cylinder_cloud(0)
        with pytest.raises(ValueError):
            cylinder_cloud(-5)

    def test_deterministic(self):
        assert np.array_equal(cylinder_cloud(128), cylinder_cloud(128))

    def test_jitter_seed(self):
        a = cylinder_cloud(128, seed=1)
        b = cylinder_cloud(128, seed=2)
        assert not np.array_equal(a, b)
        # Jitter is tiny relative to the geometry.
        assert np.abs(a - cylinder_cloud(128)).max() < 1e-6


class TestSphereCloud:
    def test_on_sphere(self):
        pts = sphere_cloud(300, radius=1.5)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.5, rtol=1e-12)

    def test_quasi_uniform(self):
        # z-coordinates should span (-r, r) roughly evenly.
        pts = sphere_cloud(1000)
        z = np.sort(pts[:, 2])
        gaps = np.diff(z)
        assert gaps.max() < 10.0 / 1000

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            sphere_cloud(0)


class TestPlateCloud:
    def test_planar(self):
        pts = plate_cloud(250)
        assert np.all(pts[:, 2] == 0.0)

    def test_within_bounds(self):
        pts = plate_cloud(250, width=2.0, height=3.0)
        assert pts[:, 0].max() <= 2.0 and pts[:, 1].max() <= 3.0
        assert pts[:, :2].min() >= 0.0


class TestMeshStep:
    def test_regular_grid_step(self):
        # A perfectly regular 1-D line: the nearest-neighbour distance is the
        # grid spacing.
        x = np.zeros((100, 3))
        x[:, 0] = np.arange(100) * 0.25
        assert math.isclose(mesh_step(x), 0.25, rel_tol=1e-9)

    def test_cylinder_step_positive_and_small(self):
        pts = cylinder_cloud(2000)
        h = mesh_step(pts)
        assert 0 < h < 1.0

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            mesh_step(np.zeros((1, 3)))

    def test_scales_with_density(self):
        h1 = mesh_step(cylinder_cloud(500))
        h2 = mesh_step(cylinder_cloud(2000))
        assert h2 < h1
