"""Unit tests for the pure-HMAT fine-grain baseline."""

import numpy as np
import pytest

from repro.baselines import HMatSolver, trace_to_graph
from repro.core import TileHConfig, TileHMatrix
from repro.geometry import assemble_dense, cylinder_cloud, helmholtz_kernel, laplace_kernel
from repro.hmatrix import KernelTracer
from repro.runtime import RuntimeOverheadModel

N = 500


@pytest.fixture(scope="module")
def geom():
    pts = cylinder_cloud(N)
    kern = laplace_kernel(pts)
    return pts, kern, assemble_dense(kern, pts)


class TestHMatSolver:
    def test_compression(self, geom):
        pts, kern, _ = geom
        hm = HMatSolver(kern, pts, eps=1e-5, leaf_size=32)
        assert 0 < hm.compression_ratio() < 1.0
        assert hm.n == N

    def test_matvec(self, geom):
        pts, kern, dense = geom
        hm = HMatSolver(kern, pts, eps=1e-6, leaf_size=32)
        x = np.random.default_rng(0).standard_normal(N)
        assert np.linalg.norm(hm.matvec(x) - dense @ x) <= 1e-4 * np.linalg.norm(dense @ x)

    def test_solve_accuracy(self, geom):
        pts, kern, dense = geom
        hm = HMatSolver(kern, pts, eps=1e-6, leaf_size=32)
        x0 = np.random.default_rng(1).standard_normal(N)
        x = hm.gesv(dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_complex_solve(self):
        pts = cylinder_cloud(300)
        kern = helmholtz_kernel(pts)
        dense = assemble_dense(kern, pts)
        hm = HMatSolver(kern, pts, eps=1e-6, leaf_size=24)
        rng = np.random.default_rng(2)
        x0 = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        x = hm.gesv(dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_lifecycle_guards(self, geom):
        pts, kern, _ = geom
        hm = HMatSolver(kern, pts, eps=1e-4, leaf_size=32)
        with pytest.raises(RuntimeError):
            hm.solve(np.zeros(N))
        hm.factorize()
        with pytest.raises(RuntimeError):
            hm.factorize()
        with pytest.raises(RuntimeError):
            hm.matvec(np.zeros(N))


class TestFineGrainDag:
    def test_finer_than_tile_h(self, geom):
        """The paper's structural claim: the pure-H DAG has far more tasks
        and dependencies than the Tile-H DAG of the same problem."""
        pts, kern, _ = geom
        hm = HMatSolver(kern, pts, eps=1e-5, leaf_size=32)
        hi = hm.factorize()
        th = TileHMatrix.build(kern, pts, TileHConfig(nb=125, eps=1e-5, leaf_size=32))
        ti = th.factorize()
        assert hi.n_tasks > 3 * ti.n_tasks
        assert hi.n_dependencies > 3 * ti.n_dependencies

    def test_dag_kind_mix(self, geom):
        pts, kern, _ = geom
        hm = HMatSolver(kern, pts, eps=1e-5, leaf_size=32)
        info = hm.factorize()
        counts = info.graph.kind_counts()
        assert set(counts) == {"getrf", "trsm", "gemm"}

    def test_dag_is_simulatable(self, geom):
        pts, kern, _ = geom
        hm = HMatSolver(kern, pts, eps=1e-5, leaf_size=32)
        info = hm.factorize()
        r1 = info.simulate(1, "lws", overheads=RuntimeOverheadModel.zero())
        r8 = info.simulate(8, "lws", overheads=RuntimeOverheadModel.zero())
        assert r1.makespan == pytest.approx(info.sequential_seconds(), rel=1e-9)
        assert r8.makespan < r1.makespan

    def test_dependency_overhead_hurts_fine_grain_more(self, geom):
        """Per-dependency runtime overhead degrades the fine-grain DAG more
        than the Tile-H DAG — the mechanism behind Fig. 6's real-double
        crossover."""
        pts, kern, _ = geom
        hm = HMatSolver(kern, pts, eps=1e-5, leaf_size=32)
        hi = hm.factorize()
        th = TileHMatrix.build(kern, pts, TileHConfig(nb=125, eps=1e-5, leaf_size=32))
        ti = th.factorize()
        heavy = RuntimeOverheadModel(per_task=5e-5, per_dependency=2e-5)
        zero = RuntimeOverheadModel.zero()
        hm_pen = hi.simulate(8, "lws", overheads=heavy).makespan / hi.simulate(
            8, "lws", overheads=zero
        ).makespan
        th_pen = ti.simulate(8, "lws", overheads=heavy).makespan / ti.simulate(
            8, "lws", overheads=zero
        ).makespan
        assert hm_pen > th_pen


class TestTraceToGraph:
    def test_empty_trace(self):
        g = trace_to_graph(KernelTracer())
        assert len(g) == 0

    def test_chain_dependency_via_shared_leaf(self, geom):
        pts, kern, _ = geom
        hm = HMatSolver(kern, pts, eps=1e-4, leaf_size=32)
        # Two records touching the same node must be chained.
        node = hm.matrix.child(0, 0)
        tracer = KernelTracer()
        tracer.record("getrf", (), (node,), 0.1, 1.0)
        tracer.record("trsm", (node,), (hm.matrix.child(0, 1),), 0.1, 1.0)
        g = trace_to_graph(tracer)
        assert len(g) == 2
        assert g.tasks[0].id in g.tasks[1].deps

    def test_region_expansion_links_ancestor_reads(self, geom):
        """Writing a leaf then reading its *ancestor* must create an edge —
        the region-based dependency expansion."""
        pts, kern, _ = geom
        hm = HMatSolver(kern, pts, eps=1e-4, leaf_size=32)
        parent = hm.matrix.child(0, 0)
        leaf = next(iter(parent.leaves()))
        tracer = KernelTracer()
        tracer.record("gemm", (), (leaf,), 0.1, 1.0)
        tracer.record("trsm", (parent,), (hm.matrix.child(0, 1),), 0.1, 1.0)
        g = trace_to_graph(tracer)
        assert g.tasks[0].id in g.tasks[1].deps


class TestHodlrVariant:
    def test_weak_admissibility_structure(self, geom):
        """HMatSolver with weak admissibility = the HODLR / BS format: every
        off-diagonal block at every level is a single low-rank leaf."""
        from repro.hmatrix import WeakAdmissibility

        pts, kern, dense = geom
        hodlr = HMatSolver(
            kern, pts, eps=1e-6, leaf_size=32, admissibility=WeakAdmissibility()
        )
        root = hodlr.matrix
        assert root.child(0, 1).kind == "rk"
        assert root.child(1, 0).kind == "rk"

    def test_hodlr_solves(self, geom):
        from repro.hmatrix import WeakAdmissibility

        pts, kern, dense = geom
        hodlr = HMatSolver(
            kern, pts, eps=1e-6, leaf_size=32, admissibility=WeakAdmissibility()
        )
        x0 = np.random.default_rng(9).standard_normal(N)
        x = hodlr.gesv(dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-3 * np.linalg.norm(x0)

    def test_hodlr_higher_ranks_than_strong(self, geom):
        """The weak condition admits touching blocks, whose ranks are larger
        — the storage/simplicity trade-off of the BS/HODLR discussion."""
        from repro.hmatrix import WeakAdmissibility

        pts, kern, _ = geom
        hodlr = HMatSolver(
            kern, pts, eps=1e-6, leaf_size=32, admissibility=WeakAdmissibility()
        )
        strong = HMatSolver(kern, pts, eps=1e-6, leaf_size=32)
        assert hodlr.matrix.max_rank() > strong.matrix.max_rank()
