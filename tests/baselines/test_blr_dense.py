"""Unit tests for the BLR and dense-tiled baselines."""

import numpy as np
import pytest

from repro.baselines import BLRMatrix, DenseTiledLU, build_blr
from repro.core import TileHConfig, TileHMatrix
from repro.geometry import assemble_dense, cylinder_cloud, helmholtz_kernel, laplace_kernel

N = 480


@pytest.fixture(scope="module")
def geom():
    pts = cylinder_cloud(N)
    kern = laplace_kernel(pts)
    return pts, kern, assemble_dense(kern, pts)


class TestBuildBlr:
    def test_flat_structure(self, geom):
        pts, kern, _ = geom
        desc = build_blr(kern, pts, 120, eps=1e-5)
        # Every tile is a single leaf: format "full" or "rk", never "hmat".
        counts = desc.format_counts()
        assert counts["hmat"] == 0
        assert counts["full"] > 0 and counts["rk"] > 0

    def test_diagonal_tiles_dense(self, geom):
        pts, kern, _ = geom
        desc = build_blr(kern, pts, 120, eps=1e-5)
        for i in range(desc.nt):
            assert desc.super.get_blktile(i, i).format == "full"

    def test_assembly_accuracy(self, geom):
        pts, kern, dense = geom
        desc = build_blr(kern, pts, 120, eps=1e-6)
        ref = dense[np.ix_(desc.perm, desc.perm)]
        assert np.linalg.norm(desc.to_dense() - ref) <= 1e-4 * np.linalg.norm(ref)


class TestBLRMatrix:
    def test_solve(self, geom):
        pts, kern, dense = geom
        a = BLRMatrix.build(kern, pts, TileHConfig(nb=120, eps=1e-6))
        x0 = np.random.default_rng(0).standard_normal(N)
        x = a.gesv(dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_complex_solve(self):
        pts = cylinder_cloud(300)
        kern = helmholtz_kernel(pts)
        dense = assemble_dense(kern, pts)
        a = BLRMatrix.build(kern, pts, TileHConfig(nb=100, eps=1e-6))
        rng = np.random.default_rng(1)
        x0 = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        x = a.gesv(dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-4 * np.linalg.norm(x0)

    def test_blr_compression_worse_than_tile_h(self, geom):
        """At equal NB the nested Tile-H stores less than flat BLR (the
        asymptotic-cost argument of the related-work section) — checked at a
        size where the effect is already visible."""
        pts, kern, _ = geom
        blr = BLRMatrix.build(kern, pts, TileHConfig(nb=240, eps=1e-5))
        th = TileHMatrix.build(kern, pts, TileHConfig(nb=240, eps=1e-5, leaf_size=30))
        assert th.compression_ratio() <= blr.compression_ratio() * 1.05


class TestDenseTiledLU:
    def test_exact_solve(self, geom):
        _, _, dense = geom
        lu = DenseTiledLU(dense, nb=100)
        lu.factorize()
        x0 = np.random.default_rng(2).standard_normal(N)
        x = lu.solve(dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-9 * np.linalg.norm(x0)

    def test_panel_solve(self, geom):
        _, _, dense = geom
        lu = DenseTiledLU(dense, nb=128)
        lu.factorize()
        x0 = np.random.default_rng(3).standard_normal((N, 3))
        x = lu.solve(dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-9 * np.linalg.norm(x0)

    def test_task_counts(self, geom):
        _, _, dense = geom
        lu = DenseTiledLU(dense, nb=120)
        info = lu.factorize()
        nt = lu.nt
        counts = info.graph.kind_counts()
        assert counts["getrf"] == nt
        assert counts["trsm"] == nt * (nt - 1)

    def test_reconstruction(self, geom):
        _, _, dense = geom
        lu = DenseTiledLU(dense, nb=100)
        lu.factorize()
        packed = lu.to_dense()
        l = np.tril(packed, -1) + np.eye(N)
        u = np.triu(packed)
        assert np.linalg.norm(l @ u - dense) <= 1e-9 * np.linalg.norm(dense)

    def test_complex(self):
        pts = cylinder_cloud(200)
        dense = assemble_dense(helmholtz_kernel(pts), pts)
        lu = DenseTiledLU(dense, nb=64)
        lu.factorize()
        rng = np.random.default_rng(4)
        x0 = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        x = lu.solve(dense @ x0)
        assert np.linalg.norm(x - x0) <= 1e-8 * np.linalg.norm(x0)

    def test_lifecycle_guards(self, geom):
        _, _, dense = geom
        lu = DenseTiledLU(dense, nb=100)
        with pytest.raises(RuntimeError):
            lu.solve(np.zeros(N))
        lu.factorize()
        with pytest.raises(RuntimeError):
            lu.factorize()

    def test_validation(self):
        with pytest.raises(ValueError):
            DenseTiledLU(np.zeros((3, 4)), nb=2)
        with pytest.raises(ValueError):
            DenseTiledLU(np.eye(4), nb=0)
        lu = DenseTiledLU(np.eye(8) * 4, nb=3)
        lu.factorize()
        with pytest.raises(ValueError):
            lu.solve(np.zeros(9))


class TestDenseTiledCholesky:
    @pytest.fixture(scope="class")
    def spd(self):
        from repro.geometry import exponential_kernel, plate_cloud

        pts = plate_cloud(400)
        dense = assemble_dense(exponential_kernel(pts, length=0.6), pts)
        return dense

    def test_solve(self, spd):
        from repro.baselines import DenseTiledCholesky

        ch = DenseTiledCholesky(spd, nb=100)
        ch.factorize()
        x0 = np.random.default_rng(0).standard_normal(400)
        x = ch.solve(spd @ x0)
        assert np.linalg.norm(x - x0) <= 1e-10 * np.linalg.norm(x0)

    def test_task_kinds(self, spd):
        from repro.baselines import DenseTiledCholesky

        ch = DenseTiledCholesky(spd, nb=100)
        info = ch.factorize()
        counts = info.graph.kind_counts()
        nt = ch.nt
        assert counts["potrf"] == nt
        assert counts["trsm"] == nt * (nt - 1) // 2

    def test_fewer_flops_than_lu(self, spd):
        from repro.baselines import DenseTiledCholesky

        ch = DenseTiledCholesky(spd, nb=100)
        chol_info = ch.factorize()
        lu = DenseTiledLU(spd, nb=100)
        lu_info = lu.factorize()
        assert chol_info.graph.total_work("flops") < 0.75 * lu_info.graph.total_work("flops")

    def test_panel_solve(self, spd):
        from repro.baselines import DenseTiledCholesky

        ch = DenseTiledCholesky(spd, nb=128)
        ch.factorize()
        x0 = np.random.default_rng(1).standard_normal((400, 3))
        x = ch.solve(spd @ x0)
        assert np.linalg.norm(x - x0) <= 1e-10 * np.linalg.norm(x0)

    def test_lifecycle(self, spd):
        from repro.baselines import DenseTiledCholesky

        ch = DenseTiledCholesky(spd, nb=100)
        with pytest.raises(RuntimeError):
            ch.solve(np.zeros(400))
        ch.factorize()
        with pytest.raises(RuntimeError):
            ch.factorize()
