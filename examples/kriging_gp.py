"""Kriging / Gaussian-process regression with an H-matrix covariance solve.

A different downstream domain for the same machinery: spatial interpolation
of a field sampled at n scattered sites.  The exponential covariance matrix
K(d) = exp(-d/l) is dense but numerically low-rank off the diagonal —
exactly the structure H-matrices exploit — and the kriging weights require
solving (K + sigma^2 I) w = y.  The nugget sigma^2 is folded into the
kernel's clamped diagonal, so the whole pipeline (clustering, ACA, tiled
H-LU) is reused unchanged.

Run:  python examples/kriging_gp.py [n]
"""

import sys

import numpy as np

from repro.core import TileHConfig, TileHMatrix
from repro.geometry import make_kernel, plate_cloud, streamed_matvec


def truth(points: np.ndarray) -> np.ndarray:
    """Synthetic smooth field to interpolate."""
    x, y = points[:, 0], points[:, 1]
    return np.sin(3.0 * x) * np.cos(2.0 * y) + 0.5 * x * y


def main(n: int = 3000) -> None:
    rng = np.random.default_rng(7)
    sites = plate_cloud(n, width=2.0, height=2.0)
    sites[:, :2] += rng.uniform(-0.01, 0.01, size=(n, 2))  # de-grid the samples
    noise = 0.01
    y = truth(sites) + noise * rng.standard_normal(n)

    kernel = make_kernel("exponential", sites, length=0.5)
    a = TileHMatrix.build(sites_kernel := kernel, sites, TileHConfig(nb=max(64, n // 10), eps=1e-6))
    print(f"covariance matrix: n={n}, storage {a.compression_ratio():.1%} of dense, "
          f"max rank {a.desc.max_rank()}")

    # Kriging weights K w = y via the *Cholesky* path: the covariance matrix
    # is symmetric positive definite, so the tiled H-POTRF does half the
    # work of the LU and touches only the lower tiles.
    info = a.factorize(method="cholesky")
    print(f"H-Cholesky: {info.n_tasks} tasks "
          f"({dict(info.graph.kind_counts())})")
    w = a.solve(y)
    res = streamed_matvec(sites_kernel, sites, w) - y
    print(f"solve residual: {np.linalg.norm(res) / np.linalg.norm(y):.2e}")

    # Predict at held-out probe locations: yhat(x*) = k(x*, X) w.
    probes = plate_cloud(400, width=2.0, height=2.0)
    probes[:, :2] += rng.uniform(-0.02, 0.02, size=(400, 2))
    k_star = sites_kernel(probes, sites)
    yhat = k_star @ w
    ref = truth(probes)
    rmse = float(np.sqrt(np.mean((yhat - ref) ** 2)))
    spread = float(ref.std())
    print(f"held-out RMSE: {rmse:.4f} (field std {spread:.4f}, "
          f"noise level {noise})")
    if rmse > 5 * noise + 0.05 * spread:
        raise SystemExit("kriging prediction error unexpectedly large")
    print("kriging interpolation succeeded with the H-matrix solver.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3000)
