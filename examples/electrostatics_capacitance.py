"""Electrostatics: capacitance of a conductor via a first-kind BEM solve.

The real-arithmetic ("d") counterpart of the acoustics example: the
single-layer potential with kernel K(d) = 1/(4 pi d) on the surface of a
conductor held at unit potential.  Solving  A q = 1  for the charge density
q gives the capacitance  C ~= sum(q) * dA.  For a sphere of radius R the
analytic value is C = 4 pi eps0 R (we work in Gaussian-like units where
C_sphere = R), which provides an end-to-end physical check of the whole
pipeline: clustering, ACA assembly, tiled H-LU, solve.

Run:  python examples/electrostatics_capacitance.py [n]
"""

import sys

import numpy as np

from repro.core import TileHConfig, TileHMatrix
from repro.geometry import make_kernel, sphere_cloud, streamed_matvec


def main(n: int = 3000) -> None:
    radius = 1.0
    points = sphere_cloud(n, radius=radius)
    # Single-layer kernel in Gaussian units, K(d) = 1/d: the capacitance of a
    # sphere is then simply C = R.  Each point represents an equal patch of
    # the sphere's surface.
    kernel = make_kernel("laplace", points)

    config = TileHConfig(nb=max(64, n // 8), eps=1e-5)
    a = TileHMatrix.build(kernel, points, config)
    print(f"sphere with {n} panels, tiles {a.nt} x {a.nt}, "
          f"storage {a.compression_ratio():.1%} of dense")

    # Unit potential on the conductor: A q = 1, with q the patch charges.
    # The kernel clamp at d_min = h/2 regularises the diagonal self-patch.
    rhs = np.ones(n)
    weights = a.gesv(rhs)
    capacitance = float(np.sum(weights))  # total induced charge at unit potential

    analytic = radius  # C of a unit sphere in these units
    rel_err = abs(capacitance - analytic) / analytic
    print(f"capacitance: computed {capacitance:.4f}, analytic {analytic:.4f} "
          f"(error {rel_err:.1%})")

    # Residual check against the exact operator.
    res = streamed_matvec(kernel, points, weights) - rhs
    print(f"relative residual of the BEM solve: "
          f"{np.linalg.norm(res) / np.linalg.norm(rhs):.2e}")

    # Field evaluation: potential at exterior probe points should be ~ C/r.
    probes = np.array([[0.0, 0.0, 2.0], [3.0, 0.0, 0.0], [0.0, 4.0, 0.0]])
    d = np.linalg.norm(probes[:, None, :] - points[None, :, :], axis=2)
    phi = (1.0 / d) @ weights
    print("exterior potential vs C/r:")
    for p, val in zip(probes, phi):
        r = np.linalg.norm(p)
        print(f"  r = {r:.1f}: phi = {val:.4f}, C/r = {capacitance / r:.4f}")

    if rel_err > 0.05:
        raise SystemExit("capacitance deviates more than 5% from the analytic value")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3000)
