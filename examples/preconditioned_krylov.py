"""Direct solve vs loose-factorisation + Krylov: the accuracy/cost dial.

An eps = 1e-4 H-LU answers at 1e-4 directly; the same machinery at
eps = 1e-2 is much cheaper to assemble and factorise and, used as a GMRES
preconditioner against the exact (streamed) operator, still reaches 1e-12.
This example measures the trade-off end to end, plus iterative refinement
as the middle ground.

Run:  python examples/preconditioned_krylov.py [n]
"""

import sys
import time

import numpy as np

from repro.analysis import format_table, forward_error
from repro.core import TileHConfig, TileHMatrix, gmres
from repro.geometry import DenseOperator, cylinder_cloud, make_kernel


def main(n: int = 3000) -> None:
    points = cylinder_cloud(n)
    kernel = make_kernel("laplace", points)
    op = DenseOperator(kernel, points)
    x0 = np.random.default_rng(0).standard_normal(n)
    b = op.matvec(x0)
    nb = max(64, n // 12)

    rows = []

    def run(label, eps, mode):
        t0 = time.perf_counter()
        a = TileHMatrix.build(kernel, points, TileHConfig(nb=nb, eps=eps))
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        a.factorize()
        t_fact = time.perf_counter() - t0
        t0 = time.perf_counter()
        if mode == "direct":
            x = a.solve(b)
            extra = "-"
        elif mode == "refined":
            x, hist = a.solve_refined(b, op.matvec)
            extra = f"{len(hist)} sweeps"
        else:
            res = gmres(op.matvec, b, precond=a.solve, rtol=1e-12)
            x = res.x
            extra = f"{res.iterations} iters"
        t_solve = time.perf_counter() - t0
        rows.append(
            [label, f"{eps:.0e}", f"{t_build:.2f}", f"{t_fact:.2f}",
             f"{t_solve:.2f}", extra, f"{forward_error(x, x0):.1e}"]
        )

    run("direct", 1e-4, "direct")
    run("direct + refinement", 1e-4, "refined")
    run("loose + GMRES", 1e-2, "gmres")

    print(format_table(
        ["strategy", "eps", "build s", "factor s", "solve s", "inner", "fwd error"],
        rows,
        title=f"Direct vs preconditioned solves (n={n}, NB={nb})",
    ))
    print("\nThe loose factorisation costs a fraction of the tight one; a handful")
    print("of preconditioned GMRES iterations against the exact operator then")
    print("beats the direct solve's accuracy by eight orders of magnitude.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3000)
