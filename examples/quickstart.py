"""Quickstart: build, factorise and solve a Tile-H system in ~30 lines.

Reproduces the paper's core workflow on a small version of its test case: a
cloud of points on a cylinder, the real interaction kernel K(d) = 1/d, a
Tile-H matrix at accuracy 1e-4, the task-parallel LU, and a solve checked
against a manufactured solution.

Run:  python examples/quickstart.py [n]
"""

import sys

import numpy as np

from repro.analysis import forward_error
from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel, streamed_matvec


def main(n: int = 3000) -> None:
    # 1. Geometry + kernel (TEST_FEMBEM's real double case).
    points = cylinder_cloud(n)
    kernel = make_kernel("laplace", points)

    # 2. Tile-H matrix: NB-regular tiles, each an H-matrix, accuracy 1e-4.
    config = TileHConfig(nb=max(64, n // 16), eps=1e-4)
    a = TileHMatrix.build(kernel, points, config)
    print(f"n = {n}, tiles = {a.nt} x {a.nt} (NB = {config.nb})")
    print(f"storage: {a.storage_bytes() / 1e6:.1f} MB "
          f"({a.compression_ratio():.1%} of dense)")

    # 3. Manufactured problem: b = A x0 with the exact (uncompressed) operator.
    x0 = np.random.default_rng(0).standard_normal(n)
    b = streamed_matvec(kernel, points, x0)

    # 4. Task-parallel tiled H-LU; the returned info carries the task DAG.
    info = a.factorize()
    print(f"LU: {info.n_tasks} tasks, {info.n_dependencies} dependencies, "
          f"{info.sequential_seconds():.2f} s of kernel time")

    # 5. Solve and check.
    x = a.solve(b)
    print(f"forward error ||x - x0|| / ||x0|| = {forward_error(x, x0):.2e} "
          f"(accuracy parameter was {config.eps:.0e})")

    # 6. Virtual multicore replay (the paper's 36-core node).
    for p in (1, 9, 18, 35):
        r = info.simulate(p, scheduler="prio")
        print(f"  {p:>2} workers [prio]: {r.makespan:.3f} s "
              f"(speedup {r.speedup_vs_serial:.1f}x)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3000)
