"""BEM acoustics: the paper's complex-double ("z") industrial scenario.

A boundary-element discretisation of wave scattering off a cylinder (the
aeronautics use case motivating HMAT at Airbus): the oscillatory kernel
K(d) = exp(ikd)/d with the wave number chosen by the 10-points-per-
wavelength rule.  The script solves one scattering-like problem per
frequency and reports how the oscillatory kernel inflates ranks, storage
and factorisation work relative to the static (Laplace) case — the paper's
"the amount of storage and work is a lot more important in the complex
case" observation, plus the resulting solver accuracy.

Run:  python examples/bem_acoustics.py [n]
"""

import sys

import numpy as np

from repro.analysis import forward_error, format_table
from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel, rule_of_thumb_wavenumber, streamed_matvec


def plane_wave_trace(points: np.ndarray, wavenumber: float, direction=(1.0, 0.0, 0.0)) -> np.ndarray:
    """Incident plane wave exp(i k d.x) sampled on the surface (the RHS of a
    scattering integral equation)."""
    d = np.asarray(direction, dtype=np.float64)
    d = d / np.linalg.norm(d)
    return np.exp(1j * wavenumber * (points @ d))


def main(n: int = 2500) -> None:
    points = cylinder_cloud(n)
    k_ref = rule_of_thumb_wavenumber(points)  # 10 points per wavelength
    config = TileHConfig(nb=max(64, n // 8), eps=1e-4)

    rows = []
    for label, factor in (("static (k=0)", 0.0), ("half rule", 0.5), ("rule of thumb", 1.0)):
        kernel = make_kernel("helmholtz", points, wavenumber=factor * k_ref)
        a = TileHMatrix.build(kernel, points, config)
        ratio = a.compression_ratio()
        max_rank = a.desc.max_rank()

        # Scattering problem: incident plane wave as right-hand side.
        b = plane_wave_trace(points, factor * k_ref)
        info = a.factorize()
        x = a.solve(b)

        # Verify against the exact operator: residual of A x = b.
        r = streamed_matvec(kernel, points, x) - b
        rel_res = float(np.linalg.norm(r) / np.linalg.norm(b))
        rows.append(
            [label, f"{factor * k_ref:.2f}", max_rank, f"{ratio:.3f}",
             f"{info.sequential_seconds():.2f}", f"{rel_res:.2e}"]
        )
    print(format_table(
        ["case", "wavenumber", "max rank", "compression", "LU seconds", "rel residual"],
        rows,
        title=f"Helmholtz BEM on a cylinder, n={n}, eps={config.eps:.0e}",
    ))
    print("\nAs the paper notes for its z case: the oscillatory kernel raises the")
    print("block ranks, spreads storage away from the diagonal, and multiplies")
    print("the factorisation work, while the solver accuracy stays at eps.")

    # Manufactured-solution check at the full wave number.
    kernel = make_kernel("helmholtz", points, wavenumber=k_ref)
    a = TileHMatrix.build(kernel, points, config)
    rng = np.random.default_rng(1)
    x0 = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    b = streamed_matvec(kernel, points, x0)
    x = a.gesv(b)
    print(f"\nmanufactured-solution forward error: {forward_error(x, x0):.2e}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2500)
