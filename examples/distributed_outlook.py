"""Distributed-memory outlook: the paper's Section VI, made runnable.

The paper closes with the distributed case as future work, flagging two
difficulties: communication volumes that "cannot be known statically"
(they depend on the ranks the compression produces) and load imbalance.
This example factorises one Tile-H matrix, then replays its task DAG on
virtual clusters under different tile-to-node mappings, reporting exactly
those two quantities — measured from the real, rank-dependent tile sizes.

Run:  python examples/distributed_outlook.py [n]
"""

import sys

import numpy as np

from repro.analysis import format_table
from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel
from repro.runtime import (
    DistributedMachine,
    block_cyclic_1d,
    block_cyclic_2d,
    greedy_balanced,
    simulate_distributed,
    tile_h_distribution,
)


def main(n: int = 2500) -> None:
    points = cylinder_cloud(n)
    kernel = make_kernel("laplace", points)
    a = TileHMatrix.build(kernel, points, TileHConfig(nb=max(64, n // 12), eps=1e-4))
    info = a.factorize()
    nt = a.nt
    itemsize = np.dtype(a.desc.super.dtype).itemsize
    tile_bytes = {
        (i, j): a.desc.super.get_blktile(i, j).storage() * float(itemsize)
        for i in range(nt)
        for j in range(nt)
    }
    sizes = sorted(tile_bytes.values())
    print(f"Tile-H LU DAG: {info.n_tasks} tasks, {info.n_dependencies} dependencies")
    print(f"tile sizes (rank-dependent!): min {sizes[0]/1e3:.0f} kB, "
          f"median {sizes[len(sizes)//2]/1e3:.0f} kB, max {sizes[-1]/1e3:.0f} kB "
          f"({sizes[-1]/max(sizes[0],1):.0f}x spread)\n")

    rows = []
    for nodes, wpn in ((1, 36), (2, 18), (4, 9), (9, 4)):
        machine = DistributedMachine(nodes=nodes, workers_per_node=wpn, bandwidth=5e9)
        p = 1 if nodes == 1 else (2 if nodes in (2, 4) else 3)
        q = nodes // p
        for name, mapping in (
            ("1d-cyclic", block_cyclic_1d(nt, nodes)),
            ("2d-cyclic", block_cyclic_2d(nt, p, q)),
            ("greedy", greedy_balanced(tile_bytes, nodes)),
        ):
            hn, hb = tile_h_distribution(info.graph, mapping)
            r = simulate_distributed(info.graph, hn, machine, handle_bytes=hb)
            rows.append([
                f"{nodes}x{wpn}", name, f"{r.makespan:.3f}",
                f"{r.load_imbalance:.2f}", f"{r.total_comm_bytes/1e6:.1f}",
                r.n_messages,
            ])
    print(format_table(
        ["cluster", "mapping", "makespan s", "imbalance", "comm MB", "messages"],
        rows,
        title="Distributed Tile-H LU (36 cores total, 5 GB/s network)",
    ))
    print("\nObservations matching the paper's outlook: splitting the same 36")
    print("cores across nodes adds communication; cyclic mappings inherit the")
    print("rank-induced storage imbalance; greedy balancing trades messages")
    print("for balance. This DAG + cost data is the 'large test suite to work")
    print("on data distribution and load-balancing algorithms' the paper anticipates.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2500)
