"""Scheduler trade-offs: watch the paper's Section V-C effects directly.

Builds one Tile-H problem, factorises it once, then replays the task DAG
under every scheduling policy and several worker counts — printing the
speedup table and a text gantt chart per policy so the contention /
work-stealing / priority effects are visible at a glance.  Also contrasts
the Tile-H DAG with the pure-HMAT fine-grained DAG under growing
dependency-handling overheads (the paper's explanation for Fig. 6's
real-case crossover).

Run:  python examples/scheduler_tradeoffs.py [n]
"""

import sys

import numpy as np

from repro.analysis import format_table
from repro.analysis.experiments import PAPER_EQUIVALENT_OVERHEADS
from repro.baselines import HMatSolver
from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel
from repro.runtime import SCHEDULER_NAMES, RuntimeOverheadModel, render_gantt


def main(n: int = 2500) -> None:
    points = cylinder_cloud(n)
    kernel = make_kernel("laplace", points)
    a = TileHMatrix.build(kernel, points, TileHConfig(nb=max(64, n // 12), eps=1e-4))
    info = a.factorize()
    print(f"Tile-H DAG: {info.n_tasks} tasks, {info.n_dependencies} dependencies, "
          f"{info.sequential_seconds():.2f} s sequential\n")

    rows = []
    for sched in SCHEDULER_NAMES:
        times = {}
        for p in (1, 2, 9, 18, 35):
            times[p] = info.simulate(p, sched, overheads=PAPER_EQUIVALENT_OVERHEADS).makespan
        rows.append([sched] + [f"{times[p]:.3f}" for p in (1, 2, 9, 18, 35)])
    print(format_table(
        ["scheduler", "p=1", "p=2", "p=9", "p=18", "p=35"],
        rows,
        title="LU time (s) per scheduling policy",
    ))

    print("\ngantt charts at p=9 (G=getrf, T=trsm, M=gemm, .=idle):")
    for sched in SCHEDULER_NAMES:
        r = info.simulate(9, sched, overheads=PAPER_EQUIVALENT_OVERHEADS)
        print(f"\n[{sched}]  makespan {r.makespan:.3f}s, "
              f"utilization {r.trace.utilization():.0%}")
        print(render_gantt(r.trace, width=76))

    # The fine-grain story: per-dependency cost vs DAG granularity.
    hm = HMatSolver(kernel, points, eps=1e-4)
    hinfo = hm.factorize()
    print(f"\npure-HMAT fine-grain DAG: {hinfo.n_tasks} tasks, "
          f"{hinfo.n_dependencies} dependencies")
    rows = []
    for dep in (0.0, 1e-6, 1e-5, 1e-4):
        ovh = RuntimeOverheadModel(per_task=1e-6, per_dependency=dep)
        t_tile = info.simulate(18, "prio", overheads=ovh).makespan
        t_hmat = hinfo.simulate(18, "lws", overheads=ovh).makespan
        rows.append([f"{dep:.0e}", f"{t_tile:.3f}", f"{t_hmat:.3f}",
                     f"{t_hmat / t_tile:.2f}x"])
    print(format_table(
        ["per-dep cost (s)", "tile-h (s)", "hmat (s)", "hmat/tile-h"],
        rows,
        title="\nDependency-handling cost vs DAG granularity (18 workers)",
    ))
    print("\nAs the per-dependency cost grows, the fine-grained pure-H DAG "
          "falls behind — the paper's real-double crossover.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2500)
