"""repro — Tiled Task-Parallel H-Matrix Solvers (H-Chameleon reproduction).

A from-scratch Python implementation of Carratalá-Sáez et al., *Tiled
Algorithms for Efficient Task-Parallel H-Matrix Solvers* (PDSEC 2020):

* :mod:`repro.geometry` — TEST_FEMBEM-style test cases (cylinder cloud,
  1/d and exp(ikd)/d kernels);
* :mod:`repro.dense` — dense tile kernels (unpivoted LU, TRSM, GEMM);
* :mod:`repro.hmatrix` — the HMAT-OSS substrate (cluster trees, ACA,
  Rk arithmetic, recursive H-GETRF/H-TRSM/H-GEMM/H-POTRF);
* :mod:`repro.runtime` — the StarPU substrate (STF dependency inference,
  ws/lws/prio schedulers, discrete-event multicore and distributed
  simulators, threaded executor);
* :mod:`repro.core` — H-Chameleon itself (Tile-H descriptors, tiled
  algorithms, the :class:`~repro.core.solver.TileHMatrix` API);
* :mod:`repro.baselines` — pure-HMAT fine-grain, BLR and dense baselines;
* :mod:`repro.analysis` — metrics, experiment drivers, reporting, and the
  tile-size advisor.

Quick start::

    from repro.core import TileHMatrix, TileHConfig
    from repro.geometry import cylinder_cloud, make_kernel

    pts = cylinder_cloud(10_000)
    a = TileHMatrix.build(make_kernel("laplace", pts), pts,
                          TileHConfig(nb=512, eps=1e-4))
    info = a.factorize()
    x = a.solve(b)

Run ``python -m repro --help`` for the command-line driver.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
