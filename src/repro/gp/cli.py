"""``repro gp`` — GP regression on the command line, served or direct.

Train (cold-factorise the covariance into a store)::

    python -m repro gp train --kernel sqexp --n 1200 --length 0.3 \
        --store /tmp/factors --exec threaded --nworkers 4

Predict (warm store; each test point is one solve request whose right-hand
side is its cross-covariance column, so concurrent predictions micro-batch
into panel sweeps)::

    python -m repro gp predict --kernel sqexp --n 1200 --length 0.3 \
        --store /tmp/factors --n-test 64 --batch 8 --profile gp.json

``--direct`` skips the service and runs the fused prediction task graph
(``gp-assemble`` -> panel solve -> ``gp-predict``) in process; ``--pcg``
additionally refines the posterior mean with H-preconditioned CG against
the exact streamed covariance.  ``--url`` sends the prediction solves to a
running ``repro serve`` endpoint instead.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

__all__ = ["gp_main"]

_KERNELS = ("sqexp", "matern12", "matern32", "matern52")


def _add_common_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--kernel", choices=list(_KERNELS), default="sqexp",
                   help="GP covariance kernel")
    p.add_argument("--n", type=int, default=800, help="training points")
    p.add_argument("--geometry", choices=["cylinder", "sphere", "plate"],
                   default="cylinder")
    p.add_argument("--length", type=float, default=0.25, help="length scale")
    p.add_argument("--signal", type=float, default=1.0, help="signal std dev")
    p.add_argument("--noise", type=float, default=0.1,
                   help="observation-noise std dev (nugget = noise^2)")
    p.add_argument("--nb", type=int, default=None, help="tile size NB (default n/16)")
    p.add_argument("--eps", type=float, default=1e-6, help="ACA/compression accuracy")
    p.add_argument("--leaf-size", type=int, default=64, help="dense leaf size")
    p.add_argument("--seed", type=int, default=0, help="RNG seed of the synthetic targets")
    p.add_argument("--exec", dest="exec_mode",
                   choices=["eager", "threaded", "process"], default="eager",
                   help="executor for the covariance factorisation")
    p.add_argument("--nworkers", type=int, default=2,
                   help="workers for --exec threaded/process")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="factorization store directory (default: in-memory only)")
    p.add_argument("--mmap", action="store_true",
                   help="memory-map persisted factors on load")
    p.add_argument("--profile", metavar="PATH", default=None,
                   help="write a run report (JSON, with the gp section)")


def _spec_from_args(args):
    from ..service import ProblemSpec

    data = {
        "kind": "gp", "kernel": args.kernel, "n": args.n, "geometry": args.geometry,
        "length": args.length, "signal": args.signal, "noise": args.noise,
        "eps": args.eps, "leaf_size": args.leaf_size,
    }
    if args.nb is not None:
        data["nb"] = args.nb
    return ProblemSpec.from_dict(data)


def _posterior_from_columns(kern, x_train, y, x_test, columns):
    """Fold solved cross-covariance columns ``v_j = K^{-1} k_j`` into the
    posterior: ``mean_j = v_j . y``, ``var_j = k(x_j, x_j) - k_j . v_j``."""
    ks = kern(x_train, x_test)
    v = np.column_stack(columns)
    mean = v.T @ y
    var = np.clip(kern.diag(x_test) - np.einsum("ij,ij->j", ks, v), 0.0, None)
    return mean, var


def _gp_section(spec, args, *, n_test, train_seconds, predict_seconds, **extra) -> dict:
    section = {
        "kernel": spec.kernel,
        "geometry": spec.geometry,
        "n_train": spec.n,
        "n_test": int(n_test),
        "length": spec.length,
        "signal": spec.signal,
        "noise": spec.noise,
        "eps": spec.eps,
        "exec_mode": args.exec_mode,
        "train_seconds": float(train_seconds),
        "predict_seconds": float(predict_seconds),
    }
    if predict_seconds > 0 and n_test:
        section["predict_throughput_rps"] = n_test / predict_seconds
    section.update({k: v for k, v in extra.items() if v is not None})
    return section


def _train(args) -> int:
    from ..geometry import streamed_matvec
    from ..service import FactorizationStore, build_solver, spec_fingerprint
    from .data import synthetic_gp_data
    from .model import GPModel

    spec = _spec_from_args(args)
    key = spec_fingerprint(spec)
    x, y, _, _ = synthetic_gp_data(
        args.n, 1, geometry=args.geometry, noise=args.noise, seed=args.seed
    )
    store = FactorizationStore(args.store, mmap=args.mmap)
    warm = key in store.keys()
    print(f"spec      : {spec.kernel} n={spec.n} nb={spec.effective_nb} "
          f"eps={spec.eps:g} length={spec.length:g} noise={spec.noise:g}")
    print(f"key       : {key[:16]}... ({'warm' if warm else 'cold'})")
    t0 = time.perf_counter()
    solver = store.get_or_build(
        key,
        lambda: build_solver(spec, exec_mode=args.exec_mode, nworkers=args.nworkers),
    )
    train_s = time.perf_counter() - t0
    alpha = solver.solve(y)
    kern = GPModel(
        spec.kernel, length=spec.length, signal=spec.signal,
        noise=spec.noise,
    ).kernel_function(x)
    residual = np.linalg.norm(streamed_matvec(kern, x, alpha) - y) / np.linalg.norm(y)
    print(f"train     : {train_s:.3f} s "
          f"({'store hit' if warm else f'factorised with {args.exec_mode}'})")
    print(f"fit       : |alpha| = {np.linalg.norm(alpha):.6g}, "
          f"relative residual {residual:.2e}")
    if args.store:
        print(f"store     : {len(store.keys())} factorization(s) in {args.store}")
    return _maybe_profile(
        args, spec, mode="gp-train",
        gp=_gp_section(spec, args, n_test=0, train_seconds=train_s, predict_seconds=0.0),
    )


def _predict(args) -> int:
    from ..core import TileHConfig
    from .data import synthetic_gp_data
    from .model import GPModel

    spec = _spec_from_args(args)
    x, y, x_test, f_test = synthetic_gp_data(
        args.n, args.n_test, geometry=args.geometry, noise=args.noise, seed=args.seed
    )
    print(f"spec      : {spec.kernel} n={spec.n} nb={spec.effective_nb} "
          f"eps={spec.eps:g} -> {args.n_test} test points")

    extra: dict = {}
    if args.direct:
        config = TileHConfig(
            nb=spec.effective_nb, eps=spec.eps, leaf_size=spec.leaf_size,
            exec_mode=args.exec_mode, nworkers=args.nworkers,
        )
        model = GPModel(spec.kernel, length=spec.length, signal=spec.signal,
                        noise=spec.noise, config=config)
        t0 = time.perf_counter()
        model.fit(x, y)
        train_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        result = model.predict(x_test)
        predict_s = time.perf_counter() - t0
        mean, var = result.mean, result.var
        from collections import Counter

        counts = Counter(t.kind for t in result.graph.tasks)
        print(f"graph     : {len(result.graph.tasks)} tasks "
              + " ".join(f"{k}={v}" for k, v in sorted(counts.items())))
        if args.pcg:
            mean_pcg, kres = model.predict_pcg(x_test, rtol=args.pcg_rtol)
            drift = np.linalg.norm(mean_pcg - mean) / max(np.linalg.norm(mean_pcg), 1e-300)
            print(f"pcg       : {kres.iterations} iterations, "
                  f"{'converged' if kres.converged else 'NOT converged'}, "
                  f"final residual {kres.residuals[-1]:.2e}, "
                  f"direct-vs-pcg mean drift {drift:.2e}")
            mean = mean_pcg
            extra["krylov"] = {
                "iterations": kres.iterations,
                "converged": kres.converged,
                "final_residual": float(kres.residuals[-1]),
            }
        graph = result.graph
        batch_width = None
        service_stats = None
    elif args.url is not None:
        from concurrent.futures import ThreadPoolExecutor

        from ..service.http import SolveClient

        model = GPModel(spec.kernel, length=spec.length, signal=spec.signal, noise=spec.noise)
        kern = model.kernel_function(x)
        ks = kern(x, x_test)
        client = SolveClient(args.url)
        spec_dict = spec.canonical()
        del spec_dict["nb"]  # canonical nb is the resolved default; resend user intent
        if args.nb is not None:
            spec_dict["nb"] = args.nb
        train_s = 0.0
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=max(1, args.batch)) as pool:
            columns = list(pool.map(
                lambda j: client.solve(spec_dict, ks[:, j], timeout=args.timeout),
                range(args.n_test),
            ))
        predict_s = time.perf_counter() - t0
        mean, var = _posterior_from_columns(kern, x, y, x_test, columns)
        graph = None
        batch_width = None
        service_stats = None
    else:
        from ..service import FactorizationStore, SolveService

        model = GPModel(spec.kernel, length=spec.length, signal=spec.signal, noise=spec.noise)
        kern = model.kernel_function(x)
        ks = kern(x, x_test)
        store = FactorizationStore(args.store, mmap=args.mmap)
        service = SolveService(
            store,
            workers=args.workers,
            max_queue=args.n_test + 8,
            max_batch=args.batch,
            max_delay=0.05 if args.batch > 1 else 0.0,
            exec_mode=args.exec_mode,
            exec_workers=args.nworkers,
        )
        try:
            t0 = time.perf_counter()
            tickets = [service.submit(spec, ks[:, j]) for j in range(args.n_test)]
            columns = [t.result(timeout=args.timeout) for t in tickets]
            predict_s = time.perf_counter() - t0
        finally:
            service.close()
        train_s = 0.0  # folded into the first request's cold build
        mean, var = _posterior_from_columns(kern, x, y, x_test, columns)
        service_stats = service.stats()
        batch = service_stats["batch_size"]
        batch_width = batch["mean"] if batch.get("count") else None
        sweeps = batch.get("count", 0)
        print(f"batching  : {args.n_test} predictions in {sweeps} panel sweep(s), "
              f"mean width {batch_width or 0:.2f}")
        graph = None

    rmse = float(np.sqrt(np.mean((mean - f_test) ** 2)))
    rate = f" ({args.n_test / predict_s:.1f} pred/s)" if predict_s > 0 else ""
    print(f"predict   : {predict_s * 1e3:.1f} ms for {args.n_test} points{rate}")
    print(f"posterior : mean RMSE {rmse:.4g} vs latent truth | "
          f"variance in [{var.min():.4g}, {var.max():.4g}]")
    return _maybe_profile(
        args, spec, mode="gp-predict", graph=graph, service=service_stats,
        gp=_gp_section(
            spec, args, n_test=args.n_test,
            train_seconds=train_s, predict_seconds=predict_s,
            batch_width_mean=batch_width, mean_rmse=rmse,
            var_min=float(var.min()), var_max=float(var.max()), **extra,
        ),
    )


def _maybe_profile(args, spec, *, mode, gp, graph=None, service=None) -> int:
    if args.profile is None:
        return 0
    from ..obs import build_run_report, write_report

    probe = getattr(args, "_probe", None)
    meta = {"mode": mode, "kernel": spec.kernel, "n": spec.n,
            "exec_mode": args.exec_mode}
    report = build_run_report(probe=probe, graph=graph, meta=meta,
                              service=service, gp=gp)
    write_report(report, args.profile)
    print(f"profile   : run report written to {args.profile}")
    return 0


def gp_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro gp",
        description="Gaussian-process regression over the Tile-H Cholesky stack",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="factorise the covariance (cold train)")
    _add_common_args(train)

    predict = sub.add_parser("predict", help="posterior mean/variance at test points")
    _add_common_args(predict)
    predict.add_argument("--n-test", type=int, default=64, help="test points")
    predict.add_argument("--batch", type=int, default=8,
                         help="micro-batch panel width (service mode)")
    predict.add_argument("--workers", type=int, default=2,
                         help="service worker threads (service mode)")
    predict.add_argument("--timeout", type=float, default=None,
                         help="per-prediction deadline in seconds")
    predict.add_argument("--url", default=None,
                         help="send prediction solves to a running `repro serve` endpoint")
    predict.add_argument("--direct", action="store_true",
                         help="run the fused in-process prediction task graph "
                         "instead of the service")
    predict.add_argument("--pcg", action="store_true",
                         help="refine the posterior mean with H-preconditioned CG "
                         "(needs --direct)")
    predict.add_argument("--pcg-rtol", type=float, default=1e-8,
                         help="CG relative-residual tolerance for --pcg")

    args = parser.parse_args(argv)
    if getattr(args, "pcg", False) and not args.direct:
        print("error: --pcg needs --direct (the factors must be local)", file=sys.stderr)
        return 2

    run = _train if args.command == "train" else _predict
    if args.profile is not None:
        from ..obs import Instrumentation

        with Instrumentation() as probe:
            args._probe = probe
            return run(args)
    return run(args)
