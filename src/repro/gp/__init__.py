"""Gaussian-process regression on H-compressed covariances.

The first user-facing ML workload over the Tile-H stack (the GPXPy /
GPPPy_hpx / GPRat pipeline, task-parallel edition):

* **train** — the covariance matrix ``K = K_f(X, X) + s_n^2 I`` of a GP
  covariance kernel (:data:`~repro.geometry.GP_KERNELS`) is assembled in
  Tile-H form and factorised with the tiled H-Cholesky
  (:meth:`~repro.core.TileHMatrix.build_factorize`, eager/threaded/process,
  nested expansion included);
* **predict** — posterior mean and predictive variance at test points run as
  one fused task graph: per-tile cross-covariance assembly (``gp-assemble``
  tasks), tiled forward/backward panel solves over the multi-RHS
  cross-covariance panel, and a per-tile mean/variance reduction
  (``gp-predict`` tasks);
* **pcg refinement** — a loose (cheap) H-Cholesky acts as the preconditioner
  of :func:`~repro.core.pcg` against the exact streamed covariance operator,
  recovering tight posterior means at loose ACA tolerances.

Served through the solve service, a GP problem is a first-class
:class:`~repro.service.ProblemSpec` (``kind="gp"``): training is the cold
factorisation into the :class:`~repro.service.FactorizationStore`, and each
prediction point is one solve request whose right-hand side is its
cross-covariance column — concurrent predictions coalesce in the
micro-batcher into one panel sweep.  See ``docs/gp.md``.
"""

from .data import synthetic_gp_data, latent_function
from .model import GPModel, GPPredictResult

__all__ = [
    "GPModel",
    "GPPredictResult",
    "latent_function",
    "synthetic_gp_data",
]
