"""Deterministic synthetic regression data over the experiment geometries.

GP training sets reuse the paper's point clouds (cylinder / sphere / plate
surfaces) as input locations so one clustering/compression stack serves both
the BEM solves and the regression workload.  Targets are a fixed smooth
latent function of the coordinates plus seeded Gaussian observation noise —
every call with the same arguments reproduces the same dataset bit for bit,
which the exactness and store round-trip tests rely on.
"""

from __future__ import annotations

import numpy as np

from ..geometry import cylinder_cloud, plate_cloud, sphere_cloud

__all__ = ["GEOMETRIES", "latent_function", "synthetic_gp_data"]

#: Geometry name -> point-cloud factory (the service's spec geometries).
GEOMETRIES = {
    "cylinder": cylinder_cloud,
    "sphere": sphere_cloud,
    "plate": plate_cloud,
}


def latent_function(points: np.ndarray) -> np.ndarray:
    """The noise-free ground truth ``f`` sampled by :func:`synthetic_gp_data`.

    A smooth multi-scale field over the coordinates (wavelengths well above
    the mesh step at the sizes the tests/benchmarks use, so a GP with a
    moderate length scale can actually recover it).
    """
    p = np.asarray(points, dtype=np.float64)
    x, y, z = p[:, 0], p[:, 1], p[:, 2]
    return np.sin(3.0 * x + 1.0) * np.cos(2.0 * y) + 0.5 * np.sin(2.0 * z + 0.5)


def synthetic_gp_data(
    n: int,
    n_test: int = 64,
    *,
    geometry: str = "cylinder",
    noise: float = 0.1,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Build a reproducible regression problem on an experiment geometry.

    Returns ``(X, y, X_test, f_test)``: ``n`` training locations with noisy
    observations ``y = f(X) + noise * g`` (``g`` seeded standard normal),
    plus ``n_test`` test locations with their *noise-free* latent values for
    error reporting.  Test locations come from a different-resolution cloud
    of the same surface, so they generally interleave the training points
    (coincident points are harmless: the kernel's nugget convention just
    pulls the posterior toward the observation there).
    """
    if geometry not in GEOMETRIES:
        raise ValueError(f"unknown geometry {geometry!r}; choose from {tuple(GEOMETRIES)}")
    if n < 1 or n_test < 1:
        raise ValueError(f"need n >= 1 and n_test >= 1, got n={n}, n_test={n_test}")
    cloud = GEOMETRIES[geometry]
    x_train = cloud(n)
    x_test = cloud(n_test)
    rng = np.random.default_rng(seed)
    y = latent_function(x_train) + float(noise) * rng.standard_normal(n)
    return x_train, y, x_test, latent_function(x_test)
