"""GP regression driven by the tiled H-Cholesky task graphs.

Training factorises the H-compressed covariance ``K = K_f(X, X) + s_n^2 I``
with :meth:`~repro.core.TileHMatrix.build_factorize` (``method="cholesky"``)
— assembly and factorisation fuse into one DAG under ``exec_mode="threaded"``
/ ``"process"``, nested tile expansion included.  Prediction is its own fused
task graph built from three kinds:

``gp-assemble``
    one task per train tile writes that tile's rows of the permuted
    cross-covariance panel ``K_* = K(X, X_*)`` (two copies: one is consumed
    by the solve sweep, one survives for the variance reduction);
``gemm`` / ``trsm``
    the forward/backward substitution tasks of
    :func:`~repro.core.algorithms.submit_chol_solve_tasks` turn the panel
    into ``V = K^{-1} K_*`` in place;
``gp-predict``
    one reduction task per train tile accumulates its contribution to the
    posterior mean ``K_*^T K^{-1} y = V^T y`` and to the explained variance
    ``diag(K_*^T K^{-1} K_*) = colsum(K_* . V)``.

The reduction tasks all hold the accumulator handle RW, so STF serialises
them in submission order — eager and threaded runs are bit-identical (the
predict graph of a ``process``-mode model runs on worker *threads*: its
assemble/reduce closures are not process-shippable, and threaded execution
is bit-identical anyway).

:meth:`GPModel.predict_pcg` is the Krylov path: a *loose* (cheap) H-Cholesky
preconditions :func:`~repro.core.pcg` against the exact streamed covariance
operator, recovering tight posterior means without a tight factorisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import TileHConfig, TileHMatrix, pcg
from ..core.algorithms import submit_chol_solve_tasks
from ..geometry import GP_KERNELS, make_kernel
from ..geometry.assembly import streamed_matvec
from ..runtime import AccessMode, StfEngine, ThreadedExecutor

__all__ = ["GPModel", "GPPredictResult"]

R, RW = AccessMode.R, AccessMode.RW


@dataclass
class GPPredictResult:
    """Posterior at the test points plus the graph that computed it.

    ``var`` is the *predictive* variance (latent variance plus the noise
    nugget: the kernel's diagonal convention includes ``s_n^2``), clipped at
    zero against compression round-off.  ``seconds`` is the executor wall
    time for deferred runs, None when the graph ran eagerly at submission.
    """

    mean: np.ndarray
    var: np.ndarray
    graph: object
    seconds: float | None = None

    def __iter__(self):  # allow ``mean, var = model.predict(xs)`` unpacking
        yield self.mean
        yield self.var


class GPModel:
    """Gaussian-process regression with an H-compressed covariance.

    Parameters mirror the service's GP spec: ``kernel`` is one of
    :data:`~repro.geometry.GP_KERNELS`, ``length``/``signal`` the
    covariance hyperparameters, ``noise`` the observation noise standard
    deviation (the assembled covariance carries ``nugget = noise**2`` on its
    diagonal), and ``config`` the full Tile-H stack configuration —
    tile size, ACA tolerance, executor, scheduler, nested expansion.
    """

    def __init__(
        self,
        kernel: str = "sqexp",
        *,
        length: float = 0.25,
        signal: float = 1.0,
        noise: float = 0.1,
        config: TileHConfig | None = None,
    ) -> None:
        if kernel not in GP_KERNELS:
            raise ValueError(f"unknown GP kernel {kernel!r}; choose from {GP_KERNELS}")
        if noise <= 0.0:
            raise ValueError(f"noise must be > 0 (the covariance needs a nugget), got {noise}")
        self.kernel = kernel
        self.length = float(length)
        self.signal = float(signal)
        self.noise = float(noise)
        self.config = config or TileHConfig()
        self.solver_: TileHMatrix | None = None
        self.info_ = None
        self.x_: np.ndarray | None = None
        self.y_: np.ndarray | None = None
        self.kern_ = None

    # -- hyperparameters ------------------------------------------------------
    @property
    def nugget(self) -> float:
        """Diagonal regulariser of the training covariance: ``noise ** 2``."""
        return self.noise**2

    def kernel_function(self, points: np.ndarray):
        """The covariance :class:`~repro.geometry.KernelFunction` over ``points``."""
        return make_kernel(
            self.kernel, points, length=self.length, signal=self.signal, nugget=self.nugget
        )

    # -- training -------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "GPModel":
        """Assemble + H-Cholesky-factorise the covariance of ``x`` (in place).

        Runs on whatever executor ``config`` selects; the factorisation DAG
        lands in ``info_`` (``info_.graph``) for simulation/rendering.
        """
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
        y = np.ascontiguousarray(np.asarray(y, dtype=np.float64))
        if x.ndim != 2:
            raise ValueError(f"x must be (n, dim) coordinates, got shape {x.shape}")
        if y.shape != (x.shape[0],):
            raise ValueError(f"y must have shape ({x.shape[0]},), got {y.shape}")
        kern = self.kernel_function(x)
        solver, info = TileHMatrix.build_factorize(kern, x, self.config, method="cholesky")
        self._attach(solver, x, y)
        self.info_ = info
        return self

    def _attach(self, solver: TileHMatrix, x: np.ndarray, y: np.ndarray) -> None:
        self.solver_ = solver
        self.x_ = x
        self.y_ = y
        self.kern_ = self.kernel_function(x)

    def _require_fit(self) -> TileHMatrix:
        if self.solver_ is None:
            raise RuntimeError("call fit() (or load()) before predicting")
        return self.solver_

    # -- prediction -----------------------------------------------------------
    def predict(self, x_test: np.ndarray) -> GPPredictResult:
        """Posterior mean and predictive variance at ``x_test`` as one DAG."""
        solver = self._require_fit()
        x_test = np.ascontiguousarray(np.asarray(x_test, dtype=np.float64))
        if x_test.ndim != 2 or x_test.shape[1] != self.x_.shape[1]:
            raise ValueError(
                f"x_test must be (m, {self.x_.shape[1]}) coordinates, got shape {x_test.shape}"
            )
        desc = solver.desc
        grid = desc.super
        nt = desc.nt
        m = x_test.shape[0]
        cfg = solver.config
        deferred = cfg.exec_mode in ("threaded", "process")
        if deferred:
            eng = StfEngine(mode="deferred")
        else:
            eng = StfEngine(mode="eager", racecheck=cfg.racecheck)

        x_perm = self.x_[desc.perm]
        y_perm = np.ascontiguousarray(self.y_[desc.perm])
        ks = np.empty((desc.n, m), dtype=np.float64)  # cross-covariance K_* (permuted rows)
        work = np.empty((desc.n, m), dtype=np.float64)  # solve buffer -> V = K^{-1} K_*
        acc = np.zeros((2, m), dtype=np.float64)  # rows: mean, explained variance
        ks_segs = [ks[desc.tile_slice(k)] for k in range(nt)]
        wk_segs = [work[desc.tile_slice(k)] for k in range(nt)]
        ks_handles = [eng.handle(ks_segs[k], f"ks[{k}]") for k in range(nt)]
        wk_handles = [eng.handle(wk_segs[k], f"v[{k}]") for k in range(nt)]
        acc_handle = eng.handle(acc, "gp_acc")
        kern = self.kern_

        def assemble(k):
            block = kern(x_perm[desc.tile_slice(k)], x_test)
            ks_segs[k][...] = block
            wk_segs[k][...] = block

        def reduce_tile(k):
            acc[0] += wk_segs[k].T @ y_perm[desc.tile_slice(k)]
            acc[1] += np.einsum("ij,ij->j", ks_segs[k], wk_segs[k])

        # Cross-covariance panel assembly: ready immediately, highest first so
        # the forward sweep can start at tile 0 while late tiles assemble.
        for k in range(nt):
            rows = grid.tile_rows(k)
            eng.insert_task(
                "gp-assemble",
                (lambda k=k: assemble(k)),
                [(ks_handles[k], RW), (wk_handles[k], RW)],
                priority=10 * nt - k,
                flops=float(8 * rows * m),
                label=f"gp_assemble({k})",
            )
        submit_chol_solve_tasks(eng, desc, wk_segs, wk_handles)
        for k in range(nt):
            rows = grid.tile_rows(k)
            eng.insert_task(
                "gp-predict",
                (lambda k=k: reduce_tile(k)),
                [(wk_handles[k], R), (ks_handles[k], R), (acc_handle, RW)],
                flops=float(4 * rows * m),
                label=f"gp_predict({k})",
            )
        graph = eng.wait_all()
        seconds = None
        if deferred:
            executor = ThreadedExecutor(cfg.nworkers, scheduler=cfg.scheduler)
            seconds = executor.run(graph)

        mean = acc[0].copy()
        var = np.clip(kern.diag(x_test) - acc[1], 0.0, None)
        return GPPredictResult(mean=mean, var=var, graph=graph, seconds=seconds)

    def predict_pcg(
        self,
        x_test: np.ndarray,
        *,
        rtol: float = 1e-10,
        max_iter: int = 500,
    ):
        """Posterior mean via preconditioned CG against the *exact* covariance.

        ``alpha = K^{-1} y`` is solved matrix-free (streamed dense operator —
        the kernel's nugget convention puts ``s_n^2`` on the diagonal, so the
        operator is exactly the training covariance) with the loose
        H-Cholesky as preconditioner, then ``mean = K_*^T alpha``.  Returns
        ``(mean, KrylovResult)``; the iteration count measures the
        preconditioner's quality at the configured ACA tolerance.
        """
        solver = self._require_fit()
        x_test = np.ascontiguousarray(np.asarray(x_test, dtype=np.float64))
        kern = self.kern_
        x = self.x_
        result = pcg(
            lambda v: streamed_matvec(kern, x, v),
            self.y_,
            precond=solver.solve,
            rtol=rtol,
            max_iter=max_iter,
        )
        mean = kern(x_test, x) @ result.x
        return mean, result

    # -- persistence ----------------------------------------------------------
    def save(self, path, *, compress: bool = True) -> None:
        """Persist the trained factors (the expensive state) to ``path``.

        The training data and hyperparameters are *not* stored — they are
        cheap and deterministic on the client (spec-driven geometry +
        seeded targets); :meth:`load` reattaches them.
        """
        self._require_fit().save(path, compress=compress)

    @classmethod
    def load(
        cls,
        path,
        x: np.ndarray,
        y: np.ndarray,
        *,
        kernel: str = "sqexp",
        length: float = 0.25,
        signal: float = 1.0,
        noise: float = 0.1,
        mmap: bool = False,
        config: TileHConfig | None = None,
    ) -> "GPModel":
        """Rebuild a trained model from factors saved by :meth:`save`.

        ``x``/``y`` and the hyperparameters must match the fitting call;
        ``mmap=True`` memory-maps uncompressed archives (zero-copy warm
        start).  Predictions are bit-identical to the pre-save model.
        """
        model = cls(kernel, length=length, signal=signal, noise=noise, config=config)
        solver = TileHMatrix.load(path, config, mmap=mmap)
        model.config = solver.config
        model._attach(
            solver,
            np.ascontiguousarray(np.asarray(x, dtype=np.float64)),
            np.ascontiguousarray(np.asarray(y, dtype=np.float64)),
        )
        return model
