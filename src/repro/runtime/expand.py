"""Nested task expansion: policy, accounting, and graph contraction.

The Tile-H factorisation submits one opaque task per tile kernel, so a large
tile's H-arithmetic serialises an entire panel while other workers idle —
the cause of the paper's HMAT-vs-Tile-H crossover (Figs. 6-7).  Following
the nested-task-parallel H-LU literature (arXiv:1906.00874) and the
semi-automatic graph-construction pass of arXiv:1911.07531, an *expandable*
task may instead be replaced, at submission time, by a subgraph of
finer-grain subtasks over the tile's internal block tree.

This module holds the runtime-side pieces:

* :class:`NestedPolicy` — the knobs an :class:`~repro.runtime.stf.StfEngine`
  is configured with (``min_leaf`` granularity cutoff; ``coarse`` access
  mode for process executors, whose shared-memory data plane ships whole
  tiles);
* :class:`NestedStats` — records every expansion performed by the engine
  (which submission ranges of the graph stand for which opaque kernel) and
  derives the observability report: expanded-task count, subtasks per
  expansion, and the critical-path length before/after expansion;
* :meth:`NestedStats.contract` — rebuilds the *opaque-equivalent* graph by
  collapsing each expansion's subtasks into one node (cost = sum of member
  costs, edges = union of external edges).  Critical path and simulated
  makespan of the contracted graph are the deterministic "before" proxies
  against which the expanded graph's "after" numbers are compared, under
  one consistent flop model.

The expansion *content* (how an H-GETRF/TRSM/GEMM walks its block tree) is
kernel knowledge and lives in :mod:`repro.core.nested`; the runtime only
knows that an expander is a callable that submits subtasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dag import TaskGraph

__all__ = ["NestedPolicy", "NestedStats", "ExpansionRecord"]


@dataclass(frozen=True)
class NestedPolicy:
    """Configuration of nested task expansion.

    Attributes
    ----------
    min_leaf:
        Granularity cutoff: the expansion recurses only while the written
        operand's smaller dimension exceeds ``min_leaf``; below it one
        opaque subtask (running the ordinary recursive kernel) is submitted
        instead, bounding the expanded graph's size.
    coarse:
        Declare subtask accesses at *tile* granularity instead of sub-block
        granularity.  Process executors require this: their per-handle
        shared-memory shipping protocol assumes disjoint handles, which
        hierarchical sub-block handles violate.  Coarse accesses serialise
        the subtasks of one tile (still bit-identical results); the
        fine-grain graph is what the simulator and the threaded executor
        exploit.
    """

    min_leaf: int = 128
    coarse: bool = False

    def __post_init__(self) -> None:
        if self.min_leaf < 1:
            raise ValueError(f"min_leaf must be >= 1, got {self.min_leaf}")


@dataclass(frozen=True)
class ExpansionRecord:
    """One opaque task replaced by the subtask range ``[start, stop)``."""

    kind: str
    label: str
    start: int
    stop: int

    @property
    def n_subtasks(self) -> int:
        return self.stop - self.start


@dataclass
class NestedStats:
    """Accounting of every expansion an engine performed."""

    policy: NestedPolicy
    records: list = field(default_factory=list)

    def record(self, kind: str, label: str, start: int, stop: int) -> ExpansionRecord:
        if stop <= start:
            raise ValueError(
                f"expansion of {kind!r} ({label!r}) submitted no subtasks"
            )
        rec = ExpansionRecord(kind=kind, label=label, start=start, stop=stop)
        self.records.append(rec)
        return rec

    @property
    def expanded_tasks(self) -> int:
        return len(self.records)

    @property
    def subtasks(self) -> int:
        return sum(r.n_subtasks for r in self.records)

    def contract(self, graph: TaskGraph) -> TaskGraph:
        """The opaque-equivalent graph: each expansion collapsed to one node.

        Every recorded subtask range becomes a single task carrying the
        *sum* of its members' costs (flops and seconds) and the union of
        their external dependencies; unexpanded tasks are copied as-is.
        Because each expansion is a contiguous submission range, the
        contracted graph is exactly the graph the opaque submission would
        have produced, under the same flop model as the expanded graph —
        the fair "before" baseline for critical-path/makespan comparisons.
        """
        member: dict[int, int] = {}
        for gi, rec in enumerate(self.records):
            for tid in range(rec.start, rec.stop):
                if tid in member:
                    raise ValueError(
                        f"task #{tid} belongs to two expansion records"
                    )
                member[tid] = gi
        out = TaskGraph()
        mapping: dict[int, object] = {}
        group_task: dict[int, object] = {}
        for t in graph.tasks:
            gi = member.get(t.id)
            if gi is None:
                nt = out.new_task(
                    t.kind,
                    priority=t.priority,
                    seconds=t.seconds,
                    flops=t.flops,
                    label=t.label,
                )
                mapping[t.id] = nt
            else:
                g = group_task.get(gi)
                if g is None:
                    rec = self.records[gi]
                    g = out.new_task(rec.kind, priority=t.priority, label=rec.label)
                    group_task[gi] = g
                g.seconds += t.seconds
                g.flops += t.flops
                mapping[t.id] = g
        for t in graph.tasks:
            after = mapping[t.id]
            for d in t.deps:
                before = mapping[d]
                if before is not after:
                    out.add_dependency(before, after)
        return out

    def report(self, graph: TaskGraph, cost_attr: str = "flops") -> dict:
        """The observability ``nested`` section for a finished graph."""
        n_exp = self.expanded_tasks
        n_sub = self.subtasks
        contracted = self.contract(graph)
        return {
            "min_leaf": self.policy.min_leaf,
            "coarse": self.policy.coarse,
            "expanded_tasks": n_exp,
            "subtasks": n_sub,
            "subtasks_per_expansion": (n_sub / n_exp) if n_exp else 0.0,
            "graph_tasks": len(graph.tasks),
            "contracted_tasks": len(contracted.tasks),
            "cost_attr": cost_attr,
            "critical_path_before": contracted.critical_path(cost_attr),
            "critical_path_after": graph.critical_path(cost_attr),
        }
