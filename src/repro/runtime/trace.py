"""Execution traces: per-worker timelines, gantt rendering, trace export."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .kinds import kind_letter

__all__ = ["TraceEvent", "ExecutionTrace", "render_gantt", "export_chrome_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One task execution on one (virtual or real) worker."""

    task_id: int
    kind: str
    worker: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """Ordered set of :class:`TraceEvent`; provides utilization summaries."""

    nworkers: int
    events: list[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        if not (0 <= event.worker < self.nworkers):
            raise ValueError(f"worker {event.worker} out of range [0, {self.nworkers})")
        if event.end < event.start:
            raise ValueError("event ends before it starts")
        self.events.append(event)

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def busy_time(self, worker: int) -> float:
        return sum(e.duration for e in self.events if e.worker == worker)

    def utilization(self) -> float:
        """Fraction of worker-time spent executing tasks (1.0 = perfect)."""
        span = self.makespan
        if span == 0.0:
            return 0.0
        busy = sum(e.duration for e in self.events)
        return busy / (span * self.nworkers)

    def worker_timelines(self) -> list[list[TraceEvent]]:
        lanes: list[list[TraceEvent]] = [[] for _ in range(self.nworkers)]
        for e in self.events:
            lanes[e.worker].append(e)
        for lane in lanes:
            lane.sort(key=lambda e: e.start)
        return lanes


def render_gantt(trace: ExecutionTrace, width: int = 80) -> str:
    """Text gantt chart: one row per worker, one char per time bucket.

    Kernel kinds map to the letters of the shared
    :mod:`kind registry <repro.runtime.kinds>` (``?`` for unregistered
    kinds); idle time prints as ``.``.  Useful to eyeball pipeline stalls
    that the paper attributes to bulk-synchronous or contention effects.
    """
    span = trace.makespan
    if span == 0.0 or not trace.events:
        return "(empty trace)"
    rows = []
    for w, lane in enumerate(trace.worker_timelines()):
        row = ["."] * width
        for e in lane:
            c0 = int(e.start / span * width)
            c1 = max(c0 + 1, int(e.end / span * width))
            ch = kind_letter(e.kind)
            for c in range(c0, min(c1, width)):
                row[c] = ch
        rows.append(f"w{w:02d} |" + "".join(row) + "|")
    return "\n".join(rows)


def export_chrome_trace(trace: ExecutionTrace, path, *, counters=None, metadata=None) -> "Path":
    """Write the trace in Chrome tracing JSON (``chrome://tracing`` /
    Perfetto), the de-facto replacement for StarPU's Paje traces.

    Workers map to thread ids and are named via ``"ph": "M"`` metadata
    events, so Perfetto lanes read "worker 0..n-1" in execution order
    instead of bare tids.  ``counters`` adds counter tracks (``"ph": "C"``):
    a mapping of series name to ``[(t_seconds, value), ...]`` samples, e.g.
    the scheduler queue depth and H-matrix memory series collected by an
    :class:`~repro.obs.Instrumentation` probe.  ``metadata`` entries are
    merged into the metadata block next to ``nworkers`` / ``makespan`` /
    ``utilization``.  Times are exported in microseconds.
    """
    events = []
    for w in range(trace.nworkers):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": w,
                "args": {"name": f"worker {w}"},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 0,
                "tid": w,
                "args": {"sort_index": w},
            }
        )
    for e in trace.events:
        events.append(
            {
                "name": f"{e.kind}#{e.task_id}",
                "cat": e.kind,
                "ph": "X",
                "ts": e.start * 1e6,
                "dur": e.duration * 1e6,
                "pid": 0,
                "tid": e.worker,
            }
        )
    for name, samples in (counters or {}).items():
        for t, value in samples:
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": t * 1e6,
                    "pid": 0,
                    "args": {name: value},
                }
            )
    meta = {
        "nworkers": trace.nworkers,
        "makespan": trace.makespan,
        "utilization": trace.utilization(),
    }
    meta.update(metadata or {})
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": meta,
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(payload))
    return p
