"""SharedTileArena: numpy payloads in ``multiprocessing.shared_memory``.

The process executor ships tile payloads (dense tiles, Rk factors, packed
Fortran-order LU triangles) between the parent and worker processes.  Pickling
whole H-matrix trees per task would copy megabytes across pipes; instead, this
module places every numpy array into named shared-memory segments exactly once
and pickles only an :class:`ArenaRef` (segment name + offset + dtype/shape/
order).  The receiving side reattaches the segment and rebuilds a zero-copy
``np.ndarray`` view, so worker LAPACK/BLAS calls operate directly on shared
pages — no serialization on the hot path.

Pieces:

* :class:`SharedTileArena` — bump allocator over named segments with 64-byte
  alignment (cache-line / SIMD friendly) and per-array dedup by identity.
* :class:`ArenaRef` — the picklable pointer (segment, offset, shape, dtype,
  order).  Fortran order is preserved so packed LU triangles stay LAPACK-ready.
* ``dumps``/``loads`` — pickle with ``persistent_id`` hooks that swap ndarrays
  for refs on the way out and views on the way in; ``loads_private`` instead
  materialises *private copies* (the parent uses it to harvest results into
  ordinary process-local arrays at the end of a run).
* ``unlink_segment`` / ``orphaned_segments`` — cleanup and leak auditing.

Ownership protocol: the *parent* unlinks every segment (its own and the ones
workers announce).  Workers attach with ``untrack=True`` so the per-process
``resource_tracker`` does not double-manage (Python registers shared memory on
attach as well as create); the parent keeps tracker registration as a crash
safety net.
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "SEGMENT_PREFIX",
    "ArenaRef",
    "SharedTileArena",
    "unlink_segment",
    "orphaned_segments",
]

SEGMENT_PREFIX = "reproshm"

_ALIGN = 64

_arena_counter = itertools.count()


@dataclass(frozen=True)
class ArenaRef:
    """Picklable pointer to one array stored in a shared-memory segment."""

    segment: str
    offset: int
    shape: tuple
    dtype: str
    order: str


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Remove ``shm`` from this process's resource tracker.

    CPython registers shared memory with the tracker on *attach* as well as
    on create; a worker that attached must not unlink-at-exit segments the
    parent still owns.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker may be absent/odd platform
        pass


def unlink_segment(name: str) -> bool:
    """Unlink the named segment; ``False`` when it does not exist."""
    try:
        shm = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced with another unlink
        pass
    try:
        shm.close()
    except BufferError:  # pragma: no cover - exported views keep the mapping
        pass
    return True


def orphaned_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live ``/dev/shm`` segments with ``prefix`` (leak audit)."""
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-POSIX fallback
        return []
    return sorted(n for n in os.listdir(root) if n.startswith(prefix))


class _Segment:
    __slots__ = ("shm", "used")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.used = 0


class SharedTileArena:
    """Bump allocator placing numpy arrays in named shared-memory segments.

    Parameters
    ----------
    tag:
        Segment name prefix (must start with :data:`SEGMENT_PREFIX` for the
        leak sweeper to find crashed-run leftovers).  Auto-generated when
        omitted.
    segment_bytes:
        Granularity of pooled segments; arrays at least this large get a
        dedicated segment.
    untrack:
        Unregister every created/attached segment from this process's
        resource tracker (worker-side mode: the parent owns unlinking).
    """

    def __init__(
        self,
        tag: str | None = None,
        *,
        segment_bytes: int = 4 << 20,
        untrack: bool = False,
    ) -> None:
        if tag is None:
            tag = f"{SEGMENT_PREFIX}{os.getpid():x}a{next(_arena_counter):x}"
        self.tag = tag
        self.segment_bytes = int(segment_bytes)
        self._untrack = untrack
        self._counter = itertools.count()
        self._segments: dict[str, _Segment] = {}
        self._current: _Segment | None = None
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        # id(array) -> ArenaRef for arrays already placed; strong refs keep
        # the ids stable for the arena's lifetime.
        self._placed: dict[int, ArenaRef] = {}
        self._keepalive: list[np.ndarray] = []
        self._views: dict[ArenaRef, np.ndarray] = {}
        self._new_segments: list[str] = []
        self._copied_bytes = 0

    # -- allocation ----------------------------------------------------------
    def _new_segment(self, size: int) -> _Segment:
        name = f"{self.tag}s{next(self._counter)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(size, 1))
        if self._untrack:
            _untrack(shm)
        seg = _Segment(shm)
        self._segments[name] = seg
        self._new_segments.append(name)
        return seg

    def _alloc(self, nbytes: int) -> tuple[shared_memory.SharedMemory, int]:
        """A ``(segment, offset)`` slot of at least ``nbytes`` bytes."""
        if nbytes >= self.segment_bytes:
            seg = self._new_segment(nbytes)
            seg.used = nbytes
            return seg.shm, 0
        seg = self._current
        if seg is not None:
            off = -(-seg.used // _ALIGN) * _ALIGN
            if off + nbytes <= seg.shm.size:
                seg.used = off + nbytes
                return seg.shm, off
        seg = self._new_segment(self.segment_bytes)
        seg.used = nbytes
        self._current = seg
        return seg.shm, 0

    def place(self, arr: np.ndarray) -> ArenaRef:
        """Copy ``arr`` into shared memory (once per array identity).

        A dedup hit *re-syncs* the shared slot from ``arr`` unless ``arr``
        is the shared view itself: a worker that assembled a tile on its own
        heap, shipped it, then mutated it in place (GETRF/TRSM on the same
        tile) must overwrite the stale shared copy on the next shipment.
        """
        ref = self._placed.get(id(arr))
        if ref is not None:
            view = self._views.get(ref)
            if view is not None and arr is not view:
                if view.shape == arr.shape and view.dtype == arr.dtype:
                    view[...] = arr
                    self._copied_bytes += int(arr.nbytes)
                else:
                    # Resized in place (ndarray.resize): the old slot no
                    # longer fits — fall through and place afresh.
                    ref = None
            if ref is not None:
                return ref
        if arr.dtype == object:
            raise TypeError("object-dtype arrays cannot live in shared memory")
        order = "F" if (arr.flags.f_contiguous and not arr.flags.c_contiguous) else "C"
        shm, off = self._alloc(int(arr.nbytes))
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off, order=order)
        view[...] = arr
        ref = ArenaRef(shm.name, off, tuple(arr.shape), arr.dtype.str, order)
        # Register both the original and the shared view so re-pickling the
        # view (e.g. a worker reshipping a skeleton) finds the same slot.
        self._placed[id(arr)] = ref
        self._placed[id(view)] = ref
        self._keepalive.append(arr)
        self._keepalive.append(view)
        self._views[ref] = view
        self._copied_bytes += int(arr.nbytes)
        return ref

    def resolve(self, ref: ArenaRef) -> np.ndarray:
        """Zero-copy view of the array ``ref`` points to."""
        view = self._views.get(ref)
        if view is not None:
            return view
        shm = self._segments.get(ref.segment)
        if shm is not None:
            shm = shm.shm
        else:
            shm = self._attached.get(ref.segment)
            if shm is None:
                shm = shared_memory.SharedMemory(name=ref.segment, create=False)
                if self._untrack:
                    _untrack(shm)
                self._attached[ref.segment] = shm
        view = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf,
            offset=ref.offset, order=ref.order,
        )
        self._placed[id(view)] = ref
        self._keepalive.append(view)
        self._views[ref] = view
        return view

    # -- pickling ------------------------------------------------------------
    def dumps(self, obj) -> bytes:
        """Pickle ``obj`` with every ndarray swapped for an :class:`ArenaRef`."""
        buf = io.BytesIO()
        _ArenaPickler(buf, self).dump(obj)
        return buf.getvalue()

    def loads(self, blob: bytes):
        """Unpickle, resolving refs to zero-copy shared views."""
        return _ArenaUnpickler(io.BytesIO(blob), self).load()

    def loads_private(self, blob: bytes, cache: dict | None = None):
        """Unpickle, materialising refs as *private copies*.

        ``cache`` maps :class:`ArenaRef` -> private array across calls, so
        payloads that share an array in shared memory also share the private
        copy (e.g. cluster permutations referenced by several tiles).
        """
        return _PrivatizingUnpickler(io.BytesIO(blob), self, cache).load()

    # -- accounting ----------------------------------------------------------
    def take_new_segments(self) -> list[str]:
        """Segment names created since the last call (for ownership handoff)."""
        out, self._new_segments = self._new_segments, []
        return out

    def take_copied_bytes(self) -> int:
        """Bytes copied into shared memory since the last call."""
        out, self._copied_bytes = self._copied_bytes, 0
        return out

    def segment_names(self) -> list[str]:
        """Every segment this arena created (attached ones excluded)."""
        return list(self._segments)

    # -- teardown ------------------------------------------------------------
    def close(self) -> None:
        """Drop views and close mappings.  Does NOT unlink (owner's job)."""
        self._views.clear()
        self._placed.clear()
        self._keepalive.clear()
        self._current = None
        for seg in self._segments.values():
            try:
                seg.shm.close()
            except BufferError:  # pragma: no cover - caller kept a view alive
                pass
        for shm in self._attached.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover
                pass
        self._segments.clear()
        self._attached.clear()


class _ArenaPickler(pickle.Pickler):
    def __init__(self, file, arena: SharedTileArena) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.arena = arena

    def persistent_id(self, obj):
        # Plain ndarrays and subclasses (np.memmap included: a memmap payload
        # gets *copied* into shared memory, which is what workers need).
        if isinstance(obj, np.ndarray):
            return self.arena.place(np.asarray(obj))
        return None


class _ArenaUnpickler(pickle.Unpickler):
    def __init__(self, file, arena: SharedTileArena) -> None:
        super().__init__(file)
        self.arena = arena

    def persistent_load(self, pid):
        if isinstance(pid, ArenaRef):
            return self.arena.resolve(pid)
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


class _PrivatizingUnpickler(pickle.Unpickler):
    def __init__(self, file, arena: SharedTileArena, cache: dict | None) -> None:
        super().__init__(file)
        self.arena = arena
        self.cache = cache if cache is not None else {}

    def persistent_load(self, pid):
        if isinstance(pid, ArenaRef):
            arr = self.cache.get(pid)
            if arr is None:
                arr = np.array(self.arena.resolve(pid), order=pid.order, copy=True)
                self.cache[pid] = arr
            return arr
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
