"""Real thread-pool execution of a deferred task graph.

NumPy's BLAS kernels release the GIL, so on a genuinely multicore host the
coarse tile tasks of the Tile-H LU do overlap under CPython.  This executor
runs a graph built by a *deferred* :class:`~repro.runtime.stf.StfEngine`
with worker threads pulling ready tasks from a shared condition-guarded
queue.  (On this reproduction's single-core reference machine it degrades to
serial execution and exists for API completeness and multicore users.)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .dag import TaskGraph
from .trace import ExecutionTrace, TraceEvent

__all__ = ["ThreadedExecutor"]


@dataclass
class ThreadedExecutor:
    """Execute a deferred :class:`TaskGraph` on real threads."""

    nworkers: int
    trace: ExecutionTrace | None = field(default=None)

    def __post_init__(self) -> None:
        if self.nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {self.nworkers}")

    def run(self, graph: TaskGraph) -> float:
        """Run all tasks respecting dependencies; returns elapsed seconds.

        Raises the first worker exception (after draining the pool).  A
        caller-supplied :class:`ExecutionTrace` is appended to (it must
        cover at least ``nworkers`` lanes); otherwise a fresh trace is
        created.  Each executed task's measured wall time is written back to
        ``task.seconds`` so a deferred graph can be replayed in the
        simulator with real costs.
        """
        n = len(graph.tasks)
        if n == 0:
            return 0.0
        graph.validate()
        indegree = {t.id: len(t.deps) for t in graph.tasks}
        lock = threading.Condition()
        ready: list = [t for t in graph.tasks if indegree[t.id] == 0]
        # Sort sources by priority so high-priority work starts first.
        ready.sort(key=lambda t: -t.priority)
        state = {"completed": 0, "error": None}
        if self.trace is None:
            self.trace = ExecutionTrace(nworkers=self.nworkers)
        elif self.trace.nworkers < self.nworkers:
            raise ValueError(
                f"supplied trace covers {self.trace.nworkers} workers, "
                f"executor has {self.nworkers}"
            )
        t_start = time.perf_counter()

        def worker(widx: int) -> None:
            while True:
                with lock:
                    while not ready and state["completed"] < n and state["error"] is None:
                        lock.wait()
                    if state["error"] is not None or state["completed"] >= n:
                        lock.notify_all()
                        return
                    task = ready.pop(0)
                try:
                    t0 = time.perf_counter() - t_start
                    if task.func is not None:
                        task.func()
                    t1 = time.perf_counter() - t_start
                except BaseException as exc:  # propagate to the caller
                    with lock:
                        state["error"] = exc
                        lock.notify_all()
                    return
                if task.func is not None:
                    # Pre-traced tasks (func=None) keep their explicit cost.
                    task.seconds = t1 - t0
                with lock:
                    self.trace.add(TraceEvent(task.id, task.kind, widx, t0, t1))
                    state["completed"] += 1
                    for s in task.successors:
                        indegree[s] -= 1
                        if indegree[s] == 0:
                            succ = graph.tasks[s]
                            # Keep the ready list priority-ordered.
                            pos = 0
                            while pos < len(ready) and ready[pos].priority >= succ.priority:
                                pos += 1
                            ready.insert(pos, succ)
                    lock.notify_all()

        threads = [
            threading.Thread(target=worker, args=(w,), name=f"repro-worker-{w}")
            for w in range(self.nworkers)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if state["error"] is not None:
            raise state["error"]
        return time.perf_counter() - t_start
