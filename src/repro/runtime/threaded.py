"""Scheduler-backed thread-pool execution of a deferred task graph.

NumPy's BLAS/ACA kernels release the GIL, so on a multicore host the coarse
tile tasks of the Tile-H LU genuinely overlap under CPython.  This executor
runs a graph built by a *deferred* :class:`~repro.runtime.stf.StfEngine`
with real worker threads driven by any virtual-time
:class:`~repro.runtime.schedulers.Scheduler` policy (``ws``, ``lws``,
``prio``, ``eager``, ``dm``): ready tasks are pushed to the worker that
released them (``push(task, w)``), idle workers pull or steal through the
policy's own ``pop(w)``.  All scheduler calls happen under one shared
condition variable, so the per-worker queue and steal semantics are exactly
the simulator's — a threaded run follows the same pull/steal order a
virtual-time replay would take under equal costs (bit-for-bit with one
worker, where timing jitter cannot reorder completions).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..obs.instrument import current as _current_probe
from ..obs.tracing import current_trace
from .dag import TaskGraph
from .schedulers import Scheduler, make_scheduler
from .trace import ExecutionTrace, TraceEvent

__all__ = ["ThreadedExecutor"]


@dataclass
class ThreadedExecutor:
    """Execute a deferred :class:`TaskGraph` on real threads under a policy.

    ``scheduler`` accepts any :func:`~repro.runtime.schedulers.make_scheduler`
    name or a :class:`Scheduler` instance; it is reset (``setup``) per run.

    When an :class:`~repro.obs.Instrumentation` probe is active (or passed
    via ``instrument``), the run records per-task spans, per-worker wait
    time, scheduler counters and a queue-depth time series into it.
    """

    nworkers: int
    scheduler: Scheduler | str = "lws"
    trace: ExecutionTrace | None = field(default=None)
    instrument: object | None = field(default=None)

    def __post_init__(self) -> None:
        if self.nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {self.nworkers}")
        if isinstance(self.scheduler, str):
            self.scheduler = make_scheduler(self.scheduler)

    def run(self, graph: TaskGraph) -> float:
        """Run all tasks respecting dependencies; returns elapsed seconds.

        Raises the first worker exception (after draining the pool).  A
        caller-supplied :class:`ExecutionTrace` is appended to (it must
        cover at least ``nworkers`` lanes); otherwise a fresh trace is
        created.  Each executed task's measured wall time is written back to
        ``task.seconds`` so a deferred graph can be replayed in the
        simulator with real costs; pre-traced tasks (``func=None``) keep
        their explicit cost.
        """
        n = len(graph.tasks)
        if n == 0:
            return 0.0
        graph.validate()
        probe = self.instrument if self.instrument is not None else _current_probe()
        # Captured once at entry: the submitting thread's request trace (if
        # any) receives the kernel spans — worker threads have no ambient
        # trace of their own, so propagation is explicit.
        tctx = current_trace()
        sched = self.scheduler
        sched.setup(self.nworkers)
        sched.attach_stats(probe.sched if probe is not None else None)
        indegree = {t.id: len(t.deps) for t in graph.tasks}
        lock = threading.Condition()
        # Source tasks are pushed in submission order with no worker hint,
        # exactly as the simulator seeds its schedulers.
        for t in graph.tasks:
            if indegree[t.id] == 0:
                sched.push(t, None)
        state = {"completed": 0, "error": None}
        if self.trace is None:
            self.trace = ExecutionTrace(nworkers=self.nworkers)
        elif self.trace.nworkers < self.nworkers:
            raise ValueError(
                f"supplied trace covers {self.trace.nworkers} workers, "
                f"executor has {self.nworkers}"
            )
        t_start = time.perf_counter()

        def worker(widx: int) -> None:
            wait_seconds = 0.0
            try:
                while True:
                    with lock:
                        while True:
                            if state["error"] is not None or state["completed"] >= n:
                                lock.notify_all()
                                return
                            task = sched.pop(widx)
                            if task is not None:
                                break
                            if probe is not None:
                                w0 = time.perf_counter()
                                lock.wait()
                                wait_seconds += time.perf_counter() - w0
                            else:
                                lock.wait()
                    try:
                        t0 = time.perf_counter() - t_start
                        if task.func is not None:
                            task.func()
                        t1 = time.perf_counter() - t_start
                    except BaseException as exc:  # propagate to the caller
                        with lock:
                            state["error"] = exc
                            lock.notify_all()
                        return
                    if task.func is not None:
                        # Pre-traced tasks (func=None) keep their explicit cost.
                        task.seconds = t1 - t0
                        if tctx is not None:
                            tctx.add_span(
                                f"kernel:{task.kind}",
                                t_start + t0, t_start + t1,
                                worker=f"tw{widx}",
                            )
                    with lock:
                        self.trace.add(TraceEvent(task.id, task.kind, widx, t0, t1))
                        state["completed"] += 1
                        for s in sorted(task.successors):
                            indegree[s] -= 1
                            if indegree[s] == 0:
                                # Push-to-releasing-worker: the freed task lands
                                # on this worker's queue (ws/lws locality).
                                sched.push(graph.tasks[s], widx)
                        if probe is not None:
                            probe.task_span(task.kind, widx, t0, t1)
                            probe.sample("queue_depth", sched.pending(), t=t1)
                        lock.notify_all()
            finally:
                if probe is not None and wait_seconds > 0.0:
                    probe.worker_wait(widx, wait_seconds)

        threads = [
            threading.Thread(target=worker, args=(w,), name=f"repro-worker-{w}")
            for w in range(self.nworkers)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if state["error"] is not None:
            raise state["error"]
        return time.perf_counter() - t_start
