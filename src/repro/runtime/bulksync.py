"""Bulk-synchronous execution model (the related-work OpenMP baseline).

Before StarPU-style task flow, H-LU parallelisations used OpenMP loops with
a barrier per algorithmic stage — the paper's Section III: "These solutions
realized a bulk-synchronous parallelism that was limited by synchronizations
at each level of the H-Structure."  This module replays a task DAG under
exactly that constraint: tasks are grouped into *stages* (by default the
DAG's longest-path depth, which matches loop-level parallelism), each stage
is list-scheduled on ``p`` workers, and a barrier separates stages.

Comparing :func:`simulate_bulk_synchronous` with
:func:`~repro.runtime.simulator.simulate` quantifies how much the
dependencies-only STF model gains by letting stages overlap.
"""

from __future__ import annotations

import heapq
from typing import Callable

from .dag import TaskGraph
from .simulator import RuntimeOverheadModel, SimulationResult
from .task import Task
from .trace import ExecutionTrace, TraceEvent

__all__ = ["simulate_bulk_synchronous", "depth_stages"]


def depth_stages(graph: TaskGraph) -> dict[int, int]:
    """Stage index per task: its longest-path depth in the DAG.

    Tasks at equal depth could run in the same parallel loop; a barrier
    between depths is the bulk-synchronous constraint.
    """
    depth: dict[int, int] = {}
    for t in graph.topological_order():
        depth[t.id] = max((depth[d] + 1 for d in t.deps), default=0)
    return depth


def simulate_bulk_synchronous(
    graph: TaskGraph,
    nworkers: int,
    *,
    stage_of: Callable[[Task], int] | None = None,
    overheads: RuntimeOverheadModel | None = None,
    cost_attr: str = "seconds",
    cost_scale: float = 1.0,
    barrier_cost: float = 0.0,
    keep_trace: bool = True,
) -> SimulationResult:
    """Replay ``graph`` stage-by-stage with a barrier between stages.

    Parameters
    ----------
    stage_of:
        Maps a task to its stage index; defaults to DAG depth
        (:func:`depth_stages`).  Any grouping that respects dependencies
        (stage(pred) <= stage(succ)) is valid; the function checks this.
    barrier_cost:
        Extra seconds per barrier (fork/join overhead of the OpenMP model).

    Returns
    -------
    SimulationResult
        With ``scheduler`` set to "bulk-sync"; makespan is the sum of
        stage makespans (LPT within each stage) plus barrier costs.
    """
    if nworkers < 1:
        raise ValueError(f"nworkers must be >= 1, got {nworkers}")
    if barrier_cost < 0:
        raise ValueError("barrier_cost must be non-negative")
    ovh = overheads if overheads is not None else RuntimeOverheadModel()
    n = len(graph.tasks)
    trace = ExecutionTrace(nworkers=nworkers) if keep_trace else None
    if n == 0:
        return SimulationResult(0.0, nworkers, "bulk-sync", 0.0, 0.0, trace)

    depths = depth_stages(graph)
    stage = {t.id: (stage_of(t) if stage_of else depths[t.id]) for t in graph.tasks}
    for t in graph.tasks:
        for d in t.deps:
            if stage[d] >= stage[t.id]:
                raise ValueError(
                    f"stage assignment violates dependency {d} -> {t.id} "
                    f"(stages {stage[d]} >= {stage[t.id]})"
                )

    def duration(task: Task) -> float:
        return task.cost(cost_attr) * cost_scale + ovh.task_overhead(task.n_deps)

    by_stage: dict[int, list[Task]] = {}
    for t in graph.tasks:
        by_stage.setdefault(stage[t.id], []).append(t)

    now = 0.0
    for s in sorted(by_stage):
        # LPT list scheduling within the stage.
        tasks = sorted(by_stage[s], key=lambda t: -duration(t))
        free = [(now, w) for w in range(nworkers)]
        heapq.heapify(free)
        stage_end = now
        for t in tasks:
            start, w = heapq.heappop(free)
            end = start + duration(t)
            heapq.heappush(free, (end, w))
            stage_end = max(stage_end, end)
            if trace is not None:
                trace.add(TraceEvent(t.id, t.kind, w, start, end))
        now = stage_end + barrier_cost  # the barrier: nothing crosses stages

    total_work = graph.total_work(cost_attr) * cost_scale
    critical = graph.critical_path(cost_attr) * cost_scale
    return SimulationResult(
        makespan=now - (barrier_cost if by_stage else 0.0),
        nworkers=nworkers,
        scheduler="bulk-sync",
        total_work=total_work,
        critical_path=critical,
        trace=trace,
    )
