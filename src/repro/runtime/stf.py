"""Sequential-task-flow engine (StarPU's submission model).

``insert_task`` mirrors ``starpu_task_insert``: a kernel plus ``(handle,
mode)`` accesses.  Dependencies are inferred from the access sequence:

* a reader depends on the handle's last writer;
* a writer depends on the last writer *and* every reader since then.

Two execution modes:

* ``eager`` (default) — the kernel runs immediately (sound numerics, correct
  sequential order) and its wall time is recorded as the task cost; the DAG
  is then replayed on virtual workers by the simulator.
* ``deferred`` — kernels are stored as closures for a real (threaded)
  executor; used on genuinely multicore hosts.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from ..obs.instrument import current as _current_probe
from .dag import TaskGraph
from .expand import NestedPolicy, NestedStats
from .racecheck import RaceChecker
from .task import AccessMode, DataHandle, Task

__all__ = ["StfEngine"]


def _payload_footprint(payload: Any) -> tuple[int, int]:
    """Best-effort ``(bytes, rank)`` estimate of one operand payload.

    Dense arrays report ``nbytes`` and rank 0; H-matrix objects (``HMatrix``,
    ``RkMatrix``, tile wrappers exposing ``.mat``) report their compressed
    storage and maximum block rank.  Unknown payloads report ``(0, 0)``.
    """
    mat = getattr(payload, "mat", None)
    if mat is not None:  # Tile-like wrapper around an H-matrix
        payload = mat
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:  # ndarray-like
        return int(nbytes), 0
    storage = getattr(payload, "storage", None)
    if callable(storage):
        try:
            entries = int(storage())
        except Exception:
            return 0, 0
        itemsize = 8
        rank = 0
        max_rank = getattr(payload, "max_rank", None)
        if callable(max_rank):
            try:
                rank = int(max_rank())
            except Exception:
                rank = 0
        else:
            rank = int(getattr(payload, "rank", 0) or 0)
        return entries * itemsize, rank
    return 0, 0


class StfEngine:
    """Builds a :class:`TaskGraph` from sequential task submissions.

    ``racecheck`` enables the runtime access-mode race detector: ``True``
    installs a default strict :class:`~repro.runtime.racecheck.RaceChecker`,
    or pass a configured checker instance.  When enabled, every eager kernel
    run is bracketed by payload fingerprints verifying the declared R/W/RW
    modes against the actual memory effects, and newly registered handles
    are screened for memory aliasing.  Disabled (the default) it costs one
    ``None`` test per task.

    ``nested`` enables nested task expansion: a
    :class:`~repro.runtime.expand.NestedPolicy` makes ``insert_task`` honour
    the ``expander`` argument — instead of submitting the opaque task, the
    expander walks the operand's block tree and submits a subgraph of
    finer-grain subtasks (recorded in :attr:`nested_stats`).  Subtasks may
    declare accesses on *sub-block* handles created with :meth:`subhandle`;
    dependency inference then treats an access to a handle as conflicting
    with accesses to every handle in its family (ancestors and descendants),
    so opaque whole-tile tasks and expanded sub-block tasks interleave
    correctly in one graph.
    """

    def __init__(
        self,
        mode: str = "eager",
        *,
        racecheck: bool | RaceChecker = False,
        nested: NestedPolicy | None = None,
    ) -> None:
        if mode not in ("eager", "deferred"):
            raise ValueError(f"mode must be 'eager' or 'deferred', got {mode!r}")
        self.mode = mode
        self.graph = TaskGraph()
        self._handles: dict[int, DataHandle] = {}
        if racecheck is True:
            self.racecheck: RaceChecker | None = RaceChecker()
        else:
            self.racecheck = racecheck or None
        self.nested = nested
        self.nested_stats = NestedStats(nested) if nested is not None else None

    # -- handle management -------------------------------------------------
    def handle(self, payload: Any, name: str = "") -> DataHandle:
        """Get-or-create the handle registered for ``payload`` (by identity)."""
        key = id(payload)
        h = self._handles.get(key)
        if h is None:
            h = DataHandle(name=name, payload=payload)
            self._handles[key] = h
            if self.racecheck is not None:
                self.racecheck.register_handle(h)
        return h

    def subhandle(self, parent: DataHandle, payload: Any, name: str = "") -> DataHandle:
        """Get-or-create a handle for a sub-block of ``parent``'s payload.

        The new handle is linked into ``parent``'s hierarchy so dependency
        inference knows the two overlap in memory (the racecheck aliasing
        screen exempts related handles for the same reason).  Re-registering
        the same payload returns the existing handle without re-linking.
        """
        key = id(payload)
        h = self._handles.get(key)
        if h is None:
            h = DataHandle(name=name, payload=payload)
            h.parent = parent
            parent.children.append(h)
            self._handles[key] = h
            if self.racecheck is not None:
                self.racecheck.register_handle(h)
        return h

    @property
    def n_handles(self) -> int:
        return len(self._handles)

    # -- submission -----------------------------------------------------------
    def insert_task(
        self,
        kind: str,
        func: Callable[[], Any] | None,
        accesses: list[tuple[DataHandle, AccessMode]],
        *,
        priority: int = 0,
        seconds: float | None = None,
        flops: float = 0.0,
        label: str = "",
        spec=None,
        expander: Callable[["StfEngine"], Any] | None = None,
    ) -> Task | None:
        """Submit one task; returns the created graph node.

        In eager mode ``func`` runs now and its measured time becomes the
        task cost unless an explicit ``seconds`` is given (pre-traced tasks
        pass ``func=None`` with explicit costs).  ``spec`` optionally attaches
        a declarative, picklable kernel description for process executors.

        ``expander`` marks the task as *expandable*: when the engine was
        built with a nested policy, the expander is called instead of the
        opaque submission and replaces this task with a subgraph of
        finer-grain subtasks (each submitted through ``insert_task`` without
        an expander).  The subtasks inherit ``priority``; the expansion is
        recorded in :attr:`nested_stats` and ``None`` is returned (there is
        no single graph node to hand back).  Without a nested policy the
        expander is ignored and the task submits opaquely.
        """
        if expander is not None and self.nested is not None:
            start = len(self.graph.tasks)
            expander(self)
            stop = len(self.graph.tasks)
            for sub in self.graph.tasks[start:stop]:
                sub.priority = priority
            self.nested_stats.record(kind, label, start, stop)
            return None
        task = self.graph.new_task(
            kind,
            accesses=tuple(accesses),
            priority=priority,
            flops=flops,
            label=label,
        )
        task.spec = spec
        self._infer_dependencies(task)
        probe = _current_probe()
        if probe is not None:
            operand_bytes = 0
            operand_max_rank = 0
            for handle, _mode in task.accesses:
                nbytes, rank = _payload_footprint(handle.payload)
                operand_bytes += nbytes
                operand_max_rank = max(operand_max_rank, rank)
            task.meta = {
                "operand_bytes": operand_bytes,
                "operand_max_rank": operand_max_rank,
            }
            probe.task_submitted(
                task,
                operand_bytes=operand_bytes,
                operand_max_rank=operand_max_rank,
            )
        if self.mode == "eager":
            if func is not None:
                checker = self.racecheck
                if checker is not None:
                    # Fingerprints run outside the timed window so measured
                    # task costs stay kernel-only.
                    checker.before_task(task)
                t0 = time.perf_counter()
                func()
                elapsed = time.perf_counter() - t0
                if checker is not None:
                    checker.after_task(task)
                task.seconds = elapsed if seconds is None else seconds
            else:
                task.seconds = 0.0 if seconds is None else seconds
        else:
            task.func = func
            if seconds is not None:
                task.seconds = seconds
        return task

    @staticmethod
    def _family(handle: DataHandle) -> list[DataHandle]:
        """``handle`` plus every ancestor and descendant (overlapping data)."""
        members = [handle]
        p = handle.parent
        while p is not None:
            members.append(p)
            p = p.parent
        stack = list(handle.children)
        while stack:
            c = stack.pop()
            members.append(c)
            stack.extend(c.children)
        return members

    def _infer_dependencies(self, task: Task) -> None:
        # Fast path: no accessed handle is hierarchical (the common case for
        # opaque tile graphs) — conflicts are per-handle.
        if all(h.parent is None and not h.children for h, _ in task.accesses):
            for handle, mode in task.accesses:
                if mode.reads and handle.last_writer is not None:
                    self.graph.add_dependency(handle.last_writer, task)
                if mode.writes:
                    if handle.last_writer is not None:
                        self.graph.add_dependency(handle.last_writer, task)
                    for reader in handle.readers:
                        if reader.id != task.id:
                            self.graph.add_dependency(reader, task)
        else:
            # An access to a handle overlaps every handle in its family, so
            # it conflicts with the outstanding writers/readers of each.
            # The post-state pass below stays local to the accessed handle:
            # a relative's stale last_writer/readers can only produce
            # redundant edges later (covered transitively through the edges
            # added here), never missing ones.
            for handle, mode in task.accesses:
                for member in self._family(handle):
                    if mode.reads and member.last_writer is not None:
                        self.graph.add_dependency(member.last_writer, task)
                    if mode.writes:
                        if member.last_writer is not None:
                            self.graph.add_dependency(member.last_writer, task)
                        for reader in member.readers:
                            if reader.id != task.id:
                                self.graph.add_dependency(reader, task)
        # Second pass so a task reading and writing different handles sees a
        # consistent post-state.
        for handle, mode in task.accesses:
            if mode.writes:
                handle.last_writer = task
                handle.readers = []
            elif mode.reads:
                handle.readers.append(task)

    def wait_all(self) -> TaskGraph:
        """Finish the STF section and return the (validated) DAG."""
        self.graph.validate()
        return self.graph
