"""Sequential-task-flow engine (StarPU's submission model).

``insert_task`` mirrors ``starpu_task_insert``: a kernel plus ``(handle,
mode)`` accesses.  Dependencies are inferred from the access sequence:

* a reader depends on the handle's last writer;
* a writer depends on the last writer *and* every reader since then.

Two execution modes:

* ``eager`` (default) — the kernel runs immediately (sound numerics, correct
  sequential order) and its wall time is recorded as the task cost; the DAG
  is then replayed on virtual workers by the simulator.
* ``deferred`` — kernels are stored as closures for a real (threaded)
  executor; used on genuinely multicore hosts.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from ..obs.instrument import current as _current_probe
from .dag import TaskGraph
from .racecheck import RaceChecker
from .task import AccessMode, DataHandle, Task

__all__ = ["StfEngine"]


def _payload_footprint(payload: Any) -> tuple[int, int]:
    """Best-effort ``(bytes, rank)`` estimate of one operand payload.

    Dense arrays report ``nbytes`` and rank 0; H-matrix objects (``HMatrix``,
    ``RkMatrix``, tile wrappers exposing ``.mat``) report their compressed
    storage and maximum block rank.  Unknown payloads report ``(0, 0)``.
    """
    mat = getattr(payload, "mat", None)
    if mat is not None:  # Tile-like wrapper around an H-matrix
        payload = mat
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:  # ndarray-like
        return int(nbytes), 0
    storage = getattr(payload, "storage", None)
    if callable(storage):
        try:
            entries = int(storage())
        except Exception:
            return 0, 0
        itemsize = 8
        rank = 0
        max_rank = getattr(payload, "max_rank", None)
        if callable(max_rank):
            try:
                rank = int(max_rank())
            except Exception:
                rank = 0
        else:
            rank = int(getattr(payload, "rank", 0) or 0)
        return entries * itemsize, rank
    return 0, 0


class StfEngine:
    """Builds a :class:`TaskGraph` from sequential task submissions.

    ``racecheck`` enables the runtime access-mode race detector: ``True``
    installs a default strict :class:`~repro.runtime.racecheck.RaceChecker`,
    or pass a configured checker instance.  When enabled, every eager kernel
    run is bracketed by payload fingerprints verifying the declared R/W/RW
    modes against the actual memory effects, and newly registered handles
    are screened for memory aliasing.  Disabled (the default) it costs one
    ``None`` test per task.
    """

    def __init__(self, mode: str = "eager", *, racecheck: bool | RaceChecker = False) -> None:
        if mode not in ("eager", "deferred"):
            raise ValueError(f"mode must be 'eager' or 'deferred', got {mode!r}")
        self.mode = mode
        self.graph = TaskGraph()
        self._handles: dict[int, DataHandle] = {}
        if racecheck is True:
            self.racecheck: RaceChecker | None = RaceChecker()
        else:
            self.racecheck = racecheck or None

    # -- handle management -------------------------------------------------
    def handle(self, payload: Any, name: str = "") -> DataHandle:
        """Get-or-create the handle registered for ``payload`` (by identity)."""
        key = id(payload)
        h = self._handles.get(key)
        if h is None:
            h = DataHandle(name=name, payload=payload)
            self._handles[key] = h
            if self.racecheck is not None:
                self.racecheck.register_handle(h)
        return h

    @property
    def n_handles(self) -> int:
        return len(self._handles)

    # -- submission -----------------------------------------------------------
    def insert_task(
        self,
        kind: str,
        func: Callable[[], Any] | None,
        accesses: list[tuple[DataHandle, AccessMode]],
        *,
        priority: int = 0,
        seconds: float | None = None,
        flops: float = 0.0,
        label: str = "",
        spec=None,
    ) -> Task:
        """Submit one task; returns the created graph node.

        In eager mode ``func`` runs now and its measured time becomes the
        task cost unless an explicit ``seconds`` is given (pre-traced tasks
        pass ``func=None`` with explicit costs).  ``spec`` optionally attaches
        a declarative, picklable kernel description for process executors.
        """
        task = self.graph.new_task(
            kind,
            accesses=tuple(accesses),
            priority=priority,
            flops=flops,
            label=label,
        )
        task.spec = spec
        self._infer_dependencies(task)
        probe = _current_probe()
        if probe is not None:
            operand_bytes = 0
            operand_max_rank = 0
            for handle, _mode in task.accesses:
                nbytes, rank = _payload_footprint(handle.payload)
                operand_bytes += nbytes
                operand_max_rank = max(operand_max_rank, rank)
            task.meta = {
                "operand_bytes": operand_bytes,
                "operand_max_rank": operand_max_rank,
            }
            probe.task_submitted(
                task,
                operand_bytes=operand_bytes,
                operand_max_rank=operand_max_rank,
            )
        if self.mode == "eager":
            if func is not None:
                checker = self.racecheck
                if checker is not None:
                    # Fingerprints run outside the timed window so measured
                    # task costs stay kernel-only.
                    checker.before_task(task)
                t0 = time.perf_counter()
                func()
                elapsed = time.perf_counter() - t0
                if checker is not None:
                    checker.after_task(task)
                task.seconds = elapsed if seconds is None else seconds
            else:
                task.seconds = 0.0 if seconds is None else seconds
        else:
            task.func = func
            if seconds is not None:
                task.seconds = seconds
        return task

    def _infer_dependencies(self, task: Task) -> None:
        for handle, mode in task.accesses:
            if mode.reads and handle.last_writer is not None:
                self.graph.add_dependency(handle.last_writer, task)
            if mode.writes:
                if handle.last_writer is not None:
                    self.graph.add_dependency(handle.last_writer, task)
                for reader in handle.readers:
                    if reader.id != task.id:
                        self.graph.add_dependency(reader, task)
        # Second pass so a task reading and writing different handles sees a
        # consistent post-state.
        for handle, mode in task.accesses:
            if mode.writes:
                handle.last_writer = task
                handle.readers = []
            elif mode.reads:
                handle.readers.append(task)

    def wait_all(self) -> TaskGraph:
        """Finish the STF section and return the (validated) DAG."""
        self.graph.validate()
        return self.graph
