"""Distributed-memory execution simulation (the paper's Section VI outlook).

The paper's future work is the distributed case, where "the main challenge
is to correctly handle communications, when the size of the structures,
depending on the ranks of matrices, cannot be known statically" and
"distributed H-Matrices implementations are also known to be largely
unbalanced".  This module provides the experimentation substrate the paper
says such work needs:

* tile-to-node **mappings** — 1-D/2-D block-cyclic (the dense-linear-algebra
  classics) and a greedy storage-balancing heuristic;
* a **distributed discrete-event simulator**: tasks execute on their owner
  node's workers; a dependency crossing nodes delays the consumer by
  ``latency + bytes / bandwidth``, with the actual (rank-dependent) tile
  sizes supplying the byte counts — exactly the "cannot be known statically"
  data volumes;
* per-node load/communication accounting to quantify the imbalance.

Owner-computes rule: a task runs on the node that owns its first written
handle.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from .dag import TaskGraph
from .task import Task

__all__ = [
    "DistributedMachine",
    "DistributedResult",
    "block_cyclic_1d",
    "block_cyclic_2d",
    "greedy_balanced",
    "simulate_distributed",
    "tile_h_distribution",
]


@dataclass(frozen=True)
class DistributedMachine:
    """A homogeneous cluster: ``nodes`` x ``workers_per_node`` cores.

    ``latency`` (seconds) and ``bandwidth`` (bytes/second) parameterise the
    network; defaults approximate a commodity InfiniBand fabric.
    """

    nodes: int
    workers_per_node: int = 18
    latency: float = 2e-6
    bandwidth: float = 10e9

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.workers_per_node < 1:
            raise ValueError("nodes and workers_per_node must be >= 1")
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")

    def comm_seconds(self, nbytes: float) -> float:
        return self.latency + nbytes / self.bandwidth


# ---------------------------------------------------------------------------
# Tile mappings
# ---------------------------------------------------------------------------

def block_cyclic_1d(nt: int, nodes: int) -> dict[tuple[int, int], int]:
    """Row-cyclic: tile (i, j) lives on node ``i mod nodes``."""
    if nt < 1 or nodes < 1:
        raise ValueError("nt and nodes must be >= 1")
    return {(i, j): i % nodes for i in range(nt) for j in range(nt)}


def block_cyclic_2d(nt: int, p: int, q: int) -> dict[tuple[int, int], int]:
    """2-D block-cyclic over a ``p x q`` process grid (ScaLAPACK style)."""
    if nt < 1 or p < 1 or q < 1:
        raise ValueError("nt, p and q must be >= 1")
    return {(i, j): (i % p) * q + (j % q) for i in range(nt) for j in range(nt)}


def greedy_balanced(
    tile_bytes: dict[tuple[int, int], float], nodes: int
) -> dict[tuple[int, int], int]:
    """Greedy storage balancing: heaviest tile to the lightest node.

    A baseline load-balancing heuristic for the rank-dependent tile sizes
    that make block-cyclic H-distributions unbalanced.
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    loads = [(0.0, node) for node in range(nodes)]
    heapq.heapify(loads)
    mapping: dict[tuple[int, int], int] = {}
    for key, nbytes in sorted(tile_bytes.items(), key=lambda kv: -kv[1]):
        load, node = heapq.heappop(loads)
        mapping[key] = node
        heapq.heappush(loads, (load + nbytes, node))
    return mapping


def tile_h_distribution(
    graph: TaskGraph,
    tile_mapping: dict[tuple[int, int], int],
) -> tuple[dict[int, int], dict[int, float]]:
    """Derive (handle -> node, handle -> bytes) for a tiled-LU task graph.

    The tiled algorithms name their handles ``A[i,j]`` and attach the
    :class:`~repro.core.descriptor.Tile` as the handle payload, so both maps
    fall out of a scan over the graph's accesses.  Tile byte counts use the
    *actual* compressed storage — the rank-dependent message sizes the
    paper's Section VI highlights.
    """
    handle_node: dict[int, int] = {}
    handle_bytes: dict[int, float] = {}
    for task in graph.tasks:
        for handle, _ in task.accesses:
            if handle.id in handle_node:
                continue
            name = handle.name
            if not (name.startswith("A[") and name.endswith("]")):
                raise ValueError(f"handle {name!r} is not a tile handle")
            i, j = (int(s) for s in name[2:-1].split(","))
            handle_node[handle.id] = tile_mapping[(i, j)]
            payload = handle.payload
            if payload is not None and hasattr(payload, "storage"):
                itemsize = payload.dtype.itemsize
                handle_bytes[handle.id] = float(payload.storage() * itemsize)
    return handle_node, handle_bytes


# ---------------------------------------------------------------------------
# Distributed simulation
# ---------------------------------------------------------------------------

@dataclass
class DistributedResult:
    """Outcome of one simulated distributed execution."""

    makespan: float
    machine: DistributedMachine
    node_busy: list[float]
    node_comm_bytes: list[float]
    total_comm_bytes: float
    n_messages: int

    @property
    def load_imbalance(self) -> float:
        """max node busy-time over mean (1.0 = perfectly balanced)."""
        if not self.node_busy or max(self.node_busy) == 0.0:
            return 1.0
        mean = sum(self.node_busy) / len(self.node_busy)
        return max(self.node_busy) / mean if mean > 0 else float("inf")


def _task_node(task: Task, handle_node: dict[int, int]) -> int:
    """Owner-computes: node of the first written handle (else first read)."""
    for handle, mode in task.accesses:
        if mode.writes and handle.id in handle_node:
            return handle_node[handle.id]
    for handle, _ in task.accesses:
        if handle.id in handle_node:
            return handle_node[handle.id]
    return 0


def simulate_distributed(
    graph: TaskGraph,
    handle_node: dict[int, int],
    machine: DistributedMachine,
    *,
    handle_bytes: dict[int, float] | None = None,
    cost_attr: str = "seconds",
    cost_scale: float = 1.0,
) -> DistributedResult:
    """Replay ``graph`` on a distributed machine.

    Parameters
    ----------
    handle_node:
        ``DataHandle.id`` -> owning node.  Tasks run where their written
        data lives (owner computes).
    handle_bytes:
        ``DataHandle.id`` -> payload size; a cross-node edge transferring
        handle ``h`` costs ``machine.comm_seconds(handle_bytes[h])``.
        Missing entries transfer in ``latency`` alone.
    """
    n = len(graph.tasks)
    if n == 0:
        return DistributedResult(0.0, machine, [0.0] * machine.nodes, [0.0] * machine.nodes, 0.0, 0)
    hbytes = handle_bytes or {}
    owner = {t.id: _task_node(t, handle_node) for t in graph.tasks}
    for t in graph.tasks:
        if not (0 <= owner[t.id] < machine.nodes):
            raise ValueError(f"task #{t.id} mapped to node {owner[t.id]} out of range")

    # Bytes moved along a dependency edge (producer -> consumer): the data
    # the consumer reads among the producer's writes.
    def edge_bytes(producer: Task, consumer: Task) -> float:
        written = {h.id for h, m in producer.accesses if m.writes}
        total = 0.0
        for h, m in consumer.accesses:
            if m.reads and h.id in written:
                total += hbytes.get(h.id, 0.0)
        return total

    indeg = {t.id: len(t.deps) for t in graph.tasks}
    ready_time = {t.id: 0.0 for t in graph.tasks}
    node_busy = [0.0] * machine.nodes
    node_comm = [0.0] * machine.nodes
    total_comm = 0.0
    n_messages = 0

    # Per-node ready heaps (priority, seq, task) of tasks whose data arrived.
    queues: list[list] = [[] for _ in range(machine.nodes)]
    idle = [machine.workers_per_node] * machine.nodes
    seq = itertools.count()
    # Event heap: (time, seq, kind, task); kind "arrive" or "finish".
    events: list = []

    def schedule_arrival(task: Task) -> None:
        heapq.heappush(events, (ready_time[task.id], next(seq), "arrive", task))

    for t in graph.tasks:
        if indeg[t.id] == 0:
            schedule_arrival(t)

    completed = 0
    makespan = 0.0
    while completed < n:
        if not events:
            raise RuntimeError("distributed simulator deadlock (cyclic graph?)")
        now = events[0][0]
        # Drain all events at the current instant.
        while events and events[0][0] <= now:
            _, _, kind, task = heapq.heappop(events)
            if kind == "arrive":
                heapq.heappush(
                    queues[owner[task.id]], (-task.priority, next(seq), task)
                )
                continue
            # finish
            completed += 1
            makespan = max(makespan, now)
            src = owner[task.id]
            idle[src] += 1
            for sid in task.successors:
                succ = graph.tasks[sid]
                avail = now
                if owner[sid] != src:
                    nbytes = edge_bytes(task, succ)
                    avail += machine.comm_seconds(nbytes)
                    node_comm[src] += nbytes
                    total_comm += nbytes
                    n_messages += 1
                ready_time[sid] = max(ready_time[sid], avail)
                indeg[sid] -= 1
                if indeg[sid] == 0:
                    schedule_arrival(succ)
        # Start work on every node with idle workers and queued tasks.
        for node in range(machine.nodes):
            while idle[node] > 0 and queues[node]:
                _, _, task = heapq.heappop(queues[node])
                idle[node] -= 1
                dur = task.cost(cost_attr) * cost_scale
                node_busy[node] += dur
                heapq.heappush(events, (now + dur, next(seq), "finish", task))

    return DistributedResult(
        makespan=makespan,
        machine=machine,
        node_busy=node_busy,
        node_comm_bytes=node_comm,
        total_comm_bytes=total_comm,
        n_messages=n_messages,
    )
