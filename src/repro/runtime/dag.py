"""Task graphs: dependency storage, critical path, exports.

The DAG (Figure 1 of the paper for a 3x3 tiled LU) is the object every other
runtime component works on: the STF engine grows it, schedulers walk it, the
simulator replays it, and the analysis layer reads critical-path/total-work
bounds off it.
"""

from __future__ import annotations

from collections import Counter

from .task import Task

__all__ = ["TaskGraph"]


class TaskGraph:
    """An append-only DAG of :class:`Task` nodes."""

    def __init__(self) -> None:
        self.tasks: list[Task] = []

    # -- construction ---------------------------------------------------------
    def new_task(self, kind: str, **kwargs) -> Task:
        """Create, register and return a task (edges added separately)."""
        task = Task(id=len(self.tasks), kind=kind, **kwargs)
        self.tasks.append(task)
        return task

    def add_dependency(self, before: Task, after: Task) -> None:
        """Declare that ``after`` cannot start until ``before`` completes."""
        if before.id == after.id:
            raise ValueError(f"task #{before.id} cannot depend on itself")
        if before.id not in after.deps:
            after.deps.add(before.id)
            before.successors.add(after.id)

    # -- queries ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def n_edges(self) -> int:
        return sum(len(t.deps) for t in self.tasks)

    def kind_counts(self) -> Counter:
        return Counter(t.kind for t in self.tasks)

    def total_work(self, cost_attr: str = "seconds") -> float:
        """Sum of task costs — the 1-worker lower bound."""
        return sum(t.cost(cost_attr) for t in self.tasks)

    def roots(self) -> list[Task]:
        return [t for t in self.tasks if not t.deps]

    def topological_order(self) -> list[Task]:
        """Kahn topological order; raises on cycles."""
        indeg = {t.id: len(t.deps) for t in self.tasks}
        stack = [t for t in self.tasks if indeg[t.id] == 0]
        out: list[Task] = []
        while stack:
            t = stack.pop()
            out.append(t)
            for s in t.successors:
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(self.tasks[s])
        if len(out) != len(self.tasks):
            raise ValueError("task graph contains a cycle")
        return out

    def critical_path(self, cost_attr: str = "seconds") -> float:
        """Longest path cost — the infinite-worker lower bound."""
        longest: dict[int, float] = {}
        for t in self.topological_order():
            base = max((longest[d] for d in t.deps), default=0.0)
            longest[t.id] = base + t.cost(cost_attr)
        return max(longest.values(), default=0.0)

    def bottom_levels(self, cost_attr: str = "seconds", *, prev: dict | None = None) -> dict:
        """Longest path from each task to a sink, including its own cost.

        The classic list-scheduling *bottom level* ``b(t) = cost(t) +
        max(b(s) for s in successors)``: tasks on the critical path carry the
        largest values, so scheduling by decreasing bottom level keeps the
        critical path moving ahead of bulk trailing updates.  Returns a
        ``task id -> level`` map; ``max`` of the values equals
        :meth:`critical_path`.

        ``prev`` enables incremental recomputation after more tasks were
        submitted (e.g. a nested expansion spliced a subgraph in): pass the
        map a previous call returned and only the *affected* region — the
        new tasks plus their transitive predecessors — is recomputed.  This
        is sound because the graph is append-only and the STF engine only
        ever adds edges *into* the newest task, so a task whose descendants
        gained no new member keeps its level.  Tasks submitted before the
        splice that reach the new subgraph get fresh (no longer stale)
        levels; everything else is reused from ``prev``.
        """
        if prev is None:
            levels: dict[int, float] = {}
            for t in reversed(self.topological_order()):
                below = max((levels[s] for s in t.successors), default=0.0)
                levels[t.id] = below + t.cost(cost_attr)
            return levels
        # Affected region: new tasks + reverse-reachable predecessors.
        new_ids = [t.id for t in self.tasks if t.id not in prev]
        affected: set[int] = set(new_ids)
        stack = list(new_ids)
        while stack:
            for d in self.tasks[stack.pop()].deps:
                if d not in affected:
                    affected.add(d)
                    stack.append(d)
        levels = dict(prev)
        # Reverse Kahn restricted to the affected region: a task is ready
        # once all of its affected successors have fresh levels.
        pending = {
            i: sum(1 for s in self.tasks[i].successors if s in affected)
            for i in affected
        }
        ready = [i for i, n in pending.items() if n == 0]
        processed = 0
        while ready:
            i = ready.pop()
            t = self.tasks[i]
            below = max((levels[s] for s in t.successors), default=0.0)
            levels[i] = below + t.cost(cost_attr)
            processed += 1
            for d in t.deps:
                if d in affected:
                    pending[d] -= 1
                    if pending[d] == 0:
                        ready.append(d)
        if processed != len(affected):
            raise ValueError("task graph contains a cycle")
        return levels

    def validate(self) -> None:
        """Check edge symmetry and acyclicity (cheap structural audit)."""
        for t in self.tasks:
            for d in t.deps:
                if t.id not in self.tasks[d].successors:
                    raise ValueError(f"asymmetric edge {d} -> {t.id}")
            for s in t.successors:
                if t.id not in self.tasks[s].deps:
                    raise ValueError(f"asymmetric edge {t.id} -> {s}")
        self.topological_order()  # raises on cycles

    # -- exports -------------------------------------------------------------------
    def to_networkx(self):
        """Export to a networkx DiGraph (optional dependency)."""
        import networkx as nx

        g = nx.DiGraph()
        for t in self.tasks:
            g.add_node(t.id, kind=t.kind, seconds=t.seconds, priority=t.priority)
        for t in self.tasks:
            for d in t.deps:
                g.add_edge(d, t.id)
        return g

    def to_dot(self, max_tasks: int = 500) -> str:
        """GraphViz DOT text (small graphs only; Figure 1 style)."""
        from .kinds import kind_color

        if len(self.tasks) > max_tasks:
            raise ValueError(f"graph too large for DOT export ({len(self.tasks)} tasks)")
        lines = ["digraph tasks {", "  rankdir=TB;"]
        for t in self.tasks:
            color = kind_color(t.kind)
            label = t.label or f"{t.kind}#{t.id}"
            label = label.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(f'  t{t.id} [label="{label}", color={color}];')
        for t in self.tasks:
            for d in t.deps:
                lines.append(f"  t{d} -> t{t.id};")
        lines.append("}")
        return "\n".join(lines)
