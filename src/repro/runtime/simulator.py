"""Discrete-event multicore simulator (the paper's 36-core bora node, virtual).

Given a :class:`~repro.runtime.dag.TaskGraph` whose tasks carry costs
(measured seconds or modelled flops), :func:`simulate` replays it on ``p``
virtual workers under a :class:`~repro.runtime.schedulers.Scheduler` policy
and a :class:`RuntimeOverheadModel`.

The overhead model is the lever behind the paper's HMAT-vs-H-Chameleon
story: the pure H-matrix DAG has orders of magnitude more tasks and
dependencies, and "the cost of handling all fine grain dependencies becomes
too important with respect to the computational tasks" in the real-double
case.  ``per_task`` and ``per_dependency`` put numbers on exactly that
handling cost.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..obs.instrument import current as _current_probe
from .dag import TaskGraph
from .schedulers import Scheduler, make_scheduler
from .trace import ExecutionTrace, TraceEvent

__all__ = ["RuntimeOverheadModel", "SimulationResult", "simulate"]


@dataclass(frozen=True)
class RuntimeOverheadModel:
    """Per-task runtime costs added on top of kernel execution time.

    Attributes
    ----------
    per_task:
        Fixed scheduling/queueing cost per task (seconds).  StarPU measures
        around 1-2 microseconds per task in practice.
    per_dependency:
        Cost per inbound dependency the runtime must track and release.
    submission:
        Serial task-submission cost on the dedicated submission core: task
        ``i`` cannot start before ``i * submission`` (the paper keeps one of
        the 36 cores submitting, running 35 workers).
    serialized:
        When true, per-task/per-dependency handling consumes a *shared*
        serial runtime core (dependency tracking contends on shared runtime
        state) instead of each worker's own time.  This is the mechanism the
        paper blames for the fine-grained HMAT DAG losing the cheap-kernel
        cases: "the cost of handling all fine grain dependencies becomes too
        important with respect to the computational tasks" — with hundreds
        of thousands of edges the runtime core itself becomes the
        bottleneck, however many workers are present.
    """

    per_task: float = 2e-6
    per_dependency: float = 5e-7
    submission: float = 0.0
    serialized: bool = False

    def __post_init__(self) -> None:
        if self.per_task < 0 or self.per_dependency < 0 or self.submission < 0:
            raise ValueError("overheads must be non-negative")

    def task_overhead(self, n_deps: int) -> float:
        return self.per_task + self.per_dependency * n_deps

    @classmethod
    def zero(cls) -> "RuntimeOverheadModel":
        return cls(per_task=0.0, per_dependency=0.0, submission=0.0)


@dataclass
class SimulationResult:
    """Outcome of one virtual execution."""

    makespan: float
    nworkers: int
    scheduler: str
    total_work: float
    critical_path: float
    trace: ExecutionTrace = field(repr=False, default=None)

    @property
    def speedup_vs_serial(self) -> float:
        return self.total_work / self.makespan if self.makespan > 0 else 0.0

    @property
    def efficiency(self) -> float:
        return self.speedup_vs_serial / self.nworkers if self.nworkers else 0.0


def simulate(
    graph: TaskGraph,
    nworkers: int,
    scheduler: Scheduler | str = "prio",
    *,
    overheads: RuntimeOverheadModel | None = None,
    cost_attr: str = "seconds",
    cost_scale: float = 1.0,
    keep_trace: bool = True,
    worker_speeds: list | None = None,
    instrument=None,
) -> SimulationResult:
    """Replay ``graph`` on ``nworkers`` virtual workers.

    Parameters
    ----------
    scheduler:
        Policy object or name ("ws", "lws", "prio", "eager", "dm").
    overheads:
        Runtime overhead model; defaults to StarPU-like microsecond costs.
    cost_attr:
        "seconds" (measured) or "flops" (deterministic model).
    cost_scale:
        Multiplier applied to raw costs — with ``cost_attr="flops"`` use
        ``1/flops_per_second`` to land in seconds.
    worker_speeds:
        Optional per-worker speed factors (length ``nworkers``): a worker
        with speed 2.0 runs kernels twice as fast.  Models heterogeneous
        machines (StarPU's CPU+accelerator setups); default homogeneous.
    instrument:
        Optional :class:`~repro.obs.Instrumentation` probe; defaults to the
        ambient active probe.  Records virtual-time task spans, scheduler
        counters and the queue-depth series.
    """
    if nworkers < 1:
        raise ValueError(f"nworkers must be >= 1, got {nworkers}")
    if worker_speeds is not None:
        if len(worker_speeds) != nworkers:
            raise ValueError(
                f"worker_speeds has {len(worker_speeds)} entries for {nworkers} workers"
            )
        if any(s <= 0 for s in worker_speeds):
            raise ValueError("worker speeds must be positive")
    probe = instrument if instrument is not None else _current_probe()
    sched = make_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
    sched.setup(nworkers)
    sched.attach_stats(probe.sched if probe is not None else None)
    ovh = overheads if overheads is not None else RuntimeOverheadModel()

    n = len(graph.tasks)
    trace = ExecutionTrace(nworkers=nworkers) if keep_trace else None
    if n == 0:
        return SimulationResult(0.0, nworkers, sched.name, 0.0, 0.0, trace)

    indegree = [len(t.deps) for t in graph.tasks]
    release = [i * ovh.submission for i in range(n)]  # earliest-start by submission
    runtime_clock = 0.0  # shared runtime-core time (serialized overheads)

    def duration(task, worker: int) -> float:
        base = task.cost(cost_attr) * cost_scale
        if worker_speeds is not None:
            base /= worker_speeds[worker]
        if ovh.serialized:
            return base  # overhead was paid on the shared runtime core
        return base + ovh.task_overhead(task.n_deps)

    # Event heap holds (finish_time, seq, worker, task). `waiting` holds tasks
    # whose dependencies are met but whose submission release is in the future.
    running: list[tuple[float, int, int, object]] = []
    waiting: list[tuple[float, int, object, int | None]] = []
    seq = 0
    now = 0.0
    idle = set(range(nworkers))

    def make_ready(task, worker_hint, at_time) -> None:
        nonlocal seq, runtime_clock
        rel = release[task.id]
        if ovh.serialized:
            # The shared runtime core processes releases one at a time.
            rel = max(rel, at_time, runtime_clock) + ovh.task_overhead(task.n_deps)
            runtime_clock = rel
        if rel > at_time:
            heapq.heappush(waiting, (rel, seq, task, worker_hint))
            seq += 1
        else:
            sched.push(task, worker_hint)

    for t in graph.tasks:
        if indegree[t.id] == 0:
            make_ready(t, None, 0.0)

    completed = 0
    makespan = 0.0
    while completed < n:
        # Hand work to idle workers.
        assigned = True
        while assigned and idle:
            assigned = False
            for w in sorted(idle):
                task = sched.pop(w)
                if task is None:
                    continue
                finish = now + duration(task, w)
                heapq.heappush(running, (finish, seq, w, task))
                seq += 1
                idle.discard(w)
                assigned = True
                if trace is not None:
                    trace.add(TraceEvent(task.id, task.kind, w, now, finish))
                if probe is not None:
                    probe.task_span(task.kind, w, now, finish)
                    probe.sample("queue_depth", sched.pending(), t=now)
        if not running and not waiting:
            raise RuntimeError(
                "simulator deadlock: no running or waiting task but "
                f"{n - completed} tasks unfinished (cyclic graph?)"
            )
        # Advance virtual time to the next event (task finish or release).
        next_finish = running[0][0] if running else float("inf")
        next_release = waiting[0][0] if waiting else float("inf")
        now = min(next_finish, next_release)
        while waiting and waiting[0][0] <= now:
            _, _, task, hint = heapq.heappop(waiting)
            sched.push(task, hint)
        while running and running[0][0] <= now:
            _, _, w, task = heapq.heappop(running)
            completed += 1
            makespan = max(makespan, now)
            idle.add(w)
            # Sorted release order matches the threaded executor exactly, so
            # single-worker threaded traces reproduce the simulated ones.
            for s in sorted(task.successors):
                indegree[s] -= 1
                if indegree[s] == 0:
                    make_ready(graph.tasks[s], w, now)

    total_work = graph.total_work(cost_attr) * cost_scale
    critical = graph.critical_path(cost_attr) * cost_scale
    return SimulationResult(
        makespan=makespan,
        nworkers=nworkers,
        scheduler=sched.name,
        total_work=total_work,
        critical_path=critical,
        trace=trace,
    )
