"""Tasks, data handles, and access modes (the StarPU data model).

A :class:`DataHandle` stands for one piece of user data (a tile, an H-matrix
node).  Tasks declare ``(handle, mode)`` accesses at submission; the STF
engine derives dependencies from those declarations exactly like StarPU does,
so "all the algorithms ... work out of the box" once kernels exist — the
property the paper's Structure 2 is designed to preserve.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

__all__ = ["AccessMode", "DataHandle", "Task"]


class AccessMode(Enum):
    """Data access declared for one task operand (StarPU's R/W/RW)."""

    R = "R"
    W = "W"
    RW = "RW"

    @property
    def writes(self) -> bool:
        return self is not AccessMode.R

    @property
    def reads(self) -> bool:
        return self is not AccessMode.W


_handle_counter = itertools.count()


class DataHandle:
    """Runtime identity of one piece of data.

    Dependency state (last writer / readers since last write) lives on the
    handle, which makes STF inference O(accesses) per task.

    A handle may be *hierarchical*: ``parent``/``children`` link it to
    handles covering enclosing/enclosed data (a tile and its H-block-tree
    sub-nodes, registered through
    :meth:`~repro.runtime.stf.StfEngine.subhandle`).  The STF inference
    treats an access to any handle as conflicting with accesses to every
    handle in its family (ancestors and descendants), which is what lets
    nested-task expansions declare sub-block accesses while opaque tasks
    keep declaring whole-tile accesses.
    """

    __slots__ = ("id", "name", "payload", "last_writer", "readers", "parent", "children")

    def __init__(self, name: str = "", payload: Any = None) -> None:
        self.id = next(_handle_counter)
        self.name = name or f"data{self.id}"
        self.payload = payload
        self.last_writer: "Task | None" = None
        self.readers: list["Task"] = []
        self.parent: "DataHandle | None" = None
        self.children: list["DataHandle"] = []

    def reset(self) -> None:
        """Forget dependency state (new STF section); hierarchy is kept."""
        self.last_writer = None
        self.readers = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DataHandle({self.name!r})"


@dataclass
class Task:
    """One node of the task graph.

    Attributes
    ----------
    id:
        Dense index within its :class:`~repro.runtime.dag.TaskGraph`.
    kind:
        Kernel family ("getrf", "trsm", "gemm", ...); drives priorities and
        reporting.
    accesses:
        Declared ``(handle, mode)`` pairs.
    priority:
        Larger runs earlier under priority-aware schedulers.
    seconds:
        Measured sequential execution time (the simulator's default cost).
    flops:
        Modelled arithmetic work (the deterministic alternative cost).
    func:
        The kernel closure; ``None`` once executed eagerly (STF mode) or for
        replayed/traced tasks.
    meta:
        Optional observability annotations (operand bytes/ranks) attached by
        the STF engine when a probe is active; ``None`` otherwise.
    spec:
        Optional declarative kernel description (a
        :class:`~repro.runtime.process.TaskSpec`) that a process executor can
        ship to a worker; ``None`` when the task only has an in-process
        closure.
    """

    id: int
    kind: str
    accesses: tuple = ()
    priority: int = 0
    seconds: float = 0.0
    flops: float = 0.0
    func: Callable[[], Any] | None = None
    deps: set = field(default_factory=set)
    successors: set = field(default_factory=set)
    label: str = ""
    meta: dict | None = None
    spec: Any | None = None

    @property
    def n_deps(self) -> int:
        return len(self.deps)

    def cost(self, attr: str = "seconds") -> float:
        """Cost under the named model ("seconds" or "flops")."""
        if attr == "seconds":
            return self.seconds
        if attr == "flops":
            return self.flops
        raise ValueError(f"unknown cost attribute {attr!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Task(#{self.id} {self.kind} prio={self.priority})"

    def __hash__(self) -> int:
        return self.id

    def __eq__(self, other) -> bool:
        return isinstance(other, Task) and other.id == self.id
