"""Runtime access-mode race detector for the STF engine.

The whole reproduction rests on the STF engine inferring the task DAG
correctly from the ``(handle, mode)`` accesses declared at submission: a
misdeclared access produces a silently-wrong DAG whose replayed schedules are
not linear extensions of the true data dependencies.  This module checks the
declarations against reality instead of trusting them:

* **Payload fingerprints** — around every eagerly-executed kernel the
  checker hashes the NumPy buffers reachable from each accessed handle
  (content hashes; large arrays are strided-sampled).  A changed fingerprint
  on an R-declared handle is an *undeclared write* (error); an unchanged
  fingerprint on a pure-W handle is a *silent write* (warning).
* **Stale accumulator reads** — a task that declares a pure R access on a
  handle whose leaves still carry pending :class:`~repro.hmatrix.accumulator
  .UpdateAccumulator` updates would read data the flush-before-read
  discipline says must already be rounded in (error).
* **Handle aliasing** — two :class:`~repro.runtime.task.DataHandle`\\ s whose
  payloads share memory (``np.shares_memory``) break the ``id(payload)``
  registry's assumption that distinct handles mean disjoint data; the STF
  inference would then miss dependencies between them (error).
* **Trace validation** — :func:`validate_trace` checks post-hoc that any
  :class:`~repro.runtime.trace.ExecutionTrace` (simulated or threaded) is a
  linear extension of the task graph: every event starts only after all of
  its task's dependencies have finished.

The checker is opt-in and zero-cost when disabled: ``StfEngine`` holds
``racecheck=None`` by default and only performs a ``None`` test per task.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .dag import TaskGraph
from .task import AccessMode, DataHandle, Task
from .trace import ExecutionTrace

__all__ = [
    "RaceCheckError",
    "RaceViolation",
    "RaceChecker",
    "payload_fingerprint",
    "iter_buffers",
    "validate_trace",
]


class RaceCheckError(RuntimeError):
    """An access-mode violation detected at eager execution time."""


@dataclass(frozen=True)
class RaceViolation:
    """One detected mismatch between declared and actual memory effects.

    Attributes
    ----------
    kind:
        "undeclared-write" (R handle mutated), "silent-write" (W handle
        untouched), "stale-read" (R handle with pending accumulator
        updates), "aliased-handles" (two handles over shared memory), or
        "trace-order" (trace event before its dependencies finished).
    severity:
        "error" or "warning".
    """

    kind: str
    severity: str
    task_id: int | None
    task_kind: str
    task_label: str
    handle: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        if self.task_id is None:
            where = "handle registration"
        else:
            where = f"task #{self.task_id} {self.task_kind}"
            if self.task_label:
                where += f" [{self.task_label}]"
        return f"{self.kind} ({self.severity}) at {where}, handle {self.handle}: {self.message}"


def iter_buffers(payload):
    """Yield the NumPy arrays making up ``payload``'s semantic content.

    Understands the repo's payload shapes without importing upper layers
    (duck-typed to avoid a runtime -> hmatrix/core dependency cycle): raw
    ``ndarray``\\ s, lists/tuples of payloads, ``Tile`` (``.mat``),
    ``RkMatrix`` (``.u``/``.v``) and ``HMatrix`` nodes (dense / Rk leaf
    content).  Caches like ``packed_lu`` are deliberately excluded — they
    are redundant derived state whose population during a read must not
    count as a write.
    """
    seen: set[int] = set()
    stack = [payload]
    while stack:
        obj = stack.pop()
        if obj is None or id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            yield obj
        elif isinstance(obj, (list, tuple)):
            stack.extend(obj)
        elif hasattr(obj, "mat"):  # core.descriptor.Tile
            stack.append(obj.mat)
        elif hasattr(obj, "u") and hasattr(obj, "v"):  # hmatrix.rk.RkMatrix
            stack.extend((obj.u, obj.v))
        elif hasattr(obj, "leaves"):  # hmatrix.hmatrix.HMatrix
            for leaf in obj.leaves():
                if leaf.full is not None:
                    stack.append(leaf.full)
                elif leaf.rk is not None:
                    stack.extend((leaf.rk.u, leaf.rk.v))


def payload_fingerprint(payload, *, sample_threshold: int = 1 << 16) -> bytes:
    """Cheap content hash of every buffer reachable from ``payload``.

    Arrays at or below ``sample_threshold`` elements are hashed in full;
    larger arrays are hashed through a deterministic ~4096-element stride
    sample plus their shape/dtype, keeping the per-task cost bounded for
    big tiles while still catching essentially any kernel-sized mutation.
    """
    h = hashlib.blake2b(digest_size=16)
    for arr in iter_buffers(payload):
        h.update(str(arr.shape).encode())
        h.update(arr.dtype.str.encode())
        if arr.size <= sample_threshold:
            h.update(np.ascontiguousarray(arr).tobytes())
        else:
            flat = arr.reshape(-1) if arr.flags.c_contiguous else arr.ravel()
            step = max(1, arr.size // 4096)
            h.update(np.ascontiguousarray(flat[::step]).tobytes())
    return h.digest()


def _hmatrix_nodes(payload):
    """H-matrix nodes reachable from ``payload`` (for accumulator queries)."""
    stack = [payload]
    while stack:
        obj = stack.pop()
        if obj is None:
            continue
        if isinstance(obj, (list, tuple)):
            stack.extend(obj)
        elif hasattr(obj, "mat"):
            stack.append(obj.mat)
        elif hasattr(obj, "leaves") and not isinstance(obj, np.ndarray):
            yield obj


def _related(a: DataHandle, b: DataHandle) -> bool:
    """True when ``a`` and ``b`` are ancestor/descendant in a handle hierarchy."""
    p = a.parent
    while p is not None:
        if p is b:
            return True
        p = p.parent
    p = b.parent
    while p is not None:
        if p is a:
            return True
        p = p.parent
    return False


class RaceChecker:
    """Verifies declared access modes against actual memory effects.

    Parameters
    ----------
    strict:
        Raise :class:`RaceCheckError` on the first error-severity violation
        (warnings are always only recorded).
    sample_threshold:
        Arrays larger than this many elements are fingerprinted by stride
        sampling instead of in full (see :func:`payload_fingerprint`).
    """

    def __init__(self, *, strict: bool = True, sample_threshold: int = 1 << 16) -> None:
        self.strict = strict
        self.sample_threshold = sample_threshold
        self.violations: list[RaceViolation] = []
        self.n_checked_tasks = 0
        self._accumulators: list = []
        self._snapshots: dict[int, bytes] = {}
        # Aliasing registry: id(base buffer) -> [(array, handle), ...].
        self._buffers: dict[int, list[tuple[np.ndarray, DataHandle]]] = {}

    # -- reporting -----------------------------------------------------------
    @property
    def n_errors(self) -> int:
        return sum(1 for v in self.violations if v.severity == "error")

    @property
    def n_warnings(self) -> int:
        return sum(1 for v in self.violations if v.severity == "warning")

    def summary(self) -> str:
        return (
            f"racecheck: {self.n_checked_tasks} tasks checked, "
            f"{self.n_errors} errors, {self.n_warnings} warnings"
        )

    def _report(self, violation: RaceViolation) -> None:
        self.violations.append(violation)
        if self.strict and violation.severity == "error":
            raise RaceCheckError(str(violation))

    # -- accumulator awareness ------------------------------------------------
    def watch_accumulator(self, acc) -> None:
        """Track ``acc`` for stale-read detection (flush-before-read)."""
        self._accumulators.append(acc)

    def _has_pending(self, payload) -> bool:
        if not any(acc.pending_blocks for acc in self._accumulators):
            return False
        for node in _hmatrix_nodes(payload):
            for acc in self._accumulators:
                if acc.has_pending(node):
                    return True
        return False

    # -- handle aliasing --------------------------------------------------------
    def register_handle(self, handle: DataHandle) -> None:
        """Record ``handle``'s buffers; flag overlap with earlier handles.

        Two views of one buffer registered as separate handles defeat the
        engine's ``id(payload)`` registry: the STF inference would treat
        them as independent data and drop real dependencies.  Hierarchical
        sub-block handles (``StfEngine.subhandle``) overlap their ancestors
        *by construction* and the STF inference knows it, so related handles
        are exempt; only overlap between unrelated handles is an error.
        """
        for arr in iter_buffers(handle.payload):
            base = arr.base if arr.base is not None else arr
            bucket = self._buffers.setdefault(id(base), [])
            for other_arr, other_handle in bucket:
                if other_handle is handle or _related(handle, other_handle):
                    continue
                if np.shares_memory(arr, other_arr):
                    self._report(
                        RaceViolation(
                            kind="aliased-handles",
                            severity="error",
                            task_id=None,
                            task_kind="<register>",
                            task_label="",
                            handle=handle.name,
                            message=(
                                f"payload shares memory with handle "
                                f"{other_handle.name!r}; STF dependency "
                                "inference keys on payload identity and "
                                "would miss dependencies between them"
                            ),
                        )
                    )
                    break
            bucket.append((arr, handle))

    # -- per-task fingerprinting ---------------------------------------------
    def before_task(self, task: Task) -> None:
        """Snapshot accessed payloads; check the flush-before-read rule."""
        self._snapshots.clear()
        for handle, mode in task.accesses:
            if mode is AccessMode.R and self._has_pending(handle.payload):
                self._report(
                    RaceViolation(
                        kind="stale-read",
                        severity="error",
                        task_id=task.id,
                        task_kind=task.kind,
                        task_label=task.label,
                        handle=handle.name,
                        message=(
                            "pure-R access to a handle with pending unflushed "
                            "accumulator updates (flush-before-read violated)"
                        ),
                    )
                )
            self._snapshots[handle.id] = payload_fingerprint(
                handle.payload, sample_threshold=self.sample_threshold
            )

    def after_task(self, task: Task) -> None:
        """Compare post-run fingerprints against the declared modes."""
        self.n_checked_tasks += 1
        for handle, mode in task.accesses:
            before = self._snapshots.get(handle.id)
            if before is None:
                continue
            after = payload_fingerprint(
                handle.payload, sample_threshold=self.sample_threshold
            )
            changed = after != before
            if changed and not mode.writes:
                self._report(
                    RaceViolation(
                        kind="undeclared-write",
                        severity="error",
                        task_id=task.id,
                        task_kind=task.kind,
                        task_label=task.label,
                        handle=handle.name,
                        message="payload changed under an R-declared access",
                    )
                )
            elif not changed and mode is AccessMode.W:
                self._report(
                    RaceViolation(
                        kind="silent-write",
                        severity="warning",
                        task_id=task.id,
                        task_kind=task.kind,
                        task_label=task.label,
                        handle=handle.name,
                        message="payload unchanged under a W-declared access",
                    )
                )
        self._snapshots.clear()


def validate_trace(
    graph: TaskGraph,
    trace: ExecutionTrace,
    *,
    tol: float = 1e-12,
    strict: bool = True,
) -> list[RaceViolation]:
    """Check that ``trace`` is a linear extension of ``graph``.

    Every task must appear exactly once, and no event may start before all
    of its task's dependencies have finished (within ``tol`` seconds, for
    measured threaded traces).  Works on simulated and threaded traces
    alike.  Returns the violations; raises :class:`RaceCheckError` on the
    first one when ``strict``.
    """
    violations: list[RaceViolation] = []

    def report(v: RaceViolation) -> None:
        violations.append(v)
        if strict:
            raise RaceCheckError(str(v))

    events_by_task: dict[int, list] = {}
    for e in trace.events:
        events_by_task.setdefault(e.task_id, []).append(e)
    for task in graph.tasks:
        evs = events_by_task.get(task.id, [])
        if len(evs) != 1:
            report(
                RaceViolation(
                    kind="trace-order",
                    severity="error",
                    task_id=task.id,
                    task_kind=task.kind,
                    task_label=task.label,
                    handle="",
                    message=f"task appears {len(evs)} times in the trace (expected once)",
                )
            )
    known = {t.id for t in graph.tasks}
    for tid in events_by_task:
        if tid not in known:
            report(
                RaceViolation(
                    kind="trace-order",
                    severity="error",
                    task_id=tid,
                    task_kind="<unknown>",
                    task_label="",
                    handle="",
                    message="trace event references a task not in the graph",
                )
            )
    for task in graph.tasks:
        evs = events_by_task.get(task.id)
        if not evs or len(evs) != 1:
            continue
        start = evs[0].start
        for dep in task.deps:
            dep_evs = events_by_task.get(dep)
            if not dep_evs or len(dep_evs) != 1:
                continue
            if dep_evs[0].end > start + tol:
                report(
                    RaceViolation(
                        kind="trace-order",
                        severity="error",
                        task_id=task.id,
                        task_kind=task.kind,
                        task_label=task.label,
                        handle="",
                        message=(
                            f"starts at {start:.6g}s before dependency "
                            f"#{dep} finishes at {dep_evs[0].end:.6g}s — the "
                            "trace is not a linear extension of the DAG"
                        ),
                    )
                )
    return violations
