"""Scheduling policies (Section V-C of the paper).

Three StarPU strategies are modelled with the exact semantics the paper
describes, plus a plain FIFO baseline:

* ``ws`` — *work stealing*: one queue per worker; a ready task is queued on
  the worker that released it; an idle worker steals from the most loaded
  worker.
* ``lws`` — *locality work stealing*: like ``ws`` but queues are sorted by
  task priority and stealing proceeds over neighbouring workers.
* ``prio`` — a single central queue sorted by decreasing priority; all
  workers pull from it.  (Its global queue is why the paper sees contention
  on small problems.)
* ``eager`` — central FIFO, no priorities (ablation baseline).

Schedulers are driven in *virtual time* by the simulator: ``push(task, w)``
when a task becomes ready (``w`` = the worker that released it, or ``None``
for source tasks), ``pop(w)`` when worker ``w`` is idle.  All policies are
deterministic: ties break on submission order.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque

from .task import Task

__all__ = [
    "Scheduler",
    "EagerScheduler",
    "DequeModelScheduler",
    "PrioScheduler",
    "WorkStealingScheduler",
    "LocalityWorkStealingScheduler",
    "make_scheduler",
    "SCHEDULER_NAMES",
]


class Scheduler:
    """Virtual-time scheduler interface used by the simulator.

    When a :class:`~repro.obs.SchedulerStats` object is attached (the
    executor/simulator does this while an observability probe is active),
    every policy counts pushes, local pops, steal attempts/successes, and
    samples the ready-queue depth on each push.  Detached (the default) the
    accounting costs one ``None`` test per call.
    """

    name = "abstract"
    stats = None

    def attach_stats(self, stats) -> None:
        """Install (or with ``None`` remove) a stats sink for this run."""
        self.stats = stats

    def _note_push(self) -> None:
        st = self.stats
        if st is not None:
            st.pushes += 1
            st.sample_depth(self.pending())

    def _note_pop(self, task: Task | None, *, stolen: bool | None = None) -> None:
        """Count a pop outcome: ``stolen=None`` = served from the caller's own
        (or the central) queue; otherwise a steal attempt that found a victim
        (``True``) or came up empty (``False``)."""
        st = self.stats
        if st is None:
            return
        if stolen is None:
            if task is not None:
                st.pops_local += 1
        else:
            st.steal_attempts += 1
            if stolen:
                st.steals += 1

    def setup(self, nworkers: int) -> None:
        """Reset internal state for a run on ``nworkers`` workers."""
        raise NotImplementedError

    def push(self, task: Task, worker: int | None) -> None:
        """A task became ready; ``worker`` released it (None for sources)."""
        raise NotImplementedError

    def pop(self, worker: int) -> Task | None:
        """Idle ``worker`` requests work; None if nothing is available."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of queued (ready, unassigned) tasks."""
        raise NotImplementedError


class EagerScheduler(Scheduler):
    """Central FIFO queue, no priorities (StarPU's ``eager``)."""

    name = "eager"

    def setup(self, nworkers: int) -> None:
        self._queue: deque[Task] = deque()

    def push(self, task: Task, worker: int | None) -> None:
        self._queue.append(task)
        self._note_push()

    def pop(self, worker: int) -> Task | None:
        task = self._queue.popleft() if self._queue else None
        self._note_pop(task)
        return task

    def pending(self) -> int:
        return len(self._queue)


class PrioScheduler(Scheduler):
    """Single central queue sorted by decreasing priority (``prio``)."""

    name = "prio"

    def setup(self, nworkers: int) -> None:
        self._heap: list[tuple[int, int, Task]] = []
        self._seq = itertools.count()

    def push(self, task: Task, worker: int | None) -> None:
        heapq.heappush(self._heap, (-task.priority, next(self._seq), task))
        self._note_push()

    def pop(self, worker: int) -> Task | None:
        if not self._heap:
            self._note_pop(None)
            return None
        task = heapq.heappop(self._heap)[2]
        self._note_pop(task)
        return task

    def pending(self) -> int:
        return len(self._heap)


class WorkStealingScheduler(Scheduler):
    """Per-worker FIFO queues with steal-from-most-loaded (``ws``)."""

    name = "ws"

    def setup(self, nworkers: int) -> None:
        if nworkers < 1:
            raise ValueError("need at least one worker")
        self.nworkers = nworkers
        self._queues: list[deque[Task]] = [deque() for _ in range(nworkers)]
        self._rr = itertools.count()  # round-robin for source tasks

    def push(self, task: Task, worker: int | None) -> None:
        w = worker if worker is not None else next(self._rr) % self.nworkers
        self._queues[w].append(task)
        self._note_push()

    def pop(self, worker: int) -> Task | None:
        own = self._queues[worker]
        if own:
            task = own.popleft()
            self._note_pop(task)
            return task
        # Steal from the most loaded *other* worker.  The idle caller's own
        # (empty) queue is excluded outright so it can never win a length
        # tie, and only workers with queued work are candidates; ties break
        # on the lowest worker index (deterministic).
        victim = None
        best = 0
        for w in range(self.nworkers):
            if w == worker:
                continue
            load = len(self._queues[w])
            if load > best:
                best = load
                victim = w
        if victim is None:
            self._note_pop(None, stolen=False)
            return None
        # Steal from the opposite end to preserve the victim's locality.
        task = self._queues[victim].pop()
        self._note_pop(task, stolen=True)
        return task

    def pending(self) -> int:
        return sum(len(q) for q in self._queues)


class LocalityWorkStealingScheduler(Scheduler):
    """Per-worker priority queues with neighbour stealing (``lws``)."""

    name = "lws"

    def setup(self, nworkers: int) -> None:
        if nworkers < 1:
            raise ValueError("need at least one worker")
        self.nworkers = nworkers
        self._heaps: list[list[tuple[int, int, Task]]] = [[] for _ in range(nworkers)]
        self._seq = itertools.count()
        self._rr = itertools.count()

    def push(self, task: Task, worker: int | None) -> None:
        w = worker if worker is not None else next(self._rr) % self.nworkers
        heapq.heappush(self._heaps[w], (-task.priority, next(self._seq), task))
        self._note_push()

    def pop(self, worker: int) -> Task | None:
        if self._heaps[worker]:
            task = heapq.heappop(self._heaps[worker])[2]
            self._note_pop(task)
            return task
        # Visit neighbours in ring distance order: w+1, w-1, w+2, ...
        for dist in range(1, self.nworkers):
            for cand in ((worker + dist) % self.nworkers, (worker - dist) % self.nworkers):
                if self._heaps[cand]:
                    task = heapq.heappop(self._heaps[cand])[2]
                    self._note_pop(task, stolen=True)
                    return task
        self._note_pop(None, stolen=False)
        return None

    def pending(self) -> int:
        return sum(len(h) for h in self._heaps)


class DequeModelScheduler(Scheduler):
    """Cost-aware central queue (StarPU's ``dm`` family, homogeneous case).

    With homogeneous workers the deque-model policy reduces to serving the
    most expensive ready task first (longest-processing-time list
    scheduling), using each task's performance-model estimate — here the
    measured/modelled cost itself.  Ties break on priority, then FIFO.
    """

    name = "dm"

    def __init__(self, cost_attr: str = "seconds") -> None:
        self.cost_attr = cost_attr

    def setup(self, nworkers: int) -> None:
        self._heap: list[tuple[float, int, int, Task]] = []
        self._seq = itertools.count()

    def push(self, task: Task, worker: int | None) -> None:
        heapq.heappush(
            self._heap,
            (-task.cost(self.cost_attr), -task.priority, next(self._seq), task),
        )
        self._note_push()

    def pop(self, worker: int) -> Task | None:
        if not self._heap:
            self._note_pop(None)
            return None
        task = heapq.heappop(self._heap)[3]
        self._note_pop(task)
        return task

    def pending(self) -> int:
        return len(self._heap)


_REGISTRY = {
    "eager": EagerScheduler,
    "prio": PrioScheduler,
    "ws": WorkStealingScheduler,
    "lws": LocalityWorkStealingScheduler,
    "dm": DequeModelScheduler,
}

#: Names accepted by :func:`make_scheduler`, in the paper's order (the
#: paper's three strategies first, then the extras).
SCHEDULER_NAMES = ("ws", "lws", "prio", "eager", "dm")


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by its StarPU policy name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}") from None
