"""StarPU substrate: sequential-task-flow runtime with simulated multicore.

The paper relies on StarPU to (a) infer the task DAG from data-access modes
declared at submission (the *sequential task flow* model) and (b) execute it
on a multicore machine under a scheduling policy (``ws``, ``lws``, ``prio``).

Real wall-clock task parallelism is unobservable here (single-core host,
Python GIL for small kernels), so this substrate splits the two concerns the
way DESIGN.md documents: task numerics run *for real* (sequentially, at
submission), each task's cost is measured (or modelled from flops), and a
discrete-event :mod:`simulator <repro.runtime.simulator>` then replays the
exact DAG on ``p`` virtual workers under the chosen scheduler and runtime
overheads.  A real thread-pool executor is provided for BLAS-heavy workloads
on genuinely multicore hosts.
"""

from .task import AccessMode, DataHandle, Task
from .dag import TaskGraph
from .expand import ExpansionRecord, NestedPolicy, NestedStats
from .stf import StfEngine
from .schedulers import (
    Scheduler,
    EagerScheduler,
    DequeModelScheduler,
    PrioScheduler,
    WorkStealingScheduler,
    LocalityWorkStealingScheduler,
    make_scheduler,
    SCHEDULER_NAMES,
)
from .simulator import RuntimeOverheadModel, SimulationResult, simulate
from .racecheck import (
    RaceCheckError,
    RaceChecker,
    RaceViolation,
    payload_fingerprint,
    validate_trace,
)
from .threaded import ThreadedExecutor
from .process import ProcessExecutor, TaskSpec
from .shmem import SharedTileArena, orphaned_segments
from .trace import ExecutionTrace, TraceEvent, render_gantt, export_chrome_trace
from .kinds import KindStyle, KIND_STYLES, kind_letter, kind_color, register_kind
from .bulksync import simulate_bulk_synchronous, depth_stages
from .distributed import (
    DistributedMachine,
    DistributedResult,
    block_cyclic_1d,
    block_cyclic_2d,
    greedy_balanced,
    simulate_distributed,
    tile_h_distribution,
)

__all__ = [
    "AccessMode",
    "DataHandle",
    "Task",
    "TaskGraph",
    "StfEngine",
    "NestedPolicy",
    "NestedStats",
    "ExpansionRecord",
    "Scheduler",
    "EagerScheduler",
    "DequeModelScheduler",
    "PrioScheduler",
    "WorkStealingScheduler",
    "LocalityWorkStealingScheduler",
    "make_scheduler",
    "SCHEDULER_NAMES",
    "RuntimeOverheadModel",
    "SimulationResult",
    "simulate",
    "RaceCheckError",
    "RaceChecker",
    "RaceViolation",
    "payload_fingerprint",
    "validate_trace",
    "simulate_bulk_synchronous",
    "depth_stages",
    "ThreadedExecutor",
    "ProcessExecutor",
    "TaskSpec",
    "SharedTileArena",
    "orphaned_segments",
    "ExecutionTrace",
    "TraceEvent",
    "render_gantt",
    "export_chrome_trace",
    "KindStyle",
    "KIND_STYLES",
    "kind_letter",
    "kind_color",
    "register_kind",
    "DistributedMachine",
    "DistributedResult",
    "block_cyclic_1d",
    "block_cyclic_2d",
    "greedy_balanced",
    "simulate_distributed",
    "tile_h_distribution",
]
