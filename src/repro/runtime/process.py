"""Scheduler-backed *process*-pool execution of a deferred task graph.

The threaded executor only overlaps tasks while kernels hold BLAS (the GIL
serialises everything else), so small-tile Tile-H factorizations see no real
wall-clock scaling on CPython.  This executor runs the same task graphs on
worker **processes**: tile payloads are placed in shared-memory segments by a
:class:`~repro.runtime.shmem.SharedTileArena`, workers rebuild zero-copy numpy
views and call LAPACK on shared pages, and only skeleton pickles (object
shells holding :class:`~repro.runtime.shmem.ArenaRef` pointers) cross pipes.

Tasks must carry a :class:`TaskSpec` — a declarative, picklable description
(``"module:callable"`` plus scalar args) — because closures built by a
deferred :class:`~repro.runtime.stf.StfEngine` capture live objects in the
parent.  The worker-side convention is ``fn(payloads, *args, **kwargs)`` where
``payloads`` holds the task's access-list payloads in declared order; ops with
``needs_context=True`` additionally receive the executor's ``context`` (shipped
once per worker) as a ``context=`` kwarg.

Scheduling semantics mirror :class:`~repro.runtime.threaded.ThreadedExecutor`
exactly: the parent drives the shared scheduler object, seeds sources in
submission order, dispatches to idle workers in ascending index, and pushes
freed successors to the completing worker (push-to-releasing-worker
locality).  With one worker the pull order is bit-for-bit the virtual-time
simulator's; with any worker count, results are bit-identical to eager
execution for ``accumulate=False`` paths because successive updates of one
tile are serialized by the STF writer-after-writer dependencies.
"""

from __future__ import annotations

import importlib
import itertools
import os
import pickle
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_context

import numpy as np

from ..obs.instrument import current as _current_probe
from ..obs.tracing import current_trace
from .dag import TaskGraph
from .schedulers import Scheduler, make_scheduler
from .shmem import SEGMENT_PREFIX, SharedTileArena, orphaned_segments, unlink_segment
from .trace import ExecutionTrace, TraceEvent

__all__ = ["ProcessExecutor", "TaskSpec"]

_run_counter = itertools.count()

_BLAS_ENV = ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS")


@dataclass(frozen=True)
class TaskSpec:
    """Declarative kernel description a worker process can execute.

    ``op`` names a module-level callable as ``"package.module:callable"``;
    ``args``/``kwargs`` must be picklable scalars/metadata (never payloads —
    those travel through shared memory via the task's access list).
    """

    op: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    needs_context: bool = False


def _resolve_op(op: str):
    mod, _, attr = op.partition(":")
    if not mod or not attr:
        raise ValueError(f"op must be 'module.path:callable', got {op!r}")
    return getattr(importlib.import_module(mod), attr)


def _check_spawnable() -> None:
    """Fail fast, in the parent, when spawn cannot re-import ``__main__``.

    The spawn start method re-runs the parent's ``__main__`` in every child.
    A parent whose ``__main__`` came down a pipe — a heredoc, ``python -``,
    a deleted script — has no importable path, so each child would die at
    startup with an opaque ``FileNotFoundError`` deep inside
    ``multiprocessing.spawn`` and the run would only report "worker died".
    Catching it here turns that into one clear, actionable error before any
    process is spawned.
    """
    main = sys.modules.get("__main__")
    if main is None:
        return
    if getattr(main, "__spec__", None) is not None:
        return  # `python -m pkg`: children re-import by module name
    path = getattr(main, "__file__", None)
    if path is None:
        return  # interactive/embedded: spawn skips the main re-import
    if not os.path.exists(path):
        raise RuntimeError(
            "cannot start worker processes: the spawn start method re-imports "
            f"__main__ in each child, but __main__ came from {path!r}, which "
            "is not a file on disk. Scripts fed via stdin (heredocs, "
            "'python -') cannot use ProcessExecutor — run the script from a "
            "real file, or use exec_mode='threaded'."
        )


# -- tiny ops used by the executor's own tests (must be importable in spawn
# children, hence module level) ------------------------------------------------
def _noop_for_tests(payloads):
    return None


def _incr_for_tests(payloads, delta=1.0):
    payloads[0][...] += delta


def _crash_for_tests(payloads):  # pragma: no cover - runs in a worker
    os._exit(3)


def _raise_for_tests(payloads, message="boom"):  # pragma: no cover - in worker
    raise ValueError(message)


def _explode_for_tests():  # pragma: no cover - runs in a worker
    raise RuntimeError("exploding context (test helper)")


class _ExplodingContext:
    """Test helper: pickles fine in the parent, raises when a child unpickles
    it — the minimal reproducible 'worker dies during startup' failure."""

    def __reduce__(self):
        return (_explode_for_tests, ())


def _worker_main(widx: int, task_conn, res_conn, arena_tag: str, ctx_blob) -> None:
    """Fatal-error shim around :func:`_worker_loop`.

    Any exception that escapes the loop — including startup failures like a
    context blob that will not unpickle or an arena that will not attach —
    is reported to the parent as a ``("fatal", widx, traceback)`` message
    before the worker dies, so "worker died" errors carry the child's actual
    traceback instead of just an exit code.
    """
    try:
        _worker_loop(widx, task_conn, res_conn, arena_tag, ctx_blob)
    except BaseException:
        try:
            res_conn.send(("fatal", widx, traceback.format_exc()))
        except (OSError, BrokenPipeError, pickle.PicklingError):
            pass
        raise


def _worker_loop(widx: int, task_conn, res_conn, arena_tag: str, ctx_blob) -> None:
    """Worker loop: receive task messages, run ops on shared views, reply.

    The worker's own arena is ``untrack=True``: the parent owns unlinking of
    every segment (workers announce names of segments they create).
    """
    arena = SharedTileArena(arena_tag, untrack=True)
    context = pickle.loads(ctx_blob) if ctx_blob is not None else None
    local: dict[int, object] = {}
    ops: dict[str, object] = {}
    try:
        while True:
            try:
                msg = task_conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "stop":
                try:
                    res_conn.send(("bye", widx))
                except (OSError, BrokenPipeError):
                    pass
                break
            # One pipe read carries a batch of task entries; each entry runs
            # and replies individually (per-entry "done"), so the parent's
            # bookkeeping is unchanged — only the dispatch syscalls amortize.
            # The trace id rides the dispatch and is echoed on every "done"
            # so the parent can attach worker-side kernel spans to the
            # request trace that owns this run (None when tracing is off).
            _, trace_id, entries = msg
            for tid, spec, hids, writes, updates in entries:
                for hid, blob in updates:
                    local[hid] = arena.loads(blob)
                try:
                    if spec is None:
                        # Pre-traced task: a no-op round-trip that still
                        # occupies this worker, so the pull order matches the
                        # simulator.
                        t0 = time.perf_counter()
                        t1 = t0
                        reships = []
                    else:
                        fn = ops.get(spec.op)
                        if fn is None:
                            fn = _resolve_op(spec.op)
                            ops[spec.op] = fn
                        payloads = [local[h] for h in hids]
                        kwargs = dict(spec.kwargs)
                        if spec.needs_context:
                            kwargs["context"] = context
                        t0 = time.perf_counter()
                        fn(payloads, *spec.args, **kwargs)
                        t1 = time.perf_counter()
                        # Always reship written skeletons: in-place mutations
                        # keep their ArenaRefs (cheap), replaced arrays land
                        # in fresh worker segments announced below.
                        reships = [(hid, arena.dumps(local[hid])) for hid in writes]
                except BaseException as exc:
                    try:
                        pickle.dumps(exc)
                        payload = exc
                    except Exception:
                        payload = RuntimeError(
                            f"task #{tid} failed in worker {widx}:\n"
                            f"{traceback.format_exc()}"
                        )
                    arena.take_copied_bytes()
                    res_conn.send(
                        ("error", widx, tid, payload, arena.take_new_segments())
                    )
                    # Later entries in this batch may read what the failed
                    # task was meant to write — abandon them; the parent is
                    # aborting the run anyway.
                    break
                res_conn.send(
                    ("done", widx, tid, t0, t1, reships,
                     arena.take_new_segments(), arena.take_copied_bytes(),
                     trace_id)
                )
    finally:
        arena.close()


def _dead_worker_error(w: int, proc, res_conn, task) -> RuntimeError:
    """Build the 'worker died' error, draining the worker's result pipe for
    a buffered ``fatal`` traceback so the child's actual failure — not just
    an exit code — reaches the caller."""
    tb = None
    try:
        while res_conn.poll():
            msg = res_conn.recv()
            if msg[0] == "fatal":
                tb = msg[2]
    except (EOFError, OSError):
        pass
    detail = f"; child traceback:\n{tb}" if tb else ""
    return RuntimeError(
        f"worker {w} died (exit code {proc.exitcode}) "
        f"while running task #{task.id} ({task.kind}){detail}"
    )


def _install(handle, final) -> None:
    """Adopt a harvested result into the parent's original payload.

    Dense segments/tiles are written *in place* (callers hold views — e.g.
    the triangular solve gathers RHS segments out of one work vector); tile
    wrappers adopt the new ``mat``; anything else replaces the payload.
    """
    original = handle.payload
    if (
        isinstance(original, np.ndarray)
        and isinstance(final, np.ndarray)
        and original.shape == final.shape
        and original.dtype == final.dtype
    ):
        original[...] = final
    elif hasattr(original, "fill") and hasattr(original, "mat") and hasattr(final, "mat"):
        original.mat = final.mat
        original.format = final.format
    else:
        handle.payload = final


@dataclass
class ProcessExecutor:
    """Execute a deferred :class:`TaskGraph` on worker processes.

    Drop-in for :class:`~repro.runtime.threaded.ThreadedExecutor` (same
    scheduler policies, trace, probe hooks), but every task needs a
    :class:`TaskSpec` (``task.spec``) unless it is pre-traced (``func=None``).

    ``context`` is an arbitrary picklable object shipped once per worker and
    passed to ops with ``needs_context=True`` (the Tile-H assembly closure
    state: kernel, points, clustering).  ``blas_threads`` pins the BLAS
    thread-count env vars around worker spawn (default 1: one BLAS stream per
    worker process — oversubscription kills scaling) — ``None`` leaves the
    environment alone.

    ``dispatch_batch`` caps how many task entries one pipe write may carry.
    Fine-grain graphs (nested expansion) spend most of their single-worker
    wall clock in dispatch round-trips (``fused_process`` nworkers=1 measured
    ``idle_fraction`` 0.82); batching amortizes the syscall + wakeup cost.
    With one worker the batch is built by *optimistic completion* — pop a
    task, release its successors as if it had finished, pop again — which
    reproduces exactly the virtual-time simulator's pull order, so the
    1-worker determinism contract survives batching.  With several workers
    only currently-ready tasks are batched (conflicting tasks are never
    simultaneously ready, so intra-batch entries commute with each other).

    After ``run()``, ``ipc_bytes`` (pickled bytes across pipes) and
    ``shm_bytes`` (bytes copied into shared segments) hold the run's
    serialization/IPC accounting.
    """

    nworkers: int
    scheduler: Scheduler | str = "lws"
    trace: ExecutionTrace | None = field(default=None)
    instrument: object | None = field(default=None)
    context: object | None = field(default=None)
    blas_threads: int | None = 1
    dispatch_batch: int = 8

    def __post_init__(self) -> None:
        if self.nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {self.nworkers}")
        if self.dispatch_batch < 1:
            raise ValueError(
                f"dispatch_batch must be >= 1, got {self.dispatch_batch}"
            )
        if isinstance(self.scheduler, str):
            self.scheduler = make_scheduler(self.scheduler)
        self.ipc_bytes = 0
        self.shm_bytes = 0

    def run(self, graph: TaskGraph) -> float:
        """Run all tasks respecting dependencies; returns elapsed seconds.

        Every shared-memory segment created by the run (parent- or
        worker-side) is unlinked before returning, including on worker
        crashes and errors — a run never leaks ``/dev/shm`` entries.
        """
        n = len(graph.tasks)
        if n == 0:
            return 0.0
        graph.validate()
        _check_spawnable()
        for t in graph.tasks:
            if t.func is not None and t.spec is None:
                raise ValueError(
                    f"task #{t.id} ({t.kind}) has a closure but no TaskSpec; "
                    "the process executor cannot ship closures to workers — "
                    "submit tasks with insert_task(..., spec=TaskSpec(...))"
                )
        probe = self.instrument if self.instrument is not None else _current_probe()
        # Captured once at entry: worker-side kernel spans for this run attach
        # to the request trace active when the executor was invoked (the lead
        # request of a cold build), keyed by the echoed trace id.
        tctx = current_trace()
        tctx_id = tctx.trace_id if tctx is not None else None
        sched = self.scheduler
        sched.setup(self.nworkers)
        sched.attach_stats(probe.sched if probe is not None else None)
        indegree = {t.id: len(t.deps) for t in graph.tasks}
        for t in graph.tasks:
            if indegree[t.id] == 0:
                sched.push(t, None)
        if self.trace is None:
            self.trace = ExecutionTrace(nworkers=self.nworkers)
        elif self.trace.nworkers < self.nworkers:
            raise ValueError(
                f"supplied trace covers {self.trace.nworkers} workers, "
                f"executor has {self.nworkers}"
            )
        handles = {}
        for t in graph.tasks:
            for h, _mode in t.accesses:
                handles[h.id] = h

        run_tag = f"{SEGMENT_PREFIX}{os.getpid():x}r{next(_run_counter):x}"
        arena = SharedTileArena(run_tag + "p")
        segments: set[str] = set()
        ctx_blob = None
        if self.context is not None:
            ctx_blob = pickle.dumps(self.context, protocol=pickle.HIGHEST_PROTOCOL)
        self.ipc_bytes = 0
        self.shm_bytes = 0
        if ctx_blob is not None:
            self.ipc_bytes += len(ctx_blob) * self.nworkers

        mp = get_context("spawn")
        procs: list = []
        task_conns: list = []
        res_conns: list = []
        # Pin BLAS threading in the environment *before* spawn: OpenBLAS
        # reads these at import time in the child.
        saved_env = {}
        if self.blas_threads is not None:
            for var in _BLAS_ENV:
                saved_env[var] = os.environ.get(var)
                os.environ[var] = str(self.blas_threads)
        try:
            for w in range(self.nworkers):
                t_recv, t_send = mp.Pipe(duplex=False)
                r_recv, r_send = mp.Pipe(duplex=False)
                p = mp.Process(
                    target=_worker_main,
                    args=(w, t_recv, r_send, f"{run_tag}w{w}", ctx_blob),
                    daemon=True,
                    name=f"repro-pworker-{w}",
                )
                p.start()
                t_recv.close()
                r_send.close()
                procs.append(p)
                task_conns.append(t_send)
                res_conns.append(r_recv)
        finally:
            for var, old in saved_env.items():
                if old is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = old

        if probe is not None:
            probe.process_workers(self.nworkers)

        blob: dict[int, bytes] = {}
        version: dict[int, int] = {}
        known: list[dict[int, int]] = [dict() for _ in range(self.nworkers)]
        written: set[int] = set()
        idle = set(range(self.nworkers))
        running: dict[int, deque] = {w: deque() for w in range(self.nworkers)}
        # Tasks whose successors were already released at batch-build time
        # (single-worker optimistic completion) — their done-handler must
        # not release them a second time.
        released: set[int] = set()
        completed = 0
        error: BaseException | None = None
        elapsed = 0.0
        t_start = time.perf_counter()
        try:
            while completed < n and error is None:
                # Dispatch to idle workers in ascending index: with one
                # worker this is exactly the simulator's pull order.
                for w in sorted(idle):
                    if self.nworkers == 1:
                        limit = self.dispatch_batch
                    else:
                        # Ready-only batching: don't let one worker drain a
                        # queue other idle workers could be eating from.
                        limit = max(
                            1,
                            min(self.dispatch_batch,
                                sched.pending() // len(idle)),
                        )
                    entries: list[tuple] = []
                    batch_written: set[int] = set()
                    while len(entries) < limit:
                        task = sched.pop(w)
                        if task is None:
                            break
                        hids: list[int] = []
                        writes: list[int] = []
                        updates: list[tuple[int, bytes]] = []
                        if task.spec is not None:
                            for h, mode in task.accesses:
                                if h.id not in blob:
                                    blob[h.id] = arena.dumps(h.payload)
                                    version[h.id] = 0
                                hids.append(h.id)
                                if mode.writes and h.id not in writes:
                                    writes.append(h.id)
                            for hid in hids:
                                if hid in batch_written:
                                    # An earlier entry in this batch writes
                                    # this handle: the worker's local copy is
                                    # current when this entry runs; its reship
                                    # will refresh known[w] at done-time.
                                    continue
                                if known[w].get(hid) != version[hid]:
                                    updates.append((hid, blob[hid]))
                                    known[w][hid] = version[hid]
                            batch_written.update(writes)
                        entries.append(
                            (task.id, task.spec, hids, writes, updates)
                        )
                        running[w].append(task)
                        if probe is not None:
                            probe.process_dispatch(
                                sum(len(b) for _, b in updates)
                            )
                        if self.nworkers == 1 and len(entries) < limit:
                            # Optimistic completion: the sole worker runs
                            # batch entries in order, so this task finishes
                            # before the next pop — releasing its successors
                            # now keeps the pop sequence identical to the
                            # simulator's.
                            released.add(task.id)
                            for s in sorted(task.successors):
                                indegree[s] -= 1
                                if indegree[s] == 0:
                                    sched.push(graph.tasks[s], w)
                    if not entries:
                        continue
                    try:
                        task_conns[w].send(("batch", tctx_id, entries))
                    except (OSError, BrokenPipeError):
                        # The worker died before this dispatch; surface its
                        # traceback (if it managed to send one) instead of a
                        # bare BrokenPipeError.
                        error = _dead_worker_error(
                            w, procs[w], res_conns[w], running[w][0]
                        )
                        break
                    sent = sum(
                        len(b) for _, _, _, _, ups in entries for _, b in ups
                    )
                    self.ipc_bytes += sent
                    self.shm_bytes += arena.take_copied_bytes()
                    segments.update(arena.take_new_segments())
                    idle.discard(w)
                    if probe is not None:
                        probe.process_dispatch_batch(len(entries))
                if error is not None:
                    break
                busy = [w for w in range(self.nworkers) if running[w]]
                if not busy:
                    raise RuntimeError(
                        f"scheduler stalled with {n - completed} tasks left"
                    )
                connection.wait(
                    [res_conns[w] for w in busy]
                    + [procs[w].sentinel for w in busy]
                )
                progressed = False
                for w in busy:
                    conn = res_conns[w]
                    try:
                        while conn.poll():
                            msg = conn.recv()
                            progressed = True
                            if msg[0] == "done":
                                (_, _, _tid, t0_abs, t1_abs, reships,
                                 new_segs, copied, echo_tid) = msg
                                task = running[w].popleft()
                                if not running[w]:
                                    idle.add(w)
                                segments.update(new_segs)
                                self.shm_bytes += copied
                                got = 0
                                for hid, b in reships:
                                    blob[hid] = b
                                    version[hid] = version.get(hid, 0) + 1
                                    known[w][hid] = version[hid]
                                    written.add(hid)
                                    got += len(b)
                                self.ipc_bytes += got
                                # perf_counter is CLOCK_MONOTONIC: one clock
                                # across processes on Linux.
                                t0 = t0_abs - t_start
                                t1 = t1_abs - t_start
                                if task.func is not None or task.spec is not None:
                                    task.seconds = t1 - t0
                                self.trace.add(
                                    TraceEvent(task.id, task.kind, w, t0, t1)
                                )
                                completed += 1
                                if task.id in released:
                                    released.discard(task.id)
                                else:
                                    for s in sorted(task.successors):
                                        indegree[s] -= 1
                                        if indegree[s] == 0:
                                            sched.push(graph.tasks[s], w)
                                if (
                                    tctx is not None
                                    and echo_tid == tctx_id
                                    and task.spec is not None
                                ):
                                    tctx.add_span(
                                        f"kernel:{task.kind}", t0_abs, t1_abs,
                                        worker=f"proc{w}",
                                    )
                                if probe is not None:
                                    probe.task_span(task.kind, w, t0, t1)
                                    probe.sample(
                                        "queue_depth", sched.pending(), t=t1
                                    )
                                    if got:
                                        probe.process_result_bytes(got)
                            elif msg[0] == "error":
                                _, _, _tid, exc, new_segs = msg
                                segments.update(new_segs)
                                running[w].popleft()
                                error = exc
                                break
                            elif msg[0] == "fatal":
                                _, _, tb = msg
                                task = running[w][0] if running[w] else None
                                at = (
                                    f"while running task #{task.id} ({task.kind})"
                                    if task is not None else "between tasks"
                                )
                                error = RuntimeError(
                                    f"worker {w} died {at}; child "
                                    f"traceback:\n{tb}"
                                )
                                break
                    except (EOFError, OSError):
                        pass
                    if error is not None:
                        break
                if progressed or error is not None:
                    continue
                for w in busy:
                    if running[w] and not procs[w].is_alive():
                        task = running[w][0]
                        error = _dead_worker_error(w, procs[w], res_conns[w], task)
                        break
            if error is None:
                # Harvest: privatize every written payload back into the
                # parent's originals.  One cache across handles so payloads
                # that share an array keep sharing it.
                cache: dict = {}
                for hid in sorted(written):
                    _install(handles[hid], arena.loads_private(blob[hid], cache))
            elapsed = time.perf_counter() - t_start
        finally:
            for c in task_conns:
                try:
                    c.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
            deadline = time.monotonic() + 10.0
            for p in procs:
                p.join(max(0.1, deadline - time.monotonic()))
                if p.is_alive():  # pragma: no cover - stuck worker
                    p.terminate()
                    p.join(5.0)
            for c in task_conns + res_conns:
                try:
                    c.close()
                except OSError:  # pragma: no cover
                    pass
            segments.update(arena.segment_names())
            arena.close()
            for name in sorted(segments):
                unlink_segment(name)
            # Sweep anything a crashed worker created but never announced.
            for name in orphaned_segments(run_tag):
                unlink_segment(name)
            if probe is not None:
                probe.process_segments(len(segments))
                probe.process_shm_bytes(self.shm_bytes)
        if error is not None:
            raise error
        return elapsed
