"""One shared registry of task-kind display styles (gantt letter + DOT color).

``render_gantt`` and ``TaskGraph.to_dot`` used to keep separate kind tables
and drifted (``trsm-solve`` had a DOT color but rendered ``?`` in the
gantt).  Both now read this registry, so a kind registered once renders
consistently everywhere; unknown kinds fall back to ``?`` / ``gray``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KindStyle", "KIND_STYLES", "kind_letter", "kind_color", "register_kind"]


@dataclass(frozen=True)
class KindStyle:
    """Display style of one task kind: gantt letter + GraphViz color."""

    letter: str
    color: str


#: Kernel kinds emitted by the tiled algorithms and the assembly layer.
KIND_STYLES: dict[str, KindStyle] = {
    "getrf": KindStyle("G", "firebrick"),
    "potrf": KindStyle("P", "indianred"),
    "trsm": KindStyle("T", "goldenrod"),
    "trsm-solve": KindStyle("S", "darkgoldenrod"),
    "gemm": KindStyle("M", "steelblue"),
    "assemble": KindStyle("A", "forestgreen"),
    "trsv": KindStyle("V", "darkorchid"),
    "gemv": KindStyle("v", "slateblue"),
    "compress": KindStyle("C", "darkcyan"),
    "pack": KindStyle("K", "dimgray"),
    # Gaussian-process regression subsystem (repro.gp): cross-covariance
    # panel assembly and the posterior mean/variance reduction.
    "gp-assemble": KindStyle("a", "seagreen"),
    "gp-predict": KindStyle("p", "mediumorchid"),
}

_UNKNOWN = KindStyle("?", "gray")


def kind_letter(kind: str) -> str:
    """One-character gantt label for ``kind`` (``?`` if unregistered)."""
    return KIND_STYLES.get(kind, _UNKNOWN).letter


def kind_color(kind: str) -> str:
    """GraphViz node color for ``kind`` (``gray`` if unregistered)."""
    return KIND_STYLES.get(kind, _UNKNOWN).color


def register_kind(kind: str, letter: str, color: str) -> None:
    """Register (or restyle) a task kind for gantt and DOT rendering."""
    if len(letter) != 1:
        raise ValueError(f"gantt letter must be one character, got {letter!r}")
    KIND_STYLES[kind] = KindStyle(letter, color)
