"""Unpivoted dense LU and triangular-solve kernels.

H-LU factorisations are performed *without pivoting* (pivoting across the
hierarchical structure would destroy it); the BEM-style test matrices are
strongly regular after singularity clamping, which is the standard
justification in the H-matrix literature.  The blocked recursion below keeps
all O(n^3) work inside BLAS-3 calls.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import get_lapack_funcs, solve_triangular

__all__ = [
    "SingularTileError",
    "getrf_nopiv",
    "split_lu",
    "tri_solve",
    "trsm",
    "gemm_update",
    "lu_solve_nopiv",
]

_LAPACK_CACHE: dict = {}


def _lapack(name: str, dtype: np.dtype):
    key = (name, dtype.char)
    func = _LAPACK_CACHE.get(key)
    if func is None:
        (func,) = get_lapack_funcs((name,), dtype=dtype)
        _LAPACK_CACHE[key] = func
    return func


def tri_solve(
    a: np.ndarray,
    b: np.ndarray,
    *,
    lower: bool,
    unit_diagonal: bool = False,
    trans: int = 0,
) -> np.ndarray:
    """Triangular solve ``op(A) X = B`` via LAPACK ``trtrs`` directly.

    A thin bypass of :func:`scipy.linalg.solve_triangular`, whose per-call
    validation overhead dominates on the small panels H-arithmetic produces.
    ``trans``: 0 = no transpose, 1 = transpose, 2 = conjugate transpose.
    """
    dtype = np.promote_types(a.dtype, b.dtype)
    a = a.astype(dtype, copy=False)
    b = np.asarray(b)
    if b.size == 0:
        return b.astype(dtype)
    trtrs = _lapack("trtrs", dtype)
    x, info = trtrs(
        a,
        b.astype(dtype, copy=False),
        lower=lower,
        trans=trans,
        unitdiag=unit_diagonal,
    )
    if info != 0:
        raise np.linalg.LinAlgError(f"trtrs failed with info={info}")
    return x

#: Below this size the scalar right-looking loop is used directly.
_GETRF_BASE = 64

#: Pivots with magnitude below ``_PIVOT_RTOL * max|diag|`` raise.
_PIVOT_RTOL = 1e-12


class SingularTileError(np.linalg.LinAlgError):
    """Raised when an unpivoted LU meets a (numerically) zero pivot."""


def _getrf_base(a: np.ndarray, pivot_floor: float) -> None:
    """Unblocked right-looking unpivoted LU, in place."""
    n = a.shape[0]
    for k in range(n):
        piv = a[k, k]
        if abs(piv) <= pivot_floor:
            raise SingularTileError(
                f"zero pivot at index {k}: |{piv!r}| <= {pivot_floor:.3e} (unpivoted LU)"
            )
        a[k + 1 :, k] /= piv
        if k + 1 < n:
            # Rank-1 update of the trailing submatrix (broadcast, not
            # np.outer: the wrapper overhead shows up at this call volume).
            a[k + 1 :, k + 1 :] -= a[k + 1 :, k, None] * a[k, k + 1 :]


def getrf_nopiv(a: np.ndarray, *, overwrite: bool = True) -> np.ndarray:
    """LU factorisation without pivoting: ``A = L U`` packed into one array.

    On return the strict lower triangle holds ``L`` (unit diagonal implied)
    and the upper triangle (incl. diagonal) holds ``U`` — same packing as
    LAPACK ``getrf`` minus the permutation.

    Parameters
    ----------
    a:
        Square matrix; modified in place when ``overwrite`` is true (and the
        array is writeable and contiguous enough), otherwise copied.

    Raises
    ------
    SingularTileError
        If a pivot is numerically zero relative to the diagonal scale.
    """
    a = np.array(a, copy=not overwrite, order="C", subok=False)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"getrf_nopiv expects a square matrix, got shape {a.shape}")
    n = a.shape[0]
    if n == 0:
        return a
    diag_scale = float(np.abs(np.diagonal(a)).max())
    pivot_floor = _PIVOT_RTOL * max(diag_scale, 1e-300)

    # Fast path: LAPACK getrf *with* pivoting, accepted only when the pivot
    # permutation turns out to be the identity — then its result IS the
    # unpivoted LU (computed by LAPACK's blocked kernels instead of our
    # Python loop).  Strongly regular H-LU diagonal blocks take this path
    # almost always; any row swap falls back to the manual recursion.
    getrf = _lapack("getrf", a.dtype)
    lu, piv, info = getrf(a, overwrite_a=False)
    if (
        info == 0
        and np.array_equal(piv, np.arange(n, dtype=piv.dtype))
        and float(np.abs(np.diagonal(lu)).min()) > pivot_floor
    ):
        a[...] = lu
        return a

    def recurse(block: np.ndarray) -> None:
        m = block.shape[0]
        if m <= _GETRF_BASE:
            _getrf_base(block, pivot_floor)
            return
        half = m // 2
        a11 = block[:half, :half]
        a12 = block[:half, half:]
        a21 = block[half:, :half]
        a22 = block[half:, half:]
        recurse(a11)
        # A12 <- L11^{-1} A12 ; A21 <- A21 U11^{-1}
        a12[:] = tri_solve(a11, a12, lower=True, unit_diagonal=True)
        a21[:] = tri_solve(a11, a21.conj().T, lower=False, trans=2).conj().T
        a22 -= a21 @ a12
        recurse(a22)

    recurse(a)
    return a


def split_lu(lu: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unpack the combined LU array into explicit ``(L, U)`` factors."""
    l = np.tril(lu, -1)
    np.fill_diagonal(l, 1.0)
    u = np.triu(lu)
    return l.astype(lu.dtype, copy=False), u


def trsm(
    side: str,
    uplo: str,
    a: np.ndarray,
    b: np.ndarray,
    *,
    unit_diagonal: bool = False,
    overwrite: bool = False,
) -> np.ndarray:
    """Triangular solve in BLAS TRSM form.

    ``side="left"`` solves ``op(A) X = B``; ``side="right"`` solves
    ``X op(A) = B``; ``uplo`` in {"lower", "upper"} selects the triangle of
    ``a`` that is referenced.  Mirrors the two TRSM calls of Algorithm 1:
    ``trsm("left", "lower", L, B, unit_diagonal=True)`` for the U-panel and
    ``trsm("right", "upper", U, B)`` for the L-panel.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    if uplo not in ("lower", "upper"):
        raise ValueError(f"uplo must be 'lower' or 'upper', got {uplo!r}")
    b_arr = np.asarray(b)
    squeeze = b_arr.ndim == 1
    if squeeze:
        b_arr = b_arr[:, None]
    lower = uplo == "lower"
    if side == "left":
        x = tri_solve(a, b_arr, lower=lower, unit_diagonal=unit_diagonal)
    else:
        # X A = B  <=>  A^H X^H = B^H; conj-transpose keeps complex exactness.
        xt = tri_solve(a, b_arr.conj().T, lower=lower, unit_diagonal=unit_diagonal, trans=2)
        x = xt.conj().T
    x = np.ascontiguousarray(x)
    if squeeze:
        x = x[:, 0]
    if overwrite and isinstance(b, np.ndarray) and b.shape == x.shape:
        b[...] = x
        return b
    return x


def gemm_update(c: np.ndarray, a: np.ndarray, b: np.ndarray, alpha: float = -1.0) -> np.ndarray:
    """Schur-complement update ``C <- C + alpha * A @ B`` in place.

    The default ``alpha = -1`` matches the GEMM of Algorithm 1 line 11.
    """
    prod = a @ b
    if alpha == -1.0:
        c -= prod
    elif alpha == 1.0:
        c += prod
    else:
        c += alpha * prod
    return c


def lu_solve_nopiv(lu: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given the packed unpivoted LU of ``A``."""
    y = tri_solve(lu, np.asarray(b), lower=True, unit_diagonal=True)
    return tri_solve(lu, y, lower=False)
