"""Dense tile kernels (the LAPACK/BLAS layer under the H-arithmetic).

These are the full-rank leaf kernels that HMAT-OSS delegates to MKL in the
paper: an unpivoted blocked LU (``getrf_nopiv``), the four TRSM variants used
by the tiled algorithms, and thin GEMM helpers.  All operate in place on
NumPy arrays and defer the flop-heavy inner work to BLAS via ``@`` and
``scipy.linalg.solve_triangular``.
"""

from .kernels import (
    SingularTileError,
    getrf_nopiv,
    split_lu,
    tri_solve,
    trsm,
    gemm_update,
    lu_solve_nopiv,
)
from .flops import (
    flops_getrf,
    flops_potrf,
    flops_trsm,
    flops_gemm,
    flops_rk_gemm,
    flops_truncation,
)

__all__ = [
    "SingularTileError",
    "getrf_nopiv",
    "split_lu",
    "tri_solve",
    "trsm",
    "gemm_update",
    "lu_solve_nopiv",
    "flops_getrf",
    "flops_potrf",
    "flops_trsm",
    "flops_gemm",
    "flops_rk_gemm",
    "flops_truncation",
]
