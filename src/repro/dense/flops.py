"""Analytic flop counts for dense and low-rank kernels.

Used by the runtime simulator's deterministic cost model
(``cost_model="flops"``) and by the analysis layer to report arithmetic
savings of the H-formats against the dense ``(2/3) n^3`` reference the paper
quotes in the introduction.

Counts follow the usual LAPACK working notes conventions (one flop per real
add/mul); complex arithmetic is accounted with the standard 4x multiplier
applied by :func:`complex_factor`.
"""

from __future__ import annotations

__all__ = [
    "complex_factor",
    "flops_getrf",
    "flops_potrf",
    "flops_trsm",
    "flops_gemm",
    "flops_rk_gemm",
    "flops_truncation",
    "flops_qr",
    "flops_svd",
]


def complex_factor(is_complex: bool) -> float:
    """Multiplier converting real flop formulas to complex arithmetic (~4x)."""
    return 4.0 if is_complex else 1.0


def flops_getrf(n: int, *, is_complex: bool = False) -> float:
    """Unpivoted LU of an n x n block: (2/3) n^3 + O(n^2)."""
    n = float(n)
    return complex_factor(is_complex) * (2.0 / 3.0 * n**3 - 0.5 * n**2 + 5.0 / 6.0 * n)


def flops_potrf(n: int, *, is_complex: bool = False) -> float:
    """Cholesky of an n x n SPD block: (1/3) n^3 + O(n^2)."""
    n = float(n)
    return complex_factor(is_complex) * (n**3 / 3.0 + 0.5 * n**2 + n / 6.0)


def flops_trsm(m: int, n: int, *, is_complex: bool = False) -> float:
    """Triangular solve with an m x m triangle against an m x n RHS: m^2 n."""
    return complex_factor(is_complex) * float(m) * float(m) * float(n)


def flops_gemm(m: int, n: int, k: int, *, is_complex: bool = False) -> float:
    """C (m x n) += A (m x k) @ B (k x n): 2 m n k."""
    return complex_factor(is_complex) * 2.0 * float(m) * float(n) * float(k)


def flops_qr(m: int, n: int, *, is_complex: bool = False) -> float:
    """Householder QR of an m x n (m >= n) matrix: 2 n^2 (m - n/3)."""
    m_, n_ = float(m), float(n)
    return complex_factor(is_complex) * 2.0 * n_ * n_ * (m_ - n_ / 3.0)


def flops_svd(m: int, n: int, *, is_complex: bool = False) -> float:
    """Golub-Kahan SVD of an m x n matrix (economy), ~ 14 m n^2 for m >= n."""
    big, small = (float(m), float(n)) if m >= n else (float(n), float(m))
    return complex_factor(is_complex) * 14.0 * big * small * small


def flops_rk_gemm(m: int, n: int, k: int, ra: int, rb: int, *, is_complex: bool = False) -> float:
    """Low-rank product (U_a V_a^H)(U_b V_b^H) for an (m x k) x (k x n) pair.

    Cost of the inner coupling ``V_a^H U_b`` (k x ra x rb) plus folding the
    smaller factor: the standard Rk-GEMM cost used in H-arithmetic models.
    """
    ra_, rb_ = float(ra), float(rb)
    inner = 2.0 * float(k) * ra_ * rb_
    fold = 2.0 * min(float(m) * ra_ * rb_, float(n) * ra_ * rb_)
    return complex_factor(is_complex) * (inner + fold)


def flops_truncation(m: int, n: int, rank: int, *, is_complex: bool = False) -> float:
    """QR+QR+SVD recompression of an Rk(m, n, rank) block."""
    r = int(rank)
    if r == 0:
        return 0.0
    return (
        flops_qr(m, r, is_complex=is_complex)
        + flops_qr(n, r, is_complex=is_complex)
        + flops_svd(r, r, is_complex=is_complex)
        + flops_gemm(m, r, r, is_complex=is_complex)
        + flops_gemm(n, r, r, is_complex=is_complex)
    )
