"""Dense assembly and matrix-free application of the interaction operator.

Large test matrices must never be formed densely (a 200K x 200K complex matrix
is 640 GB), so alongside plain :func:`assemble_dense` this module provides a
:class:`DenseOperator` facade that evaluates ``A @ x`` in row blocks — O(n^2)
work but O(n * block) memory — which is what the accuracy experiments (Fig. 5)
use to build right-hand sides and reference residuals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kernels import KernelFunction

__all__ = ["assemble_dense", "assemble_block", "streamed_matvec", "DenseOperator"]

#: Default number of rows evaluated per streamed block; keeps the working set
#: around a few MB for 3-D clouds of any size.
_DEFAULT_BLOCK_ROWS = 512


def assemble_dense(kernel: KernelFunction, points: np.ndarray) -> np.ndarray:
    """Form the full dense interaction matrix ``A[i, j] = K(|x_i - x_j|)``.

    Only intended for validation at small ``n``; raises if the result would
    exceed ~4 GiB to protect against accidental large allocations.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    nbytes = n * n * np.dtype(kernel.dtype).itemsize
    if nbytes > 4 << 30:
        raise MemoryError(
            f"dense assembly of n={n} would take {nbytes / (1 << 30):.1f} GiB; "
            "use DenseOperator (streamed) instead"
        )
    return assemble_block(kernel, pts, pts)


def assemble_block(
    kernel: KernelFunction,
    row_points: np.ndarray,
    col_points: np.ndarray,
) -> np.ndarray:
    """Evaluate one rectangular kernel block (rows x cols)."""
    return kernel(row_points, col_points)


def streamed_matvec(
    kernel: KernelFunction,
    points: np.ndarray,
    x: np.ndarray,
    *,
    block_rows: int = _DEFAULT_BLOCK_ROWS,
) -> np.ndarray:
    """Compute ``A @ x`` without forming ``A``; ``x`` may be a vector or panel.

    Rows of ``A`` are generated ``block_rows`` at a time, multiplied into the
    output, and discarded.  The result dtype is the promotion of the kernel
    and ``x`` dtypes.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    x = np.asarray(x)
    if x.shape[0] != n:
        raise ValueError(f"x has leading dimension {x.shape[0]}, expected {n}")
    if block_rows <= 0:
        raise ValueError("block_rows must be positive")
    out_dtype = np.promote_types(kernel.dtype, x.dtype)
    out = np.zeros((n,) + x.shape[1:], dtype=out_dtype)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        block = kernel(pts[start:stop], pts)
        out[start:stop] = block @ x
    return out


@dataclass(frozen=True)
class DenseOperator:
    """Matrix-free view of the interaction matrix over a point cloud.

    Provides the handful of dense-matrix operations the experiments need
    (matvec, row/col slices, Frobenius norm estimate) without ever holding
    more than a block of rows.
    """

    kernel: KernelFunction
    points: np.ndarray
    block_rows: int = _DEFAULT_BLOCK_ROWS

    @property
    def shape(self) -> tuple[int, int]:
        n = self.points.shape[0]
        return (n, n)

    @property
    def dtype(self) -> np.dtype:
        return self.kernel.dtype

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` via streamed row blocks."""
        return streamed_matvec(self.kernel, self.points, x, block_rows=self.block_rows)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``A.conj().T @ y`` via streamed column blocks.

        Exploits that ``A.T`` rows are ``A`` columns of the same radial
        kernel with swapped point sets (the kernel is symmetric in d).
        """
        pts = np.asarray(self.points, dtype=np.float64)
        n = pts.shape[0]
        y = np.asarray(y)
        out_dtype = np.promote_types(self.dtype, y.dtype)
        out = np.zeros((n,) + y.shape[1:], dtype=out_dtype)
        for start in range(0, n, self.block_rows):
            stop = min(start + self.block_rows, n)
            block = self.kernel(pts[start:stop], pts)  # rows [start:stop] of A
            out += block.conj().T @ y[start:stop]
        return out

    def rows(self, index: np.ndarray | slice) -> np.ndarray:
        """Materialise a set of rows of ``A``."""
        pts = np.asarray(self.points, dtype=np.float64)
        return self.kernel(pts[index], pts)

    def cols(self, index: np.ndarray | slice) -> np.ndarray:
        """Materialise a set of columns of ``A``."""
        pts = np.asarray(self.points, dtype=np.float64)
        return self.kernel(pts, pts[index])

    def norm_fro_estimate(self, samples: int = 64, seed: int = 0) -> float:
        """Unbiased Frobenius-norm estimate from random row samples."""
        n = self.shape[0]
        take = min(samples, n)
        rng = np.random.default_rng(seed)
        idx = rng.choice(n, size=take, replace=False)
        rows = self.rows(np.sort(idx))
        row_sq = np.sum(np.abs(rows) ** 2, axis=1)
        return float(np.sqrt(row_sq.mean() * n))
