"""Point-cloud generators for the TEST_FEMBEM-style test cases.

The paper's test case (Section V-A) places ``n`` points *equally spaced in
both directions* on the surface of a cylinder of chosen height and width.  The
resulting geometry drives the cluster-tree construction and the interaction
matrix ``a_ij = K(|x_i - x_j|)``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["cylinder_cloud", "sphere_cloud", "plate_cloud", "mesh_step"]


def cylinder_cloud(
    n: int,
    *,
    radius: float = 1.0,
    height: float | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Generate ``n`` points equally spaced on the surface of a cylinder.

    The points form a regular grid: ``n_theta`` points around the
    circumference and ``n_z`` rings along the height, with the angular and
    vertical spacings matched so the mesh is (approximately) isotropic, as in
    the paper's TEST_FEMBEM generator.

    Parameters
    ----------
    n:
        Requested number of points.  The actual grid holds exactly ``n``
        points: the final ring is partially filled if ``n`` does not factor
        into a full grid.
    radius:
        Cylinder radius ("width" in the paper's phrasing).
    height:
        Cylinder height.  By default it is chosen so that the vertical step
        equals the circumferential step when the grid is full, giving the
        isotropic sampling the paper relies on.
    seed:
        If given, add a tiny deterministic jitter (1e-9 of the mesh step) to
        break exact ties in clustering; useful for property tests.

    Returns
    -------
    ndarray of shape (n, 3)
        Cartesian coordinates, C-contiguous float64.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    circumference = 2.0 * math.pi * radius
    # Choose n_theta x n_z ~ n with step_theta ~ step_z:
    # step = circumference / n_theta = height / n_z and n_theta * n_z = n.
    if height is None:
        # Isotropic default: aspect ratio height/circumference = 2.
        height = 2.0 * circumference
    aspect = height / circumference
    n_theta = max(4, int(round(math.sqrt(n / aspect))))
    n_z = max(1, int(math.ceil(n / n_theta)))

    theta_step = 2.0 * math.pi / n_theta
    z_step = height / n_z

    idx = np.arange(n)
    ring = idx // n_theta
    slot = idx % n_theta
    # Offset alternate rings by half a step so columns do not align exactly,
    # mimicking a structured surface mesh.
    theta = slot * theta_step + 0.5 * theta_step * (ring % 2)
    z = (ring + 0.5) * z_step

    pts = np.empty((n, 3), dtype=np.float64)
    pts[:, 0] = radius * np.cos(theta)
    pts[:, 1] = radius * np.sin(theta)
    pts[:, 2] = z
    if seed is not None:
        rng = np.random.default_rng(seed)
        pts += rng.uniform(-1e-9, 1e-9, size=pts.shape) * min(theta_step * radius, z_step)
    return pts


def sphere_cloud(n: int, *, radius: float = 1.0) -> np.ndarray:
    """Generate ``n`` points quasi-uniformly on a sphere (Fibonacci lattice).

    Used by the extra examples; a sphere produces a different cluster-tree
    shape than the cylinder (no long axis), which exercises the geometric
    bisection differently.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    idx = np.arange(n, dtype=np.float64)
    golden = (1.0 + math.sqrt(5.0)) / 2.0
    theta = 2.0 * math.pi * idx / golden
    z = 1.0 - (2.0 * idx + 1.0) / n
    r_xy = np.sqrt(np.maximum(0.0, 1.0 - z * z))
    pts = np.empty((n, 3), dtype=np.float64)
    pts[:, 0] = radius * r_xy * np.cos(theta)
    pts[:, 1] = radius * r_xy * np.sin(theta)
    pts[:, 2] = radius * z
    return pts


def plate_cloud(n: int, *, width: float = 1.0, height: float = 1.0) -> np.ndarray:
    """Generate ``n`` points on a flat rectangular plate grid (z = 0).

    A degenerate (2-D) geometry: useful to test that clustering and
    admissibility behave when one bounding-box dimension collapses.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    nx = max(1, int(round(math.sqrt(n * width / height))))
    ny = max(1, int(math.ceil(n / nx)))
    idx = np.arange(n)
    ix = idx % nx
    iy = idx // nx
    pts = np.zeros((n, 3), dtype=np.float64)
    pts[:, 0] = (ix + 0.5) * (width / nx)
    pts[:, 1] = (iy + 0.5) * (height / ny)
    return pts


def mesh_step(points: np.ndarray, sample: int = 256) -> float:
    """Estimate the mesh step (typical nearest-neighbour distance).

    The paper removes the kernel singularity at ``d = 0`` by replacing it with
    *half the mesh step*; this helper provides that step without an O(n^2)
    all-pairs scan: it measures nearest-neighbour distances for a deterministic
    subsample of the cloud.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n < 2:
        raise ValueError("mesh_step needs at least two points")
    take = min(sample, n)
    stride = max(1, n // take)
    probes = pts[::stride][:take]
    # Vectorised distance of each probe to the whole cloud (streamed is not
    # needed: probes are few).
    d2 = ((probes[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
    # Exclude self-distances.
    np.place(d2, d2 <= 0.0, np.inf)
    nearest = np.sqrt(d2.min(axis=1))
    return float(np.median(nearest))
