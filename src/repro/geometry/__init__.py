"""TEST_FEMBEM-style geometry and interaction-kernel substrate.

This subpackage reproduces the experimental context of Section V-A of the
paper: a cloud of points equally spaced on the surface of a cylinder, and the
interaction kernels ``K(d) = 1/d`` (real double, "d") and
``K(d) = exp(i k d)/d`` (complex double, "z") with the 10-points-per-wavelength
rule of thumb for the wave number.
"""

from .cylinder import cylinder_cloud, sphere_cloud, plate_cloud, mesh_step
from .kernels import (
    GP_KERNELS,
    KernelFunction,
    laplace_kernel,
    helmholtz_kernel,
    gravity_kernel,
    exponential_kernel,
    squared_exponential_kernel,
    matern_kernel,
    make_kernel,
    rule_of_thumb_wavenumber,
)
from .assembly import DenseOperator, assemble_dense, streamed_matvec, assemble_block

__all__ = [
    "cylinder_cloud",
    "sphere_cloud",
    "plate_cloud",
    "mesh_step",
    "KernelFunction",
    "laplace_kernel",
    "helmholtz_kernel",
    "gravity_kernel",
    "exponential_kernel",
    "squared_exponential_kernel",
    "matern_kernel",
    "GP_KERNELS",
    "make_kernel",
    "rule_of_thumb_wavenumber",
    "DenseOperator",
    "assemble_dense",
    "streamed_matvec",
    "assemble_block",
]
