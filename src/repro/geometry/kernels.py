"""Interaction kernels for the BEM-like test matrices.

The matrix entry is ``a_ij = K(|x_i - x_j|)`` where, following Section V-A of
the paper:

* real case ("d"): ``K(d) = 1/d``,
* complex case ("z"): ``K(d) = exp(i k d)/d`` where the wave number ``k`` is
  picked with the 10-points-per-wavelength rule of thumb,
* the singularity at ``d = 0`` is removed by clamping ``d`` to half the mesh
  step.

Kernels are exposed as :class:`KernelFunction` objects that evaluate whole
blocks at once (vectorised over both point sets), because both the dense
assembly and the ACA compressor need cheap row/column slices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .cylinder import mesh_step

__all__ = [
    "KernelFunction",
    "laplace_kernel",
    "helmholtz_kernel",
    "gravity_kernel",
    "exponential_kernel",
    "squared_exponential_kernel",
    "matern_kernel",
    "GP_KERNELS",
    "make_kernel",
    "rule_of_thumb_wavenumber",
]


def _pairwise_distances(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between two point sets, shape (len(x), len(y)).

    Uses the expanded form with a clip at zero to stay allocation-lean and
    avoid catastrophic cancellation turning into NaNs under sqrt.

    Squared distances within relative rounding noise of zero are snapped to
    exactly 0.0: the expanded form leaves the self-distance of a point at a
    tiny positive value (einsum vs matmul rounding), and the GP covariance
    kernels key their nugget on ``d == 0``, so the diagonal of ``k(x, x)``
    must report exact zeros for ``diag()`` to match it bit for bit.
    """
    x = np.ascontiguousarray(x, dtype=np.float64)
    y = np.ascontiguousarray(y, dtype=np.float64)
    x2 = np.einsum("ij,ij->i", x, x)
    y2 = np.einsum("ij,ij->i", y, y)
    sums = x2[:, None] + y2[None, :]
    d2 = sums - 2.0 * (x @ y.T)
    d2[d2 <= 1e-12 * sums] = 0.0
    np.clip(d2, 0.0, None, out=d2)
    return np.sqrt(d2, out=d2)


@dataclass(frozen=True)
class KernelFunction:
    """A radial interaction kernel with singularity clamping.

    Attributes
    ----------
    name:
        Human-readable identifier ("laplace", "helmholtz", ...).
    dtype:
        Result dtype (float64 or complex128).
    radial:
        Vectorised map from clamped distances to kernel values.
    d_min:
        Distances below this are clamped to it (half the mesh step in the
        paper).  Must be positive for singular kernels; smooth kernels
        (covariances) use ``d_min = 0`` so the diagonal is the exact ``K(0)``
        — clamping it would destroy positive definiteness.
    """

    name: str
    dtype: np.dtype
    radial: Callable[[np.ndarray], np.ndarray]
    d_min: float
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.d_min < 0.0:
            raise ValueError(f"d_min must be non-negative, got {self.d_min}")

    @property
    def is_complex(self) -> bool:
        return np.issubdtype(self.dtype, np.complexfloating)

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Evaluate the kernel block for point sets ``x`` (rows), ``y`` (cols)."""
        d = _pairwise_distances(np.atleast_2d(x), np.atleast_2d(y))
        np.clip(d, self.d_min, None, out=d)
        out = self.radial(d)
        return np.ascontiguousarray(out, dtype=self.dtype)

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Diagonal entries K(0) (clamped), one per point in ``x``."""
        n = np.atleast_2d(x).shape[0]
        d = np.full(n, self.d_min, dtype=np.float64)
        return np.ascontiguousarray(self.radial(d), dtype=self.dtype)


# Radial maps are module-level frozen dataclasses (not nested closures) so
# KernelFunction objects pickle — the process executor ships kernels to
# spawned workers for tile assembly.
@dataclass(frozen=True)
class _ScaledInverse:
    scale: float

    def __call__(self, d: np.ndarray) -> np.ndarray:
        return self.scale / d


@dataclass(frozen=True)
class _OscillatoryInverse:
    wavenumber: float

    def __call__(self, d: np.ndarray) -> np.ndarray:
        return np.exp(1j * self.wavenumber * d) / d


@dataclass(frozen=True)
class _PlummerSoftened:
    softening: float

    def __call__(self, d: np.ndarray) -> np.ndarray:
        eps = self.softening
        return 1.0 / np.sqrt(d * d + eps * eps)


@dataclass(frozen=True)
class _ExponentialDecay:
    length: float

    def __call__(self, d: np.ndarray) -> np.ndarray:
        return np.exp(-d / self.length)


@dataclass(frozen=True)
class _SquaredExponential:
    """GP squared-exponential covariance ``s2 exp(-d^2/2l^2)`` + nugget at 0.

    The nugget (observation-noise variance + jitter) is added only where
    ``d == 0`` — exactly the diagonal once ``_pairwise_distances`` snaps
    self-distances to zero — so ``K = K_f + s_n^2 I`` and the prior variance
    is exactly ``s2 + nugget``.
    """

    length: float
    signal2: float
    nugget: float

    def __call__(self, d: np.ndarray) -> np.ndarray:
        u = d / self.length
        out = self.signal2 * np.exp(-0.5 * u * u)
        if self.nugget:
            out = np.where(d == 0.0, out + self.nugget, out)
        return out


@dataclass(frozen=True)
class _Matern:
    """Matérn covariance for half-integer smoothness nu in {0.5, 1.5, 2.5}."""

    length: float
    signal2: float
    nugget: float
    nu: float

    def __call__(self, d: np.ndarray) -> np.ndarray:
        u = d / self.length
        if self.nu == 0.5:
            out = self.signal2 * np.exp(-u)
        elif self.nu == 1.5:
            s = math.sqrt(3.0) * u
            out = self.signal2 * (1.0 + s) * np.exp(-s)
        else:  # nu == 2.5
            s = math.sqrt(5.0) * u
            out = self.signal2 * (1.0 + s + s * s / 3.0) * np.exp(-s)
        if self.nugget:
            out = np.where(d == 0.0, out + self.nugget, out)
        return out


def rule_of_thumb_wavenumber(points: np.ndarray, points_per_wavelength: float = 10.0) -> float:
    """Wave number chosen with the paper's "rule of thumb".

    Ten points per wavelength is the rule "commonly used in the wave
    propagation community" (Section V-A): the wavelength is ten mesh steps,
    hence ``k = 2 pi / (10 h)``.
    """
    if points_per_wavelength <= 0:
        raise ValueError("points_per_wavelength must be positive")
    h = mesh_step(points)
    return 2.0 * math.pi / (points_per_wavelength * h)


def laplace_kernel(points: np.ndarray, *, scale: float = 1.0) -> KernelFunction:
    """Real test kernel ``K(d) = scale/d`` with half-mesh-step clamping.

    This is the paper's real-double ("d") case: block ranks are essentially
    independent of block size, so most of the storage sits near the diagonal.
    """
    h = mesh_step(points)

    return KernelFunction(
        name="laplace",
        dtype=np.dtype(np.float64),
        radial=_ScaledInverse(scale),
        d_min=0.5 * h,
        params={"scale": scale, "mesh_step": h},
    )


def helmholtz_kernel(
    points: np.ndarray,
    *,
    wavenumber: float | None = None,
    points_per_wavelength: float = 10.0,
) -> KernelFunction:
    """Complex test kernel ``K(d) = exp(i k d)/d`` (paper's "z" case).

    The oscillatory factor makes block ranks *grow* with block size, which is
    why the complex case carries far more storage and work than the real one
    and distributes it more evenly across the matrix.
    """
    h = mesh_step(points)
    if wavenumber is None:
        wavenumber = 2.0 * math.pi / (points_per_wavelength * h)
    if wavenumber < 0:
        raise ValueError("wavenumber must be non-negative")
    k = float(wavenumber)

    return KernelFunction(
        name="helmholtz",
        dtype=np.dtype(np.complex128),
        radial=_OscillatoryInverse(k),
        d_min=0.5 * h,
        params={"wavenumber": k, "mesh_step": h},
    )


def gravity_kernel(points: np.ndarray, *, softening: float | None = None) -> KernelFunction:
    """Plummer-softened gravitational kernel ``K(d) = 1/sqrt(d^2 + eps^2)``.

    Smooth everywhere; compresses even better than 1/d.  Used by the N-body
    style example.
    """
    h = mesh_step(points)
    eps = 0.5 * h if softening is None else float(softening)
    if eps <= 0:
        raise ValueError("softening must be positive")

    # Plummer softening removes the singularity, so no distance clamp.
    return KernelFunction(
        name="gravity",
        dtype=np.dtype(np.float64),
        radial=_PlummerSoftened(eps),
        d_min=0.0,
        params={"softening": eps, "mesh_step": h},
    )


def exponential_kernel(points: np.ndarray, *, length: float = 1.0) -> KernelFunction:
    """Exponential covariance kernel ``K(d) = exp(-d/length)``.

    A classic kriging/Gaussian-process covariance; symmetric positive
    definite, so also useful to test Cholesky-friendly paths.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    h = mesh_step(points)

    # Smooth covariance: no clamp, so the diagonal is exactly K(0) = 1 and
    # the matrix stays symmetric positive definite.
    return KernelFunction(
        name="exponential",
        dtype=np.dtype(np.float64),
        radial=_ExponentialDecay(length),
        d_min=0.0,
        params={"length": length, "mesh_step": h},
    )


def _check_gp_params(length: float, signal: float, nugget: float) -> None:
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if signal <= 0:
        raise ValueError(f"signal must be positive, got {signal}")
    if nugget < 0:
        raise ValueError(f"nugget must be non-negative, got {nugget}")


def squared_exponential_kernel(
    points: np.ndarray, *, length: float = 0.25, signal: float = 1.0,
    nugget: float = 1e-6,
) -> KernelFunction:
    """GP squared-exponential covariance ``s^2 exp(-d^2/2l^2) + nugget [d=0]``.

    The standard Gaussian-process regression covariance: ``signal`` is the
    prior standard deviation, ``nugget`` the observation-noise variance (plus
    jitter) added on the diagonal only.  Smooth and SPD, so the H-compressed
    covariance factorises with the tiled Cholesky; ``diag`` returns exactly
    ``signal^2 + nugget``.
    """
    _check_gp_params(length, signal, nugget)
    return KernelFunction(
        name="sqexp",
        dtype=np.dtype(np.float64),
        radial=_SquaredExponential(float(length), float(signal) ** 2, float(nugget)),
        d_min=0.0,
        params={"length": float(length), "signal": float(signal), "nugget": float(nugget)},
    )


def matern_kernel(
    points: np.ndarray, *, nu: float = 1.5, length: float = 0.25,
    signal: float = 1.0, nugget: float = 1e-6,
) -> KernelFunction:
    """Matérn GP covariance for half-integer ``nu`` in {0.5, 1.5, 2.5}.

    ``nu = 0.5`` is the exponential (Ornstein–Uhlenbeck) covariance,
    ``1.5``/``2.5`` the once/twice mean-square-differentiable members used
    throughout the GP literature.  Nugget semantics match
    :func:`squared_exponential_kernel`.
    """
    _check_gp_params(length, signal, nugget)
    if nu not in (0.5, 1.5, 2.5):
        raise ValueError(f"nu must be one of 0.5, 1.5, 2.5, got {nu}")
    return KernelFunction(
        name=f"matern{int(nu * 2)}2",
        dtype=np.dtype(np.float64),
        radial=_Matern(float(length), float(signal) ** 2, float(nugget), float(nu)),
        d_min=0.0,
        params={"nu": float(nu), "length": float(length),
                "signal": float(signal), "nugget": float(nugget)},
    )


def _matern_factory(nu: float):
    def factory(points: np.ndarray, **params) -> KernelFunction:
        params.setdefault("nu", nu)
        if params["nu"] != nu:
            raise ValueError(f"nu is fixed to {nu} for this kernel name")
        return matern_kernel(points, **params)

    return factory


_FACTORIES = {
    "laplace": laplace_kernel,
    "helmholtz": helmholtz_kernel,
    "gravity": gravity_kernel,
    "exponential": exponential_kernel,
    "sqexp": squared_exponential_kernel,
    "matern12": _matern_factory(0.5),
    "matern32": _matern_factory(1.5),
    "matern52": _matern_factory(2.5),
}

#: Kernel names usable as Gaussian-process covariances (SPD with an exact
#: ``signal^2 + nugget`` prior variance on the diagonal).
GP_KERNELS = ("sqexp", "matern12", "matern32", "matern52")


def make_kernel(name: str, points: np.ndarray, **params) -> KernelFunction:
    """Create a kernel by name ("laplace", "helmholtz", ..., "sqexp", "matern32").

    The paper's two arithmetic cases map to ``make_kernel("laplace", pts)``
    (real double, "d") and ``make_kernel("helmholtz", pts)`` (complex double,
    "z"); the GP covariances (:data:`GP_KERNELS`) take ``length``/``signal``/
    ``nugget`` hyperparameters.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown kernel {name!r}; available: {sorted(_FACTORIES)}") from None
    return factory(points, **params)
