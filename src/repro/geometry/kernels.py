"""Interaction kernels for the BEM-like test matrices.

The matrix entry is ``a_ij = K(|x_i - x_j|)`` where, following Section V-A of
the paper:

* real case ("d"): ``K(d) = 1/d``,
* complex case ("z"): ``K(d) = exp(i k d)/d`` where the wave number ``k`` is
  picked with the 10-points-per-wavelength rule of thumb,
* the singularity at ``d = 0`` is removed by clamping ``d`` to half the mesh
  step.

Kernels are exposed as :class:`KernelFunction` objects that evaluate whole
blocks at once (vectorised over both point sets), because both the dense
assembly and the ACA compressor need cheap row/column slices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .cylinder import mesh_step

__all__ = [
    "KernelFunction",
    "laplace_kernel",
    "helmholtz_kernel",
    "gravity_kernel",
    "exponential_kernel",
    "make_kernel",
    "rule_of_thumb_wavenumber",
]


def _pairwise_distances(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between two point sets, shape (len(x), len(y)).

    Uses the expanded form with a clip at zero to stay allocation-lean and
    avoid catastrophic cancellation turning into NaNs under sqrt.
    """
    x = np.ascontiguousarray(x, dtype=np.float64)
    y = np.ascontiguousarray(y, dtype=np.float64)
    x2 = np.einsum("ij,ij->i", x, x)
    y2 = np.einsum("ij,ij->i", y, y)
    d2 = x2[:, None] + y2[None, :] - 2.0 * (x @ y.T)
    np.clip(d2, 0.0, None, out=d2)
    return np.sqrt(d2, out=d2)


@dataclass(frozen=True)
class KernelFunction:
    """A radial interaction kernel with singularity clamping.

    Attributes
    ----------
    name:
        Human-readable identifier ("laplace", "helmholtz", ...).
    dtype:
        Result dtype (float64 or complex128).
    radial:
        Vectorised map from clamped distances to kernel values.
    d_min:
        Distances below this are clamped to it (half the mesh step in the
        paper).  Must be positive for singular kernels; smooth kernels
        (covariances) use ``d_min = 0`` so the diagonal is the exact ``K(0)``
        — clamping it would destroy positive definiteness.
    """

    name: str
    dtype: np.dtype
    radial: Callable[[np.ndarray], np.ndarray]
    d_min: float
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.d_min < 0.0:
            raise ValueError(f"d_min must be non-negative, got {self.d_min}")

    @property
    def is_complex(self) -> bool:
        return np.issubdtype(self.dtype, np.complexfloating)

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Evaluate the kernel block for point sets ``x`` (rows), ``y`` (cols)."""
        d = _pairwise_distances(np.atleast_2d(x), np.atleast_2d(y))
        np.clip(d, self.d_min, None, out=d)
        out = self.radial(d)
        return np.ascontiguousarray(out, dtype=self.dtype)

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Diagonal entries K(0) (clamped), one per point in ``x``."""
        n = np.atleast_2d(x).shape[0]
        d = np.full(n, self.d_min, dtype=np.float64)
        return np.ascontiguousarray(self.radial(d), dtype=self.dtype)


# Radial maps are module-level frozen dataclasses (not nested closures) so
# KernelFunction objects pickle — the process executor ships kernels to
# spawned workers for tile assembly.
@dataclass(frozen=True)
class _ScaledInverse:
    scale: float

    def __call__(self, d: np.ndarray) -> np.ndarray:
        return self.scale / d


@dataclass(frozen=True)
class _OscillatoryInverse:
    wavenumber: float

    def __call__(self, d: np.ndarray) -> np.ndarray:
        return np.exp(1j * self.wavenumber * d) / d


@dataclass(frozen=True)
class _PlummerSoftened:
    softening: float

    def __call__(self, d: np.ndarray) -> np.ndarray:
        eps = self.softening
        return 1.0 / np.sqrt(d * d + eps * eps)


@dataclass(frozen=True)
class _ExponentialDecay:
    length: float

    def __call__(self, d: np.ndarray) -> np.ndarray:
        return np.exp(-d / self.length)


def rule_of_thumb_wavenumber(points: np.ndarray, points_per_wavelength: float = 10.0) -> float:
    """Wave number chosen with the paper's "rule of thumb".

    Ten points per wavelength is the rule "commonly used in the wave
    propagation community" (Section V-A): the wavelength is ten mesh steps,
    hence ``k = 2 pi / (10 h)``.
    """
    if points_per_wavelength <= 0:
        raise ValueError("points_per_wavelength must be positive")
    h = mesh_step(points)
    return 2.0 * math.pi / (points_per_wavelength * h)


def laplace_kernel(points: np.ndarray, *, scale: float = 1.0) -> KernelFunction:
    """Real test kernel ``K(d) = scale/d`` with half-mesh-step clamping.

    This is the paper's real-double ("d") case: block ranks are essentially
    independent of block size, so most of the storage sits near the diagonal.
    """
    h = mesh_step(points)

    return KernelFunction(
        name="laplace",
        dtype=np.dtype(np.float64),
        radial=_ScaledInverse(scale),
        d_min=0.5 * h,
        params={"scale": scale, "mesh_step": h},
    )


def helmholtz_kernel(
    points: np.ndarray,
    *,
    wavenumber: float | None = None,
    points_per_wavelength: float = 10.0,
) -> KernelFunction:
    """Complex test kernel ``K(d) = exp(i k d)/d`` (paper's "z" case).

    The oscillatory factor makes block ranks *grow* with block size, which is
    why the complex case carries far more storage and work than the real one
    and distributes it more evenly across the matrix.
    """
    h = mesh_step(points)
    if wavenumber is None:
        wavenumber = 2.0 * math.pi / (points_per_wavelength * h)
    if wavenumber < 0:
        raise ValueError("wavenumber must be non-negative")
    k = float(wavenumber)

    return KernelFunction(
        name="helmholtz",
        dtype=np.dtype(np.complex128),
        radial=_OscillatoryInverse(k),
        d_min=0.5 * h,
        params={"wavenumber": k, "mesh_step": h},
    )


def gravity_kernel(points: np.ndarray, *, softening: float | None = None) -> KernelFunction:
    """Plummer-softened gravitational kernel ``K(d) = 1/sqrt(d^2 + eps^2)``.

    Smooth everywhere; compresses even better than 1/d.  Used by the N-body
    style example.
    """
    h = mesh_step(points)
    eps = 0.5 * h if softening is None else float(softening)
    if eps <= 0:
        raise ValueError("softening must be positive")

    # Plummer softening removes the singularity, so no distance clamp.
    return KernelFunction(
        name="gravity",
        dtype=np.dtype(np.float64),
        radial=_PlummerSoftened(eps),
        d_min=0.0,
        params={"softening": eps, "mesh_step": h},
    )


def exponential_kernel(points: np.ndarray, *, length: float = 1.0) -> KernelFunction:
    """Exponential covariance kernel ``K(d) = exp(-d/length)``.

    A classic kriging/Gaussian-process covariance; symmetric positive
    definite, so also useful to test Cholesky-friendly paths.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    h = mesh_step(points)

    # Smooth covariance: no clamp, so the diagonal is exactly K(0) = 1 and
    # the matrix stays symmetric positive definite.
    return KernelFunction(
        name="exponential",
        dtype=np.dtype(np.float64),
        radial=_ExponentialDecay(length),
        d_min=0.0,
        params={"length": length, "mesh_step": h},
    )


_FACTORIES = {
    "laplace": laplace_kernel,
    "helmholtz": helmholtz_kernel,
    "gravity": gravity_kernel,
    "exponential": exponential_kernel,
}


def make_kernel(name: str, points: np.ndarray, **params) -> KernelFunction:
    """Create a kernel by name ("laplace", "helmholtz", "gravity", "exponential").

    The paper's two arithmetic cases map to ``make_kernel("laplace", pts)``
    (real double, "d") and ``make_kernel("helmholtz", pts)`` (complex double,
    "z").
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown kernel {name!r}; available: {sorted(_FACTORIES)}") from None
    return factory(points, **params)
