"""Krylov solvers preconditioned by approximate H-factorisations.

Besides direct solution, the other standard use of a low-accuracy H-LU /
H-Cholesky (e.g. eps = 1e-2) is as a *preconditioner*: assembly and
factorisation get much cheaper while a few Krylov iterations against the
exact operator restore full accuracy.  This module provides matrix-free
right-preconditioned restarted GMRES and preconditioned CG, both taking
``matvec`` (the exact operator, e.g. the streamed
:class:`~repro.geometry.assembly.DenseOperator`) and ``precond`` (typically
``TileHMatrix.solve`` after a loose factorisation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.instrument import current as _current_probe

__all__ = ["KrylovResult", "gmres", "pcg"]


@dataclass
class KrylovResult:
    """Outcome of a Krylov solve.

    ``residuals`` is the full per-iteration relative-residual history (entry
    0 is the initial residual), so preconditioner quality can be plotted,
    not just read off the final entry.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residuals: list

    def __iter__(self):  # allow ``x, res = gmres(...)`` style unpacking
        yield self.x
        yield self.residuals


def _record(method: str, result: KrylovResult) -> KrylovResult:
    """Report a finished solve to the ambient Instrumentation probe (if any):
    ``krylov.iters`` / ``krylov.converged`` counters land in run reports."""
    probe = _current_probe()
    if probe is not None:
        probe.krylov_solve(
            method,
            result.iterations,
            result.converged,
            float(result.residuals[-1]) if result.residuals else 0.0,
        )
    return result


def gmres(
    matvec,
    b: np.ndarray,
    *,
    precond=None,
    x0: np.ndarray | None = None,
    rtol: float = 1e-10,
    restart: int = 30,
    max_iter: int = 200,
) -> KrylovResult:
    """Right-preconditioned restarted GMRES(m).

    Solves ``A x = b`` with ``A`` given as ``matvec`` and the (approximate)
    inverse action ``precond`` (identity if None).  Works for real and
    complex operators.  Iteration counts the total inner steps.
    """
    if restart < 1:
        raise ValueError(f"restart must be >= 1, got {restart}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    b = np.asarray(b)
    n = b.shape[0]
    ident = precond is None
    m_apply = (lambda v: v) if ident else precond

    probe = matvec(np.zeros_like(b))
    dtype = np.promote_types(b.dtype, probe.dtype)
    x = np.zeros(n, dtype=dtype) if x0 is None else np.array(x0, dtype=dtype, copy=True)
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return _record("gmres", KrylovResult(np.zeros(n, dtype=dtype), True, 0, [0.0]))

    residuals: list[float] = []
    total_iters = 0
    while total_iters < max_iter:
        r = b - matvec(x)
        beta = float(np.linalg.norm(r))
        residuals.append(beta / norm_b)
        if beta / norm_b <= rtol:
            return _record("gmres", KrylovResult(x, True, total_iters, residuals))

        m = min(restart, max_iter - total_iters)
        v = np.zeros((m + 1, n), dtype=dtype)
        h = np.zeros((m + 1, m), dtype=dtype)
        v[0] = r / beta
        g = np.zeros(m + 1, dtype=dtype)
        g[0] = beta
        cs = np.zeros(m, dtype=dtype)
        sn = np.zeros(m, dtype=dtype)
        k_used = 0
        for k in range(m):
            z = m_apply(v[k])
            w = matvec(z)
            # Modified Gram-Schmidt.
            for i in range(k + 1):
                h[i, k] = np.vdot(v[i], w)
                w = w - h[i, k] * v[i]
            h[k + 1, k] = np.linalg.norm(w)
            if abs(h[k + 1, k]) > 1e-300:
                v[k + 1] = w / h[k + 1, k]
            # Apply previous Givens rotations to the new column.
            for i in range(k):
                t = cs[i] * h[i, k] + sn[i] * h[i + 1, k]
                h[i + 1, k] = -np.conj(sn[i]) * h[i, k] + cs[i] * h[i + 1, k]
                h[i, k] = t
            # New rotation to annihilate h[k+1, k].
            denom = np.sqrt(abs(h[k, k]) ** 2 + abs(h[k + 1, k]) ** 2)
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k] = abs(h[k, k]) / denom
                phase = h[k, k] / abs(h[k, k]) if abs(h[k, k]) > 0 else 1.0
                sn[k] = phase * np.conj(h[k + 1, k]) / denom
            h[k, k] = cs[k] * h[k, k] + sn[k] * h[k + 1, k]
            h[k + 1, k] = 0.0
            g[k + 1] = -np.conj(sn[k]) * g[k]
            g[k] = cs[k] * g[k]
            total_iters += 1
            k_used = k + 1
            residuals.append(float(abs(g[k + 1])) / norm_b)
            if residuals[-1] <= rtol:
                break
        # Solve the small triangular system and update x.
        y = np.linalg.solve(h[:k_used, :k_used], g[:k_used])
        update = (v[:k_used].T @ y)
        x = x + m_apply(update)
        if residuals[-1] <= rtol:
            # Recompute the true residual to guard against drift.
            true_res = float(np.linalg.norm(b - matvec(x))) / norm_b
            residuals[-1] = true_res
            if true_res <= 10 * rtol:
                return _record("gmres", KrylovResult(x, True, total_iters, residuals))
    return _record("gmres", KrylovResult(x, False, total_iters, residuals))


def pcg(
    matvec,
    b: np.ndarray,
    *,
    precond=None,
    x0: np.ndarray | None = None,
    rtol: float = 1e-10,
    max_iter: int = 500,
) -> KrylovResult:
    """Preconditioned conjugate gradients for SPD operators.

    ``precond`` must be (an approximation of) the SPD inverse action, e.g. a
    loose H-Cholesky solve.
    """
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    ident = precond is None
    m_apply = (lambda v: v) if ident else precond
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return _record("pcg", KrylovResult(np.zeros(n), True, 0, [0.0]))

    r = b - matvec(x)
    z = m_apply(r)
    p = z.copy()
    rz = float(r @ z)
    residuals = [float(np.linalg.norm(r)) / norm_b]
    for it in range(1, max_iter + 1):
        if residuals[-1] <= rtol:
            return _record("pcg", KrylovResult(x, True, it - 1, residuals))
        ap = matvec(p)
        denom = float(p @ ap)
        if denom <= 0.0:
            raise np.linalg.LinAlgError(
                "non-positive curvature: operator (or preconditioner) is not SPD"
            )
        alpha = rz / denom
        x = x + alpha * p
        r = r - alpha * ap
        residuals.append(float(np.linalg.norm(r)) / norm_b)
        z = m_apply(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return _record("pcg", KrylovResult(x, residuals[-1] <= rtol, max_iter, residuals))
