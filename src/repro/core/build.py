"""Tile-H matrix assembly (Section IV-D's construction path).

Each of the ``nt x nt`` tiles is assembled independently with the HMAT-OSS
kernels: admissible sub-blocks by ACA, dense leaves by direct kernel
evaluation.  Tiles whose cluster pair is small enough to be a single dense
leaf are stored in "full" format so the dense fast path of the kernel layer
is exercised, mirroring the format switch of the paper's ``CHAM_tile_t``.

Two execution paths:

* serial (default, ``engine=None``) — the historical double loop, assembling
  tile (i, j) in row-major order;
* task-based (``engine=`` an :class:`~repro.runtime.stf.StfEngine`) — one
  ``assemble`` task per tile is submitted through the engine, each declaring
  a W access on its tile's data handle.  Under a deferred engine and the
  threaded executor the ``nt^2`` tiles assemble in parallel (ACA/NumPy
  kernels release the GIL), and because factorisation tasks submitted to the
  *same* engine depend only on the tile handles they touch, assembly fuses
  with the LU: early panels factorise while late tiles are still assembling
  (the build-and-factorise overlap of task-based H-matrix runtimes).
"""

from __future__ import annotations

import numpy as np

from ..hmatrix import AssemblyConfig, assemble_hmatrix
from ..obs.instrument import current as _current_probe
from ..runtime import AccessMode, StfEngine, TaskSpec
from .clustering import TileHClustering, build_tile_h_clustering
from .descriptor import Tile, TileDesc, TileHDesc

__all__ = ["build_tile_h", "assemble_priority"]


def _op_assemble(payloads, i, j, *, context):
    """Process-executor op: assemble tile (i, j) from the shipped context.

    ``context`` is the executor-level assembly context (kernel, points,
    clustering, assembly config) shipped once per worker — the per-task
    message carries only the tile indices.
    """
    tile = payloads[0]
    h = assemble_hmatrix(
        context["kernel"], context["points"],
        context["clustering"].block_tree(i, j), context["assembly"],
    )
    tile.fill(h)
    probe = _current_probe()
    if probe is not None:  # pragma: no cover - workers run unprobed
        probe.h_bytes_delta(tile.storage_bytes())


def assemble_priority(nt: int, i: int, j: int) -> int:
    """Priority of tile (i, j)'s assemble task, on the LU priority scale.

    The first factorisation step that touches tile (i, j) is panel
    ``k = min(i, j)``; its assembly slots between that panel's TRSMs
    (base + 12) and its GETRF (base + 15) so the tiles of early panels
    materialise before any later-panel work becomes runnable.
    """
    return (nt - min(i, j)) * 10 + 14


def build_tile_h(
    kernel,
    points: np.ndarray,
    nb: int,
    *,
    eps: float = 1e-4,
    leaf_size: int = 64,
    admissibility=None,
    method: str = "aca",
    clustering: TileHClustering | None = None,
    engine: StfEngine | None = None,
) -> TileHDesc:
    """Assemble the Tile-H matrix of the kernel over ``points``.

    Parameters
    ----------
    kernel:
        A :class:`~repro.geometry.kernels.KernelFunction`.
    nb:
        Tile size (the paper's NB; its Figs. 4-7 sweep this).
    eps:
        Compression accuracy (1e-4 in the paper's experiments).
    method:
        Admissible-block compression: "aca" (default) or "svd".
    clustering:
        Reuse a precomputed clustering (e.g. to assemble several kernels on
        the same geometry).
    engine:
        Submit one ``assemble`` task per tile through this STF engine
        instead of the serial loop.  With an *eager* engine the tiles are
        assembled (in submission order — numerically identical to the
        serial path) by the time this returns; with a *deferred* engine the
        returned descriptor holds :meth:`~repro.core.descriptor.Tile.pending`
        placeholder tiles whose payloads materialise when the graph runs
        under a :class:`~repro.runtime.ThreadedExecutor`.

    Returns
    -------
    TileHDesc
        Fully assembled descriptor ready for :func:`tiled_getrf_tasks`
        (with a deferred engine: ready once the engine's graph has run).
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    cl = clustering or build_tile_h_clustering(
        pts, nb, leaf_size=leaf_size, admissibility=admissibility
    )
    nt = cl.nt
    cfg = AssemblyConfig(eps=eps, method=method)
    tiles: list[Tile] = []
    if engine is None:
        for i in range(nt):
            for j in range(nt):
                bt = cl.block_tree(i, j)
                h = assemble_hmatrix(kernel, pts, bt, cfg)
                tile = Tile.of(h)
                probe = _current_probe()
                if probe is not None:
                    probe.h_bytes_delta(tile.storage_bytes())
                tiles.append(tile)
    else:
        dtype = np.dtype(getattr(kernel, "dtype", np.float64))
        sizes = [c.stop - c.start for c in cl.tiles]
        tiles = [
            Tile.pending(sizes[i], sizes[j], dtype)
            for i in range(nt)
            for j in range(nt)
        ]
        def _assemble_tile(tile: Tile, bt) -> None:
            tile.fill(assemble_hmatrix(kernel, pts, bt, cfg))
            probe = _current_probe()
            if probe is not None:
                probe.h_bytes_delta(tile.storage_bytes())

        for i in range(nt):
            for j in range(nt):
                tile = tiles[i * nt + j]
                bt = cl.block_tree(i, j)
                engine.insert_task(
                    "assemble",
                    (lambda tile=tile, bt=bt: _assemble_tile(tile, bt)),
                    [(engine.handle(tile, f"A[{i},{j}]"), AccessMode.W)],
                    priority=assemble_priority(nt, i, j),
                    label=f"assemble({i},{j})",
                    spec=TaskSpec(
                        "repro.core.build:_op_assemble",
                        args=(i, j),
                        needs_context=True,
                    ),
                )
    desc = TileDesc(n=pts.shape[0], nb=nb, nt=nt, tiles=tiles)
    return TileHDesc(
        super=desc,
        root=cl.root,
        clusters=cl.tiles,
        admissibility=cl.admissibility,
        perm=cl.perm,
        eps=eps,
    )
