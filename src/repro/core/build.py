"""Tile-H matrix assembly (Section IV-D's construction path).

Each of the ``nt x nt`` tiles is assembled independently with the HMAT-OSS
kernels: admissible sub-blocks by ACA, dense leaves by direct kernel
evaluation.  Tiles whose cluster pair is small enough to be a single dense
leaf are stored in "full" format so the dense fast path of the kernel layer
is exercised, mirroring the format switch of the paper's ``CHAM_tile_t``.
"""

from __future__ import annotations

import numpy as np

from ..hmatrix import AssemblyConfig, assemble_hmatrix
from .clustering import TileHClustering, build_tile_h_clustering
from .descriptor import Tile, TileDesc, TileHDesc

__all__ = ["build_tile_h"]


def build_tile_h(
    kernel,
    points: np.ndarray,
    nb: int,
    *,
    eps: float = 1e-4,
    leaf_size: int = 64,
    admissibility=None,
    method: str = "aca",
    clustering: TileHClustering | None = None,
) -> TileHDesc:
    """Assemble the Tile-H matrix of the kernel over ``points``.

    Parameters
    ----------
    kernel:
        A :class:`~repro.geometry.kernels.KernelFunction`.
    nb:
        Tile size (the paper's NB; its Figs. 4-7 sweep this).
    eps:
        Compression accuracy (1e-4 in the paper's experiments).
    method:
        Admissible-block compression: "aca" (default) or "svd".
    clustering:
        Reuse a precomputed clustering (e.g. to assemble several kernels on
        the same geometry).

    Returns
    -------
    TileHDesc
        Fully assembled descriptor ready for :func:`tiled_getrf_tasks`.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    cl = clustering or build_tile_h_clustering(
        pts, nb, leaf_size=leaf_size, admissibility=admissibility
    )
    nt = cl.nt
    cfg = AssemblyConfig(eps=eps, method=method)
    tiles: list[Tile] = []
    for i in range(nt):
        for j in range(nt):
            bt = cl.block_tree(i, j)
            h = assemble_hmatrix(kernel, pts, bt, cfg)
            tiles.append(Tile.of(h))
    desc = TileDesc(n=pts.shape[0], nb=nb, nt=nt, tiles=tiles)
    return TileHDesc(
        super=desc,
        root=cl.root,
        clusters=cl.tiles,
        admissibility=cl.admissibility,
        perm=cl.perm,
        eps=eps,
    )
