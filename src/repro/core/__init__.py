"""H-Chameleon core: the paper's contribution (Section IV).

Couples the CHAMELEON-style tile descriptors and tiled algorithms with
HMAT-OSS-style H-matrix tiles and the StarPU-style runtime:

* :mod:`.descriptor` — ``Tile`` / ``TileDesc`` / ``TileHDesc``, the Python
  analogues of the paper's Structures 1-3;
* :mod:`.clustering` — the Tile-H clustering driver (``NTilesRecursive`` +
  per-tile refinement + per-tile block cluster trees);
* :mod:`.build` — Tile-H matrix assembly;
* :mod:`.algorithms` — the tiled LU (Algorithm 1) and tile-level solves as
  STF task submissions;
* :mod:`.solver` — the public solver API (:class:`TileHMatrix`).
"""

from .descriptor import Tile, TileDesc, TileHDesc
from .clustering import TileHClustering, build_tile_h_clustering
from .build import build_tile_h, assemble_priority
from .algorithms import (
    tiled_getrf_tasks,
    tiled_potrf_tasks,
    tiled_solve,
    tiled_solve_tasks,
    tiled_chol_solve,
    tiled_chol_solve_tasks,
    submit_chol_solve_tasks,
    lu_priorities,
    apply_bottom_level_priorities,
)
from .solver import TileHConfig, TileHMatrix, FactorizationInfo, iterative_refinement
from .krylov import KrylovResult, gmres, pcg

__all__ = [
    "Tile",
    "TileDesc",
    "TileHDesc",
    "TileHClustering",
    "build_tile_h_clustering",
    "build_tile_h",
    "tiled_getrf_tasks",
    "tiled_potrf_tasks",
    "tiled_solve",
    "tiled_solve_tasks",
    "tiled_chol_solve",
    "tiled_chol_solve_tasks",
    "submit_chol_solve_tasks",
    "lu_priorities",
    "apply_bottom_level_priorities",
    "assemble_priority",
    "TileHConfig",
    "TileHMatrix",
    "FactorizationInfo",
    "iterative_refinement",
    "KrylovResult",
    "gmres",
    "pcg",
]
