"""Public solver API: :class:`TileHMatrix` (the H-Chameleon front door).

Typical use::

    from repro.core import TileHMatrix, TileHConfig
    from repro.geometry import cylinder_cloud, make_kernel

    pts = cylinder_cloud(20_000)
    kern = make_kernel("laplace", pts)
    a = TileHMatrix.build(kern, pts, TileHConfig(nb=1000, eps=1e-4))
    info = a.factorize()                      # real numerics + task DAG
    x = a.solve(b)                            # b, x in original ordering
    sim = info.simulate(nworkers=35, scheduler="prio")   # Fig. 6/7 numbers
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..runtime import (
    SCHEDULER_NAMES,
    ExecutionTrace,
    NestedPolicy,
    ProcessExecutor,
    RaceChecker,
    RuntimeOverheadModel,
    SimulationResult,
    StfEngine,
    TaskGraph,
    ThreadedExecutor,
    simulate,
)
from .algorithms import (
    apply_bottom_level_priorities,
    tiled_chol_solve,
    tiled_getrf_tasks,
    tiled_potrf_tasks,
    tiled_solve,
)
from .build import build_tile_h
from .descriptor import TileHDesc

__all__ = ["TileHConfig", "FactorizationInfo", "TileHMatrix", "iterative_refinement"]


def iterative_refinement(
    solve,
    matvec,
    b: np.ndarray,
    *,
    max_iter: int = 10,
    rtol: float = 1e-12,
) -> tuple[np.ndarray, list[float]]:
    """Classical iterative refinement with an approximate factorisation.

    An eps-accurate H-LU makes an excellent stationary preconditioner: each
    sweep ``x += solve(b - A x)`` multiplies the error by roughly eps, so a
    couple of iterations push a 1e-4 factorisation to near machine
    precision.  ``matvec`` must apply the *exact* operator (e.g. the
    streamed :class:`~repro.geometry.assembly.DenseOperator`).

    Returns ``(x, residual_history)`` where the history holds the relative
    residual after each sweep (including the initial solve).
    """
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    b = np.asarray(b)
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return np.zeros_like(b), [0.0]
    x = solve(b)
    history: list[float] = []
    for _ in range(max_iter):
        r = b - matvec(x)
        rel = float(np.linalg.norm(r)) / norm_b
        history.append(rel)
        if rel <= rtol:
            break
        x = x + solve(r)
    return x, history


@dataclass(frozen=True)
class TileHConfig:
    """Construction parameters of a Tile-H matrix.

    Attributes
    ----------
    nb:
        Tile size NB.  The paper picks NB per (N, precision); see Figs. 6-7
        captions (e.g. NB=250 for d/10K up to NB=4000 for z/200K).
    eps:
        Compression/arithmetic accuracy (1e-4 in the paper).
    leaf_size:
        Dense-leaf size inside each tile's H-structure.
    eta:
        Strong-admissibility parameter.
    method:
        Admissible-block compression ("aca" or "svd").
    accumulate:
        Use accumulator-based rounded arithmetic during factorisation:
        trailing-matrix updates are buffered per tile and rounded once per
        panel step instead of once per update (same eps accuracy class,
        fewer recompressions).  ``False`` reproduces the eager
        one-rounding-per-update arithmetic exactly.
    racecheck:
        Run the factorisation (and the LU solve) under the runtime
        access-mode race detector
        (:class:`~repro.runtime.RaceChecker`): every task's actual memory
        effects are verified against its declared R/W/RW modes, handles
        are screened for aliasing, and a violation raises
        :class:`~repro.runtime.RaceCheckError`.  Off by default (the
        detector is zero-cost when disabled).  The detector brackets each
        *eagerly executed* kernel, so it is eager-only: combining it with
        ``exec_mode="threaded"`` raises (post-hoc
        :func:`~repro.runtime.validate_trace` still covers threaded runs).
    exec_mode:
        "eager" (default) — kernels run sequentially at submission, exactly
        the historical bit-identical path; "threaded" — assembly,
        factorisation and the LU solve are submitted to a deferred engine
        and executed by a :class:`~repro.runtime.ThreadedExecutor` on
        ``nworkers`` real threads under ``scheduler``; "process" — the same
        deferred graphs run on ``nworkers`` worker *processes* via a
        :class:`~repro.runtime.ProcessExecutor` with tile payloads in
        shared memory — the GIL-free path that scales wall clock on
        multicore hosts.  The accumulator is engaged only on the eager path
        (its buffer is not thread-safe), so threaded/process runs use plain
        one-rounding-per-update arithmetic — which also makes process
        results bit-identical to ``accumulate=False`` eager runs.
    nworkers:
        Worker thread/process count for ``exec_mode="threaded"/"process"``.
    scheduler:
        Scheduling policy driving the threaded executor ("ws", "lws",
        "prio", "eager", "dm" — Section V-C's StarPU policies).
    priority_mode:
        "static" (default) keeps the CHAMELEON LU heuristic of
        :func:`~repro.core.algorithms.lu_priorities`; "bottom-level"
        recomputes every task priority from the DAG's critical path
        (:func:`~repro.core.algorithms.apply_bottom_level_priorities`).
    nested:
        Expand tile kernels on H-structured tiles into fine-grain subtask
        DAGs over their block trees (nested task parallelism, after
        1906.00874/1911.07531): the schedulers see *through* the tiles, so
        a large tile's panel no longer serialises behind one opaque task.
        Results are bit-identical to the opaque ``accumulate=False`` path
        (the expansion regroups, never reorders, the eager recursion); the
        accumulator is therefore never engaged alongside nesting.  With
        ``exec_mode="process"`` subtask accesses are declared at tile
        granularity (the shared-memory data plane ships whole tiles) and
        the fused build+factorize runs as two stages — assembly first,
        then the nested factorisation graph, which needs assembled block
        trees to expand over.
    nested_min_leaf:
        Granularity cutoff of the expansion: recursion stops (submitting
        one opaque subtask) once the written operand's smaller dimension
        is at most this, bounding the expanded graph's size.
    """

    nb: int = 256
    eps: float = 1e-4
    leaf_size: int = 64
    eta: float = 2.0
    method: str = "aca"
    accumulate: bool = True
    racecheck: bool = False
    exec_mode: str = "eager"
    nworkers: int = 1
    scheduler: str = "lws"
    priority_mode: str = "static"
    nested: bool = False
    nested_min_leaf: int = 128

    def __post_init__(self) -> None:
        if self.nb < 1:
            raise ValueError(f"nb must be positive, got {self.nb}")
        if self.eps < 0:
            raise ValueError(f"eps must be non-negative, got {self.eps}")
        if self.leaf_size < 1:
            raise ValueError(f"leaf_size must be positive, got {self.leaf_size}")
        if self.exec_mode not in ("eager", "threaded", "process"):
            raise ValueError(
                "exec_mode must be 'eager', 'threaded' or 'process', "
                f"got {self.exec_mode!r}"
            )
        if self.nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {self.nworkers}")
        if self.scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; available: {SCHEDULER_NAMES}"
            )
        if self.priority_mode not in ("static", "bottom-level"):
            raise ValueError(
                "priority_mode must be 'static' or 'bottom-level', "
                f"got {self.priority_mode!r}"
            )
        if self.racecheck and self.exec_mode != "eager":
            raise ValueError(
                "racecheck is eager-only: the detector fingerprints payloads "
                "around each eagerly executed kernel; use validate_trace on "
                f"the {self.exec_mode} trace instead"
            )
        if self.nested_min_leaf < 1:
            raise ValueError(
                f"nested_min_leaf must be >= 1, got {self.nested_min_leaf}"
            )


def _nested_policy(cfg: TileHConfig) -> NestedPolicy | None:
    """The engine-side nested policy for ``cfg`` (``None`` when disabled)."""
    if not cfg.nested:
        return None
    return NestedPolicy(
        min_leaf=cfg.nested_min_leaf, coarse=cfg.exec_mode == "process"
    )


@dataclass
class FactorizationInfo:
    """Outcome of a factorisation: the task DAG plus convenience queries.

    ``racecheck`` holds the :class:`~repro.runtime.RaceChecker` that
    observed the factorisation when the detector was enabled (``None``
    otherwise); query it for ``violations`` / ``summary()``.

    After a threaded run, ``trace`` holds the real per-worker execution
    timeline (validate it with :func:`~repro.runtime.validate_trace`) and
    ``wall_seconds`` the measured end-to-end wall time of the threaded
    graph execution; both are ``None`` on the eager path.

    After a nested-expansion run (``TileHConfig(nested=True)``), ``nested``
    holds the :meth:`~repro.runtime.NestedStats.report` dict — expansion
    counts and the critical-path length before (contracted graph) and
    after expansion under the flop cost model; ``None`` otherwise.
    """

    graph: TaskGraph
    nb: int
    nt: int
    racecheck: RaceChecker | None = field(default=None, repr=False)
    trace: ExecutionTrace | None = field(default=None, repr=False)
    wall_seconds: float | None = None
    nested: dict | None = None

    @property
    def n_tasks(self) -> int:
        return len(self.graph)

    @property
    def n_dependencies(self) -> int:
        return self.graph.n_edges()

    def sequential_seconds(self) -> float:
        """Measured single-core kernel time (sum of task costs)."""
        return self.graph.total_work("seconds")

    def simulate(
        self,
        nworkers: int,
        scheduler: str = "prio",
        *,
        overheads: RuntimeOverheadModel | None = None,
        cost_attr: str = "seconds",
        cost_scale: float = 1.0,
    ) -> SimulationResult:
        """Virtual multicore execution of this factorisation's DAG."""
        return simulate(
            self.graph,
            nworkers,
            scheduler,
            overheads=overheads,
            cost_attr=cost_attr,
            cost_scale=cost_scale,
        )


class TileHMatrix:
    """A kernel matrix in Tile-H format with LU factorisation and solve."""

    def __init__(self, desc: TileHDesc, config: TileHConfig) -> None:
        self.desc = desc
        self.config = config
        self._factorized = False
        self._method = "lu"

    # -- construction ------------------------------------------------------
    @staticmethod
    def _build_desc(
        kernel, points, cfg: TileHConfig, engine: StfEngine | None, clustering=None
    ) -> TileHDesc:
        from ..hmatrix import StrongAdmissibility

        return build_tile_h(
            kernel,
            points,
            cfg.nb,
            eps=cfg.eps,
            leaf_size=cfg.leaf_size,
            admissibility=StrongAdmissibility(eta=cfg.eta),
            method=cfg.method,
            clustering=clustering,
            engine=engine,
        )

    @staticmethod
    def _assembly_context(kernel, points, cfg: TileHConfig):
        """Picklable assembly state shipped once per worker process.

        Returns ``(clustering, context)``: the clustering is reused by the
        parent's :meth:`_build_desc` so both sides agree on tile geometry.
        """
        from ..hmatrix import AssemblyConfig, StrongAdmissibility
        from .clustering import build_tile_h_clustering

        pts = np.ascontiguousarray(points, dtype=np.float64)
        clustering = build_tile_h_clustering(
            pts, cfg.nb, leaf_size=cfg.leaf_size,
            admissibility=StrongAdmissibility(eta=cfg.eta),
        )
        context = {
            "kernel": kernel,
            "points": pts,
            "clustering": clustering,
            "assembly": AssemblyConfig(eps=cfg.eps, method=cfg.method),
        }
        return clustering, context

    def _executor(self, context=None) -> ThreadedExecutor | ProcessExecutor:
        cfg = self.config
        if cfg.exec_mode == "process":
            return ProcessExecutor(
                cfg.nworkers, scheduler=cfg.scheduler, context=context
            )
        return ThreadedExecutor(cfg.nworkers, scheduler=cfg.scheduler)

    @classmethod
    def build(cls, kernel, points: np.ndarray, config: TileHConfig | None = None) -> "TileHMatrix":
        """Assemble the Tile-H matrix of ``kernel`` over ``points``.

        With ``exec_mode="threaded"`` the ``nt^2`` tiles are assembled as
        parallel ``assemble`` tasks on the configured worker threads (the
        returned matrix is fully assembled either way).  To overlap assembly
        with factorisation, use :meth:`build_factorize` instead.
        """
        cfg = config or TileHConfig()
        if cfg.exec_mode in ("threaded", "process"):
            clustering = context = None
            if cfg.exec_mode == "process":
                clustering, context = cls._assembly_context(kernel, points, cfg)
            engine = StfEngine(mode="deferred")
            desc = cls._build_desc(kernel, points, cfg, engine, clustering)
            mat = cls(desc, cfg)
            mat._executor(context).run(engine.wait_all())
            if cfg.exec_mode == "process":
                desc.relink_clusters()
            return mat
        desc = cls._build_desc(kernel, points, cfg, None)
        return cls(desc, cfg)

    @classmethod
    def build_factorize(
        cls,
        kernel,
        points: np.ndarray,
        config: TileHConfig | None = None,
        *,
        method: str = "lu",
    ) -> tuple["TileHMatrix", FactorizationInfo]:
        """Fused task-based assembly + factorisation (build/facto overlap).

        With ``exec_mode="threaded"`` both phases are submitted to one
        deferred STF engine: every ``assemble`` task writes its tile's
        handle, and the GETRF/TRSM/GEMM tasks depend only on the tile
        handles they touch, so early panels factorise while late tiles are
        still assembling — one :class:`~repro.runtime.ThreadedExecutor` run
        covers the fused graph.  The returned info's ``graph``/``trace``
        span assembly *and* factorisation; ``wall_seconds`` is the fused
        wall time.

        With ``exec_mode="eager"`` this is exactly ``build()`` followed by
        ``factorize()`` (bit-identical to the two-step path).

        With ``nested=True`` the deferred path runs as *two* stages —
        assembly graph first, then the nested factorisation graph on a
        fresh executor — because the expansion pass walks each tile's
        block tree, which only exists once the tile is assembled.  The
        returned info covers the factorisation stage (its ``graph``/
        ``trace`` are the expanded factorisation; ``wall_seconds`` sums
        both stages); the build/facto overlap of the fused opaque path is
        traded for the fine-grain parallelism of the expanded graph.
        """
        cfg = config or TileHConfig()
        if cfg.exec_mode not in ("threaded", "process"):
            mat = cls.build(kernel, points, cfg)
            return mat, mat.factorize(method=method)
        if method not in ("lu", "cholesky"):
            raise ValueError(f"method must be 'lu' or 'cholesky', got {method!r}")
        tasks_fn = tiled_getrf_tasks if method == "lu" else tiled_potrf_tasks
        clustering = context = None
        if cfg.exec_mode == "process":
            clustering, context = cls._assembly_context(kernel, points, cfg)
        if cfg.nested:
            # Stage A: assembly graph (tiles must exist before expansion).
            engine_a = StfEngine(mode="deferred")
            desc = cls._build_desc(kernel, points, cfg, engine_a, clustering)
            mat = cls(desc, cfg)
            wall_a = mat._executor(context).run(engine_a.wait_all())
            if cfg.exec_mode == "process":
                desc.relink_clusters()
            # Stage B: nested factorisation graph on a fresh executor.
            engine_f = StfEngine(mode="deferred", nested=_nested_policy(cfg))
            graph = tasks_fn(desc, engine_f, accumulate=cfg.accumulate)
            if cfg.priority_mode == "bottom-level":
                apply_bottom_level_priorities(graph, "flops")
            executor = mat._executor(context)
            wall_f = executor.run(graph)
            if cfg.exec_mode == "process":
                desc.relink_clusters()
            mat._factorized = True
            mat._method = method
            info = FactorizationInfo(
                graph=graph,
                nb=desc.nb,
                nt=desc.nt,
                trace=executor.trace,
                wall_seconds=wall_a + wall_f,
                nested=engine_f.nested_stats.report(graph),
            )
            return mat, info
        engine = StfEngine(mode="deferred")
        desc = cls._build_desc(kernel, points, cfg, engine, clustering)
        mat = cls(desc, cfg)
        graph = tasks_fn(desc, engine, accumulate=cfg.accumulate)
        if cfg.priority_mode == "bottom-level":
            apply_bottom_level_priorities(graph, "flops")
        executor = mat._executor(context)
        wall = executor.run(graph)
        if cfg.exec_mode == "process":
            desc.relink_clusters()
        mat._factorized = True
        mat._method = method
        info = FactorizationInfo(
            graph=graph,
            nb=desc.nb,
            nt=desc.nt,
            trace=executor.trace,
            wall_seconds=wall,
        )
        return mat, info

    # -- queries ---------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.desc.n, self.desc.n)

    @property
    def nt(self) -> int:
        return self.desc.nt

    @property
    def factorized(self) -> bool:
        return self._factorized

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` in original ordering (pre-factorisation only)."""
        if self._factorized:
            raise RuntimeError("matrix content was overwritten by factorize()")
        return self.desc.matvec(x)

    def compression_ratio(self) -> float:
        return self.desc.compression_ratio()

    def storage_bytes(self) -> int:
        return self.desc.storage() * np.dtype(self.desc.super.dtype).itemsize

    def to_dense(self) -> np.ndarray:
        """Dense matrix in *original* ordering (small problems / tests)."""
        dense_cluster = self.desc.to_dense()
        perm = self.desc.perm
        inv = np.empty_like(perm)
        inv[perm] = np.arange(len(perm))
        return dense_cluster[np.ix_(inv, inv)]

    # -- factorisation / solve ----------------------------------------------------
    def factorize(
        self, *, method: str = "lu", engine: StfEngine | None = None
    ) -> FactorizationInfo:
        """Tiled factorisation in place; returns the task DAG for simulation.

        ``method="lu"`` (default) runs the unpivoted tiled H-LU of
        Algorithm 1; ``method="cholesky"`` runs the tiled H-Cholesky for
        symmetric positive definite kernels (e.g. covariance matrices) —
        about half the flops and only the lower tiles touched.

        After this call the descriptor holds the packed factors and
        :meth:`solve` becomes available (``matvec`` stops being meaningful).
        """
        if self._factorized:
            raise RuntimeError("factorize() called twice on the same matrix")
        cfg = self.config
        accumulate = cfg.accumulate
        threaded = cfg.exec_mode in ("threaded", "process")
        if engine is None:
            if threaded:
                engine = StfEngine(mode="deferred", nested=_nested_policy(cfg))
            elif cfg.racecheck or cfg.nested:
                engine = StfEngine(
                    mode="eager",
                    racecheck=cfg.racecheck,
                    nested=_nested_policy(cfg),
                )
        if method == "lu":
            graph = tiled_getrf_tasks(self.desc, engine, accumulate=accumulate)
        elif method == "cholesky":
            graph = tiled_potrf_tasks(self.desc, engine, accumulate=accumulate)
        else:
            raise ValueError(f"method must be 'lu' or 'cholesky', got {method!r}")
        if cfg.priority_mode == "bottom-level":
            apply_bottom_level_priorities(graph, "flops")
        trace = None
        wall = None
        if threaded and engine is not None and engine.mode == "deferred":
            executor = self._executor()
            wall = executor.run(graph)
            trace = executor.trace
            if cfg.exec_mode == "process":
                self.desc.relink_clusters()
        self._factorized = True
        self._method = method
        return FactorizationInfo(
            graph=graph,
            nb=self.desc.nb,
            nt=self.desc.nt,
            racecheck=engine.racecheck if engine is not None else None,
            trace=trace,
            wall_seconds=wall,
            nested=(
                engine.nested_stats.report(graph)
                if engine is not None and engine.nested_stats is not None
                else None
            ),
        )

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` (vector or panel) in original ordering.

        With ``racecheck`` enabled in the config, the solve runs through the
        task-parallel substitution path so the detector also covers the
        solve-phase TRSV/GEMV tasks.  With ``exec_mode="threaded"``/
        ``"process"`` the substitution likewise runs as tasks (the LU and
        Cholesky paths alike), executed by the configured scheduler — the
        end of the end-to-end task-parallel solve.  Every path is
        bit-identical to the sequential substitution.
        """
        if not self._factorized:
            raise RuntimeError("call factorize() before solve()")
        from .algorithms import tiled_chol_solve_tasks, tiled_solve_tasks

        tasks_fn = (
            tiled_chol_solve_tasks if self._method == "cholesky" else tiled_solve_tasks
        )
        if self.config.exec_mode in ("threaded", "process"):
            x, _ = tasks_fn(
                self.desc,
                b,
                StfEngine(mode="deferred"),
                executor=self._executor(),
            )
            return x
        if self.config.racecheck:
            x, _ = tasks_fn(self.desc, b, racecheck=True)
            return x
        if self._method == "cholesky":
            return tiled_chol_solve(self.desc, b)
        return tiled_solve(self.desc, b)

    def gesv(self, b: np.ndarray) -> np.ndarray:
        """Factorise (if needed) and solve — the one-shot driver."""
        if not self._factorized:
            self.factorize()
        return self.solve(b)

    # -- persistence ----------------------------------------------------------
    def save(self, path, *, compress: bool = True):
        """Persist the matrix — assembled or factorised — to an ``.npz`` file.

        Assembly and factorisation are the expensive steps; a saved matrix
        reloads in seconds with :meth:`load`.  For a factorised matrix the
        tile payloads *are* the factor content (factorisation overwrites in
        place), so the archive records the factorisation state (``method``,
        solver config, packed-triangle cache flags) and :meth:`load` restores
        a matrix that is immediately solvable — bit-identically to the
        in-memory one — with no new factorisation.

        ``compress=False`` writes an uncompressed archive whose payloads can
        be memory-mapped on load (``load(path, mmap=True)``).
        """
        from ..hmatrix.io import save_tile_h

        return save_tile_h(
            self.desc,
            path,
            factorized=self._factorized,
            method=self._method if self._factorized else None,
            config=self.config,
            compress=compress,
        )

    @classmethod
    def load(
        cls, path, config: TileHConfig | None = None, *, mmap: bool = False
    ) -> "TileHMatrix":
        """Reload a matrix saved with :meth:`save`.

        Restores the factorisation state: a matrix saved after
        :meth:`factorize` loads ready to :meth:`solve`.  When ``config`` is
        not given, the saved solver config is restored (v1 archives fall back
        to the descriptor's ``nb``/``eps``).

        ``mmap=True`` memory-maps payloads of uncompressed archives instead
        of copying them into RAM (zero-copy warm starts; compressed members
        fall back to a normal read).
        """
        from dataclasses import fields

        from ..hmatrix.io import load_tile_h, load_tile_h_meta

        meta = load_tile_h_meta(path)
        desc = load_tile_h(path, mmap=mmap)
        if config is None:
            allowed = {f.name for f in fields(TileHConfig)}
            kwargs = {k: v for k, v in meta["config"].items() if k in allowed}
            kwargs.setdefault("nb", desc.nb)
            kwargs.setdefault("eps", desc.eps)
            config = TileHConfig(**kwargs)
        solver = cls(desc, config)
        if meta["factorized"]:
            solver._factorized = True
            solver._method = meta["method"]
        return solver

    def solve_refined(
        self, b: np.ndarray, matvec, *, max_iter: int = 10, rtol: float = 1e-12
    ) -> tuple[np.ndarray, list[float]]:
        """Solve with iterative refinement against the exact operator.

        ``matvec`` applies the uncompressed matrix (e.g.
        ``DenseOperator(kernel, points).matvec``); see
        :func:`iterative_refinement`.
        """
        if not self._factorized:
            raise RuntimeError("call factorize() before solve_refined()")
        return iterative_refinement(self.solve, matvec, b, max_iter=max_iter, rtol=rtol)
