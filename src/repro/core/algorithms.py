"""Tiled algorithms over Tile-H descriptors (the paper's Algorithm 1).

``tiled_getrf_tasks`` walks the right-looking LU loop nest and submits one
task per tile kernel to an :class:`~repro.runtime.stf.StfEngine` with the
same access modes CHAMELEON declares (GETRF: RW on the diagonal tile; TRSM:
R on the factor tile, RW on the panel tile; GEMM: R, R, RW).  The engine
executes the H-arithmetic eagerly (sound numerics) and returns the task DAG
with measured per-task costs for the simulator.

Priorities follow CHAMELEON's LU heuristic: panel operations of earlier
iterations dominate, and GETRF > TRSM > GEMM within an iteration — the
ordering the ``prio``/``lws`` schedulers exploit in Figs. 6-7.
"""

from __future__ import annotations

import numpy as np

from ..dense import flops_gemm, flops_getrf, flops_potrf, flops_trsm
from ..hmatrix import UpdateAccumulator, hgemm, hgemm_transb, hgetrf, hpotrf, htrsm
from ..hmatrix.arithmetic import (
    _htrsm_right_lower_transpose,
    panel_matvec,
    panel_rmatvec,
    solve_lower_panel,
    solve_lower_transpose_panel,
    solve_upper_panel,
)
from ..runtime import AccessMode, StfEngine, TaskGraph, TaskSpec
from .descriptor import TileHDesc
from .nested import (
    gemm_expander,
    gemm_transb_expander,
    getrf_expander,
    potrf_expander,
    trsm_left_lower_expander,
    trsm_right_lower_transpose_expander,
    trsm_right_upper_expander,
)

__all__ = [
    "lu_priorities",
    "apply_bottom_level_priorities",
    "tiled_getrf_tasks",
    "tiled_potrf_tasks",
    "tiled_solve",
    "tiled_solve_tasks",
    "tiled_chol_solve",
    "tiled_chol_solve_tasks",
    "submit_chol_solve_tasks",
]

R, RW = AccessMode.R, AccessMode.RW


# -- process-executor ops ------------------------------------------------------
# Declarative worker-side kernels (module level so spawn children import
# them): each receives the task's access-list payloads in declared order and
# mutates the written payloads in place.  The update accumulator is never
# engaged here — process runs are accumulate=False by construction, which is
# also what makes them bit-identical to eager runs: successive updates of one
# tile are RW on the same handle, so STF serializes them in submission order.
def _op_getrf(payloads, eps):
    hgetrf(payloads[0].mat, eps, None)


def _op_trsm_left_lower(payloads, eps):
    htrsm("left", "lower", payloads[0].mat, payloads[1].mat, eps,
          unit_diagonal=True, acc=None)


def _op_trsm_right_upper(payloads, eps):
    htrsm("right", "upper", payloads[0].mat, payloads[1].mat, eps, acc=None)


def _op_gemm(payloads, eps):
    hgemm(payloads[2].mat, payloads[0].mat, payloads[1].mat, eps,
          alpha=-1.0, acc=None)


def _op_potrf(payloads, eps):
    hpotrf(payloads[0].mat, eps, None)


def _op_trsm_right_lower_t(payloads, eps):
    _htrsm_right_lower_transpose(payloads[0].mat, payloads[1].mat, eps, None)


def _op_gemm_transb(payloads, eps):
    hgemm_transb(payloads[2].mat, payloads[0].mat, payloads[1].mat, eps,
                 alpha=-1.0, acc=None)


def _op_solve_gemv(payloads):
    payloads[2][...] -= panel_matvec(payloads[0].mat, payloads[1])


def _op_solve_gemv_t(payloads):
    payloads[2][...] -= panel_rmatvec(payloads[0].mat, payloads[1])


def _op_chol_trsv_lower(payloads):
    payloads[1][...] = solve_lower_panel(
        payloads[0].mat, payloads[1], unit_diagonal=False, column_stable=True
    )


def _op_chol_trsv_lower_t(payloads):
    payloads[1][...] = solve_lower_transpose_panel(
        payloads[0].mat, payloads[1], unit_diagonal=False, column_stable=True
    )


def _op_trsv_lower(payloads):
    payloads[1][...] = solve_lower_panel(
        payloads[0].mat, payloads[1], unit_diagonal=True, column_stable=True
    )


def _op_trsv_upper(payloads):
    payloads[1][...] = solve_upper_panel(
        payloads[0].mat, payloads[1], column_stable=True
    )


def _spec(op: str, *args, **kwargs) -> TaskSpec:
    return TaskSpec(f"repro.core.algorithms:{op}", args=args, kwargs=kwargs)


def _as_panel(b: np.ndarray, n: int) -> tuple[np.ndarray, bool]:
    """Validate a right-hand side and view it as a 2-D panel.

    Accepts a vector (returned squeezed) or a 2-D multi-RHS panel; anything
    else — higher-rank arrays, wrong leading dimension — raises a clear
    ``ValueError`` instead of failing deep inside the substitution loops.
    """
    b = np.asarray(b)
    if b.ndim not in (1, 2):
        raise ValueError(f"b must be a vector or a 2-D RHS panel, got ndim={b.ndim}")
    squeeze = b.ndim == 1
    x = b[:, None] if squeeze else b
    if x.shape[0] != n:
        raise ValueError(f"rhs leading dim {x.shape[0]} != {n}")
    return x, squeeze


def apply_bottom_level_priorities(
    graph: TaskGraph, cost_attr: str = "flops", *, prev: dict | None = None
) -> dict:
    """Overwrite every task's priority with its critical-path rank.

    The priority becomes the dense rank of the task's *bottom level*
    (:meth:`~repro.runtime.dag.TaskGraph.bottom_levels` — longest path to a
    sink by ``cost_attr``), so priority-aware schedulers (``prio``, ``lws``)
    run the critical path first.  ``cost_attr="flops"`` (default) is the
    right choice for deferred graphs, whose measured ``seconds`` do not
    exist before execution; the modelled flops are available at submission
    time for every factorisation kernel.

    Returns the bottom-level map; pass it back as ``prev`` after more tasks
    are submitted (e.g. a nested expansion spliced a subgraph in) to
    recompute only the affected region — the priorities of *every* task are
    still re-ranked from the merged map, which is what fixes stale
    priorities on tasks submitted before the splice.

    This is the dynamic alternative to the static CHAMELEON heuristic of
    :func:`lu_priorities`; select it with
    ``TileHConfig(priority_mode="bottom-level")``.
    """
    levels = graph.bottom_levels(cost_attr, prev=prev)
    rank = {v: r for r, v in enumerate(sorted(set(levels.values())))}
    for t in graph.tasks:
        t.priority = rank[levels[t.id]]
    return levels


def lu_priorities(nt: int, k: int, kind: str, i: int = 0, j: int = 0) -> int:
    """CHAMELEON-style LU priority: earlier panels first, GETRF highest.

    The absolute values are irrelevant; only the ordering matters to the
    priority-aware schedulers.
    """
    base = (nt - k) * 10
    if kind == "getrf":
        # +15 lifts getrf(k) above every iteration-(k-1) GEMM (+0/+1 on a
        # base 10 units higher), keeping the critical path ahead of trailing
        # updates.
        return base + 15
    if kind == "trsm":
        return base + 12
    if kind == "gemm":
        # Updates feeding the next panel (i == k+1 or j == k+1) are urgent.
        return base + (1 if (i == k + 1 or j == k + 1) else 0)
    raise ValueError(f"unknown kernel kind {kind!r}")


def tiled_getrf_tasks(
    desc: TileHDesc,
    engine: StfEngine | None = None,
    *,
    eps: float | None = None,
    accumulate: bool = True,
    racecheck: bool = False,
) -> TaskGraph:
    """Factorise ``desc`` in place via the tiled right-looking LU.

    Returns the task graph; with the default eager engine the tiles are
    already factorised when this returns (L and U packed tile-wise: strictly
    lower tiles hold L, the diagonal packs both, upper tiles hold U).

    With ``accumulate=True`` (default) the ``nt - k`` trailing-matrix GEMM
    updates each tile receives are buffered in an
    :class:`~repro.hmatrix.UpdateAccumulator` and rounded once, at the panel
    step that next reads the tile (its GETRF or TRSM).  The flush happens
    inside a task that already declares RW on that tile and that depends on
    every deferred writer, so the declared R/W/RW access modes still cover
    all actual accesses and the inferred DAG stays sound.  The accumulator
    is only engaged on the eager (sequential) engine — simulation-only
    engines never execute kernels, and the buffer is not thread-safe.

    ``racecheck=True`` (ignored when ``engine`` is supplied — configure the
    engine instead) verifies every task's actual memory effects against its
    declared access modes via :class:`~repro.runtime.RaceChecker`.

    On an engine with a nested policy every tile kernel is submitted with
    its :mod:`~repro.core.nested` expander, so kernels on H-structured
    tiles above the granularity cutoff become sub-block subtask DAGs.
    Nested expansion forces ``accumulate=False``-class arithmetic (each
    subtask rounds its own update, like the threaded/process paths), so the
    accumulator is never engaged alongside it.
    """
    eng = engine or StfEngine(mode="eager", racecheck=racecheck)
    eps_ = desc.eps if eps is None else eps
    nt = desc.nt
    grid = desc.super
    is_c = np.issubdtype(grid.dtype, np.complexfloating)
    acc = (
        UpdateAccumulator(eps_)
        if accumulate and eng.mode == "eager" and eng.nested is None
        else None
    )
    if acc is not None and eng.racecheck is not None:
        eng.racecheck.watch_accumulator(acc)

    handles = {
        (i, j): eng.handle(grid.get_blktile(i, j), f"A[{i},{j}]")
        for i in range(nt)
        for j in range(nt)
    }

    def t(i, j):
        return grid.get_blktile(i, j).mat

    for k in range(nt):
        mk = grid.tile_rows(k)
        eng.insert_task(
            "getrf",
            (lambda k=k: hgetrf(t(k, k), eps_, acc)),
            [(handles[k, k], RW)],
            priority=lu_priorities(nt, k, "getrf"),
            flops=flops_getrf(mk, is_complex=is_c),
            label=f"getrf({k})",
            spec=_spec("_op_getrf", eps_),
            expander=getrf_expander(handles[k, k], eps_, f"getrf({k})"),
        )
        for j in range(k + 1, nt):
            eng.insert_task(
                "trsm",
                (lambda k=k, j=j: htrsm("left", "lower", t(k, k), t(k, j), eps_, unit_diagonal=True, acc=acc)),
                [(handles[k, k], R), (handles[k, j], RW)],
                priority=lu_priorities(nt, k, "trsm"),
                flops=flops_trsm(mk, grid.tile_rows(j), is_complex=is_c),
                label=f"trsm_u({k},{j})",
                spec=_spec("_op_trsm_left_lower", eps_),
                expander=trsm_left_lower_expander(
                    handles[k, k], handles[k, j], eps_, f"trsm_u({k},{j})"
                ),
            )
        for i in range(k + 1, nt):
            eng.insert_task(
                "trsm",
                (lambda k=k, i=i: htrsm("right", "upper", t(k, k), t(i, k), eps_, acc=acc)),
                [(handles[k, k], R), (handles[i, k], RW)],
                priority=lu_priorities(nt, k, "trsm"),
                flops=flops_trsm(mk, grid.tile_rows(i), is_complex=is_c),
                label=f"trsm_l({i},{k})",
                spec=_spec("_op_trsm_right_upper", eps_),
                expander=trsm_right_upper_expander(
                    handles[k, k], handles[i, k], eps_, f"trsm_l({i},{k})"
                ),
            )
        for i in range(k + 1, nt):
            for j in range(k + 1, nt):
                eng.insert_task(
                    "gemm",
                    (lambda i=i, k=k, j=j: hgemm(t(i, j), t(i, k), t(k, j), eps_, alpha=-1.0, acc=acc)),
                    [(handles[i, k], R), (handles[k, j], R), (handles[i, j], RW)],
                    priority=lu_priorities(nt, k, "gemm", i, j),
                    flops=flops_gemm(
                        grid.tile_rows(i), grid.tile_rows(j), mk, is_complex=is_c
                    ),
                    label=f"gemm({i},{j},{k})",
                    spec=_spec("_op_gemm", eps_),
                    expander=gemm_expander(
                        handles[i, j], handles[i, k], handles[k, j],
                        eps_, f"gemm({i},{j},{k})",
                    ),
                )
    if acc is not None:
        # Every tile's last pending update is flushed by its own panel step,
        # so this is a no-op safety net (asserted by the equivalence tests).
        acc.flush()
    return eng.wait_all()


def tiled_potrf_tasks(
    desc: TileHDesc,
    engine: StfEngine | None = None,
    *,
    eps: float | None = None,
    accumulate: bool = True,
    racecheck: bool = False,
) -> TaskGraph:
    """Tiled right-looking Cholesky of an SPD Tile-H matrix, in place.

    Only the lower-triangular tiles are referenced/written (upper tiles stay
    untouched).  Task kinds: POTRF (diagonal), TRSM (panel, ``X L^T = B``),
    GEMM (the SYRK-style ``C -= A B^T`` trailing update).  Priorities reuse
    the LU heuristic (POTRF plays GETRF's role).  ``accumulate`` defers the
    trailing-update roundings exactly as in :func:`tiled_getrf_tasks`;
    ``racecheck`` enables the access-mode race detector the same way.
    """
    eng = engine or StfEngine(mode="eager", racecheck=racecheck)
    eps_ = desc.eps if eps is None else eps
    nt = desc.nt
    grid = desc.super
    is_c = np.issubdtype(grid.dtype, np.complexfloating)
    acc = (
        UpdateAccumulator(eps_)
        if accumulate and eng.mode == "eager" and eng.nested is None
        else None
    )
    if acc is not None and eng.racecheck is not None:
        eng.racecheck.watch_accumulator(acc)
    handles = {
        (i, j): eng.handle(grid.get_blktile(i, j), f"A[{i},{j}]")
        for i in range(nt)
        for j in range(i + 1)
    }

    def t(i, j):
        return grid.get_blktile(i, j).mat

    for k in range(nt):
        mk = grid.tile_rows(k)
        eng.insert_task(
            "potrf",
            (lambda k=k: hpotrf(t(k, k), eps_, acc)),
            [(handles[k, k], RW)],
            priority=lu_priorities(nt, k, "getrf"),
            flops=flops_potrf(mk, is_complex=is_c),
            label=f"potrf({k})",
            spec=_spec("_op_potrf", eps_),
            expander=potrf_expander(handles[k, k], eps_, f"potrf({k})"),
        )
        for i in range(k + 1, nt):
            eng.insert_task(
                "trsm",
                (lambda k=k, i=i: _htrsm_right_lower_transpose(t(k, k), t(i, k), eps_, acc)),
                [(handles[k, k], R), (handles[i, k], RW)],
                priority=lu_priorities(nt, k, "trsm"),
                flops=flops_trsm(mk, grid.tile_rows(i), is_complex=is_c),
                label=f"trsm({i},{k})",
                spec=_spec("_op_trsm_right_lower_t", eps_),
                expander=trsm_right_lower_transpose_expander(
                    handles[k, k], handles[i, k], eps_, f"trsm({i},{k})"
                ),
            )
        for i in range(k + 1, nt):
            for j in range(k + 1, i + 1):
                eng.insert_task(
                    "gemm",
                    (lambda i=i, j=j, k=k: hgemm_transb(t(i, j), t(i, k), t(j, k), eps_, alpha=-1.0, acc=acc)),
                    [(handles[i, k], R), (handles[j, k], R), (handles[i, j], RW)],
                    priority=lu_priorities(nt, k, "gemm", i, j),
                    flops=flops_gemm(
                        grid.tile_rows(i), grid.tile_rows(j), mk, is_complex=is_c
                    ),
                    label=f"syrk({i},{j},{k})" if i == j else f"gemm({i},{j},{k})",
                    spec=_spec("_op_gemm_transb", eps_),
                    expander=gemm_transb_expander(
                        handles[i, j], handles[i, k], handles[j, k],
                        eps_,
                        f"syrk({i},{j},{k})" if i == j else f"gemm({i},{j},{k})",
                    ),
                )
    if acc is not None:
        acc.flush()
    return eng.wait_all()


def tiled_chol_solve(desc: TileHDesc, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` after :func:`tiled_potrf_tasks` (``A = L L^T``).

    Original ordering in and out, vector or panel.  Multi-column panels are
    solved column-stably: every column matches a standalone single-RHS solve
    bit-for-bit (see :func:`~repro.hmatrix.arithmetic.panel_matvec`).
    """
    x, squeeze = _as_panel(b, desc.n)
    nt = desc.nt
    grid = desc.super
    work = np.array(x[desc.perm], dtype=np.promote_types(grid.dtype, x.dtype), copy=True)

    # Forward: L y = b (non-unit diagonal).
    for k in range(nt):
        sk = desc.tile_slice(k)
        for j in range(k):
            work[sk] -= panel_matvec(grid.get_blktile(k, j).mat, work[desc.tile_slice(j)])
        work[sk] = solve_lower_panel(
            grid.get_blktile(k, k).mat, work[sk], unit_diagonal=False, column_stable=True
        )
    # Backward: L^T x = y, using the lower tiles transposed.
    for k in reversed(range(nt)):
        sk = desc.tile_slice(k)
        for j in range(k + 1, nt):
            work[sk] -= panel_rmatvec(grid.get_blktile(j, k).mat, work[desc.tile_slice(j)])
        work[sk] = solve_lower_transpose_panel(
            grid.get_blktile(k, k).mat, work[sk], unit_diagonal=False, column_stable=True
        )

    out = np.empty_like(work)
    out[desc.perm] = work
    return out[:, 0] if squeeze else out


def submit_chol_solve_tasks(
    eng: StfEngine,
    desc: TileHDesc,
    segments: list,
    seg_handles: list,
    *,
    tile_handles: dict | None = None,
) -> None:
    """Submit the forward/backward Cholesky substitution tasks over ``segments``.

    ``segments[k]`` must hold tile ``k``'s rows of the (permuted) RHS panel
    and is updated in place to the solution; ``seg_handles[k]`` is its STF
    handle.  Shared by :func:`tiled_chol_solve_tasks` and the GP prediction
    graph (which fuses cross-covariance assembly tasks in front of these).

    The task submission order matches the sequential loops of
    :func:`tiled_chol_solve` exactly, and successive updates of one segment
    are RW on the same handle, so STF serialises them in submission order —
    eager, threaded and process executions are all bit-identical to the
    sequential solve.
    """
    nt = desc.nt
    grid = desc.super
    if tile_handles is None:
        tile_handles = {
            (i, j): eng.handle(grid.get_blktile(i, j), f"A[{i},{j}]")
            for i in range(nt)
            for j in range(i + 1)
        }
    is_c = np.issubdtype(grid.dtype, np.complexfloating)
    nrhs = segments[0].shape[1]

    def gemv(k, j):
        segments[k][...] -= panel_matvec(grid.get_blktile(k, j).mat, segments[j])

    def gemv_t(k, j):
        segments[k][...] -= panel_rmatvec(grid.get_blktile(j, k).mat, segments[j])

    def trsv_lower(k):
        segments[k][...] = solve_lower_panel(
            grid.get_blktile(k, k).mat, segments[k],
            unit_diagonal=False, column_stable=True,
        )

    def trsv_lower_t(k):
        segments[k][...] = solve_lower_transpose_panel(
            grid.get_blktile(k, k).mat, segments[k],
            unit_diagonal=False, column_stable=True,
        )

    # Forward substitution: L y = b (non-unit diagonal).
    for k in range(nt):
        for j in range(k):
            eng.insert_task(
                "gemm",
                (lambda k=k, j=j: gemv(k, j)),
                [(tile_handles[k, j], R), (seg_handles[j], R), (seg_handles[k], RW)],
                priority=lu_priorities(nt, min(j, nt - 1), "gemm", k, j),
                flops=flops_gemm(grid.tile_rows(k), nrhs, grid.tile_rows(j), is_complex=is_c),
                label=f"fwd_gemv({k},{j})",
                spec=_spec("_op_solve_gemv"),
            )
        eng.insert_task(
            "trsm",
            (lambda k=k: trsv_lower(k)),
            [(tile_handles[k, k], R), (seg_handles[k], RW)],
            priority=lu_priorities(nt, k, "trsm"),
            flops=flops_trsm(grid.tile_rows(k), nrhs, is_complex=is_c),
            label=f"fwd_trsv({k})",
            spec=_spec("_op_chol_trsv_lower"),
        )
    # Backward substitution: L^T x = y, reading the lower tiles transposed.
    for k in reversed(range(nt)):
        for j in range(k + 1, nt):
            eng.insert_task(
                "gemm",
                (lambda k=k, j=j: gemv_t(k, j)),
                [(tile_handles[j, k], R), (seg_handles[j], R), (seg_handles[k], RW)],
                priority=lu_priorities(nt, min(nt - 1 - j, nt - 1), "gemm", k, j),
                flops=flops_gemm(grid.tile_rows(k), nrhs, grid.tile_rows(j), is_complex=is_c),
                label=f"bwd_gemv_t({k},{j})",
                spec=_spec("_op_solve_gemv_t"),
            )
        eng.insert_task(
            "trsm",
            (lambda k=k: trsv_lower_t(k)),
            [(tile_handles[k, k], R), (seg_handles[k], RW)],
            priority=lu_priorities(nt, nt - 1 - k, "trsm"),
            flops=flops_trsm(grid.tile_rows(k), nrhs, is_complex=is_c),
            label=f"bwd_trsv({k})",
            spec=_spec("_op_chol_trsv_lower_t"),
        )


def tiled_chol_solve_tasks(
    desc: TileHDesc,
    b: np.ndarray,
    engine: StfEngine | None = None,
    *,
    racecheck: bool = False,
    executor=None,
) -> tuple[np.ndarray, TaskGraph]:
    """Task-parallel forward/backward substitution after the tiled Cholesky.

    The Cholesky twin of :func:`tiled_solve_tasks`: one GEMV-style update
    task per lower tile (the backward sweep reads tile ``(j, k)``
    transposed) and one non-unit TRSV task per diagonal tile.  Returns
    ``(x, graph)`` with ``x`` in original ordering, bit-identical to
    :func:`tiled_chol_solve` on every executor; a *deferred* ``engine``
    requires an ``executor`` to run the submitted kernels.
    """
    x, squeeze = _as_panel(b, desc.n)
    eng = engine or StfEngine(mode="eager", racecheck=racecheck)
    nt = desc.nt
    grid = desc.super
    work = np.array(x[desc.perm], dtype=np.promote_types(grid.dtype, x.dtype), copy=True)
    segments = [work[desc.tile_slice(k)] for k in range(nt)]
    seg_handles = [eng.handle(segments[k], f"x[{k}]") for k in range(nt)]

    submit_chol_solve_tasks(eng, desc, segments, seg_handles)
    graph = eng.wait_all()
    if eng.mode == "deferred":
        if executor is None:
            raise ValueError(
                "a deferred engine leaves the solve kernels unexecuted; "
                "pass executor= (e.g. a ThreadedExecutor) to run them"
            )
        executor.run(graph)

    out = np.empty_like(work)
    out[desc.perm] = work
    return (out[:, 0] if squeeze else out), graph


def tiled_solve_tasks(
    desc: TileHDesc,
    b: np.ndarray,
    engine: StfEngine | None = None,
    *,
    racecheck: bool = False,
    executor=None,
) -> tuple[np.ndarray, TaskGraph]:
    """Task-parallel forward/backward substitution after the tiled LU.

    Submits one GEMV-style update task per off-diagonal tile and one TRSV
    task per diagonal tile, with R/RW access modes on the tiles and on the
    per-tile RHS segments — the solve phase as the paper's library would run
    it through the runtime.  Returns ``(x, graph)`` with ``x`` in original
    ordering; the graph's simulated makespan quantifies the (limited)
    pipeline parallelism of triangular solves.  ``racecheck`` enables the
    access-mode race detector on the default engine.

    With a *deferred* ``engine`` the submitted kernels have not run when the
    section closes, so an ``executor`` (typically a
    :class:`~repro.runtime.ThreadedExecutor`) is required and is run on the
    graph before the solution is gathered.

    Multi-column panels are solved column-stably (each column bit-identical
    to its standalone single-RHS solve), matching :func:`tiled_solve`.
    """
    x, squeeze = _as_panel(b, desc.n)
    eng = engine or StfEngine(mode="eager", racecheck=racecheck)
    nt = desc.nt
    grid = desc.super
    work = np.array(x[desc.perm], dtype=np.promote_types(grid.dtype, x.dtype), copy=True)

    segments = [work[desc.tile_slice(k)] for k in range(nt)]
    tile_handles = {
        (i, j): eng.handle(grid.get_blktile(i, j), f"A[{i},{j}]")
        for i in range(nt)
        for j in range(nt)
    }
    seg_handles = [eng.handle(segments[k], f"x[{k}]") for k in range(nt)]
    is_c = np.issubdtype(grid.dtype, np.complexfloating)
    nrhs = work.shape[1]

    def gemv(k, j):
        segments[k][...] -= panel_matvec(grid.get_blktile(k, j).mat, segments[j])

    def trsv_lower(k):
        segments[k][...] = solve_lower_panel(
            grid.get_blktile(k, k).mat, segments[k], unit_diagonal=True, column_stable=True
        )

    def trsv_upper(k):
        segments[k][...] = solve_upper_panel(
            grid.get_blktile(k, k).mat, segments[k], column_stable=True
        )

    # Forward substitution: L y = b.
    for k in range(nt):
        for j in range(k):
            eng.insert_task(
                "gemm",
                (lambda k=k, j=j: gemv(k, j)),
                [(tile_handles[k, j], R), (seg_handles[j], R), (seg_handles[k], RW)],
                priority=lu_priorities(nt, min(j, nt - 1), "gemm", k, j),
                flops=flops_gemm(grid.tile_rows(k), nrhs, grid.tile_rows(j), is_complex=is_c),
                label=f"fwd_gemv({k},{j})",
                spec=_spec("_op_solve_gemv"),
            )
        eng.insert_task(
            "trsm",
            (lambda k=k: trsv_lower(k)),
            [(tile_handles[k, k], R), (seg_handles[k], RW)],
            priority=lu_priorities(nt, k, "trsm"),
            flops=flops_trsm(grid.tile_rows(k), nrhs, is_complex=is_c),
            label=f"fwd_trsv({k})",
            spec=_spec("_op_trsv_lower"),
        )
    # Backward substitution: U x = y.
    for k in reversed(range(nt)):
        for j in range(k + 1, nt):
            eng.insert_task(
                "gemm",
                (lambda k=k, j=j: gemv(k, j)),
                [(tile_handles[k, j], R), (seg_handles[j], R), (seg_handles[k], RW)],
                priority=lu_priorities(nt, min(nt - 1 - j, nt - 1), "gemm", k, j),
                flops=flops_gemm(grid.tile_rows(k), nrhs, grid.tile_rows(j), is_complex=is_c),
                label=f"bwd_gemv({k},{j})",
                spec=_spec("_op_solve_gemv"),
            )
        eng.insert_task(
            "trsm",
            (lambda k=k: trsv_upper(k)),
            [(tile_handles[k, k], R), (seg_handles[k], RW)],
            priority=lu_priorities(nt, nt - 1 - k, "trsm"),
            flops=flops_trsm(grid.tile_rows(k), nrhs, is_complex=is_c),
            label=f"bwd_trsv({k})",
            spec=_spec("_op_trsv_upper"),
        )
    graph = eng.wait_all()
    if eng.mode == "deferred":
        if executor is None:
            raise ValueError(
                "a deferred engine leaves the solve kernels unexecuted; "
                "pass executor= (e.g. a ThreadedExecutor) to run them"
            )
        executor.run(graph)

    out = np.empty_like(work)
    out[desc.perm] = work
    return (out[:, 0] if squeeze else out), graph


def tiled_solve(desc: TileHDesc, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` after :func:`tiled_getrf_tasks` (vector or panel).

    ``b`` and the returned ``x`` use the *original* unknown numbering; the
    clustering permutation is applied internally.  The substitution runs
    tile-wise: its cost is a lower-order term, so it is executed directly
    rather than through the runtime.

    Multi-column panels amortize the tile/leaf traversal across columns while
    staying column-stable: column ``c`` of the panel solution is bit-identical
    to ``tiled_solve(desc, b[:, c])`` — the batch a request lands in can never
    change its answer (the property the solve service's micro-batcher relies
    on).
    """
    x, squeeze = _as_panel(b, desc.n)
    nt = desc.nt
    grid = desc.super
    work = np.array(x[desc.perm], dtype=np.promote_types(grid.dtype, x.dtype), copy=True)

    # Forward substitution: L y = b (unit lower, diagonal tiles packed).
    for k in range(nt):
        sk = desc.tile_slice(k)
        for j in range(k):
            work[sk] -= panel_matvec(grid.get_blktile(k, j).mat, work[desc.tile_slice(j)])
        work[sk] = solve_lower_panel(
            grid.get_blktile(k, k).mat, work[sk], unit_diagonal=True, column_stable=True
        )
    # Backward substitution: U x = y.
    for k in reversed(range(nt)):
        sk = desc.tile_slice(k)
        for j in range(k + 1, nt):
            work[sk] -= panel_matvec(grid.get_blktile(k, j).mat, work[desc.tile_slice(j)])
        work[sk] = solve_upper_panel(
            grid.get_blktile(k, k).mat, work[sk], column_stable=True
        )

    out = np.empty_like(work)
    out[desc.perm] = work
    return out[:, 0] if squeeze else out
