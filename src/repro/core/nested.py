"""Nested expansion of Tile-H kernels into sub-block task graphs.

Each expander mirrors one recursive H-kernel from
:mod:`repro.hmatrix.arithmetic` *structurally*: it walks the tile's block
tree exactly where the eager kernel recurses (same dispatch conditions, same
loop nests, same submission order) and submits one subtask per place the
recursion stops — either a true leaf kernel or, below the
:class:`~repro.runtime.expand.NestedPolicy` ``min_leaf`` cutoff, an opaque
subtask running the ordinary recursive kernel on that node.  Because the
grouping never changes which arithmetic runs or in what sequential order,
an expanded factorisation is bit-identical to the opaque one (with
``accumulate=False``) while the scheduler sees *through* the tile: panel
TRSMs on disjoint sub-blocks, and trailing GEMMs on sub-blocks already
updated, run concurrently instead of serialising behind one giant task —
the fix 1906.00874/1911.07531 apply to the HMAT-vs-Tile-H crossover.

Subtask accesses come in two granularities (``NestedPolicy.coarse``):

* *fine* (eager/threaded) — each subtask declares R/W/RW on hierarchical
  sub-block handles (``StfEngine.subhandle``); the engine's family-aware
  inference wires the fine-grain dependencies.
* *coarse* (process) — subtasks declare whole-tile accesses, because the
  process executor's per-handle shared-memory shipping assumes disjoint
  handles.  Subtasks of one tile then serialise, but each carries a
  picklable :class:`~repro.runtime.process.TaskSpec` (``_op_nested``
  navigates child-index paths from the shipped tile payloads), so results
  stay bit-identical; the fine-grain parallelism claims are made on the
  simulated graph.

The one subtlety the expanders must reproduce is the ``packed_lu`` cache:
``hgetrf``/``hpotrf`` pack every factorised diagonal node at or below
``_PACK_TRI_MAX`` *after* its sub-factorisation, and the panel solves read
the pack.  An expanded diagonal therefore gets an explicit ``pack`` subtask
(RW on the node — racecheck-neutral, since ``packed_lu`` is excluded from
payload fingerprints) ordered before any TRSM that reads the factor.
The interior ``c.packed_lu = None`` invalidation of ``hgemm`` needs no
subtask: GEMM targets are trailing blocks that are never packed before
their own factorisation, so the clear is a no-op in the LU/Cholesky flow.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from ..dense import flops_gemm, flops_getrf, flops_potrf
from ..hmatrix.arithmetic import (
    _PACK_TRI_MAX,
    _effective_rank,
    _gemm_flops,
    _htrsm_left_lower,
    _htrsm_right_lower_transpose,
    _htrsm_right_upper,
    _trsm_flops,
    hgemm,
    hgemm_transb,
    hgetrf,
    hpotrf,
)
from ..runtime.process import TaskSpec
from ..runtime.task import AccessMode

__all__ = [
    "getrf_expander",
    "potrf_expander",
    "trsm_left_lower_expander",
    "trsm_right_upper_expander",
    "trsm_right_lower_transpose_expander",
    "gemm_expander",
    "gemm_transb_expander",
]

R, RW = AccessMode.R, AccessMode.RW


# ---------------------------------------------------------------------------
# Leaf-subtask execution (shared by in-process closures and process workers)
# ---------------------------------------------------------------------------

def _run(variant: str, nodes: tuple, eps: float, unit: bool = True) -> None:
    """Run one leaf/opaque subtask kernel on resolved H-matrix nodes."""
    if variant == "getrf":
        hgetrf(nodes[0], eps, None)
    elif variant == "potrf":
        hpotrf(nodes[0], eps, None)
    elif variant == "trsm_ll":
        _htrsm_left_lower(nodes[0], nodes[1], eps, unit, None)
    elif variant == "trsm_ru":
        _htrsm_right_upper(nodes[0], nodes[1], eps, False, None)
    elif variant == "trsm_rlt":
        _htrsm_right_lower_transpose(nodes[0], nodes[1], eps, None)
    elif variant == "gemm":
        hgemm(nodes[0], nodes[1], nodes[2], eps, alpha=-1.0, acc=None)
    elif variant == "gemm_tb":
        hgemm_transb(nodes[0], nodes[1], nodes[2], eps, alpha=-1.0, acc=None)
    elif variant == "pack":
        # F order: LAPACK trtrs takes it copy-free (mirrors hgetrf/hpotrf).
        nodes[0].packed_lu = np.asfortranarray(nodes[0].to_dense())
    else:  # pragma: no cover - guarded by the expanders
        raise ValueError(f"unknown nested kernel variant {variant!r}")


def _op_nested(payloads, variant, paths, eps, unit=True):
    """Process-executor op: resolve child-index ``paths`` and run the kernel.

    ``paths`` is one ``(payload_index, ((i, j), ...))`` per kernel operand in
    kernel-argument order; each navigates from the shipped tile's H-matrix
    root, so the op works on whatever arena views the worker holds.
    """
    nodes = []
    for idx, path in paths:
        node = payloads[idx].mat
        for i, j in path:
            node = node.child(i, j)
        nodes.append(node)
    _run(variant, tuple(nodes), eps, unit)


# ---------------------------------------------------------------------------
# Expansion machinery
# ---------------------------------------------------------------------------

class _Ref:
    """One H-matrix node plus how tasks address it (handle or tile+path)."""

    __slots__ = ("node", "handle", "tile_handle", "path")

    def __init__(self, node, handle, tile_handle, path) -> None:
        self.node = node
        self.handle = handle
        self.tile_handle = tile_handle
        self.path = path


class _Ctx:
    """Per-expansion state: engine, policy, accuracy, base label."""

    __slots__ = ("eng", "policy", "eps", "label")

    def __init__(self, eng, eps: float, label: str) -> None:
        self.eng = eng
        self.policy = eng.nested
        self.eps = eps
        self.label = label


def _root(ctx: _Ctx, tile_handle) -> _Ref:
    """Root reference of one tile operand (the tile handle itself)."""
    mat = tile_handle.payload.mat
    if mat is None:
        raise RuntimeError(
            f"nested expansion of {ctx.label!r} requires assembled tiles; "
            f"tile {tile_handle.name!r} is still pending — run the assembly "
            "graph before building the nested factorisation graph"
        )
    handle = None if ctx.policy.coarse else tile_handle
    return _Ref(mat, handle, tile_handle, ())


def _child(ctx: _Ctx, ref: _Ref, i: int, j: int) -> _Ref:
    """Reference to child ``(i, j)``, registering a sub-handle when fine."""
    node = ref.node.child(i, j)
    path = ref.path + ((i, j),)
    if ctx.policy.coarse:
        handle = None
    else:
        handle = ctx.eng.subhandle(
            ref.handle, node, f"{ref.handle.name}/{i},{j}"
        )
    return _Ref(node, handle, ref.tile_handle, path)


def _pathstr(path) -> str:
    return ".".join(f"{i}{j}" for i, j in path) or "r"


def _submit(
    ctx: _Ctx,
    kind: str,
    variant: str,
    refs_modes: list,
    flops: float,
    written: _Ref,
    unit: bool = True,
) -> None:
    """Submit one leaf/opaque subtask for ``refs_modes`` (kernel-arg order)."""
    nodes = tuple(r.node for r, _ in refs_modes)
    label = f"{ctx.label}/{variant}@{_pathstr(written.path)}"
    func = partial(_run, variant, nodes, ctx.eps, unit)
    coarse = ctx.policy.coarse
    # Aggregate accesses (a subtask may reference one handle several times,
    # e.g. the SYRK case a.child(i,k) twice, or — coarse — several sub-blocks
    # of one tile): first-seen order, mode upgraded to RW if any use writes.
    idx_of: dict[int, int] = {}
    handles: list = []
    modes: list = []
    paths: list = []
    for r, m in refs_modes:
        h = r.tile_handle if coarse else r.handle
        i = idx_of.get(h.id)
        if i is None:
            i = len(handles)
            idx_of[h.id] = i
            handles.append(h)
            modes.append(m)
        elif m.writes and not modes[i].writes:
            modes[i] = RW
        paths.append((i, r.path))
    spec = None
    if coarse:
        spec = TaskSpec(
            op="repro.core.nested:_op_nested",
            args=(variant, tuple(paths), ctx.eps),
            kwargs={"unit": unit} if variant == "trsm_ll" else {},
        )
    ctx.eng.insert_task(
        kind,
        func,
        list(zip(handles, modes)),
        flops=flops,
        label=label,
        spec=spec,
    )


def _expandable(ctx: _Ctx, node) -> bool:
    """Recurse only above the granularity cutoff (written operand's size)."""
    return not node.is_leaf and min(node.shape) > ctx.policy.min_leaf


# ---------------------------------------------------------------------------
# Flop estimators for opaque (below-cutoff / leaf) subtasks
# ---------------------------------------------------------------------------

def _gemm_flops_tb(a, b) -> float:
    """Rank-aware flop model of ``C += A @ B.T`` without materialising B.T."""
    m, k = a.shape
    n = b.shape[0]
    r = min(_effective_rank(a), _effective_rank(b))
    is_c = a.dtype.kind == "c"
    dense = flops_gemm(m, n, k, is_complex=is_c)
    lowrank = 2.0 * (m + n) * k * r * (4.0 if is_c else 1.0)
    return min(dense, lowrank)


def _est_getrf_flops(node) -> float:
    """Rank-aware cost of an opaque recursive H-GETRF on ``node``."""
    if node.is_leaf:
        return flops_getrf(node.shape[0], is_complex=node.dtype.kind == "c")
    nt = min(node.nrow_children, node.ncol_children)
    total = 0.0
    for k in range(nt):
        kk = node.child(k, k)
        total += _est_getrf_flops(kk)
        for j in range(k + 1, nt):
            total += _trsm_flops(kk, node.child(k, j))
        for i in range(k + 1, nt):
            total += _trsm_flops(kk, node.child(i, k))
        for i in range(k + 1, nt):
            for j in range(k + 1, nt):
                total += _gemm_flops(node.child(i, k), node.child(k, j))
    return total


def _est_potrf_flops(node) -> float:
    """Rank-aware cost of an opaque recursive H-Cholesky on ``node``."""
    if node.is_leaf:
        return flops_potrf(node.shape[0], is_complex=node.dtype.kind == "c")
    nt = min(node.nrow_children, node.ncol_children)
    total = 0.0
    for k in range(nt):
        kk = node.child(k, k)
        total += _est_potrf_flops(kk)
        for i in range(k + 1, nt):
            total += _trsm_flops(kk, node.child(i, k))
        for i in range(k + 1, nt):
            for j in range(k + 1, i + 1):
                total += _gemm_flops_tb(node.child(i, k), node.child(j, k))
    return total


# ---------------------------------------------------------------------------
# Expanders (each mirrors one arithmetic.py recursion exactly)
# ---------------------------------------------------------------------------

def _expand_getrf(ctx: _Ctx, ref: _Ref) -> None:
    node = ref.node
    if (
        node.rk is None
        and node.full is None
        and not node.is_leaf
        and node.nrow_children == node.ncol_children
        and _expandable(ctx, node)
    ):
        nt = node.nrow_children
        for k in range(nt):
            kk = _child(ctx, ref, k, k)
            _expand_getrf(ctx, kk)
            for j in range(k + 1, nt):
                _expand_trsm_ll(ctx, kk, _child(ctx, ref, k, j))
            for i in range(k + 1, nt):
                _expand_trsm_ru(ctx, kk, _child(ctx, ref, i, k))
            for i in range(k + 1, nt):
                for j in range(k + 1, nt):
                    _expand_gemm(
                        ctx,
                        _child(ctx, ref, i, j),
                        _child(ctx, ref, i, k),
                        _child(ctx, ref, k, j),
                    )
        if node.shape[0] <= _PACK_TRI_MAX:
            _submit(ctx, "pack", "pack", [(ref, RW)], 0.0, ref)
    else:
        _submit(ctx, "getrf", "getrf", [(ref, RW)], _est_getrf_flops(node), ref)


def _expand_potrf(ctx: _Ctx, ref: _Ref) -> None:
    node = ref.node
    if (
        node.rk is None
        and node.full is None
        and not node.is_leaf
        and node.nrow_children == node.ncol_children
        and _expandable(ctx, node)
    ):
        nt = node.nrow_children
        for k in range(nt):
            kk = _child(ctx, ref, k, k)
            _expand_potrf(ctx, kk)
            for i in range(k + 1, nt):
                _expand_trsm_rlt(ctx, kk, _child(ctx, ref, i, k))
            for i in range(k + 1, nt):
                for j in range(k + 1, i + 1):
                    _expand_gemm_tb(
                        ctx,
                        _child(ctx, ref, i, j),
                        _child(ctx, ref, i, k),
                        _child(ctx, ref, j, k),
                    )
        if node.shape[0] <= _PACK_TRI_MAX:
            _submit(ctx, "pack", "pack", [(ref, RW)], 0.0, ref)
    else:
        _submit(ctx, "potrf", "potrf", [(ref, RW)], _est_potrf_flops(node), ref)


def _expand_trsm_ll(ctx: _Ctx, lref: _Ref, bref: _Ref) -> None:
    l, b = lref.node, bref.node
    if (
        not b.is_leaf
        and not l.is_leaf
        and b.nrow_children == l.nrow_children
        and _expandable(ctx, b)
    ):
        nb = l.nrow_children
        for j in range(b.ncol_children):
            for i in range(nb):
                for p in range(i):
                    _expand_gemm(
                        ctx,
                        _child(ctx, bref, i, j),
                        _child(ctx, lref, i, p),
                        _child(ctx, bref, p, j),
                    )
                _expand_trsm_ll(ctx, _child(ctx, lref, i, i), _child(ctx, bref, i, j))
    else:
        _submit(
            ctx, "trsm", "trsm_ll", [(lref, R), (bref, RW)], _trsm_flops(l, b), bref
        )


def _expand_trsm_ru(ctx: _Ctx, uref: _Ref, bref: _Ref) -> None:
    u, b = uref.node, bref.node
    if (
        not b.is_leaf
        and not u.is_leaf
        and b.ncol_children == u.nrow_children
        and _expandable(ctx, b)
    ):
        nb = u.nrow_children
        for i in range(b.nrow_children):
            for j in range(nb):
                for p in range(j):
                    _expand_gemm(
                        ctx,
                        _child(ctx, bref, i, j),
                        _child(ctx, bref, i, p),
                        _child(ctx, uref, p, j),
                    )
                _expand_trsm_ru(ctx, _child(ctx, uref, j, j), _child(ctx, bref, i, j))
    else:
        _submit(
            ctx, "trsm", "trsm_ru", [(uref, R), (bref, RW)], _trsm_flops(u, b), bref
        )


def _expand_trsm_rlt(ctx: _Ctx, lref: _Ref, bref: _Ref) -> None:
    l, b = lref.node, bref.node
    if (
        not b.is_leaf
        and not l.is_leaf
        and b.ncol_children == l.nrow_children
        and _expandable(ctx, b)
    ):
        nb = l.nrow_children
        for i in range(b.nrow_children):
            for j in range(nb):
                for p in range(j):
                    # (L^T)_{p j} = L_{j p}^T for p < j.
                    _expand_gemm_tb(
                        ctx,
                        _child(ctx, bref, i, j),
                        _child(ctx, bref, i, p),
                        _child(ctx, lref, j, p),
                    )
                _expand_trsm_rlt(ctx, _child(ctx, lref, j, j), _child(ctx, bref, i, j))
    else:
        _submit(
            ctx, "trsm", "trsm_rlt", [(lref, R), (bref, RW)], _trsm_flops(l, b), bref
        )


def _expand_gemm(ctx: _Ctx, cref: _Ref, aref: _Ref, bref: _Ref) -> None:
    c, a, b = cref.node, aref.node, bref.node
    if (
        a.rk is None
        and b.rk is None
        and a.full is None
        and b.full is None
        and not c.is_leaf
        and a.nrow_children == c.nrow_children
        and b.ncol_children == c.ncol_children
        and a.ncol_children == b.nrow_children
        and _expandable(ctx, c)
    ):
        for i in range(c.nrow_children):
            for j in range(c.ncol_children):
                for l in range(a.ncol_children):
                    _expand_gemm(
                        ctx,
                        _child(ctx, cref, i, j),
                        _child(ctx, aref, i, l),
                        _child(ctx, bref, l, j),
                    )
    else:
        _submit(
            ctx,
            "gemm",
            "gemm",
            [(cref, RW), (aref, R), (bref, R)],
            _gemm_flops(a, b),
            cref,
        )


def _expand_gemm_tb(ctx: _Ctx, cref: _Ref, aref: _Ref, bref: _Ref) -> None:
    # Mirrors hgemm(c, a, b.transpose()): the structural transpose swaps the
    # children grid, so the recursion is gemm_tb(c_ij, a_il, b_jl).  Leaf
    # transpose copies are per-leaf identical whether taken at the tile or
    # the sub-block level, so grouping preserves bit-identity here too.
    c, a, b = cref.node, aref.node, bref.node
    if (
        a.rk is None
        and b.rk is None
        and a.full is None
        and b.full is None
        and not c.is_leaf
        and a.nrow_children == c.nrow_children
        and b.nrow_children == c.ncol_children
        and a.ncol_children == b.ncol_children
        and _expandable(ctx, c)
    ):
        for i in range(c.nrow_children):
            for j in range(c.ncol_children):
                for l in range(a.ncol_children):
                    _expand_gemm_tb(
                        ctx,
                        _child(ctx, cref, i, j),
                        _child(ctx, aref, i, l),
                        _child(ctx, bref, j, l),
                    )
    else:
        _submit(
            ctx,
            "gemm",
            "gemm_tb",
            [(cref, RW), (aref, R), (bref, R)],
            _gemm_flops_tb(a, b),
            cref,
        )


# ---------------------------------------------------------------------------
# Expander factories (what the tiled task layer passes to insert_task)
# ---------------------------------------------------------------------------

def getrf_expander(a_handle, eps: float, label: str):
    """Expander for ``hgetrf`` on tile ``a_handle`` (RW)."""

    def expander(eng) -> None:
        ctx = _Ctx(eng, eps, label)
        _expand_getrf(ctx, _root(ctx, a_handle))

    return expander


def potrf_expander(a_handle, eps: float, label: str):
    """Expander for ``hpotrf`` on tile ``a_handle`` (RW)."""

    def expander(eng) -> None:
        ctx = _Ctx(eng, eps, label)
        _expand_potrf(ctx, _root(ctx, a_handle))

    return expander


def trsm_left_lower_expander(l_handle, b_handle, eps: float, label: str):
    """Expander for ``L X = B`` (unit diagonal; the LU U-panel kernel)."""

    def expander(eng) -> None:
        ctx = _Ctx(eng, eps, label)
        _expand_trsm_ll(ctx, _root(ctx, l_handle), _root(ctx, b_handle))

    return expander


def trsm_right_upper_expander(u_handle, b_handle, eps: float, label: str):
    """Expander for ``X U = B`` (the LU L-panel kernel)."""

    def expander(eng) -> None:
        ctx = _Ctx(eng, eps, label)
        _expand_trsm_ru(ctx, _root(ctx, u_handle), _root(ctx, b_handle))

    return expander


def trsm_right_lower_transpose_expander(l_handle, b_handle, eps: float, label: str):
    """Expander for ``X L^T = B`` (the Cholesky panel kernel)."""

    def expander(eng) -> None:
        ctx = _Ctx(eng, eps, label)
        _expand_trsm_rlt(ctx, _root(ctx, l_handle), _root(ctx, b_handle))

    return expander


def gemm_expander(c_handle, a_handle, b_handle, eps: float, label: str):
    """Expander for ``C -= A @ B`` (the LU trailing update)."""

    def expander(eng) -> None:
        ctx = _Ctx(eng, eps, label)
        _expand_gemm(
            ctx, _root(ctx, c_handle), _root(ctx, a_handle), _root(ctx, b_handle)
        )

    return expander


def gemm_transb_expander(c_handle, a_handle, b_handle, eps: float, label: str):
    """Expander for ``C -= A @ B^T`` (the Cholesky SYRK/GEMM update)."""

    def expander(eng) -> None:
        ctx = _Ctx(eng, eps, label)
        _expand_gemm_tb(
            ctx, _root(ctx, c_handle), _root(ctx, a_handle), _root(ctx, b_handle)
        )

    return expander
