"""Tile-H clustering driver (Section IV-C).

Runs the paper's ``NTilesRecursive`` (Algorithm 2) to obtain ``nt`` regular
tile clusters, then builds one block cluster tree per (row-tile, col-tile)
pair.  Off-diagonal pairs that are admissible at the top level become single
low-rank tiles; everything else becomes a per-tile H-structure, exactly the
"each of these tiles [is] individually turned into an H-Matrix" construction
of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..hmatrix import (
    Admissibility,
    BlockClusterTree,
    ClusterTree,
    StrongAdmissibility,
    build_block_cluster_tree,
    ntiles_recursive,
)

__all__ = ["TileHClustering", "build_tile_h_clustering"]


@dataclass
class TileHClustering:
    """Clustering outcome: tile clusters plus per-tile block trees."""

    root: ClusterTree
    tiles: list
    block_trees: list  # row-major nt x nt list of BlockClusterTree
    admissibility: Admissibility
    nb: int

    @property
    def nt(self) -> int:
        return len(self.tiles)

    @property
    def perm(self) -> np.ndarray:
        return self.root.perm

    def block_tree(self, i: int, j: int) -> BlockClusterTree:
        if not (0 <= i < self.nt and 0 <= j < self.nt):
            raise IndexError(f"tile ({i}, {j}) out of range for nt={self.nt}")
        return self.block_trees[i * self.nt + j]


def build_tile_h_clustering(
    points: np.ndarray,
    nb: int,
    *,
    leaf_size: int = 64,
    admissibility: Admissibility | None = None,
) -> TileHClustering:
    """Cluster ``points`` into the Tile-H layout.

    Parameters
    ----------
    points:
        (n, dim) coordinates.
    nb:
        Tile size ``NB`` (all tiles regular except the last).
    leaf_size:
        Dense-leaf size of the per-tile median-bisection refinement.
    admissibility:
        Block admissibility condition; defaults to the eta=2 strong
        condition HMAT-OSS uses.

    Returns
    -------
    TileHClustering
        With ``nt = ceil(n / nb)`` tile clusters and ``nt^2`` block trees.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n == 0:
        raise ValueError("cannot cluster zero points")
    adm = admissibility if admissibility is not None else StrongAdmissibility()
    root, tiles = ntiles_recursive(pts, nb, leaf_size=leaf_size)
    nt = len(tiles)
    expected = math.ceil(n / nb)
    if nt != expected:
        raise AssertionError(f"ntiles_recursive returned {nt} tiles, expected {expected}")
    block_trees = [
        build_block_cluster_tree(tiles[i], tiles[j], adm)
        for i in range(nt)
        for j in range(nt)
    ]
    return TileHClustering(
        root=root, tiles=tiles, block_trees=block_trees, admissibility=adm, nb=nb
    )
