"""Tile descriptors — Python analogues of the paper's Structures 1-3.

The paper extends CHAMELEON's dense-only descriptor so each tile can carry
*any* matrix format:

* ``CHAM_tile_t`` (Structure 2) → :class:`Tile`: a ``format`` discriminator
  plus a payload that is a dense array or an H-matrix;
* ``CHAM_desc_t`` (Structure 1) → :class:`TileDesc`: the ``nt x nt`` grid
  with ``get_blktile``-style access;
* ``HCHAM_desc_s`` (Structure 3) → :class:`TileHDesc`: the Tile-H wrapper
  holding the CHAMELEON descriptor together with the cluster trees, the
  admissibility condition and the permutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hmatrix import Admissibility, ClusterTree, HMatrix

__all__ = ["Tile", "TileDesc", "TileHDesc"]


@dataclass
class Tile:
    """One tile of the Tile-H layout (the ``CHAM_tile_t`` analogue).

    The payload is always an :class:`HMatrix`; ``format`` records its top
    structure ("full" — one dense leaf, "rk" — one low-rank leaf, "hmat" —
    subdivided), which is what the paper's ``int8_t format`` field switches
    kernels on.  Keeping the payload type uniform lets every tiled algorithm
    call the H-kernels unconditionally, while the format field still drives
    reporting and fast-path checks.

    A fourth transient format, "pending", stands for a tile whose assembly
    task has been submitted to a deferred runtime but has not run yet: the
    shape and dtype are known (so factorisation tasks can be submitted
    against the tile and its data handle), while ``mat`` is ``None`` until
    the assemble task calls :meth:`fill`.
    """

    format: str
    m: int
    n: int
    mat: HMatrix | None
    dtype_hint: np.dtype | None = None

    def __post_init__(self) -> None:
        if self.format not in ("hmat", "full", "rk", "pending"):
            raise ValueError(f"unknown tile format {self.format!r}")
        if self.format == "pending":
            if self.mat is not None:
                raise ValueError("pending tiles must not carry a payload")
        elif self.mat.shape != (self.m, self.n):
            raise ValueError(
                f"payload shape {self.mat.shape} != declared ({self.m}, {self.n})"
            )

    @classmethod
    def of(cls, h: HMatrix) -> "Tile":
        """Wrap an H-matrix, deriving the format from its top structure."""
        fmt = {"full": "full", "rk": "rk", "h": "hmat"}[h.kind]
        return cls(fmt, h.shape[0], h.shape[1], h)

    @classmethod
    def pending(cls, m: int, n: int, dtype) -> "Tile":
        """Placeholder tile to be populated by a deferred assemble task."""
        return cls("pending", m, n, None, dtype_hint=np.dtype(dtype))

    def fill(self, h: HMatrix) -> None:
        """Install the assembled payload (the assemble task's W access)."""
        if h.shape != (self.m, self.n):
            raise ValueError(
                f"payload shape {h.shape} != declared ({self.m}, {self.n})"
            )
        self.mat = h
        self.format = {"full": "full", "rk": "rk", "h": "hmat"}[h.kind]

    def _require_assembled(self) -> HMatrix:
        if self.mat is None:
            raise RuntimeError(
                "tile is pending assembly — run the deferred graph before "
                "touching its payload"
            )
        return self.mat

    @property
    def shape(self) -> tuple[int, int]:
        return (self.m, self.n)

    @property
    def dtype(self) -> np.dtype:
        if self.mat is None:
            if self.dtype_hint is None:
                raise RuntimeError("pending tile carries no dtype hint")
            return self.dtype_hint
        return self.mat.dtype

    def to_dense(self) -> np.ndarray:
        return self._require_assembled().to_dense()

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._require_assembled().matvec(x)

    def storage(self) -> int:
        """Stored scalar count."""
        return self._require_assembled().storage()

    def storage_bytes(self) -> int:
        """Stored bytes (scalar count times the payload itemsize)."""
        return self.storage() * self.dtype.itemsize

    def copy(self) -> "Tile":
        return Tile(self.format, self.m, self.n, self._require_assembled().copy())


@dataclass
class TileDesc:
    """The ``nt x nt`` tile grid (the ``CHAM_desc_t`` analogue)."""

    n: int
    nb: int
    nt: int
    tiles: list = field(default_factory=list)  # row-major, length nt * nt

    def __post_init__(self) -> None:
        if self.nt < 1 or self.nb < 1 or self.n < 1:
            raise ValueError("n, nb, nt must all be positive")
        if self.tiles and len(self.tiles) != self.nt * self.nt:
            raise ValueError(f"expected {self.nt * self.nt} tiles, got {len(self.tiles)}")

    def get_blktile(self, i: int, j: int) -> Tile:
        """Tile at grid position (i, j) — the paper's ``get_blktile`` hook."""
        if not (0 <= i < self.nt and 0 <= j < self.nt):
            raise IndexError(f"tile index ({i}, {j}) out of range for nt={self.nt}")
        return self.tiles[i * self.nt + j]

    def set_blktile(self, i: int, j: int, tile: Tile) -> None:
        if not (0 <= i < self.nt and 0 <= j < self.nt):
            raise IndexError(f"tile index ({i}, {j}) out of range for nt={self.nt}")
        self.tiles[i * self.nt + j] = tile

    @property
    def dtype(self) -> np.dtype:
        return self.tiles[0].dtype

    def tile_rows(self, i: int) -> int:
        """Number of rows in tile row ``i`` (the last row may be padded)."""
        return self.get_blktile(i, 0).m

    def storage(self) -> int:
        return sum(t.storage() for t in self.tiles)

    def compression_ratio(self) -> float:
        return self.storage() / float(self.n * self.n)


@dataclass
class TileHDesc:
    """The full Tile-H descriptor (the ``HCHAM_desc_s`` analogue).

    Attributes mirror the paper's structure: ``super`` is the CHAMELEON tile
    descriptor, ``clusters`` the per-tile cluster trees, ``admissibility``
    the block-admissibility condition, ``perm`` the clustering permutation.
    """

    super: TileDesc
    root: ClusterTree
    clusters: list
    admissibility: Admissibility
    perm: np.ndarray
    eps: float

    @property
    def n(self) -> int:
        return self.super.n

    @property
    def nt(self) -> int:
        return self.super.nt

    @property
    def nb(self) -> int:
        return self.super.nb

    def tile_slice(self, i: int) -> slice:
        """Cluster-order index range covered by tile row/column ``i``."""
        c = self.clusters[i]
        return slice(c.start, c.stop)

    def to_dense(self) -> np.ndarray:
        """Materialise the full matrix in *cluster order* (tests only)."""
        n = self.n
        out = np.zeros((n, n), dtype=self.super.dtype)
        for i in range(self.nt):
            for j in range(self.nt):
                out[self.tile_slice(i), self.tile_slice(j)] = self.super.get_blktile(i, j).to_dense()
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` with ``x`` in original (unpermuted) ordering."""
        x = np.asarray(x)
        if x.shape[0] != self.n:
            raise ValueError(f"x leading dim {x.shape[0]} != {self.n}")
        xc = x[self.perm]
        out = np.zeros_like(xc, dtype=np.promote_types(self.super.dtype, x.dtype))
        for i in range(self.nt):
            acc = None
            for j in range(self.nt):
                contrib = self.super.get_blktile(i, j).matvec(xc[self.tile_slice(j)])
                acc = contrib if acc is None else acc + contrib
            out[self.tile_slice(i)] = acc
        result = np.empty_like(out)
        result[self.perm] = out
        return result

    def storage(self) -> int:
        return self.super.storage()

    def compression_ratio(self) -> float:
        """Stored scalars over dense scalars — the paper's Fig. 4 metric."""
        return self.super.compression_ratio()

    def max_rank(self) -> int:
        return max((t.mat.max_rank() for t in self.super.tiles), default=0)

    def format_counts(self) -> dict:
        """Tile-format census ("full"/"rk"/"hmat") for structure reports."""
        out = {"full": 0, "rk": 0, "hmat": 0, "pending": 0}
        for t in self.super.tiles:
            out[t.format] += 1
        if out["pending"] == 0:
            del out["pending"]
        return out

    def relink_clusters(self) -> None:
        """Re-anchor every tile's H-matrix nodes onto this descriptor's
        canonical cluster tree.

        Tiles harvested from worker processes arrive with unpickled *copies*
        of the cluster nodes they were assembled against.  Archive
        serialization keys cluster references by identity, and each copy
        drags along its own ``points``/``perm`` arrays, so re-linking both
        restores the identity invariant and lets the nt^2 duplicated
        subtrees be collected.  Nodes are matched by their (start, stop,
        level) span, which is unique in the bisection tree.
        """
        canon: dict = {}

        def index(node) -> None:
            canon[(node.start, node.stop, node.level)] = node
            for c in node.children:
                index(c)

        index(self.root)

        def relink(h) -> None:
            r = canon.get((h.rows.start, h.rows.stop, h.rows.level))
            c = canon.get((h.cols.start, h.cols.stop, h.cols.level))
            if r is not None:
                h.rows = r
            if c is not None:
                h.cols = c
            for child in h.children:
                relink(child)

        for t in self.super.tiles:
            if t.mat is not None:
                relink(t.mat)
