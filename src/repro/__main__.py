"""Command-line driver — the analogue of the TEST_FEMBEM binary.

Builds the cylinder test case, assembles the chosen format, factorises,
solves against a manufactured solution and reports compression, accuracy
and (simulated) parallel performance::

    python -m repro --n 5000 --precision d --nb 500 --threads 1 9 35
    python -m repro --n 2000 --precision z --format hmat
    python -m repro --n 3000 --format blr --scheduler ws
    python -m repro --n 2000 --exec threaded --nworkers 4 --scheduler lws \
        --priority-mode bottom-level
    python -m repro --n 2000 --exec threaded --nworkers 4 --scheduler ws \
        --profile run.json --chrome-trace run.trace.json
    python -m repro report run.json
    python -m repro serve --port 8750 --store /tmp/factors
    python -m repro request --url http://127.0.0.1:8750 --n 2000 --check
    python -m repro gp train --kernel sqexp --n 1200 --store /tmp/factors
    python -m repro gp predict --kernel sqexp --n 1200 --store /tmp/factors \
        --n-test 64 --batch 8
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from .analysis import forward_error, format_table
from .analysis.experiments import PAPER_EQUIVALENT_OVERHEADS
from .baselines import BLRMatrix, HMatSolver
from .core import TileHConfig, TileHMatrix
from .geometry import cylinder_cloud, make_kernel, streamed_matvec
from .runtime import validate_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Tile-H / H-matrix LU solver on the TEST_FEMBEM cylinder test case",
    )
    parser.add_argument("--n", type=int, default=2000, help="number of unknowns")
    parser.add_argument(
        "--precision",
        choices=["d", "z"],
        default="d",
        help="d: real double (K=1/d), z: complex double (K=exp(ikd)/d)",
    )
    parser.add_argument(
        "--format",
        choices=["tile-h", "hmat", "blr"],
        default="tile-h",
        help="storage format / solver variant",
    )
    parser.add_argument("--nb", type=int, default=None, help="tile size NB (default n/16)")
    parser.add_argument("--eps", type=float, default=1e-4, help="compression accuracy")
    parser.add_argument("--leaf-size", type=int, default=64, help="dense leaf size")
    parser.add_argument(
        "--method",
        choices=["lu", "cholesky"],
        default="lu",
        help="factorisation (cholesky needs an SPD kernel; tile-h only)",
    )
    parser.add_argument(
        "--scheduler",
        choices=["ws", "lws", "prio", "eager", "dm"],
        default="prio",
        help="scheduling policy for the virtual-machine replay",
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="+",
        default=[1, 2, 9, 18, 35],
        help="worker counts to simulate",
    )
    parser.add_argument(
        "--exec",
        dest="exec_mode",
        choices=["eager", "threaded", "process"],
        default="eager",
        help="task execution: eager (run at submission), threaded (worker "
        "threads driving --scheduler; fuses Tile-H assembly with "
        "factorisation) or process (worker processes over shared-memory "
        "tiles — no GIL, true multicore scaling)",
    )
    parser.add_argument(
        "--nworkers",
        type=int,
        default=2,
        help="workers for --exec threaded/process",
    )
    parser.add_argument(
        "--priority-mode",
        choices=["static", "bottom-level"],
        default="static",
        help="task priorities: static CHAMELEON-style panel priorities or "
        "critical-path bottom levels (tile-h threaded path)",
    )
    parser.add_argument(
        "--nested",
        action="store_true",
        help="expand H-structured tile kernels into fine-grain subtask DAGs "
        "(nested task parallelism; tile-h only)",
    )
    parser.add_argument(
        "--nested-min-leaf",
        type=int,
        default=128,
        metavar="N",
        help="granularity cutoff for --nested: blocks with min dimension "
        "<= N stay opaque tasks (default 128)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed for x0")
    parser.add_argument(
        "--racecheck",
        action="store_true",
        help="verify declared task access modes against actual memory effects "
        "(runtime race detector) and validate simulated schedules against the DAG",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="profile the build/factorise/solve pipeline and write a "
        "schema-valid run report (JSON) to PATH; view with 'repro report PATH'",
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="PATH",
        default=None,
        help="export the threaded execution trace (with queue-depth and "
        "H-memory counter tracks) as Chrome tracing JSON for Perfetto",
    )
    return parser


def report_main(argv: list[str]) -> int:
    """The ``repro report`` subcommand: validate + render a run report,
    or compare two reports side by side (``--diff A.json B.json``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Validate and pretty-print a run report written by --profile",
    )
    parser.add_argument("path", nargs="?", default=None, help="run-report JSON file")
    parser.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                        help="compare two run reports side by side and flag "
                        "regressions beyond --threshold")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression threshold for --diff "
                        "(default 0.10 = 10%%)")
    args = parser.parse_args(argv)
    from .obs import diff_reports, load_report, render_report, validate_report

    if args.diff is not None:
        reports = []
        for path in args.diff:
            try:
                reports.append(load_report(path))
            except (OSError, ValueError) as exc:
                print(f"error: cannot read report {path}: {exc}", file=sys.stderr)
                return 2
        text, regressions = diff_reports(
            reports[0], reports[1], threshold=args.threshold
        )
        try:
            print(text)
        except BrokenPipeError:
            sys.stderr.close()
            return 0
        return 1 if regressions else 0
    if args.path is None:
        parser.error("a report path (or --diff A B) is required")
    try:
        report = load_report(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read report {args.path}: {exc}", file=sys.stderr)
        return 2
    errors = validate_report(report)
    if errors:
        print(f"error: {args.path} is not a valid run report:", file=sys.stderr)
        for e in errors[:10]:
            print(f"  {e}", file=sys.stderr)
        return 1
    try:
        print(render_report(report))
    except BrokenPipeError:  # e.g. `repro report run.json | head`
        sys.stderr.close()  # suppress the interpreter's shutdown warning
    return 0


def trace_main(argv: list[str]) -> int:
    """The ``repro trace`` subcommand: export captured request traces.

    Sources (pick one): ``--url`` pulls /tracez from a live server;
    ``--report`` reads the ``tracing`` section of a run report.  By default
    every available trace is merged into one chrome trace; ``--request ID``
    exports a single request's trace.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Export request traces (chrome trace JSON for Perfetto)",
    )
    src = parser.add_mutually_exclusive_group(required=True)
    src.add_argument("--url", default=None,
                     help="pull recent traces from a live server's /tracez")
    src.add_argument("--report", default=None, metavar="PATH",
                     help="read traces from a run report's tracing section")
    parser.add_argument("--request", default=None, metavar="ID",
                        help="export only the trace with this trace id")
    parser.add_argument("--limit", type=int, default=20,
                        help="max traces to pull from --url (default 20)")
    parser.add_argument("--out", default="requests.trace.json", metavar="PATH",
                        help="output chrome-trace path (default requests.trace.json)")
    args = parser.parse_args(argv)
    from .obs import export_request_chrome_trace

    if args.url is not None:
        from .service.errors import ServiceError
        from .service.http import SolveClient

        client = SolveClient(args.url)
        try:
            payload = client.tracez(trace_id=args.request, limit=args.limit)
        except (ServiceError, OSError) as exc:
            print(f"error: cannot fetch traces from {args.url}: {exc}",
                  file=sys.stderr)
            return 2
        if not payload.get("enabled", False):
            print("error: tracing is disabled on the server "
                  "(serve with --trace-requests N)", file=sys.stderr)
            return 1
        if args.request is not None:
            if not payload.get("found"):
                print(f"error: trace {args.request} not found (evicted or "
                      "never captured)", file=sys.stderr)
                return 1
            traces = [payload["trace"]]
        else:
            traces = payload.get("traces", [])
        source = args.url
    else:
        import json as _json

        try:
            with open(args.report) as fh:
                report = _json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read report {args.report}: {exc}",
                  file=sys.stderr)
            return 2
        tracing = report.get("tracing")
        if not tracing:
            print(f"error: {args.report} has no tracing section "
                  "(profile a run with tracing enabled)", file=sys.stderr)
            return 1
        traces = tracing.get("recent", [])
        if args.request is not None:
            traces = [t for t in traces if t.get("trace_id") == args.request]
            if not traces:
                print(f"error: trace {args.request} not in {args.report}",
                      file=sys.stderr)
                return 1
        source = args.report
    if not traces:
        print("error: no traces captured yet", file=sys.stderr)
        return 1
    export_request_chrome_trace(traces, args.out, metadata={"source": source})
    print(f"trace     : {len(traces)} request trace(s) written to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "report":
        return report_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "serve":
        from .service.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "request":
        from .service.cli import request_main

        return request_main(argv[1:])
    if argv and argv[0] == "gp":
        from .gp.cli import gp_main

        return gp_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.n < 2:
        print("error: --n must be at least 2", file=sys.stderr)
        return 2

    if args.exec_mode in ("threaded", "process"):
        if args.racecheck:
            print("error: --racecheck is eager-only (per-task fingerprints need "
                  f"kernels to run at submission); drop --exec {args.exec_mode}",
                  file=sys.stderr)
            return 2
        if args.format == "blr":
            print("error: --exec threaded supports --format tile-h and hmat only",
                  file=sys.stderr)
            return 2
        if args.exec_mode == "process" and args.format != "tile-h":
            print("error: --exec process supports --format tile-h only",
                  file=sys.stderr)
            return 2
        if args.nworkers < 1:
            print("error: --nworkers must be at least 1", file=sys.stderr)
            return 2

    if args.nested and args.format != "tile-h":
        print("error: --nested expands Tile-H kernels; use --format tile-h",
              file=sys.stderr)
        return 2
    if args.nested_min_leaf < 1:
        print("error: --nested-min-leaf must be at least 1", file=sys.stderr)
        return 2

    points = cylinder_cloud(args.n)
    kernel = make_kernel("laplace" if args.precision == "d" else "helmholtz", points)
    nb = args.nb if args.nb is not None else max(64, args.n // 16)

    print(f"test case : cylinder, n={args.n}, precision={args.precision}")
    print(f"format    : {args.format} (nb={nb}, eps={args.eps:g}, leaf={args.leaf_size})")
    if args.exec_mode in ("threaded", "process"):
        kind = "worker threads" if args.exec_mode == "threaded" else "worker processes"
        print(f"executor  : {args.exec_mode}, {args.nworkers} {kind}, "
              f"scheduler={args.scheduler}, priorities={args.priority_mode}")

    tile_config = TileHConfig(
        nb=nb, eps=args.eps, leaf_size=args.leaf_size, racecheck=args.racecheck,
        exec_mode=args.exec_mode, nworkers=args.nworkers,
        scheduler=args.scheduler, priority_mode=args.priority_mode,
        nested=args.nested, nested_min_leaf=args.nested_min_leaf,
    )
    if args.method != "lu" and args.format != "tile-h":
        print("error: --method cholesky is only supported with --format tile-h",
              file=sys.stderr)
        return 2

    rng = np.random.default_rng(args.seed)
    x0 = rng.standard_normal(args.n)
    if args.precision == "z":
        x0 = x0 + 1j * rng.standard_normal(args.n)
    b = streamed_matvec(kernel, points, x0)

    probe = None
    if args.profile is not None or args.chrome_trace is not None:
        from .obs import Instrumentation

        probe = Instrumentation()

    try:
        if probe is not None:
            probe.__enter__()
        if args.format == "tile-h" and args.exec_mode in ("threaded", "process"):
            # Fused pipeline: one deferred graph holds both the per-tile
            # assemble tasks and the factorisation tasks, so early panels
            # factorise while late tiles are still assembling.
            t0 = time.perf_counter()
            solver, info = TileHMatrix.build_factorize(
                kernel, points, tile_config, method=args.method
            )
            t_fused = time.perf_counter() - t0
            print(f"assembly  : fused with factorisation, "
                  f"compression {solver.compression_ratio():.1%} of dense")
            print(
                f"factorise : {t_fused:.2f} s wall (fused build+factorise), "
                f"{info.sequential_seconds():.2f} s kernel time, "
                f"{info.n_tasks} tasks, {info.n_dependencies} dependencies"
            )
        else:
            t0 = time.perf_counter()
            if args.format == "tile-h":
                solver = TileHMatrix.build(kernel, points, tile_config)
                ratio = solver.compression_ratio()
            elif args.format == "blr":
                solver = BLRMatrix.build(kernel, points, tile_config)
                ratio = solver.compression_ratio()
            else:
                solver = HMatSolver(
                    kernel, points, eps=args.eps, leaf_size=args.leaf_size,
                    racecheck=args.racecheck, exec_mode=args.exec_mode,
                    nworkers=args.nworkers,
                    scheduler=args.scheduler if args.exec_mode == "threaded" else "lws",
                )
                ratio = solver.compression_ratio()
            t_build = time.perf_counter() - t0
            print(f"assembly  : {t_build:.2f} s, compression {ratio:.1%} of dense")

            t0 = time.perf_counter()
            if args.format == "tile-h":
                info = solver.factorize(method=args.method)
            else:
                info = solver.factorize()
            t_fact = time.perf_counter() - t0
            print(
                f"factorise : {t_fact:.2f} s wall, {info.sequential_seconds():.2f} s kernel time, "
                f"{info.n_tasks} tasks, {info.n_dependencies} dependencies"
            )

        if args.exec_mode in ("threaded", "process"):
            threaded_trace = getattr(info, "trace", None)
            threaded_graph = info.graph
            if threaded_trace is None:
                # hmat path: the threaded part is the leaf assembly.
                threaded_trace = getattr(solver, "assembly_trace", None)
                threaded_graph = getattr(solver, "assembly_graph", None)
            if threaded_trace is not None:
                violations = validate_trace(threaded_graph, threaded_trace, strict=False)
                if violations:
                    print(f"error: threaded trace violates the DAG: {violations[:3]}",
                          file=sys.stderr)
                    return 1
                print(f"trace     : {len(threaded_trace.events)} {args.exec_mode} "
                      "events validated as a linear extension of the DAG")

        nested_info = getattr(info, "nested", None)
        if nested_info:
            print(
                f"nested    : {nested_info['expanded_tasks']} tile kernels "
                f"expanded into {nested_info['subtasks']} subtasks "
                f"(min_leaf {nested_info['min_leaf']}), critical path "
                f"{nested_info['critical_path_before']:.4g} -> "
                f"{nested_info['critical_path_after']:.4g} "
                f"{nested_info['cost_attr']}"
            )

        x = solver.solve(b)
        print(f"solve     : forward error {forward_error(x, x0):.2e} (eps={args.eps:g})")
        if args.racecheck and info.racecheck is not None:
            print(f"racecheck : {info.racecheck.summary()}")
    finally:
        # Deactivate before the simulated replays below so their scheduler
        # counters never pollute the measured run's report.
        if probe is not None:
            probe.__exit__(None, None, None)

    if probe is not None:
        from .obs import build_run_report, write_report
        from .runtime import export_chrome_trace

        run_trace = getattr(info, "trace", None)
        if args.profile is not None:
            report = build_run_report(
                probe=probe,
                trace=run_trace,
                graph=info.graph,
                nested=getattr(info, "nested", None),
                meta={
                    "n": args.n,
                    "precision": args.precision,
                    "format": args.format,
                    "nb": nb,
                    "eps": args.eps,
                    "exec_mode": args.exec_mode,
                    "scheduler": args.scheduler,
                    "nworkers": args.nworkers if args.exec_mode != "eager" else 1,
                },
            )
            write_report(report, args.profile)
            print(f"profile   : run report written to {args.profile}")
        if args.chrome_trace is not None:
            if run_trace is None:
                print("warning: --chrome-trace needs a threaded run "
                      "(--exec threaded); no trace written", file=sys.stderr)
            else:
                export_chrome_trace(
                    run_trace,
                    args.chrome_trace,
                    counters=probe.series,
                    metadata={"scheduler": args.scheduler},
                )
                print(f"trace     : Chrome trace written to {args.chrome_trace}")

    rows = []
    for p in args.threads:
        r = info.simulate(p, args.scheduler, overheads=PAPER_EQUIVALENT_OVERHEADS)
        if args.racecheck and r.trace is not None:
            validate_trace(info.graph, r.trace)
        rows.append([p, f"{r.makespan:.4f}", f"{r.speedup_vs_serial:.1f}",
                     f"{r.efficiency:.0%}"])
    print()
    print(format_table(
        ["workers", "LU seconds", "speedup", "efficiency"],
        rows,
        title=f"virtual-machine replay [{args.scheduler}]",
    ))
    if args.racecheck:
        print(f"racecheck : {len(args.threads)} simulated schedules validated "
              "as linear extensions of the DAG")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
