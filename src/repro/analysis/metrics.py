"""Numerical and parallel-performance metrics used by the experiments."""

from __future__ import annotations

import numpy as np

__all__ = ["forward_error", "relative_residual", "speedup_curve", "parallel_efficiency"]


def forward_error(x: np.ndarray, x_ref: np.ndarray) -> float:
    """``||x - x_ref|| / ||x_ref||`` — the paper's Fig. 5 metric.

    (The paper writes ``||x - x0||_f / ||x||_f``; for the tiny errors involved
    the two normalisations are indistinguishable.)
    """
    x = np.asarray(x)
    x_ref = np.asarray(x_ref)
    if x.shape != x_ref.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {x_ref.shape}")
    denom = float(np.linalg.norm(x_ref))
    if denom == 0.0:
        return float(np.linalg.norm(x))
    return float(np.linalg.norm(x - x_ref)) / denom


def relative_residual(matvec, x: np.ndarray, b: np.ndarray) -> float:
    """``||A x - b|| / ||b||`` with a matrix-free operator."""
    b = np.asarray(b)
    r = matvec(x) - b
    denom = float(np.linalg.norm(b))
    if denom == 0.0:
        return float(np.linalg.norm(r))
    return float(np.linalg.norm(r)) / denom


def speedup_curve(times: dict[int, float]) -> dict[int, float]:
    """Speedups relative to the 1-worker entry of a {threads: seconds} map."""
    if 1 not in times:
        raise ValueError("speedup_curve needs the 1-thread time as reference")
    t1 = times[1]
    return {p: t1 / t for p, t in sorted(times.items())}


def parallel_efficiency(times: dict[int, float]) -> dict[int, float]:
    """Efficiency (speedup / p) per thread count."""
    return {p: s / p for p, s in speedup_curve(times).items()}
