"""Tile-size advisor (the paper's Section VI open problem).

"Defining a way to discover the best tile size for a given matrix size and
number of threads without having the necessity of testing several
combinations is also an interesting open research area ... Solutions based
on compression estimations could be studied to give hints to the user based
on the matrix structure."

The advisor implements exactly that suggestion:

1. for each candidate NB it *estimates* (never builds the full matrix):
   * compression — by assembling a small sample of tiles and extrapolating
     the storage ratio;
   * parallel time — from an analytic cost model of the tiled-LU DAG
     (per-kernel flop costs from the sampled ranks, Graham-style bound
     ``max(total_work / p, critical_path)`` plus per-task runtime overhead);
2. it returns the candidate minimising the estimated ``p``-worker time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.clustering import build_tile_h_clustering
from ..dense import flops_gemm, flops_getrf, flops_trsm
from ..hmatrix import AssemblyConfig, assemble_hmatrix

__all__ = ["TileSizeAdvice", "advise_tile_size"]


@dataclass(frozen=True)
class TileSizeAdvice:
    """One candidate's estimates (all per the cheap probe, not a real run)."""

    nb: int
    nt: int
    est_compression: float
    est_total_flops: float
    est_critical_flops: float
    est_seconds: float


def _sample_tiles(clustering, kernel, points, eps, rng) -> tuple[float, float]:
    """Assemble a few representative tiles; return (storage_ratio, mean_rank).

    Samples one diagonal tile, one near-diagonal and up to two far
    off-diagonal tiles — the three regimes of the Tile-H layout.
    """
    nt = clustering.nt
    picks = {(0, 0)}
    if nt > 1:
        picks.add((1, 0))
        picks.add((0, nt - 1))
    if nt > 3:
        picks.add((nt // 2, 0))
    storage = 0.0
    dense = 0.0
    ranks: list[int] = []
    for i, j in picks:
        bt = clustering.block_tree(i, j)
        h = assemble_hmatrix(kernel, points, bt, AssemblyConfig(eps=eps))
        storage += h.storage()
        m, n = h.shape
        dense += m * n
        ranks.append(max(h.max_rank(), 1))
    return storage / dense, float(np.mean(ranks))


def advise_tile_size(
    kernel,
    points: np.ndarray,
    *,
    nworkers: int = 35,
    candidates: list[int] | None = None,
    eps: float = 1e-4,
    leaf_size: int = 64,
    flops_per_second: float = 2e9,
    per_task_overhead: float = 2e-6,
) -> tuple[TileSizeAdvice, list[TileSizeAdvice]]:
    """Recommend a tile size NB for ``nworkers`` workers.

    Returns ``(best, all_candidates)``.  The probe assembles O(1) tiles per
    candidate, so the total cost is a small fraction of one real assembly.

    Parameters
    ----------
    flops_per_second:
        Sustained kernel throughput used to convert modelled flops into
        seconds (calibrate once per machine).
    per_task_overhead:
        Runtime cost per task (StarPU-like), which penalises very small NB.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n < 2:
        raise ValueError("need at least 2 points")
    if nworkers < 1:
        raise ValueError("nworkers must be >= 1")
    if candidates is None:
        base = max(32, n // 64)
        candidates = sorted(
            {max(32, min(n, c)) for c in (base, 2 * base, 4 * base, 8 * base, 16 * base)}
        )
    if not candidates:
        raise ValueError("no tile-size candidates")
    rng = np.random.default_rng(0)
    is_c = kernel.is_complex

    advices: list[TileSizeAdvice] = []
    for nb in candidates:
        nt = math.ceil(n / nb)
        clustering = build_tile_h_clustering(pts, nb, leaf_size=min(leaf_size, nb))
        ratio, mean_rank = _sample_tiles(clustering, kernel, pts, eps, rng)

        # Per-kernel cost model: H-kernels on NB tiles cost roughly the dense
        # cost scaled by the storage ratio (the fraction of entries actually
        # touched), floored at the low-rank work ~ nb^2 * rank.
        scale_f = max(ratio, mean_rank * 2.0 / nb)
        c_getrf = flops_getrf(nb, is_complex=is_c) * scale_f
        c_trsm = flops_trsm(nb, nb, is_complex=is_c) * scale_f
        c_gemm = flops_gemm(nb, nb, nb, is_complex=is_c) * scale_f

        n_getrf = nt
        n_trsm = nt * (nt - 1)
        n_gemm = sum((nt - 1 - k) ** 2 for k in range(nt))
        total = n_getrf * c_getrf + n_trsm * c_trsm + n_gemm * c_gemm
        # Critical path of the tiled RL-LU: getrf -> trsm -> gemm per panel.
        critical = nt * c_getrf + (nt - 1) * (c_trsm + c_gemm)
        n_tasks = n_getrf + n_trsm + n_gemm

        seconds = (
            max(total / nworkers, critical) / flops_per_second
            + n_tasks * per_task_overhead / min(nworkers, nt)
        )
        advices.append(
            TileSizeAdvice(
                nb=nb,
                nt=nt,
                est_compression=ratio,
                est_total_flops=total,
                est_critical_flops=critical,
                est_seconds=seconds,
            )
        )
    best = min(advices, key=lambda a: a.est_seconds)
    return best, advices
