"""Fixed-width tables and CSV output for the benchmark harness."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["format_table", "write_csv", "series_by"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render rows as an aligned text table (what the benches print)."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(path: str | Path, headers: Sequence[str], rows: Iterable[Sequence]) -> Path:
    """Write rows to a CSV file, creating parent directories."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return p


def series_by(rows: Iterable, key, x, y) -> dict:
    """Group rows into {key: [(x, y), ...]} plot series.

    ``key``, ``x``, ``y`` are attribute names (for dataclass rows) or
    callables.
    """
    def get(row, spec):
        return spec(row) if callable(spec) else getattr(row, spec)

    out: dict = {}
    for row in rows:
        out.setdefault(get(row, key), []).append((get(row, x), get(row, y)))
    for pts in out.values():
        pts.sort()
    return out
