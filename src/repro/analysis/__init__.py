"""Analysis layer: metrics, experiment drivers, and report rendering.

Everything the benchmark harness needs to regenerate the paper's figures:
forward-error and compression metrics (:mod:`.metrics`), parameterised
experiment drivers shared by the benches (:mod:`.experiments`), and
fixed-width table / CSV rendering (:mod:`.reporting`).
"""

from .metrics import (
    forward_error,
    relative_residual,
    speedup_curve,
    parallel_efficiency,
)
from .experiments import (
    ExperimentScale,
    CompressionRow,
    AccuracyRow,
    ParallelRow,
    run_compression_experiment,
    run_accuracy_experiment,
    run_parallel_experiment,
    paper_nb,
)
from .reporting import format_table, write_csv, series_by
from .autotune import TileSizeAdvice, advise_tile_size

__all__ = [
    "forward_error",
    "relative_residual",
    "speedup_curve",
    "parallel_efficiency",
    "ExperimentScale",
    "CompressionRow",
    "AccuracyRow",
    "ParallelRow",
    "run_compression_experiment",
    "run_accuracy_experiment",
    "run_parallel_experiment",
    "paper_nb",
    "format_table",
    "write_csv",
    "series_by",
    "TileSizeAdvice",
    "advise_tile_size",
]
