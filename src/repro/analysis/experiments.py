"""Parameterised experiment drivers shared by the benchmark harness.

Each driver regenerates the data behind one of the paper's figures at a
configurable scale.  The paper runs N in [10K, 200K] on a 36-core node; a
pure-Python reproduction runs the same *sweeps* at N scaled down by
``ExperimentScale`` (default 1/10, override with the ``REPRO_SCALE``
environment variable) while keeping every structural parameter — tile-size
ratios, thread counts, schedulers, accuracy — faithful to the paper.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..baselines import HMatSolver
from ..core import TileHConfig, TileHMatrix
from ..geometry import cylinder_cloud, make_kernel, streamed_matvec
from ..runtime import RuntimeOverheadModel
from .metrics import forward_error

__all__ = [
    "ExperimentScale",
    "CompressionRow",
    "AccuracyRow",
    "ParallelRow",
    "paper_nb",
    "run_compression_experiment",
    "run_accuracy_experiment",
    "run_parallel_experiment",
]

#: Thread counts on the x-axis of Figs. 6-7.
PAPER_THREADS = (1, 2, 3, 9, 18, 36)

#: Our NumPy leaf kernels run roughly an order of magnitude slower than the
#: MKL kernels StarPU drives on the paper's testbed (~300 us per HMAT leaf
#: task here vs tens of us there).  What governs the scheduling behaviour is
#: the *ratio* of runtime overhead to kernel cost, so the paper-equivalent
#: overhead model scales StarPU's measured ~2 us/task and ~0.5 us/edge by
#: this factor.
PYTHON_KERNEL_SLOWDOWN = 12.0

#: Default overhead model of the Figs. 6-7 reproduction.  ``serialized=True``
#: charges task/dependency handling to a shared runtime core — dependency
#: tracking contends on shared runtime state, which is the mechanism the
#: paper blames for the fine-grain HMAT DAG losing the cheap-kernel (real
#: double) cases while staying competitive when kernels are expensive
#: (complex double).  EXPERIMENTS.md documents the calibration.
PAPER_EQUIVALENT_OVERHEADS = RuntimeOverheadModel(
    per_task=2e-6 * PYTHON_KERNEL_SLOWDOWN,
    per_dependency=5e-7 * PYTHON_KERNEL_SLOWDOWN,
    serialized=True,
)

#: The paper dedicates one of the 36 cores to task submission, so
#: H-Chameleon never uses more than 35 workers.
MAX_TILE_H_WORKERS = 35

#: Tile sizes (NB) the paper's figure captions give per (N, precision).
_PAPER_NB = {
    (10_000, "d"): 250,
    (10_000, "z"): 500,
    (20_000, "d"): 500,
    (20_000, "z"): 500,
    (40_000, "d"): 1000,
    (40_000, "z"): 1000,
    (80_000, "d"): 1000,
    (80_000, "z"): 2000,
    (100_000, "d"): 1000,
    (100_000, "z"): 2000,
    (200_000, "d"): 2000,
    (200_000, "z"): 4000,
}

_PRECISION_KERNEL = {"d": "laplace", "z": "helmholtz"}


def paper_nb(paper_n: int, precision: str) -> int:
    """NB the paper used for a given (N, precision), from Figs. 6-7 captions."""
    try:
        return _PAPER_NB[(paper_n, precision)]
    except KeyError:
        raise ValueError(
            f"the paper reports no NB for N={paper_n}, precision={precision!r}"
        ) from None


@dataclass(frozen=True)
class ExperimentScale:
    """Scales the paper's problem sizes down to reproduction scale.

    ``factor = 0.1`` maps N=10K to 1000 unknowns.  NB scales with the same
    factor so the tile count nt = N/NB — which fixes the DAG shape and hence
    the scaling behaviour — matches the paper exactly.
    """

    factor: float = 0.1

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Read ``REPRO_SCALE`` (a float, default 0.1)."""
        raw = os.environ.get("REPRO_SCALE", "0.1")
        try:
            factor = float(raw)
        except ValueError:
            raise ValueError(f"REPRO_SCALE must be a float, got {raw!r}") from None
        if factor <= 0:
            raise ValueError(f"REPRO_SCALE must be positive, got {factor}")
        return cls(factor=factor)

    def n(self, paper_n: int) -> int:
        return max(64, int(round(paper_n * self.factor)))

    def nb(self, paper_nb_value: int, floor: int = 16) -> int:
        """Scaled tile size.

        Parallel experiments pass ``floor=64``: tiles much smaller than that
        carry so little numerical work that Python call dispatch (absent on
        the paper's testbed) would dominate the measured task costs.
        """
        return max(floor, int(round(paper_nb_value * self.factor)))


@dataclass(frozen=True)
class CompressionRow:
    """One point of Fig. 4."""

    version: str  # "h-chameleon" or "hmat-oss"
    precision: str  # "d" or "z"
    n: int
    nb: int
    ratio: float


@dataclass(frozen=True)
class AccuracyRow:
    """One point of Fig. 5."""

    version: str
    precision: str
    n: int
    nb: int
    fwd_error: float


@dataclass(frozen=True)
class ParallelRow:
    """One point of Figs. 6-7."""

    version: str  # "hmat", "ws", "lws", "prio"
    precision: str
    n: int
    nb: int
    threads: int
    seconds: float


def _build_kernel(precision: str, points: np.ndarray):
    try:
        name = _PRECISION_KERNEL[precision]
    except KeyError:
        raise ValueError(f"precision must be 'd' or 'z', got {precision!r}") from None
    return make_kernel(name, points)


def run_compression_experiment(
    precision: str,
    n_values: list[int],
    nb_values: list[int],
    *,
    eps: float = 1e-4,
    leaf_size: int = 48,
) -> list[CompressionRow]:
    """Fig. 4 data: compression ratio vs NB, H-Chameleon vs HMAT-OSS.

    The HMAT-OSS ratio is computed once per N (its H-structure does not
    depend on NB) and repeated across the NB axis, reproducing the flat
    dashed reference line.
    """
    rows: list[CompressionRow] = []
    for n in n_values:
        pts = cylinder_cloud(n)
        kern = _build_kernel(precision, pts)
        hm = HMatSolver(kern, pts, eps=eps, leaf_size=leaf_size)
        hm_ratio = hm.compression_ratio()
        for nb in nb_values:
            if nb >= n:
                continue
            a = TileHMatrix.build(
                kern, pts, TileHConfig(nb=nb, eps=eps, leaf_size=min(leaf_size, nb))
            )
            rows.append(CompressionRow("h-chameleon", precision, n, nb, a.compression_ratio()))
            rows.append(CompressionRow("hmat-oss", precision, n, nb, hm_ratio))
    return rows


def run_accuracy_experiment(
    precision: str,
    n_values: list[int],
    nb_values: list[int],
    *,
    eps: float = 1e-4,
    leaf_size: int = 48,
    seed: int = 0,
) -> list[AccuracyRow]:
    """Fig. 5 data: H-LU forward error vs NB for both versions.

    ``b = A x0`` is built with the *exact* (streamed dense) operator so the
    measured error includes both compression and factorisation effects.
    """
    rows: list[AccuracyRow] = []
    rng = np.random.default_rng(seed)
    for n in n_values:
        pts = cylinder_cloud(n)
        kern = _build_kernel(precision, pts)
        x0 = rng.standard_normal(n)
        if precision == "z":
            x0 = x0 + 1j * rng.standard_normal(n)
        b = streamed_matvec(kern, pts, x0)

        hm = HMatSolver(kern, pts, eps=eps, leaf_size=leaf_size)
        hm_err = forward_error(hm.gesv(b), x0)
        for nb in nb_values:
            if nb >= n:
                continue
            a = TileHMatrix.build(
                kern, pts, TileHConfig(nb=nb, eps=eps, leaf_size=min(leaf_size, nb))
            )
            x = a.gesv(b)
            rows.append(AccuracyRow("h-chameleon", precision, n, nb, forward_error(x, x0)))
            rows.append(AccuracyRow("hmat-oss", precision, n, nb, hm_err))
    return rows


def run_parallel_experiment(
    precision: str,
    n: int,
    nb: int,
    *,
    eps: float = 1e-4,
    leaf_size: int = 48,
    threads: tuple[int, ...] = PAPER_THREADS,
    schedulers: tuple[str, ...] = ("ws", "lws", "prio"),
    overheads: RuntimeOverheadModel | None = None,
    hmat_scheduler: str = "lws",
) -> list[ParallelRow]:
    """Figs. 6-7 data: LU time vs thread count, schedulers vs pure HMAT.

    The factorisations run once (real numerics, measured per-task costs);
    each (scheduler, p) point is a discrete-event replay of the recorded
    DAG.  H-Chameleon caps workers at 35 (dedicated submission core); the
    HMAT baseline uses all 36, as in the paper.  Overheads default to
    :data:`PAPER_EQUIVALENT_OVERHEADS` (StarPU costs scaled to this
    substrate's kernel speed).
    """
    ovh = overheads if overheads is not None else PAPER_EQUIVALENT_OVERHEADS
    pts = cylinder_cloud(n)
    kern = _build_kernel(precision, pts)
    rows: list[ParallelRow] = []

    a = TileHMatrix.build(kern, pts, TileHConfig(nb=nb, eps=eps, leaf_size=min(leaf_size, nb)))
    info = a.factorize()
    for sched in schedulers:
        for p in threads:
            workers = min(p, MAX_TILE_H_WORKERS)
            r = info.simulate(workers, sched, overheads=ovh)
            rows.append(ParallelRow(sched, precision, n, nb, p, r.makespan))

    hm = HMatSolver(kern, pts, eps=eps, leaf_size=leaf_size)
    hinfo = hm.factorize()
    for p in threads:
        r = hinfo.simulate(p, hmat_scheduler, overheads=ovh)
        rows.append(ParallelRow("hmat", precision, n, nb, p, r.makespan))
    return rows
