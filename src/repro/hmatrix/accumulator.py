"""Accumulator-based rounded H-arithmetic (Börm-Christophersen style).

The dominant cost of H-LU is the QR+QR+SVD rounding that follows every
rank-growing addition: a tile that receives ``nt - k`` trailing-matrix GEMM
updates in Algorithm 1 pays ``nt - k`` full recompressions when each update
is rounded eagerly.  The :class:`UpdateAccumulator` instead *buffers* the
pending low-rank (and dense) contributions per target leaf and rounds once
when the leaf is next read — the semantics of accumulator arithmetic from
"Semi-Automatic Task Graph Construction for H-Matrix Arithmetic": collecting
updates and truncating the stacked factors in one pass is both cheaper and
no less accurate than the eager chain of pairwise rounded additions.

Usage contract (the *flush-before-read* discipline):

* ``axpy``-style writers (:meth:`HMatrix.axpy_rk`, :meth:`HMatrix.axpy_dense`,
  and the H-GEMM paths above them) pass the accumulator down and defer the
  rounding of Rk-leaf updates;
* any kernel that *reads* a block (GETRF and the TRSM panel solves) flushes
  the pending updates under that block first — the tiled task layer does
  this once per panel step, so the R/W/RW access modes declared to the STF
  engine still cover every actual data access and the inferred DAG stays
  sound;
* a memory cap bounds the buffered factors: exceeding it triggers an early
  flush of the largest pending block.

Dense leaves are never buffered: adding into a dense block is a plain ``+=``
with no rounding to amortise.
"""

from __future__ import annotations

import numpy as np

from ..obs.instrument import current as _current_probe
from .rk import RkMatrix, compress_dense

__all__ = ["UpdateAccumulator"]


class _Pending:
    """Buffered updates for one Rk leaf."""

    __slots__ = ("leaf", "rk_terms", "dense", "scalars")

    def __init__(self, leaf) -> None:
        self.leaf = leaf
        self.rk_terms: list[RkMatrix] = []
        self.dense: np.ndarray | None = None
        self.scalars = 0


class UpdateAccumulator:
    """Buffers pending Rk/dense updates per block; rounds once on flush.

    Parameters
    ----------
    eps:
        Rounding accuracy applied at flush time (same contract as
        :meth:`RkMatrix.add`).
    max_pending_scalars:
        Memory cap on the total buffered factor entries across all blocks.
        Exceeding it flushes the block with the largest pending footprint
        until the total fits again (early flush), so peak memory stays
        bounded regardless of how many updates a tile receives.
    """

    def __init__(self, eps: float, *, max_pending_scalars: int = 4_000_000) -> None:
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        if max_pending_scalars < 1:
            raise ValueError("max_pending_scalars must be positive")
        self.eps = eps
        self.max_pending_scalars = max_pending_scalars
        self._pending: dict[int, _Pending] = {}
        self._total_scalars = 0
        # Introspection counters (tests and benchmark reporting).
        self.n_deferred = 0
        self.n_flushed_blocks = 0
        self.n_early_flushes = 0

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "UpdateAccumulator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()

    # -- queries -------------------------------------------------------------
    @property
    def pending_blocks(self) -> int:
        return len(self._pending)

    @property
    def pending_scalars(self) -> int:
        """Total buffered factor entries (the memory-cap metric)."""
        return self._total_scalars

    def has_pending(self, node) -> bool:
        """True if ``node`` (a leaf or subtree root) has buffered updates.

        Used by the race detector to enforce the flush-before-read
        discipline: a kernel that reads a block must find it flushed.
        """
        if not self._pending:
            return False
        if id(node) in self._pending:
            return True
        if getattr(node, "is_leaf", True):
            return False
        return any(id(leaf) in self._pending for leaf, _, _ in node.leaf_index())

    # -- deferral -------------------------------------------------------------
    def defer_rk(self, leaf, rk: RkMatrix) -> None:
        """Buffer ``leaf.rk += rk`` (rounded later).  ``rk`` is owned."""
        if rk.rank == 0:
            return
        entry = self._entry(leaf)
        entry.rk_terms.append(rk)
        entry.scalars += rk.storage
        self._total_scalars += rk.storage
        self.n_deferred += 1
        probe = _current_probe()
        if probe is not None:
            probe.accumulator_deferred()
        self._enforce_cap()

    def defer_dense(self, leaf, block: np.ndarray) -> None:
        """Buffer ``leaf.rk += block`` (dense contribution, compressed once
        at flush time instead of once per update)."""
        entry = self._entry(leaf)
        if entry.dense is None:
            entry.dense = np.array(block, copy=True)
            entry.scalars += entry.dense.size
            self._total_scalars += entry.dense.size
        else:
            dtype = np.promote_types(entry.dense.dtype, np.asarray(block).dtype)
            if dtype != entry.dense.dtype:
                entry.dense = entry.dense.astype(dtype)
            entry.dense += block
        self.n_deferred += 1
        probe = _current_probe()
        if probe is not None:
            probe.accumulator_deferred()
        self._enforce_cap()

    # -- flushing --------------------------------------------------------------
    def flush(self, node=None) -> int:
        """Apply pending updates (rounding once per block); return the number
        of blocks flushed.

        With ``node=None`` everything is flushed; otherwise only the pending
        entries for the leaves under ``node`` (which may itself be a leaf).
        """
        if not self._pending:
            return 0
        if node is None:
            entries = list(self._pending.values())
            self._pending.clear()
            self._total_scalars = 0
        else:
            entries = []
            popped = self._pending.pop(id(node), None)
            if popped is not None:
                entries.append(popped)
            elif not node.is_leaf:
                for leaf, _, _ in node.leaf_index():
                    e = self._pending.pop(id(leaf), None)
                    if e is not None:
                        entries.append(e)
            for e in entries:
                self._total_scalars -= e.scalars
        for e in entries:
            self._apply(e)
        self.n_flushed_blocks += len(entries)
        if entries:
            probe = _current_probe()
            if probe is not None:
                probe.accumulator_flush(len(entries))
        return len(entries)

    # -- internals ---------------------------------------------------------------
    def _entry(self, leaf) -> _Pending:
        entry = self._pending.get(id(leaf))
        if entry is None:
            entry = _Pending(leaf)
            self._pending[id(leaf)] = entry
        return entry

    def _apply(self, entry: _Pending) -> None:
        leaf = entry.leaf
        terms = [leaf.rk, *entry.rk_terms]
        if entry.dense is not None:
            terms.append(compress_dense(entry.dense, self.eps))
        leaf.rk = RkMatrix.add_many(terms, self.eps)

    def _enforce_cap(self) -> None:
        while self._total_scalars > self.max_pending_scalars and len(self._pending) > 0:
            if len(self._pending) == 1:
                # A single over-cap block: compact it in place.
                (key, entry), = self._pending.items()
            else:
                key, entry = max(self._pending.items(), key=lambda kv: kv[1].scalars)
            del self._pending[key]
            self._total_scalars -= entry.scalars
            self._apply(entry)
            self.n_flushed_blocks += 1
            self.n_early_flushes += 1
            probe = _current_probe()
            if probe is not None:
                probe.accumulator_flush(1, early=True)
