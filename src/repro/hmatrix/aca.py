"""Adaptive Cross Approximation (ACA) for admissible kernel blocks.

ACA with partial pivoting builds ``A ~= U V^T`` from O((m + n) k) kernel
evaluations — it never materialises the block, which is what makes H-matrix
*assembly* (not just arithmetic) log-linear.  This is the compression scheme
the paper cites ([20], Rjasanow) as HMAT-OSS's default; an SVD path and a
fully-pivoted ACA are provided for validation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..obs.instrument import current as _current_probe
from .rk import RkMatrix, compress_dense, compress_dense_rsvd

__all__ = ["aca_partial", "aca_full", "compress_kernel_block"]

#: Residual entries below this (relative to the first pivot) are treated as 0.
_PIVOT_DROP = 1e-14


def aca_partial(
    get_row: Callable[[int], np.ndarray],
    get_col: Callable[[int], np.ndarray],
    m: int,
    n: int,
    eps: float,
    *,
    max_rank: int | None = None,
    recompress: bool = True,
    grace: int = 3,
) -> RkMatrix:
    """Partially pivoted ACA of an ``m x n`` block defined by row/col oracles.

    Parameters
    ----------
    get_row, get_col:
        ``get_row(i)`` returns row ``i`` of the block (length ``n``);
        ``get_col(j)`` returns column ``j`` (length ``m``).
    eps:
        Stopping tolerance: iteration ends when the new cross satisfies
        ``||u_k|| ||v_k|| <= eps * ||A_k||_F`` (the standard heuristic
        estimate of the relative residual).
    max_rank:
        Hard cap on the rank (defaults to ``min(m, n)``).
    recompress:
        Round the ACA factors with QR+SVD to ``eps`` afterwards (ACA ranks
        are typically a few units above optimal).
    grace:
        Number of *consecutive* crosses that must satisfy the stopping
        criterion before iteration ends.  Structured point grids (like the
        cylinder mesh) make single-cross estimates unreliable — the classic
        partial-pivoting failure mode — so a short grace run is required.

    Returns
    -------
    RkMatrix
        The compressed block.  Rank 0 if the block is numerically zero.
    """
    if m <= 0 or n <= 0:
        raise ValueError(f"block dimensions must be positive, got {m} x {n}")
    if eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    limit = min(m, n) if max_rank is None else min(max_rank, m, n)

    probe = np.asarray(get_row(0))
    dtype = probe.dtype
    # Stacked factors in preallocated buffers (columns 0..k are live) so the
    # residual updates below are single GEMVs instead of Python loops over
    # rank-1 terms; capacity doubles as the rank grows.
    cap = min(limit, 8)
    uu = np.empty((m, cap), dtype=dtype)
    vv = np.empty((n, cap), dtype=dtype)
    k = 0
    # Persistent availability masks, updated incrementally as pivots are
    # consumed (no per-iteration rebuild from the used-index sets).
    row_avail = np.ones(m, dtype=bool)
    col_avail = np.ones(n, dtype=bool)
    norm_sq = 0.0  # running estimate of ||A_k||_F^2
    first_pivot = 0.0

    next_row = 0
    small_streak = 0
    rng = np.random.default_rng(0x5EED)

    def residual_row(i: int) -> np.ndarray:
        r = np.array(get_row(i), dtype=dtype, copy=True)
        if k:
            r -= vv[:, :k] @ uu[i, :k]
        return r

    def verify_converged() -> int | None:
        """Sample unused rows; return one with significant residual, if any.

        Partial pivoting can stall with whole regions of the block untouched
        (the classic ACA failure on structured meshes); random row checks
        catch this before declaring convergence.
        """
        unused = np.flatnonzero(row_avail)
        if unused.size == 0:
            return None
        sample = rng.choice(unused, size=min(8, unused.size), replace=False)
        tol = eps * np.sqrt(max(norm_sq, 0.0))
        worst_i, worst = None, tol
        for i in sample:
            rnorm = float(np.linalg.norm(residual_row(int(i))))
            if rnorm > worst:
                worst_i, worst = int(i), rnorm
        return worst_i

    while k < limit:
        r = residual_row(next_row)
        row_avail[next_row] = False

        if not col_avail.any():
            break
        j = int(np.argmax(np.where(col_avail, np.abs(r), -1.0)))
        pivot = r[j]
        if first_pivot == 0.0:
            first_pivot = abs(pivot)
        if abs(pivot) <= _PIVOT_DROP * max(first_pivot, 1e-300):
            # This row is already resolved; look for an unresolved one.
            cont = verify_converged()
            if cont is None:
                break
            next_row = cont
            continue

        v_new = r / pivot
        u_new = np.array(get_col(j), dtype=dtype, copy=True)
        if k:
            u_new -= uu[:, :k] @ vv[j, :k]
        col_avail[j] = False

        # Norm bookkeeping: ||A_{k+1}||^2 = ||A_k||^2 + 2 Re<cross, prev> + ||cross||^2.
        u_norm = float(np.linalg.norm(u_new))
        v_norm = float(np.linalg.norm(v_new))
        if k:
            interact = 2.0 * float(
                np.real(np.sum((uu[:, :k].conj().T @ u_new) * (vv[:, :k].conj().T @ v_new)))
            )
        else:
            interact = 0.0
        norm_sq += interact + (u_norm * v_norm) ** 2
        if k == cap:
            cap = min(limit, 2 * cap)
            uu = np.concatenate([uu, np.empty((m, cap - k), dtype=dtype)], axis=1)
            vv = np.concatenate([vv, np.empty((n, cap - k), dtype=dtype)], axis=1)
        uu[:, k] = u_new
        vv[:, k] = v_new
        k += 1

        if u_norm * v_norm <= eps * np.sqrt(max(norm_sq, 0.0)):
            small_streak += 1
            if small_streak >= grace:
                cont = verify_converged()
                if cont is None:
                    break
                next_row = cont
                small_streak = 0
                continue
        else:
            small_streak = 0

        # Next pivot row: largest remaining entry of the new column.
        if not row_avail.any():
            break
        next_row = int(np.argmax(np.where(row_avail, np.abs(u_new), -1.0)))

    if k == 0:
        return RkMatrix.zeros(m, n, dtype=dtype)
    rk = RkMatrix(np.ascontiguousarray(uu[:, :k]), np.ascontiguousarray(vv[:, :k]))
    if recompress:
        rk = rk.truncate(eps, max_rank)
    probe = _current_probe()
    if probe is not None:
        probe.block_compressed(m, n, rk.rank, rk.u.dtype.itemsize)
    return rk


def aca_full(block: np.ndarray, eps: float, *, max_rank: int | None = None) -> RkMatrix:
    """Fully pivoted ACA of a materialised block (reference implementation).

    O(m n k): the global residual maximum is the pivot at every step.  Used
    in tests as a slower-but-robust cross check of :func:`aca_partial`.
    """
    r = np.array(block, copy=True)
    m, n = r.shape
    limit = min(m, n) if max_rank is None else min(max_rank, m, n)
    ref = float(np.abs(r).max()) if r.size else 0.0
    norm_ref = float(np.linalg.norm(block))
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    for _ in range(limit):
        flat = int(np.argmax(np.abs(r)))
        i, j = divmod(flat, n)
        pivot = r[i, j]
        if abs(pivot) <= _PIVOT_DROP * max(ref, 1e-300):
            break
        u_new = r[:, j].copy()
        v_new = r[i, :] / pivot
        r -= np.outer(u_new, v_new)
        us.append(u_new)
        vs.append(v_new)
        if np.linalg.norm(r) <= eps * max(norm_ref, 1e-300):
            break
    if not us:
        return RkMatrix.zeros(m, n, dtype=block.dtype)
    return RkMatrix(np.column_stack(us), np.column_stack(vs))


def compress_kernel_block(
    kernel,
    row_points: np.ndarray,
    col_points: np.ndarray,
    eps: float,
    *,
    method: str = "aca",
    max_rank: int | None = None,
) -> RkMatrix:
    """Compress the kernel block over two point sets into an Rk block.

    ``method="aca"`` uses partially pivoted ACA (assembly never forms the
    block); ``method="svd"`` forms the dense block and takes the truncated
    SVD (optimal, for validation); ``method="aca_full"`` forms the block and
    runs fully pivoted ACA; ``method="rsvd"`` uses the randomized SVD
    (the paper cites randomized techniques as [21]).
    """
    m = np.atleast_2d(row_points).shape[0]
    n = np.atleast_2d(col_points).shape[0]
    if method == "aca":
        rp = np.atleast_2d(row_points)
        cp = np.atleast_2d(col_points)

        def get_row(i: int) -> np.ndarray:
            return kernel(rp[i : i + 1], cp)[0]

        def get_col(j: int) -> np.ndarray:
            return kernel(rp, cp[j : j + 1])[:, 0]

        return aca_partial(get_row, get_col, m, n, eps, max_rank=max_rank)
    if method == "svd":
        return compress_dense(kernel(row_points, col_points), eps, max_rank)
    if method == "rsvd":
        return compress_dense_rsvd(kernel(row_points, col_points), eps, max_rank=max_rank)
    if method == "aca_full":
        return aca_full(kernel(row_points, col_points), eps, max_rank=max_rank)
    raise ValueError(f"unknown compression method {method!r}")
