"""Low-rank (``Rk``) blocks and truncated ("rounded") arithmetic.

An admissible block is stored as ``A ~= U @ V.T`` with ``U`` (m x k) and ``V``
(n x k).  Every operation that could grow the rank (addition, products) is
followed by *recompression to the accuracy* ``eps`` via the standard
QR+QR+SVD rounding, which is what keeps H-arithmetic log-linear (Section II-A
of the paper).

Note the transpose (not conjugate-transpose) convention: the BEM test kernels
are complex-symmetric, and carrying plain ``V.T`` keeps real and complex code
paths identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import qr, svd

from ..obs.instrument import current as _current_probe

__all__ = ["RkMatrix", "truncate_svd", "compress_dense", "compress_dense_rsvd"]


@dataclass
class RkMatrix:
    """Rank-k representation ``A ~= u @ v.T``.

    ``u`` has shape (m, k), ``v`` shape (n, k); ``k`` may be 0 (exact zero
    block).  Arrays are owned (callers must not mutate them afterwards).
    """

    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        if self.u.ndim != 2 or self.v.ndim != 2:
            raise ValueError("u and v must be 2-D")
        if self.u.shape[1] != self.v.shape[1]:
            raise ValueError(
                f"rank mismatch: u has {self.u.shape[1]} columns, v has {self.v.shape[1]}"
            )

    # -- constructors -------------------------------------------------------
    @classmethod
    def zeros(cls, m: int, n: int, dtype=np.float64) -> "RkMatrix":
        """The exact zero block (rank 0)."""
        return cls(np.zeros((m, 0), dtype=dtype), np.zeros((n, 0), dtype=dtype))

    # -- basic queries -------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.u.shape[0], self.v.shape[0])

    @property
    def rank(self) -> int:
        return self.u.shape[1]

    @property
    def dtype(self) -> np.dtype:
        return self.u.dtype

    @property
    def storage(self) -> int:
        """Number of stored scalars (the compression-ratio numerator)."""
        return self.u.size + self.v.size

    def to_dense(self) -> np.ndarray:
        if self.rank == 0:
            return np.zeros(self.shape, dtype=self.dtype)
        return self.u @ self.v.T

    def copy(self) -> "RkMatrix":
        return RkMatrix(self.u.copy(), self.v.copy())

    def norm_fro(self) -> float:
        """Frobenius norm computed in O((m+n) k^2) without densifying."""
        if self.rank == 0:
            return 0.0
        # ||U V^T||_F^2 = trace((U^H U) conj(V^H V)) with Gram matrices.
        gu = self.u.conj().T @ self.u
        gv = self.v.conj().T @ self.v
        val = float(np.einsum("ij,ji->", gu, gv.conj()).real)
        # Tiny negative values are roundoff in the Gram products.
        return float(np.sqrt(max(val, 0.0)))

    # -- linear maps ----------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` in O((m+n) k) per column of ``x``."""
        if self.rank == 0:
            out_shape = (self.shape[0],) + np.asarray(x).shape[1:]
            return np.zeros(out_shape, dtype=np.promote_types(self.dtype, np.asarray(x).dtype))
        return self.u @ (self.v.T @ x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``A.T @ y`` (plain transpose, matching the storage convention)."""
        if self.rank == 0:
            out_shape = (self.shape[1],) + np.asarray(y).shape[1:]
            return np.zeros(out_shape, dtype=np.promote_types(self.dtype, np.asarray(y).dtype))
        return self.v @ (self.u.T @ y)

    def transpose(self) -> "RkMatrix":
        return RkMatrix(self.v.copy(), self.u.copy())

    def scale(self, alpha) -> "RkMatrix":
        """Return ``alpha * A`` (rank unchanged)."""
        if self.rank == 0:
            return self.copy()
        return RkMatrix(alpha * self.u, self.v.copy())

    # -- rank-growing ops (with rounding) --------------------------------------
    def truncate(self, eps: float, max_rank: int | None = None) -> "RkMatrix":
        """Recompress to relative accuracy ``eps`` (QR+QR+SVD rounding)."""
        return _truncate_rk(self, eps, max_rank)

    def add(self, other: "RkMatrix", eps: float, max_rank: int | None = None) -> "RkMatrix":
        """Rounded addition: ``trunc_eps(self + other)``."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        if other.rank == 0:
            return self.truncate(eps, max_rank) if max_rank is not None else self.copy()
        if self.rank == 0:
            return other.truncate(eps, max_rank) if max_rank is not None else other.copy()
        dtype = np.promote_types(self.dtype, other.dtype)
        u = np.hstack([self.u.astype(dtype, copy=False), other.u.astype(dtype, copy=False)])
        v = np.hstack([self.v.astype(dtype, copy=False), other.v.astype(dtype, copy=False)])
        return _truncate_rk(RkMatrix(u, v), eps, max_rank)

    @staticmethod
    def add_many(terms, eps: float, max_rank: int | None = None) -> "RkMatrix":
        """Rounded sum of Rk terms with a *single* QR+QR+SVD recompression.

        Equivalent in accuracy class to folding ``add`` over ``terms`` —
        ``||sum - result||_F <= eps ||sum||_F`` — but recompresses once at
        total stacked rank instead of once per term (Börm-Christophersen
        accumulator arithmetic).  ``terms`` must be a non-empty sequence of
        equal-shape :class:`RkMatrix`.
        """
        terms = list(terms)
        if not terms:
            raise ValueError("add_many needs at least one term")
        shape = terms[0].shape
        for t in terms[1:]:
            if t.shape != shape:
                raise ValueError(f"shape mismatch in add_many: {t.shape} vs {shape}")
        live = [t for t in terms if t.rank]
        if not live:
            return RkMatrix.zeros(*shape, dtype=terms[0].dtype)
        if len(live) == 1:
            # Match ``add``'s zero-operand short-circuit: a single term is
            # returned untruncated unless a rank cap forces rounding.
            only = live[0]
            return only.truncate(eps, max_rank) if max_rank is not None else only.copy()
        dtype = live[0].dtype
        for t in live[1:]:
            dtype = np.promote_types(dtype, t.dtype)
        u = np.hstack([t.u.astype(dtype, copy=False) for t in live])
        v = np.hstack([t.v.astype(dtype, copy=False) for t in live])
        return _truncate_rk(RkMatrix(u, v), eps, max_rank)


def _truncate_rk(rk: RkMatrix, eps: float, max_rank: int | None = None) -> RkMatrix:
    """QR+QR+SVD rounding of an Rk block to relative Frobenius accuracy eps."""
    if eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    m, n = rk.shape
    k = rk.rank
    if k == 0:
        return rk.copy()
    limit = min(m, n, k)
    qu, ru = qr(rk.u, mode="economic", check_finite=False)
    qv, rv = qr(rk.v, mode="economic", check_finite=False)
    core = ru @ rv.T
    w, s, zh = svd(core, full_matrices=False, check_finite=False)
    new_rank = _truncation_rank(s, eps)
    if max_rank is not None:
        new_rank = min(new_rank, max_rank)
    new_rank = min(new_rank, limit)
    probe = _current_probe()
    if probe is not None:
        probe.recompression(m, n, k, new_rank)
    # core = W S Zh, so A = (Qu W S) (Zh Qv^T): u = Qu W S, v = Qv Zh^T.
    u = qu @ (w[:, :new_rank] * s[:new_rank])
    v = qv @ zh[:new_rank].T
    return RkMatrix(np.ascontiguousarray(u), np.ascontiguousarray(v))


def _truncation_rank(s: np.ndarray, eps: float) -> int:
    """Smallest rank r with ||tail||_F <= eps * ||s||_F (relative Frobenius)."""
    if s.size == 0:
        return 0
    total = float(np.sum(s * s))
    if total == 0.0:
        return 0
    # tail[r] = sum_{i >= r} s_i^2; keep the smallest r whose tail fits.
    tail = np.cumsum((s * s)[::-1])[::-1]
    keep = tail > (eps * eps) * total
    if keep.all():
        return int(s.size)
    return int(np.argmin(keep))  # index of the first False


def truncate_svd(a: np.ndarray, eps: float, max_rank: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Best low-rank factors of a dense block to relative accuracy ``eps``.

    Returns ``(u, v)`` with ``a ~= u @ v.T`` and ``||a - u v^T||_F <=
    eps ||a||_F`` (Frobenius-relative, per the paper's accuracy parameter).
    """
    if a.size == 0:
        return (
            np.zeros((a.shape[0], 0), dtype=a.dtype),
            np.zeros((a.shape[1], 0), dtype=a.dtype),
        )
    w, s, zh = svd(a, full_matrices=False, check_finite=False)
    r = _truncation_rank(s, eps)
    if max_rank is not None:
        r = min(r, max_rank)
    u = w[:, :r] * s[:r]
    v = zh[:r].T
    return np.ascontiguousarray(u), np.ascontiguousarray(v)


def compress_dense(a: np.ndarray, eps: float, max_rank: int | None = None) -> RkMatrix:
    """SVD-compress a dense block into an :class:`RkMatrix`."""
    u, v = truncate_svd(np.asarray(a), eps, max_rank)
    return RkMatrix(u, v)


def compress_dense_rsvd(
    a: np.ndarray,
    eps: float,
    *,
    max_rank: int | None = None,
    oversampling: int = 8,
    n_iter: int = 1,
    seed: int = 0,
) -> RkMatrix:
    """Randomized-SVD compression (Halko/Martinsson/Tropp range finder).

    The randomized alternative the paper cites ([21]) for reducing the cost
    of truncation: sample the range with a Gaussian sketch, orthonormalise
    (with ``n_iter`` power iterations for spectra with slow decay), then run
    the small exact SVD on the projected block.  The achieved rank adapts to
    ``eps``: the sketch width doubles until the residual tolerance is met or
    ``min(m, n)`` is reached.
    """
    a = np.asarray(a)
    m, n = a.shape
    if a.size == 0 or not np.any(a):
        return RkMatrix.zeros(m, n, dtype=a.dtype)
    rng = np.random.default_rng(seed)
    norm_a = float(np.linalg.norm(a))
    limit = min(m, n)
    # With a hard rank cap the sketch never needs to be wider than
    # max_rank + oversampling: anything beyond it is discarded by the final
    # truncation anyway.
    hard = limit if max_rank is None else min(limit, max_rank + oversampling)
    width = min(hard, max(8, oversampling))
    while True:
        omega = rng.standard_normal((n, width))
        if np.iscomplexobj(a):
            omega = omega + 1j * rng.standard_normal((n, width))
        y = a @ omega
        q, _ = qr(y, mode="economic", check_finite=False)
        for _ in range(n_iter):
            # Subspace iteration with re-orthonormalisation: plain power
            # iterations of (A A^H) lose the small singular directions to
            # roundoff.
            z, _ = qr(a.conj().T @ q, mode="economic", check_finite=False)
            q, _ = qr(a @ z, mode="economic", check_finite=False)
        b = q.conj().T @ a
        resid = float(np.sqrt(max(norm_a**2 - np.linalg.norm(b) ** 2, 0.0)))
        if resid <= eps * norm_a:
            break
        if width >= hard:
            if max_rank is None:
                # Sketching cannot certify the tolerance: fall back to the
                # exact SVD (the block is dense in hand anyway).
                return compress_dense(a, eps, max_rank)
            # The rank cap bounds the attainable accuracy; accept the sketch.
            break
        width = min(hard, 2 * width)
    u_small, v = truncate_svd(b, eps, max_rank)
    u = q @ u_small
    if max_rank is not None and u.shape[1] > max_rank:
        u, v = u[:, :max_rank], v[:, :max_rank]
    return RkMatrix(np.ascontiguousarray(u), np.ascontiguousarray(v))
