"""HMAT-OSS substrate: a from-scratch sequential H-matrix library.

Implements everything the paper takes from Airbus' HMAT-OSS:

* geometric cluster trees with median bisection (:mod:`.cluster`),
* the paper's ``NTilesRecursive`` tile-aligned clustering (:mod:`.ntiles`),
* block cluster trees and admissibility conditions (:mod:`.block`),
* low-rank ``Rk`` blocks with rounded (truncated) arithmetic (:mod:`.rk`),
* ACA compression for kernel blocks (:mod:`.aca`),
* the :class:`HMatrix` container with assembly, matvec and memory accounting
  (:mod:`.hmatrix`),
* recursive H-arithmetic: H-GEMM, H-TRSM, H-GETRF (:mod:`.arithmetic`).
"""

from .cluster import ClusterTree, BoundingBox, build_cluster_tree
from .ntiles import ntiles_recursive, tile_roots
from .block import (
    Admissibility,
    StrongAdmissibility,
    WeakAdmissibility,
    BlockClusterTree,
    build_block_cluster_tree,
)
from .rk import RkMatrix, truncate_svd, compress_dense, compress_dense_rsvd
from .aca import aca_partial, aca_full, compress_kernel_block
from .accumulator import UpdateAccumulator
from .hmatrix import (
    HMatrix,
    FullBlock,
    RkBlock,
    assemble_hmatrix,
    assemble_hmatrix_tasks,
    AssemblyConfig,
)
from .io import save_hmatrix, load_hmatrix, save_tile_h, load_tile_h, load_tile_h_meta
from .arithmetic import (
    hgetrf,
    hgeadd,
    to_rk,
    htrsm,
    hgemm,
    hgemm_transb,
    hpotrf,
    hinv,
    hchol_solve,
    hlu_solve,
    KernelTracer,
    set_tracer,
)

__all__ = [
    "ClusterTree",
    "BoundingBox",
    "build_cluster_tree",
    "ntiles_recursive",
    "tile_roots",
    "Admissibility",
    "StrongAdmissibility",
    "WeakAdmissibility",
    "BlockClusterTree",
    "build_block_cluster_tree",
    "RkMatrix",
    "truncate_svd",
    "compress_dense",
    "compress_dense_rsvd",
    "aca_partial",
    "aca_full",
    "compress_kernel_block",
    "UpdateAccumulator",
    "HMatrix",
    "FullBlock",
    "RkBlock",
    "assemble_hmatrix",
    "assemble_hmatrix_tasks",
    "AssemblyConfig",
    "hgetrf",
    "hgeadd",
    "to_rk",
    "htrsm",
    "hgemm",
    "hgemm_transb",
    "hpotrf",
    "hinv",
    "hchol_solve",
    "hlu_solve",
    "KernelTracer",
    "set_tracer",
    "save_hmatrix",
    "load_hmatrix",
    "save_tile_h",
    "load_tile_h",
    "load_tile_h_meta",
]
