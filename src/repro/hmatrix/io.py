"""Persistence: save/load H-matrices and Tile-H descriptors (NumPy ``npz``).

Assembly (clustering + ACA over every admissible block) is the expensive,
embarrassingly-reusable step of the pipeline, so a production library needs
it on disk.  The format is a single compressed ``.npz``:

* the point cloud, the permutation, and the cluster tree in pre-order
  (start/stop/level/child counts — bounding boxes are recomputed on load);
* every H-matrix node in pre-order, referencing its row/column clusters by
  pre-order index, with leaf payloads stored as individual arrays.

The same node-indexing works for one global H-matrix and for the ``nt x nt``
tiles of a Tile-H descriptor (whose row/col clusters are subtrees of the one
root tree).

Format v2 additionally records *factorisation state*: a ``factorized`` flag,
the factorisation ``method``, the solver config (JSON), and one flag per
H-node marking packed-triangle caches (``packed_lu``), which are recomputed
on load exactly as the factorisation created them (``to_dense()`` of the
factor content) so a loaded factor solves bit-identically to the in-memory
one.  v1 archives load fine and report ``factorized=False``.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import asdict, is_dataclass
from pathlib import Path

import numpy as np

from .cluster import BoundingBox, ClusterTree
from .hmatrix import HMatrix
from .rk import RkMatrix

__all__ = [
    "save_hmatrix",
    "load_hmatrix",
    "save_tile_h",
    "load_tile_h",
    "load_tile_h_meta",
]

_KIND_CODE = {"full": 0, "rk": 1, "h": 2}

#: Current Tile-H archive format.  v2 added factorisation metadata and
#: per-node packed-triangle flags; v1 archives are still readable.
TILE_H_FORMAT_VERSION = 2


# ---------------------------------------------------------------------------
# Cluster trees
# ---------------------------------------------------------------------------

def _serialize_tree(root: ClusterTree) -> dict:
    starts, stops, levels, nkids = [], [], [], []

    def visit(node: ClusterTree) -> None:
        starts.append(node.start)
        stops.append(node.stop)
        levels.append(node.level)
        nkids.append(len(node.children))
        for c in node.children:
            visit(c)

    visit(root)
    return {
        "tree_start": np.asarray(starts, dtype=np.int64),
        "tree_stop": np.asarray(stops, dtype=np.int64),
        "tree_level": np.asarray(levels, dtype=np.int64),
        "tree_nkids": np.asarray(nkids, dtype=np.int64),
    }


def _tree_index(root: ClusterTree) -> dict[int, int]:
    """Map ``id(node)`` -> pre-order index."""
    out: dict[int, int] = {}

    def visit(node: ClusterTree) -> None:
        out[id(node)] = len(out)
        for c in node.children:
            visit(c)

    visit(root)
    return out


def _deserialize_tree(data, points: np.ndarray, perm: np.ndarray) -> list[ClusterTree]:
    starts = data["tree_start"]
    stops = data["tree_stop"]
    levels = data["tree_level"]
    nkids = data["tree_nkids"]
    nodes: list[ClusterTree] = []
    pos = {"i": 0}

    def build() -> ClusterTree:
        i = pos["i"]
        pos["i"] += 1
        node = ClusterTree(
            start=int(starts[i]),
            stop=int(stops[i]),
            bbox=BoundingBox.of(points[perm[int(starts[i]) : int(stops[i])]]),
            perm=perm,
            points=points,
            level=int(levels[i]),
        )
        nodes.append(node)
        node.children = [build() for _ in range(int(nkids[i]))]
        return node

    build()
    if pos["i"] != len(starts):
        raise ValueError("corrupt cluster-tree serialization")
    return nodes  # nodes[0] is the root, pre-order


# ---------------------------------------------------------------------------
# H-matrix nodes
# ---------------------------------------------------------------------------

def _serialize_hmatrix(h: HMatrix, idx: dict[int, int], payloads: dict, prefix: str) -> dict:
    kinds, rows_i, cols_i, nrc, ncc, plu = [], [], [], [], [], []

    def visit(node: HMatrix) -> None:
        k = len(kinds)
        kinds.append(_KIND_CODE[node.kind])
        rows_i.append(idx[id(node.rows)])
        cols_i.append(idx[id(node.cols)])
        nrc.append(node.nrow_children)
        ncc.append(node.ncol_children)
        plu.append(1 if node.packed_lu is not None else 0)
        if node.full is not None:
            payloads[f"{prefix}full_{k}"] = node.full
        elif node.rk is not None:
            payloads[f"{prefix}rku_{k}"] = node.rk.u
            payloads[f"{prefix}rkv_{k}"] = node.rk.v
        for c in node.children:
            visit(c)

    visit(h)
    return {
        f"{prefix}kind": np.asarray(kinds, dtype=np.int8),
        f"{prefix}rows": np.asarray(rows_i, dtype=np.int64),
        f"{prefix}cols": np.asarray(cols_i, dtype=np.int64),
        f"{prefix}nrc": np.asarray(nrc, dtype=np.int64),
        f"{prefix}ncc": np.asarray(ncc, dtype=np.int64),
        f"{prefix}plu": np.asarray(plu, dtype=np.int8),
    }


def _payload(data, key: str) -> np.ndarray:
    if key not in data:
        raise ValueError(
            f"corrupt H-matrix archive: missing payload {key!r} (truncated file?)"
        )
    # npy preserves C-vs-Fortran order, and BLAS dispatch (hence the low-order
    # bits of every downstream product) depends on it: return the array as
    # stored, don't force contiguity — bit-identical solves need the factor
    # operands in their original layout.
    return data[key]


def _deserialize_hmatrix(data, nodes: list[ClusterTree], prefix: str) -> HMatrix:
    kinds = data[f"{prefix}kind"]
    rows_i = data[f"{prefix}rows"]
    cols_i = data[f"{prefix}cols"]
    nrc = data[f"{prefix}nrc"]
    ncc = data[f"{prefix}ncc"]
    # v1 archives predate the packed-triangle flags.
    plu = data[f"{prefix}plu"] if f"{prefix}plu" in data else None
    n_nodes = len(kinds)
    for name, arr in (("rows", rows_i), ("cols", cols_i), ("nrc", nrc), ("ncc", ncc)):
        if len(arr) != n_nodes:
            raise ValueError(
                f"corrupt H-matrix archive: {prefix}{name} has {len(arr)} entries "
                f"for {n_nodes} nodes"
            )
    pos = {"i": 0}

    def build() -> HMatrix:
        k = pos["i"]
        pos["i"] += 1
        if k >= n_nodes:
            raise ValueError(
                f"corrupt H-matrix archive: node structure {prefix!r} references "
                f"more than its {n_nodes} serialized nodes"
            )
        ri, ci = int(rows_i[k]), int(cols_i[k])
        if not (0 <= ri < len(nodes) and 0 <= ci < len(nodes)):
            raise ValueError(
                f"corrupt H-matrix archive: node {prefix}{k} references cluster "
                f"({ri}, {ci}) outside the {len(nodes)}-node tree"
            )
        rows = nodes[ri]
        cols = nodes[ci]
        code = int(kinds[k])
        if code == 0:
            full = _payload(data, f"{prefix}full_{k}")
            if full.shape != (rows.size, cols.size):
                raise ValueError(
                    f"corrupt H-matrix archive: payload {prefix}full_{k} has shape "
                    f"{full.shape}, clusters say {(rows.size, cols.size)}"
                )
            node = HMatrix(rows, cols, full=full)
        elif code == 1:
            u = _payload(data, f"{prefix}rku_{k}")
            v = _payload(data, f"{prefix}rkv_{k}")
            if u.shape[0] != rows.size or v.shape[0] != cols.size or u.shape[1] != v.shape[1]:
                raise ValueError(
                    f"corrupt H-matrix archive: Rk payload {prefix}rk*_{k} has shapes "
                    f"{u.shape}/{v.shape}, clusters say {(rows.size, cols.size)}"
                )
            node = HMatrix(rows, cols, rk=RkMatrix(u, v))
        elif code == 2:
            n_children = int(nrc[k]) * int(ncc[k])
            kids = [build() for _ in range(n_children)]
            node = HMatrix(
                rows, cols, children=kids, nrow_children=int(nrc[k]), ncol_children=int(ncc[k])
            )
        else:
            raise ValueError(
                f"corrupt H-matrix archive: node {prefix}{k} has unknown kind code {code}"
            )
        if plu is not None and int(plu[k]):
            # Recompute the packed-triangle cache exactly as the factorisation
            # created it (``to_dense()`` of the factor content, F-ordered) so
            # loaded factors solve bit-identically to in-memory ones.
            node.packed_lu = np.asfortranarray(node.to_dense())
        return node

    h = build()
    if pos["i"] != n_nodes:
        raise ValueError(
            f"corrupt H-matrix archive: structure {prefix!r} used {pos['i']} of "
            f"{n_nodes} serialized nodes"
        )
    return h


# ---------------------------------------------------------------------------
# Public API — single H-matrix
# ---------------------------------------------------------------------------

def save_hmatrix(h: HMatrix, tree: ClusterTree, path) -> Path:
    """Save a (square) H-matrix plus its cluster tree to ``path`` (.npz).

    ``tree`` must be the cluster tree whose nodes ``h`` references (rows and
    columns share it for the kernel matrices this library builds).
    """
    idx = _tree_index(tree)
    payloads: dict = {}
    arrays = {
        "points": tree.points,
        "perm": tree.perm,
        **_serialize_tree(tree),
        **_serialize_hmatrix(h, idx, payloads, "h_"),
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(p, **arrays, **payloads)
    return p


def load_hmatrix(path) -> tuple[HMatrix, ClusterTree]:
    """Load an H-matrix saved by :func:`save_hmatrix`; returns (h, tree)."""
    with np.load(Path(path)) as data:
        points = np.ascontiguousarray(data["points"])
        perm = np.ascontiguousarray(data["perm"])
        nodes = _deserialize_tree(data, points, perm)
        h = _deserialize_hmatrix(data, nodes, "h_")
    return h, nodes[0]


# ---------------------------------------------------------------------------
# Public API — Tile-H descriptors
# ---------------------------------------------------------------------------

def _config_dict(config) -> dict:
    if config is None:
        return {}
    if is_dataclass(config) and not isinstance(config, type):
        return asdict(config)
    return dict(config)


def save_tile_h(desc, path, *, factorized: bool = False, method: str | None = None,
                config=None, compress: bool = True) -> Path:
    """Save a :class:`~repro.core.descriptor.TileHDesc` to ``path`` (.npz).

    ``factorized``/``method`` record the factorisation state of the tiles
    (the payloads are the L/U or Cholesky factor content when set) and
    ``config`` (a dataclass or mapping) is stored as JSON so a loaded matrix
    can solve under the configuration that produced the factors.

    ``compress=False`` writes a *stored* (uncompressed) zip whose members
    :func:`load_tile_h` can map with ``mmap=True`` — larger on disk, but
    loads page in lazily with zero deserialization copies.
    """
    root = desc.root
    idx = _tree_index(root)
    nt = desc.nt
    payloads: dict = {}
    arrays = {
        "points": root.points,
        "perm": root.perm,
        "format_version": np.asarray([TILE_H_FORMAT_VERSION], dtype=np.int64),
        "nt": np.asarray([nt], dtype=np.int64),
        "nb": np.asarray([desc.nb], dtype=np.int64),
        "eps": np.asarray([desc.eps], dtype=np.float64),
        "factorized": np.asarray([1 if factorized else 0], dtype=np.int8),
        "method": np.asarray([method or ""]),
        "config_json": np.asarray([json.dumps(_config_dict(config), sort_keys=True)]),
        "tile_cluster_idx": np.asarray(
            [idx[id(c)] for c in desc.clusters], dtype=np.int64
        ),
        **_serialize_tree(root),
    }
    for i in range(nt):
        for j in range(nt):
            tile = desc.super.get_blktile(i, j)
            arrays.update(
                _serialize_hmatrix(tile.mat, idx, payloads, f"t{i}_{j}_")
            )
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    savez = np.savez_compressed if compress else np.savez
    savez(p, **arrays, **payloads)
    return p


class _MmapArchive:
    """Dict-like view of an ``.npz`` whose members load as read-only memmaps.

    ``np.savez`` stores members with ``ZIP_STORED`` (no compression), so each
    ``.npy`` member's data sits contiguously in the archive file: seek past
    the zip local-file header and the npy header, then ``np.memmap`` the raw
    buffer in its stored C/Fortran order.  Deflated members (from
    ``np.savez_compressed``) and exotic npy versions fall back to an ordinary
    in-memory read, so mixed archives still load — just without the zero-copy
    benefit for those members.
    """

    def __init__(self, path) -> None:
        self._path = Path(path)
        self._zip = zipfile.ZipFile(self._path, "r")
        self._infos: dict[str, zipfile.ZipInfo] = {}
        for info in self._zip.infolist():
            name = info.filename
            key = name[:-4] if name.endswith(".npy") else name
            self._infos[key] = info

    def __contains__(self, key) -> bool:
        return key in self._infos

    def keys(self):
        return self._infos.keys()

    def __enter__(self) -> "_MmapArchive":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        self._zip.close()

    def _read_copy(self, info: zipfile.ZipInfo) -> np.ndarray:
        with self._zip.open(info.filename) as f:
            return np.lib.format.read_array(f, allow_pickle=False)

    def __getitem__(self, key: str) -> np.ndarray:
        info = self._infos.get(key)
        if info is None:
            raise KeyError(key)
        if info.compress_type != zipfile.ZIP_STORED:
            return self._read_copy(info)
        with open(self._path, "rb") as f:
            # The central directory's name/extra lengths can differ from the
            # local header's (zip64, unicode extras): parse the local header.
            f.seek(info.header_offset)
            local = f.read(30)
            if len(local) < 30 or local[:4] != b"PK\x03\x04":
                return self._read_copy(info)
            fnlen = int.from_bytes(local[26:28], "little")
            extralen = int.from_bytes(local[28:30], "little")
            f.seek(info.header_offset + 30 + fnlen + extralen)
            try:
                version = np.lib.format.read_magic(f)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(f)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(f)
                else:
                    return self._read_copy(info)
            except ValueError:
                return self._read_copy(info)
            if dtype.hasobject:
                return self._read_copy(info)  # raises: pickled payloads refused
            order = "F" if fortran else "C"
            if int(np.prod(shape)) == 0:
                # np.memmap rejects zero-length maps; rank-0 Rk factors and
                # empty index arrays are shape metadata only.
                return np.empty(shape, dtype=dtype, order=order)
            offset = f.tell()
        return np.memmap(
            self._path, mode="r", dtype=dtype, shape=shape, offset=offset, order=order
        )


_TILE_H_REQUIRED = (
    "points", "perm", "nt", "nb", "eps", "tile_cluster_idx",
    "tree_start", "tree_stop", "tree_level", "tree_nkids",
)


def _open_archive(path, *, mmap: bool = False):
    p = Path(path)
    try:
        if mmap:
            return _MmapArchive(p)
        return np.load(p, allow_pickle=False)
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, pickle refusals, ...
        raise ValueError(f"cannot read Tile-H archive {p}: {exc}") from exc


def _validate_tile_h(data, path) -> None:
    missing = [k for k in _TILE_H_REQUIRED if k not in data]
    if missing:
        raise ValueError(
            f"invalid Tile-H archive {path}: missing keys {missing} "
            "(truncated file or not a Tile-H save?)"
        )
    n_tree = len(data["tree_start"])
    for k in ("tree_stop", "tree_level", "tree_nkids"):
        if len(data[k]) != n_tree:
            raise ValueError(
                f"invalid Tile-H archive {path}: cluster-tree arrays disagree "
                f"({k} has {len(data[k])} entries, tree_start has {n_tree})"
            )
    nt = int(data["nt"][0])
    if nt < 1:
        raise ValueError(f"invalid Tile-H archive {path}: nt={nt}")
    idx = data["tile_cluster_idx"]
    if len(idx) != nt:
        raise ValueError(
            f"invalid Tile-H archive {path}: {len(idx)} tile clusters for nt={nt}"
        )
    if len(idx) and (int(idx.min()) < 0 or int(idx.max()) >= n_tree):
        raise ValueError(
            f"invalid Tile-H archive {path}: tile cluster index out of range "
            f"(tree has {n_tree} nodes)"
        )
    n = data["points"].shape[0]
    if data["perm"].shape[0] != n:
        raise ValueError(
            f"invalid Tile-H archive {path}: permutation length "
            f"{data['perm'].shape[0]} != {n} points"
        )
    for i in range(nt):
        for j in range(nt):
            if f"t{i}_{j}_kind" not in data:
                raise ValueError(
                    f"invalid Tile-H archive {path}: tile ({i}, {j}) missing "
                    f"(truncated file?)"
                )


def load_tile_h(path, *, mmap: bool = False):
    """Load a Tile-H descriptor saved by :func:`save_tile_h`.

    The archive is validated up front (required keys, consistent tree/tile
    arrays, payload shapes) and a :class:`ValueError` naming the problem is
    raised on truncated or mismatched files.

    ``mmap=True`` maps uncompressed payloads (``save_tile_h(...,
    compress=False)``) as *read-only* ``np.memmap`` views: loading touches no
    payload bytes, pages fault in on first kernel access, and the page cache
    is shared across processes serving the same archive.  Read-only is right
    for the serve path (solves read the factors); re-factorising a
    mmap-loaded matrix in place is not supported.  Compressed archives load
    with ``mmap=True`` too, falling back to in-memory copies per member.
    """
    from ..core.descriptor import Tile, TileDesc, TileHDesc
    from .block import StrongAdmissibility

    with _open_archive(path, mmap=mmap) as data:
        _validate_tile_h(data, path)
        points = np.ascontiguousarray(data["points"])
        perm = np.ascontiguousarray(data["perm"])
        nodes = _deserialize_tree(data, points, perm)
        nt = int(data["nt"][0])
        nb = int(data["nb"][0])
        eps = float(data["eps"][0])
        clusters = [nodes[int(k)] for k in data["tile_cluster_idx"]]
        n = points.shape[0]
        if sum(c.size for c in clusters) != n:
            raise ValueError(
                f"invalid Tile-H archive {path}: tile clusters cover "
                f"{sum(c.size for c in clusters)} of {n} points"
            )
        tiles = []
        for i in range(nt):
            for j in range(nt):
                h = _deserialize_hmatrix(data, nodes, f"t{i}_{j}_")
                if h.shape != (clusters[i].size, clusters[j].size):
                    raise ValueError(
                        f"invalid Tile-H archive {path}: tile ({i}, {j}) has shape "
                        f"{h.shape}, clusters say "
                        f"{(clusters[i].size, clusters[j].size)}"
                    )
                tiles.append(Tile.of(h))
    desc = TileDesc(n=points.shape[0], nb=nb, nt=nt, tiles=tiles)
    return TileHDesc(
        super=desc,
        root=nodes[0],
        clusters=clusters,
        admissibility=StrongAdmissibility(),
        perm=perm,
        eps=eps,
    )


def load_tile_h_meta(path) -> dict:
    """Read a Tile-H archive's metadata without deserializing any payloads.

    Returns a dict with ``n``, ``nt``, ``nb``, ``eps``, ``factorized``,
    ``method`` (``None`` when unfactorised), ``config`` (the saved solver
    config as a dict, ``{}`` for v1 archives) and ``format_version``.
    """
    with _open_archive(path) as data:
        missing = [k for k in ("points", "nt", "nb", "eps") if k not in data]
        if missing:
            raise ValueError(
                f"invalid Tile-H archive {path}: missing keys {missing} "
                "(truncated file or not a Tile-H save?)"
            )
        meta = {
            "n": int(data["points"].shape[0]),
            "nt": int(data["nt"][0]),
            "nb": int(data["nb"][0]),
            "eps": float(data["eps"][0]),
            "format_version": int(data["format_version"][0])
            if "format_version" in data else 1,
            "factorized": bool(int(data["factorized"][0]))
            if "factorized" in data else False,
            "method": None,
            "config": {},
        }
        if "method" in data:
            m = str(data["method"][0])
            meta["method"] = m or None
        if "config_json" in data:
            try:
                meta["config"] = json.loads(str(data["config_json"][0]))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"invalid Tile-H archive {path}: corrupt config JSON: {exc}"
                ) from exc
    return meta
