"""Persistence: save/load H-matrices and Tile-H descriptors (NumPy ``npz``).

Assembly (clustering + ACA over every admissible block) is the expensive,
embarrassingly-reusable step of the pipeline, so a production library needs
it on disk.  The format is a single compressed ``.npz``:

* the point cloud, the permutation, and the cluster tree in pre-order
  (start/stop/level/child counts — bounding boxes are recomputed on load);
* every H-matrix node in pre-order, referencing its row/column clusters by
  pre-order index, with leaf payloads stored as individual arrays.

The same node-indexing works for one global H-matrix and for the ``nt x nt``
tiles of a Tile-H descriptor (whose row/col clusters are subtrees of the one
root tree).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .cluster import BoundingBox, ClusterTree
from .hmatrix import HMatrix
from .rk import RkMatrix

__all__ = ["save_hmatrix", "load_hmatrix", "save_tile_h", "load_tile_h"]

_KIND_CODE = {"full": 0, "rk": 1, "h": 2}


# ---------------------------------------------------------------------------
# Cluster trees
# ---------------------------------------------------------------------------

def _serialize_tree(root: ClusterTree) -> dict:
    starts, stops, levels, nkids = [], [], [], []

    def visit(node: ClusterTree) -> None:
        starts.append(node.start)
        stops.append(node.stop)
        levels.append(node.level)
        nkids.append(len(node.children))
        for c in node.children:
            visit(c)

    visit(root)
    return {
        "tree_start": np.asarray(starts, dtype=np.int64),
        "tree_stop": np.asarray(stops, dtype=np.int64),
        "tree_level": np.asarray(levels, dtype=np.int64),
        "tree_nkids": np.asarray(nkids, dtype=np.int64),
    }


def _tree_index(root: ClusterTree) -> dict[int, int]:
    """Map ``id(node)`` -> pre-order index."""
    out: dict[int, int] = {}

    def visit(node: ClusterTree) -> None:
        out[id(node)] = len(out)
        for c in node.children:
            visit(c)

    visit(root)
    return out


def _deserialize_tree(data, points: np.ndarray, perm: np.ndarray) -> list[ClusterTree]:
    starts = data["tree_start"]
    stops = data["tree_stop"]
    levels = data["tree_level"]
    nkids = data["tree_nkids"]
    nodes: list[ClusterTree] = []
    pos = {"i": 0}

    def build() -> ClusterTree:
        i = pos["i"]
        pos["i"] += 1
        node = ClusterTree(
            start=int(starts[i]),
            stop=int(stops[i]),
            bbox=BoundingBox.of(points[perm[int(starts[i]) : int(stops[i])]]),
            perm=perm,
            points=points,
            level=int(levels[i]),
        )
        nodes.append(node)
        node.children = [build() for _ in range(int(nkids[i]))]
        return node

    build()
    if pos["i"] != len(starts):
        raise ValueError("corrupt cluster-tree serialization")
    return nodes  # nodes[0] is the root, pre-order


# ---------------------------------------------------------------------------
# H-matrix nodes
# ---------------------------------------------------------------------------

def _serialize_hmatrix(h: HMatrix, idx: dict[int, int], payloads: dict, prefix: str) -> dict:
    kinds, rows_i, cols_i, nrc, ncc = [], [], [], [], []

    def visit(node: HMatrix) -> None:
        k = len(kinds)
        kinds.append(_KIND_CODE[node.kind])
        rows_i.append(idx[id(node.rows)])
        cols_i.append(idx[id(node.cols)])
        nrc.append(node.nrow_children)
        ncc.append(node.ncol_children)
        if node.full is not None:
            payloads[f"{prefix}full_{k}"] = node.full
        elif node.rk is not None:
            payloads[f"{prefix}rku_{k}"] = node.rk.u
            payloads[f"{prefix}rkv_{k}"] = node.rk.v
        for c in node.children:
            visit(c)

    visit(h)
    return {
        f"{prefix}kind": np.asarray(kinds, dtype=np.int8),
        f"{prefix}rows": np.asarray(rows_i, dtype=np.int64),
        f"{prefix}cols": np.asarray(cols_i, dtype=np.int64),
        f"{prefix}nrc": np.asarray(nrc, dtype=np.int64),
        f"{prefix}ncc": np.asarray(ncc, dtype=np.int64),
    }


def _deserialize_hmatrix(data, nodes: list[ClusterTree], prefix: str) -> HMatrix:
    kinds = data[f"{prefix}kind"]
    rows_i = data[f"{prefix}rows"]
    cols_i = data[f"{prefix}cols"]
    nrc = data[f"{prefix}nrc"]
    ncc = data[f"{prefix}ncc"]
    pos = {"i": 0}

    def build() -> HMatrix:
        k = pos["i"]
        pos["i"] += 1
        rows = nodes[int(rows_i[k])]
        cols = nodes[int(cols_i[k])]
        code = int(kinds[k])
        if code == 0:
            return HMatrix(rows, cols, full=np.ascontiguousarray(data[f"{prefix}full_{k}"]))
        if code == 1:
            rk = RkMatrix(
                np.ascontiguousarray(data[f"{prefix}rku_{k}"]),
                np.ascontiguousarray(data[f"{prefix}rkv_{k}"]),
            )
            return HMatrix(rows, cols, rk=rk)
        n_children = int(nrc[k]) * int(ncc[k])
        kids = [build() for _ in range(n_children)]
        return HMatrix(
            rows, cols, children=kids, nrow_children=int(nrc[k]), ncol_children=int(ncc[k])
        )

    h = build()
    return h


# ---------------------------------------------------------------------------
# Public API — single H-matrix
# ---------------------------------------------------------------------------

def save_hmatrix(h: HMatrix, tree: ClusterTree, path) -> Path:
    """Save a (square) H-matrix plus its cluster tree to ``path`` (.npz).

    ``tree`` must be the cluster tree whose nodes ``h`` references (rows and
    columns share it for the kernel matrices this library builds).
    """
    idx = _tree_index(tree)
    payloads: dict = {}
    arrays = {
        "points": tree.points,
        "perm": tree.perm,
        **_serialize_tree(tree),
        **_serialize_hmatrix(h, idx, payloads, "h_"),
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(p, **arrays, **payloads)
    return p


def load_hmatrix(path) -> tuple[HMatrix, ClusterTree]:
    """Load an H-matrix saved by :func:`save_hmatrix`; returns (h, tree)."""
    with np.load(Path(path)) as data:
        points = np.ascontiguousarray(data["points"])
        perm = np.ascontiguousarray(data["perm"])
        nodes = _deserialize_tree(data, points, perm)
        h = _deserialize_hmatrix(data, nodes, "h_")
    return h, nodes[0]


# ---------------------------------------------------------------------------
# Public API — Tile-H descriptors
# ---------------------------------------------------------------------------

def save_tile_h(desc, path) -> Path:
    """Save a :class:`~repro.core.descriptor.TileHDesc` to ``path`` (.npz)."""
    root = desc.root
    idx = _tree_index(root)
    nt = desc.nt
    payloads: dict = {}
    arrays = {
        "points": root.points,
        "perm": root.perm,
        "nt": np.asarray([nt], dtype=np.int64),
        "nb": np.asarray([desc.nb], dtype=np.int64),
        "eps": np.asarray([desc.eps], dtype=np.float64),
        "tile_cluster_idx": np.asarray(
            [idx[id(c)] for c in desc.clusters], dtype=np.int64
        ),
        **_serialize_tree(root),
    }
    for i in range(nt):
        for j in range(nt):
            tile = desc.super.get_blktile(i, j)
            arrays.update(
                _serialize_hmatrix(tile.mat, idx, payloads, f"t{i}_{j}_")
            )
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(p, **arrays, **payloads)
    return p


def load_tile_h(path):
    """Load a Tile-H descriptor saved by :func:`save_tile_h`."""
    from ..core.descriptor import Tile, TileDesc, TileHDesc
    from .block import StrongAdmissibility

    with np.load(Path(path)) as data:
        points = np.ascontiguousarray(data["points"])
        perm = np.ascontiguousarray(data["perm"])
        nodes = _deserialize_tree(data, points, perm)
        nt = int(data["nt"][0])
        nb = int(data["nb"][0])
        eps = float(data["eps"][0])
        clusters = [nodes[int(k)] for k in data["tile_cluster_idx"]]
        tiles = []
        for i in range(nt):
            for j in range(nt):
                h = _deserialize_hmatrix(data, nodes, f"t{i}_{j}_")
                tiles.append(Tile.of(h))
    desc = TileDesc(n=points.shape[0], nb=nb, nt=nt, tiles=tiles)
    return TileHDesc(
        super=desc,
        root=nodes[0],
        clusters=clusters,
        admissibility=StrongAdmissibility(),
        perm=perm,
        eps=eps,
    )
