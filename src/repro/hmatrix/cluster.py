"""Geometric cluster trees (Definition 1 of the paper).

A cluster tree recursively partitions the index set ``I`` of unknowns.  Nodes
store a contiguous range ``[start, stop)`` into a global *permutation* array,
so every cluster's indices are ``perm[start:stop]`` — the same layout HMAT-OSS
(and every production H-matrix code) uses, because it makes sub-block
extraction a pair of slices.

The standard construction is *median bisection along the largest bounding-box
dimension* (a.k.a. geometric/cardinality-balanced bisection), which is also
the per-tile refinement the paper applies inside ``NTilesRecursive``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BoundingBox", "ClusterTree", "build_cluster_tree"]


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box of a cluster's points."""

    lo: np.ndarray
    hi: np.ndarray

    @classmethod
    def of(cls, points: np.ndarray) -> "BoundingBox":
        pts = np.atleast_2d(points)
        if pts.shape[0] == 0:
            raise ValueError("bounding box of an empty point set")
        return cls(lo=pts.min(axis=0), hi=pts.max(axis=0))

    @property
    def extents(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def diameter(self) -> float:
        return float(np.linalg.norm(self.extents))

    def largest_dimension(self) -> int:
        """Index of the widest axis (the split axis for bisection)."""
        return int(np.argmax(self.extents))

    def distance(self, other: "BoundingBox") -> float:
        """Euclidean distance between the two boxes (0 if they overlap)."""
        gap = np.maximum(0.0, np.maximum(self.lo - other.hi, other.lo - self.hi))
        return float(np.linalg.norm(gap))


@dataclass
class ClusterTree:
    """A node of the cluster tree over the index set.

    Attributes
    ----------
    start, stop:
        Range into ``perm``; the node's indices are ``perm[start:stop]``.
    bbox:
        Bounding box of the node's points.
    children:
        Empty for leaves; otherwise the sons whose ranges partition
        ``[start, stop)`` in order.
    perm, points:
        Shared references to the tree-global permutation and (original-order)
        point array.
    level:
        Depth in the tree; the root is level 0.
    """

    start: int
    stop: int
    bbox: BoundingBox
    perm: np.ndarray
    points: np.ndarray
    level: int = 0
    children: list["ClusterTree"] = field(default_factory=list)

    # -- basic queries -----------------------------------------------------
    @property
    def size(self) -> int:
        return self.stop - self.start

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def indices(self) -> np.ndarray:
        """Original indices of the unknowns in this cluster (a view)."""
        return self.perm[self.start : self.stop]

    @property
    def cluster_points(self) -> np.ndarray:
        """Points of this cluster, in permuted order."""
        return self.points[self.indices]

    def depth(self) -> int:
        """Height of the subtree rooted here (leaf = 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(c.depth() for c in self.children)

    def leaves(self):
        """Yield the leaf clusters left-to-right."""
        if self.is_leaf:
            yield self
        else:
            for c in self.children:
                yield from c.leaves()

    def nodes(self):
        """Yield all nodes, pre-order."""
        yield self
        for c in self.children:
            yield from c.nodes()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "leaf" if self.is_leaf else f"{len(self.children)} sons"
        return f"ClusterTree([{self.start}:{self.stop}), level={self.level}, {kind})"


def _split_median(node: ClusterTree, leaf_size: int) -> None:
    """Recursively split ``node`` by median bisection until leaves fit."""
    if node.size <= leaf_size:
        return
    pts = node.points
    perm = node.perm
    seg = perm[node.start : node.stop]
    axis = node.bbox.largest_dimension()
    coords = pts[seg, axis]
    half = node.size // 2
    # argpartition gives a median split in O(n); stable ordering is not
    # required for correctness, only the partition matters.
    order = np.argpartition(coords, half - 1)
    seg[:] = seg[order]
    mid = node.start + half
    left = ClusterTree(
        start=node.start,
        stop=mid,
        bbox=BoundingBox.of(pts[perm[node.start : mid]]),
        perm=perm,
        points=pts,
        level=node.level + 1,
    )
    right = ClusterTree(
        start=mid,
        stop=node.stop,
        bbox=BoundingBox.of(pts[perm[mid : node.stop]]),
        perm=perm,
        points=pts,
        level=node.level + 1,
    )
    node.children = [left, right]
    _split_median(left, leaf_size)
    _split_median(right, leaf_size)


def build_cluster_tree(
    points: np.ndarray,
    *,
    leaf_size: int = 64,
    perm: np.ndarray | None = None,
    start: int = 0,
    stop: int | None = None,
    level: int = 0,
) -> ClusterTree:
    """Build a median-bisection cluster tree over ``points``.

    Parameters
    ----------
    points:
        (n, dim) coordinates, original order.
    leaf_size:
        Maximum unknowns per leaf cluster.
    perm, start, stop, level:
        Internal hooks used by :func:`repro.hmatrix.ntiles.ntiles_recursive`
        to refine a sub-range of an existing permutation in place.

    Returns
    -------
    ClusterTree
        Root of the (sub)tree; its ``perm`` array is the tree-global
        permutation mapping cluster-order positions to original indices.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be (n, dim), got shape {pts.shape}")
    n = pts.shape[0]
    if n == 0:
        raise ValueError("cannot build a cluster tree over zero points")
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
    if perm is None:
        perm = np.arange(n, dtype=np.int64)
    if stop is None:
        stop = n
    if not (0 <= start < stop <= len(perm)):
        raise ValueError(f"invalid range [{start}, {stop}) for perm of length {len(perm)}")
    root = ClusterTree(
        start=start,
        stop=stop,
        bbox=BoundingBox.of(pts[perm[start:stop]]),
        perm=perm,
        points=pts,
        level=level,
    )
    _split_median(root, leaf_size)
    return root
