"""Recursive H-arithmetic: H-GEMM, H-TRSM, H-GETRF (Section II-B).

The three kernels mirror HMAT-OSS's implementations:

* :func:`hgetrf` applies the tiled right-looking LU (Algorithm 1) recursively
  over the children grid, bottoming out in an unpivoted dense LU;
* :func:`htrsm` handles the two triangular solves of the LU (left-lower-unit
  and right-upper) for H, Rk and dense right-hand sides;
* :func:`hgemm` dispatches over the 3 x 3 x 3 = 27 format combinations the
  paper describes: any low-rank operand short-circuits to an Rk product, any
  dense operand to a panel product, and the all-subdivided case recurses.

A module-level :class:`KernelTracer` can observe every *leaf-level* kernel
execution (kind, data read/written, measured seconds, modelled flops); the
pure-H baseline uses it to reconstruct the fine-grained task DAG that the
proprietary HMAT library submits to StarPU.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..dense import flops_gemm, flops_getrf, flops_trsm, getrf_nopiv, tri_solve
from .hmatrix import HMatrix
from .rk import RkMatrix, compress_dense

__all__ = [
    "hgemm",
    "hgemm_transb",
    "hgeadd",
    "to_rk",
    "hpotrf",
    "hinv",
    "hchol_solve",
    "htrsm",
    "hgetrf",
    "hlu_solve",
    "h_rmatvec",
    "panel_matvec",
    "panel_rmatvec",
    "solve_lower_panel",
    "solve_upper_transpose_panel",
    "KernelTracer",
    "set_tracer",
    "TraceRecord",
]


# ---------------------------------------------------------------------------
# Kernel tracing (fine-grain DAG reconstruction for the HMAT baseline)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceRecord:
    """One observed leaf kernel execution."""

    kind: str
    reads: tuple
    writes: tuple
    seconds: float
    flops: float


@dataclass
class KernelTracer:
    """Collects :class:`TraceRecord` entries during H-arithmetic calls."""

    records: list = field(default_factory=list)

    def record(self, kind: str, reads: tuple, writes: tuple, seconds: float, flops: float) -> None:
        self.records.append(TraceRecord(kind, reads, writes, seconds, flops))

    def clear(self) -> None:
        self.records.clear()

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def total_flops(self) -> float:
        return sum(r.flops for r in self.records)


_TRACER: KernelTracer | None = None


def set_tracer(tracer: KernelTracer | None) -> KernelTracer | None:
    """Install (or clear, with ``None``) the global kernel tracer.

    Returns the previously installed tracer so callers can restore it.
    """
    global _TRACER
    prev = _TRACER
    _TRACER = tracer
    return prev


class _traced:
    """Time the enclosed kernel and report it to the tracer, if any.

    A plain slotted context manager: the ``contextlib`` generator machinery
    costs a few microseconds per call, which is measurable at the leaf-kernel
    call volume of an H-LU.
    """

    __slots__ = ("kind", "reads", "writes", "flops", "t0")

    def __init__(self, kind: str, reads: tuple, writes: tuple, flops: float) -> None:
        self.kind = kind
        self.reads = reads
        self.writes = writes
        self.flops = flops

    def __enter__(self) -> None:
        if _TRACER is not None:
            self.t0 = time.perf_counter()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if _TRACER is not None and exc_type is None:
            _TRACER.record(
                self.kind, self.reads, self.writes, time.perf_counter() - self.t0, self.flops
            )
        return False


# ---------------------------------------------------------------------------
# Panel helpers (dense panels against H triangles / H transposes)
# ---------------------------------------------------------------------------

def h_rmatvec(h: HMatrix, x: np.ndarray) -> np.ndarray:
    """``A.T @ x`` for an H-matrix (plain transpose, any leaf mix)."""
    x = np.asarray(x)
    if x.shape[0] != h.shape[0]:
        raise ValueError(f"x leading dim {x.shape[0]} != {h.shape[0]}")
    out_dtype = np.promote_types(h.dtype, x.dtype)
    out = np.zeros((h.shape[1],) + x.shape[1:], dtype=out_dtype)
    for leaf, i0, j0 in h.leaf_index():
        m, n = leaf.shape
        seg = x[i0 : i0 + m]
        if leaf.full is not None:
            out[j0 : j0 + n] += leaf.full.T @ seg
        else:
            rk = leaf.rk
            if rk.u.shape[1]:
                out[j0 : j0 + n] += rk.v @ (rk.u.T @ seg)
    return out


def panel_matvec(h: HMatrix, x: np.ndarray) -> np.ndarray:
    """Column-stable (batch-invariant) ``A @ x`` for a 2-D panel ``x``.

    Column ``c`` of the result is bit-identical to ``panel_matvec(h,
    x[:, c:c+1])`` regardless of the panel width: each leaf multiplies the
    columns as a *stacked* matmul — numpy iterates the leading axis and
    issues one identical ``(m, n) @ (n, 1)`` GEMM per column slice, with the
    leaf operand (and any transpose-copy of it) shared across the stack —
    instead of one wide ``(m, n) @ (n, k)`` GEMM, whose accumulation order
    (and hence low-order bits) depends on ``k``.  The input stack is
    normalised to C order so every slice has the same layout at any width.
    This batch-invariance is what lets the solve service coalesce requests
    into micro-batches without the answer depending on which batch a request
    landed in, while the leaf walk and BLAS dispatch are still paid once per
    panel — the amortization that motivates batching.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"panel_matvec needs a 2-D panel, got ndim={x.ndim}")
    if x.shape[0] != h.shape[1]:
        raise ValueError(f"x leading dim {x.shape[0]} != {h.shape[1]}")
    out = np.zeros((h.shape[0], x.shape[1]), dtype=np.promote_types(h.dtype, x.dtype))
    if x.shape[1] == 0:
        return out
    xs = np.ascontiguousarray(x.T)[:, :, None]  # (k, n, 1) column-slice stack
    for leaf, i0, j0 in h.leaf_index():
        m, n = leaf.shape
        seg = xs[:, j0 : j0 + n]
        if leaf.full is not None:
            out[i0 : i0 + m] += np.matmul(leaf.full, seg)[:, :, 0].T
        else:
            rk = leaf.rk
            if rk.u.shape[1]:
                out[i0 : i0 + m] += np.matmul(rk.u, np.matmul(rk.v.T, seg))[:, :, 0].T
    return out


def panel_rmatvec(h: HMatrix, x: np.ndarray) -> np.ndarray:
    """Column-stable ``A.T @ x`` (the panel form of :func:`h_rmatvec`)."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"panel_rmatvec needs a 2-D panel, got ndim={x.ndim}")
    if x.shape[0] != h.shape[0]:
        raise ValueError(f"x leading dim {x.shape[0]} != {h.shape[0]}")
    out = np.zeros((h.shape[1], x.shape[1]), dtype=np.promote_types(h.dtype, x.dtype))
    if x.shape[1] == 0:
        return out
    xs = np.ascontiguousarray(x.T)[:, :, None]
    for leaf, i0, j0 in h.leaf_index():
        m, n = leaf.shape
        seg = xs[:, i0 : i0 + m]
        if leaf.full is not None:
            out[j0 : j0 + n] += np.matmul(leaf.full.T, seg)[:, :, 0].T
        else:
            rk = leaf.rk
            if rk.u.shape[1]:
                out[j0 : j0 + n] += np.matmul(rk.v, np.matmul(rk.u.T, seg))[:, :, 0].T
    return out


def _tri_solve_cols(a: np.ndarray, x: np.ndarray, **kw) -> np.ndarray:
    """Column-stable triangular solve: one trtrs call per contiguous column,
    so column ``c`` is bit-identical to ``tri_solve(a, x[:, c:c+1])`` on the
    width-1 path at any panel width."""
    if x.ndim != 2 or x.shape[1] <= 1:
        return tri_solve(a, x, **kw)
    return np.concatenate(
        [
            tri_solve(a, np.ascontiguousarray(x[:, c : c + 1]), **kw)
            for c in range(x.shape[1])
        ],
        axis=1,
    )


#: Factorised diagonal nodes up to this size are packed dense (hgetrf /
#: hpotrf attach ``packed_lu``) so panel solves collapse to one trtrs call.
#: The cap bounds the cache to O(n * _PACK_TRI_MAX) scalars along the
#: diagonal — small next to the H-matrix itself.
_PACK_TRI_MAX = 256


def solve_lower_panel(
    l: HMatrix, x: np.ndarray, *, unit_diagonal: bool = True, column_stable: bool = False
) -> np.ndarray:
    """Solve ``L y = x`` where ``L`` is the lower triangle of an H node.

    ``x`` is a dense panel in the node's local row order; for packed-LU nodes
    the strictly-lower part plus an implied unit diagonal is used.
    ``column_stable`` makes multi-column panels bit-identical per column to
    width-1 solves (stacked column-wise kernels; see :func:`panel_matvec`) —
    the multi-RHS solve path enables it, the factorisation-side H-TRSM keeps
    the faster wide-GEMM panels.
    """
    x = np.array(x, dtype=np.promote_types(l.dtype, np.asarray(x).dtype), copy=True)
    cs = column_stable and x.ndim == 2
    tri = _tri_solve_cols if cs else tri_solve
    if l.full is not None:
        return tri(l.full, x, lower=True, unit_diagonal=unit_diagonal)
    if l.packed_lu is not None:
        return tri(l.packed_lu, x, lower=True, unit_diagonal=unit_diagonal)
    if l.rk is not None:
        raise ValueError("diagonal H-LU block cannot be low-rank")
    nb = l.nrow_children
    offs = [c.rows.start - l.rows.start for c in (l.child(i, i) for i in range(nb))]
    sizes = [l.child(i, i).rows.size for i in range(nb)]
    for i in range(nb):
        sl_i = slice(offs[i], offs[i] + sizes[i])
        for j in range(i):
            sl_j = slice(offs[j], offs[j] + sizes[j])
            c = l.child(i, j)
            x[sl_i] -= panel_matvec(c, x[sl_j]) if cs else c.matvec(x[sl_j])
        x[sl_i] = solve_lower_panel(
            l.child(i, i), x[sl_i], unit_diagonal=unit_diagonal, column_stable=column_stable
        )
    return x


def solve_upper_panel(u: HMatrix, x: np.ndarray, *, column_stable: bool = False) -> np.ndarray:
    """Solve ``U y = x`` (non-unit upper triangle of an H node, dense panel)."""
    x = np.array(x, dtype=np.promote_types(u.dtype, np.asarray(x).dtype), copy=True)
    cs = column_stable and x.ndim == 2
    tri = _tri_solve_cols if cs else tri_solve
    if u.full is not None:
        return tri(u.full, x, lower=False)
    if u.packed_lu is not None:
        return tri(u.packed_lu, x, lower=False)
    if u.rk is not None:
        raise ValueError("diagonal H-LU block cannot be low-rank")
    nb = u.nrow_children
    offs = [u.child(i, i).rows.start - u.rows.start for i in range(nb)]
    sizes = [u.child(i, i).rows.size for i in range(nb)]
    for i in reversed(range(nb)):
        sl_i = slice(offs[i], offs[i] + sizes[i])
        for j in range(i + 1, nb):
            sl_j = slice(offs[j], offs[j] + sizes[j])
            c = u.child(i, j)
            x[sl_i] -= panel_matvec(c, x[sl_j]) if cs else c.matvec(x[sl_j])
        x[sl_i] = solve_upper_panel(u.child(i, i), x[sl_i], column_stable=column_stable)
    return x


def solve_upper_transpose_panel(
    u: HMatrix, x: np.ndarray, *, column_stable: bool = False
) -> np.ndarray:
    """Solve ``U.T y = x`` (plain transpose of the non-unit upper triangle).

    This is the panel form of the right-sided TRSM: ``X U = B`` is computed
    column-wise as ``U.T X.T = B.T``.
    """
    x = np.array(x, dtype=np.promote_types(u.dtype, np.asarray(x).dtype), copy=True)
    cs = column_stable and x.ndim == 2
    tri = _tri_solve_cols if cs else tri_solve
    if u.full is not None:
        return tri(u.full, x, lower=False, trans=1)
    if u.packed_lu is not None:
        return tri(u.packed_lu, x, lower=False, trans=1)
    if u.rk is not None:
        raise ValueError("diagonal H-LU block cannot be low-rank")
    nb = u.nrow_children
    offs = [u.child(i, i).rows.start - u.rows.start for i in range(nb)]
    sizes = [u.child(i, i).rows.size for i in range(nb)]
    # U.T is lower triangular with (i, j) block = U(j, i).T, i > j.
    for i in range(nb):
        sl_i = slice(offs[i], offs[i] + sizes[i])
        for j in range(i):
            sl_j = slice(offs[j], offs[j] + sizes[j])
            c = u.child(j, i)
            x[sl_i] -= panel_rmatvec(c, x[sl_j]) if cs else h_rmatvec(c, x[sl_j])
        x[sl_i] = solve_upper_transpose_panel(u.child(i, i), x[sl_i], column_stable=column_stable)
    return x


def solve_lower_transpose_panel(
    l: HMatrix, x: np.ndarray, *, unit_diagonal: bool = True, column_stable: bool = False
) -> np.ndarray:
    """Solve ``L.T y = x`` (plain transpose of the unit lower triangle)."""
    x = np.array(x, dtype=np.promote_types(l.dtype, np.asarray(x).dtype), copy=True)
    cs = column_stable and x.ndim == 2
    tri = _tri_solve_cols if cs else tri_solve
    if l.full is not None:
        return tri(l.full, x, lower=True, unit_diagonal=unit_diagonal, trans=1)
    if l.packed_lu is not None:
        return tri(l.packed_lu, x, lower=True, unit_diagonal=unit_diagonal, trans=1)
    if l.rk is not None:
        raise ValueError("diagonal H-LU block cannot be low-rank")
    nb = l.nrow_children
    offs = [l.child(i, i).rows.start - l.rows.start for i in range(nb)]
    sizes = [l.child(i, i).rows.size for i in range(nb)]
    for i in reversed(range(nb)):
        sl_i = slice(offs[i], offs[i] + sizes[i])
        for j in range(i + 1, nb):
            sl_j = slice(offs[j], offs[j] + sizes[j])
            c = l.child(j, i)
            x[sl_i] -= panel_rmatvec(c, x[sl_j]) if cs else h_rmatvec(c, x[sl_j])
        x[sl_i] = solve_lower_transpose_panel(
            l.child(i, i), x[sl_i], unit_diagonal=unit_diagonal, column_stable=column_stable
        )
    return x


# ---------------------------------------------------------------------------
# H-GEMM
# ---------------------------------------------------------------------------

def _effective_rank(x: HMatrix) -> float:
    """Width proxy of an operand: exact rank for Rk leaves, storage-derived
    for subdivided nodes, full width for dense leaves."""
    if x.rk is not None:
        return float(max(x.rk.rank, 1))
    m, n = x.shape
    if x.full is not None:
        return float(min(m, n))
    # storage ~ (m + n) * k_eff for an H node dominated by Rk leaves.
    return float(max(1.0, min(min(m, n), x.storage() / (m + n))))


def _gemm_flops(a: HMatrix, b: HMatrix) -> float:
    """Rank-aware flop model of one H-GEMM contribution.

    ``C += A @ B`` through a width-r bottleneck costs ~ 2 (m + n) k r; with
    dense operands this reduces to the usual 2 m n k up to a factor <= 2.
    Rank-awareness matters: it is what makes the modelled totals reproduce
    the paper's Theta(n k^2 log^2 n) (instead of dense n^3) scaling.
    """
    m, k = a.shape
    n = b.shape[1]
    r = min(_effective_rank(a), _effective_rank(b))
    is_c = a.dtype.kind == "c"
    dense = flops_gemm(m, n, k, is_complex=is_c)
    lowrank = 2.0 * (m + n) * k * r * (4.0 if is_c else 1.0)
    return min(dense, lowrank)


def _product_rk(a: HMatrix, b: HMatrix, alpha, eps: float) -> RkMatrix:
    """``alpha * A @ B`` as an Rk block when either operand is low-rank."""
    # The product rank equals the low-rank operand's rank, so no truncation
    # here: the rounded addition into C recompresses anyway.
    if a.rk is not None:
        if a.rk.rank == 0:
            return RkMatrix.zeros(a.shape[0], b.shape[1], dtype=a.rk.dtype)
        # (Ua Va^T) B = Ua (B^T Va)^T
        v = h_rmatvec(b, a.rk.v)
        return RkMatrix(alpha * a.rk.u, v)
    if b.rk is not None:
        if b.rk.rank == 0:
            return RkMatrix.zeros(a.shape[0], b.shape[1], dtype=b.rk.dtype)
        u = a.matvec(b.rk.u)
        return RkMatrix(alpha * u, b.rk.v.copy())
    raise AssertionError("`_product_rk` requires a low-rank operand")


def _product_dense(a: HMatrix, b: HMatrix) -> np.ndarray:
    """``A @ B`` densely when one operand is a dense leaf (small panel)."""
    if b.full is not None:
        return a.matvec(b.full)
    if a.full is not None:
        # A @ B = (B^T A^T)^T with B^T applied leaf-wise.
        return h_rmatvec(b, a.full.T).T
    raise AssertionError("`_product_dense` requires a dense operand")


def _collect_product(a: HMatrix, b: HMatrix, eps: float, batched: bool = False) -> RkMatrix:
    """``A @ B`` as a rounded Rk block (both operands subdivided).

    Recursively accumulates children products, zero-padding each into the
    parent's shape.  The eager path (``batched=False``, the historical
    behaviour) truncates after every addition; the batched path collects all
    contributions and rounds the stacked factors once with
    :meth:`RkMatrix.add_many` — same accuracy class, one QR+QR+SVD instead
    of one per term.
    """
    m, n = a.shape[0], b.shape[1]
    dtype = np.promote_types(a.dtype, b.dtype)
    acc = RkMatrix.zeros(m, n, dtype=dtype)
    terms: list[RkMatrix] = [acc]
    for i in range(a.nrow_children):
        for j in range(b.ncol_children):
            for l in range(a.ncol_children):
                a_il = a.child(i, l)
                b_lj = b.child(l, j)
                if a_il.rk is not None or b_lj.rk is not None:
                    sub = _product_rk(a_il, b_lj, 1.0, eps)
                elif a_il.full is not None or b_lj.full is not None:
                    sub = compress_dense(_product_dense(a_il, b_lj), eps)
                else:
                    sub = _collect_product(a_il, b_lj, eps, batched)
                if sub.rank == 0:
                    continue
                i0 = a_il.rows.start - a.rows.start
                j0 = b_lj.cols.start - b.cols.start
                u = np.zeros((m, sub.rank), dtype=dtype)
                v = np.zeros((n, sub.rank), dtype=dtype)
                u[i0 : i0 + a_il.shape[0]] = sub.u
                v[j0 : j0 + b_lj.shape[1]] = sub.v
                if batched:
                    terms.append(RkMatrix(u, v))
                else:
                    acc = acc.add(RkMatrix(u, v), eps)
    if batched:
        return RkMatrix.add_many(terms, eps)
    return acc


def hgemm(c: HMatrix, a: HMatrix, b: HMatrix, eps: float, alpha=-1.0, acc=None) -> None:
    """``C <- C + alpha * A @ B`` in H-arithmetic with rounding accuracy eps.

    Handles all 27 structural configurations of (A, B, C); the default
    ``alpha = -1`` is the Schur-complement update of Algorithm 1.  Passing an
    :class:`~repro.hmatrix.accumulator.UpdateAccumulator` defers the
    rounding of C's Rk-leaf updates (the caller must flush before C is next
    read); ``A`` and ``B`` must have no pending updates.
    """
    if a.shape[1] != b.shape[0] or c.shape != (a.shape[0], b.shape[1]):
        raise ValueError(
            f"hgemm shape mismatch: C{c.shape} += A{a.shape} @ B{b.shape}"
        )
    c.packed_lu = None
    # Any low-rank operand: the product is low-rank.
    if a.rk is not None or b.rk is not None:
        with _traced("gemm", (a, b), (c,), _gemm_flops(a, b)):
            prod = _product_rk(a, b, alpha, eps)
            c.axpy_rk(prod, eps, acc)
        return
    # Any dense operand: the product is a small dense panel.
    if a.full is not None or b.full is not None:
        with _traced("gemm", (a, b), (c,), _gemm_flops(a, b)):
            prod = _product_dense(a, b)
            if alpha != 1.0:
                prod = alpha * prod
            c.axpy_dense(prod, eps, acc)
        return
    # Both subdivided.
    if c.is_leaf:
        with _traced("gemm", (a, b), (c,), _gemm_flops(a, b)):
            prod = _collect_product(a, b, eps, batched=acc is not None)
            if prod.rank:
                c.axpy_rk(prod.scale(alpha), eps, acc)
        return
    # All three subdivided: recurse on the children grid (shared cluster
    # trees guarantee compatible splits).
    if a.nrow_children != c.nrow_children or b.ncol_children != c.ncol_children:
        raise ValueError("incompatible children grids in hgemm recursion")
    for i in range(c.nrow_children):
        for j in range(c.ncol_children):
            for l in range(a.ncol_children):
                hgemm(c.child(i, j), a.child(i, l), b.child(l, j), eps, alpha, acc)


# ---------------------------------------------------------------------------
# H-TRSM
# ---------------------------------------------------------------------------

def _trsm_flops(a: HMatrix, b: HMatrix) -> float:
    is_c = a.dtype.kind == "c"
    if b.rk is not None:
        rhs = b.rk.rank
    else:
        rhs = b.shape[1] if a.shape[0] == b.shape[0] else b.shape[0]
    return flops_trsm(a.shape[0], rhs, is_complex=is_c)


def htrsm(side: str, uplo: str, a: HMatrix, b: HMatrix, eps: float, *, unit_diagonal: bool = False, acc=None) -> None:
    """Triangular solve with H operands, in place in ``b``.

    Supports the two variants Algorithm 1 needs:

    * ``side="left", uplo="lower", unit_diagonal=True`` — ``L X = B``
      (produces the U-panel);
    * ``side="right", uplo="upper"`` — ``X U = B`` (produces the L-panel).

    ``a`` is a *packed* factorised node (output of :func:`hgetrf`): only the
    relevant triangle is referenced.  With an accumulator, pending updates
    on ``b`` (e.g. deferred trailing-matrix GEMMs) are flushed leaf-by-leaf
    right before each leaf is solved, and the internal update GEMMs of the
    subdivided case defer their own roundings; on return ``b`` is clean.
    """
    if side == "left" and uplo == "lower":
        if a.shape[0] != b.shape[0]:
            raise ValueError(f"htrsm dims: L is {a.shape}, B is {b.shape}")
        _htrsm_left_lower(a, b, eps, unit_diagonal, acc)
    elif side == "right" and uplo == "upper":
        if a.shape[1] != b.shape[1]:
            raise ValueError(f"htrsm dims: U is {a.shape}, B is {b.shape}")
        _htrsm_right_upper(a, b, eps, unit_diagonal, acc)
    else:
        raise ValueError(f"unsupported htrsm variant side={side!r}, uplo={uplo!r}")


def _htrsm_left_lower(l: HMatrix, b: HMatrix, eps: float, unit: bool, acc=None) -> None:
    if b.rk is not None:
        if acc is not None:
            acc.flush(b)
        if b.rk.rank:
            with _traced("trsm", (l,), (b,), _trsm_flops(l, b)):
                b.rk = RkMatrix(
                    solve_lower_panel(l, b.rk.u, unit_diagonal=unit), b.rk.v
                )
        return
    if b.full is not None:
        with _traced("trsm", (l,), (b,), _trsm_flops(l, b)):
            b.full = np.ascontiguousarray(solve_lower_panel(l, b.full, unit_diagonal=unit))
        return
    # b subdivided.
    if l.full is not None:
        raise ValueError("RHS subdivided below a dense diagonal leaf: incompatible trees")
    nb = l.nrow_children
    if b.nrow_children != nb:
        raise ValueError("incompatible row splits in left-lower htrsm")
    for j in range(b.ncol_children):
        for i in range(nb):
            for p in range(i):
                hgemm(b.child(i, j), l.child(i, p), b.child(p, j), eps, alpha=-1.0, acc=acc)
            _htrsm_left_lower(l.child(i, i), b.child(i, j), eps, unit, acc)


def _htrsm_right_upper(u: HMatrix, b: HMatrix, eps: float, unit: bool, acc=None) -> None:
    if unit:
        raise ValueError("right-upper htrsm with unit diagonal is not used by H-LU")
    if b.rk is not None:
        if acc is not None:
            acc.flush(b)
        if b.rk.rank:
            with _traced("trsm", (u,), (b,), _trsm_flops(u, b)):
                # X U = Ub Vb^T  =>  X = Ub (U^{-T} Vb)^T.
                b.rk = RkMatrix(b.rk.u, solve_upper_transpose_panel(u, b.rk.v))
        return
    if b.full is not None:
        with _traced("trsm", (u,), (b,), _trsm_flops(u, b)):
            b.full = np.ascontiguousarray(solve_upper_transpose_panel(u, b.full.T).T)
        return
    if u.full is not None:
        raise ValueError("RHS subdivided below a dense diagonal leaf: incompatible trees")
    nb = u.nrow_children
    if b.ncol_children != nb:
        raise ValueError("incompatible column splits in right-upper htrsm")
    for i in range(b.nrow_children):
        for j in range(nb):
            for p in range(j):
                hgemm(b.child(i, j), b.child(i, p), u.child(p, j), eps, alpha=-1.0, acc=acc)
            _htrsm_right_upper(u.child(j, j), b.child(i, j), eps, unit, acc)


# ---------------------------------------------------------------------------
# H-GETRF and solves
# ---------------------------------------------------------------------------

def hgetrf(a: HMatrix, eps: float, acc=None) -> HMatrix:
    """In-place H-LU: on return ``a`` packs L (strict lower, unit diag) and U.

    Recursion follows Algorithm 1 on the children grid; dense diagonal leaves
    use the unpivoted dense LU.  With an accumulator, any pending updates
    under ``a`` are flushed up front (GETRF reads and rewrites the whole
    block) and the internal trailing-matrix GEMMs defer their roundings to
    the panel step that next touches each child; ``a`` is clean on return.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"hgetrf needs a square H-matrix, got {a.shape}")
    if a.rk is not None:
        raise ValueError("diagonal block is low-rank: cannot LU-factorise")
    if acc is not None:
        acc.flush(a)
    if a.full is not None:
        is_c = np.issubdtype(a.dtype, np.complexfloating)
        with _traced("getrf", (), (a,), flops_getrf(a.shape[0], is_complex=is_c)):
            getrf_nopiv(a.full, overwrite=True)
        return a
    nt = a.nrow_children
    if a.ncol_children != nt:
        raise ValueError("hgetrf needs a square children grid")
    for k in range(nt):
        hgetrf(a.child(k, k), eps, acc)
        for j in range(k + 1, nt):
            _htrsm_left_lower(a.child(k, k), a.child(k, j), eps, unit=True, acc=acc)
        for i in range(k + 1, nt):
            _htrsm_right_upper(a.child(k, k), a.child(i, k), eps, unit=False, acc=acc)
        for i in range(k + 1, nt):
            for j in range(k + 1, nt):
                hgemm(a.child(i, j), a.child(i, k), a.child(k, j), eps, alpha=-1.0, acc=acc)
    if a.shape[0] <= _PACK_TRI_MAX:
        # The factor is read-only from here on (panel solves, H-TRSM);
        # packing it dense turns every later panel solve into one trtrs.
        a.packed_lu = np.asfortranarray(a.to_dense())  # F order: LAPACK trtrs takes it copy-free
    return a


def to_rk(h: HMatrix, eps: float, batched: bool = False) -> RkMatrix:
    """Compress a whole H-matrix node into a single rounded Rk block.

    Leaves convert directly; subdivided nodes accumulate their children's
    Rk forms zero-padded into the parent shape — with truncation after every
    addition on the eager path, or (``batched=True``) one
    :meth:`RkMatrix.add_many` rounding of all stacked children (rank stays
    bounded by the eps-rank of the node either way).
    """
    if h.rk is not None:
        return h.rk.truncate(eps)
    if h.full is not None:
        return compress_dense(h.full, eps)
    m, n = h.shape
    acc = RkMatrix.zeros(m, n, dtype=h.dtype)
    terms: list[RkMatrix] = [acc]
    for child in h.children:
        sub = to_rk(child, eps, batched)
        if sub.rank == 0:
            continue
        i0 = child.rows.start - h.rows.start
        j0 = child.cols.start - h.cols.start
        u = np.zeros((m, sub.rank), dtype=acc.dtype)
        v = np.zeros((n, sub.rank), dtype=acc.dtype)
        u[i0 : i0 + child.shape[0]] = sub.u
        v[j0 : j0 + child.shape[1]] = sub.v
        if batched:
            terms.append(RkMatrix(u, v))
        else:
            acc = acc.add(RkMatrix(u, v), eps)
    if batched:
        return RkMatrix.add_many(terms, eps)
    return acc


def hgeadd(b: HMatrix, a: HMatrix, eps: float, alpha=1.0, acc=None) -> None:
    """Rounded H-matrix addition ``B <- B + alpha * A`` in place.

    ``a`` and ``b`` must cover the same cluster pair; their internal
    structures may differ (every leaf-format combination is handled).
    """
    if a.shape != b.shape:
        raise ValueError(f"hgeadd shape mismatch: {a.shape} vs {b.shape}")
    b.packed_lu = None
    if a.rk is not None:
        if a.rk.rank:
            b.axpy_rk(a.rk.scale(alpha), eps, acc)
        return
    if a.full is not None:
        b.axpy_dense(alpha * a.full if alpha != 1.0 else a.full.copy(), eps, acc)
        return
    if b.is_leaf:
        # a subdivided, b a leaf: collapse a to Rk and add.
        rk = to_rk(a, eps, batched=acc is not None)
        if rk.rank:
            b.axpy_rk(rk.scale(alpha), eps, acc)
        return
    if a.nrow_children != b.nrow_children or a.ncol_children != b.ncol_children:
        raise ValueError("incompatible children grids in hgeadd")
    for ca, cb in zip(a.children, b.children):
        hgeadd(cb, ca, eps, alpha, acc)


def hgemm_transb(c: HMatrix, a: HMatrix, b: HMatrix, eps: float, alpha=-1.0, acc=None) -> None:
    """``C <- C + alpha * A @ B.T`` (plain transpose) in H-arithmetic.

    The Cholesky update kernel (SYRK when ``a is b`` structurally).  The
    transpose is materialised structurally (views of factor/leaf data), which
    costs the same order as the product itself.
    """
    hgemm(c, a, b.transpose(), eps, alpha, acc)


def _htrsm_right_lower_transpose(l: HMatrix, b: HMatrix, eps: float, acc=None) -> None:
    """Solve ``X L^T = B`` in place in ``b`` (L non-unit lower, from hpotrf)."""
    if b.rk is not None:
        if acc is not None:
            acc.flush(b)
        if b.rk.rank:
            with _traced("trsm", (l,), (b,), _trsm_flops(l, b)):
                # X = Ub (L^{-1} Vb)^T.
                b.rk = RkMatrix(b.rk.u, solve_lower_panel(l, b.rk.v, unit_diagonal=False))
        return
    if b.full is not None:
        with _traced("trsm", (l,), (b,), _trsm_flops(l, b)):
            b.full = np.ascontiguousarray(
                solve_lower_panel(l, b.full.T, unit_diagonal=False).T
            )
        return
    if l.full is not None:
        raise ValueError("RHS subdivided below a dense diagonal leaf: incompatible trees")
    nb = l.nrow_children
    if b.ncol_children != nb:
        raise ValueError("incompatible column splits in right-lower-transpose htrsm")
    for i in range(b.nrow_children):
        for j in range(nb):
            for p in range(j):
                # (L^T)_{p j} = L_{j p}^T for p < j.
                hgemm_transb(b.child(i, j), b.child(i, p), l.child(j, p), eps, alpha=-1.0, acc=acc)
            _htrsm_right_lower_transpose(l.child(j, j), b.child(i, j), eps, acc)


def hpotrf(a: HMatrix, eps: float, acc=None) -> HMatrix:
    """In-place H-Cholesky of an SPD H-matrix: lower triangle holds ``L``.

    Only the lower triangle (and diagonal) of ``a`` is referenced and
    written; upper off-diagonal blocks are left untouched.  Raises
    ``numpy.linalg.LinAlgError`` when a diagonal leaf is not positive
    definite.  With an accumulator the same flush-before-read discipline as
    :func:`hgetrf` applies: pending updates under ``a`` are flushed first and
    ``a`` is clean on return.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"hpotrf needs a square H-matrix, got {a.shape}")
    if a.rk is not None:
        raise ValueError("diagonal block is low-rank: cannot Cholesky-factorise")
    if acc is not None:
        acc.flush(a)
    if a.full is not None:
        from ..dense import flops_potrf

        is_c = np.issubdtype(a.dtype, np.complexfloating)
        with _traced("potrf", (), (a,), flops_potrf(a.shape[0], is_complex=is_c)):
            a.full = np.linalg.cholesky(a.full)
        return a
    nt = a.nrow_children
    if a.ncol_children != nt:
        raise ValueError("hpotrf needs a square children grid")
    for k in range(nt):
        hpotrf(a.child(k, k), eps, acc)
        for i in range(k + 1, nt):
            _htrsm_right_lower_transpose(a.child(k, k), a.child(i, k), eps, acc)
        for i in range(k + 1, nt):
            for j in range(k + 1, i + 1):
                hgemm_transb(a.child(i, j), a.child(i, k), a.child(j, k), eps, alpha=-1.0, acc=acc)
    if a.shape[0] <= _PACK_TRI_MAX:
        # Only the lower triangle is valid, which is all trtrs references.
        a.packed_lu = np.asfortranarray(a.to_dense())  # F order: LAPACK trtrs takes it copy-free
    return a


def hinv(a: HMatrix, eps: float) -> HMatrix:
    """In-place H-inversion by the recursive Schur-complement formulas.

    For a 2x2-partitioned node (Hackbusch's classic recursion)::

        B11 = X11 + T12 S^{-1} T21      X11 = A11^{-1}
        B12 = -T12 S^{-1}               T12 = X11 A12,  T21 = A21 X11
        B21 = -S^{-1} T21               S   = A22 - A21 X11 A12
        B22 = S^{-1}

    All products are rounded H-GEMMs at accuracy ``eps``.  Only binary
    (2x2) children grids are supported — the shape every cluster-tree-pair
    block structure in this library produces.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"hinv needs a square H-matrix, got {a.shape}")
    if a.rk is not None:
        raise ValueError("diagonal block is low-rank: cannot invert")
    if a.full is not None:
        with _traced("getrf", (), (a,), flops_getrf(a.shape[0], is_complex=np.issubdtype(a.dtype, np.complexfloating))):
            a.full = np.linalg.inv(a.full)
        return a
    if a.nrow_children != 2 or a.ncol_children != 2:
        raise ValueError("hinv supports binary (2x2) children grids only")
    a11, a12 = a.child(0, 0), a.child(0, 1)
    a21, a22 = a.child(1, 0), a.child(1, 1)

    hinv(a11, eps)  # a11 = X11
    t12 = a12.zeros_like()
    hgemm(t12, a11, a12, eps, alpha=1.0)  # T12 = X11 A12
    t21 = a21.zeros_like()
    hgemm(t21, a21, a11, eps, alpha=1.0)  # T21 = A21 X11
    hgemm(a22, a21, t12, eps, alpha=-1.0)  # S = A22 - A21 T12
    hinv(a22, eps)  # a22 = S^{-1}
    a12.zero_()
    hgemm(a12, t12, a22, eps, alpha=-1.0)  # B12 = -T12 S^{-1}
    a21.zero_()
    hgemm(a21, a22, t21, eps, alpha=-1.0)  # B21 = -S^{-1} T21
    hgemm(a11, t12, a21, eps, alpha=-1.0)  # B11 = X11 + T12 S^{-1} T21
    return a


def hchol_solve(l: HMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` from the packed H-Cholesky factor (``A = L L^T``).

    ``b`` in cluster order; vector or panel.
    """
    b = np.asarray(b)
    squeeze = b.ndim == 1
    x = b[:, None] if squeeze else b
    if x.shape[0] != l.shape[0]:
        raise ValueError(f"rhs leading dim {x.shape[0]} != {l.shape[0]}")
    y = solve_lower_panel(l, x, unit_diagonal=False)
    z = solve_lower_transpose_panel(l, y, unit_diagonal=False)
    return z[:, 0] if squeeze else z


def hlu_solve(lu: HMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` from the packed H-LU of ``A`` (vector or panel RHS).

    ``b`` is in *cluster (permuted) order*; callers working in original
    numbering must permute in and out with the cluster tree's ``perm``.
    """
    b = np.asarray(b)
    squeeze = b.ndim == 1
    x = b[:, None] if squeeze else b
    if x.shape[0] != lu.shape[0]:
        raise ValueError(f"rhs leading dim {x.shape[0]} != {lu.shape[0]}")
    y = solve_lower_panel(lu, x, unit_diagonal=True)
    z = solve_upper_panel(lu, y)
    return z[:, 0] if squeeze else z
