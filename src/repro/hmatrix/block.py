"""Block cluster trees and admissibility conditions (Definitions 1–2).

A block cluster tree ``T_{IxI}`` pairs a row cluster with a column cluster and
subdivides the pair until either the block is *admissible* (well separated →
representable at low rank) or one side can no longer be split (→ stored
dense).  The admissibility condition is the knob that trades structure
complexity for compression:

* :class:`StrongAdmissibility` — the classic ``min(diam) <= eta * dist``
  geometric condition used by HMAT-OSS;
* :class:`WeakAdmissibility` — "every off-diagonal block is admissible", the
  condition behind the Block-Separable / HODLR-style formats discussed in the
  paper's related work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cluster import ClusterTree

__all__ = [
    "Admissibility",
    "StrongAdmissibility",
    "WeakAdmissibility",
    "BlockClusterTree",
    "build_block_cluster_tree",
]


class Admissibility:
    """Interface: decides whether a (row, col) cluster pair is admissible."""

    def is_admissible(self, rows: ClusterTree, cols: ClusterTree) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class StrongAdmissibility(Admissibility):
    """Geometric eta-admissibility: ``min(diam(s), diam(t)) <= eta * dist(s, t)``.

    ``eta = 2`` is HMAT-OSS's default; larger eta admits more (bigger) blocks
    at the price of higher ranks.
    """

    eta: float = 2.0

    def __post_init__(self) -> None:
        if self.eta <= 0:
            raise ValueError(f"eta must be positive, got {self.eta}")

    def is_admissible(self, rows: ClusterTree, cols: ClusterTree) -> bool:
        dist = rows.bbox.distance(cols.bbox)
        if dist <= 0.0:
            return False
        return min(rows.bbox.diameter, cols.bbox.diameter) <= self.eta * dist


@dataclass(frozen=True)
class WeakAdmissibility(Admissibility):
    """Weak condition: admissible iff the index ranges do not intersect.

    With a shared row/column cluster tree this makes *every* off-diagonal
    block low-rank (the BS/HODLR structure of the related-work section).
    """

    def is_admissible(self, rows: ClusterTree, cols: ClusterTree) -> bool:
        return rows.stop <= cols.start or cols.stop <= rows.start


@dataclass
class BlockClusterTree:
    """A node ``b = rows x cols`` of the block cluster tree.

    ``admissible`` leaves become Rk blocks, non-admissible leaves dense
    blocks; interior nodes carry the 2x2 (or r x c) grid of sons in
    row-major order.
    """

    rows: ClusterTree
    cols: ClusterTree
    admissible: bool
    children: list["BlockClusterTree"] = field(default_factory=list)
    nrow_children: int = 0
    ncol_children: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows.size, self.cols.size)

    def child(self, i: int, j: int) -> "BlockClusterTree":
        """Son at grid position (i, j)."""
        if self.is_leaf:
            raise IndexError("leaf block has no children")
        return self.children[i * self.ncol_children + j]

    def leaves(self):
        """Yield leaf blocks, row-major pre-order."""
        if self.is_leaf:
            yield self
        else:
            for c in self.children:
                yield from c.leaves()

    def nodes(self):
        yield self
        for c in self.children:
            yield from c.nodes()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(c.depth() for c in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "adm" if self.admissible else ("leaf" if self.is_leaf else "split")
        return (
            f"BlockClusterTree(rows=[{self.rows.start}:{self.rows.stop}), "
            f"cols=[{self.cols.start}:{self.cols.stop}), {kind})"
        )


def build_block_cluster_tree(
    rows: ClusterTree,
    cols: ClusterTree,
    admissibility: Admissibility | None = None,
    *,
    min_block: int = 1,
) -> BlockClusterTree:
    """Build ``T_{IxJ}`` per Definition 1's recursion.

    A pair is subdivided unless it is admissible or either side is a leaf
    (``S(p) = {}`` or ``S(q) = {}``) or smaller than ``min_block``.
    """
    adm = admissibility if admissibility is not None else StrongAdmissibility()

    def recurse(r: ClusterTree, c: ClusterTree) -> BlockClusterTree:
        admissible = adm.is_admissible(r, c)
        node = BlockClusterTree(rows=r, cols=c, admissible=admissible)
        if admissible or r.is_leaf or c.is_leaf or r.size <= min_block or c.size <= min_block:
            return node
        node.nrow_children = len(r.children)
        node.ncol_children = len(c.children)
        node.children = [recurse(rc, cc) for rc in r.children for cc in c.children]
        return node

    return recurse(rows, cols)
