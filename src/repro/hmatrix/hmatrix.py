"""The ``HMatrix`` container: nested full-rank / low-rank block structure.

An :class:`HMatrix` node mirrors a :class:`~repro.hmatrix.block.BlockClusterTree`
node: a leaf stores either a dense block (``full``) or a low-rank block
(``rk``); an interior node stores a row-major grid of children.  Assembly from
a kernel, matvec, densification, Frobenius norm, storage accounting, rounded
low-rank/dense accumulation (the ``axpy`` family used by H-GEMM), and the
rank-map rendering of the paper's Figure 3 all live here; the recursive
factorisation kernels live in :mod:`repro.hmatrix.arithmetic`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .aca import compress_kernel_block
from .block import BlockClusterTree
from .cluster import ClusterTree
from .rk import RkMatrix, compress_dense

__all__ = [
    "HMatrix",
    "FullBlock",
    "RkBlock",
    "AssemblyConfig",
    "assemble_hmatrix",
    "assemble_hmatrix_tasks",
]


@dataclass(frozen=True)
class AssemblyConfig:
    """Knobs of H-matrix assembly.

    Attributes
    ----------
    eps:
        Relative (Frobenius) compression accuracy — the paper's accuracy
        parameter, 1e-4 in Section V.
    method:
        "aca" (default, matrix-free), "svd" (optimal, densifies each
        admissible block) or "aca_full".
    max_rank:
        Optional hard rank cap for admissible blocks.
    """

    eps: float = 1e-4
    method: str = "aca"
    max_rank: int | None = None

    def __post_init__(self) -> None:
        if self.eps < 0:
            raise ValueError(f"eps must be non-negative, got {self.eps}")


class FullBlock:
    """Marker type for dense leaves in structure listings."""

    name = "full"


class RkBlock:
    """Marker type for low-rank leaves in structure listings."""

    name = "rk"


class HMatrix:
    """H-matrix node (leaf: dense or Rk; interior: grid of children)."""

    __slots__ = (
        "rows",
        "cols",
        "shape",
        "full",
        "rk",
        "children",
        "nrow_children",
        "ncol_children",
        "_leaf_index",
        "packed_lu",
    )

    def __init__(
        self,
        rows: ClusterTree,
        cols: ClusterTree,
        *,
        full: np.ndarray | None = None,
        rk: RkMatrix | None = None,
        children: list["HMatrix"] | None = None,
        nrow_children: int = 0,
        ncol_children: int = 0,
    ) -> None:
        self.rows = rows
        self.cols = cols
        self.shape = (rows.size, cols.size)
        self.full = full
        self.rk = rk
        self.children = children or []
        self.nrow_children = nrow_children
        self.ncol_children = ncol_children
        self._leaf_index = None
        # Dense copy of a small *factorised* diagonal node (set by
        # hgetrf/hpotrf, cleared by any mutation): lets the panel solves do a
        # single LAPACK trtrs instead of walking the tree.
        self.packed_lu = None
        kinds = (full is not None) + (rk is not None) + bool(self.children)
        if kinds != 1:
            raise ValueError("exactly one of full / rk / children must be set")
        if full is not None and full.shape != self.shape:
            raise ValueError(f"dense leaf shape {full.shape} != cluster shape {self.shape}")
        if rk is not None and rk.shape != self.shape:
            raise ValueError(f"rk leaf shape {rk.shape} != cluster shape {self.shape}")
        if self.children and len(self.children) != nrow_children * ncol_children:
            raise ValueError("children grid size mismatch")

    # -- pickling -----------------------------------------------------------
    # __slots__ classes need explicit state hooks; the cached leaf index is
    # dropped (rebuilt lazily on the other side) so shipped trees stay lean.
    def __getstate__(self) -> dict:
        return {
            s: getattr(self, s) for s in self.__slots__ if s != "_leaf_index"
        }

    def __setstate__(self, state: dict) -> None:
        for s, v in state.items():
            object.__setattr__(self, s, v)
        self._leaf_index = None

    # -- structure ----------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def kind(self) -> str:
        """One of "full", "rk", "h"."""
        if self.full is not None:
            return "full"
        if self.rk is not None:
            return "rk"
        return "h"

    @property
    def dtype(self) -> np.dtype:
        if self.full is not None:
            return self.full.dtype
        if self.rk is not None:
            return self.rk.dtype
        return self.children[0].dtype

    def child(self, i: int, j: int) -> "HMatrix":
        if self.is_leaf:
            raise IndexError("leaf H-matrix has no children")
        return self.children[i * self.ncol_children + j]

    def set_child(self, i: int, j: int, value: "HMatrix") -> None:
        self.children[i * self.ncol_children + j] = value
        self._leaf_index = None
        self.packed_lu = None

    def leaf_index(self) -> list[tuple["HMatrix", int, int]]:
        """Cached flat list of ``(leaf, row_offset, col_offset)`` triples.

        Offsets are relative to this node's origin, leaves in DFS order.  The
        cache stays valid across payload mutations (``full``/``rk``
        replacement never changes the tree shape); :meth:`set_child`
        invalidates it for this node — callers restructuring trees from the
        outside must do so before the first traversal.
        """
        idx = self._leaf_index
        if idx is None:
            if self.is_leaf:
                idx = [(self, 0, 0)]
            else:
                r0, c0 = self.rows.start, self.cols.start
                idx = []
                for c in self.children:
                    dr, dc = c.rows.start - r0, c.cols.start - c0
                    for leaf, i0, j0 in c.leaf_index():
                        idx.append((leaf, dr + i0, dc + j0))
            self._leaf_index = idx
        return idx

    def leaves(self):
        for leaf, _, _ in self.leaf_index():
            yield leaf

    def nodes(self):
        yield self
        for c in self.children:
            yield from c.nodes()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(c.depth() for c in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HMatrix({self.shape[0]}x{self.shape[1]}, kind={self.kind})"

    # -- offsets (relative to this node's origin) ----------------------------
    def _row_off(self, node: "HMatrix") -> int:
        return node.rows.start - self.rows.start

    def _col_off(self, node: "HMatrix") -> int:
        return node.cols.start - self.cols.start

    # -- accounting -----------------------------------------------------------
    def storage(self) -> int:
        """Stored scalar count (dense entries + Rk factor entries)."""
        total = 0
        for leaf, _, _ in self.leaf_index():
            if leaf.full is not None:
                total += leaf.full.size
            else:
                total += leaf.rk.storage
        return total

    def storage_bytes(self) -> int:
        return self.storage() * np.dtype(self.dtype).itemsize

    def compression_ratio(self) -> float:
        """storage / dense storage — lower is better (paper's Fig. 4 metric)."""
        m, n = self.shape
        return self.storage() / float(m * n)

    def max_rank(self) -> int:
        return max((leaf.rk.rank for leaf in self.leaves() if leaf.rk is not None), default=0)

    def leaf_count(self) -> dict:
        """Count of leaves by kind."""
        out = {"full": 0, "rk": 0}
        for leaf in self.leaves():
            out[leaf.kind] += 1
        return out

    # -- dense bridges ---------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.dtype)
        for leaf, i0, j0 in self.leaf_index():
            m, n = leaf.shape
            if leaf.full is not None:
                out[i0 : i0 + m, j0 : j0 + n] = leaf.full
            else:
                out[i0 : i0 + m, j0 : j0 + n] = leaf.rk.to_dense()
        return out

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        block_tree: BlockClusterTree,
        eps: float,
        *,
        row_origin: int | None = None,
        col_origin: int | None = None,
    ) -> "HMatrix":
        """Compress an explicit matrix into the structure of ``block_tree``.

        ``dense`` is indexed in *cluster order*: entry (p, q) couples the
        p-th row unknown and q-th column unknown of the trees' permutations.
        """
        r0 = block_tree.rows.start if row_origin is None else row_origin
        c0 = block_tree.cols.start if col_origin is None else col_origin

        def recurse(bt: BlockClusterTree) -> "HMatrix":
            i0, j0 = bt.rows.start - r0, bt.cols.start - c0
            sub = dense[i0 : i0 + bt.rows.size, j0 : j0 + bt.cols.size]
            if bt.is_leaf:
                if bt.admissible:
                    return cls(bt.rows, bt.cols, rk=compress_dense(sub, eps))
                return cls(bt.rows, bt.cols, full=np.array(sub, copy=True))
            kids = [recurse(c) for c in bt.children]
            return cls(
                bt.rows,
                bt.cols,
                children=kids,
                nrow_children=bt.nrow_children,
                ncol_children=bt.ncol_children,
            )

        if dense.shape != (block_tree.rows.size, block_tree.cols.size):
            raise ValueError(
                f"dense shape {dense.shape} != block tree shape "
                f"{(block_tree.rows.size, block_tree.cols.size)}"
            )
        return recurse(block_tree)

    # -- norms / maps -----------------------------------------------------------
    def norm_fro(self) -> float:
        total = 0.0
        for leaf in self.leaves():
            if leaf.full is not None:
                total += float(np.sum(np.abs(leaf.full) ** 2))
            else:
                total += leaf.rk.norm_fro() ** 2
        return float(np.sqrt(total))

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` (x in this block's local column order; vector or panel)."""
        x = np.asarray(x)
        if x.shape[0] != self.shape[1]:
            raise ValueError(f"x leading dim {x.shape[0]} != {self.shape[1]}")
        dt = self.dtype
        out_dtype = dt if dt == x.dtype else np.promote_types(dt, x.dtype)
        out = np.zeros((self.shape[0],) + x.shape[1:], dtype=out_dtype)
        for leaf, i0, j0 in self.leaf_index():
            full = leaf.full
            if full is not None:
                m, n = full.shape
                out[i0 : i0 + m] += full @ x[j0 : j0 + n]
            else:
                rk = leaf.rk
                if rk.u.shape[1]:
                    out[i0 : i0 + rk.u.shape[0]] += rk.u @ (rk.v.T @ x[j0 : j0 + rk.v.shape[0]])
        return out

    def copy(self) -> "HMatrix":
        if self.full is not None:
            return HMatrix(self.rows, self.cols, full=self.full.copy())
        if self.rk is not None:
            return HMatrix(self.rows, self.cols, rk=self.rk.copy())
        return HMatrix(
            self.rows,
            self.cols,
            children=[c.copy() for c in self.children],
            nrow_children=self.nrow_children,
            ncol_children=self.ncol_children,
        )

    def transpose(self) -> "HMatrix":
        """Structural transpose ``A.T`` (plain, not conjugate).

        Dense leaves become copies of their transposes, Rk leaves swap
        factors, interior grids flip row-major.  Used by the Cholesky path's
        ``C -= A @ B.T`` updates.
        """
        if self.full is not None:
            return HMatrix(self.cols, self.rows, full=np.ascontiguousarray(self.full.T))
        if self.rk is not None:
            return HMatrix(self.cols, self.rows, rk=self.rk.transpose())
        kids = [
            self.child(i, j).transpose()
            for j in range(self.ncol_children)
            for i in range(self.nrow_children)
        ]
        return HMatrix(
            self.cols,
            self.rows,
            children=kids,
            nrow_children=self.ncol_children,
            ncol_children=self.nrow_children,
        )

    # -- rounded accumulation (used by H-GEMM) -----------------------------------
    def axpy_rk(self, rk: RkMatrix, eps: float, acc=None) -> None:
        """``self += rk`` with rounding, preserving this node's structure.

        The Rk contribution is restricted to each child/leaf: restriction of
        a rank-k factorisation is the row-sliced factors, so no densification
        happens above dense leaves.  With an
        :class:`~repro.hmatrix.accumulator.UpdateAccumulator` the rounding
        of Rk-leaf updates is deferred to the accumulator's flush; ``rk``
        must then stay unmutated by the caller (it is buffered by
        reference).
        """
        if rk.shape != self.shape:
            raise ValueError(f"axpy_rk shape mismatch: {rk.shape} vs {self.shape}")
        if rk.rank == 0:
            return
        self.packed_lu = None
        if self.full is not None:
            self.full += rk.to_dense()
            return
        if self.rk is not None:
            if acc is not None:
                acc.defer_rk(self, rk)
            else:
                self.rk = self.rk.add(rk, eps)
            return
        for child in self.children:
            i0, j0 = self._row_off(child), self._col_off(child)
            m, n = child.shape
            sub = RkMatrix(rk.u[i0 : i0 + m], rk.v[j0 : j0 + n])
            child.axpy_rk(sub, eps, acc)

    def axpy_dense(self, block: np.ndarray, eps: float, acc=None) -> None:
        """``self += block`` (dense, local indexing) with compression on Rk leaves.

        With an accumulator, dense contributions to Rk leaves are summed in
        the buffer (exact ``+=``) and compressed once at flush time.
        """
        if block.shape != self.shape:
            raise ValueError(f"axpy_dense shape mismatch: {block.shape} vs {self.shape}")
        self.packed_lu = None
        if self.full is not None:
            self.full += block
            return
        if self.rk is not None:
            if acc is not None:
                acc.defer_dense(self, block)
            else:
                self.rk = self.rk.add(compress_dense(block, eps), eps)
            return
        for child in self.children:
            i0, j0 = self._row_off(child), self._col_off(child)
            m, n = child.shape
            child.axpy_dense(block[i0 : i0 + m, j0 : j0 + n], eps, acc)

    def scale(self, alpha) -> None:
        """In-place multiplication by a scalar."""
        for node in self.nodes():
            node.packed_lu = None
        for leaf in self.leaves():
            if leaf.full is not None:
                leaf.full *= alpha
            elif leaf.rk.rank:
                leaf.rk = leaf.rk.scale(alpha)

    def zero_(self) -> None:
        """Zero all leaves in place (dense leaves to 0, Rk leaves to rank 0)."""
        for node in self.nodes():
            node.packed_lu = None
        for leaf in self.leaves():
            if leaf.full is not None:
                leaf.full[:] = 0
            else:
                leaf.rk = RkMatrix.zeros(*leaf.shape, dtype=leaf.rk.dtype)

    def zeros_like(self) -> "HMatrix":
        """A structurally identical H-matrix with all-zero content."""
        out = self.copy()
        out.zero_()
        return out

    # -- Figure 3 support ---------------------------------------------------------
    def rank_map(self) -> list[tuple[int, int, int, int, str, int]]:
        """Leaf inventory for structure plots: (i0, j0, m, n, kind, rank)."""
        out = []
        for leaf in self.leaves():
            rank = leaf.rk.rank if leaf.rk is not None else min(leaf.shape)
            out.append(
                (self._row_off(leaf), self._col_off(leaf), *leaf.shape, leaf.kind, rank)
            )
        return out

    def structure_json(self) -> dict:
        """Machine-readable structure dump (for external Fig. 3-style plots).

        Returns a dict with the matrix shape, storage summary and one record
        per leaf (offsets, sizes, kind, rank) — enough to redraw the paper's
        green/red rank mosaics in any plotting tool.
        """
        counts = self.leaf_count()
        return {
            "shape": list(self.shape),
            "dtype": str(self.dtype),
            "storage": self.storage(),
            "compression_ratio": self.compression_ratio(),
            "max_rank": self.max_rank(),
            "n_dense_leaves": counts["full"],
            "n_rk_leaves": counts["rk"],
            "leaves": [
                {"i": i0, "j": j0, "m": m, "n": n, "kind": kind, "rank": rank}
                for i0, j0, m, n, kind, rank in self.rank_map()
            ],
        }

    def render_structure(self, width: int = 64) -> str:
        """ASCII rendering of the block structure (Fig. 3 style).

        Dense leaves print as ``#``, low-rank leaves as digits (rank clipped
        to 9, ``+`` beyond); each character cell covers ``shape/width``
        unknowns.
        """
        m, n = self.shape
        height = max(1, int(round(width * m / max(n, 1))))
        canvas = np.full((height, width), " ", dtype="<U1")
        for i0, j0, bm, bn, kind, rank in self.rank_map():
            r0 = int(i0 * height / m)
            r1 = max(r0 + 1, int((i0 + bm) * height / m))
            c0 = int(j0 * width / n)
            c1 = max(c0 + 1, int((j0 + bn) * width / n))
            if kind == "full":
                ch = "#"
            elif rank > 9:
                ch = "+"
            else:
                ch = str(rank)
            canvas[r0:r1, c0:c1] = ch
        return "\n".join("".join(row) for row in canvas)


def assemble_hmatrix(
    kernel,
    points: np.ndarray,
    block_tree: BlockClusterTree,
    config: AssemblyConfig | None = None,
) -> HMatrix:
    """Assemble the H-matrix of ``a_ij = K(|x_i - x_j|)`` over ``block_tree``.

    Admissible leaves are compressed (ACA by default, never materialising the
    block); inadmissible leaves are evaluated densely.
    """
    cfg = config or AssemblyConfig()
    pts = np.ascontiguousarray(points, dtype=np.float64)

    def recurse(bt: BlockClusterTree) -> HMatrix:
        if bt.is_leaf:
            return _assemble_leaf(kernel, pts, bt, cfg)
        kids = [recurse(c) for c in bt.children]
        return HMatrix(
            bt.rows,
            bt.cols,
            children=kids,
            nrow_children=bt.nrow_children,
            ncol_children=bt.ncol_children,
        )

    return recurse(block_tree)


def _assemble_leaf(kernel, pts, bt: BlockClusterTree, cfg: AssemblyConfig) -> HMatrix:
    """Assemble one leaf of the block cluster tree (shared by both paths)."""
    rpts = pts[bt.rows.indices]
    cpts = pts[bt.cols.indices]
    if bt.admissible:
        rk = compress_kernel_block(
            kernel, rpts, cpts, cfg.eps, method=cfg.method, max_rank=cfg.max_rank
        )
        return HMatrix(bt.rows, bt.cols, rk=rk)
    return HMatrix(bt.rows, bt.cols, full=kernel(rpts, cpts))


def assemble_hmatrix_tasks(
    kernel,
    points: np.ndarray,
    block_tree: BlockClusterTree,
    config: AssemblyConfig | None = None,
    *,
    engine,
    executor=None,
) -> HMatrix:
    """Task-based :func:`assemble_hmatrix`: one ``assemble`` task per leaf.

    Each leaf of ``block_tree`` becomes one ``assemble`` task submitted
    through ``engine`` (an :class:`~repro.runtime.stf.StfEngine`), declaring a
    W access on a handle keyed to that leaf.  Leaves are independent, so under
    a deferred engine and a threaded executor they assemble concurrently (ACA
    and dense kernel evaluation release the GIL inside NumPy); the interior
    nodes are then stitched together bottom-up on the calling thread, which is
    cheap (no numerical work happens above the leaves).

    With an eager engine the leaves run at submission and the result is
    numerically identical to :func:`assemble_hmatrix`.  With a deferred
    engine, ``executor`` is required and is run on the engine's graph before
    stitching.
    """
    from ..runtime.task import AccessMode

    cfg = config or AssemblyConfig()
    pts = np.ascontiguousarray(points, dtype=np.float64)
    results: dict[int, HMatrix] = {}

    def submit(bt: BlockClusterTree) -> None:
        if bt.is_leaf:
            engine.insert_task(
                "assemble",
                (lambda bt=bt: results.__setitem__(
                    id(bt), _assemble_leaf(kernel, pts, bt, cfg)
                )),
                [(engine.handle(bt, f"leaf[{bt.rows.start},{bt.cols.start}]"),
                  AccessMode.W)],
                label=f"assemble-leaf({bt.rows.start},{bt.cols.start})",
            )
            return
        for c in bt.children:
            submit(c)

    submit(block_tree)
    if engine.mode == "deferred":
        if executor is None:
            raise ValueError(
                "assemble_hmatrix_tasks with a deferred engine needs an "
                "executor to run the assembly graph"
            )
        executor.run(engine.wait_all())
    else:
        engine.wait_all()

    def stitch(bt: BlockClusterTree) -> HMatrix:
        if bt.is_leaf:
            return results[id(bt)]
        kids = [stitch(c) for c in bt.children]
        return HMatrix(
            bt.rows,
            bt.cols,
            children=kids,
            nrow_children=bt.nrow_children,
            ncol_children=bt.ncol_children,
        )

    return stitch(block_tree)
