"""``NTilesRecursive`` — the paper's Algorithm 2.

CHAMELEON works exclusively on regular tile sizes, so flattening the first
levels of a median-bisection tree (as lattice H-matrices do) is not enough:
the flattened clusters would have irregular cardinalities.  Algorithm 2
instead performs, at each level, a *pseudo-bisection aligned with the tile
size* along the largest geometric dimension: the left son receives exactly
``NB * ceil(nt / 2)`` unknowns.  Recursing yields ``nt = ceil(n / NB)``
clusters of exactly ``NB`` unknowns (the last one padded/smaller), each of
which is then refined with ordinary median bisection to become the cluster
tree of one tile's H-matrix.
"""

from __future__ import annotations

import math

import numpy as np

from .cluster import BoundingBox, ClusterTree, build_cluster_tree

__all__ = ["ntiles_recursive", "tile_roots"]


def _sort_by_dimension(perm: np.ndarray, points: np.ndarray, start: int, stop: int, dim: int) -> None:
    """Order the cluster's unknowns by coordinate along ``dim`` (stable)."""
    seg = perm[start:stop]
    coords = points[seg, dim]
    seg[:] = seg[np.argsort(coords, kind="stable")]


def _ntiles_split(
    points: np.ndarray,
    perm: np.ndarray,
    start: int,
    stop: int,
    nb: int,
    leaf_size: int,
    level: int,
    tiles: list[ClusterTree],
) -> ClusterTree:
    """Recursive body of Algorithm 2 over ``perm[start:stop]``."""
    size = stop - start
    nt = math.ceil(size / nb)
    if nt == 1:
        # Tile reached: refine with median bisection (the paper's per-tile
        # "median bisection algorithm ... to refine the clustering of each
        # tile").
        tile = build_cluster_tree(
            points, leaf_size=leaf_size, perm=perm, start=start, stop=stop, level=level
        )
        tiles.append(tile)
        return tile

    bbox = BoundingBox.of(points[perm[start:stop]])
    dim = bbox.largest_dimension()
    _sort_by_dimension(perm, points, start, stop, dim)

    size_left = nb * math.ceil(nt / 2)  # tile-aligned pseudo-bisection
    mid = start + size_left
    node = ClusterTree(start=start, stop=stop, bbox=bbox, perm=perm, points=points, level=level)
    left = _ntiles_split(points, perm, start, mid, nb, leaf_size, level + 1, tiles)
    right = _ntiles_split(points, perm, mid, stop, nb, leaf_size, level + 1, tiles)
    node.children = [left, right]
    return node


def ntiles_recursive(
    points: np.ndarray,
    nb: int,
    *,
    leaf_size: int = 64,
) -> tuple[ClusterTree, list[ClusterTree]]:
    """Build the Tile-H cluster tree (paper Algorithm 2).

    Parameters
    ----------
    points:
        (n, dim) coordinates.
    nb:
        Desired tile size ``NB``.  All tiles hold exactly ``nb`` unknowns
        except possibly the last one (the "padding" tile CHAMELEON allows).
    leaf_size:
        Leaf size for the per-tile median-bisection refinement.

    Returns
    -------
    (root, tiles):
        ``root`` is the full cluster tree; ``tiles`` lists the ``nt`` clusters
        that form the regular tile partition, in permutation order — these are
        the row/column clusters of the Tile-H layout.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be (n, dim), got {pts.shape}")
    n = pts.shape[0]
    if n == 0:
        raise ValueError("cannot cluster zero points")
    if nb < 1:
        raise ValueError(f"tile size nb must be >= 1, got {nb}")
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
    perm = np.arange(n, dtype=np.int64)
    tiles: list[ClusterTree] = []
    root = _ntiles_split(pts, perm, 0, n, nb, leaf_size, 0, tiles)
    tiles.sort(key=lambda t: t.start)
    return root, tiles


def tile_roots(root: ClusterTree, nb: int) -> list[ClusterTree]:
    """Recover the tile-level clusters of an ``ntiles_recursive`` tree.

    The tile roots are the shallowest nodes whose size is at most ``nb``;
    provided for consumers that only kept the root.
    """
    out: list[ClusterTree] = []

    def visit(node: ClusterTree) -> None:
        if node.size <= nb:
            out.append(node)
            return
        if node.is_leaf:
            raise ValueError(
                f"leaf of size {node.size} > nb={nb}: tree was not built by ntiles_recursive"
            )
        for c in node.children:
            visit(c)

    visit(root)
    out.sort(key=lambda t: t.start)
    return out
