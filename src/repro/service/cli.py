"""``repro serve`` / ``repro request`` — the solve service on the command line.

Serve a factorization store over HTTP::

    python -m repro serve --port 8750 --store /tmp/factors --workers 2
    python -m repro serve --port 8750 --budget-mb 256 --profile serve.json
    python -m repro serve --port 8750 --store /tmp/factors --fleet 4

Issue requests against it (and optionally verify against a manufactured
solution computed locally with the streamed dense operator)::

    python -m repro request --url http://127.0.0.1:8750 --kernel laplace \
        --n 2000 --count 8 --check
    python -m repro request --url http://127.0.0.1:8750 --stats
    python -m repro request --url http://127.0.0.1:8750 --shutdown
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

import numpy as np

__all__ = ["serve_main", "request_main"]


def serve_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve Tile-H solves over HTTP with a factorization store",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8750)
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="directory for persisted factorizations (default: in-memory only)")
    parser.add_argument("--budget-mb", type=float, default=None,
                        help="in-memory cache budget in MiB (default: unbounded)")
    parser.add_argument("--workers", type=int, default=2,
                        help="solve worker threads (per fleet worker with --fleet)")
    parser.add_argument("--fleet", type=int, default=0, metavar="N",
                        help="run N sharded services behind consistent-hash "
                        "routing with SLO lanes (interactive/batch) instead of "
                        "one service (0 = single service)")
    parser.add_argument("--hot-after", type=int, default=16, metavar="K",
                        help="fleet: replicate a fingerprint's factors to other "
                        "workers after K requests (needs --store)")
    parser.add_argument("--replicas", type=int, default=2,
                        help="fleet: total copies of a hot fingerprint")
    parser.add_argument("--interactive-inflight", type=int, default=64,
                        help="fleet: in-flight budget of the interactive lane")
    parser.add_argument("--batch-inflight", type=int, default=256,
                        help="fleet: in-flight budget of the batch lane")
    parser.add_argument("--interactive-slo", type=float, default=None, metavar="S",
                        help="fleet: latency SLO (seconds) of the interactive "
                        "lane; tracked as attainment + burn-rate gauges")
    parser.add_argument("--batch-slo", type=float, default=None, metavar="S",
                        help="fleet: latency SLO (seconds) of the batch lane")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="admission capacity before requests are rejected (429)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="micro-batch panel width")
    parser.add_argument("--max-delay", type=float, default=0.002,
                        help="max seconds a request waits for batch-mates")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="retries of a batch after a transient failure")
    parser.add_argument("--exec", dest="exec_mode",
                        choices=["eager", "threaded", "process"], default="eager",
                        help="executor for cold-start factorizations")
    parser.add_argument("--exec-workers", type=int, default=None,
                        help="executor workers for cold builds "
                        "(default: min(cores, 4) for threaded/process)")
    parser.add_argument("--mmap", action="store_true",
                        help="memory-map persisted factorizations on load "
                        "(store writes become uncompressed)")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="write a run report (JSON, with the service section) on shutdown")
    parser.add_argument("--trace-requests", type=int, default=64, metavar="N",
                        help="keep the last N request traces for /tracez and "
                        "`repro trace` (0 disables tracing)")
    args = parser.parse_args(argv)

    from ..obs import Instrumentation
    from .fleet import LaneConfig, ServeFleet
    from .http import make_server
    from .pipeline import SolveService
    from .store import FactorizationStore

    budget = None if args.budget_mb is None else int(args.budget_mb * (1 << 20))
    # The probe powers both the shutdown report (--profile) and the live
    # /metrics + /tracez endpoints; only --trace-requests 0 with no profile
    # runs fully uninstrumented.
    want_probe = args.profile is not None or args.trace_requests > 0
    probe = (
        Instrumentation(trace_capacity=max(0, args.trace_requests))
        if want_probe else None
    )
    if probe is not None:
        probe.__enter__()
    try:
        if args.fleet > 0:
            service = ServeFleet(
                args.fleet,
                store_root=args.store,
                budget_bytes=budget,
                lanes=(
                    LaneConfig("interactive", max_inflight=args.interactive_inflight,
                               slo_seconds=args.interactive_slo),
                    LaneConfig("batch", max_inflight=args.batch_inflight,
                               slo_seconds=args.batch_slo),
                ),
                replicate_hot_after=args.hot_after,
                replicas=args.replicas,
                service_threads=args.workers,
                max_queue=args.max_queue,
                max_batch=args.max_batch,
                max_delay=args.max_delay,
                max_retries=args.max_retries,
                exec_mode=args.exec_mode,
                exec_workers=args.exec_workers,
            )
        else:
            store = FactorizationStore(args.store, budget_bytes=budget, mmap=args.mmap)
            service = SolveService(
                store,
                workers=args.workers,
                max_queue=args.max_queue,
                max_batch=args.max_batch,
                max_delay=args.max_delay,
                max_retries=args.max_retries,
                exec_mode=args.exec_mode,
                exec_workers=args.exec_workers,
            )
        server = make_server(service, args.host, args.port)
        host, port = server.server_address[:2]
        if args.fleet > 0:
            print(f"serving   : http://{host}:{port} "
                  f"(fleet of {args.fleet}, queue {args.max_queue}/worker, "
                  f"batch {args.max_batch}, lanes interactive/"
                  f"{args.interactive_inflight} batch/{args.batch_inflight})")
        else:
            print(f"serving   : http://{host}:{port} "
                  f"({args.workers} workers, queue {args.max_queue}, batch {args.max_batch})")
        if args.exec_mode != "eager":
            exec_workers = args.exec_workers or "auto"
            print(f"executor  : {args.exec_mode} x {exec_workers} for cold builds")
        print(f"store     : {args.store or 'in-memory only'}"
              + (f", budget {args.budget_mb:g} MiB" if budget is not None else ""))
        if service.keys():
            print(f"warm keys : {len(service.keys())} factorization(s) on disk")

        # POST /v1/shutdown drains the service; watch for that and stop the
        # HTTP loop so the process exits cleanly.
        def _watch():
            while not service.closed:
                time.sleep(0.2)
            server.shutdown()

        threading.Thread(target=_watch, daemon=True).start()
        try:
            server.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            print("\ndraining  : completing admitted requests...")
        finally:
            server.shutdown()
            server.server_close()
            service.close()
        stats = service.stats()
        if args.fleet > 0:
            for name, lane in sorted(stats["lanes"].items()):
                print(f"lane {name:<11}: {lane['completed']} completed "
                      f"| {lane['shed']} shed | {lane['rejected']} rejected "
                      f"| {lane['failed']} failed")
            print(f"routing   : {stats['routing']['keys']} keys over "
                  f"{stats['healthy_workers']}/{stats['workers']} workers, "
                  f"{stats['requeues']} requeues")
        else:
            req = stats["requests"]
            print(f"served    : {req['completed']} completed | {req['rejected']} rejected "
                  f"| {req['failed']} failed")
    finally:
        if probe is not None:
            probe.__exit__(None, None, None)
    if args.profile is not None:
        from ..obs import build_run_report, write_report

        meta = {"mode": "serve", "workers": args.workers,
                "max_batch": args.max_batch, "max_queue": args.max_queue,
                "exec_mode": args.exec_mode}
        if args.fleet > 0:
            meta["fleet"] = args.fleet
            report = build_run_report(probe=probe, meta=meta, fleet=service.stats())
        else:
            meta["exec_workers"] = service.exec_workers
            report = build_run_report(probe=probe, meta=meta, service=service.stats())
        write_report(report, args.profile)
        print(f"profile   : run report written to {args.profile}")
    return 0


def request_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro request",
        description="Send solve requests to a running `repro serve` endpoint",
    )
    parser.add_argument("--url", default="http://127.0.0.1:8750")
    parser.add_argument("--kernel", choices=["laplace", "helmholtz", "gravity", "exponential"],
                        default="laplace")
    parser.add_argument("--n", type=int, default=2000)
    parser.add_argument("--geometry", choices=["cylinder", "sphere", "plate"],
                        default="cylinder")
    parser.add_argument("--nb", type=int, default=None)
    parser.add_argument("--eps", type=float, default=1e-6)
    parser.add_argument("--leaf-size", type=int, default=64)
    parser.add_argument("--method", choices=["lu", "cholesky"], default="lu")
    parser.add_argument("--count", type=int, default=1, help="number of requests to send")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-request deadline in seconds (server-side)")
    parser.add_argument("--lane", default=None,
                        help="admission lane (fleet servers only: "
                        "'interactive' or 'batch')")
    parser.add_argument("--check", action="store_true",
                        help="manufacture the solution locally (streamed dense matvec) "
                        "and report the forward error of each reply")
    parser.add_argument("--stats", action="store_true",
                        help="print the server's stats (no solve unless --count given too)")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the server to drain and exit")
    args = parser.parse_args(argv)

    from .errors import ServiceError
    from .http import SolveClient

    client = SolveClient(args.url)
    try:
        if args.shutdown:
            print(client.shutdown())
            return 0
        if args.stats and args.count < 1:
            print(json.dumps(client.stats(), indent=2))
            return 0

        spec = {"kernel": args.kernel, "n": args.n, "geometry": args.geometry,
                "eps": args.eps, "leaf_size": args.leaf_size, "method": args.method}
        if args.nb is not None:
            spec["nb"] = args.nb
        rng = np.random.default_rng(args.seed)
        complex_rhs = args.kernel == "helmholtz"

        x0s, rhs = [], []
        if args.check:
            from ..geometry import (cylinder_cloud, make_kernel, plate_cloud,
                                    sphere_cloud, streamed_matvec)

            clouds = {"cylinder": cylinder_cloud, "sphere": sphere_cloud,
                      "plate": plate_cloud}
            points = clouds[args.geometry](args.n)
            kernel = make_kernel(args.kernel, points)
        for _ in range(args.count):
            x0 = rng.standard_normal(args.n)
            if complex_rhs:
                x0 = x0 + 1j * rng.standard_normal(args.n)
            if args.check:
                x0s.append(x0)
                rhs.append(streamed_matvec(kernel, points, x0))
            else:
                rhs.append(x0)

        latencies = []
        for i, b in enumerate(rhs):
            t0 = time.perf_counter()
            x = client.solve(spec, b, timeout=args.timeout, lane=args.lane)
            dt = time.perf_counter() - t0
            latencies.append(dt)
            line = f"request {i:3d}: {dt * 1e3:8.2f} ms, |x| = {np.linalg.norm(x):.6g}"
            if args.check:
                err = np.linalg.norm(x - x0s[i]) / np.linalg.norm(x0s[i])
                line += f", forward error {err:.2e}"
            print(line)
        if latencies:
            print(f"latency   : mean {np.mean(latencies) * 1e3:.2f} ms, "
                  f"max {np.max(latencies) * 1e3:.2f} ms over {len(latencies)} requests")
        if args.stats:
            print(json.dumps(client.stats(), indent=2))
        return 0
    except ServiceError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 2
