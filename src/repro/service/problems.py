"""Problem specs: the deterministic request -> operator mapping.

A service request does not ship a matrix — it names a *problem spec*: the
geometry, kernel, and solver configuration that deterministically reconstruct
the operator on any replica (the same construction the CLI test harness
uses).  The spec's canonical JSON is hashed into the content-addressed
**fingerprint** that keys the :class:`~repro.service.store.FactorizationStore`:
two requests agree on the fingerprint iff they solve against the same
factorization, which is exactly the coalescing condition of the
micro-batcher.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, replace

import numpy as np

from ..core import TileHConfig, TileHMatrix
from ..geometry import GP_KERNELS, cylinder_cloud, make_kernel, plate_cloud, sphere_cloud
from ..obs.tracing import current_trace

__all__ = ["ProblemSpec", "spec_fingerprint", "build_solver", "rhs_dtype", "check_rhs"]

from .errors import BadRequestError

_GEOMETRIES = {
    "cylinder": cylinder_cloud,
    "sphere": sphere_cloud,
    "plate": plate_cloud,
}

_KERNELS = ("laplace", "helmholtz", "gravity", "exponential")

_METHODS = ("lu", "cholesky")

_KINDS = ("solve", "gp")

#: Hyperparameter defaults applied to ``kind="gp"`` specs (kept in one place
#: so the canonical form — and therefore the fingerprint — never depends on
#: whether the client spelled the defaults out).
_GP_DEFAULTS = {"length": 0.25, "signal": 1.0, "noise": 0.1}


@dataclass(frozen=True)
class ProblemSpec:
    """One solvable problem, reproducible from scalars only.

    ``geometry``/``n`` fix the point cloud, ``kernel`` the interaction, and
    ``nb``/``eps``/``leaf_size``/``method`` the Tile-H solver that factors
    it.  Everything is validated eagerly so malformed requests fail at the
    admission boundary, not inside a worker.

    ``kind="gp"`` names a Gaussian-process regression problem instead of a
    BEM solve: ``kernel`` must be a GP covariance
    (:data:`~repro.geometry.GP_KERNELS`), ``length``/``signal``/``noise``
    are its hyperparameters (defaulted from ``_GP_DEFAULTS`` when omitted,
    so spelling the defaults out does not change the fingerprint), and the
    factorisation method is always the Cholesky — covariances are SPD, so a
    requested ``method="lu"`` (the dataclass default) is coerced.  A GP
    *training* run is exactly the cold factorisation of this spec into the
    store; each *prediction* is one solve request whose right-hand side is
    the test point's cross-covariance column, which is why GP serving needs
    no new service surface at all.
    """

    kernel: str
    n: int
    geometry: str = "cylinder"
    nb: int | None = None
    eps: float = 1e-6
    leaf_size: int = 64
    method: str = "lu"
    kind: str = "solve"
    length: float | None = None
    signal: float | None = None
    noise: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise BadRequestError(f"unknown kind {self.kind!r}; choose from {_KINDS}")
        if self.kind == "gp":
            if self.kernel not in GP_KERNELS:
                raise BadRequestError(
                    f"kind='gp' needs a GP covariance kernel, got {self.kernel!r}; "
                    f"choose from {GP_KERNELS}"
                )
            object.__setattr__(self, "method", "cholesky")
            for name, default in _GP_DEFAULTS.items():
                value = getattr(self, name)
                if value is None:
                    object.__setattr__(self, name, default)
                elif not isinstance(value, (int, float)) or not value > 0:
                    raise BadRequestError(f"{name} must be a positive number, got {value!r}")
                else:
                    object.__setattr__(self, name, float(value))
        else:
            if self.kernel not in _KERNELS:
                raise BadRequestError(f"unknown kernel {self.kernel!r}; choose from {_KERNELS}")
            for name in _GP_DEFAULTS:
                if getattr(self, name) is not None:
                    raise BadRequestError(f"{name} only applies to kind='gp' specs")
        if self.geometry not in _GEOMETRIES:
            raise BadRequestError(
                f"unknown geometry {self.geometry!r}; choose from {tuple(_GEOMETRIES)}"
            )
        if self.method not in _METHODS:
            raise BadRequestError(f"unknown method {self.method!r}; choose from {_METHODS}")
        if not isinstance(self.n, int) or self.n < 2:
            raise BadRequestError(f"n must be an integer >= 2, got {self.n!r}")
        if self.nb is not None and (not isinstance(self.nb, int) or self.nb < 1):
            raise BadRequestError(f"nb must be a positive integer, got {self.nb!r}")
        if not self.eps > 0:
            raise BadRequestError(f"eps must be positive, got {self.eps!r}")
        if not isinstance(self.leaf_size, int) or self.leaf_size < 1:
            raise BadRequestError(f"leaf_size must be a positive integer, got {self.leaf_size!r}")

    @property
    def effective_nb(self) -> int:
        return self.nb if self.nb is not None else max(64, self.n // 16)

    def canonical(self) -> dict:
        """The canonical JSON-able form that is hashed into the fingerprint.

        ``kind="solve"`` specs keep the historical seven-key form exactly
        (fingerprints of existing stores stay valid); GP specs add ``kind``
        plus the resolved hyperparameters.
        """
        base = {
            "geometry": self.geometry,
            "kernel": self.kernel,
            "n": self.n,
            "nb": self.effective_nb,
            "eps": self.eps,
            "leaf_size": self.leaf_size,
            "method": self.method,
        }
        if self.kind == "gp":
            base["kind"] = self.kind
            base["length"] = self.length
            base["signal"] = self.signal
            base["noise"] = self.noise
        return base

    @classmethod
    def from_dict(cls, data: dict) -> "ProblemSpec":
        if not isinstance(data, dict):
            raise BadRequestError(f"problem spec must be an object, got {type(data).__name__}")
        allowed = {
            "kernel", "n", "geometry", "nb", "eps", "leaf_size", "method",
            "kind", "length", "signal", "noise",
        }
        extra = set(data) - allowed
        if extra:
            raise BadRequestError(f"unknown problem-spec fields {sorted(extra)}")
        if "kernel" not in data or "n" not in data:
            raise BadRequestError("problem spec needs at least 'kernel' and 'n'")
        return cls(**data)


def spec_fingerprint(spec: ProblemSpec) -> str:
    """Content-addressed key: SHA-256 of the spec's canonical JSON.

    Stable across processes and replicas — the factorization store and the
    micro-batcher both key on it.
    """
    blob = json.dumps(spec.canonical(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def build_solver(
    spec: ProblemSpec, *, exec_mode: str = "eager", nworkers: int = 1
) -> TileHMatrix:
    """Deterministically build *and factorize* the spec's Tile-H solver.

    This is the expensive cold-start path; the factorization store exists to
    make it run once per fingerprint.  ``exec_mode``/``nworkers`` pick the
    executor for that cold build (``"threaded"`` and ``"process"`` fuse
    assembly with the factorisation).  The factors agree across executors to
    accumulator rounding only — the rounding accumulator is eager-only, so a
    threaded/process build matches an ``accumulate=False`` eager build bit
    for bit but differs from the default eager build in the last ulps.  The
    returned solver's config is normalised back to the eager executor so warm
    panel solves and saved archives carry no build-time detail.
    """
    points = _GEOMETRIES[spec.geometry](spec.n)
    if spec.kind == "gp":
        kernel = make_kernel(
            spec.kernel, points,
            length=spec.length, signal=spec.signal, nugget=spec.noise**2,
        )
    else:
        kernel = make_kernel(spec.kernel, points)
    config = TileHConfig(
        nb=spec.effective_nb,
        eps=spec.eps,
        leaf_size=spec.leaf_size,
        exec_mode=exec_mode,
        nworkers=nworkers,
    )
    ctx = current_trace()
    t0 = time.perf_counter()
    if exec_mode == "eager":
        solver = TileHMatrix.build(kernel, points, config)
        solver.factorize(method=spec.method)
    else:
        solver, _ = TileHMatrix.build_factorize(kernel, points, config, method=spec.method)
        solver.config = replace(config, exec_mode="eager", nworkers=1)
    if ctx is not None:
        ctx.add_span(
            "factorize", t0, time.perf_counter(),
            exec_mode=exec_mode, nworkers=nworkers, method=spec.method,
        )
    return solver


def rhs_dtype(spec: ProblemSpec) -> np.dtype:
    """The dtype solutions come back in (complex for oscillatory kernels)."""
    return np.dtype(np.complex128 if spec.kernel == "helmholtz" else np.float64)


def check_rhs(spec: ProblemSpec, rhs) -> np.ndarray:
    """Validate one right-hand side against ``spec``; returns the cast array.

    Shared by every admission boundary (service, fleet, HTTP) so malformed
    requests fail synchronously with :class:`BadRequestError` before they
    can occupy a queue slot anywhere.
    """
    b = np.asarray(rhs)
    if b.ndim != 1:
        raise BadRequestError(f"rhs must be 1-D, got shape {b.shape}")
    if b.shape[0] != spec.n:
        raise BadRequestError(f"rhs has length {b.shape[0]}, expected n={spec.n}")
    dtype = rhs_dtype(spec)
    if not np.can_cast(b.dtype, dtype):
        raise BadRequestError(f"rhs dtype {b.dtype} not castable to {dtype}")
    b = b.astype(dtype, copy=False)
    if not np.all(np.isfinite(b.view(np.float64) if dtype.kind == "c" else b)):
        raise BadRequestError("rhs contains non-finite entries")
    return b
