"""Typed errors of the solve service.

Every failure mode a caller can act on gets its own type (and a stable
``code`` string that the HTTP layer maps to a status): backpressure is
:class:`QueueFullError` — an *immediate, explicit* rejection, never a silent
block — deadlines are :class:`DeadlineExceededError`, shutdown is
:class:`ServiceClosedError`, and :class:`TransientSolveError` marks failures
the pipeline may retry before giving up.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "BadRequestError",
    "QueueFullError",
    "DeadlineExceededError",
    "DeadlineUnmeetableError",
    "ServiceClosedError",
    "TransientSolveError",
    "WorkerCrashedError",
]


class ServiceError(Exception):
    """Base class of all solve-service errors."""

    #: Stable machine-readable identifier (HTTP payloads, logs, tests).
    code = "service_error"

    #: HTTP status the endpoint maps this error to.
    http_status = 500


class BadRequestError(ServiceError):
    """The request is malformed (unknown problem spec, wrong RHS length...)."""

    code = "bad_request"
    http_status = 400


class QueueFullError(ServiceError):
    """The admission queue is at capacity — backpressure.

    Raised *synchronously at submission*: an overloaded service rejects new
    work instead of queueing unboundedly or deadlocking; already-admitted
    requests are unaffected.
    """

    code = "queue_full"
    http_status = 429


class DeadlineExceededError(ServiceError):
    """The request's deadline passed before its solve completed."""

    code = "deadline_exceeded"
    http_status = 504


class DeadlineUnmeetableError(DeadlineExceededError):
    """Admission-time shedding: the deadline cannot be met.

    Raised *synchronously at submission* by SLO-aware admission (the serve
    fleet's lanes) when the request's deadline is closer than the lane's
    observed service time — doing the work would only burn capacity on an
    answer the caller has already given up on.  Subclasses
    :class:`DeadlineExceededError` so callers handling deadline failures
    catch both; the distinct code lets them tell "shed up front, retry
    elsewhere now" (429) from "expired in flight" (504).
    """

    code = "deadline_unmeetable"
    http_status = 429


class ServiceClosedError(ServiceError):
    """The service is shutting down (or closed) and admits no new work."""

    code = "service_closed"
    http_status = 503


class TransientSolveError(ServiceError):
    """A retryable failure while executing a batch (e.g. a store read that
    lost a race with an eviction).  The pipeline retries these up to its
    ``max_retries`` before failing the affected requests."""

    code = "transient"
    http_status = 500


class WorkerCrashedError(ServiceError):
    """A fleet worker died with requests in flight.

    The fleet re-routes a crashed worker's queued requests to the surviving
    workers; this error only reaches a caller when every re-dispatch attempt
    was exhausted (or no healthy worker remains)."""

    code = "worker_crashed"
    http_status = 503
